package parlog

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"parlog/internal/ast"
	"parlog/internal/obs"
	"parlog/internal/relation"
	"parlog/internal/store"
	"parlog/internal/wire"
)

// Durable-store sentinels, re-exported so callers can errors.Is-branch on
// the failure class. ErrTornLog reports damage consistent with a crash
// mid-write (a truncated final record) — recovery drops the tail and
// continues. ErrCorruptSegment reports damage that cannot be a torn
// write: a checksum-failed record with intact records after it, or a
// damaged segment file. Under the default fail-fast policy Open returns
// it; DurabilityOptions.SkipCorrupt downgrades it to skip-and-report.
var (
	ErrCorruptSegment = store.ErrCorruptSegment
	ErrTornLog        = store.ErrTornLog
)

// FsyncPolicy selects when WAL appends reach stable storage; see the
// re-exported constants.
type FsyncPolicy = store.FsyncPolicy

const (
	// FsyncAlways fsyncs after every append: an acknowledged Apply
	// survives any crash. The default.
	FsyncAlways = store.FsyncAlways
	// FsyncInterval fsyncs at most once per DurabilityOptions.FsyncEvery:
	// a crash may lose the last interval's acknowledged batches, but
	// never corrupts what is on disk.
	FsyncInterval = store.FsyncInterval
	// FsyncNever leaves flushing to the OS — the benchmark upper bound.
	FsyncNever = store.FsyncNever
)

// DurabilityOptions tunes the state directory a View opened with
// EvalOptions.Dir writes. The zero value is the safe default: fsync
// every append, fail fast on corruption, compact every 64 applies.
type DurabilityOptions struct {
	// Fsync is the WAL flush policy (default FsyncAlways).
	Fsync FsyncPolicy
	// FsyncEvery paces FsyncInterval (default 100ms). Setting it with
	// any other policy is an error.
	FsyncEvery time.Duration
	// SkipCorrupt makes recovery skip checksum-failed records and
	// corrupt segments (falling back to an older sibling) instead of
	// failing with ErrCorruptSegment. The damage is still reported
	// through telemetry; the recovered model is the least model of
	// whatever survived.
	SkipCorrupt bool
	// CompactEvery rewrites the EDB snapshot as a fresh segment and
	// resets the WAL after this many successful Applies (default 64).
	CompactEvery int

	// diskHook intercepts physical writes — the crash-fault-injection
	// seam. Tests reach it via WithDiskHook.
	diskHook store.WriteHook
}

// isZero reports whether no durability knob was touched, for Validate's
// "Durability without Dir" check.
func (d DurabilityOptions) isZero() bool {
	return d.Fsync == FsyncAlways && d.FsyncEvery == 0 && !d.SkipCorrupt &&
		d.CompactEvery == 0 && d.diskHook == nil
}

// WithDiskHook returns a copy of o whose durable writes pass through
// hook — the fault-injection seam the crash harness uses (see
// internal/dist/fault.DiskPlan). The hook sees every physical WAL and
// segment write and may truncate the bytes (a torn write), mutate them
// (corruption), or return an error (the process dies at that write).
func (o EvalOptions) WithDiskHook(hook func(name string, data []byte) ([]byte, error)) EvalOptions {
	o.Durability.diskHook = hook
	return o
}

// DurabilityStats reports the state directory's current extent.
type DurabilityStats struct {
	// Epoch is the view epoch, as recovered plus later Applies.
	Epoch uint64 `json:"epoch"`
	// SegmentEpoch is the epoch the newest durable segment pins;
	// HasSegment is false in a directory that has never compacted.
	SegmentEpoch uint64 `json:"segment_epoch"`
	HasSegment   bool   `json:"has_segment"`
	// WALRecords and WALBytes are the write-ahead log's extent since the
	// last compaction — the replay cost of a crash right now.
	WALRecords int   `json:"wal_records"`
	WALBytes   int64 `json:"wal_bytes"`
}

// WAL and segment record kinds. The store layer frames and checksums
// records; these kinds give them meaning. A segment is
// recSegMeta recNames recSegEDB: the epoch it pins, the interner
// bindings past the program's own constants, and the full EDB snapshot.
// The WAL carries recNames (new bindings), recApply (one Apply batch),
// recAbort (a logged batch whose maintenance failed — recovery skips
// it) and recClean (clean shutdown marker).
const (
	recNames   byte = 1
	recApply   byte = 2
	recClean   byte = 3
	recAbort   byte = 4
	recSegMeta byte = 5
	recSegEDB  byte = 6
)

// durability is a View's durable half: the state directory plus the
// bookkeeping deciding what still needs to be written.
type durability struct {
	dir  *store.Dir
	opts DurabilityOptions
	sink obs.EventSink
	prog *Program

	names   int // interner high-water mark already persisted
	epoch   uint64
	applies int   // successful Applies since the last compaction
	err     error // poison: first unrecoverable write failure
}

// recoveredState is what openDurability folded off disk.
type recoveredState struct {
	edb   Store
	epoch uint64
}

// shadow is a mutable EDB image recovery folds WAL deltas into: per
// predicate, tuples keyed by their canonical encoding, plus the
// predicate's arity — tracked separately so an EDB relation a history
// has emptied (or that never held a fact) keeps its identity across a
// restart. The wire snapshot cannot carry an empty relation's arity, so
// the segment meta record does.
type shadow struct {
	rows    map[string]map[string]Tuple
	arities map[string]int
}

func newShadow(edb Store) shadow {
	s := shadow{rows: map[string]map[string]Tuple{}, arities: map[string]int{}}
	for pred, rel := range edb {
		m := make(map[string]Tuple, rel.Len())
		for _, t := range rel.Rows() {
			m[t.Key()] = t
		}
		s.rows[pred] = m
		s.arities[pred] = rel.Arity()
	}
	return s
}

// declare registers a predicate's shape without any tuples — the segment
// meta record's arity table replays through here.
func (s shadow) declare(pred string, arity int) {
	if s.rows[pred] == nil {
		s.rows[pred] = map[string]Tuple{}
	}
	s.arities[pred] = arity
}

func (s shadow) apply(deletes, inserts map[string][]Tuple) {
	for pred, ts := range deletes {
		m := s.rows[pred]
		for _, t := range ts {
			delete(m, t.Key())
		}
	}
	for pred, ts := range inserts {
		m := s.rows[pred]
		if m == nil {
			m = map[string]Tuple{}
			s.rows[pred] = m
		}
		for _, t := range ts {
			m[t.Key()] = t
			s.arities[pred] = len(t)
		}
	}
}

func (s shadow) store() Store {
	out := Store{}
	for pred, m := range s.rows {
		arity, ok := s.arities[pred]
		if !ok {
			continue // no arity source: nothing ever declared this predicate
		}
		rel := out.Get(pred, arity)
		for _, t := range m {
			rel.Insert(t)
		}
	}
	return out
}

// openDurability opens (or creates) the state directory and recovers the
// EDB it pins: the newest intact segment's snapshot — or, when no
// segment exists, the caller's edb argument — with the WAL's surviving
// apply records folded on top in epoch order. The caller then
// materializes the least model once over the recovered EDB; by
// confluence of semi-naive evaluation that equals the model the crashed
// process had at its last acknowledged batch.
func openDurability(p *Program, edb Store, opts *EvalOptions, sink obs.EventSink) (*durability, *recoveredState, error) {
	dopts := opts.Durability
	if dopts.CompactEvery == 0 {
		dopts.CompactEvery = 64
	}
	dir, rec, err := store.Open(opts.Dir, store.Options{
		Fsync:       dopts.Fsync,
		FsyncEvery:  dopts.FsyncEvery,
		SkipCorrupt: dopts.SkipCorrupt,
		Hook:        dopts.diskHook,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("parlog: opening state dir: %w", err)
	}
	d := &durability{dir: dir, opts: dopts, sink: sink, prog: p}

	var sh shadow
	segEpoch, hasSeg := dir.SegmentEpoch()
	if hasSeg {
		// The directory is authoritative: its segment replaces the edb
		// argument, which only seeds a directory's very first segment.
		sh = newShadow(nil)
		if err := d.replaySegment(rec.Segment, segEpoch, sh); err != nil {
			dir.Close()
			return nil, nil, err
		}
	} else {
		sh = newShadow(edb)
	}

	walApplies, maxApplied, clean, err := d.replayWAL(rec.WAL, segEpoch, sh)
	if err != nil {
		dir.Close()
		return nil, nil, err
	}
	d.names = p.ast.Interner.Len()
	d.epoch = segEpoch
	if maxApplied > d.epoch {
		d.epoch = maxApplied
	}
	recovered := &recoveredState{edb: sh.store(), epoch: d.epoch}
	obs.StoreRecovery(sink, segEpoch, walApplies, rec.Skipped, rec.Torn, clean)

	if !hasSeg {
		// First contact (or a directory whose segments were all lost):
		// pin the recovered EDB immediately so the edb argument is never
		// needed again and any WAL-only state becomes a proper segment.
		if err := d.compact(recovered.edb); err != nil {
			dir.Close()
			return nil, nil, err
		}
	}
	return d, recovered, nil
}

// replaySegment folds one segment's records: meta (epoch and interner
// baseline), names, and the EDB snapshot. Any structural surprise in a
// checksum-valid segment means it was written by different code or
// tampered with — classified corrupt.
func (d *durability) replaySegment(recs []store.Record, epoch uint64, sh shadow) error {
	if len(recs) == 0 || recs[0].Kind != recSegMeta {
		return fmt.Errorf("parlog: segment %016x does not start with a meta record: %w", epoch, ErrCorruptSegment)
	}
	metaEpoch, arities, err := decodeSegMeta(recs[0].Payload)
	if err != nil {
		return fmt.Errorf("parlog: segment %016x meta: %v: %w", epoch, err, ErrCorruptSegment)
	}
	if metaEpoch != epoch {
		return fmt.Errorf("parlog: segment %016x claims epoch %d: %w", epoch, metaEpoch, ErrCorruptSegment)
	}
	for pred, a := range arities {
		sh.declare(pred, a)
	}
	for _, r := range recs[1:] {
		switch r.Kind {
		case recNames:
			if err := d.replayNames(r.Payload); err != nil {
				return err
			}
		case recSegEDB:
			ins := map[string][]Tuple{}
			if err := wire.DecodeSnapshot(r.Payload, func(pred string, rows []Tuple) error {
				ins[pred] = rows
				return nil
			}); err != nil {
				return fmt.Errorf("parlog: segment %016x snapshot: %v: %w", epoch, err, ErrCorruptSegment)
			}
			sh.apply(nil, ins)
		default:
			return fmt.Errorf("parlog: segment %016x has unknown record kind %d: %w", epoch, r.Kind, ErrCorruptSegment)
		}
	}
	return nil
}

// replayWAL folds the log's surviving records into sh. Apply records the
// segment already covers (epoch at or below its pin) and records a
// later recAbort disowns are skipped. Returns how many applies were
// folded, the highest epoch applied, and whether the log ends in a
// clean-shutdown marker.
func (d *durability) replayWAL(recs []store.Record, segEpoch uint64, sh shadow) (applies int, maxApplied uint64, clean bool, err error) {
	aborted := map[uint64]bool{}
	for _, r := range recs {
		if r.Kind == recAbort {
			if e, err := decodeEpoch(r.Payload); err == nil {
				aborted[e] = true
			}
		}
	}
	for i, r := range recs {
		switch r.Kind {
		case recNames:
			if err := d.replayNames(r.Payload); err != nil {
				return 0, 0, false, err
			}
		case recApply:
			epoch, del, ins, derr := decodeApply(r.Payload)
			if derr != nil {
				return 0, 0, false, fmt.Errorf("parlog: WAL record %d: %v: %w", i, derr, ErrCorruptSegment)
			}
			if epoch <= segEpoch || aborted[epoch] {
				continue
			}
			sh.apply(del, ins)
			applies++
			if epoch > maxApplied {
				maxApplied = epoch
			}
		case recClean:
			clean = i == len(recs)-1
		case recAbort:
			// Consumed in the first pass.
		default:
			return 0, 0, false, fmt.Errorf("parlog: WAL record %d has unknown kind %d: %w", i, r.Kind, ErrCorruptSegment)
		}
	}
	return applies, maxApplied, clean, nil
}

// replayNames re-interns a names record and asserts each binding lands
// on the value it had when written. A mismatch means the directory
// belongs to a different program (or the program text changed), which no
// amount of replay can fix.
func (d *durability) replayNames(payload []byte) error {
	base, names, err := decodeNames(payload)
	if err != nil {
		return fmt.Errorf("parlog: names record: %v: %w", err, ErrCorruptSegment)
	}
	for i, name := range names {
		if got := d.prog.ast.Interner.Intern(name); got != ast.Value(base+i) {
			return fmt.Errorf("parlog: state dir was written against a different program: %q bound to %d, expected %d", name, got, base+i)
		}
	}
	return nil
}

// appendNames persists any interner bindings made since the last append,
// so tuples referencing them stay decodable after a restart.
func (d *durability) appendNames() error {
	n := d.prog.ast.Interner.Len()
	if n == d.names {
		return nil
	}
	names := make([]string, 0, n-d.names)
	for v := d.names; v < n; v++ {
		names = append(names, d.prog.ast.Interner.Name(ast.Value(v)))
	}
	nb, synced, err := d.dir.Append(recNames, encodeNames(d.names, names))
	if err != nil {
		return err
	}
	obs.WALAppend(d.sink, recNames, nb, synced)
	d.names = n
	return nil
}

// logApply write-ahead-logs one Apply batch at the epoch it will
// produce. On return the batch is durable under the fsync policy; only
// then may maintenance run.
func (d *durability) logApply(epoch uint64, del, ins map[string][]Tuple) error {
	if d.err != nil {
		return d.err
	}
	if err := d.appendNames(); err != nil {
		d.err = err
		return err
	}
	nb, synced, err := d.dir.Append(recApply, encodeApply(epoch, del, ins))
	if err != nil {
		d.err = err
		return err
	}
	obs.WALAppend(d.sink, recApply, nb, synced)
	return nil
}

// abort disowns a logged batch whose maintenance failed, so recovery
// will not replay it. Best-effort: if the directory is already dead the
// poison on d.err keeps the view from acknowledging anything further.
func (d *durability) abort(epoch uint64) {
	nb, synced, err := d.dir.Append(recAbort, encodeEpoch(epoch))
	if err == nil {
		obs.WALAppend(d.sink, recAbort, nb, synced)
	}
}

// compact pins edb as a fresh segment at the current epoch and resets
// the WAL.
func (d *durability) compact(edb Store) error {
	if d.err != nil {
		return d.err
	}
	// The full name table from value 0: replay then recreates every
	// binding itself, including constants the caller interned before the
	// original Open — a re-open needs only the identical program text.
	in := d.prog.ast.Interner
	n := in.Len()
	names := make([]string, 0, n)
	for v := 0; v < n; v++ {
		names = append(names, in.Name(ast.Value(v)))
	}
	snap := map[string][]Tuple{}
	tuples := 0
	for pred, rel := range edb {
		rows := rel.SortedRows()
		snap[pred] = rows
		tuples += len(rows)
	}
	recs := []store.Record{
		{Kind: recSegMeta, Payload: encodeSegMeta(d.epoch, edb)},
		{Kind: recNames, Payload: encodeNames(0, names)},
		{Kind: recSegEDB, Payload: wire.AppendSnapshot(nil, snap)},
	}
	nb, err := d.dir.Compact(d.epoch, recs)
	if err != nil {
		d.err = err
		return err
	}
	d.names = n
	d.applies = 0
	obs.SegmentWrite(d.sink, d.epoch, nb, tuples)
	return nil
}

// close marks a clean shutdown — compact so restart replays nothing,
// then a clean marker — and releases the directory. A poisoned
// directory is just released; recovery handles the rest.
func (d *durability) close(edb Store) error {
	if d.err == nil {
		if err := d.compact(edb); err == nil {
			if nb, synced, err := d.dir.Append(recClean, encodeEpoch(d.epoch)); err == nil {
				obs.WALAppend(d.sink, recClean, nb, synced)
			}
		}
	}
	return d.dir.Close()
}

// edbSnapshot extracts the base relations from a full model store — what
// compaction persists (the IDB is recomputed from it on recovery).
func edbSnapshot(full Store, isEDB func(string) bool) Store {
	out := Store{}
	for pred, rel := range full {
		if isEDB(pred) {
			out[pred] = rel
		}
	}
	return out
}

// --- record payload codecs ------------------------------------------------

func encodeEpoch(epoch uint64) []byte {
	return binary.AppendUvarint(nil, epoch)
}

func decodeEpoch(p []byte) (uint64, error) {
	e, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, fmt.Errorf("truncated epoch")
	}
	return e, nil
}

// encodeSegMeta pins the segment's epoch and the arity of every EDB
// predicate. The snapshot record alone cannot restore a relation that
// holds no rows — its wire batch has no arity — so the meta record
// carries the full shape table, in sorted order for byte-stable output.
func encodeSegMeta(epoch uint64, edb Store) []byte {
	b := binary.AppendUvarint(nil, epoch)
	preds := make([]string, 0, len(edb))
	for pred := range edb {
		preds = append(preds, pred)
	}
	sort.Strings(preds)
	b = binary.AppendUvarint(b, uint64(len(preds)))
	for _, pred := range preds {
		b = binary.AppendUvarint(b, uint64(len(pred)))
		b = append(b, pred...)
		b = binary.AppendUvarint(b, uint64(edb[pred].Arity()))
	}
	return b
}

func decodeSegMeta(p []byte) (epoch uint64, arities map[string]int, err error) {
	e, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, fmt.Errorf("truncated segment epoch")
	}
	p = p[n:]
	cnt, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, fmt.Errorf("truncated predicate count")
	}
	p = p[n:]
	if cnt > uint64(len(p)) {
		return 0, nil, fmt.Errorf("meta claims %d predicates in %d bytes", cnt, len(p))
	}
	arities = make(map[string]int, cnt)
	for i := uint64(0); i < cnt; i++ {
		l, n := binary.Uvarint(p)
		if n <= 0 || l > uint64(len(p[n:])) {
			return 0, nil, fmt.Errorf("truncated predicate name %d", i)
		}
		pred := string(p[n : n+int(l)])
		p = p[n+int(l):]
		a, n := binary.Uvarint(p)
		if n <= 0 {
			return 0, nil, fmt.Errorf("truncated arity for %s", pred)
		}
		arities[pred] = int(a)
		p = p[n:]
	}
	return e, arities, nil
}

func encodeNames(base int, names []string) []byte {
	b := binary.AppendUvarint(nil, uint64(base))
	b = binary.AppendUvarint(b, uint64(len(names)))
	for _, name := range names {
		b = binary.AppendUvarint(b, uint64(len(name)))
		b = append(b, name...)
	}
	return b
}

func decodeNames(p []byte) (base int, names []string, err error) {
	b, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, fmt.Errorf("truncated names base")
	}
	p = p[n:]
	count, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, fmt.Errorf("truncated names count")
	}
	p = p[n:]
	if count > uint64(len(p)) {
		return 0, nil, fmt.Errorf("names record claims %d names in %d bytes", count, len(p))
	}
	names = make([]string, 0, count)
	for i := uint64(0); i < count; i++ {
		l, n := binary.Uvarint(p)
		if n <= 0 || uint64(len(p)-n) < l {
			return 0, nil, fmt.Errorf("truncated name %d", i)
		}
		names = append(names, string(p[n:n+int(l)]))
		p = p[n+int(l):]
	}
	return int(b), names, nil
}

func encodeApply(epoch uint64, del, ins map[string][]relation.Tuple) []byte {
	b := binary.AppendUvarint(nil, epoch)
	delSnap := wire.AppendSnapshot(nil, del)
	b = binary.AppendUvarint(b, uint64(len(delSnap)))
	b = append(b, delSnap...)
	return wire.AppendSnapshot(b, ins)
}

func decodeApply(p []byte) (epoch uint64, del, ins map[string][]Tuple, err error) {
	e, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, nil, fmt.Errorf("truncated apply epoch")
	}
	p = p[n:]
	dl, n := binary.Uvarint(p)
	if n <= 0 || uint64(len(p)-n) < dl {
		return 0, nil, nil, fmt.Errorf("truncated apply delete length")
	}
	p = p[n:]
	del = map[string][]Tuple{}
	if err := wire.DecodeSnapshot(p[:dl], func(pred string, rows []Tuple) error {
		del[pred] = rows
		return nil
	}); err != nil {
		return 0, nil, nil, err
	}
	ins = map[string][]Tuple{}
	if err := wire.DecodeSnapshot(p[dl:], func(pred string, rows []Tuple) error {
		ins[pred] = rows
		return nil
	}); err != nil {
		return 0, nil, nil, err
	}
	return e, del, ins, nil
}
