package parlog

import (
	"context"
	"fmt"
	"io"
	"time"

	"parlog/internal/hashpart"
	"parlog/internal/metrics"
	"parlog/internal/network"
	"parlog/internal/obs"
)

// NetworkAudit is the conformance auditor's report: the run's observed
// communication matrix t_{i,j} checked against the minimal network graph
// derived from the discriminating functions (Section 5, Figures 1–3). A
// violation — traffic on a channel the graph predicts can never carry a
// tuple — indicates a routing bug in the hash-partitioning layer (or an
// injected fault). Request one with EvalOptions.AuditNetwork.
type NetworkAudit = network.AuditReport

// ObservedEdge is one observed channel of a NetworkAudit.
type ObservedEdge = network.ObservedEdge

// MetricsRegistry is the dependency-free metrics registry behind the live
// telemetry endpoint: atomic counters, gauges and fixed-bucket histograms
// with a Prometheus text exposition and a JSON snapshot.
type MetricsRegistry = metrics.Registry

// NewMetricsRegistry returns an empty registry, for embedding the metrics
// sink into a caller-owned scrape endpoint.
func NewMetricsRegistry() *MetricsRegistry { return metrics.New() }

// MetricsSink adapts the event stream into a MetricsRegistry — the sink
// behind EvalOptions.MetricsAddr, exported so callers can aggregate many
// runs into one registry via EvalOptions.Trace.
type MetricsSink = obs.MetricsSink

// NewMetricsSink returns a sink feeding reg.
func NewMetricsSink(reg *MetricsRegistry) *MetricsSink { return obs.NewMetricsSink(reg) }

// WriteChromeTrace renders a TraceRecorder's event stream as Chrome
// trace_event JSON (load it in chrome://tracing or ui.perfetto.dev):
// per-processor busy and iteration slices, causal flow arrows between
// distributed batch sends, receives and replays, and instant markers for
// deaths, checkpoints and network violations.
func WriteChromeTrace(w io.Writer, events []TraceEvent) error {
	return obs.WriteChromeTrace(w, events)
}

// ValidateMetricsExposition checks a Prometheus text-format document for
// well-formedness (names, types, label syntax, histogram invariants) —
// promtool's core checks without the dependency. Used by CI to validate
// the /metrics endpoint.
func ValidateMetricsExposition(r io.Reader) error { return metrics.ValidateExposition(r) }

// telemetry bundles the sinks and the optional HTTP endpoint of one run.
// Built by eval before dispatch, torn down by finish/abort after.
type telemetry struct {
	sink     obs.EventSink
	counting *obs.Counting
	server   *metrics.Server
	hold     time.Duration
}

// buildTelemetry assembles the run's sink stack: the caller's Trace, the
// counting sink whenever anything downstream needs aggregates
// (Result.Metrics, the /debug/parlog snapshot, the network audit), and
// the registry-backed metrics sink plus HTTP server when MetricsAddr is
// set. With nothing requested the sink is nil and the run pays nothing.
func buildTelemetry(o *EvalOptions) (*telemetry, error) {
	t := &telemetry{hold: o.MetricsHold}
	var sinks []obs.EventSink
	if o.Trace != nil {
		sinks = append(sinks, o.Trace)
	}
	if o.Metrics || o.AuditNetwork || o.MetricsAddr != "" {
		t.counting = obs.NewCounting()
		sinks = append(sinks, t.counting)
	}
	if o.MetricsAddr != "" {
		reg := metrics.New()
		sinks = append(sinks, obs.NewMetricsSink(reg))
		counting := t.counting
		srv, err := metrics.NewServer(o.MetricsAddr, reg, metrics.ServerOptions{
			Pprof: o.Pprof,
			Debug: func() any { return counting.Snapshot() },
		})
		if err != nil {
			return nil, fmt.Errorf("parlog: metrics endpoint: %w", err)
		}
		t.server = srv
		if o.TelemetryReady != nil {
			o.TelemetryReady(srv.Addr())
		}
	}
	t.sink = obs.Fanout(sinks...)
	return t, nil
}

// abort tears the endpoint down immediately (failed runs don't hold).
func (t *telemetry) abort() {
	if t.server != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		t.server.Close(ctx)
	}
}

// finish completes a successful run: audit the communication matrix if
// requested, snapshot the counting sink into the result, then keep the
// endpoint alive for MetricsHold (so a scraper can collect the final
// state) before shutting it down gracefully. ctx cancellation cuts the
// hold short.
func (t *telemetry) finish(ctx context.Context, p *Program, opts EvalOptions, res *Result) error {
	if opts.AuditNetwork {
		rep, err := runAudit(p, opts, t.counting.Snapshot(), t.sink)
		if err != nil {
			t.abort()
			return err
		}
		res.Audit = rep
	}
	if opts.Metrics && t.counting != nil {
		// Taken after the audit so NetworkViolations reflects its findings.
		res.Metrics = t.counting.Snapshot()
	}
	if t.server != nil {
		if t.hold > 0 {
			holdT := time.NewTimer(t.hold)
			defer holdT.Stop()
			var done <-chan struct{}
			if ctx != nil {
				done = ctx.Done()
			}
			select {
			case <-holdT.C:
			case <-done:
			}
		}
		t.abort()
	}
	return nil
}

// runAudit derives the minimal network graph for the run's discriminating
// function and checks the counting sink's observed edge matrix against
// it, reporting each violation into the event stream (so traces, metrics
// and Result.Metrics all see them).
func runAudit(p *Program, opts EvalOptions, snap *Metrics, sink obs.EventSink) (*NetworkAudit, error) {
	if opts.Strategy != StrategyHashPartition || opts.HashBits == nil || len(opts.Procs) == 0 {
		return nil, fmt.Errorf("parlog: AuditNetwork requires StrategyHashPartition with HashBits and Procs (the configuration DeriveNetwork can reason about)")
	}
	s, err := p.sirup()
	if err != nil {
		return nil, err
	}
	vr, ve := opts.VR, opts.VE
	if vr == nil {
		vr = []string{s.BodyVars[0]}
	}
	if ve == nil {
		ve = defaultVE(s, vr)
	}
	d, err := network.Derive(s, vr, ve, opts.HashBits, opts.HashBits, hashpart.NewProcSet(opts.Procs...))
	if err != nil {
		return nil, fmt.Errorf("parlog: AuditNetwork: %w", err)
	}
	rep := d.Audit(mergeEdgeMatrices(snap))
	if sink != nil {
		for _, v := range rep.Violations {
			sink.NetworkViolation(v.From, v.To, v.Tuples)
		}
	}
	return rep, nil
}

// mergeEdgeMatrices unions the counting sink's send-side matrix (intended
// destinations) with its receive-side matrix (actual destinations), taking
// the larger volume per channel. The two agree in a healthy run; auditing
// the union means a batch diverted *after* MessageSent fired — a routing
// bug downstream of the sender — still surfaces as traffic on the channel
// it actually used.
func mergeEdgeMatrices(snap *Metrics) []ObservedEdge {
	byKey := make(map[[2]int]ObservedEdge, len(snap.Edges)+len(snap.RecvEdges))
	add := func(from, to int, msgs, tuples int64) {
		k := [2]int{from, to}
		e := byKey[k]
		e.From, e.To = from, to
		if msgs > e.Messages {
			e.Messages = msgs
		}
		if tuples > e.Tuples {
			e.Tuples = tuples
		}
		byKey[k] = e
	}
	for _, e := range snap.Edges {
		add(e.From, e.To, e.Messages, e.Tuples)
	}
	for _, e := range snap.RecvEdges {
		add(e.From, e.To, e.Messages, e.Tuples)
	}
	observed := make([]ObservedEdge, 0, len(byKey))
	for _, e := range byKey {
		observed = append(observed, e)
	}
	return observed
}
