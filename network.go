package parlog

import (
	"parlog/internal/hashpart"
	"parlog/internal/network"
)

// NetworkGraph is a derived processor interconnect: the pairs (i, j) such
// that some database could make processor i send to processor j (Section 5).
type NetworkGraph = network.Derivation

// BitFunc maps the g-bit vector of a discriminating sequence to a processor
// id; Section 5's network derivation reasons at this level.
type BitFunc = network.BitFunc

// BitVectorHash returns the bit-level h of Example 6 — k bits read MSB-first
// — over processors {0, …, 2^k − 1}.
func BitVectorHash(k int) BitFunc { return network.BitVectorF(k) }

// LinearHash returns the bit-level h of Example 7: Σ coefs[i]·g(a_i).
func LinearHash(coefs ...int) BitFunc { return network.LinearF(coefs) }

// Dataflow returns the dataflow graph of the program's recursive rule in the
// paper's figure notation (Definition 2, Figures 1–2), e.g. "1 → 2 → 3".
func (p *Program) Dataflow() (string, error) {
	s, err := p.sirup()
	if err != nil {
		return "", err
	}
	return network.NewDataflow(s).String(), nil
}

// DataflowHasCycle reports whether Theorem 3 applies: a cyclic dataflow
// graph admits a communication-free parallel execution.
func (p *Program) DataflowHasCycle() (bool, error) {
	s, err := p.sirup()
	if err != nil {
		return false, err
	}
	return network.NewDataflow(s).Cycle() != nil, nil
}

// CommFreeChoice returns Theorem 3's constructive communication-free
// discriminating choice for a linear sirup whose dataflow graph has a cycle:
// the v(r)/v(e) sequences (body and exit-head variables at the cycle
// positions) and the name of the permutation-invariant hash to pair with
// them. StrategyAuto applies this choice automatically; the function exists
// so tools can display it.
func (p *Program) CommFreeChoice(workers int) (vr, ve []string, hashName string, err error) {
	s, err := p.sirup()
	if err != nil {
		return nil, nil, "", err
	}
	spec, err := network.CommFree(s, hashpart.RangeProcs(workers))
	if err != nil {
		return nil, nil, "", err
	}
	return spec.VR, spec.VE, spec.H.Name(), nil
}

// DeriveNetwork computes the minimal network graph of the program (a linear
// sirup) under the discriminating sequences vr/ve and bit-level functions f
// (recursive rule) and fp (exit rule), over the processor ids procs — the
// compile-time analysis of Section 5 (Figures 3–4).
func DeriveNetwork(p *Program, vr, ve []string, f, fp BitFunc, procs []int) (*NetworkGraph, error) {
	s, err := p.sirup()
	if err != nil {
		return nil, err
	}
	return network.Derive(s, vr, ve, f, fp, hashpart.NewProcSet(procs...))
}
