package parlog

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"parlog/internal/dist/fault"
	"parlog/internal/randprog"
)

// crashCase bundles one random program with a fixed delta-batch schedule
// so the uncrashed reference run and every crash run replay the exact
// same history.
type crashCase struct {
	g       *randprog.Program
	p       *Program
	batches []Delta
}

// newCrashCase generates a random recursive program and a deterministic
// sequence of insert/delete batches over its EDB predicates. All
// constants are interned up front so replay across re-opens sees the
// same program text.
func newCrashCase(t *testing.T, seed int64, nBatches int) *crashCase {
	g := randprog.Generate(randprog.Defaults(), seed)
	p, err := Parse(g.Prog.String())
	if err != nil {
		t.Fatalf("seed %d: generated program does not parse: %v\n%s", seed, err, g.Prog)
	}
	consts := make([]Value, 6)
	for i := range consts {
		consts[i] = p.Intern(fmt.Sprintf("c%d", i))
	}
	preds := make([]string, 0, len(g.EDB))
	for pred := range g.EDB {
		preds = append(preds, pred)
	}
	sort.Strings(preds)

	rng := rand.New(rand.NewSource(seed*6007 + 11))
	randTuple := func(pred string) Tuple {
		tu := make(Tuple, g.Arities[pred])
		for i := range tu {
			tu[i] = consts[rng.Intn(len(consts))]
		}
		return tu
	}
	batches := make([]Delta, nBatches)
	for b := range batches {
		d := NewDelta()
		for n := 1 + rng.Intn(3); n > 0; n-- {
			pred := preds[rng.Intn(len(preds))]
			if rng.Intn(3) == 0 {
				d.Remove(pred, randTuple(pred))
			} else {
				d.Add(pred, randTuple(pred))
			}
		}
		batches[b] = *d
	}
	return &crashCase{g: g, p: p, batches: batches}
}

// edb rebuilds a fresh EDB store under the re-parsed program's interner;
// every Open gets its own copy since evaluation may take ownership.
func (c *crashCase) edb() Store {
	edb := Store{}
	for pred, rel := range c.g.EDB {
		dst := edb.Get(pred, rel.Arity())
		for _, tu := range rel.Rows() {
			nt := make(Tuple, len(tu))
			for i, v := range tu {
				nt[i] = c.p.Intern(c.g.Prog.Interner.Name(v))
			}
			dst.Insert(nt)
		}
	}
	return edb
}

// opts builds the durable EvalOptions for one run: a small CompactEvery
// puts mid-run compactions inside the crash window, and the fsync policy
// alternates by seed.
func (c *crashCase) opts(dir string, seed int64, hook func(string, []byte) ([]byte, error)) EvalOptions {
	o := EvalOptions{Dir: dir, Durability: DurabilityOptions{CompactEvery: 2, Fsync: FsyncNever}}
	if seed%2 == 1 {
		o.Durability.Fsync = FsyncAlways
	}
	if hook != nil {
		o = o.WithDiskHook(hook)
	}
	return o
}

// modelString renders a view's materialized model deterministically for
// whole-model equality checks with readable diffs.
func modelString(t *testing.T, v *View) string {
	t.Helper()
	snap, err := v.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	st := snap.Store()
	preds := make([]string, 0, len(st))
	for pred := range st {
		preds = append(preds, pred)
	}
	sort.Strings(preds)
	var b strings.Builder
	for _, pred := range preds {
		rel := st[pred]
		if rel == nil || rel.Len() == 0 {
			continue
		}
		fmt.Fprintf(&b, "%s:%v\n", pred, rel.SortedRows())
	}
	return b.String()
}

// TestDurableCrashPointDifferential is the tentpole's recovery pin: over
// random recursive programs and random delta histories, a process crash
// at EVERY physical disk write — clean kill on odd ordinals, torn write
// on even ones — must recover to an epoch no older than the last
// acknowledged batch, and re-applying the unacknowledged suffix must
// reproduce the uncrashed model exactly.
func TestDurableCrashPointDifferential(t *testing.T) {
	ctx := context.Background()
	seeds := int64(50)
	if testing.Short() {
		seeds = 8
	}
	for seed := int64(0); seed < seeds; seed++ {
		c := newCrashCase(t, seed, 3)

		// Uncrashed reference run; its plan counts the write points.
		ref := fault.NewDiskPlan()
		refDir := t.TempDir()
		v, err := Open(ctx, c.p, c.edb(), c.opts(refDir, seed, ref.BeforeWrite))
		if err != nil {
			t.Fatalf("seed %d: reference Open: %v\n%s", seed, err, c.g.Prog)
		}
		for b, d := range c.batches {
			if _, err := v.Apply(d); err != nil {
				t.Fatalf("seed %d batch %d: reference Apply: %v\n%s", seed, b, err, c.g.Prog)
			}
		}
		want := modelString(t, v)
		if err := v.Close(); err != nil {
			t.Fatalf("seed %d: reference Close: %v", seed, err)
		}
		writes := ref.Writes()
		if writes < len(c.batches) {
			t.Fatalf("seed %d: only %d disk writes for %d batches — the WAL is not being written", seed, writes, len(c.batches))
		}

		for k := 1; k <= writes; k++ {
			plan := fault.NewDiskPlan()
			if k%2 == 0 {
				plan.TearAt(k)
			} else {
				plan.KillAt(k)
			}
			dir := t.TempDir()
			acked := 0
			cv, err := Open(ctx, c.p, c.edb(), c.opts(dir, seed, plan.BeforeWrite))
			if err == nil {
				for _, d := range c.batches {
					if _, aerr := cv.Apply(d); aerr != nil {
						break
					}
					acked++
				}
				// Hard crash: release the directory without the clean-
				// shutdown compact or marker.
				cv.dur.dir.Close()
			}

			rv, rerr := Open(ctx, c.p, c.edb(), c.opts(dir, seed, nil))
			if rerr != nil {
				t.Fatalf("seed %d crash@%d: recovery Open: %v\n%s", seed, k, rerr, c.g.Prog)
			}
			epoch := int(rv.DurabilityStats().Epoch)
			// Durability: every acknowledged batch survives. Atomicity:
			// at most the one in-flight batch may additionally have
			// reached the log before the crash (a compact failure after
			// a durable append reports an error for an applied batch).
			if epoch < acked || epoch > acked+1 {
				t.Fatalf("seed %d crash@%d: recovered epoch %d with %d acknowledged batches\n%s",
					seed, k, epoch, acked, c.g.Prog)
			}
			if epoch > len(c.batches) {
				t.Fatalf("seed %d crash@%d: recovered epoch %d beyond the %d-batch history", seed, k, epoch, len(c.batches))
			}
			for b, d := range c.batches[epoch:] {
				if _, aerr := rv.Apply(d); aerr != nil {
					t.Fatalf("seed %d crash@%d: re-applying batch %d: %v", seed, k, epoch+b, aerr)
				}
			}
			if got := modelString(t, rv); got != want {
				t.Fatalf("seed %d crash@%d (acked %d, recovered epoch %d): model diverges\nwant:\n%s\ngot:\n%s\nprogram:\n%s",
					seed, k, acked, epoch, want, got, c.g.Prog)
			}
			if err := rv.Close(); err != nil {
				t.Fatalf("seed %d crash@%d: Close after recovery: %v", seed, k, err)
			}
		}
	}
}

// TestDurableCorruptRecordDifferential flips a byte inside a non-final
// WAL record, then crashes before any compaction can rewrite it. The
// default recovery must refuse the directory with ErrCorruptSegment;
// SkipCorrupt recovery must drop exactly the damaged batch and still be
// self-consistent — the recovered model equals a from-scratch evaluation
// of the recovered EDB.
func TestDurableCorruptRecordDifferential(t *testing.T) {
	ctx := context.Background()
	seeds := int64(10)
	if testing.Short() {
		seeds = 3
	}
	for seed := int64(0); seed < seeds; seed++ {
		c := newCrashCase(t, seed+100, 3)

		plan := fault.NewDiskPlan()
		dir := t.TempDir()
		// CompactEvery beyond the batch count: the corrupt record must
		// still be in the WAL when the crash lands.
		o := EvalOptions{Dir: dir, Durability: DurabilityOptions{CompactEvery: 100, Fsync: FsyncNever}}
		v, err := Open(ctx, c.p, c.edb(), o.WithDiskHook(plan.BeforeWrite))
		if err != nil {
			t.Fatalf("seed %d: Open: %v\n%s", seed, err, c.g.Prog)
		}
		// Corrupt the next WAL write — the first Apply's record, which
		// later appends make non-final (final-record corruption is
		// indistinguishable from a torn tail and is dropped silently).
		plan.CorruptAt(plan.Writes() + 1)
		for b, d := range c.batches {
			if _, err := v.Apply(d); err != nil {
				t.Fatalf("seed %d batch %d: Apply: %v", seed, b, err)
			}
		}
		v.dur.dir.Close() // hard crash: no clean-shutdown compact

		if _, err := Open(ctx, c.p, c.edb(), EvalOptions{Dir: dir}); !errors.Is(err, ErrCorruptSegment) {
			t.Fatalf("seed %d: fail-fast recovery err = %v, want ErrCorruptSegment", seed, err)
		}

		rv, err := Open(ctx, c.p, c.edb(), EvalOptions{
			Dir: dir, Durability: DurabilityOptions{SkipCorrupt: true},
		})
		if err != nil {
			t.Fatalf("seed %d: SkipCorrupt recovery: %v", seed, err)
		}
		// Later epochs still replay past the dropped record.
		if epoch := int(rv.DurabilityStats().Epoch); epoch != len(c.batches) {
			t.Fatalf("seed %d: SkipCorrupt recovered epoch %d, want %d", seed, epoch, len(c.batches))
		}
		// Self-consistency: the materialized model is exactly the fixpoint
		// of the recovered EDB.
		res, err := Eval(ctx, c.p, rv.edbSnapshot(), EvalOptions{})
		if err != nil {
			t.Fatalf("seed %d: reference Eval: %v", seed, err)
		}
		snap, err := rv.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		st := snap.Store()
		for pred, rel := range res.Output {
			got := st[pred]
			aEmpty := rel == nil || rel.Len() == 0
			bEmpty := got == nil || got.Len() == 0
			if aEmpty && bEmpty {
				continue
			}
			if aEmpty != bEmpty || fmt.Sprint(rel.SortedRows()) != fmt.Sprint(got.SortedRows()) {
				t.Fatalf("seed %d: SkipCorrupt model diverges from Eval over the recovered EDB at %s", seed, pred)
			}
		}
		if err := rv.Close(); err != nil {
			t.Fatalf("seed %d: Close: %v", seed, err)
		}
	}
}
