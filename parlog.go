// Package parlog is a framework for the parallel, bottom-up evaluation of
// Datalog queries, reproducing Ganguly, Silberschatz and Tsur, "A Framework
// for the Parallel Processing of Datalog Queries" (SIGMOD 1990).
//
// The computation is partitioned across processors with discriminating
// functions — hash functions applied to a chosen sequence of rule variables
// — yielding a spectrum of parallel evaluation schemes:
//
//   - the non-redundant scheme of Section 3 (no ground substitution fires at
//     two processors),
//   - the communication-free scheme and the redundancy/communication
//     trade-off of Section 6,
//   - the general scheme of Section 7 for arbitrary Datalog programs,
//
// plus the Section 5 toolkit: dataflow graphs, communication-free choices
// from dataflow cycles (Theorem 3), and compile-time derivation of the
// minimal processor interconnect.
//
// Quick start:
//
//	prog, _ := parlog.Parse(`
//	    anc(X, Y) :- par(X, Y).
//	    anc(X, Y) :- par(X, Z), anc(Z, Y).
//	    par(a, b). par(b, c).
//	`)
//	res, _ := parlog.EvalParallel(context.Background(), prog, nil, parlog.EvalOptions{Workers: 4})
//	fmt.Println(prog.Format(res.Output, "anc"))
//
// All three entry points — Eval (sequential), EvalParallel (goroutine
// processors) and EvalDistributed (TCP processors) — share one EvalOptions
// and return one Result. Set EvalOptions.Trace or EvalOptions.Metrics to
// observe a run (see trace.go).
package parlog

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"parlog/internal/analysis"
	"parlog/internal/ast"
	"parlog/internal/obs"
	"parlog/internal/parser"
	"parlog/internal/relation"
	"parlog/internal/seminaive"
)

// Value is an interned constant.
type Value = ast.Value

// Tuple is a ground tuple of interned constants.
type Tuple = relation.Tuple

// Store maps predicate names to relations.
type Store = relation.Store

// Relation is a duplicate-free set of equal-arity tuples.
type Relation = relation.Relation

// NewRelation returns an empty relation of the given arity.
func NewRelation(arity int) *Relation { return relation.New(arity) }

// SeqStats reports sequential evaluation work; Firings counts successful
// ground substitutions (the paper's redundancy currency).
type SeqStats = seminaive.Stats

// Profile is a runtime query profile — the "analyze" half of
// explain-analyze: per-rule firing/dedup/iteration counters, per-atom
// planned-vs-actual join cardinalities, and (on the parallel engines)
// per-processor attribution. Render it with Result.Explain or String.
type Profile = seminaive.Profile

// RuleProfile is one rule's runtime record inside a Profile.
type RuleProfile = seminaive.RuleProfile

// AtomProfile is one body atom's runtime record inside a RuleProfile.
type AtomProfile = seminaive.AtomProfile

// ProcProfile is one processor's share of a rule's runtime.
type ProcProfile = seminaive.ProcProfile

// Program is a parsed Datalog program together with its constant interner.
type Program struct {
	ast *ast.Program
}

// Parse parses a Datalog program. Identifiers starting with an upper-case
// letter are variables; facts are ground bodiless clauses; '%' starts a
// comment.
func Parse(src string) (*Program, error) {
	p, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	return &Program{ast: p}, nil
}

// MustParse is Parse or panic, for tests and examples.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

// AddFacts parses additional clauses (typically facts) into the program,
// sharing its interner.
func (p *Program) AddFacts(src string) error {
	_, err := parser.ParseInto(src, p.ast)
	return err
}

// String renders the program.
func (p *Program) String() string { return p.ast.String() }

// IDB returns the derived predicate names, sorted.
func (p *Program) IDB() []string { return p.ast.IDBPreds() }

// EDB returns the base predicate names, sorted.
func (p *Program) EDB() []string { return p.ast.EDBPreds() }

// IsLinearSirup reports whether the program (ignoring facts) is a linear
// sirup — one linear recursive rule plus one exit rule — the class Sections
// 3–6 address.
func (p *Program) IsLinearSirup() bool {
	_, err := analysis.ExtractSirup(p.ast)
	return err == nil
}

// Intern returns the Value for a constant spelling, interning it if new.
func (p *Program) Intern(name string) Value { return p.ast.Interner.Intern(name) }

// ConstName returns the spelling of an interned constant.
func (p *Program) ConstName(v Value) string { return p.ast.Interner.Name(v) }

// ExtractFacts removes the program's ground facts and returns them as an
// EDB store, leaving only proper rules behind. Facts written in the program
// text are otherwise axioms — a View opened on the program treats them as
// permanently true, so Apply can never delete them. Callers that want every
// base tuple mutable (parlogd does) extract the facts first and hand the
// store to Open as the initial EDB; evaluation results are identical either
// way.
func (p *Program) ExtractFacts() Store {
	rules, facts := p.ast.FactTuples()
	p.ast.Rules = rules
	store := Store{}
	for pred, rows := range facts {
		if len(rows) == 0 {
			continue
		}
		rel := store.Get(pred, len(rows[0]))
		for _, row := range rows {
			rel.Insert(Tuple(row))
		}
	}
	return store
}

// Format renders one derived relation of a result store as sorted ground
// facts, one per line.
func (p *Program) Format(store Store, pred string) string {
	rel, ok := store[pred]
	if !ok {
		return ""
	}
	var b strings.Builder
	rows := rel.SortedRows()
	sort.SliceStable(rows, func(i, j int) bool {
		for k := range rows[i] {
			a, c := p.ConstName(rows[i][k]), p.ConstName(rows[j][k])
			if a != c {
				return a < c
			}
		}
		return false
	})
	for _, t := range rows {
		b.WriteString(pred)
		b.WriteByte('(')
		for i, v := range t {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(p.ConstName(v))
		}
		b.WriteString(").\n")
	}
	return b.String()
}

// Engine selects the execution engine behind the evaluation front door.
// The three exported entry points are thin wrappers that set this field
// and call one internal dispatcher, so Eval with an explicit Engine is
// exactly equivalent to calling the corresponding wrapper.
type Engine int

const (
	// EngineSequential is the single-processor semi-naive baseline.
	EngineSequential Engine = iota
	// EngineParallel runs goroutine processors over channels.
	EngineParallel
	// EngineDistributed runs TCP processors with heartbeat liveness and
	// hash-bucket failure recovery.
	EngineDistributed
)

// EvalOptions is the single option set shared by Eval, EvalParallel and
// EvalDistributed. The zero value is a sensible default everywhere:
// sequential semi-naive for Eval, four workers under StrategyAuto for the
// parallel engines, observability disabled.
type EvalOptions struct {
	// Engine selects the execution engine when calling Eval directly; the
	// EvalParallel and EvalDistributed wrappers override it.
	Engine Engine

	// Naive switches the sequential engine to naive iteration (the
	// ablation baseline); default is semi-naive. Ignored by the parallel
	// engines.
	Naive bool
	// MaxIterations aborts runaway sequential evaluations; 0 means
	// unlimited.
	MaxIterations int
	// Planner selects the join-order planner for compiled rule plans.
	// PlannerBoundness (the zero value) is the legacy order golden traces
	// pin; PlannerGreedy additionally consults relation cardinalities;
	// PlannerLeftToRight is the ablation baseline. Honored by all three
	// engines (the parallel engines replan each worker's fragment).
	Planner PlannerMode
	// Explain records the planning decisions — join order, constraint
	// pushdowns, demand rewrite — into Result.Plan for Result.Explain().
	Explain bool
	// Profile arms runtime counters on the compiled plans and fills
	// Result.Profile — explain-analyze. Honored by all three engines (the
	// parallel engines merge per-worker records with per-processor
	// attribution). Off by default; the disabled path is a nil check.
	Profile bool
	// NoDemand disables Query's magic-sets (demand) rewrite; the goal is
	// then answered from a full bottom-up materialization. Ignored by
	// Eval, which never rewrites.
	NoDemand bool

	// Workers is the number of processors for the parallel engines
	// (default 4). Ignored by Eval.
	Workers int
	// Strategy selects the parallel scheme (default StrategyAuto).
	Strategy Strategy
	// VR and VE override the discriminating sequences v(r) and v(e) for
	// the sirup strategies. Defaults depend on the strategy.
	VR, VE []string
	// Locality ∈ [0,1] positions StrategyTradeoff on the
	// redundancy/communication spectrum: the probability mass each h_i
	// keeps local.
	Locality float64
	// Termination selects the distributed termination detector.
	Termination TerminationMode
	// Topology restricts the interconnect; nil is a full mesh.
	Topology *Topology
	// Seed varies the hash functions.
	Seed uint64
	// HashBits, when non-nil, makes StrategyHashPartition use the
	// bit-level discriminating function h(ā) = HashBits(g(a1), …) — the
	// same function DeriveNetwork reasons about, so executions can be
	// matched against derived network graphs. Procs then gives the
	// processor ids (possibly sparse, e.g. {−1, 0, 1, 2} as in Example 7)
	// and Workers is ignored.
	HashBits BitFunc
	// Procs lists processor ids for HashBits runs.
	Procs []int
	// PollInterval is the counting detector's wave period (EvalParallel)
	// or the coordinator's wave period (EvalDistributed); 0 picks the
	// engine default.
	PollInterval time.Duration
	// MaxBatch splits outgoing tuple batches of the in-process parallel
	// transport; 0 sends one batch per destination per local iteration
	// (the paper's per-iteration send).
	MaxBatch int

	// MaxRetries bounds a distributed worker's connect attempts, retried
	// with exponential backoff and jitter (default 5). EngineDistributed
	// only.
	MaxRetries int
	// HeartbeatInterval is how long a distributed worker may stay silent
	// before the coordinator records a heartbeat miss (default 100ms).
	HeartbeatInterval time.Duration
	// WorkerDeadline is how long a distributed worker may stay silent
	// before it is declared dead and its hash bucket is recovered on a
	// survivor (default 2s).
	WorkerDeadline time.Duration
	// CheckpointEvery checkpoints a hash bucket after that many data
	// batches have been logged for it since its last checkpoint, letting
	// the coordinator truncate the covered send-log prefix; recovery then
	// replays only the suffix. 0 disables the count trigger.
	// EngineDistributed only.
	CheckpointEvery int
	// CheckpointInterval checkpoints every bucket with a non-empty send
	// log at this period; 0 disables the timer trigger.
	// EngineDistributed only.
	CheckpointInterval time.Duration
	// MaxInflightBatches bounds the data batches each distributed worker
	// may have unacknowledged at the coordinator (credit-based
	// backpressure); 0 means unlimited. EngineDistributed only.
	MaxInflightBatches int
	// MaxQueueBytes bounds the estimated data bytes resident in the
	// coordinator's outbound queues, split into per-worker byte credits;
	// 0 means unlimited. EngineDistributed only.
	MaxQueueBytes int64
	// MaxMemoryBytes is a shared coordinator budget across send logs,
	// checkpoints and queues. Overrunning it forces an early
	// checkpoint+truncate cycle; if the budget is still exceeded after
	// that, the run fails with an error wrapping ErrResourceExhausted.
	// 0 means unlimited. EngineDistributed only.
	MaxMemoryBytes int64
	// Buckets compiles the program for this many hash buckets while
	// Workers OS workers host them (bucket b starts on worker b mod
	// Workers); 0 keeps one bucket per worker. More buckets than workers
	// is what gives Rebalance moves to make. EngineDistributed only.
	Buckets int
	// Rebalance enables skew-triggered live migration of hot hash
	// buckets between distributed workers. EngineDistributed only.
	Rebalance RebalanceOptions

	// Trace, when non-nil, receives the run's full event stream —
	// iterations, rule firings, messages, busy/idle transitions and
	// termination probes. Leave nil to disable observability at zero
	// cost.
	Trace EventSink
	// Metrics additionally attaches the built-in counting sink and
	// fills Result.Metrics with its snapshot.
	Metrics bool
	// MetricsAddr, when non-empty, serves live telemetry over HTTP for
	// the duration of the run: Prometheus text at /metrics, an indented
	// JSON snapshot at /debug/parlog, and (with Pprof) the net/http/pprof
	// handlers. Use ":0" for an ephemeral port and TelemetryReady to
	// learn the bound address. The endpoint shuts down gracefully when
	// the run completes (after MetricsHold) or the context is canceled.
	MetricsAddr string
	// Pprof additionally mounts /debug/pprof/ on the MetricsAddr server.
	Pprof bool
	// MetricsHold keeps the MetricsAddr endpoint alive after a
	// successful run, so external scrapers can collect the final state;
	// context cancellation cuts the hold short. 0 closes immediately.
	MetricsHold time.Duration
	// TelemetryReady, when non-nil, is called with the MetricsAddr
	// server's bound address once it is listening (before evaluation
	// starts).
	TelemetryReady func(addr string)
	// AuditNetwork runs the Section 5 conformance auditor after the run:
	// the observed t_{i,j} communication matrix is checked against the
	// minimal network graph derived from HashBits, every unpredicted
	// channel is reported as a NetworkViolation event, and the report is
	// returned in Result.Audit. Requires StrategyHashPartition with
	// HashBits and Procs.
	AuditNetwork bool

	// Dir, when non-empty, makes Open durable: every Apply batch is
	// write-ahead-logged to this state directory before it is
	// acknowledged, snapshots are compacted into checksummed segments,
	// and a later Open on the same directory recovers the exact
	// pre-crash epoch and model. The program text (and any constants
	// interned before Open) must be identical across opens. Open only —
	// the one-shot evaluators reject it.
	Dir string
	// Durability tunes the Dir state directory: fsync policy,
	// corruption handling, compaction cadence. Requires Dir.
	Durability DurabilityOptions

	// demand carries Query's rewrite summary into the dispatcher so the
	// sink stack sees the DemandRewrite event; unexported — only Query
	// sets it.
	demand *demandNote
}

// RebalanceOptions configures the distributed runtime's adaptive load
// balancer (DESIGN §12). The coordinator samples per-bucket routed
// volume into a sliding window; when max/mean skew crosses the threshold
// it migrates the hottest bucket from the most-loaded worker to the
// least-loaded one, live, through the checkpoint + send-log-replay
// machinery — a reassignment is a recovery without a death, so the least
// model (and the per-rule firing counts) are preserved exactly. A
// candidate move that would violate the derived communication
// constraints — in particular a bucket pinned by a rule's restriction
// set — is rejected before anything migrates.
type RebalanceOptions struct {
	// Enabled turns the rebalancer on.
	Enabled bool
	// SkewThreshold triggers a migration when max bucket window load /
	// mean bucket window load reaches it (default 2.0).
	SkewThreshold float64
	// Interval is the load-sampling period (default 10ms).
	Interval time.Duration
	// Window is the number of samples in the sliding window (default 3).
	Window int
	// Cooldown is the minimum gap between migration decisions,
	// migrations and rejections alike (default 2×Interval).
	Cooldown time.Duration
	// MaxMigrations bounds migrations per run; 0 = unlimited.
	MaxMigrations int
	// MinVolume is the minimum tuples routed inside the window for the
	// skew signal to be trusted (default 64).
	MinVolume int64
}

// demandNote is the rewrite summary Query threads through eval.
type demandNote struct {
	goal         string
	adornment    string
	rules, magic int
}

// Result is the outcome of any evaluation: the pooled output store, the
// engine's statistics (SeqStats for Eval, Stats for the parallel engines)
// and, when requested, the metrics snapshot.
type Result struct {
	// Output holds the derived relations (plus, for Eval, the base
	// relations of the complete store).
	Output Store
	// SeqStats reports sequential work; nil for the parallel engines.
	SeqStats *SeqStats
	// Stats reports parallel firings, communication, placement and
	// timing; nil for Eval.
	Stats *ParallelStats
	// Metrics is the counting sink's snapshot when EvalOptions.Metrics
	// was set, nil otherwise.
	Metrics *Metrics
	// Audit is the network-conformance report when
	// EvalOptions.AuditNetwork was set, nil otherwise.
	Audit *NetworkAudit
	// Plan reports the planner's decisions when EvalOptions.Explain was
	// set (always set by Query), nil otherwise. Render it with Explain().
	Plan *PlanReport
	// Profile is the runtime query profile when EvalOptions.Profile was
	// set, nil otherwise. Render it with Explain().
	Profile *Profile
}

// fill applies the defaults shared by every engine. The per-engine
// evaluators assume it already ran.
func (o *EvalOptions) fill() {
	if o.Engine != EngineSequential && o.Workers <= 0 {
		o.Workers = 4
	}
	if o.MaxRetries <= 0 {
		o.MaxRetries = 5
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 100 * time.Millisecond
	}
	if o.WorkerDeadline <= 0 {
		o.WorkerDeadline = 2 * time.Second
	}
}

// Eval evaluates the program on the engine opts.Engine selects — the
// sequential semi-naive baseline by default. The edb argument supplies base
// relations beyond the program's embedded facts; it may be nil. A nil ctx
// means no cancellation.
func Eval(ctx context.Context, p *Program, edb Store, opts EvalOptions) (*Result, error) {
	return eval(ctx, p, edb, opts)
}

// eval is the single dispatcher behind Eval, EvalParallel and
// EvalDistributed: one defaulting path, one nil-EDB rule, one telemetry
// bundle, one switch. Telemetry (the sink stack, the optional HTTP
// endpoint, the post-run audit) is assembled here so every engine gets
// identical observability for free.
func eval(ctx context.Context, p *Program, edb Store, opts EvalOptions) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.Dir != "" {
		return nil, badOptions("Dir opens a durable View; use Open — the one-shot evaluators write no state")
	}
	opts.fill()
	if edb == nil {
		edb = Store{}
	}
	tel, err := buildTelemetry(&opts)
	if err != nil {
		return nil, err
	}
	if opts.demand != nil {
		obs.DemandRewrite(tel.sink, opts.demand.goal, opts.demand.rules, opts.demand.magic)
	}
	var res *Result
	switch opts.Engine {
	case EngineSequential:
		res, err = evalSequential(ctx, p, edb, opts, tel.sink)
	case EngineParallel:
		res, err = evalParallel(ctx, p, edb, opts, tel.sink)
	case EngineDistributed:
		res, err = evalDistributed(ctx, p, edb, opts, tel.sink)
	default:
		err = fmt.Errorf("parlog: unknown engine %d", opts.Engine)
	}
	if err != nil {
		tel.abort()
		return nil, err
	}
	if opts.Explain && res.Plan == nil {
		// The parallel engines plan per worker fragment; their report
		// carries the planner and demand summary without per-rule orders.
		res.Plan = newPlanReport(opts)
	}
	if err := tel.finish(ctx, p, opts, res); err != nil {
		return nil, err
	}
	return res, nil
}

// evalSequential computes the least model on one processor (semi-naive by
// default) and returns the full store — the paper's baseline execution.
func evalSequential(ctx context.Context, p *Program, edb Store, opts EvalOptions, sink obs.EventSink) (*Result, error) {
	snOpts := seminaive.Options{
		Naive:         opts.Naive,
		MaxIterations: opts.MaxIterations,
		Ctx:           ctx,
		Sink:          sink,
		Planner:       opts.Planner,
		Profile:       opts.Profile,
	}
	var report *PlanReport
	if opts.Explain {
		report = newPlanReport(opts)
		snOpts.OnPlan = func(pl *seminaive.Plan) { report.observe(p, pl) }
	}
	store, stats, err := seminaive.Eval(p.ast, edb, snOpts)
	if err != nil {
		return nil, err
	}
	return &Result{Output: store, SeqStats: stats, Plan: report, Profile: stats.Profile}, nil
}

// sirup extracts the canonical linear-sirup decomposition.
func (p *Program) sirup() (*analysis.Sirup, error) {
	s, err := analysis.ExtractSirup(p.ast)
	if err != nil {
		return nil, fmt.Errorf("parlog: %w", err)
	}
	return s, nil
}

// Query matches an atom pattern such as "anc(a, X)" against an evaluated
// store and returns the matching tuples, sorted. Variables in the pattern
// match anything (repeated variables must agree); constants must be equal.
// Constants are resolved through the program's interner, so names unseen by
// the program match nothing.
//
// Deprecated: this scans a store you already evaluated. Use the package
// function Query for goal-directed evaluation (demand rewriting, streaming
// answers, planner reports), or Snapshot.Query on an incrementally
// maintained View.
func (p *Program) Query(store Store, query string) ([]Tuple, error) {
	atom, known, err := p.resolveGoal(query)
	if err != nil {
		return nil, err
	}
	if !known {
		// A constant the program never saw cannot match any stored tuple.
		return nil, nil
	}
	rel, ok := store[atom.Pred]
	if !ok {
		return nil, fmt.Errorf("parlog: predicate %s not in the result store", atom.Pred)
	}
	if rel.Arity() != atom.Arity() {
		return nil, fmt.Errorf("parlog: %s has arity %d, query uses %d", atom.Pred, rel.Arity(), atom.Arity())
	}
	var out []Tuple
	for _, t := range rel.SortedRows() {
		if ast.MatchAtom(atom, t, ast.Subst{}) {
			out = append(out, t)
		}
	}
	return out, nil
}
