module parlog

go 1.22
