package parlog

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

// TestSampleProgramsCorpus runs every program shipped in testdata/programs
// through the full pipeline: parse, print/parse fixpoint, sequential
// evaluation, and parallel evaluation at several worker counts — all derived
// relations must agree with the sequential result.
func TestSampleProgramsCorpus(t *testing.T) {
	paths, err := filepath.Glob("testdata/programs/*.dl")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 5 {
		t.Fatalf("corpus too small: %v", paths)
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := Parse(string(src))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			// Print/parse fixpoint.
			again, err := Parse(prog.String())
			if err != nil || again.String() != prog.String() {
				t.Fatalf("print/parse fixpoint broken: %v", err)
			}
			wantRes, err := Eval(context.Background(), prog, nil, EvalOptions{})
			if err != nil {
				t.Fatalf("sequential: %v", err)
			}
			want, stats := wantRes.Output, wantRes.SeqStats
			if stats.New == 0 {
				t.Fatal("corpus program derived nothing — weak test input")
			}
			for _, workers := range []int{1, 3} {
				res, err := EvalParallel(context.Background(), prog, nil, EvalOptions{Workers: workers})
				if err != nil {
					t.Fatalf("parallel N=%d: %v", workers, err)
				}
				for _, pred := range prog.IDB() {
					if !want[pred].Equal(res.Output[pred]) {
						t.Errorf("N=%d: %s differs from sequential", workers, pred)
					}
				}
			}
		})
	}
}
