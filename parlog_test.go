package parlog

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"parlog/internal/workload"
)

const ancestorSrc = `
anc(X, Y) :- par(X, Y).
anc(X, Y) :- par(X, Z), anc(Z, Y).
par(a, b). par(b, c). par(c, d).
`

func TestParseAndEval(t *testing.T) {
	p, err := Parse(ancestorSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Eval(context.Background(), p, nil, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	store, stats := res.Output, res.SeqStats
	if store["anc"].Len() != 6 {
		t.Errorf("|anc| = %d, want 6", store["anc"].Len())
	}
	if stats.Firings != 6 {
		t.Errorf("firings = %d, want 6", stats.Firings)
	}
	out := p.Format(store, "anc")
	if !strings.Contains(out, "anc(a, d).") {
		t.Errorf("Format output missing anc(a, d):\n%s", out)
	}
	if p.Format(store, "nosuch") != "" {
		t.Error("Format of a missing predicate should be empty")
	}
}

func TestParseError(t *testing.T) {
	if _, err := Parse("p("); err == nil {
		t.Error("bad source accepted")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse did not panic")
		}
	}()
	MustParse("p(")
}

func TestAddFacts(t *testing.T) {
	p := MustParse("anc(X, Y) :- par(X, Y).\nanc(X, Y) :- par(X, Z), anc(Z, Y).")
	if err := p.AddFacts("par(a, b). par(b, c)."); err != nil {
		t.Fatal(err)
	}
	res, err := Eval(context.Background(), p, nil, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	store := res.Output
	if store["anc"].Len() != 3 {
		t.Errorf("|anc| = %d, want 3", store["anc"].Len())
	}
}

func TestProgramIntrospection(t *testing.T) {
	p := MustParse(ancestorSrc)
	if got := p.IDB(); len(got) != 1 || got[0] != "anc" {
		t.Errorf("IDB = %v", got)
	}
	if got := p.EDB(); len(got) != 1 || got[0] != "par" {
		t.Errorf("EDB = %v", got)
	}
	if !p.IsLinearSirup() {
		t.Error("ancestor not recognized as linear sirup")
	}
	nl := MustParse("anc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), anc(Z, Y).")
	if nl.IsLinearSirup() {
		t.Error("nonlinear program recognized as linear sirup")
	}
}

func TestEvalNaiveOption(t *testing.T) {
	p := MustParse(ancestorSrc)
	r1, err := Eval(context.Background(), p, nil, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Eval(context.Background(), p, nil, EvalOptions{Naive: true})
	if err != nil {
		t.Fatal(err)
	}
	s1, st1 := r1.Output, r1.SeqStats
	s2, st2 := r2.Output, r2.SeqStats
	if !s1["anc"].Equal(s2["anc"]) {
		t.Error("naive differs")
	}
	if st2.Firings < st1.Firings {
		t.Error("naive fired less than semi-naive")
	}
}

func TestEvalParallelStrategies(t *testing.T) {
	edb := Store{"par": workload.RandomGraph(12, 26, 3)}
	seqP := MustParse(`
anc(X, Y) :- par(X, Y).
anc(X, Y) :- par(X, Z), anc(Z, Y).
`)
	wantRes, err := Eval(context.Background(), seqP, edb, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := wantRes.Output
	for _, tc := range []struct {
		name string
		opts EvalOptions
	}{
		{"auto", EvalOptions{Workers: 4}},
		{"hash-Y", EvalOptions{Workers: 4, Strategy: StrategyHashPartition, VR: []string{"Y"}, VE: []string{"Y"}}},
		{"hash-Z", EvalOptions{Workers: 3, Strategy: StrategyHashPartition, VR: []string{"Z"}, VE: []string{"X"}}},
		{"nocomm", EvalOptions{Workers: 4, Strategy: StrategyNoComm}},
		{"tradeoff-0", EvalOptions{Workers: 3, Strategy: StrategyTradeoff, Locality: 0}},
		{"tradeoff-half", EvalOptions{Workers: 3, Strategy: StrategyTradeoff, Locality: 0.5}},
		{"tradeoff-1", EvalOptions{Workers: 3, Strategy: StrategyTradeoff, Locality: 1}},
		{"general", EvalOptions{Workers: 4, Strategy: StrategyGeneral}},
		{"counting", EvalOptions{Workers: 2, Termination: TermCounting}},
		{"ds", EvalOptions{Workers: 2, Termination: TermDijkstraScholten}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := MustParse(`
anc(X, Y) :- par(X, Y).
anc(X, Y) :- par(X, Z), anc(Z, Y).
`)
			res, err := EvalParallel(context.Background(), p, edb, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			if !want["anc"].Equal(res.Output["anc"]) {
				t.Error("parallel result differs from sequential")
			}
		})
	}
}

func TestEvalParallelAutoUsesTheorem3(t *testing.T) {
	// The ancestor dataflow graph has a cycle, so Auto must pick a
	// communication-free scheme.
	p := MustParse(ancestorSrc)
	if err := p.AddFacts(chainFactsSrc(40)); err != nil {
		t.Fatal(err)
	}
	res, err := EvalParallel(context.Background(), p, nil, EvalOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Stats.TotalTuplesSent(); got != 0 {
		t.Errorf("Auto strategy sent %d tuples on a cyclic-dataflow sirup, want 0", got)
	}
}

func chainFactsSrc(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "par(w%d, w%d).\n", i, i+1)
	}
	return b.String()
}

func TestEvalParallelNonlinearAuto(t *testing.T) {
	p := MustParse(`
anc(X, Y) :- par(X, Y).
anc(X, Y) :- anc(X, Z), anc(Z, Y).
`)
	edb := Store{"par": workload.Chain(12)}
	res, err := EvalParallel(context.Background(), p, edb, EvalOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output["anc"].Len() != 12*13/2 {
		t.Errorf("|anc| = %d, want %d", res.Output["anc"].Len(), 12*13/2)
	}
}

func TestEvalParallelSirupStrategiesRejectNonSirup(t *testing.T) {
	p := MustParse(`
anc(X, Y) :- par(X, Y).
anc(X, Y) :- anc(X, Z), anc(Z, Y).
`)
	for _, s := range []Strategy{StrategyHashPartition, StrategyNoComm, StrategyTradeoff} {
		if _, err := EvalParallel(context.Background(), p, Store{"par": workload.Chain(3)}, EvalOptions{Workers: 2, Strategy: s}); err == nil {
			t.Errorf("strategy %d accepted a non-sirup program", s)
		}
	}
}

func TestEvalParallelLocalityValidation(t *testing.T) {
	p := MustParse(ancestorSrc)
	if _, err := EvalParallel(context.Background(), p, nil, EvalOptions{Workers: 2, Strategy: StrategyTradeoff, Locality: 1.5}); err == nil {
		t.Error("Locality 1.5 accepted")
	}
}

func TestDataflowFacade(t *testing.T) {
	p := MustParse(ancestorSrc)
	df, err := p.Dataflow()
	if err != nil {
		t.Fatal(err)
	}
	if df != "2 → 2" {
		t.Errorf("Dataflow = %q, want \"2 → 2\"", df)
	}
	cyc, err := p.DataflowHasCycle()
	if err != nil || !cyc {
		t.Errorf("DataflowHasCycle = %v, %v", cyc, err)
	}

	fig1 := MustParse(`
p(U, V, W) :- s(U, V, W).
p(U, V, W) :- p(V, W, Z), q(U, Z).
`)
	df, err = fig1.Dataflow()
	if err != nil {
		t.Fatal(err)
	}
	if df != "1 → 2 → 3" {
		t.Errorf("Dataflow = %q", df)
	}
}

func TestDeriveNetworkFacade(t *testing.T) {
	p := MustParse(`
p(X, Y) :- q(X, Y).
p(X, Y) :- p(Y, Z), r(X, Z).
`)
	g, err := DeriveNetwork(p, []string{"Y", "Z"}, []string{"X", "Y"},
		BitVectorHash(2), BitVectorHash(2), []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(0, 1) {
		t.Error("Example 6: (00)→(01) must be absent")
	}
	if !g.HasEdge(0, 2) {
		t.Error("Example 6: (00)→(10) must be present")
	}
	if len(g.CrossEdges()) != 6 {
		t.Errorf("cross edges = %d, want 6", len(g.CrossEdges()))
	}
}

func TestLinearHashFacade(t *testing.T) {
	f := LinearHash(1, -1, 1)
	if f([]int{1, 0, 1}) != 2 || f([]int{0, 1, 0}) != -1 {
		t.Error("LinearHash wrong")
	}
}

func TestInternAndConstName(t *testing.T) {
	p := MustParse("q(a).")
	v := p.Intern("zzz")
	if p.ConstName(v) != "zzz" {
		t.Error("Intern/ConstName round trip failed")
	}
}

func TestEvalDistributed(t *testing.T) {
	edb := Store{"par": workload.RandomGraph(12, 26, 9)}
	p := MustParse(`
anc(X, Y) :- par(X, Y).
anc(X, Y) :- par(X, Z), anc(Z, Y).
`)
	wantRes, err := Eval(context.Background(), p, edb, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := wantRes.Output
	res, err := EvalDistributed(context.Background(), p, edb, EvalOptions{
		Workers:  3,
		Strategy: StrategyHashPartition,
		VR:       []string{"Z"}, VE: []string{"X"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !want["anc"].Equal(res.Output["anc"]) {
		t.Error("EvalDistributed differs from sequential")
	}
	if len(res.Stats.Procs) != 3 {
		t.Errorf("stats for %d procs", len(res.Stats.Procs))
	}
	// Topology restriction is not supported over TCP.
	if _, err := EvalDistributed(context.Background(), p, edb, EvalOptions{
		Workers: 2, Topology: NewTopology(nil),
	}); err == nil {
		t.Error("topology restriction accepted on the TCP transport")
	}

	// Finer partition than the worker count, with the rebalancer armed:
	// 4 buckets on 2 workers must still reach the sequential model, and
	// stats stay per bucket.
	res, err = EvalDistributed(context.Background(), p, edb, EvalOptions{
		Workers: 2, Buckets: 4,
		Strategy: StrategyHashPartition,
		VR:       []string{"Z"}, VE: []string{"X"},
		Rebalance: RebalanceOptions{Enabled: true, Interval: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !want["anc"].Equal(res.Output["anc"]) {
		t.Error("EvalDistributed with Buckets>Workers differs from sequential")
	}
	if len(res.Stats.Procs) != 4 {
		t.Errorf("stats for %d buckets, want 4", len(res.Stats.Procs))
	}
	if _, err := EvalDistributed(context.Background(), p, edb, EvalOptions{
		Workers: 4, Buckets: 2,
	}); err == nil {
		t.Error("Buckets < Workers accepted")
	}
}

func TestSnapshotQuery(t *testing.T) {
	ctx := context.Background()
	p := MustParse(ancestorSrc)
	view, err := Open(ctx, p, nil, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer view.Close()
	snap, err := view.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	ask := func(goal string) []Tuple {
		t.Helper()
		qr, err := snap.Query(ctx, goal)
		if err != nil {
			t.Fatal(err)
		}
		return qr.All()
	}
	// Descendants of a.
	if got := ask("anc(a, X)"); len(got) != 3 {
		t.Errorf("anc(a, X) matched %d tuples, want 3", len(got))
	}
	// Specific ground query.
	if got := ask("anc(a, d)"); len(got) != 1 {
		t.Errorf("anc(a, d) matched %d", len(got))
	}
	// Repeated variables: anc(X, X) is empty on a chain.
	if got := ask("anc(X, X)"); len(got) != 0 {
		t.Errorf("anc(X, X) matched %d", len(got))
	}
	// Unknown constant matches nothing, without error.
	if got := ask("anc(nobody, X)"); len(got) != 0 {
		t.Errorf("unknown constant matched %d", len(got))
	}
	// A predicate the program never mentions has no answers either.
	if got := ask("nosuch(X)"); len(got) != 0 {
		t.Errorf("unknown predicate matched %d", len(got))
	}
	// Errors.
	if _, err := snap.Query(ctx, "anc(a"); err == nil {
		t.Error("malformed query accepted")
	}
	if _, err := snap.Query(ctx, "anc(X)"); err == nil {
		t.Error("wrong arity accepted")
	}
	if _, err := snap.Query(ctx, "anc(X, Y), anc(Y, Z)"); err == nil {
		t.Error("conjunctive query accepted as single atom")
	}
}

// TestQueryDeprecated pins the legacy store-matching wrapper kept for
// compatibility.
func TestQueryDeprecated(t *testing.T) {
	p := MustParse(ancestorSrc)
	res, err := Eval(context.Background(), p, nil, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	store := res.Output
	got, err := p.Query(store, "anc(a, X)")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Errorf("anc(a, X) matched %d tuples, want 3", len(got))
	}
	// Unknown constant matches nothing, without error.
	if got, err := p.Query(store, "anc(nobody, X)"); err != nil || got != nil {
		t.Errorf("unknown constant: got %v, %v", got, err)
	}
	// A predicate absent from the store is an error here (unlike
	// Snapshot.Query, which answers from the full model).
	if _, err := p.Query(store, "nosuch(X)"); err == nil {
		t.Error("unknown predicate accepted")
	}
}

func TestLoadWriteCSV(t *testing.T) {
	p := MustParse(`
anc(X, Y) :- par(X, Y).
anc(X, Y) :- par(X, Z), anc(Z, Y).
`)
	edb := Store{}
	n, err := p.LoadCSV(edb, "par", strings.NewReader("a,b\nb,c\nb,c\n"))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("loaded %d distinct tuples, want 2", n)
	}
	res, err := Eval(context.Background(), p, edb, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	store := res.Output
	var out strings.Builder
	wrote, err := p.WriteCSV(store, "anc", &out)
	if err != nil {
		t.Fatal(err)
	}
	if wrote != 3 {
		t.Errorf("wrote %d records, want 3", wrote)
	}
	if out.String() != "a,b\na,c\nb,c\n" {
		t.Errorf("CSV = %q", out.String())
	}
	// Errors: ragged record, arity conflict with the program, unknown pred.
	if _, err := p.LoadCSV(Store{}, "par", strings.NewReader("a,b\nc\n")); err == nil {
		t.Error("ragged CSV accepted")
	}
	if _, err := p.LoadCSV(Store{}, "par", strings.NewReader("a,b,c\n")); err == nil {
		t.Error("arity conflict with program accepted")
	}
	if _, err := p.WriteCSV(store, "nosuch", &out); err == nil {
		t.Error("unknown predicate accepted by WriteCSV")
	}
}

func TestLoadCSVFile(t *testing.T) {
	p := MustParse("edge(X, Y) :- raw(X, Y).")
	dir := t.TempDir()
	path := dir + "/raw.csv"
	if err := osWriteFile(path, "x,y\ny,z\n"); err != nil {
		t.Fatal(err)
	}
	edb := Store{}
	n, err := p.LoadCSVFile(edb, "raw", path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("loaded %d", n)
	}
	if _, err := p.LoadCSVFile(edb, "raw", dir+"/missing.csv"); err == nil {
		t.Error("missing file accepted")
	}
}

func osWriteFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func TestCommFreeChoiceFacade(t *testing.T) {
	p := MustParse(`
anc(X, Y) :- par(X, Y).
anc(X, Y) :- par(X, Z), anc(Z, Y).
`)
	vr, ve, hname, err := p.CommFreeChoice(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(vr) != 1 || vr[0] != "Y" || len(ve) != 1 || ve[0] != "Y" {
		t.Errorf("choice = %v / %v", vr, ve)
	}
	if hname == "" {
		t.Error("empty hash name")
	}
	// Acyclic dataflow: no choice exists.
	acyclic := MustParse(`
p(U, V, W) :- s(U, V, W).
p(U, V, W) :- p(V, W, Z), q(U, Z).
`)
	if _, _, _, err := acyclic.CommFreeChoice(2); err == nil {
		t.Error("acyclic program got a comm-free choice")
	}
}

func TestRewriteListings(t *testing.T) {
	p := MustParse(`
anc(X, Y) :- par(X, Y).
anc(X, Y) :- par(X, Z), anc(Z, Y).
`)
	for _, tc := range []struct {
		name string
		opts EvalOptions
		want string // substring expected in processor 0's listing
	}{
		{"auto-theorem3", EvalOptions{Workers: 2}, "hsym2(Y) = 0"},
		{"hash", EvalOptions{Workers: 2, Strategy: StrategyHashPartition, VR: []string{"Z"}, VE: []string{"X"}}, "anc@ch@0@1(Z, Y)"},
		{"nocomm", EvalOptions{Workers: 2, Strategy: StrategyNoComm}, "par(X, Z), anc@out@0(Z, Y)"},
		{"tradeoff", EvalOptions{Workers: 2, Strategy: StrategyTradeoff, Locality: 0.5, VR: []string{"Z"}, VE: []string{"X"}}, "hmix500@0"},
	} {
		listings, err := RewriteListings(p, tc.opts)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(listings) != 2 {
			t.Fatalf("%s: %d listings", tc.name, len(listings))
		}
		if !strings.Contains(listings[0], tc.want) {
			t.Errorf("%s: listing missing %q:\n%s", tc.name, tc.want, listings[0])
		}
	}
	// General scheme on a non-sirup.
	nl := MustParse(`
anc(X, Y) :- par(X, Y).
anc(X, Y) :- anc(X, Z), anc(Z, Y).
`)
	listings, err := RewriteListings(nl, EvalOptions{Workers: 2, Strategy: StrategyGeneral})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(listings[0], "anc@in@0(X, Z), anc@in@0(Z, Y)") {
		t.Errorf("general listing wrong:\n%s", listings[0])
	}
	// Sirup strategies reject non-sirups.
	if _, err := RewriteListings(nl, EvalOptions{Strategy: StrategyNoComm}); err == nil {
		t.Error("NoComm listing accepted a non-sirup")
	}
}

// TestEngineDispatch: Eval with an explicit Engine is exactly the matching
// wrapper — one dispatcher behind all three front doors.
func TestEngineDispatch(t *testing.T) {
	p := MustParse(ancestorSrc)
	seq, err := Eval(context.Background(), p, nil, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Eval(context.Background(), p, nil, EvalOptions{Engine: EngineParallel, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Output["anc"].Equal(par.Output["anc"]) {
		t.Error("EngineParallel via Eval differs from the sequential least model")
	}
	if par.Stats == nil || seq.Stats != nil {
		t.Error("engine-specific stats landed on the wrong result fields")
	}
	if _, err := Eval(context.Background(), p, nil, EvalOptions{Engine: Engine(99)}); err == nil {
		t.Error("unknown engine accepted")
	}
}

// TestSentinelErrors: failures expose errors.Is-able sentinels.
func TestSentinelErrors(t *testing.T) {
	nonlinear := MustParse(`
anc(X, Y) :- par(X, Y).
anc(X, Y) :- anc(X, Z), anc(Z, Y).
par(a, b).
`)
	_, err := EvalParallel(context.Background(), nonlinear, nil, EvalOptions{Strategy: StrategyHashPartition})
	if !errors.Is(err, ErrNotLinearSirup) {
		t.Errorf("StrategyHashPartition on a non-sirup: err = %v, want errors.Is ErrNotLinearSirup", err)
	}
	if nonlinear.IsLinearSirup() {
		t.Error("nonlinear program classified as a sirup")
	}
}
