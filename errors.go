package parlog

import (
	"parlog/internal/analysis"
	"parlog/internal/dist"
)

// Sentinel errors for errors.Is. Every error the evaluators return wraps
// the matching sentinel with %w, so callers can branch on the failure class
// without parsing messages.
var (
	// ErrNotLinearSirup reports that a sirup-only strategy (Sections 3–6)
	// was asked to run a program that is not a linear sirup.
	ErrNotLinearSirup = analysis.ErrNotLinearSirup

	// ErrWorkerLost reports that a distributed run lost a worker it could
	// not recover from — no survivor was left to adopt the dead worker's
	// hash bucket, or the death landed after quiescence.
	ErrWorkerLost = dist.ErrWorkerLost

	// ErrTimeout reports that a distributed run exceeded its configured
	// Timeout before reaching quiescence.
	ErrTimeout = dist.ErrTimeout

	// ErrResourceExhausted reports that a distributed run stayed over its
	// MaxMemoryBytes budget even after a forced checkpoint-and-truncate
	// cycle — the fail-fast alternative to an out-of-memory kill.
	ErrResourceExhausted = dist.ErrResourceExhausted
)
