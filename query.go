package parlog

import (
	"context"
	"fmt"
	"strings"

	"parlog/internal/ast"
	"parlog/internal/parser"
	"parlog/internal/rewrite"
	"parlog/internal/seminaive"
)

// PlannerMode selects the join-order planner shared by all engines.
type PlannerMode = seminaive.PlanMode

const (
	// PlannerBoundness is the legacy order: most bound argument positions
	// first, cardinalities ignored. The default, pinned by golden traces.
	PlannerBoundness = seminaive.PlanBoundness
	// PlannerGreedy breaks boundness ties by relation cardinality (smaller
	// joins first) and seeds non-delta plans at the most selective atom.
	PlannerGreedy = seminaive.PlanGreedy
	// PlannerLeftToRight joins in textual order — the ablation baseline.
	PlannerLeftToRight = seminaive.PlanLeftToRight
)

// PlanReport is the planner's account of one evaluation, collected when
// EvalOptions.Explain is set. The sequential engine reports every compiled
// rule plan; the parallel engines report the planner and demand summary
// (their per-worker plans are fragment-local).
type PlanReport struct {
	// Planner names the join-order planner used.
	Planner string
	// Demand summarizes the magic-sets rewrite Query applied, nil when no
	// rewrite happened.
	Demand *DemandReport
	// Rules holds one entry per distinct rule, in compile order.
	Rules []RulePlan
}

// DemandReport summarizes a magic-sets (demand) rewrite.
type DemandReport struct {
	// Goal is the original goal atom; Adornment its binding pattern.
	Goal      string
	Adornment string
	// Rules is the rewritten program's rule count; MagicRules how many of
	// them are demand (magic/seed) rules.
	Rules      int
	MagicRules int
}

// RulePlan reports the chosen execution strategy of one rule.
type RulePlan struct {
	// Rule is the rule as written.
	Rule string
	// Order lists the body atoms in execution order.
	Order []string
	// Reordered is true when the order differs from the textual one.
	Reordered bool
	// Pushdowns describes constraints checked before the final join level.
	Pushdowns []string
}

// newPlanReport starts a report for one evaluation.
func newPlanReport(opts EvalOptions) *PlanReport {
	r := &PlanReport{Planner: opts.Planner.String()}
	if opts.demand != nil {
		r.Demand = &DemandReport{
			Goal:       opts.demand.goal,
			Adornment:  opts.demand.adornment,
			Rules:      opts.demand.rules,
			MagicRules: opts.demand.magic,
		}
	}
	return r
}

// observe folds one compiled plan into the report. Delta variants of the
// same rule share an order decision; only the first is kept.
func (r *PlanReport) observe(p *Program, pl *seminaive.Plan) {
	text := p.ast.FormatRule(pl.Rule)
	for _, existing := range r.Rules {
		if existing.Rule == text {
			return
		}
	}
	rp := RulePlan{Rule: text, Reordered: pl.Moved() > 0}
	for _, idx := range pl.Order {
		rp.Order = append(rp.Order, p.ast.FormatAtom(pl.Rule.Body[idx]))
	}
	last := len(pl.Order) - 1
	for ci, pos := range pl.ConstraintPositions() {
		if pos >= last {
			continue
		}
		c := pl.Rule.Constraints[ci]
		where := "before the join"
		if pos >= 0 {
			where = fmt.Sprintf("after atom %d", pos+1)
		}
		rp.Pushdowns = append(rp.Pushdowns, fmt.Sprintf("%s checked %s", c.String(), where))
	}
	r.Rules = append(r.Rules, rp)
}

// Explain renders the plan report as stable, line-oriented text: the
// planner, the demand rewrite if any, and per rule the chosen join order
// and constraint pushdowns. When the run also collected a runtime profile
// (EvalOptions.Profile), an "analyze" section with actual-vs-planned
// cardinalities follows — explain-analyze in one transcript. Returns ""
// when the run was evaluated with neither Explain nor Profile set.
func (r *Result) Explain() string {
	if r.Plan == nil && r.Profile == nil {
		return ""
	}
	var b strings.Builder
	if r.Plan != nil {
		fmt.Fprintf(&b, "planner: %s\n", r.Plan.Planner)
		if d := r.Plan.Demand; d != nil {
			fmt.Fprintf(&b, "demand: goal=%s adornment=%s rules=%d magic=%d\n",
				d.Goal, d.Adornment, d.Rules, d.MagicRules)
		}
		for _, rp := range r.Plan.Rules {
			fmt.Fprintf(&b, "rule %s\n", rp.Rule)
			suffix := ""
			if rp.Reordered {
				suffix = "  (reordered)"
			}
			fmt.Fprintf(&b, "  order: %s%s\n", strings.Join(rp.Order, ", "), suffix)
			for _, pd := range rp.Pushdowns {
				fmt.Fprintf(&b, "  pushdown: %s\n", pd)
			}
		}
	}
	if r.Profile != nil {
		b.WriteString(r.Profile.String())
	}
	return b.String()
}

// QueryResult is a streaming answer set: the underlying evaluation Result
// plus a single-use tuple iterator over the goal's matches. With demand
// rewriting applied, Result.Output holds the rewritten (adorned) relations;
// the iterator always yields tuples of the original goal predicate's arity.
//
// The iterator is single-use: once exhausted, Next keeps returning false
// and All returns nil — re-iterate by issuing the query again. When the
// query's context is canceled mid-iteration, Next returns false early and
// Err reports the cause.
type QueryResult struct {
	*Result
	// Pred is the goal predicate as queried.
	Pred string
	ctx  context.Context
	cur  *seminaive.Cursor
	pre  []Tuple // preloaded answers (Snapshot.Query); nil when streaming
	pi   int
	err  error
}

// Next returns the next answer tuple; ok is false when the stream is
// exhausted, the context is canceled, or an earlier call already drained
// it. The tuple is freshly allocated and safe to retain.
func (q *QueryResult) Next() (Tuple, bool) {
	if q.err != nil {
		return nil, false
	}
	if q.ctx != nil {
		if err := q.ctx.Err(); err != nil {
			q.err = err
			return nil, false
		}
	}
	if q.pre != nil {
		if q.pi >= len(q.pre) {
			return nil, false
		}
		t := q.pre[q.pi]
		q.pi++
		return t, true
	}
	if q.cur == nil || !q.cur.Next() {
		return nil, false
	}
	return q.cur.Head(), true
}

// All drains the remaining stream into a slice — the materializing
// convenience. Answers already consumed via Next are not replayed; a
// second All on the same result returns nil.
func (q *QueryResult) All() []Tuple {
	var out []Tuple
	for {
		t, ok := q.Next()
		if !ok {
			return out
		}
		out = append(out, t)
	}
}

// Err reports why iteration stopped early — a canceled or expired context —
// or nil after a normally exhausted stream.
func (q *QueryResult) Err() error {
	return q.err
}

// Query evaluates prog goal-directed and streams the goal atom's answers.
// The goal is a single atom such as "anc(a, X)?" (the trailing '?' is
// optional); constants must be bound, variables are answer columns. Unless
// opts.NoDemand is set, the program is first specialized to the goal with
// the magic-sets (demand) rewrite of internal/rewrite, so only the portion
// of the IDB the goal depends on is materialized; evaluation then runs on
// the engine opts selects with the opts.Planner join planner. Explain is
// implied — the static plan report is free to collect, and
// QueryResult.Explain() reports the decisions taken. Runtime profiling
// (opts.Profile) stays strictly opt-in: the hot serving path pays nothing
// unless the caller asks for the analyze section.
func Query(ctx context.Context, p *Program, edb Store, goal string, opts EvalOptions) (*QueryResult, error) {
	goalAtom, err := p.parseGoal(goal)
	if err != nil {
		return nil, err
	}
	opts.Explain = true

	runProg, runStore, matchAtom := p, edb, goalAtom
	if !opts.NoDemand {
		d, err := rewrite.DemandRewrite(p.ast, goalAtom)
		if err != nil {
			return nil, fmt.Errorf("parlog: %w", err)
		}
		if d != nil {
			runProg = &Program{ast: d.Program}
			matchAtom = d.Goal
			if runStore == nil {
				runStore = Store{}
			} else {
				runStore = runStore.Clone()
			}
			seed := NewRelation(len(d.SeedTuple))
			seed.Insert(Tuple(d.SeedTuple))
			runStore[d.SeedPred] = seed
			opts.demand = &demandNote{
				goal:      p.ast.FormatAtom(goalAtom),
				adornment: d.Adornment,
				rules:     d.Rules,
				magic:     d.MagicRules,
			}
		}
	}

	res, err := eval(ctx, runProg, runStore, opts)
	if err != nil {
		return nil, err
	}
	qr := &QueryResult{Result: res, Pred: goalAtom.Pred, ctx: ctx}

	// Stream the matches of the (possibly adorned) goal atom out of the
	// result store. The parallel engines' Output omits base relations, so
	// an EDB goal falls back to the input store.
	cursorStore := res.Output
	if _, ok := cursorStore[matchAtom.Pred]; !ok && runStore != nil {
		cursorStore = runStore
	}
	if rel, ok := cursorStore[matchAtom.Pred]; ok && rel != nil {
		if rel.Arity() != matchAtom.Arity() {
			return nil, fmt.Errorf("parlog: %s has arity %d, goal uses %d", goalAtom.Pred, rel.Arity(), matchAtom.Arity())
		}
		match := ast.Rule{Head: matchAtom.Clone(), Body: []ast.Atom{matchAtom.Clone()}}
		qr.cur = seminaive.CompileWith(match, nil, seminaive.PlanConfig{Mode: opts.Planner}).
			Stream(cursorStore, nil)
	}
	return qr, nil
}

// trimGoal strips the optional trailing '?' or '.' of a goal atom.
func trimGoal(goal string) string {
	q := strings.TrimSpace(goal)
	q = strings.TrimSuffix(q, "?")
	return strings.TrimSuffix(strings.TrimSpace(q), ".")
}

// parseGoal parses a goal atom ("anc(a, X)" or "anc(a, X)?"), interning
// its constants into the program's interner so they line up with the
// program's values.
func (p *Program) parseGoal(goal string) (ast.Atom, error) {
	q := trimGoal(goal)
	// Wrap the atom in a rule with a ground head so the parser's safety
	// check passes regardless of the goal's variables.
	tmp, err := parser.Parse("qwrap(ok) :- " + q + ".")
	if err != nil {
		return ast.Atom{}, fmt.Errorf("parlog: bad goal %q: %w", goal, err)
	}
	rule := tmp.Rules[0]
	if len(rule.Body) != 1 || len(rule.Negated) > 0 {
		return ast.Atom{}, fmt.Errorf("parlog: goal must be a single positive atom, got %q", goal)
	}
	atom := rule.Body[0]
	for i, term := range atom.Args {
		if term.IsVar() {
			continue
		}
		atom.Args[i] = ast.C(p.ast.Interner.Intern(tmp.Interner.Name(term.Value)))
	}
	if ar, ok := p.ast.Arities()[atom.Pred]; ok && ar != atom.Arity() {
		return ast.Atom{}, fmt.Errorf("parlog: %s has arity %d, goal uses %d", atom.Pred, ar, atom.Arity())
	}
	return atom, nil
}
