package parlog

import (
	"errors"
	"fmt"
)

// ErrBadOptions reports an EvalOptions combination that cannot mean what
// the caller intended — an engine-specific knob aimed at the wrong engine,
// a value outside its domain, or two limits that contradict each other.
// Every validation error wraps it, so callers can errors.Is-branch on the
// class without parsing messages.
var ErrBadOptions = errors.New("parlog: invalid options")

func badOptions(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadOptions, fmt.Sprintf(format, args...))
}

// Validate checks the option set for combinations that are certainly
// mistakes, before defaulting fills anything in. Eval, Query and Open call
// it on entry, so a nonsense combination fails fast instead of being
// silently ignored; callers building options programmatically can also call
// it directly. The zero value always validates.
func (o EvalOptions) Validate() error {
	switch o.Engine {
	case EngineSequential, EngineParallel, EngineDistributed:
	default:
		return badOptions("unknown engine %d", o.Engine)
	}
	if o.Workers < 0 {
		return badOptions("Workers must be non-negative, got %d", o.Workers)
	}
	if o.Workers > 0 && o.Engine == EngineSequential {
		return badOptions("Workers is a parallel-engine knob; the sequential engine runs one processor (use EvalParallel, EvalDistributed, or set Engine)")
	}
	if o.Naive && o.Engine != EngineSequential {
		return badOptions("Naive selects the sequential ablation baseline; the parallel engines are always semi-naive")
	}
	if o.MaxIterations < 0 {
		return badOptions("MaxIterations must be non-negative, got %d", o.MaxIterations)
	}
	if o.Locality < 0 || o.Locality > 1 {
		return badOptions("Locality must be in [0,1], got %g", o.Locality)
	}
	if o.PollInterval < 0 {
		return badOptions("PollInterval must be non-negative, got %v", o.PollInterval)
	}
	if o.MaxBatch < 0 {
		return badOptions("MaxBatch must be non-negative, got %d", o.MaxBatch)
	}

	if o.Engine != EngineDistributed {
		// The fault-tolerance and flow-control knobs configure the TCP
		// coordinator; setting them on another engine means the caller
		// expects behavior they will not get.
		distOnly := []struct {
			name string
			set  bool
		}{
			{"MaxRetries", o.MaxRetries != 0},
			{"HeartbeatInterval", o.HeartbeatInterval != 0},
			{"WorkerDeadline", o.WorkerDeadline != 0},
			{"CheckpointEvery", o.CheckpointEvery != 0},
			{"CheckpointInterval", o.CheckpointInterval != 0},
			{"MaxInflightBatches", o.MaxInflightBatches != 0},
			{"MaxQueueBytes", o.MaxQueueBytes != 0},
			{"MaxMemoryBytes", o.MaxMemoryBytes != 0},
		}
		for _, k := range distOnly {
			if k.set {
				return badOptions("%s applies only to EngineDistributed", k.name)
			}
		}
	} else {
		if o.MaxRetries < 0 {
			return badOptions("MaxRetries must be non-negative, got %d", o.MaxRetries)
		}
		if o.HeartbeatInterval < 0 || o.WorkerDeadline < 0 ||
			o.CheckpointInterval < 0 {
			return badOptions("distributed intervals must be non-negative")
		}
		if o.CheckpointEvery < 0 || o.MaxInflightBatches < 0 ||
			o.MaxQueueBytes < 0 || o.MaxMemoryBytes < 0 {
			return badOptions("distributed limits must be non-negative")
		}
		if o.MaxQueueBytes > 0 && o.Workers > 0 && o.MaxQueueBytes < int64(o.Workers) {
			return badOptions("MaxQueueBytes %d splits to zero byte credits across %d workers", o.MaxQueueBytes, o.Workers)
		}
		if o.MaxMemoryBytes > 0 && o.MaxQueueBytes > o.MaxMemoryBytes {
			return badOptions("MaxQueueBytes %d exceeds the MaxMemoryBytes budget %d it is part of", o.MaxQueueBytes, o.MaxMemoryBytes)
		}
	}

	if o.MetricsAddr == "" {
		if o.Pprof {
			return badOptions("Pprof mounts handlers on the MetricsAddr server; set MetricsAddr")
		}
		if o.MetricsHold != 0 {
			return badOptions("MetricsHold keeps the MetricsAddr server alive; set MetricsAddr")
		}
		if o.TelemetryReady != nil {
			return badOptions("TelemetryReady reports the MetricsAddr server's address; set MetricsAddr")
		}
	}
	if o.MetricsHold < 0 {
		return badOptions("MetricsHold must be non-negative, got %v", o.MetricsHold)
	}

	if o.Dir == "" && !o.Durability.isZero() {
		return badOptions("Durability configures the Dir state directory; set Dir")
	}
	switch o.Durability.Fsync {
	case FsyncAlways, FsyncInterval, FsyncNever:
	default:
		return badOptions("unknown fsync policy %d", o.Durability.Fsync)
	}
	if o.Durability.FsyncEvery < 0 {
		return badOptions("Durability.FsyncEvery must be non-negative, got %v", o.Durability.FsyncEvery)
	}
	if o.Durability.FsyncEvery != 0 && o.Durability.Fsync != FsyncInterval {
		return badOptions("Durability.FsyncEvery paces FsyncInterval; set Durability.Fsync")
	}
	if o.Durability.CompactEvery < 0 {
		return badOptions("Durability.CompactEvery must be non-negative, got %d", o.Durability.CompactEvery)
	}
	return nil
}
