package parlog

// Tests for the stratified-negation extension: the paper addresses pure
// Datalog, but the framework extends naturally — negation-as-absence is
// sound once strata run as sequenced parallel phases, because the negated
// relation is complete (and replicated) before any processor probes it.

import (
	"context"
	"strings"
	"testing"

	"parlog/internal/randprog"
	"parlog/internal/workload"
)

// unreachableSrc: classic two-stratum program — reach is computed first,
// then its complement relative to node.
const unreachableSrc = `
reach(X) :- source(X).
reach(Y) :- reach(X), edge(X, Y).
unreachable(X) :- node(X), !reach(X).
`

func TestNegationSequential(t *testing.T) {
	p := MustParse(unreachableSrc + `
source(a).
edge(a, b). edge(b, c). edge(d, e).
node(a). node(b). node(c). node(d). node(e).
`)
	res, err := Eval(context.Background(), p, nil, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	store := res.Output
	if got := store["reach"].Len(); got != 3 { // a b c
		t.Errorf("|reach| = %d, want 3", got)
	}
	if got := store["unreachable"].Len(); got != 2 { // d e
		t.Errorf("|unreachable| = %d, want 2", got)
	}
	out := p.Format(store, "unreachable")
	if !strings.Contains(out, "unreachable(d).") || !strings.Contains(out, "unreachable(e).") {
		t.Errorf("unreachable = %s", out)
	}
	if strings.Contains(out, "unreachable(a).") {
		t.Errorf("a wrongly unreachable:\n%s", out)
	}
}

func TestNegationParallelMatchesSequential(t *testing.T) {
	// Random graph; compare three-stratum pipeline across worker counts and
	// termination modes.
	g := workload.RandomGraph(20, 40, 3)
	var facts strings.Builder
	for _, e := range g.Rows() {
		facts.WriteString("edge(n")
		facts.WriteString(itoa(int(e[0])))
		facts.WriteString(", n")
		facts.WriteString(itoa(int(e[1])))
		facts.WriteString(").\n")
	}
	for i := 0; i < 20; i++ {
		facts.WriteString("node(n" + itoa(i) + ").\n")
	}
	facts.WriteString("source(n0).\n")
	src := unreachableSrc + facts.String()

	seqP := MustParse(src)
	wantRes, err := Eval(context.Background(), seqP, nil, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := wantRes.Output
	for _, workers := range []int{1, 2, 4} {
		for _, mode := range []TerminationMode{TermCredit, TermCounting, TermDijkstraScholten} {
			p := MustParse(src)
			res, err := EvalParallel(context.Background(), p, nil, EvalOptions{Workers: workers, Termination: mode})
			if err != nil {
				t.Fatalf("workers=%d mode=%d: %v", workers, mode, err)
			}
			for _, pred := range []string{"reach", "unreachable"} {
				if !want[pred].Equal(res.Output[pred]) {
					t.Fatalf("workers=%d mode=%d: %s differs from sequential", workers, mode, pred)
				}
			}
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

// TestNegationThreeStrata: negation of a negation-derived predicate.
func TestNegationThreeStrata(t *testing.T) {
	src := `
reach(X) :- source(X).
reach(Y) :- reach(X), edge(X, Y).
unreachable(X) :- node(X), !reach(X).
connected(X) :- node(X), !unreachable(X).
source(a).
edge(a, b). edge(c, d).
node(a). node(b). node(c). node(d).
`
	p := MustParse(src)
	wantRes, err := Eval(context.Background(), p, nil, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := wantRes.Output
	if want["connected"].Len() != 2 { // a, b
		t.Errorf("|connected| = %d, want 2", want["connected"].Len())
	}
	res, err := EvalParallel(context.Background(), MustParse(src), nil, EvalOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !want["connected"].Equal(res.Output["connected"]) {
		t.Error("parallel three-strata result differs")
	}
}

func TestNegationNotStratifiedRejected(t *testing.T) {
	// win(X) :- move(X, Y), !win(Y). — negation inside win's own component.
	src := `
win(X) :- move(X, Y), !win(Y).
move(a, b). move(b, c).
`
	p := MustParse(src)
	if _, err := Eval(context.Background(), p, nil, EvalOptions{}); err == nil {
		t.Error("non-stratified program accepted sequentially")
	}
	if _, err := EvalParallel(context.Background(), p, nil, EvalOptions{Workers: 2}); err == nil {
		t.Error("non-stratified program accepted in parallel")
	}
}

func TestNegationUnsafeRejected(t *testing.T) {
	// X in the negated atom does not occur positively.
	if _, err := Parse(`p(Y) :- q(Y), !r(X).`); err == nil {
		t.Error("unsafe negation accepted by the parser")
	}
}

func TestNegationNaiveModeRejected(t *testing.T) {
	p := MustParse(unreachableSrc + "node(a). source(a).")
	if _, err := Eval(context.Background(), p, nil, EvalOptions{Naive: true}); err == nil {
		t.Error("naive mode accepted a negation program")
	}
}

func TestNegationSirupStrategyRejected(t *testing.T) {
	p := MustParse(`
p(X) :- base(X).
p(Y) :- p(X), edge(X, Y), !blocked(Y).
base(a). edge(a, b). blocked(b).
`)
	// Sirup strategies must reject negation programs cleanly…
	if _, err := EvalParallel(context.Background(), p, nil, EvalOptions{Workers: 2, Strategy: StrategyHashPartition}); err == nil {
		t.Error("hash-partition strategy accepted a negation program")
	}
	// …while the general (auto) route runs them.
	wantRes, err := Eval(context.Background(), p, nil, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := wantRes.Output
	res, err := EvalParallel(context.Background(), p, nil, EvalOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !want["p"].Equal(res.Output["p"]) {
		t.Error("negation-in-recursion (stratified) differs in parallel")
	}
	// b is blocked: p = {a} only.
	if res.Output["p"].Len() != 1 {
		t.Errorf("|p| = %d, want 1", res.Output["p"].Len())
	}
}

func TestNegationRoundTripPrinting(t *testing.T) {
	p := MustParse(`unreach(X) :- node(X), !reach(X).` + "\n" + `reach(X) :- src(X).`)
	s := p.String()
	if !strings.Contains(s, "!reach(X)") {
		t.Errorf("printed program lost negation:\n%s", s)
	}
	again, err := Parse(s)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if again.String() != s {
		t.Error("print/parse not a fixpoint with negation")
	}
}

// TestNegationRandomProgramsDifferential: layered random programs with
// negation — sequential stratified evaluation vs the parallel per-stratum
// driver must agree on every derived predicate.
func TestNegationRandomProgramsDifferential(t *testing.T) {
	cfg := randprog.Defaults()
	cfg.Layered = true
	cfg.NegationProb = 0.5
	for seed := int64(0); seed < 25; seed++ {
		g := randprog.Generate(cfg, seed)
		prog := &Program{}
		// Re-parse through the public API so the test exercises the same
		// path users do.
		p, err := Parse(g.Prog.String())
		if err != nil {
			t.Fatalf("seed %d: generated program does not parse: %v\n%s", seed, err, g.Prog)
		}
		*prog = *p
		// The generator interns constants in its own order; rebuild the EDB
		// under the re-parsed program's interner.
		edb := Store{}
		for pred, rel := range g.EDB {
			dst := edb.Get(pred, rel.Arity())
			for _, tu := range rel.Rows() {
				nt := make(Tuple, len(tu))
				for i, v := range tu {
					nt[i] = prog.Intern(g.Prog.Interner.Name(v))
				}
				dst.Insert(nt)
			}
		}
		wantRes, err := Eval(context.Background(), prog, edb, EvalOptions{})
		if err != nil {
			t.Fatalf("seed %d: sequential: %v\n%s", seed, err, g.Prog)
		}
		want := wantRes.Output
		res, err := EvalParallel(context.Background(), prog, edb, EvalOptions{Workers: 2 + int(seed%3)})
		if err != nil {
			t.Fatalf("seed %d: parallel: %v\n%s", seed, err, g.Prog)
		}
		for _, pred := range prog.IDB() {
			a, b := want[pred], res.Output[pred]
			aEmpty := a == nil || a.Len() == 0
			bEmpty := b == nil || b.Len() == 0
			if aEmpty && bEmpty {
				continue
			}
			if aEmpty != bEmpty || !a.Equal(b) {
				t.Fatalf("seed %d: %s differs between sequential and parallel\n%s", seed, pred, g.Prog)
			}
		}
	}
}
