package parlog_test

import (
	"context"
	"fmt"

	"parlog"
)

// The paper's running example: compute the ancestor relation in parallel
// with zero communication (StrategyAuto applies Theorem 3 to the ancestor
// rule's cyclic dataflow graph).
func Example() {
	prog := parlog.MustParse(`
		anc(X, Y) :- par(X, Y).
		anc(X, Y) :- par(X, Z), anc(Z, Y).
		par(a, b). par(b, c). par(c, d).
	`)
	res, err := parlog.EvalParallel(context.Background(), prog, nil, parlog.EvalOptions{Workers: 4})
	if err != nil {
		panic(err)
	}
	fmt.Printf("tuples sent: %d\n", res.Stats.TotalTuplesSent())
	fmt.Print(prog.Format(res.Output, "anc"))
	// Output:
	// tuples sent: 0
	// anc(a, b).
	// anc(a, c).
	// anc(a, d).
	// anc(b, c).
	// anc(b, d).
	// anc(c, d).
}

// Sequential semi-naive evaluation with statistics.
func ExampleEval() {
	prog := parlog.MustParse(`
		anc(X, Y) :- par(X, Y).
		anc(X, Y) :- par(X, Z), anc(Z, Y).
		par(a, b). par(b, c).
	`)
	res, err := parlog.Eval(context.Background(), prog, nil, parlog.EvalOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("|anc| = %d, firings = %d\n", res.Output["anc"].Len(), res.SeqStats.Firings)
	// Output:
	// |anc| = 3, firings = 3
}

// Dataflow analysis: Figure 1 of the paper.
func ExampleProgram_Dataflow() {
	prog := parlog.MustParse(`
		p(U, V, W) :- s(U, V, W).
		p(U, V, W) :- p(V, W, Z), q(U, Z).
	`)
	df, err := prog.Dataflow()
	if err != nil {
		panic(err)
	}
	fmt.Println(df)
	// Output:
	// 1 → 2 → 3
}

// Deriving the minimal processor interconnect of Example 6 (Figure 3).
func ExampleDeriveNetwork() {
	prog := parlog.MustParse(`
		p(X, Y) :- q(X, Y).
		p(X, Y) :- p(Y, Z), r(X, Z).
	`)
	net, err := parlog.DeriveNetwork(prog,
		[]string{"Y", "Z"}, []string{"X", "Y"},
		parlog.BitVectorHash(2), parlog.BitVectorHash(2),
		[]int{0, 1, 2, 3})
	if err != nil {
		panic(err)
	}
	fmt.Print(net)
	// Output:
	// 0 → [0 2]
	// 1 → [0 1 2]
	// 2 → [1 2 3]
	// 3 → [1 3]
}
