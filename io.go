package parlog

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"

	"parlog/internal/relation"
)

// LoadCSV reads tuples for one base predicate from CSV data (one tuple per
// record, one constant per field) into store, interning constants through
// the program. All records must have the same width, which must match the
// predicate's arity if the program already uses it.
func (p *Program) LoadCSV(store Store, pred string, r io.Reader) (int, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // validated manually for a better message
	arity := -1
	if want, ok := p.ast.Arities()[pred]; ok {
		arity = want
	}
	var rel *relation.Relation
	added := 0
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return added, fmt.Errorf("parlog: %s: %w", pred, err)
		}
		line++
		if arity < 0 {
			arity = len(rec)
		}
		if len(rec) != arity {
			return added, fmt.Errorf("parlog: %s record %d has %d fields, want %d", pred, line, len(rec), arity)
		}
		if rel == nil {
			rel = store.Get(pred, arity)
		}
		t := make(relation.Tuple, arity)
		for i, field := range rec {
			t[i] = p.ast.Interner.Intern(field)
		}
		if rel.Insert(t) {
			added++
		}
	}
	return added, nil
}

// LoadCSVFile is LoadCSV over a file path.
func (p *Program) LoadCSVFile(store Store, pred, path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return p.LoadCSV(store, pred, f)
}

// WriteCSV writes one relation of a result store as CSV (constants spelled
// out), sorted, returning the number of records written.
func (p *Program) WriteCSV(store Store, pred string, w io.Writer) (int, error) {
	rel, ok := store[pred]
	if !ok {
		return 0, fmt.Errorf("parlog: predicate %s not in the store", pred)
	}
	cw := csv.NewWriter(w)
	n := 0
	for _, t := range rel.SortedRows() {
		rec := make([]string, len(t))
		for i, v := range t {
			rec[i] = p.ConstName(v)
		}
		if err := cw.Write(rec); err != nil {
			return n, err
		}
		n++
	}
	cw.Flush()
	return n, cw.Error()
}
