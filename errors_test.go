package parlog

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"testing"

	"parlog/internal/dist"
	"parlog/internal/store"
)

// TestSentinelErrorsTable pins the public failure taxonomy: every
// exported sentinel is distinct from the others, survives %w wrap
// chains, and aliases the internal sentinel the lower layer actually
// returns — so errors.Is works across package boundaries.
func TestSentinelErrorsTable(t *testing.T) {
	sentinels := []struct {
		name string
		err  error
	}{
		{"ErrBadOptions", ErrBadOptions},
		{"ErrNotLinearSirup", ErrNotLinearSirup},
		{"ErrWorkerLost", ErrWorkerLost},
		{"ErrTimeout", ErrTimeout},
		{"ErrResourceExhausted", ErrResourceExhausted},
		{"ErrCorruptSegment", ErrCorruptSegment},
		{"ErrTornLog", ErrTornLog},
	}
	for i, a := range sentinels {
		if a.err == nil {
			t.Fatalf("%s is nil", a.name)
		}
		// Two levels of %w must still match.
		chain := fmt.Errorf("outer: %w", fmt.Errorf("inner: %w", a.err))
		if !errors.Is(chain, a.err) {
			t.Errorf("%s lost through a wrap chain", a.name)
		}
		for j, b := range sentinels {
			if i != j && errors.Is(a.err, b.err) {
				t.Errorf("%s matches %s — sentinels must be distinct", a.name, b.name)
			}
		}
	}

	// The re-exports alias the internal sentinels, not copies: an error
	// produced by internal/store or internal/dist matches the public name.
	if ErrCorruptSegment != store.ErrCorruptSegment || ErrTornLog != store.ErrTornLog {
		t.Error("durability sentinels are not aliases of internal/store's")
	}
	if ErrWorkerLost != dist.ErrWorkerLost || ErrTimeout != dist.ErrTimeout || ErrResourceExhausted != dist.ErrResourceExhausted {
		t.Error("distribution sentinels are not aliases of internal/dist's")
	}
}

// TestSentinelErrorsFromAPI drives the public entry points into each
// locally-reproducible failure class and checks the errors.Is verdict on
// what actually comes back.
func TestSentinelErrorsFromAPI(t *testing.T) {
	ctx := context.Background()
	p, err := Parse("anc(X, Y) :- par(X, Y). par(a, b).")
	if err != nil {
		t.Fatal(err)
	}
	edb := p.ExtractFacts()

	// Dir on a one-shot evaluator, and durability knobs without Dir.
	if _, err := Eval(ctx, p, edb, EvalOptions{Dir: t.TempDir()}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("Eval with Dir: err = %v, want ErrBadOptions", err)
	}
	if _, err := Open(ctx, p, edb, EvalOptions{Durability: DurabilityOptions{SkipCorrupt: true}}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("Open with Durability sans Dir: err = %v, want ErrBadOptions", err)
	}

	// A zero-length segment file in an otherwise-valid state directory.
	dir := t.TempDir()
	v, err := Open(ctx, p, edb, EvalOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if len(segs) != 1 {
		t.Fatalf("expected one segment after clean close, found %v", segs)
	}
	if err := os.WriteFile(segs[0], nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(ctx, p, edb, EvalOptions{Dir: dir}); !errors.Is(err, ErrCorruptSegment) {
		t.Errorf("Open over zero-length segment: err = %v, want ErrCorruptSegment", err)
	}

	// A state-dir path that is a plain file surfaces the OS error — the
	// errors.As leg of the taxonomy.
	file := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Open(ctx, p, edb, EvalOptions{Dir: file})
	var pathErr *fs.PathError
	if err == nil || !errors.As(err, &pathErr) {
		t.Errorf("Open over a file: err = %v, want a wrapped *fs.PathError", err)
	}
}
