// Quickstart: parse the paper's running example (ancestor / transitive
// closure), evaluate it sequentially and in parallel, and compare.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"parlog"
)

func main() {
	prog, err := parlog.Parse(`
% The running example of Ganguly–Silberschatz–Tsur (SIGMOD 1990).
anc(X, Y) :- par(X, Y).
anc(X, Y) :- par(X, Z), anc(Z, Y).

par(adam, seth).
par(seth, enos).
par(enos, kenan).
par(kenan, mahalalel).
par(mahalalel, jared).
par(jared, enoch).
`)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Program:")
	fmt.Println(prog)

	// Sequential semi-naive evaluation — the paper's baseline.
	seqRes, err := parlog.Eval(context.Background(), prog, nil, parlog.EvalOptions{})
	if err != nil {
		log.Fatal(err)
	}
	store, seqStats := seqRes.Output, seqRes.SeqStats
	fmt.Printf("Sequential semi-naive: |anc| = %d, firings = %d, iterations = %d\n\n",
		store["anc"].Len(), seqStats.Firings, seqStats.Iterations)

	// Parallel evaluation. StrategyAuto notices the cyclic dataflow graph of
	// the recursive rule (Figure 2: the self-loop 2→2) and derives a
	// communication-free scheme via Theorem 3.
	df, _ := prog.Dataflow()
	fmt.Printf("Dataflow graph of the recursive rule: %s\n", df)

	res, err := parlog.EvalParallel(context.Background(), prog, nil, parlog.EvalOptions{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Parallel (4 workers, auto scheme): |anc| = %d, firings = %d, tuples sent = %d\n\n",
		res.Output["anc"].Len(), res.Stats.TotalFirings(), res.Stats.TotalTuplesSent())

	if !store["anc"].Equal(res.Output["anc"]) {
		log.Fatal("BUG: parallel result differs from sequential")
	}
	fmt.Println("Ancestor relation (identical under both executions):")
	fmt.Print(prog.Format(res.Output, "anc"))
}
