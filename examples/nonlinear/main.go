// Nonlinear: the paper's Example 8 — the non-linear ancestor program
//
//	anc(X, Y) :- par(X, Y).
//	anc(X, Y) :- anc(X, Z), anc(Z, Y).
//
// is outside the linear-sirup class of Sections 3–6, so it exercises the
// general scheme of Section 7: per-rule discriminating sequences, one
// sending rule per recursive atom occurrence (the tuple anc(a,b) is routed
// to h(b) for use as the first atom and to h(a) for use as the second), and
// Theorem 6's non-redundancy guarantee.
//
// Run with: go run ./examples/nonlinear
package main

import (
	"context"
	"fmt"
	"log"

	"parlog"
	"parlog/internal/workload"
)

func main() {
	nonlinear := parlog.MustParse(`
anc(X, Y) :- par(X, Y).
anc(X, Y) :- anc(X, Z), anc(Z, Y).
`)
	linear := parlog.MustParse(`
anc(X, Y) :- par(X, Y).
anc(X, Y) :- par(X, Z), anc(Z, Y).
`)
	if nonlinear.IsLinearSirup() {
		log.Fatal("BUG: non-linear program classified as linear sirup")
	}

	edb := parlog.Store{"par": workload.RandomGraph(50, 200, 21)}

	seqRes, err := parlog.Eval(context.Background(), linear, edb, parlog.EvalOptions{})
	if err != nil {
		log.Fatal(err)
	}
	linStore, linStats := seqRes.Output, seqRes.SeqStats
	seqRes2, err := parlog.Eval(context.Background(), nonlinear, edb, parlog.EvalOptions{})
	if err != nil {
		log.Fatal(err)
	}
	nlStore, nlStats := seqRes2.Output, seqRes2.SeqStats
	if !linStore["anc"].Equal(nlStore["anc"]) {
		log.Fatal("BUG: linear and non-linear ancestor disagree")
	}
	fmt.Printf("random digraph, 50 nodes, 200 edges; |anc| = %d\n\n", nlStore["anc"].Len())
	fmt.Printf("sequential firings: linear sirup %d, non-linear %d (the non-linear\n",
		linStats.Firings, nlStats.Firings)
	fmt.Println("rule admits many more derivations of the same closure — Example 8's cost).")

	fmt.Printf("\n%3s %12s %10s %16s\n", "N", "tuples-sent", "firings", "vs-seq-nonlinear")
	for _, n := range []int{1, 2, 4, 8} {
		res, err := parlog.EvalParallel(context.Background(), nonlinear, edb, parlog.EvalOptions{
			Workers:  n,
			Strategy: parlog.StrategyGeneral,
		})
		if err != nil {
			log.Fatal(err)
		}
		if !nlStore["anc"].Equal(res.Output["anc"]) {
			log.Fatalf("N=%d: WRONG RESULT (Theorem 5 violated)", n)
		}
		fmt.Printf("%3d %12d %10d %+16d\n", n,
			res.Stats.TotalTuplesSent(), res.Stats.TotalFirings(),
			res.Stats.TotalFirings()-nlStats.Firings)
	}
	fmt.Println("\nat every N the parallel firing total equals the sequential non-linear count:")
	fmt.Println("Theorem 6's bound holds with equality — the discriminating constraint")
	fmt.Println("partitions the set of successful ground substitutions across processors.")
}
