// Network: reproduce the Section 5 compile-time analyses — the dataflow
// graphs of Figures 1 and 2, and the minimal network graphs of Figure 3
// (Example 6, bit-vector hash) and Figure 4 (Example 7, linear hash solved
// over {0,1}) — then execute Example 6 restricted to exactly the derived
// interconnect.
//
// Run with: go run ./examples/network
package main

import (
	"context"
	"fmt"
	"log"

	"parlog"
	"parlog/internal/workload"
)

func main() {
	// Figure 1: p(U,V,W) :- p(V,W,Z), q(U,Z) has the dataflow path 1 → 2 → 3.
	fig1 := parlog.MustParse(`
p(U, V, W) :- s(U, V, W).
p(U, V, W) :- p(V, W, Z), q(U, Z).
`)
	df1, err := fig1.Dataflow()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Figure 1 — dataflow of p(U,V,W) :- p(V,W,Z), q(U,Z):  %s\n", df1)

	// Figure 2: the ancestor rule has a self-loop at position 2, so Theorem 3
	// yields a communication-free scheme (Example 1's choice v(r)=⟨Y⟩).
	anc := parlog.MustParse(`
anc(X, Y) :- par(X, Y).
anc(X, Y) :- par(X, Z), anc(Z, Y).
`)
	df2, err := anc.Dataflow()
	if err != nil {
		log.Fatal(err)
	}
	cyc, _ := anc.DataflowHasCycle()
	fmt.Printf("Figure 2 — dataflow of the ancestor rule:             %s (cycle: %v)\n\n", df2, cyc)

	// Figure 3: Example 6 — h(a,b) = (g(a), g(b)), processors (00)…(11).
	ex6 := parlog.MustParse(`
p(X, Y) :- q(X, Y).
p(X, Y) :- p(Y, Z), r(X, Z).
`)
	net6, err := parlog.DeriveNetwork(ex6,
		[]string{"Y", "Z"}, []string{"X", "Y"},
		parlog.BitVectorHash(2), parlog.BitVectorHash(2),
		[]int{0, 1, 2, 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Figure 3 — network graph of Example 6 (processors (00)=0 … (11)=3):")
	fmt.Print(net6)
	fmt.Printf("cross edges needing physical links: %v\n\n", net6.CrossEdges())

	// Figure 4: Example 7 — h = g(a1) − g(a2) + g(a3), processors {−1,0,1,2},
	// derived by solving the paper's equations (4)–(5) over {0,1}.
	net7, err := parlog.DeriveNetwork(fig1,
		[]string{"V", "W", "Z"}, []string{"U", "V", "W"},
		parlog.LinearHash(1, -1, 1), parlog.LinearHash(1, -1, 1),
		[]int{-1, 0, 1, 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Figure 4 — network graph of Example 7 (h = g(a1) − g(a2) + g(a3)):")
	fmt.Print(net7)
	fmt.Printf("cross edges needing physical links: %v\n\n", net7.CrossEdges())

	// Execute Example 6 on a topology restricted to exactly the derived
	// edges: the run must succeed and match the unrestricted result —
	// Section 5's point that the compile-time analysis can be used to map
	// the program onto an existing sparse architecture.
	edb := parlog.Store{
		"q": workload.RandomGraph(24, 60, 1),
		"r": workload.RandomGraph(24, 60, 2),
	}
	seqRes, err := parlog.Eval(context.Background(), ex6, edb, parlog.EvalOptions{})
	if err != nil {
		log.Fatal(err)
	}
	want := seqRes.Output
	// HashBits makes the runtime use exactly the function DeriveNetwork
	// reasoned about (lifted over g = parity of the interned constant id),
	// and the Topology admits only the derived edges: any unpredicted send
	// would fail the run.
	res, err := parlog.EvalParallel(context.Background(), ex6, edb, parlog.EvalOptions{
		Strategy: parlog.StrategyHashPartition,
		VR:       []string{"Y", "Z"}, VE: []string{"X", "Y"},
		HashBits: parlog.BitVectorHash(2),
		Procs:    []int{0, 1, 2, 3},
		Topology: parlog.NewTopology(net6.CrossEdges()),
	})
	if err != nil {
		log.Fatal(err)
	}
	if !want["p"].Equal(res.Output["p"]) {
		log.Fatal("restricted execution differs from sequential")
	}
	fmt.Printf("Example 6 executed on the derived %d-edge interconnect: |p| = %d, identical to sequential; tuples sent = %d\n",
		len(net6.CrossEdges()), res.Output["p"].Len(), res.Stats.TotalTuplesSent())
}
