// Same-generation: the classic non-linear-looking Datalog workload the
// deductive-database literature motivates. The program is a linear sirup in
// the paper's sense (one recursive sg-atom), so all of Sections 3–6 apply;
// this example contrasts three discriminating choices on the same input —
// the paper's Examples 1–3 transported to same-generation.
//
// Run with: go run ./examples/samegen
package main

import (
	"context"
	"fmt"
	"log"

	"parlog"
	"parlog/internal/workload"
)

func main() {
	prog, err := parlog.Parse(`
sg(X, Y) :- flat(X, Y).
sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
`)
	if err != nil {
		log.Fatal(err)
	}

	// A complete 3-ary tree of depth 5: cousins at the same depth are in the
	// same generation.
	up, flat, down := workload.SameGenInput(3, 5)
	edb := parlog.Store{"up": up, "flat": flat, "down": down}
	fmt.Printf("input: |up| = %d, |down| = %d, |flat| = %d\n", up.Len(), down.Len(), flat.Len())

	seqRes, err := parlog.Eval(context.Background(), prog, edb, parlog.EvalOptions{})
	if err != nil {
		log.Fatal(err)
	}
	want, seqStats := seqRes.Output, seqRes.SeqStats
	fmt.Printf("sequential: |sg| = %d, firings = %d\n\n", want["sg"].Len(), seqStats.Firings)

	fmt.Println("scheme                         sent-tuples   firings   dup-vs-seq   max-proc-share")
	for _, choice := range []struct {
		name string
		opts parlog.EvalOptions
	}{
		// v(r)=⟨V⟩: V sits at position 2 of the recursive atom sg(U,V) — a
		// dataflow-cycle position? sg head (X,Y), body sg(U,V): Y reappears
		// nowhere positionally, so communication is needed; compare choices.
		{"Q, v(r)=<U> (point-to-point)", parlog.EvalOptions{
			Workers: 4, Strategy: parlog.StrategyHashPartition,
			VR: []string{"U"}, VE: []string{"X"},
		}},
		{"Q, v(r)=<V> (point-to-point)", parlog.EvalOptions{
			Workers: 4, Strategy: parlog.StrategyHashPartition,
			VR: []string{"V"}, VE: []string{"Y"},
		}},
		{"NoComm (replicated, redundant)", parlog.EvalOptions{
			Workers: 4, Strategy: parlog.StrategyNoComm,
		}},
	} {
		res, err := parlog.EvalParallel(context.Background(), prog, edb, choice.opts)
		if err != nil {
			log.Fatal(err)
		}
		if !want["sg"].Equal(res.Output["sg"]) {
			log.Fatalf("%s: WRONG RESULT", choice.name)
		}
		var maxFirings int64
		for _, ps := range res.Stats.Procs {
			if ps.Firings > maxFirings {
				maxFirings = ps.Firings
			}
		}
		fmt.Printf("%-30s %9d %9d %12d %14.0f%%\n", choice.name,
			res.Stats.TotalTuplesSent(), res.Stats.TotalFirings(),
			res.Stats.TotalFirings()-seqStats.Firings,
			100*float64(maxFirings)/float64(res.Stats.TotalFirings()))
	}

	fmt.Println("\nAll schemes computed the same least model; they differ in communication")
	fmt.Println("volume, duplicated work, and load balance. Note NoComm: same-generation")
	fmt.Println("has a single exit tuple flat(root, root), so the no-communication scheme")
	fmt.Println("places 100% of the work on one processor — hash partitioning is what")
	fmt.Println("spreads it (the load-balancing concern Section 8 flags for future work).")
}
