// Trade-off: sweep the Section 6 scheme's per-processor discriminating
// functions h_i from "always route by the shared hash" (locality 0 — the
// non-redundant scheme of Section 3) to "always keep local" (locality 1 —
// the communication-free scheme), printing the communication/redundancy
// spectrum the paper describes qualitatively:
//
//	"more communication would lead to lesser redundancy, and vice-versa"
//
// Run with: go run ./examples/tradeoff
package main

import (
	"context"
	"fmt"
	"log"

	"parlog"
	"parlog/internal/workload"
)

func main() {
	prog := parlog.MustParse(`
anc(X, Y) :- par(X, Y).
anc(X, Y) :- par(X, Z), anc(Z, Y).
`)
	edb := parlog.Store{"par": workload.RandomGraph(60, 240, 7)}

	seqRes, err := parlog.Eval(context.Background(), prog, edb, parlog.EvalOptions{})
	if err != nil {
		log.Fatal(err)
	}
	want, seqStats := seqRes.Output, seqRes.SeqStats
	fmt.Printf("random digraph: 60 nodes, 240 edges; |anc| = %d; sequential firings = %d\n\n",
		want["anc"].Len(), seqStats.Firings)

	fmt.Println("locality   tuples-sent   firings   redundant-firings")
	for _, locality := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0} {
		res, err := parlog.EvalParallel(context.Background(), prog, edb, parlog.EvalOptions{
			Workers:  4,
			Strategy: parlog.StrategyTradeoff,
			Locality: locality,
			VR:       []string{"Z"}, VE: []string{"X"},
		})
		if err != nil {
			log.Fatal(err)
		}
		if !want["anc"].Equal(res.Output["anc"]) {
			log.Fatalf("locality %.2f: WRONG RESULT (Theorem 4 violated)", locality)
		}
		fmt.Printf("%8.2f %13d %9d %19d\n",
			locality,
			res.Stats.TotalTuplesSent(),
			res.Stats.TotalFirings(),
			res.Stats.TotalFirings()-seqStats.Firings)
	}

	fmt.Println("\nlocality 0 reproduces the non-redundant scheme (redundant-firings = 0);")
	fmt.Println("locality 1 reproduces the no-communication scheme (tuples-sent = 0);")
	fmt.Println("intermediate points trade one for the other.")
}
