// Distributed: the same hash-partitioned scheme on two transports — the
// goroutine/channel runtime (the paper's shared-memory idealization of its
// abstract architecture) and the TCP runtime (the message-passing reading:
// every processor a socket endpoint, nothing shared). Identical results,
// identical work, different cost.
//
// Run with: go run ./examples/distributed
package main

import (
	"context"
	"fmt"
	"log"

	"parlog"
	"parlog/internal/workload"
)

func main() {
	prog := parlog.MustParse(`
anc(X, Y) :- par(X, Y).
anc(X, Y) :- par(X, Z), anc(Z, Y).
`)
	edb := parlog.Store{"par": workload.RandomGraph(40, 160, 77)}

	seqRes, err := parlog.Eval(context.Background(), prog, edb, parlog.EvalOptions{})
	if err != nil {
		log.Fatal(err)
	}
	want, seqStats := seqRes.Output, seqRes.SeqStats
	fmt.Printf("random digraph, 40 nodes, 160 edges; |anc| = %d, sequential firings = %d\n\n",
		want["anc"].Len(), seqStats.Firings)

	opts := parlog.EvalOptions{
		Workers:  4,
		Strategy: parlog.StrategyHashPartition,
		VR:       []string{"Z"}, VE: []string{"X"},
	}

	inproc, err := parlog.EvalParallel(context.Background(), prog, edb, opts)
	if err != nil {
		log.Fatal(err)
	}
	tcp, err := parlog.EvalDistributed(context.Background(), prog, edb, opts)
	if err != nil {
		log.Fatal(err)
	}

	for name, res := range map[string]*parlog.Result{
		"goroutines+channels": inproc,
		"TCP sockets":         tcp,
	} {
		if !want["anc"].Equal(res.Output["anc"]) {
			log.Fatalf("%s: WRONG RESULT", name)
		}
	}

	fmt.Printf("%-22s %10s %12s %10s\n", "transport", "firings", "tuples-sent", "wall")
	fmt.Printf("%-22s %10d %12d %10v\n", "goroutines+channels",
		inproc.Stats.TotalFirings(), inproc.Stats.TotalTuplesSent(), inproc.Stats.Wall.Round(100))
	fmt.Printf("%-22s %10d %12d %10v\n", "TCP sockets",
		tcp.Stats.TotalFirings(), tcp.Stats.TotalTuplesSent(), tcp.Stats.Wall.Round(100))

	fmt.Println("\nboth transports drive the same processor state machine, so firings and")
	fmt.Println("traffic agree exactly; only the cost of moving a tuple differs. For true")
	fmt.Println("multi-process runs see cmd/dldist (one OS process per processor).")
}
