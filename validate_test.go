package parlog

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestValidate(t *testing.T) {
	good := []struct {
		name string
		opts EvalOptions
	}{
		{"zero value", EvalOptions{}},
		{"naive sequential", EvalOptions{Naive: true}},
		{"parallel", EvalOptions{Engine: EngineParallel, Workers: 4}},
		{"parallel default workers", EvalOptions{Engine: EngineParallel}},
		{"distributed with fault knobs", EvalOptions{
			Engine: EngineDistributed, Workers: 2,
			MaxRetries: 3, HeartbeatInterval: 10 * time.Millisecond,
			WorkerDeadline: time.Second, CheckpointEvery: 2,
			MaxInflightBatches: 4, MaxQueueBytes: 1 << 20, MaxMemoryBytes: 1 << 24,
		}},
		{"metrics server", EvalOptions{
			MetricsAddr: "127.0.0.1:0", Pprof: true,
			MetricsHold: time.Second, TelemetryReady: func(string) {},
		}},
		{"tradeoff locality", EvalOptions{Engine: EngineParallel, Locality: 0.5}},
	}
	for _, tc := range good {
		if err := tc.opts.Validate(); err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
	}

	bad := []struct {
		name string
		opts EvalOptions
	}{
		{"unknown engine", EvalOptions{Engine: Engine(99)}},
		{"negative workers", EvalOptions{Workers: -1}},
		{"workers on sequential", EvalOptions{Workers: 4}},
		{"naive parallel", EvalOptions{Engine: EngineParallel, Naive: true}},
		{"negative iterations", EvalOptions{MaxIterations: -1}},
		{"locality out of range", EvalOptions{Engine: EngineParallel, Locality: 1.5}},
		{"negative poll", EvalOptions{Engine: EngineParallel, PollInterval: -time.Second}},
		{"negative batch", EvalOptions{Engine: EngineParallel, MaxBatch: -1}},
		{"retries on sequential", EvalOptions{MaxRetries: 3}},
		{"heartbeat on parallel", EvalOptions{Engine: EngineParallel, HeartbeatInterval: time.Second}},
		{"queue bytes on parallel", EvalOptions{Engine: EngineParallel, MaxQueueBytes: 1024}},
		{"negative retries", EvalOptions{Engine: EngineDistributed, MaxRetries: -1}},
		{"negative deadline", EvalOptions{Engine: EngineDistributed, WorkerDeadline: -time.Second}},
		{"queue below workers", EvalOptions{Engine: EngineDistributed, Workers: 8, MaxQueueBytes: 4}},
		{"queue above memory", EvalOptions{Engine: EngineDistributed, MaxQueueBytes: 2048, MaxMemoryBytes: 1024}},
		{"pprof without addr", EvalOptions{Pprof: true}},
		{"hold without addr", EvalOptions{MetricsHold: time.Second}},
		{"ready without addr", EvalOptions{TelemetryReady: func(string) {}}},
		{"negative hold", EvalOptions{MetricsAddr: "127.0.0.1:0", MetricsHold: -time.Second}},
	}
	for _, tc := range bad {
		err := tc.opts.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !errors.Is(err, ErrBadOptions) {
			t.Errorf("%s: error %v does not wrap ErrBadOptions", tc.name, err)
		}
	}
}

// TestValidateCalledOnEntry checks that the evaluation front doors reject
// invalid options before doing any work.
func TestValidateCalledOnEntry(t *testing.T) {
	ctx := context.Background()
	p := MustParse(`anc(X, Y) :- par(X, Y).`)
	badOpts := EvalOptions{Workers: -1}
	if _, err := Eval(ctx, p, nil, badOpts); !errors.Is(err, ErrBadOptions) {
		t.Errorf("Eval: %v", err)
	}
	if _, err := Query(ctx, p, nil, "anc(X, Y)", badOpts); !errors.Is(err, ErrBadOptions) {
		t.Errorf("Query: %v", err)
	}
	if _, err := Open(ctx, p, nil, badOpts); !errors.Is(err, ErrBadOptions) {
		t.Errorf("Open: %v", err)
	}
}
