package parlog

import (
	"context"
	"fmt"
	"sort"

	"parlog/internal/analysis"
	"parlog/internal/ast"
	"parlog/internal/dist"
	"parlog/internal/hashpart"
	"parlog/internal/network"
	"parlog/internal/obs"
	"parlog/internal/parallel"
	"parlog/internal/rewrite"
	"parlog/internal/seminaive"
)

// Strategy selects the parallelization scheme.
type Strategy int

const (
	// StrategyAuto picks for linear sirups the communication-free choice of
	// Theorem 3 when the dataflow graph has a cycle, and otherwise the
	// Section 3 hash-partitioned scheme with a heuristic discriminating
	// sequence; non-sirup programs use the general scheme.
	StrategyAuto Strategy = iota
	// StrategyHashPartition is the Section 3 non-redundant scheme Q with the
	// discriminating sequences given in the options (paper Examples 1–3,
	// depending on VR/VE).
	StrategyHashPartition
	// StrategyNoComm is the Section 6 communication-free scheme: replicated
	// base relations, possible duplicated work, zero messages.
	StrategyNoComm
	// StrategyTradeoff is the Section 6 scheme R with per-processor mixing
	// functions h_i: Locality 0 is non-redundant (≡ Q), Locality 1 is
	// communication-free (≡ NoComm).
	StrategyTradeoff
	// StrategyGeneral is the Section 7 scheme, applicable to every Datalog
	// program.
	StrategyGeneral
)

// TerminationMode re-exports the runtime's detector selection.
type TerminationMode = parallel.TerminationMode

// Termination detector choices.
const (
	TermCredit           = parallel.TermCredit
	TermCounting         = parallel.TermCounting
	TermDijkstraScholten = parallel.TermDijkstraScholten
)

// ParallelStats aggregates a parallel run's accounting.
type ParallelStats = parallel.Stats

// Topology restricts the processor interconnect (Section 5).
type Topology = parallel.Topology

// NewTopology builds a topology from directed processor-id edges.
func NewTopology(edges [][2]int) *Topology { return parallel.NewTopology(edges) }

// runConfig translates the public options (plus ctx and the built sink)
// into the in-process runtime's configuration.
func runConfig(ctx context.Context, opts EvalOptions, sink obs.EventSink) parallel.RunConfig {
	return parallel.RunConfig{
		Mode:         opts.Termination,
		Topology:     opts.Topology,
		PollInterval: opts.PollInterval,
		MaxBatch:     opts.MaxBatch,
		Ctx:          ctx,
		Sink:         sink,
		Planner:      opts.Planner,
		Profile:      opts.Profile,
	}
}

// EvalParallel evaluates the program on Workers goroutine-processors
// communicating over channels, per the selected scheme, and pools the
// result. The edb argument may be nil if all facts are embedded in the
// program. A nil ctx means no cancellation. Equivalent to Eval with
// EvalOptions.Engine = EngineParallel.
func EvalParallel(ctx context.Context, p *Program, edb Store, opts EvalOptions) (*Result, error) {
	opts.Engine = EngineParallel
	return eval(ctx, p, edb, opts)
}

// evalParallel is the in-process engine behind the dispatcher; opts are
// filled, edb is non-nil, and sink is the dispatcher's telemetry stack.
func evalParallel(ctx context.Context, p *Program, edb Store, opts EvalOptions, sink obs.EventSink) (*Result, error) {
	if analysis.HasNegation(p.ast) && (opts.Strategy == StrategyAuto || opts.Strategy == StrategyGeneral) {
		return evalParallelStratified(ctx, p, edb, opts, sink)
	}
	prog, err := compileParallel(p, opts)
	if err != nil {
		return nil, err
	}
	res, err := parallel.Run(prog, edb, runConfig(ctx, opts, sink))
	if err != nil {
		return nil, err
	}
	return &Result{Output: res.Output, Stats: res.Stats, Profile: res.Profile}, nil
}

// evalParallelStratified runs a stratified-negation program as a sequence of
// parallel phases, one per stratum: each phase evaluates its stratum's rules
// with the Section 7 general scheme, treating all lower strata (now
// complete) as base relations — the stratum barrier is exactly what makes
// negation-as-absence sound in a distributed setting.
func evalParallelStratified(ctx context.Context, p *Program, edb Store, opts EvalOptions, sink obs.EventSink) (*Result, error) {
	strata, err := analysis.Strata(p.ast)
	if err != nil {
		return nil, err
	}
	rules, facts := p.ast.FactTuples()
	maxS := 0
	for _, s := range strata {
		if s > maxS {
			maxS = s
		}
	}
	store := edb.Clone()
	for pred, tuples := range facts {
		store.InsertAll(pred, tuples)
	}

	h := hashpart.ModHash{N: opts.Workers, Seed: opts.Seed}
	agg := &parallel.Stats{
		Edges:      map[[2]int]*parallel.EdgeStats{},
		Placements: map[string]hashpart.Placement{},
	}
	perProc := map[int]parallel.ProcStats{}
	output := Store{}
	var prof *Profile
	if opts.Profile {
		prof = &seminaive.Profile{Engine: "parallel"}
	}

	for s := 0; s <= maxS; s++ {
		sub := &ast.Program{Interner: p.ast.Interner}
		for _, r := range rules {
			if strata[r.Head.Pred] == s {
				sub.AddRule(r.Clone())
			}
		}
		if len(sub.Rules) == 0 {
			continue
		}
		gspec := rewrite.GeneralSpec{Procs: hashpart.RangeProcs(opts.Workers)}
		for _, r := range sub.Rules {
			gspec.Rules = append(gspec.Rules, rewrite.RuleSpec{Seq: defaultSeq(sub, r), H: h})
		}
		pp, err := parallel.BuildGeneral(sub, gspec)
		if err != nil {
			return nil, fmt.Errorf("parlog: stratum %d: %w", s, err)
		}
		res, err := parallel.Run(pp, store, runConfig(ctx, opts, sink))
		if err != nil {
			return nil, fmt.Errorf("parlog: stratum %d: %w", s, err)
		}
		// Derived relations feed the next stratum and the pooled output.
		for pred, rel := range res.Output {
			dst := store.Get(pred, rel.Arity())
			out := output.Get(pred, rel.Arity())
			for _, t := range rel.Rows() {
				dst.Insert(t)
				out.Insert(t)
			}
		}
		agg.Wall += res.Stats.Wall
		agg.ForbiddenSends += res.Stats.ForbiddenSends
		if prof != nil && res.Profile != nil {
			// Strata run one after another: their rule records fold by key
			// (addProc sums same-processor entries) and their walls add.
			prof.AddRules(res.Profile.Rules)
			prof.WallNs += res.Profile.WallNs
		}
		for _, ps := range res.Stats.Procs {
			cur := perProc[ps.Proc]
			cur.Proc = ps.Proc
			cur.Firings += ps.Firings
			cur.Generated += ps.Generated
			cur.DupFirings += ps.DupFirings
			cur.TuplesSent += ps.TuplesSent
			cur.TuplesReceived += ps.TuplesReceived
			cur.DupReceived += ps.DupReceived
			cur.Iterations += ps.Iterations
			cur.Busy += ps.Busy
			cur.EDBTuples += ps.EDBTuples
			perProc[ps.Proc] = cur
		}
		for e, es := range res.Stats.Edges {
			if prev, ok := agg.Edges[e]; ok {
				prev.Messages += es.Messages
				prev.Tuples += es.Tuples
			} else {
				cp := *es
				agg.Edges[e] = &cp
			}
		}
		for pred, pl := range res.Stats.Placements {
			agg.Placements[pred] = pl
		}
	}
	ids := make([]int, 0, len(perProc))
	for id := range perProc {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		agg.Procs = append(agg.Procs, perProc[id])
	}
	return &Result{Output: output, Stats: agg, Profile: prof}, nil
}

// RewriteListings returns the per-processor rewritten programs — the paper's
// central artifact (Q_i for StrategyHashPartition, the three-rule program
// for StrategyNoComm, R_i for StrategyTradeoff, T_i for StrategyGeneral) —
// as printable Datalog keyed by processor id. The listings show the exact
// initialization/processing/sending/receiving/pooling rules, with the
// discriminating conditions as "h(...) = i" atoms.
func RewriteListings(p *Program, opts EvalOptions) (map[int]string, error) {
	if opts.Workers <= 0 {
		opts.Workers = 4
	}
	procs := hashpart.RangeProcs(opts.Workers)
	h := hashpart.ModHash{N: opts.Workers, Seed: opts.Seed}

	strategy := opts.Strategy
	s, sirupErr := analysis.ExtractSirup(p.ast)
	if strategy == StrategyAuto {
		if sirupErr != nil {
			strategy = StrategyGeneral
		} else if spec, err := network.CommFree(s, procs); err == nil {
			return listingsOf(rewrite.Q(s, *spec))
		} else {
			strategy = StrategyHashPartition
		}
	}
	switch strategy {
	case StrategyHashPartition:
		if sirupErr != nil {
			return nil, fmt.Errorf("parlog: StrategyHashPartition needs a linear sirup: %w", sirupErr)
		}
		vr, ve := opts.VR, opts.VE
		if vr == nil {
			vr = []string{s.BodyVars[0]}
		}
		if ve == nil {
			ve = defaultVE(s, vr)
		}
		return listingsOf(rewrite.Q(s, rewrite.SirupSpec{Procs: procs, VR: vr, VE: ve, H: h}))
	case StrategyNoComm:
		if sirupErr != nil {
			return nil, fmt.Errorf("parlog: StrategyNoComm needs a linear sirup: %w", sirupErr)
		}
		ve := opts.VE
		if ve == nil {
			ve = []string{s.ExitVars[0]}
		}
		return listingsOf(rewrite.NoComm(s, rewrite.NoCommSpec{Procs: procs, VE: ve, HP: h}))
	case StrategyTradeoff:
		if sirupErr != nil {
			return nil, fmt.Errorf("parlog: StrategyTradeoff needs a linear sirup: %w", sirupErr)
		}
		vr, ve := opts.VR, opts.VE
		if vr == nil {
			vr = []string{s.BodyVars[0]}
		}
		if ve == nil {
			ve = defaultVE(s, vr)
		}
		keep := int(opts.Locality * 1000)
		seed := opts.Seed
		return listingsOf(rewrite.R(s, rewrite.RSpec{
			Procs: procs, VR: vr, VE: ve, HP: h,
			HI: func(i int) hashpart.Func {
				return hashpart.Mix{Local: i, Shared: h, KeepPermille: keep, Seed: seed}
			},
		}))
	case StrategyGeneral:
		rules, _ := p.ast.FactTuples()
		gspec := rewrite.GeneralSpec{Procs: procs}
		for _, r := range rules {
			gspec.Rules = append(gspec.Rules, rewrite.RuleSpec{Seq: defaultSeq(p.ast, r), H: h})
		}
		return listingsOf(rewrite.General(p.ast, gspec))
	default:
		return nil, fmt.Errorf("parlog: unknown strategy %d", strategy)
	}
}

func listingsOf(rw *rewrite.Rewritten, err error) (map[int]string, error) {
	if err != nil {
		return nil, err
	}
	out := make(map[int]string, len(rw.ByProc))
	for proc := range rw.ByProc {
		out[proc] = rw.Listing(proc)
	}
	return out, nil
}

// EvalDistributed is EvalParallel over real message passing: every processor
// is a TCP endpoint (loopback sockets within this process), no memory is
// shared between processors, and termination is detected by Mattern-style
// counter waves over the coordinator's star — the paper's non-shared-memory
// architecture taken literally. The runtime is fault tolerant: worker
// deaths are detected by heartbeat (see EvalOptions.HeartbeatInterval and
// WorkerDeadline) and survived by hash-bucket recovery, and failures
// surface as errors testing true with errors.Is against ErrWorkerLost or
// ErrTimeout. Topology restriction is not supported on this transport. A
// nil ctx means no cancellation. Equivalent to Eval with
// EvalOptions.Engine = EngineDistributed.
func EvalDistributed(ctx context.Context, p *Program, edb Store, opts EvalOptions) (*Result, error) {
	opts.Engine = EngineDistributed
	return eval(ctx, p, edb, opts)
}

// evalDistributed is the TCP engine behind the dispatcher; opts are
// filled, edb is non-nil, and sink is the dispatcher's telemetry stack.
func evalDistributed(ctx context.Context, p *Program, edb Store, opts EvalOptions, sink obs.EventSink) (*Result, error) {
	if opts.Topology != nil {
		return nil, fmt.Errorf("parlog: EvalDistributed does not support topology restriction")
	}
	// The compiled partition may be finer than the worker count: with
	// opts.Buckets set, the program is compiled for that many hash
	// buckets and dist.Run spreads them over opts.Workers processes.
	copts := opts
	if opts.Buckets > 0 {
		if opts.Buckets < opts.Workers {
			return nil, fmt.Errorf("parlog: Buckets (%d) must be at least Workers (%d)", opts.Buckets, opts.Workers)
		}
		copts.Workers = opts.Buckets
	}
	prog, err := compileParallel(p, copts)
	if err != nil {
		return nil, err
	}
	workers := 0
	if opts.Buckets > 0 {
		workers = opts.Workers
	}
	res, err := dist.Run(prog, edb, dist.Config{
		Workers: workers,
		Rebalance: dist.RebalanceConfig{
			Enabled:       opts.Rebalance.Enabled,
			SkewThreshold: opts.Rebalance.SkewThreshold,
			Interval:      opts.Rebalance.Interval,
			Window:        opts.Rebalance.Window,
			Cooldown:      opts.Rebalance.Cooldown,
			MaxMigrations: opts.Rebalance.MaxMigrations,
			MinVolume:     opts.Rebalance.MinVolume,
		},
		WavePoll:           opts.PollInterval,
		HeartbeatInterval:  opts.HeartbeatInterval,
		WorkerDeadline:     opts.WorkerDeadline,
		MaxRetries:         opts.MaxRetries,
		CheckpointEvery:    opts.CheckpointEvery,
		CheckpointInterval: opts.CheckpointInterval,
		MaxInflightBatches: opts.MaxInflightBatches,
		MaxQueueBytes:      opts.MaxQueueBytes,
		MaxMemoryBytes:     opts.MaxMemoryBytes,
		Ctx:                ctx,
		Sink:               sink,
		Planner:            opts.Planner,
		Profile:            opts.Profile,
	})
	if err != nil {
		return nil, err
	}
	global, err := parallel.PrepareEDB(prog, edb)
	if err != nil {
		return nil, err
	}
	stats := &parallel.Stats{
		Procs:      res.Stats,
		Edges:      map[[2]int]*parallel.EdgeStats{},
		Placements: parallel.Placements(prog, global),
		Wall:       res.Wall,
	}
	return &Result{Output: res.Output, Stats: stats, Profile: res.Profile}, nil
}

func compileParallel(p *Program, opts EvalOptions) (*parallel.Program, error) {
	procs := hashpart.RangeProcs(opts.Workers)
	h := hashpart.ModHash{N: opts.Workers, Seed: opts.Seed}

	strategy := opts.Strategy
	s, sirupErr := analysis.ExtractSirup(p.ast)
	if strategy == StrategyAuto {
		switch {
		case sirupErr != nil:
			strategy = StrategyGeneral
		default:
			if spec, err := network.CommFree(s, procs); err == nil {
				return parallel.BuildQ(s, *spec)
			}
			strategy = StrategyHashPartition
		}
	}

	switch strategy {
	case StrategyHashPartition:
		if sirupErr != nil {
			return nil, fmt.Errorf("parlog: %s needs a linear sirup: %w", "StrategyHashPartition", sirupErr)
		}
		vr, ve := opts.VR, opts.VE
		if vr == nil {
			vr = []string{s.BodyVars[0]}
		}
		if ve == nil {
			ve = defaultVE(s, vr)
		}
		var hf hashpart.Func = h
		if opts.HashBits != nil {
			if len(opts.Procs) == 0 {
				return nil, fmt.Errorf("parlog: HashBits requires Procs")
			}
			procs = hashpart.NewProcSet(opts.Procs...)
			hf = network.FuncFromBits("hbits", opts.HashBits, hashpart.GParity)
		}
		return parallel.BuildQ(s, rewrite.SirupSpec{Procs: procs, VR: vr, VE: ve, H: hf})
	case StrategyNoComm:
		if sirupErr != nil {
			return nil, fmt.Errorf("parlog: %s needs a linear sirup: %w", "StrategyNoComm", sirupErr)
		}
		ve := opts.VE
		if ve == nil {
			ve = []string{s.ExitVars[0]}
		}
		return parallel.BuildNoComm(s, rewrite.NoCommSpec{Procs: procs, VE: ve, HP: h})
	case StrategyTradeoff:
		if sirupErr != nil {
			return nil, fmt.Errorf("parlog: %s needs a linear sirup: %w", "StrategyTradeoff", sirupErr)
		}
		if opts.Locality < 0 || opts.Locality > 1 {
			return nil, fmt.Errorf("parlog: Locality %v outside [0,1]", opts.Locality)
		}
		vr, ve := opts.VR, opts.VE
		if vr == nil {
			vr = []string{s.BodyVars[0]}
		}
		if ve == nil {
			ve = defaultVE(s, vr)
		}
		keep := int(opts.Locality * 1000)
		seed := opts.Seed
		return parallel.BuildR(s, rewrite.RSpec{
			Procs: procs, VR: vr, VE: ve, HP: h,
			HI: func(i int) hashpart.Func {
				return hashpart.Mix{Local: i, Shared: h, KeepPermille: keep, Seed: seed}
			},
		})
	case StrategyGeneral:
		rules, _ := p.ast.FactTuples()
		gspec := rewrite.GeneralSpec{Procs: procs}
		for _, r := range rules {
			gspec.Rules = append(gspec.Rules, rewrite.RuleSpec{Seq: defaultSeq(p.ast, r), H: h})
		}
		return parallel.BuildGeneral(p.ast, gspec)
	default:
		return nil, fmt.Errorf("parlog: unknown strategy %d", strategy)
	}
}

// defaultVE picks v(e) aligned with v(r): for each v(r) variable at position
// l of Ȳ, the exit-head variable at position l — the choice that routes
// exit tuples straight to their consumer. Falls back to the first exit-head
// variable.
func defaultVE(s *analysis.Sirup, vr []string) []string {
	var ve []string
	for _, v := range vr {
		for l, y := range s.BodyVars {
			if y == v {
				ve = append(ve, s.ExitVars[l])
				break
			}
		}
	}
	if len(ve) != len(vr) {
		return []string{s.ExitVars[0]}
	}
	return ve
}

// defaultSeq picks a discriminating sequence for a rule in the general
// scheme: the first variable of the first recursive body atom (so tuples of
// that predicate route point-to-point), else the first body variable.
func defaultSeq(prog *ast.Program, r ast.Rule) []string {
	if recs := analysis.RecursiveAtoms(prog, r); len(recs) > 0 {
		if vars := r.Body[recs[0]].Vars(nil); len(vars) > 0 {
			return vars[:1]
		}
	}
	if vars := r.BodyVars(); len(vars) > 0 {
		return vars[:1]
	}
	return nil
}
