package parlog

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"parlog/internal/randprog"
)

func TestViewBasics(t *testing.T) {
	ctx := context.Background()
	p := MustParse(`
anc(X, Y) :- par(X, Y).
anc(X, Y) :- par(X, Z), anc(Z, Y).
`)
	edb := Store{}
	a, b, c := p.Intern("a"), p.Intern("b"), p.Intern("c")
	edb.Get("par", 2).Insert(Tuple{a, b})
	edb.Get("par", 2).Insert(Tuple{b, c})

	view, err := Open(ctx, p, edb, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer view.Close()
	if view.Epoch() != 0 {
		t.Errorf("fresh view epoch = %d", view.Epoch())
	}
	snap0, err := view.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got := snap0.Store()["anc"].Len(); got != 3 {
		t.Errorf("initial anc size %d, want 3", got)
	}
	again, err := view.Snapshot()
	if err != nil || again != snap0 {
		t.Errorf("snapshot not cached per epoch: %v %v", again, err)
	}

	// Extend the chain; the old snapshot must not move.
	d := p.Intern("d")
	st, err := view.Apply(Delta{Insert: map[string][]Tuple{"par": {{c, d}}}})
	if err != nil {
		t.Fatal(err)
	}
	if st.Inserted == 0 || st.Deleted != 0 {
		t.Errorf("insert stats: %+v", st)
	}
	if view.Epoch() != 1 {
		t.Errorf("epoch after apply = %d", view.Epoch())
	}
	snap1, err := view.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap1 == snap0 {
		t.Error("snapshot cache not invalidated by Apply")
	}
	if got := snap0.Store()["anc"].Len(); got != 3 {
		t.Errorf("old snapshot moved: anc size %d", got)
	}
	if got := snap1.Store()["anc"].Len(); got != 6 {
		t.Errorf("new snapshot anc size %d, want 6", got)
	}

	// Delete the middle edge; the cascade must shrink the closure.
	if _, err := view.Apply(Delta{Delete: map[string][]Tuple{"par": {{b, c}}}}); err != nil {
		t.Fatal(err)
	}
	snap2, err := view.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got := snap2.Store()["anc"].Len(); got != 2 {
		t.Errorf("after delete anc size %d, want 2 (a->b, c->d)", got)
	}

	// Deltas over derived or unknown predicates are rejected; the view
	// stays usable.
	if _, err := view.Apply(Delta{Insert: map[string][]Tuple{"anc": {{a, c}}}}); err == nil {
		t.Error("insert into derived predicate accepted")
	}
	if _, err := view.Apply(Delta{Insert: map[string][]Tuple{"par": {{a}}}}); err == nil {
		t.Error("wrong-arity delta accepted")
	}
	if _, err := view.Snapshot(); err != nil {
		t.Errorf("view unusable after rejected delta: %v", err)
	}

	if err := view.Close(); err != nil {
		t.Fatal(err)
	}
	if err := view.Close(); err != nil {
		t.Errorf("Close not idempotent: %v", err)
	}
	if _, err := view.Apply(Delta{}); !errors.Is(err, ErrViewClosed) {
		t.Errorf("Apply after Close: %v", err)
	}
	if _, err := view.Snapshot(); !errors.Is(err, ErrViewClosed) {
		t.Errorf("Snapshot after Close: %v", err)
	}
	// Snapshots taken before Close stay valid.
	if got := snap2.Store()["anc"].Len(); got != 2 {
		t.Errorf("snapshot invalidated by Close: %d", got)
	}
}

func TestOpenRejectsUnsupported(t *testing.T) {
	ctx := context.Background()
	p := MustParse(`anc(X, Y) :- par(X, Y).`)
	for _, tc := range []struct {
		name string
		opts EvalOptions
	}{
		{"parallel engine", EvalOptions{Engine: EngineParallel, Workers: 2}},
		{"distributed engine", EvalOptions{Engine: EngineDistributed, Workers: 2}},
		{"naive", EvalOptions{Naive: true}},
		{"invalid options", EvalOptions{Workers: -1}},
	} {
		if _, err := Open(ctx, p, nil, tc.opts); err == nil {
			t.Errorf("%s accepted by Open", tc.name)
		} else if !errors.Is(err, ErrBadOptions) {
			t.Errorf("%s: error %v not ErrBadOptions", tc.name, err)
		}
	}
	neg := MustParse(`
unreach(X) :- node(X), !reach(X).
reach(X) :- edge(a, X).
`)
	if _, err := Open(ctx, neg, nil, EvalOptions{}); err == nil {
		t.Error("negation accepted by Open")
	}
}

// TestViewConcurrentReaders races snapshot queries against a writer
// applying deltas — the tentpole's no-blocking claim, checked under
// -race.
func TestViewConcurrentReaders(t *testing.T) {
	ctx := context.Background()
	p := MustParse(`
anc(X, Y) :- par(X, Y).
anc(X, Y) :- par(X, Z), anc(Z, Y).
`)
	edb := Store{}
	consts := make([]Value, 20)
	for i := range consts {
		consts[i] = p.Intern(fmt.Sprintf("n%d", i))
	}
	for i := 0; i+1 < len(consts); i++ {
		edb.Get("par", 2).Insert(Tuple{consts[i], consts[i+1]})
	}
	view, err := Open(ctx, p, edb, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer view.Close()

	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				snap, err := view.Snapshot()
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				qr, err := snap.Query(ctx, "anc(n0, X)")
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				if n := len(qr.All()); n == 0 {
					t.Errorf("reader %d: no answers at epoch %d", r, snap.Epoch())
					return
				}
			}
		}(r)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 30; i++ {
		a := consts[rng.Intn(10)]
		b := consts[10+rng.Intn(10)]
		if _, err := view.Apply(Delta{Insert: map[string][]Tuple{"par": {{a, b}}}}); err != nil {
			t.Fatal(err)
		}
		if _, err := view.Apply(Delta{Delete: map[string][]Tuple{"par": {{a, b}}}}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
}

// TestViewRandomProgramsDifferential is the tentpole's correctness pin:
// over 50 random recursive programs, the incrementally maintained model
// must equal a from-scratch evaluation after every one of several random
// insert/delete batches.
func TestViewRandomProgramsDifferential(t *testing.T) {
	ctx := context.Background()
	cfg := randprog.Defaults()
	for seed := int64(0); seed < 50; seed++ {
		g := randprog.Generate(cfg, seed)
		p, err := Parse(g.Prog.String())
		if err != nil {
			t.Fatalf("seed %d: generated program does not parse: %v\n%s", seed, err, g.Prog)
		}
		// The generator interns constants in its own order; rebuild the EDB
		// under the re-parsed program's interner.
		edb := Store{}
		live := map[string]map[string]Tuple{}
		for pred, rel := range g.EDB {
			dst := edb.Get(pred, rel.Arity())
			live[pred] = map[string]Tuple{}
			for _, tu := range rel.Rows() {
				nt := make(Tuple, len(tu))
				for i, v := range tu {
					nt[i] = p.Intern(g.Prog.Interner.Name(v))
				}
				dst.Insert(nt)
				live[pred][fmt.Sprint(nt)] = nt
			}
		}
		consts := make([]Value, 6)
		for i := range consts {
			consts[i] = p.Intern(fmt.Sprintf("c%d", i))
		}
		preds := make([]string, 0, len(live))
		for pred := range live {
			preds = append(preds, pred)
		}

		view, err := Open(ctx, p, edb, EvalOptions{})
		if err != nil {
			t.Fatalf("seed %d: Open: %v\n%s", seed, err, g.Prog)
		}

		rng := rand.New(rand.NewSource(seed*7919 + 1))
		randTuple := func(pred string) Tuple {
			tu := make(Tuple, g.Arities[pred])
			for i := range tu {
				tu[i] = consts[rng.Intn(len(consts))]
			}
			return tu
		}
		for batch := 0; batch < 4; batch++ {
			d := NewDelta()
			for n := rng.Intn(4); n > 0; n-- {
				pred := preds[rng.Intn(len(preds))]
				var tu Tuple
				if len(live[pred]) > 0 && rng.Intn(4) > 0 {
					// Delete a live tuple; occasionally an absent one
					// (must be a no-op).
					for _, v := range live[pred] {
						tu = v
						break
					}
				} else {
					tu = randTuple(pred)
				}
				d.Remove(pred, tu)
				delete(live[pred], fmt.Sprint(tu))
			}
			for n := rng.Intn(4); n > 0; n-- {
				pred := preds[rng.Intn(len(preds))]
				tu := randTuple(pred)
				d.Add(pred, tu)
				live[pred][fmt.Sprint(tu)] = tu
			}
			if _, err := view.Apply(*d); err != nil {
				t.Fatalf("seed %d batch %d: Apply: %v\n%s", seed, batch, err, g.Prog)
			}

			// From-scratch reference over the mutated EDB.
			ref := Store{}
			for pred, rows := range live {
				dst := ref.Get(pred, g.Arities[pred])
				for _, tu := range rows {
					dst.Insert(tu)
				}
			}
			want, err := Eval(ctx, p, ref, EvalOptions{})
			if err != nil {
				t.Fatalf("seed %d batch %d: Eval: %v\n%s", seed, batch, err, g.Prog)
			}
			snap, err := view.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			for _, pred := range append(p.IDB(), preds...) {
				a, b := want.Output[pred], snap.Store()[pred]
				aEmpty := a == nil || a.Len() == 0
				bEmpty := b == nil || b.Len() == 0
				if aEmpty && bEmpty {
					continue
				}
				if aEmpty != bEmpty || !a.Equal(b) {
					t.Fatalf("seed %d batch %d: %s differs between maintained view and from-scratch eval\n%s",
						seed, batch, pred, g.Prog)
				}
			}
		}
		view.Close()
	}
}

// TestApplyBatchCoalesces pins ApplyBatch's point: N single-tuple inserts
// coalesce into one maintenance fixpoint (one epoch, one Apply's worth of
// iterations) while reaching the exact model of N sequential Applies, and
// a delete of a tuple queued for insertion forces a flush instead of
// silently changing the sequence's meaning.
func TestApplyBatchCoalesces(t *testing.T) {
	ctx := context.Background()
	src := `
anc(X, Y) :- par(X, Y).
anc(X, Y) :- par(X, Z), anc(Z, Y).
`
	const n = 10
	chain := func() (*View, *Program) {
		p := MustParse(src)
		v, err := Open(ctx, p, Store{}, EvalOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return v, p
	}
	edge := func(p *Program, i int) Delta {
		return Delta{Insert: map[string][]Tuple{"par": {{p.Intern(fmt.Sprintf("v%d", i)), p.Intern(fmt.Sprintf("v%d", i+1))}}}}
	}

	// Sequential baseline: one fixpoint per tuple.
	seqView, seqProg := chain()
	defer seqView.Close()
	seqIters := 0
	for i := 0; i < n; i++ {
		st, err := seqView.Apply(edge(seqProg, i))
		if err != nil {
			t.Fatal(err)
		}
		seqIters += st.Iterations
	}
	if seqView.Epoch() != n {
		t.Fatalf("sequential epochs = %d, want %d", seqView.Epoch(), n)
	}

	// Batched: the same deltas coalesce into a single fixpoint.
	batView, batProg := chain()
	defer batView.Close()
	var ds []Delta
	for i := 0; i < n; i++ {
		ds = append(ds, edge(batProg, i))
	}
	st, err := batView.ApplyBatch(ds...)
	if err != nil {
		t.Fatal(err)
	}
	if batView.Epoch() != 1 {
		t.Errorf("batched epochs = %d, want 1 (one coalesced fixpoint)", batView.Epoch())
	}
	if st.Iterations >= seqIters {
		t.Errorf("batched iterations = %d, want fewer than sequential %d", st.Iterations, seqIters)
	}

	seqSnap, _ := seqView.Snapshot()
	batSnap, _ := batView.Snapshot()
	if sq, bt := seqSnap.Store()["anc"].Len(), batSnap.Store()["anc"].Len(); sq != bt || sq != n*(n+1)/2 {
		t.Errorf("models disagree: sequential anc=%d batched anc=%d want %d", sq, bt, n*(n+1)/2)
	}

	// insert(x) ; delete(x) must flush: the sequence leaves x absent,
	// which a single deletes-before-inserts batch would invert.
	cView, cProg := chain()
	defer cView.Close()
	x, y := cProg.Intern("x"), cProg.Intern("y")
	if _, err := cView.ApplyBatch(
		Delta{Insert: map[string][]Tuple{"par": {{x, y}}}},
		Delta{Delete: map[string][]Tuple{"par": {{x, y}}}},
	); err != nil {
		t.Fatal(err)
	}
	if cView.Epoch() != 2 {
		t.Errorf("conflicting deltas coalesced: epochs = %d, want 2", cView.Epoch())
	}
	cSnap, _ := cView.Snapshot()
	if got := cSnap.Store()["anc"].Len(); got != 0 {
		t.Errorf("insert;delete left anc=%d, want 0", got)
	}
}
