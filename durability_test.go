package parlog

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"parlog/internal/dist/fault"
)

const durProg = `
	anc(X, Y) :- par(X, Y).
	anc(X, Y) :- par(X, Z), anc(Z, Y).
`

// openDur opens a durable view over the ancestor program with the given
// initial facts.
func openDur(t *testing.T, dir string, opts EvalOptions, facts ...[2]string) (*View, *Program) {
	t.Helper()
	prog := MustParse(durProg)
	edb := Store{}
	if len(facts) > 0 {
		rel := edb.Get("par", 2)
		for _, f := range facts {
			rel.Insert(Tuple{prog.Intern(f[0]), prog.Intern(f[1])})
		}
	}
	opts.Dir = dir
	v, err := Open(context.Background(), prog, edb, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return v, prog
}

func ancestors(t *testing.T, v *View, prog *Program) string {
	t.Helper()
	snap, err := v.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	return prog.Format(snap.Store(), "anc")
}

func applyEdge(t *testing.T, v *View, prog *Program, from, to string) {
	t.Helper()
	d := NewDelta().Add("par", Tuple{prog.Intern(from), prog.Intern(to)})
	if _, err := v.Apply(*d); err != nil {
		t.Fatalf("Apply(%s→%s): %v", from, to, err)
	}
}

// TestDurableCleanRestart pins the clean-shutdown path: Close compacts
// and marks the log, and a re-open restores the exact epoch and model
// without the original edb argument.
func TestDurableCleanRestart(t *testing.T) {
	dir := t.TempDir()
	v, prog := openDur(t, dir, EvalOptions{}, [2]string{"a", "b"})
	applyEdge(t, v, prog, "b", "c")
	applyEdge(t, v, prog, "c", "d")
	want := ancestors(t, v, prog)
	wantEpoch := v.Epoch()
	if err := v.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Re-open with a fresh parse and an EMPTY edb argument: the
	// directory is authoritative.
	v2, prog2 := openDur(t, dir, EvalOptions{})
	defer v2.Close()
	if got := v2.Epoch(); got != wantEpoch {
		t.Fatalf("recovered epoch %d, want %d", got, wantEpoch)
	}
	if got := ancestors(t, v2, prog2); got != want {
		t.Fatalf("recovered model:\n%s\nwant:\n%s", got, want)
	}
	st := v2.DurabilityStats()
	if st == nil || !st.HasSegment || st.SegmentEpoch != wantEpoch {
		t.Fatalf("stats after clean restart: %+v", st)
	}
	// Clean shutdown leaves nothing to replay: the WAL holds only the
	// clean marker.
	if st.WALRecords > 1 {
		t.Fatalf("clean restart left %d WAL records to replay", st.WALRecords)
	}
}

// TestDurableDirtyRestart simulates a crash — the view is abandoned
// without Close — and checks the WAL alone restores the acknowledged
// state, including constants interned only by deltas.
func TestDurableDirtyRestart(t *testing.T) {
	dir := t.TempDir()
	v, prog := openDur(t, dir, EvalOptions{}, [2]string{"a", "b"})
	applyEdge(t, v, prog, "b", "zeta") // "zeta" exists only via recNames
	applyEdge(t, v, prog, "zeta", "w")
	want := ancestors(t, v, prog)
	wantEpoch := v.Epoch()
	// Crash: release the file handle without compacting or marking clean.
	if err := v.dur.dir.Close(); err != nil {
		t.Fatalf("closing dir: %v", err)
	}

	v2, prog2 := openDur(t, dir, EvalOptions{})
	defer v2.Close()
	if got := v2.Epoch(); got != wantEpoch {
		t.Fatalf("recovered epoch %d, want %d", got, wantEpoch)
	}
	if got := ancestors(t, v2, prog2); got != want {
		t.Fatalf("recovered model:\n%s\nwant:\n%s", got, want)
	}
}

// TestDurableDeletesSurvive pins that deletions are as durable as
// inserts: a crash after a delete must not resurrect the tuple.
func TestDurableDeletesSurvive(t *testing.T) {
	dir := t.TempDir()
	v, prog := openDur(t, dir, EvalOptions{}, [2]string{"a", "b"}, [2]string{"b", "c"})
	d := NewDelta().Remove("par", Tuple{prog.Intern("b"), prog.Intern("c")})
	if _, err := v.Apply(*d); err != nil {
		t.Fatalf("Apply delete: %v", err)
	}
	want := ancestors(t, v, prog)
	if strings.Contains(want, "b, c") {
		t.Fatalf("delete did not take: %s", want)
	}
	v.dur.dir.Close() // crash

	v2, prog2 := openDur(t, dir, EvalOptions{})
	defer v2.Close()
	if got := ancestors(t, v2, prog2); got != want {
		t.Fatalf("recovered model:\n%s\nwant:\n%s", got, want)
	}
}

// TestDurableEdgeCases walks the recovery corners: a fresh directory, a
// WAL with no segment, a segment with no WAL, and a zero-length
// trailing segment under both corruption policies.
func TestDurableEdgeCases(t *testing.T) {
	t.Run("fresh dir", func(t *testing.T) {
		dir := t.TempDir()
		v, _ := openDur(t, dir, EvalOptions{}, [2]string{"a", "b"})
		defer v.Close()
		if v.Epoch() != 0 {
			t.Fatalf("fresh open at epoch %d", v.Epoch())
		}
		st := v.DurabilityStats()
		if !st.HasSegment || st.SegmentEpoch != 0 {
			t.Fatalf("fresh open did not pin an initial segment: %+v", st)
		}
	})

	t.Run("WAL only", func(t *testing.T) {
		dir := t.TempDir()
		v, prog := openDur(t, dir, EvalOptions{}, [2]string{"a", "b"})
		applyEdge(t, v, prog, "b", "c")
		want := ancestors(t, v, prog)
		v.dur.dir.Close() // crash
		// Lose the segment: recovery folds the WAL onto the edb argument.
		segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
		for _, s := range segs {
			os.Remove(s)
		}
		v2, prog2 := openDur(t, dir, EvalOptions{}, [2]string{"a", "b"})
		defer v2.Close()
		if got := ancestors(t, v2, prog2); got != want {
			t.Fatalf("WAL-only recovery:\n%s\nwant:\n%s", got, want)
		}
	})

	t.Run("segment only", func(t *testing.T) {
		dir := t.TempDir()
		v, prog := openDur(t, dir, EvalOptions{}, [2]string{"a", "b"})
		applyEdge(t, v, prog, "b", "c")
		want := ancestors(t, v, prog)
		wantEpoch := v.Epoch()
		if err := v.Close(); err != nil { // clean: everything is in the segment
			t.Fatalf("Close: %v", err)
		}
		os.Remove(filepath.Join(dir, "wal.log"))
		v2, prog2 := openDur(t, dir, EvalOptions{})
		defer v2.Close()
		if got := v2.Epoch(); got != wantEpoch {
			t.Fatalf("epoch %d, want %d", got, wantEpoch)
		}
		if got := ancestors(t, v2, prog2); got != want {
			t.Fatalf("segment-only recovery:\n%s\nwant:\n%s", got, want)
		}
	})

	t.Run("zero-length trailing segment", func(t *testing.T) {
		dir := t.TempDir()
		v, prog := openDur(t, dir, EvalOptions{}, [2]string{"a", "b"})
		applyEdge(t, v, prog, "b", "c")
		want := ancestors(t, v, prog)
		v.Close()
		// A newer, empty segment file: damage that can never be a torn
		// write, because segments are published atomically.
		bogus := filepath.Join(dir, "seg-ffffffffffffffff.seg")
		if err := os.WriteFile(bogus, nil, 0o644); err != nil {
			t.Fatal(err)
		}
		prog2 := MustParse(durProg)
		_, err := Open(context.Background(), prog2, nil, EvalOptions{Dir: dir})
		if !errors.Is(err, ErrCorruptSegment) {
			t.Fatalf("fail-fast open: got %v, want ErrCorruptSegment", err)
		}
		// Skip-and-report falls back to the older intact segment.
		v2, prog3 := openDur(t, dir, EvalOptions{Durability: DurabilityOptions{SkipCorrupt: true}})
		defer v2.Close()
		if got := ancestors(t, v2, prog3); got != want {
			t.Fatalf("SkipCorrupt fallback:\n%s\nwant:\n%s", got, want)
		}
	})
}

// TestDurableProgramMismatch pins the interner continuity check: a
// directory written against one program cannot silently decode under
// another.
func TestDurableProgramMismatch(t *testing.T) {
	dir := t.TempDir()
	v, prog := openDur(t, dir, EvalOptions{}, [2]string{"a", "b"})
	applyEdge(t, v, prog, "b", "newconst")
	v.Close()

	other := MustParse(`
		anc(X, Y) :- par(X, Y).
		anc(X, Y) :- par(X, Z), anc(Z, Y).
		par(extra, thing).
	`)
	_, err := Open(context.Background(), other, nil, EvalOptions{Dir: dir})
	if err == nil || !strings.Contains(err.Error(), "different program") {
		t.Fatalf("mismatched program opened: %v", err)
	}
}

// TestDurableTornTail tears the final WAL write mid-record and checks
// recovery drops exactly that unacknowledged batch.
func TestDurableTornTail(t *testing.T) {
	dir := t.TempDir()
	v, prog := openDur(t, dir, EvalOptions{}, [2]string{"a", "b"})
	applyEdge(t, v, prog, "b", "c")
	want := ancestors(t, v, prog)
	wantEpoch := v.Epoch()

	// Tear the next write: the batch dies mid-record and the process
	// with it.
	v.dur.dir.SetHook(fault.NewDiskPlan().TearAt(1).BeforeWrite)
	d := NewDelta().Add("par", Tuple{prog.Intern("c"), prog.Intern("d")})
	if _, err := v.Apply(*d); err == nil {
		t.Fatal("torn write acknowledged")
	}
	v.dur.dir.Close()

	v2, prog2 := openDur(t, dir, EvalOptions{})
	defer v2.Close()
	if got := v2.Epoch(); got != wantEpoch {
		t.Fatalf("epoch %d, want %d", got, wantEpoch)
	}
	if got := ancestors(t, v2, prog2); got != want {
		t.Fatalf("torn-tail recovery:\n%s\nwant:\n%s", got, want)
	}
}

// TestDurablePoisonAfterWriteFailure pins the poison contract: once a
// durable write fails, no later Apply is acknowledged.
func TestDurablePoisonAfterWriteFailure(t *testing.T) {
	dir := t.TempDir()
	v, prog := openDur(t, dir, EvalOptions{}, [2]string{"a", "b"})
	v.dur.dir.SetHook(fault.NewDiskPlan().KillAt(1).BeforeWrite)
	d := NewDelta().Add("par", Tuple{prog.Intern("b"), prog.Intern("c")})
	if _, err := v.Apply(*d); err == nil {
		t.Fatal("failed write acknowledged")
	}
	if _, err := v.Apply(*d); err == nil || !strings.Contains(err.Error(), "poisoned") {
		t.Fatalf("second Apply after write failure: %v", err)
	}
	v.Close()
}

// TestDurableValidateRejects pins the pre-log validation: doomed batches
// never enter the WAL.
func TestDurableValidateRejects(t *testing.T) {
	dir := t.TempDir()
	v, prog := openDur(t, dir, EvalOptions{}, [2]string{"a", "b"})
	defer v.Close()
	before := v.DurabilityStats().WALRecords

	d := NewDelta().Add("anc", Tuple{prog.Intern("a"), prog.Intern("b")})
	if _, err := v.Apply(*d); err == nil {
		t.Fatal("IDB delta accepted")
	}
	d = NewDelta().Add("par", Tuple{prog.Intern("a")})
	if _, err := v.Apply(*d); err == nil {
		t.Fatal("arity-mismatched delta accepted")
	}
	if got := v.DurabilityStats().WALRecords; got != before {
		t.Fatalf("rejected batches reached the WAL: %d records, was %d", got, before)
	}
	// The view is NOT poisoned: validation failures precede logging.
	applyEdge(t, v, prog, "b", "c")
}

// TestDurableCompaction drives past CompactEvery and checks the WAL is
// reset and the segment epoch advances.
func TestDurableCompaction(t *testing.T) {
	dir := t.TempDir()
	v, prog := openDur(t, dir, EvalOptions{Durability: DurabilityOptions{CompactEvery: 3}},
		[2]string{"a", "b"})
	chain := []string{"b", "c", "d", "e", "f", "g", "h"}
	for i := 0; i+1 < len(chain); i++ {
		applyEdge(t, v, prog, chain[i], chain[i+1])
	}
	st := v.DurabilityStats()
	if st.SegmentEpoch == 0 {
		t.Fatalf("no compaction after %d applies: %+v", len(chain)-1, st)
	}
	want := ancestors(t, v, prog)
	v.dur.dir.Close() // crash after compactions

	v2, prog2 := openDur(t, dir, EvalOptions{})
	defer v2.Close()
	if got := ancestors(t, v2, prog2); got != want {
		t.Fatalf("post-compaction recovery:\n%s\nwant:\n%s", got, want)
	}
}

// TestEvalRejectsDir pins that the one-shot evaluators refuse the
// durable knobs.
func TestEvalRejectsDir(t *testing.T) {
	prog := MustParse(durProg + "\npar(a, b).")
	_, err := Eval(context.Background(), prog, nil, EvalOptions{Dir: t.TempDir()})
	if !errors.Is(err, ErrBadOptions) {
		t.Fatalf("Eval with Dir: %v", err)
	}
	_, err = Eval(context.Background(), prog, nil, EvalOptions{
		Durability: DurabilityOptions{SkipCorrupt: true},
	})
	if !errors.Is(err, ErrBadOptions) {
		t.Fatalf("Durability without Dir: %v", err)
	}
	_, err = Eval(context.Background(), prog, nil, EvalOptions{
		Dir:        t.TempDir(),
		Durability: DurabilityOptions{FsyncEvery: time.Second},
	})
	if !errors.Is(err, ErrBadOptions) {
		t.Fatalf("FsyncEvery without FsyncInterval: %v", err)
	}
}
