package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"testing"
	"time"

	"parlog/internal/logx"
)

const testProgram = `
anc(X, Y) :- par(X, Y).
anc(X, Y) :- par(X, Z), anc(Z, Y).
par(a, b). par(b, c).
`

// testLog swallows log output; tests that assert on log lines build their
// own logger over a buffer.
func testLog() *slog.Logger { return logx.New(io.Discard, false) }

// TestServerEndToEnd drives the daemon over real HTTP: query the initial
// model, apply a delta, see the query answers move, scrape /metrics and
// /stats, and shut down.
func TestServerEndToEnd(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	d, srv, err := start(ctx, serverConfig{addr: "127.0.0.1:0"}, testProgram, testLog())
	if err != nil {
		t.Fatal(err)
	}
	defer d.view.Close()
	defer func() {
		shutCtx, c := context.WithTimeout(context.Background(), 2*time.Second)
		defer c()
		srv.Close(shutCtx)
	}()
	base := srv.URL()
	client := &http.Client{Timeout: 5 * time.Second}

	query := func(goal string) (pred string, epoch uint64, answers [][]string) {
		t.Helper()
		resp, err := client.Get(base + "/query?goal=" + goal)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/query status %d", resp.StatusCode)
		}
		var doc struct {
			Pred    string     `json:"pred"`
			Epoch   uint64     `json:"epoch"`
			Answers [][]string `json:"answers"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatal(err)
		}
		return doc.Pred, doc.Epoch, doc.Answers
	}

	pred, epoch, answers := query("anc(a,X)")
	if pred != "anc" || epoch != 0 || len(answers) != 2 {
		t.Fatalf("initial query: pred=%s epoch=%d answers=%v", pred, epoch, answers)
	}

	// Apply a delta: extend the chain and drop the middle edge.
	body := `{"insert": {"par": [["c","d"]]}, "delete": {"par": [["b","c"]]}}`
	resp, err := client.Post(base+"/apply", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var applied struct {
		Epoch    uint64 `json:"epoch"`
		Inserted int
		Deleted  int
	}
	if err := json.NewDecoder(resp.Body).Decode(&applied); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || applied.Epoch != 1 {
		t.Fatalf("/apply status %d, %+v", resp.StatusCode, applied)
	}
	if applied.Inserted == 0 || applied.Deleted == 0 {
		t.Fatalf("apply stats did not move: %+v", applied)
	}

	// b->c is gone, c->d is new: a now reaches only b, c only d.
	if _, epoch, answers := query("anc(a,X)"); epoch != 1 || len(answers) != 1 {
		t.Fatalf("post-apply query: epoch=%d answers=%v", epoch, answers)
	}
	if _, _, answers := query("anc(c,X)"); len(answers) != 1 || answers[0][1] != "d" {
		t.Fatalf("anc(c,X) = %v", answers)
	}

	// Bad inputs are 4xx, not crashes.
	for path, wantStatus := range map[string]int{
		"/query":            http.StatusBadRequest,       // missing goal
		"/query?goal=anc(a": http.StatusBadRequest,       // malformed
		"/apply":            http.StatusMethodNotAllowed, // GET
	} {
		resp, err := client.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Errorf("%s: status %d, want %d", path, resp.StatusCode, wantStatus)
		}
	}
	resp, err = client.Post(base+"/apply", "application/json", strings.NewReader(`{"insert": {"anc": [["a","b"]]}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("derived-predicate delta: status %d", resp.StatusCode)
	}

	// The Prometheus exposition carries the maintenance counters.
	resp, err = client.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	exposition := string(raw)
	for _, want := range []string{"parlog_ivm_applies_total", "parlog_ivm_epoch 1"} {
		if !strings.Contains(exposition, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// /stats reports the epoch, the load/rebalance gauges and the
	// counting snapshot. This daemon runs single-process, so the
	// rebalance counters must exist and read zero, and the skew gauges
	// must be present (json.Decode into *float64 distinguishes a missing
	// field from a zero one).
	resp, err = client.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Epoch uint64 `json:"epoch"`
		Load  struct {
			SkewMaxRatio *float64 `json:"skew_max_ratio"`
			Migrations   *float64 `json:"rebalance_migrations"`
			Rejected     *float64 `json:"rebalance_rejected"`
			Replayed     *float64 `json:"rebalance_replayed_batches"`
			LastSkew     *float64 `json:"rebalance_last_skew"`
		} `json:"load"`
		Metrics struct {
			IVMApplies int64 `json:"ivm_applies"`
		} `json:"metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Epoch != 1 {
		t.Errorf("/stats epoch = %d", stats.Epoch)
	}
	for name, v := range map[string]*float64{
		"skew_max_ratio":             stats.Load.SkewMaxRatio,
		"rebalance_migrations":       stats.Load.Migrations,
		"rebalance_rejected":         stats.Load.Rejected,
		"rebalance_replayed_batches": stats.Load.Replayed,
		"rebalance_last_skew":        stats.Load.LastSkew,
	} {
		if v == nil {
			t.Errorf("/stats load section missing %q", name)
		}
	}
	if stats.Load.Migrations != nil && *stats.Load.Migrations != 0 {
		t.Errorf("single-process daemon reported %v migrations", *stats.Load.Migrations)
	}
}

func TestStartRejectsBadProgram(t *testing.T) {
	if _, _, err := start(context.Background(), serverConfig{addr: "127.0.0.1:0"}, "anc(X :-", testLog()); err == nil {
		t.Error("bad program accepted")
	}
}

// startT boots a daemon for one test phase and returns a closer that
// shuts both the view and the server down.
func startT(t *testing.T, cfg serverConfig, src string) (*daemon, string, func()) {
	t.Helper()
	cfg.addr = "127.0.0.1:0"
	d, srv, err := start(context.Background(), cfg, src, testLog())
	if err != nil {
		t.Fatal(err)
	}
	return d, srv.URL(), func() {
		d.view.Close()
		shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Close(shutCtx)
	}
}

func postApply(t *testing.T, client *http.Client, base, body string) (int, string) {
	t.Helper()
	resp, err := client.Post(base+"/apply", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

// TestDurableRestartOverHTTP is the daemon-level recovery pin: apply a
// delta against a -dir daemon, shut it down, start a second daemon over
// the same directory, and the new process must answer from the exact
// pre-restart epoch and model without the delta being re-sent.
func TestDurableRestartOverHTTP(t *testing.T) {
	dir := t.TempDir()
	client := &http.Client{Timeout: 5 * time.Second}

	_, base, closeFirst := startT(t, serverConfig{dir: dir, fsync: "always"}, testProgram)
	code, body := postApply(t, client, base, `{"insert": {"par": [["c", "d"]]}}`)
	if code != http.StatusOK {
		t.Fatalf("/apply status %d: %s", code, body)
	}
	closeFirst()

	d2, base2, closeSecond := startT(t, serverConfig{dir: dir, fsync: "always"}, testProgram)
	defer closeSecond()
	if e := d2.view.Epoch(); e != 1 {
		t.Fatalf("restarted epoch = %d, want 1", e)
	}
	resp, err := client.Get(base2 + "/query?goal=anc(a,X)")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Answers [][]string `json:"answers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	// par a→b→c→d: three ancestors of a, including the restarted delta's d.
	if len(doc.Answers) != 3 {
		t.Fatalf("answers after restart = %v, want 3 rows ending at d", doc.Answers)
	}

	// /stats now reports the durable position.
	sresp, err := client.Get(base2 + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var stats struct {
		Epoch      uint64 `json:"epoch"`
		Durability *struct {
			Epoch      uint64 `json:"epoch"`
			HasSegment bool   `json:"has_segment"`
			WALRecords int    `json:"wal_records"`
		} `json:"durability"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Durability == nil || stats.Durability.Epoch != 1 || !stats.Durability.HasSegment {
		t.Fatalf("/stats durability = %+v, want epoch 1 with a segment", stats.Durability)
	}
}

// TestApplyBodyLimit: an /apply body over -max-body must be refused with
// 413, and the view must stay usable for well-sized requests.
func TestApplyBodyLimit(t *testing.T) {
	_, base, closer := startT(t, serverConfig{maxBody: 256}, testProgram)
	defer closer()
	client := &http.Client{Timeout: 5 * time.Second}

	big := `{"insert": {"par": [` + strings.Repeat(`["x","y"],`, 64) + `["x","y"]]}}`
	if code, _ := postApply(t, client, base, big); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized /apply status %d, want 413", code)
	}
	if code, body := postApply(t, client, base, `{"insert": {"par": [["x", "y"]]}}`); code != http.StatusOK {
		t.Fatalf("follow-up /apply status %d: %s", code, body)
	}
}

// TestStartRejectsBadFsyncPolicy: an unknown -fsync value must fail fast.
func TestStartRejectsBadFsyncPolicy(t *testing.T) {
	cfg := serverConfig{addr: "127.0.0.1:0", dir: t.TempDir(), fsync: "sometimes"}
	if _, _, err := start(context.Background(), cfg, testProgram, testLog()); err == nil {
		t.Error("bad -fsync policy accepted")
	}
}

// TestLatencyAndSlowQueries exercises the observability surface end to end:
// the /stats latency block fills in, the query/apply histograms reach the
// Prometheus exposition, every query lands in /debug/queries under a
// 1ns threshold (with the analyze text when -profile is on), and each HTTP
// request leaves an access-log line.
func TestLatencyAndSlowQueries(t *testing.T) {
	var logBuf bytes.Buffer
	log := logx.New(&logBuf, false)
	cfg := serverConfig{
		addr:        "127.0.0.1:0",
		profile:     true,
		slowQuery:   time.Nanosecond, // everything is "slow"
		slowLogSize: 2,               // force the ring to wrap
	}
	d, srv, err := start(context.Background(), cfg, testProgram, log)
	if err != nil {
		t.Fatal(err)
	}
	defer d.view.Close()
	defer func() {
		shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Close(shutCtx)
	}()
	base := srv.URL()
	client := &http.Client{Timeout: 5 * time.Second}

	get := func(path string) []byte {
		t.Helper()
		resp, err := client.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	for _, goal := range []string{"anc(a,X)", "anc(b,X)", "anc(a,X)"} {
		get("/query?goal=" + goal)
	}
	if code, body := postApply(t, client, base, `{"insert": {"par": [["c","d"]]}}`); code != http.StatusOK {
		t.Fatalf("/apply status %d: %s", code, body)
	}

	// A fresh-server /stats must not choke on empty histograms (NaN guard),
	// and after traffic the counts and quantiles are live.
	var stats struct {
		Latency *struct {
			QueryCount int64   `json:"query_count"`
			QueryP50   float64 `json:"query_p50_seconds"`
			QueryP99   float64 `json:"query_p99_seconds"`
			ApplyCount int64   `json:"apply_count"`
			ApplyP95   float64 `json:"apply_p95_seconds"`
		} `json:"latency"`
	}
	if err := json.Unmarshal(get("/stats"), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Latency == nil {
		t.Fatal("/stats has no latency block")
	}
	if stats.Latency.QueryCount != 3 || stats.Latency.ApplyCount != 1 {
		t.Fatalf("latency counts = %+v, want 3 queries / 1 apply", stats.Latency)
	}
	if stats.Latency.QueryP50 <= 0 || stats.Latency.QueryP99 < stats.Latency.QueryP50 {
		t.Fatalf("query quantiles out of order: %+v", stats.Latency)
	}
	if stats.Latency.ApplyP95 <= 0 {
		t.Fatalf("apply p95 = %v, want > 0", stats.Latency.ApplyP95)
	}

	// The histograms reach the Prometheus exposition.
	exposition := string(get("/metrics"))
	for _, want := range []string{
		"parlog_query_seconds_bucket", "parlog_query_seconds_count 3",
		"parlog_apply_seconds_bucket", "parlog_apply_seconds_count 1",
	} {
		if !strings.Contains(exposition, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Three slow queries into a 2-slot ring: the oldest fell off, order is
	// oldest-first, and -profile filled the analyze text in.
	var slow struct {
		ThresholdSeconds float64 `json:"threshold_seconds"`
		Queries          []struct {
			Goal    string  `json:"goal"`
			Seconds float64 `json:"seconds"`
			Answers int     `json:"answers"`
			Profile string  `json:"profile"`
		} `json:"queries"`
	}
	if err := json.Unmarshal(get("/debug/queries"), &slow); err != nil {
		t.Fatal(err)
	}
	if slow.ThresholdSeconds <= 0 {
		t.Fatalf("threshold_seconds = %v", slow.ThresholdSeconds)
	}
	if len(slow.Queries) != 2 {
		t.Fatalf("slow log holds %d entries, want 2 (ring capacity)", len(slow.Queries))
	}
	if slow.Queries[0].Goal != "anc(b,X)" || slow.Queries[1].Goal != "anc(a,X)" {
		t.Fatalf("slow log order: %+v", slow.Queries)
	}
	for _, q := range slow.Queries {
		if q.Seconds <= 0 {
			t.Errorf("slow entry %q has no duration", q.Goal)
		}
		if !strings.Contains(q.Profile, "analyze:") || !strings.Contains(q.Profile, "firings=") {
			t.Errorf("slow entry %q profile lacks analyze text:\n%s", q.Goal, q.Profile)
		}
	}

	// Every request above left exactly one access-log line.
	logText := logBuf.String()
	for path, n := range map[string]int{"/query": 3, "/apply": 1, "/stats": 1, "/debug/queries": 1} {
		if got := strings.Count(logText, "path="+path+" "); got != n {
			t.Errorf("access log has %d lines for %s, want %d\n%s", got, path, n, logText)
		}
	}
	if !strings.Contains(logText, "msg=\"http request\"") || !strings.Contains(logText, "status=200") {
		t.Errorf("access log lines malformed:\n%s", logText)
	}
	if strings.Count(logText, "msg=\"slow query\"") != 3 {
		t.Errorf("want 3 slow-query log lines:\n%s", logText)
	}
}

// TestLogJSON pins the -log-json handler switch: the same events come out
// as one JSON object per line.
func TestLogJSON(t *testing.T) {
	var buf bytes.Buffer
	log := logx.New(&buf, true)
	log.Info("serving", "addr", "http://x", "derived_predicates", 2)
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("log line is not JSON: %v\n%s", err, buf.String())
	}
	if doc["msg"] != "serving" || doc["derived_predicates"] != float64(2) {
		t.Fatalf("JSON log line = %v", doc)
	}
}
