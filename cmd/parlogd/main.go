// Command parlogd serves an incrementally maintained Datalog view over
// HTTP: load a program once, then push EDB deltas and run goal-directed
// queries against live snapshots while Prometheus metrics stream from the
// same endpoint.
//
// Usage:
//
//	parlogd -addr 127.0.0.1:8080 program.dl [facts.dl ...]
//	parlogd -dir /var/lib/parlog -fsync always program.dl
//	cat program.dl | parlogd
//
// With -dir the view is durable: every acknowledged /apply is in the
// write-ahead log before the response is sent, and a restart over the
// same directory recovers the exact pre-crash epoch and model.
//
// Endpoints:
//
//	POST /apply   JSON {"insert": {"par": [["a","b"]]}, "delete": {...}}
//	              with constant names; responds with the maintenance stats
//	GET  /query   ?goal=anc(a,X) — answers from the current snapshot
//	GET  /stats   epoch, bucket-load skew and rebalance gauges, query/apply
//	              latency quantiles, plus the aggregate telemetry snapshot
//	GET  /metrics Prometheus text exposition (parlog_ivm_* instruments plus
//	              the parlog_query_seconds/parlog_apply_seconds histograms)
//	GET  /debug/queries last-N slow queries (threshold set by -slow-query)
//	GET  /debug/parlog JSON metrics snapshot (with -pprof: /debug/pprof/)
//
// Log lines go to stderr as structured key=value text, or as JSON objects
// with -log-json; every HTTP request is logged with method, path, status,
// duration and bytes. SIGINT/SIGTERM shut the server down gracefully.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"parlog"
	"parlog/internal/logx"
	"parlog/internal/metrics"
	"parlog/internal/obs"
)

// serverConfig carries parlogd's flag-settable knobs into start.
type serverConfig struct {
	addr         string
	pprof        bool
	dir          string        // durable state directory; "" = in-memory only
	fsync        string        // always | interval | never
	fsyncEvery   time.Duration // pacing for -fsync interval
	compactEvery int           // WAL applies between segment snapshots (0: default)
	maxBody      int64         // /apply request body cap in bytes
	logJSON      bool          // JSON log lines instead of key=value text
	profile      bool          // per-query runtime profiles (slow-query log entries carry the analyze text)
	slowQuery    time.Duration // queries at least this slow enter /debug/queries; 0 disables
	slowLogSize  int           // ring-buffer capacity of /debug/queries
}

func main() {
	var cfg serverConfig
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free one)")
	flag.BoolVar(&cfg.pprof, "pprof", false, "mount net/http/pprof under /debug/pprof/")
	flag.StringVar(&cfg.dir, "dir", "", "durable state directory (WAL + segment snapshots); empty serves in-memory")
	flag.StringVar(&cfg.fsync, "fsync", "always", "WAL flush policy with -dir: always, interval or never")
	flag.DurationVar(&cfg.fsyncEvery, "fsync-every", 0, "flush pacing for -fsync interval (default 100ms)")
	flag.IntVar(&cfg.compactEvery, "compact-every", 0, "WAL applies between segment snapshots (0: library default)")
	flag.Int64Var(&cfg.maxBody, "max-body", 64<<20, "largest accepted /apply request body in bytes")
	flag.BoolVar(&cfg.logJSON, "log-json", false, "emit log lines as JSON objects instead of key=value text")
	flag.BoolVar(&cfg.profile, "profile", false, "collect per-query runtime profiles; slow-query log entries include the analyze text")
	flag.DurationVar(&cfg.slowQuery, "slow-query", 0, "log queries at least this slow to /debug/queries (0 disables)")
	flag.IntVar(&cfg.slowLogSize, "slow-log-size", 32, "slow-query ring buffer capacity")
	flag.Parse()
	if err := run(cfg, flag.Args(), os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "parlogd:", err)
		os.Exit(1)
	}
}

func run(cfg serverConfig, paths []string, logw io.Writer) error {
	src, err := readSources(paths)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	log := logx.New(logw, cfg.logJSON)
	d, srv, err := start(ctx, cfg, src, log)
	if err != nil {
		return err
	}
	defer d.view.Close()
	log.Info("serving", "addr", "http://"+srv.Addr(), "derived_predicates", len(d.prog.IDB()))

	<-ctx.Done()
	log.Info("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return srv.Close(shutCtx)
}

// start opens the view and binds the HTTP server — the testable core of
// run. The view's telemetry and the HTTP endpoints share one registry and
// one server, so /apply and /metrics live side by side: the counting sink
// feeds /stats, the metrics sink feeds the Prometheus exposition.
func start(ctx context.Context, cfg serverConfig, src string, log *slog.Logger) (*daemon, *metrics.Server, error) {
	prog, err := parlog.Parse(src)
	if err != nil {
		return nil, nil, err
	}
	reg := metrics.New()
	counting := obs.NewCounting()
	sink := obs.Fanout(counting, obs.NewMetricsSink(reg))

	opts := parlog.EvalOptions{Trace: sink, Profile: cfg.profile}
	if cfg.dir != "" {
		opts.Dir = cfg.dir
		opts.Durability.CompactEvery = cfg.compactEvery
		opts.Durability.FsyncEvery = cfg.fsyncEvery
		switch cfg.fsync {
		case "", "always":
			opts.Durability.Fsync = parlog.FsyncAlways
		case "interval":
			opts.Durability.Fsync = parlog.FsyncInterval
			if opts.Durability.FsyncEvery == 0 {
				opts.Durability.FsyncEvery = 100 * time.Millisecond
			}
		case "never":
			opts.Durability.Fsync = parlog.FsyncNever
		default:
			return nil, nil, fmt.Errorf("unknown -fsync policy %q (want always, interval or never)", cfg.fsync)
		}
	}
	if cfg.maxBody <= 0 {
		cfg.maxBody = 64 << 20
	}

	// Facts in the program file become the initial EDB, so /apply can
	// delete them like any other base tuple. Over a recovered state
	// directory the segment's EDB wins — these facts only seed the very
	// first epoch.
	edb := prog.ExtractFacts()
	view, err := parlog.Open(ctx, prog, edb, opts)
	if err != nil {
		return nil, nil, err
	}

	if cfg.slowLogSize <= 0 {
		cfg.slowLogSize = 32
	}
	// Sub-millisecond queries are the norm on warm snapshots; the buckets
	// start at 10µs and double up to ~5s so both tails resolve.
	latencyBounds := metrics.ExpBuckets(1e-5, 2, 20)
	d := &daemon{
		prog: prog, view: view, counting: counting, reg: reg,
		maxBody:   cfg.maxBody,
		log:       log,
		queryHist: reg.Histogram("parlog_query_seconds", "Wall time of /query requests (snapshot + evaluation + drain).", latencyBounds),
		applyHist: reg.Histogram("parlog_apply_seconds", "Wall time of View.Apply per /apply request.", latencyBounds),
		slowQuery: cfg.slowQuery,
		slowLog:   &slowLog{cap: cfg.slowLogSize},
	}
	extra := map[string]http.Handler{
		"/apply":         http.HandlerFunc(d.handleApply),
		"/query":         http.HandlerFunc(d.handleQuery),
		"/stats":         http.HandlerFunc(d.handleStats),
		"/debug/queries": http.HandlerFunc(d.handleSlowQueries),
	}
	for path, h := range extra {
		extra[path] = logx.AccessLog(log, h)
	}
	srv, err := metrics.NewServer(cfg.addr, reg, metrics.ServerOptions{
		Pprof: cfg.pprof,
		Debug: func() any { return counting.Snapshot() },
		Extra: extra,
		// An /apply body may be large; give the whole request a minute
		// while ReadHeaderTimeout still cuts idle connections at 5s.
		ReadTimeout: time.Minute,
	})
	if err != nil {
		view.Close()
		return nil, nil, err
	}
	return d, srv, nil
}

// daemon holds the served view. The View serializes Apply itself and
// snapshots are immutable, so the handlers need no extra locking.
type daemon struct {
	prog      *parlog.Program
	view      *parlog.View
	counting  *obs.Counting
	reg       *metrics.Registry
	maxBody   int64
	log       *slog.Logger
	queryHist *metrics.Histogram
	applyHist *metrics.Histogram
	slowQuery time.Duration // threshold for the slow-query ring; 0 disables
	slowLog   *slowLog
}

// slowQueryEntry is one /debug/queries record. Profile carries the analyze
// text when the server runs with -profile, so a slow query's join behavior
// is inspectable after the fact.
type slowQueryEntry struct {
	Goal    string    `json:"goal"`
	Epoch   uint64    `json:"epoch"`
	Seconds float64   `json:"seconds"`
	Answers int       `json:"answers"`
	At      time.Time `json:"at"`
	Profile string    `json:"profile,omitempty"`
}

// slowLog is a bounded ring of the most recent slow queries, newest last.
type slowLog struct {
	mu      sync.Mutex
	cap     int
	entries []slowQueryEntry
	start   int // ring head once full
}

func (s *slowLog) add(e slowQueryEntry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.entries) < s.cap {
		s.entries = append(s.entries, e)
		return
	}
	s.entries[s.start] = e
	s.start = (s.start + 1) % s.cap
}

func (s *slowLog) snapshot() []slowQueryEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]slowQueryEntry, 0, len(s.entries))
	out = append(out, s.entries[s.start:]...)
	out = append(out, s.entries[:s.start]...)
	return out
}

// applyRequest is the wire form of a delta: tuples of constant names.
type applyRequest struct {
	Insert map[string][][]string `json:"insert"`
	Delete map[string][][]string `json:"delete"`
}

func (d *daemon) handleApply(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req applyRequest
	body := http.MaxBytesReader(w, r.Body, d.maxBody)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit), http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "bad JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	delta := parlog.Delta{
		Insert: d.intern(req.Insert),
		Delete: d.intern(req.Delete),
	}
	begin := time.Now()
	st, err := d.view.Apply(delta)
	d.applyHist.Observe(time.Since(begin).Seconds())
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	writeJSON(w, struct {
		Epoch uint64 `json:"epoch"`
		*parlog.ApplyStats
	}{d.view.Epoch(), st})
}

// intern maps constant names to program values, creating them on first
// sight — a delta may introduce constants the program has never seen.
func (d *daemon) intern(in map[string][][]string) map[string][]parlog.Tuple {
	out := make(map[string][]parlog.Tuple, len(in))
	for pred, rows := range in {
		ts := make([]parlog.Tuple, 0, len(rows))
		for _, row := range rows {
			t := make(parlog.Tuple, len(row))
			for i, name := range row {
				t[i] = d.prog.Intern(name)
			}
			ts = append(ts, t)
		}
		out[pred] = ts
	}
	return out
}

func (d *daemon) handleQuery(w http.ResponseWriter, r *http.Request) {
	goal := strings.TrimSpace(r.URL.Query().Get("goal"))
	if goal == "" {
		http.Error(w, "missing ?goal=", http.StatusBadRequest)
		return
	}
	begin := time.Now()
	snap, err := d.view.Snapshot()
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	qr, err := snap.Query(r.Context(), goal)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	answers := [][]string{}
	for {
		t, ok := qr.Next()
		if !ok {
			break
		}
		row := make([]string, len(t))
		for i, v := range t {
			row[i] = d.prog.ConstName(v)
		}
		answers = append(answers, row)
	}
	if err := qr.Err(); err != nil {
		http.Error(w, err.Error(), http.StatusRequestTimeout)
		return
	}
	elapsed := time.Since(begin)
	d.queryHist.Observe(elapsed.Seconds())
	if d.slowQuery > 0 && elapsed >= d.slowQuery {
		e := slowQueryEntry{
			Goal:    goal,
			Epoch:   snap.Epoch(),
			Seconds: elapsed.Seconds(),
			Answers: len(answers),
			At:      time.Now().UTC(),
		}
		if qr.Result.Profile != nil {
			e.Profile = qr.Explain()
		}
		d.slowLog.add(e)
		d.log.Info("slow query",
			slog.String("goal", goal),
			slog.Duration("duration", elapsed),
			slog.Int("answers", len(answers)),
		)
	}
	writeJSON(w, struct {
		Pred    string     `json:"pred"`
		Epoch   uint64     `json:"epoch"`
		Answers [][]string `json:"answers"`
	}{qr.Pred, snap.Epoch(), answers})
}

// loadStats is the /stats view of the balance instruments: the lazily
// derived bucket-load skew gauges plus the rebalancer's counters, pulled
// fresh from the registry (Snapshot runs the collect hooks) so a scraper
// sees the same numbers the Prometheus exposition would.
type loadStats struct {
	SkewMaxRatio    float64 `json:"skew_max_ratio"`
	SkewMeanTuples  float64 `json:"skew_mean_tuples"`
	Migrations      float64 `json:"rebalance_migrations"`
	Rejected        float64 `json:"rebalance_rejected"`
	ReplayedBatches float64 `json:"rebalance_replayed_batches"`
	LastSkew        float64 `json:"rebalance_last_skew"`
}

func (d *daemon) loadStats() loadStats {
	var ls loadStats
	for _, ms := range d.reg.Snapshot() {
		if ms.Value == nil {
			continue
		}
		switch ms.Name {
		case "parlog_load_skew_max_ratio":
			ls.SkewMaxRatio = *ms.Value
		case "parlog_load_skew_mean_tuples":
			ls.SkewMeanTuples = *ms.Value
		case "parlog_rebalance_migrations_total":
			ls.Migrations = *ms.Value
		case "parlog_rebalance_rejected_total":
			ls.Rejected = *ms.Value
		case "parlog_rebalance_replayed_batches_total":
			ls.ReplayedBatches = *ms.Value
		case "parlog_rebalance_last_skew":
			ls.LastSkew = *ms.Value
		}
	}
	return ls
}

// latencyStats is the /stats latency block: request counts plus p50/p95/p99
// for the query and apply histograms, in seconds.
type latencyStats struct {
	QueryCount int64   `json:"query_count"`
	QueryP50   float64 `json:"query_p50_seconds"`
	QueryP95   float64 `json:"query_p95_seconds"`
	QueryP99   float64 `json:"query_p99_seconds"`
	ApplyCount int64   `json:"apply_count"`
	ApplyP50   float64 `json:"apply_p50_seconds"`
	ApplyP95   float64 `json:"apply_p95_seconds"`
	ApplyP99   float64 `json:"apply_p99_seconds"`
}

// quantile reads q off a histogram, mapping the empty-histogram NaN to 0 —
// encoding/json refuses NaN and a fresh server has seen no requests yet.
func quantile(h *metrics.Histogram, q float64) float64 {
	v := h.Snap().Quantile(q)
	if math.IsNaN(v) {
		return 0
	}
	return v
}

func (d *daemon) latencyStats() latencyStats {
	return latencyStats{
		QueryCount: d.queryHist.Snap().Count,
		QueryP50:   quantile(d.queryHist, 0.50),
		QueryP95:   quantile(d.queryHist, 0.95),
		QueryP99:   quantile(d.queryHist, 0.99),
		ApplyCount: d.applyHist.Snap().Count,
		ApplyP50:   quantile(d.applyHist, 0.50),
		ApplyP95:   quantile(d.applyHist, 0.95),
		ApplyP99:   quantile(d.applyHist, 0.99),
	}
}

func (d *daemon) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, struct {
		Epoch      uint64                  `json:"epoch"`
		Durability *parlog.DurabilityStats `json:"durability,omitempty"`
		Load       loadStats               `json:"load"`
		Latency    latencyStats            `json:"latency"`
		Metrics    *parlog.Metrics         `json:"metrics"`
	}{d.view.Epoch(), d.view.DurabilityStats(), d.loadStats(), d.latencyStats(), d.counting.Snapshot()})
}

// handleSlowQueries serves the slow-query ring, oldest first.
func (d *daemon) handleSlowQueries(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, struct {
		ThresholdSeconds float64          `json:"threshold_seconds"`
		Queries          []slowQueryEntry `json:"queries"`
	}{d.slowQuery.Seconds(), d.slowLog.snapshot()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func readSources(paths []string) (string, error) {
	if len(paths) == 0 {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	var b strings.Builder
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return "", err
		}
		b.Write(data)
		b.WriteByte('\n')
	}
	return b.String(), nil
}
