package main

import "testing"

func TestParseHashBits(t *testing.T) {
	f, procs, err := parseHash("bits:2")
	if err != nil {
		t.Fatal(err)
	}
	if len(procs) != 4 {
		t.Errorf("procs = %v", procs)
	}
	if got := f([]int{1, 0}); got != 2 {
		t.Errorf("f(1,0) = %d, want 2", got)
	}
}

func TestParseHashLinear(t *testing.T) {
	f, procs, err := parseHash("linear:1,-1,1")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{-1, 0, 1, 2}
	if len(procs) != len(want) {
		t.Fatalf("procs = %v, want %v", procs, want)
	}
	for i := range want {
		if procs[i] != want[i] {
			t.Fatalf("procs = %v, want %v", procs, want)
		}
	}
	if got := f([]int{1, 0, 1}); got != 2 {
		t.Errorf("f(1,0,1) = %d, want 2", got)
	}
}

func TestParseHashErrors(t *testing.T) {
	for _, bad := range []string{"", "bits:", "bits:0", "bits:99", "linear:", "linear:a", "whatever:3"} {
		if _, _, err := parseHash(bad); err == nil {
			t.Errorf("parseHash(%q) accepted", bad)
		}
	}
}

func TestSplitList(t *testing.T) {
	got := splitList(" X , Y,Z ")
	if len(got) != 3 || got[0] != "X" || got[1] != "Y" || got[2] != "Z" {
		t.Errorf("splitList = %v", got)
	}
}
