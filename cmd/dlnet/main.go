// Command dlnet performs the Section 5 compile-time analyses on a linear
// sirup: it prints the recursive rule's dataflow graph (Definition 2),
// reports whether Theorem 3 yields a communication-free scheme, and — given
// a discriminating choice — derives the minimal network graph.
//
// Usage:
//
//	dlnet -vr V,W -ve X,Y -hash bits:2           program.dl
//	dlnet -vr V,W,Z -ve U,V,W -hash linear:1,-1,1 program.dl
//
// The -hash forms:
//
//	bits:K         h(ā) = (g(a1),…,g(aK)) read as a K-bit processor id
//	linear:c1,c2…  h(ā) = Σ ci·g(ai) over processor ids the sums can reach
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"parlog"
)

func main() {
	var (
		vr       = flag.String("vr", "", "comma-separated discriminating sequence v(r)")
		ve       = flag.String("ve", "", "comma-separated discriminating sequence v(e)")
		hash     = flag.String("hash", "", "bits:K or linear:c1,c2,…")
		commfree = flag.Int("commfree", 0, "derive a communication-free scheme for N processors (Theorem 3)")
	)
	flag.Parse()

	src, err := readSources(flag.Args())
	if err != nil {
		fatal(err)
	}
	prog, err := parlog.Parse(src)
	if err != nil {
		fatal(err)
	}

	df, err := prog.Dataflow()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("dataflow graph: %s\n", df)
	cyc, err := prog.DataflowHasCycle()
	if err != nil {
		fatal(err)
	}
	if cyc {
		fmt.Println("the dataflow graph has a cycle: Theorem 3 yields a communication-free scheme")
	} else {
		fmt.Println("the dataflow graph is acyclic: every scheme needs some communication")
	}

	if *commfree > 0 {
		vr, ve, hname, err := prog.CommFreeChoice(*commfree)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nTheorem 3 choice for %d processors:\n", *commfree)
		fmt.Printf("  v(r) = %v\n  v(e) = %v\n  h = h' = %s (permutation-invariant)\n", vr, ve, hname)
	}

	if *hash == "" {
		return
	}
	if *vr == "" || *ve == "" {
		fatal(fmt.Errorf("-hash requires -vr and -ve"))
	}
	f, procs, err := parseHash(*hash)
	if err != nil {
		fatal(err)
	}
	net, err := parlog.DeriveNetwork(prog, splitList(*vr), splitList(*ve), f, f, procs)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nminimal network graph over processors %v:\n%s", procs, net)
	fmt.Printf("physical links required: %v\n", net.CrossEdges())
}

func parseHash(s string) (parlog.BitFunc, []int, error) {
	switch {
	case strings.HasPrefix(s, "bits:"):
		k, err := strconv.Atoi(s[len("bits:"):])
		if err != nil || k < 1 || k > 16 {
			return nil, nil, fmt.Errorf("bad bits spec %q", s)
		}
		procs := make([]int, 1<<k)
		for i := range procs {
			procs[i] = i
		}
		return parlog.BitVectorHash(k), procs, nil
	case strings.HasPrefix(s, "linear:"):
		var coefs []int
		for _, part := range strings.Split(s[len("linear:"):], ",") {
			c, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return nil, nil, fmt.Errorf("bad linear spec %q", s)
			}
			coefs = append(coefs, c)
		}
		// The reachable processor ids are all achievable subset sums.
		sums := map[int]bool{}
		for mask := 0; mask < 1<<len(coefs); mask++ {
			t := 0
			for i, c := range coefs {
				if mask>>i&1 == 1 {
					t += c
				}
			}
			sums[t] = true
		}
		var procs []int
		for v := range sums {
			procs = append(procs, v)
		}
		sort.Ints(procs)
		return parlog.LinearHash(coefs...), procs, nil
	default:
		return nil, nil, fmt.Errorf("unknown hash spec %q (want bits:K or linear:c1,c2,…)", s)
	}
}

func readSources(paths []string) (string, error) {
	if len(paths) == 0 {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	var b strings.Builder
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return "", err
		}
		b.Write(data)
		b.WriteByte('\n')
	}
	return b.String(), nil
}

func splitList(s string) []string {
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dlnet:", err)
	os.Exit(1)
}
