// Command dldist runs the parallel Datalog evaluation across OS processes
// over TCP — the paper's message-passing multiprocessor with one process per
// processor. Start one coordinator and N workers (any order; the coordinator
// waits, and workers retry the connect with backoff):
//
//	dldist -role coordinator -workers 3 -listen 127.0.0.1:7070 prog.dl
//	dldist -role worker -index 0 -coordinator 127.0.0.1:7070 -workers 3 -vr Z -ve X prog.dl
//	dldist -role worker -index 1 -coordinator 127.0.0.1:7070 -workers 3 -vr Z -ve X prog.dl
//	dldist -role worker -index 2 -coordinator 127.0.0.1:7070 -workers 3 -vr Z -ve X prog.dl
//
// (Flags must precede the program file; flag parsing stops at the first
// positional argument.)
//
// All traffic flows through the coordinator (star topology); workers open no
// listeners of their own. If a worker process dies mid-run, the coordinator
// reassigns its hash bucket to a survivor and replays the bucket's logged
// messages, so the run still completes with the exact least model — kill one
// of the workers above and watch the run finish anyway.
//
// Every process must be given the same program file and the same scheme
// flags: the processes independently compile identical schemes (the hash
// functions are deterministic in -seed), and parsing the same text yields
// identical constant interners, so tuple encodings agree on the wire.
// Data batches, checkpoint snapshots and the final outputs travel in
// internal/wire's compact varint encoding (checksummed with FNV over the
// encoded bytes); only the low-rate control envelope is gob. The
// -max-queue-bytes and -max-memory-bytes budgets are therefore measured
// over those encoded payload sizes.
//
// Either role serves live telemetry with -metrics-addr ADDR: Prometheus
// text at /metrics, a JSON aggregate snapshot at /debug/parlog, and (with
// -pprof) net/http/pprof. -metrics-hold keeps the endpoint up after the
// run so a scraper can collect the final state; SIGINT/SIGTERM shut
// everything down gracefully.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"parlog/internal/analysis"
	"parlog/internal/ast"
	"parlog/internal/dist"
	"parlog/internal/hashpart"
	"parlog/internal/logx"
	"parlog/internal/metrics"
	"parlog/internal/obs"
	"parlog/internal/parallel"
	"parlog/internal/parser"
	"parlog/internal/relation"
	"parlog/internal/rewrite"
)

// log carries the process diagnostics; main swaps in the JSON handler when
// -log-json is set. Derived relations stay on stdout and the profile text
// on raw stderr — results, not log lines.
var log = logx.New(os.Stderr, false)

func main() {
	var (
		role     = flag.String("role", "", "coordinator | worker")
		workers  = flag.Int("workers", 0, "number of processors")
		listen   = flag.String("listen", "127.0.0.1:0", "coordinator: control listen address")
		coord    = flag.String("coordinator", "", "worker: coordinator address")
		index    = flag.Int("index", -1, "worker: processor index (0-based)")
		strategy = flag.String("strategy", "hash", "hash | nocomm | general")
		vr       = flag.String("vr", "", "discriminating sequence v(r), comma-separated")
		ve       = flag.String("ve", "", "discriminating sequence v(e), comma-separated")
		seed     = flag.Uint64("seed", 0, "hash function seed (must match across processes)")
		retries  = flag.Int("retries", 0, "worker: connect attempts before giving up (default 5)")
		hbeat    = flag.Duration("heartbeat", 0, "coordinator: heartbeat miss threshold (default 100ms)")
		deadline = flag.Duration("deadline", 0, "coordinator: silence before a worker is declared dead (default 2s)")

		buckets      = flag.Int("buckets", 0, "hash buckets to compile the scheme for (default -workers; more buckets than workers gives the rebalancer moves to make)")
		rebalance    = flag.Bool("rebalance", false, "coordinator: enable skew-triggered hot-bucket migration")
		rebThreshold = flag.Float64("rebalance-threshold", 0, "coordinator: max/mean bucket-load skew that triggers a migration (default 2.0)")
		rebInterval  = flag.Duration("rebalance-interval", 0, "coordinator: load-sampling period (default 10ms)")
		rebWindow    = flag.Int("rebalance-window", 0, "coordinator: samples in the sliding skew window (default 3)")
		rebCooldown  = flag.Duration("rebalance-cooldown", 0, "coordinator: minimum gap between migration decisions (default 2x interval)")
		rebMax       = flag.Int("rebalance-max", 0, "coordinator: migrations allowed per run (0 = unlimited)")

		ckptEvery    = flag.Int("checkpoint-every", 0, "coordinator: checkpoint a bucket after N logged batches (0 disables)")
		ckptInterval = flag.Duration("checkpoint-interval", 0, "coordinator: checkpoint buckets with a non-empty log at this period (0 disables)")
		maxInflight  = flag.Int("max-inflight", 0, "coordinator: per-worker in-flight data batch limit (0 = unlimited)")
		maxQueue     = flag.Int64("max-queue-bytes", 0, "coordinator: resident outbound data byte limit, split into per-worker credits (0 = unlimited)")
		maxMemory    = flag.Int64("max-memory-bytes", 0, "coordinator: shared budget over logs+checkpoints+queues; overruns force checkpoints, then fail fast (0 = unlimited)")

		metricsAddr = flag.String("metrics-addr", "", "serve live Prometheus metrics (plus /debug/parlog JSON) on this address")
		pprofF      = flag.Bool("pprof", false, "mount net/http/pprof on the -metrics-addr server")
		metricsHold = flag.Duration("metrics-hold", 0, "keep the metrics endpoint alive this long after the run ends")
		profileF    = flag.Bool("profile", false, "coordinator: collect per-rule runtime profiles from the workers and print the analyze text to stderr")
		logJSON     = flag.Bool("log-json", false, "emit diagnostic log lines as JSON objects")
	)
	flag.Parse()
	if *logJSON {
		log = logx.New(os.Stderr, true)
	}

	// SIGINT/SIGTERM cancel the run and cut any -metrics-hold short, so
	// both roles shut down gracefully instead of dying mid-protocol.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	// Telemetry: the event stream feeds a registry-backed sink for the
	// Prometheus exposition and a counting sink for the /debug/parlog
	// JSON snapshot, mirroring the library's MetricsAddr wiring.
	var sink obs.EventSink
	closeTelemetry := func() {}
	if *metricsAddr != "" {
		reg := metrics.New()
		counting := obs.NewCounting()
		sink = obs.Fanout(obs.NewMetricsSink(reg), counting)
		srv, err := metrics.NewServer(*metricsAddr, reg, metrics.ServerOptions{
			Pprof: *pprofF,
			Debug: func() any { return counting.Snapshot() },
		})
		if err != nil {
			fatal(err)
		}
		log.Info("serving metrics", "addr", "http://"+srv.Addr()+"/metrics")
		closeTelemetry = func() {
			if *metricsHold > 0 {
				hold := time.NewTimer(*metricsHold)
				defer hold.Stop()
				select {
				case <-hold.C:
				case <-ctx.Done():
				}
			}
			shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			srv.Close(shutdownCtx)
		}
	}
	defer closeTelemetry()

	if *workers <= 0 {
		fatal(fmt.Errorf("-workers must be positive"))
	}
	// The scheme is compiled for -buckets processors; -workers OS
	// processes host them (bucket b starts on worker b mod workers).
	// Every process must agree on -buckets or the hash partitions
	// disagree on the wire.
	if *buckets == 0 {
		*buckets = *workers
	}
	if *buckets < *workers {
		fatal(fmt.Errorf("-buckets (%d) must be at least -workers (%d)", *buckets, *workers))
	}
	srcFiles := flag.Args()
	if len(srcFiles) == 0 {
		fatal(fmt.Errorf("a program file is required"))
	}
	var src strings.Builder
	for _, f := range srcFiles {
		data, err := os.ReadFile(f)
		if err != nil {
			fatal(err)
		}
		src.Write(data)
		src.WriteByte('\n')
	}
	prog, err := parser.Parse(src.String())
	if err != nil {
		fatal(err)
	}
	compiled, err := buildProgram(prog, *strategy, splitList(*vr), splitList(*ve), *buckets, *seed)
	if err != nil {
		fatal(err)
	}

	switch *role {
	case "coordinator":
		// dist.Run brackets the run for the single-process engine; the
		// multi-process coordinator drives the protocol directly, so
		// mark the run boundaries here or parlog_runs_total /
		// parlog_run_active never move on a dldist deployment.
		if sink != nil {
			sink.RunStart("dist", compiled.Procs.IDs())
		}
		c, err := dist.NewCoordinator(dist.Config{
			Workers:            *workers,
			Buckets:            *buckets,
			Pinned:             compiled.PinnedBuckets(),
			Rebalance: dist.RebalanceConfig{
				Enabled:       *rebalance,
				SkewThreshold: *rebThreshold,
				Interval:      *rebInterval,
				Window:        *rebWindow,
				Cooldown:      *rebCooldown,
				MaxMigrations: *rebMax,
			},
			Addr:               *listen,
			HeartbeatInterval:  *hbeat,
			WorkerDeadline:     *deadline,
			CheckpointEvery:    *ckptEvery,
			CheckpointInterval: *ckptInterval,
			MaxInflightBatches: *maxInflight,
			MaxQueueBytes:      *maxQueue,
			MaxMemoryBytes:     *maxMemory,
			ProcIDs:            compiled.Procs.IDs(),
			Profile:            *profileF,
			Ctx:                ctx,
			Sink:               sink,
		}, compiled.IDB)
		if err != nil {
			fatal(err)
		}
		log.Info("coordinating", "workers", *workers, "addr", c.Addr())
		res, err := c.Wait()
		if err != nil {
			fatal(err)
		}
		if sink != nil {
			sink.RunEnd(res.Wall)
		}
		for _, pred := range prog.IDBPreds() {
			rel := res.Output[pred]
			if rel == nil {
				continue
			}
			for _, t := range rel.SortedRows() {
				parts := make([]string, len(t))
				for i, v := range t {
					parts[i] = prog.Interner.Name(v)
				}
				fmt.Printf("%s(%s).\n", pred, strings.Join(parts, ", "))
			}
		}
		var firings, sent int64
		for _, ps := range res.Stats {
			firings += ps.Firings
			sent += ps.TuplesSent
		}
		log.Info("done", "wall", res.Wall, "firings", firings, "tuples_sent", sent)
		if res.Profile != nil {
			fmt.Fprint(os.Stderr, res.Profile.String())
		}
		if res.Checkpoints > 0 || res.TruncatedBatches > 0 {
			log.Info("durability summary",
				"checkpoints", res.Checkpoints,
				"truncated_batches", res.TruncatedBatches,
				"peak_queue_bytes", res.PeakQueueBytes)
		}
		for _, rec := range res.Recoveries {
			log.Info("recovered bucket",
				"bucket", rec.Bucket, "from_worker", rec.FromWorker, "to_worker", rec.ToWorker,
				"replayed", rec.Replayed, "covered_by_checkpoint", rec.Truncated)
		}
		for _, mig := range res.Migrations {
			log.Info("migrated hot bucket",
				"bucket", mig.Bucket, "from_worker", mig.FromWorker, "to_worker", mig.ToWorker,
				"skew", mig.Skew, "replayed", mig.Replayed)
		}
		if res.RebalanceRejected > 0 {
			log.Info("repartitionings rejected", "count", res.RebalanceRejected)
		}
	case "worker":
		if *coord == "" || *index < 0 || *index >= *workers {
			fatal(fmt.Errorf("worker needs -coordinator and a valid -index"))
		}
		global, err := parallel.PrepareEDB(compiled, relation.Store{})
		if err != nil {
			fatal(err)
		}
		newNode := func(bucket int) *parallel.Node {
			n := parallel.NewNode(compiled, bucket, global)
			if sink != nil {
				n.SetSink(sink)
			}
			return n
		}
		wcfg := dist.WorkerConfig{NewNode: newNode, MaxRetries: *retries, Ctx: ctx}
		if err := dist.RunWorker(*coord, newNode(*index), wcfg); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("-role must be coordinator or worker"))
	}
}

// buildProgram compiles the scheme deterministically from flags; every
// process must reach an identical compilation.
func buildProgram(prog *ast.Program, strategy string, vr, ve []string, workers int, seed uint64) (*parallel.Program, error) {
	procs := hashpart.RangeProcs(workers)
	h := hashpart.ModHash{N: workers, Seed: seed}
	switch strategy {
	case "hash":
		s, err := analysis.ExtractSirup(prog)
		if err != nil {
			return nil, err
		}
		if vr == nil {
			vr = []string{s.BodyVars[0]}
		}
		if ve == nil {
			ve = []string{s.ExitVars[0]}
		}
		return parallel.BuildQ(s, rewrite.SirupSpec{Procs: procs, VR: vr, VE: ve, H: h})
	case "nocomm":
		s, err := analysis.ExtractSirup(prog)
		if err != nil {
			return nil, err
		}
		if ve == nil {
			ve = []string{s.ExitVars[0]}
		}
		return parallel.BuildNoComm(s, rewrite.NoCommSpec{Procs: procs, VE: ve, HP: h})
	case "general":
		rules, _ := prog.FactTuples()
		spec := rewrite.GeneralSpec{Procs: procs}
		for _, r := range rules {
			var seq []string
			if recs := analysis.RecursiveAtoms(prog, r); len(recs) > 0 {
				if vars := r.Body[recs[0]].Vars(nil); len(vars) > 0 {
					seq = vars[:1]
				}
			}
			if seq == nil {
				vars := r.BodyVars()
				if len(vars) == 0 {
					return nil, fmt.Errorf("rule without body variables: %s", prog.FormatRule(r))
				}
				seq = vars[:1]
			}
			spec.Rules = append(spec.Rules, rewrite.RuleSpec{Seq: seq, H: h})
		}
		return parallel.BuildGeneral(prog, spec)
	default:
		return nil, fmt.Errorf("unknown strategy %q", strategy)
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func fatal(err error) {
	log.Error("fatal", "err", err.Error())
	os.Exit(1)
}
