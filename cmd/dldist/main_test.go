package main

import (
	"strings"
	"sync"
	"testing"

	"parlog/internal/dist"
	"parlog/internal/parallel"
	"parlog/internal/parser"
	"parlog/internal/relation"
	"parlog/internal/seminaive"
)

const testProgram = `
anc(X, Y) :- par(X, Y).
anc(X, Y) :- par(X, Z), anc(Z, Y).
par(a, b). par(b, c). par(c, d). par(d, e). par(b, e). par(e, f).
`

func TestBuildProgramStrategies(t *testing.T) {
	prog := parser.MustParse(testProgram)
	for _, s := range []string{"hash", "nocomm", "general"} {
		if _, err := buildProgram(prog, s, nil, nil, 3, 0); err != nil {
			t.Errorf("strategy %s: %v", s, err)
		}
	}
	if _, err := buildProgram(prog, "bogus", nil, nil, 3, 0); err == nil {
		t.Error("bogus strategy accepted")
	}
	// Sirup strategies must reject non-sirups.
	nl := parser.MustParse("p(X) :- q(X).\np(X) :- p(X), r(X).\np(X) :- p(X), s2(X).")
	if _, err := buildProgram(nl, "hash", nil, nil, 2, 0); err == nil {
		t.Error("hash strategy accepted a non-sirup")
	}
}

// TestCoordinatorWorkerPipeline drives the same code paths main uses —
// separate "processes" simulated by goroutines, each independently compiling
// the scheme from the same source text and flags, exactly as the CLI
// contract requires.
func TestCoordinatorWorkerPipeline(t *testing.T) {
	const workers = 3

	// "Coordinator process".
	coordProg := parser.MustParse(testProgram)
	coordCompiled, err := buildProgram(coordProg, "hash", []string{"Z"}, []string{"X"}, workers, 7)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := dist.NewCoordinator(dist.Config{Workers: workers}, coordCompiled.IDB)
	if err != nil {
		t.Fatal(err)
	}

	// "Worker processes": each parses and compiles independently.
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			prog := parser.MustParse(testProgram)
			compiled, err := buildProgram(prog, "hash", []string{"Z"}, []string{"X"}, workers, 7)
			if err != nil {
				errs <- err
				return
			}
			global, err := parallel.PrepareEDB(compiled, relation.Store{})
			if err != nil {
				errs <- err
				return
			}
			newNode := func(bucket int) *parallel.Node {
				return parallel.NewNode(compiled, bucket, global)
			}
			errs <- dist.RunWorker(coord.Addr(), newNode(idx), dist.WorkerConfig{NewNode: newNode})
		}(i)
	}

	res, err := coord.Wait()
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	seq, _, err := seminaive.Eval(parser.MustParse(testProgram), relation.Store{}, seminaive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !seq["anc"].Equal(res.Output["anc"]) {
		t.Fatal("multi-compilation distributed run differs from sequential")
	}
}

func TestSplitListDldist(t *testing.T) {
	if splitList("") != nil {
		t.Error("empty list should be nil")
	}
	got := splitList("Z , Y")
	if len(got) != 2 || got[0] != "Z" || got[1] != "Y" {
		t.Errorf("splitList = %v", got)
	}
	if !strings.Contains(testProgram, "anc") {
		t.Error("test program corrupt")
	}
}
