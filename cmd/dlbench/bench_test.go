package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestMain redirects E15's output file into a scratch directory so the test
// runs (including TestAllExperimentsQuick) never write into the repository.
func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "dlbench")
	if err != nil {
		panic(err)
	}
	benchOut = filepath.Join(dir, "BENCH_parallel.json")
	recoveryOut = filepath.Join(dir, "BENCH_recovery.json")
	coreOut = filepath.Join(dir, "BENCH_core.json")
	planOut = filepath.Join(dir, "BENCH_plan.json")
	ivmOut = filepath.Join(dir, "BENCH_ivm.json")
	durOut = filepath.Join(dir, "BENCH_durability.json")
	rebalanceOut = filepath.Join(dir, "BENCH_rebalance.json")
	profileOut = filepath.Join(dir, "BENCH_profile.json")
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// TestRecoveryJSON checks the document E16 writes: all three modes present
// and agreeing on the least model, the killed runs actually recovered, and
// the bounded run replayed strictly fewer batches than the full-replay run.
func TestRecoveryJSON(t *testing.T) {
	if err := runE16(true); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(recoveryOut)
	if err != nil {
		t.Fatal(err)
	}
	var doc recoveryDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	byMode := map[string]recoveryRun{}
	for _, r := range doc.Runs {
		byMode[r.Mode] = r
	}
	for _, mode := range []string{"undisturbed", "log-replay", "bounded"} {
		if _, ok := byMode[mode]; !ok {
			t.Fatalf("missing %q run in %s", mode, recoveryOut)
		}
		if byMode[mode].Anc != byMode["undisturbed"].Anc {
			t.Errorf("%s: anc=%d, undisturbed got %d", mode, byMode[mode].Anc, byMode["undisturbed"].Anc)
		}
	}
	full, bounded := byMode["log-replay"], byMode["bounded"]
	if full.Replayed == 0 {
		t.Error("log-replay run recorded no replayed batches")
	}
	if bounded.Checkpoints == 0 {
		t.Error("bounded run took no checkpoints")
	}
	// Truncated > 0 is the replay bound: the recovery skipped the log prefix
	// the checkpoint covered instead of replaying its full history.
	if bounded.Truncated == 0 {
		t.Errorf("bounded recovery replayed its full %d-batch history", bounded.Replayed)
	}
}

// TestPlanJSON checks the document E18 writes: the four query kernels
// present with non-degenerate op counts, and the demand reduction it
// self-gates on recorded in the document.
func TestPlanJSON(t *testing.T) {
	if err := runE18(true); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(planOut)
	if err != nil {
		t.Fatal(err)
	}
	var doc planDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, k := range doc.Kernels {
		names[k.Name] = true
		if k.Ops <= 0 {
			t.Errorf("%s: ops=%d", k.Name, k.Ops)
		}
	}
	for _, want := range []string{"query-demand-off", "query-demand-on", "ex3-greedy", "ex3-ltr"} {
		if !names[want] {
			t.Errorf("missing kernel %q in %s", want, planOut)
		}
	}
	if doc.Answers == 0 {
		t.Error("no answers recorded")
	}
	if 2*doc.DemandOnDerived > doc.DemandOffDerived {
		t.Errorf("demand derived %d vs %d undirected — runE18 should have failed",
			doc.DemandOnDerived, doc.DemandOffDerived)
	}
}

// TestIVMJSON checks the document E19 writes: the five maintenance kernels
// present with non-degenerate op counts, and the firing reduction it
// self-gates on recorded in the document.
func TestIVMJSON(t *testing.T) {
	if err := runE19(true); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(ivmOut)
	if err != nil {
		t.Fatal(err)
	}
	var doc ivmDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, k := range doc.Kernels {
		names[k.Name] = true
		if k.Ops <= 0 {
			t.Errorf("%s: ops=%d", k.Name, k.Ops)
		}
	}
	for _, want := range []string{"ivm-open", "ivm-apply-insert", "ivm-apply-delete", "ivm-snapshot", "scratch-refixpoint"} {
		if !names[want] {
			t.Errorf("missing kernel %q in %s", want, ivmOut)
		}
	}
	if doc.AncTuples == 0 || doc.Batches == 0 {
		t.Errorf("degenerate document: %d anc tuples over %d batches", doc.AncTuples, doc.Batches)
	}
	if 5*doc.MaintainFirings > doc.ScratchFirings {
		t.Errorf("maintained %d firings vs %d from scratch — runE19 should have failed",
			doc.MaintainFirings, doc.ScratchFirings)
	}
}

// TestDurabilityJSON checks the document E20 writes: one apply kernel per
// fsync policy plus both restart-path kernels, all with real op counts, and
// the fsync tax recorded. Model/epoch agreement between the cold start, the
// pre-shutdown view and the from-scratch recompute is asserted inside runE20
// itself — an error here would have failed the run.
func TestDurabilityJSON(t *testing.T) {
	if err := runE20(true); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(durOut)
	if err != nil {
		t.Fatal(err)
	}
	var doc durDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, k := range doc.Kernels {
		names[k.Name] = true
		if k.Ops <= 0 || k.NsPerOp <= 0 {
			t.Errorf("%s: ops=%d ns_op=%v", k.Name, k.Ops, k.NsPerOp)
		}
	}
	for _, want := range []string{
		"wal-apply-fsync-always", "wal-apply-fsync-interval", "wal-apply-fsync-never",
		"cold-start-open", "recompute-eval",
	} {
		if !names[want] {
			t.Errorf("missing kernel %q in %s", want, durOut)
		}
	}
	if doc.AncTuples == 0 || doc.Batches == 0 {
		t.Errorf("degenerate document: %d anc tuples over %d batches", doc.AncTuples, doc.Batches)
	}
	if doc.AlwaysOverNever <= 0 {
		t.Errorf("fsync_always_over_never = %v, want > 0", doc.AlwaysOverNever)
	}
}

// TestProfileJSON checks the document E22 writes: both sides measured with
// the configured repetition count, model and firing totals recorded, and
// the on/off ratio present. Exactness of the profiled runs (profile totals
// equal to engine statistics, identical models) is asserted inside runE22
// itself — an error there would have failed the run.
func TestProfileJSON(t *testing.T) {
	if err := runE22(true); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(profileOut)
	if err != nil {
		t.Fatal(err)
	}
	var doc profileDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	for _, side := range []profileSide{doc.Disabled, doc.Profiled} {
		if len(side.WallNs) != side.Reps || side.Reps == 0 {
			t.Errorf("%s: %d samples over %d reps", side.Name, len(side.WallNs), side.Reps)
		}
		if side.MedianWallNs <= 0 {
			t.Errorf("%s: median %d ns", side.Name, side.MedianWallNs)
		}
	}
	if doc.Anc == 0 || doc.Firings == 0 {
		t.Errorf("degenerate document: anc=%d firings=%d", doc.Anc, doc.Firings)
	}
	if doc.ProfiledOverDisabled <= 0 {
		t.Errorf("profiled_over_disabled = %v, want > 0", doc.ProfiledOverDisabled)
	}
}

// TestBenchJSON checks the document E15 writes: all three examples present,
// and for each one the acceptance-relevant series — per-iteration deltas,
// per-worker busy/idle totals and per-channel tuple counts (for the
// communicating schemes) — non-degenerate.
func TestBenchJSON(t *testing.T) {
	if err := runE15(true); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(benchOut)
	if err != nil {
		t.Fatal(err)
	}
	var doc benchDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(doc.Examples) != 3 {
		t.Fatalf("expected 3 examples, got %d", len(doc.Examples))
	}
	var anc int
	for _, ex := range doc.Examples {
		if ex.Metrics == nil || len(ex.Metrics.Procs) != doc.Workers {
			t.Fatalf("%s: expected metrics for %d workers", ex.Example, doc.Workers)
		}
		if anc == 0 {
			anc = ex.Anc
		} else if ex.Anc != anc {
			t.Errorf("%s: anc=%d, other schemes got %d", ex.Example, ex.Anc, anc)
		}
		var iters, busy int
		for _, p := range ex.Metrics.Procs {
			iters += len(p.Iterations)
			if p.BusyNs > 0 {
				busy++
			}
		}
		if iters == 0 {
			t.Errorf("%s: no per-iteration deltas recorded", ex.Example)
		}
		if busy == 0 {
			t.Errorf("%s: no worker recorded busy time", ex.Example)
		}
		// ex3 partitions by a body variable the head cannot see, so it must
		// communicate; its edge rows carry the per-channel tuple counts.
		if ex.Example == "ex3" {
			var tuples int64
			for _, e := range ex.Metrics.Edges {
				tuples += e.Tuples
			}
			if tuples == 0 {
				t.Error("ex3: expected non-zero per-channel tuple counts")
			}
		}
	}
}
