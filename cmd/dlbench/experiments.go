package main

import (
	"fmt"
	"runtime"
	"time"

	"parlog/internal/analysis"
	"parlog/internal/ast"
	"parlog/internal/hashpart"
	"parlog/internal/network"
	"parlog/internal/parallel"
	"parlog/internal/parser"
	"parlog/internal/relation"
	"parlog/internal/rewrite"
	"parlog/internal/seminaive"
	"parlog/internal/workload"
)

const ancestorSrc = `
anc(X, Y) :- par(X, Y).
anc(X, Y) :- par(X, Z), anc(Z, Y).
`

const nonlinearSrc = `
anc(X, Y) :- par(X, Y).
anc(X, Y) :- anc(X, Z), anc(Z, Y).
`

const example6Src = `
p(X, Y) :- q(X, Y).
p(X, Y) :- p(Y, Z), r(X, Z).
`

const example7Src = `
p(U, V, W) :- s(U, V, W).
p(U, V, W) :- p(V, W, Z), q(U, Z).
`

func sirupOf(src string) (*analysis.Sirup, error) {
	return analysis.ExtractSirup(parser.MustParse(src))
}

// --- E1 / E2: dataflow graphs ---

func runE1(bool) error {
	s, err := sirupOf(example7Src)
	if err != nil {
		return err
	}
	g := network.NewDataflow(s)
	fmt.Printf("rule:   p(U, V, W) :- p(V, W, Z), q(U, Z).\n")
	fmt.Printf("graph:  %s\n", g)
	fmt.Printf("paper:  1 → 2 → 3      match: %v\n", g.String() == "1 → 2 → 3")
	return nil
}

func runE2(bool) error {
	s, err := sirupOf(ancestorSrc)
	if err != nil {
		return err
	}
	g := network.NewDataflow(s)
	cyc := g.Cycle()
	fmt.Printf("rule:   anc(X, Y) :- par(X, Z), anc(Z, Y).\n")
	fmt.Printf("graph:  %s (cycle at position %v)\n", g, cyc)
	fmt.Printf("paper:  self-loop at 2  match: %v\n", g.String() == "2 → 2" && len(cyc) == 1 && cyc[0] == 2)
	return nil
}

// --- E3 / E4: network graphs ---

func runE3(bool) error {
	s, err := sirupOf(example6Src)
	if err != nil {
		return err
	}
	F := network.BitVectorF(2)
	d, err := network.Derive(s, []string{"Y", "Z"}, []string{"X", "Y"}, F, F, hashpart.RangeProcs(4))
	if err != nil {
		return err
	}
	fmt.Printf("program: %srule choice: v(r)=⟨Y,Z⟩, v(e)=⟨X,Y⟩, h(a,b)=(g(a),g(b)), P={(00),(01),(10),(11)}\n", example6Src)
	fmt.Print(d)
	fmt.Printf("paper's explicit claims hold: (00)↛(01)=%v, (00)↛(11)=%v, (00)→(10)=%v\n",
		!d.HasEdge(0, 1), !d.HasEdge(0, 3), d.HasEdge(0, 2))
	return nil
}

func runE4(bool) error {
	s, err := sirupOf(example7Src)
	if err != nil {
		return err
	}
	F := network.LinearF([]int{1, -1, 1})
	procs := hashpart.NewProcSet(-1, 0, 1, 2)
	d, err := network.Derive(s, []string{"V", "W", "Z"}, []string{"U", "V", "W"}, F, F, procs)
	if err != nil {
		return err
	}
	fmt.Printf("program: %srule choice: v(r)=⟨V,W,Z⟩, v(e)=⟨U,V,W⟩, h = g(a1) − g(a2) + g(a3), P = {−1,0,1,2}\n", example7Src)
	fmt.Println("solving x1−x2+x3 = v, x2−x3+x4 = u over x ∈ {0,1}⁴ (equations (4)–(5)):")
	fmt.Print(d)
	fmt.Printf("exit-rule production alone yields only i = j (the paper's 'trivial' case): %v\n",
		len(d.CrossEdges()) == 8)
	return nil
}

// --- E5: Examples 1–3 profile ---

func runE5(quick bool) error {
	size := 120
	edges := 480
	if quick {
		size, edges = 40, 160
	}
	workloads := []struct {
		name string
		par  *relation.Relation
	}{
		{"chain", workload.Chain(size)},
		{fmt.Sprintf("random(%d,%d)", size, edges), workload.RandomGraph(size, edges, 7)},
		{"components(8)", workload.Components(8, size/8)},
	}
	fmt.Printf("%-16s %2s %-10s %12s %9s %11s %9s %10s\n",
		"workload", "N", "scheme", "tuples-sent", "messages", "repl-factor", "firings", "redundant")
	for _, wl := range workloads {
		edb := relation.Store{"par": wl.par}
		prog := workload.AncestorProgram()
		_, seqStats, err := seminaive.Eval(prog, edb, seminaive.Options{})
		if err != nil {
			return err
		}
		for _, n := range []int{2, 4, 8} {
			s, err := analysis.ExtractSirup(workload.AncestorProgram())
			if err != nil {
				return err
			}
			h := hashpart.ModHash{N: n}

			type scheme struct {
				name  string
				build func() (*parallel.Program, error)
			}
			frags := map[int]*relation.Relation{}
			for i := 0; i < n; i++ {
				frags[i] = relation.New(2)
			}
			for k, t := range wl.par.Rows() {
				frags[k%n].Insert(t)
			}
			hfrag, err := hashpart.NewFragmentation(frags, h)
			if err != nil {
				return err
			}
			schemes := []scheme{
				{"ex1 (v=Y)", func() (*parallel.Program, error) {
					return parallel.BuildQ(s, rewrite.SirupSpec{Procs: hashpart.RangeProcs(n), VR: []string{"Y"}, VE: []string{"Y"}, H: h})
				}},
				{"ex2 (frag)", func() (*parallel.Program, error) {
					return parallel.BuildQ(s, rewrite.SirupSpec{Procs: hashpart.RangeProcs(n), VR: []string{"X", "Z"}, VE: []string{"X", "Y"}, H: hfrag})
				}},
				{"ex3 (v=Z)", func() (*parallel.Program, error) {
					return parallel.BuildQ(s, rewrite.SirupSpec{Procs: hashpart.RangeProcs(n), VR: []string{"Z"}, VE: []string{"X"}, H: h})
				}},
			}
			for _, sc := range schemes {
				p, err := sc.build()
				if err != nil {
					return err
				}
				res, err := parallel.Run(p, edb, parallel.RunConfig{})
				if err != nil {
					return err
				}
				pl := res.Stats.Placements["par"]
				fmt.Printf("%-16s %2d %-10s %12d %9d %11.2f %9d %10d\n",
					wl.name, n, sc.name,
					res.Stats.TotalTuplesSent(), res.Stats.TotalMessages(),
					pl.ReplicationFactor(wl.par.Len()),
					res.Stats.TotalFirings(),
					res.Stats.TotalFirings()-seqStats.Firings)
			}
		}
	}
	fmt.Println("shape check: ex1 sends 0 and replicates (factor = N); ex2 broadcasts the most")
	fmt.Println("but runs on an arbitrary fragmentation (factor ≤ 1); ex3 sends point-to-point")
	fmt.Println("(between the two) on a hash fragmentation; all three stay non-redundant.")
	return nil
}

// --- E6: non-redundancy counts ---

func runE6(quick bool) error {
	n := 10
	if quick {
		n = 6
	}
	fmt.Printf("%-18s %10s %10s %10s %12s\n", "workload", "seq", "Q(ex3)", "general", "nocomm")
	for _, wl := range []struct {
		name string
		par  *relation.Relation
	}{
		{"chain(60)", workload.Chain(60)},
		{"cycle(24)", workload.Cycle(24)},
		{"tree(2,6)", workload.Tree(2, 6)},
		{fmt.Sprintf("random(40,%d)", 40*n/2), workload.RandomGraph(40, 40*n/2, 3)},
	} {
		edb := relation.Store{"par": wl.par}
		_, seqStats, err := seminaive.Eval(workload.AncestorProgram(), edb, seminaive.Options{})
		if err != nil {
			return err
		}
		s, err := analysis.ExtractSirup(workload.AncestorProgram())
		if err != nil {
			return err
		}
		h := hashpart.ModHash{N: 4}
		q, err := parallel.BuildQ(s, rewrite.SirupSpec{Procs: hashpart.RangeProcs(4), VR: []string{"Z"}, VE: []string{"X"}, H: h})
		if err != nil {
			return err
		}
		qres, err := parallel.Run(q, edb, parallel.RunConfig{})
		if err != nil {
			return err
		}
		gp, err := parallel.BuildGeneral(workload.NonlinearAncestorProgram(), rewrite.GeneralSpec{
			Procs: hashpart.RangeProcs(4),
			Rules: []rewrite.RuleSpec{{Seq: []string{"Y"}, H: h}, {Seq: []string{"Z"}, H: h}},
		})
		if err != nil {
			return err
		}
		// The general scheme bound (Theorem 6) is against the non-linear
		// program's own sequential count.
		_, nlSeqStats, err := seminaive.Eval(workload.NonlinearAncestorProgram(), edb, seminaive.Options{})
		if err != nil {
			return err
		}
		gres, err := parallel.Run(gp, edb, parallel.RunConfig{})
		if err != nil {
			return err
		}
		nc, err := parallel.BuildNoComm(s, rewrite.NoCommSpec{Procs: hashpart.RangeProcs(4), VE: []string{"X"}, HP: h})
		if err != nil {
			return err
		}
		ncres, err := parallel.Run(nc, edb, parallel.RunConfig{})
		if err != nil {
			return err
		}
		fmt.Printf("%-18s %10d %10d %10d(seq %d) %8d\n", wl.name,
			seqStats.Firings, qres.Stats.TotalFirings(), gres.Stats.TotalFirings(), nlSeqStats.Firings, ncres.Stats.TotalFirings())
		if qres.Stats.TotalFirings() > seqStats.Firings {
			return fmt.Errorf("Theorem 2 violated on %s", wl.name)
		}
		if gres.Stats.TotalFirings() > nlSeqStats.Firings {
			return fmt.Errorf("Theorem 6 violated on %s", wl.name)
		}
	}
	fmt.Println("Q and the general scheme never exceed their sequential firing counts")
	fmt.Println("(Theorems 2 and 6); the no-communication scheme may exceed it.")
	return nil
}

// --- E7: trade-off sweep ---

func runE7(quick bool) error {
	nodes, edges := 60, 240
	if quick {
		nodes, edges = 30, 120
	}
	par := workload.RandomGraph(nodes, edges, 7)
	edb := relation.Store{"par": par}
	_, seqStats, err := seminaive.Eval(workload.AncestorProgram(), edb, seminaive.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("random(%d,%d), N=4; sequential firings = %d\n", nodes, edges, seqStats.Firings)
	fmt.Printf("%-9s %12s %10s %18s\n", "locality", "tuples-sent", "firings", "redundant-firings")
	shared := hashpart.ModHash{N: 4}
	for _, keep := range []int{0, 100, 250, 500, 750, 900, 1000} {
		s, err := analysis.ExtractSirup(workload.AncestorProgram())
		if err != nil {
			return err
		}
		k := keep
		p, err := parallel.BuildR(s, rewrite.RSpec{
			Procs: hashpart.RangeProcs(4),
			VR:    []string{"Z"}, VE: []string{"X"},
			HP: shared,
			HI: func(i int) hashpart.Func {
				return hashpart.Mix{Local: i, Shared: shared, KeepPermille: k}
			},
		})
		if err != nil {
			return err
		}
		res, err := parallel.Run(p, edb, parallel.RunConfig{})
		if err != nil {
			return err
		}
		fmt.Printf("%8.2f %12d %10d %18d\n", float64(keep)/1000,
			res.Stats.TotalTuplesSent(), res.Stats.TotalFirings(),
			res.Stats.TotalFirings()-seqStats.Firings)
	}
	fmt.Println("shape check: communication falls to 0 and redundancy rises as locality → 1.")
	return nil
}

// --- E8: Theorem 3 ---

func runE8(bool) error {
	cases := []struct {
		name string
		src  string
		edb  relation.Store
		out  string
	}{
		{"ancestor", ancestorSrc, relation.Store{"par": workload.RandomGraph(30, 90, 4)}, "anc"},
		{"swap 2-cycle", `
p(X, Y) :- q(X, Y).
p(X, Y) :- p(Y, X), r(X, Y).
`, relation.Store{"q": workload.RandomGraph(16, 40, 5), "r": workload.RandomGraph(16, 40, 6)}, "p"},
	}
	fmt.Printf("%-14s %-12s %-12s %12s %8s\n", "program", "cycle", "v(r)", "tuples-sent", "correct")
	for _, tc := range cases {
		prog := parser.MustParse(tc.src)
		s, err := analysis.ExtractSirup(prog)
		if err != nil {
			return err
		}
		g := network.NewDataflow(s)
		spec, err := network.CommFree(s, hashpart.RangeProcs(4))
		if err != nil {
			return err
		}
		p, err := parallel.BuildQ(s, *spec)
		if err != nil {
			return err
		}
		res, err := parallel.Run(p, tc.edb, parallel.RunConfig{})
		if err != nil {
			return err
		}
		seq, _, err := seminaive.Eval(prog, tc.edb, seminaive.Options{})
		if err != nil {
			return err
		}
		fmt.Printf("%-14s %-10s %-10s %12d %8v\n", tc.name,
			fmt.Sprintf("%v", g.Cycle()), fmt.Sprintf("%v", spec.VR),
			res.Stats.TotalTuplesSent(), seq[tc.out].Equal(res.Output[tc.out]))
		if res.Stats.TotalTuplesSent() != 0 {
			return fmt.Errorf("Theorem 3 scheme communicated on %s", tc.name)
		}
	}
	return nil
}

// --- E9: speedup / utilization ---

// runE9 measures the load distribution of the hash-partitioned scheme. On a
// multi-core host the wall-clock column shows real speedup; this harness
// also reports the machine-independent quantity: per-processor work
// (firings + received tuples) and the ideal speedup total-work/max-work,
// which is what wall time converges to on the paper's assumed N-processor
// hardware. (On a single-core host — GOMAXPROCS prints below — goroutines
// time-slice one CPU, so wall time cannot drop and per-worker wall spans are
// inflated by contention; the work columns are the meaningful ones there.)
func runE9(quick bool) error {
	nodes, edges := 400, 1200
	if quick {
		nodes, edges = 120, 400
	}
	par := workload.RandomGraph(nodes, edges, 11)
	edb := relation.Store{"par": par}
	prog := workload.AncestorProgram()
	t0 := time.Now()
	seq, seqStats, err := seminaive.Eval(prog, edb, seminaive.Options{})
	if err != nil {
		return err
	}
	seqWall := time.Since(t0)
	fmt.Printf("host: GOMAXPROCS=%d NumCPU=%d\n", runtime.GOMAXPROCS(0), runtime.NumCPU())
	fmt.Printf("random(%d,%d): |anc| = %d, sequential %v (%d firings)\n",
		nodes, edges, seq["anc"].Len(), seqWall.Round(time.Millisecond), seqStats.Firings)
	fmt.Printf("%2s %10s %12s %12s %14s %9s\n", "N", "wall", "total-work", "max-work", "ideal-speedup", "balance")
	for _, n := range []int{1, 2, 4, 8} {
		s, err := analysis.ExtractSirup(workload.AncestorProgram())
		if err != nil {
			return err
		}
		p, err := parallel.BuildQ(s, rewrite.SirupSpec{
			Procs: hashpart.RangeProcs(n),
			VR:    []string{"Z"}, VE: []string{"X"},
			H: hashpart.ModHash{N: n},
		})
		if err != nil {
			return err
		}
		// Best of three runs to damp scheduler noise.
		var best *parallel.Result
		for trial := 0; trial < 3; trial++ {
			res, err := parallel.Run(p, edb, parallel.RunConfig{})
			if err != nil {
				return err
			}
			if best == nil || res.Stats.Wall < best.Stats.Wall {
				best = res
			}
		}
		if !seq["anc"].Equal(best.Output["anc"]) {
			return fmt.Errorf("N=%d result differs", n)
		}
		var total, max int64
		for _, ps := range best.Stats.Procs {
			work := ps.Firings + ps.TuplesReceived
			total += work
			if work > max {
				max = work
			}
		}
		fmt.Printf("%2d %10v %12d %12d %14.2f %8.2f\n", n,
			best.Stats.Wall.Round(time.Millisecond),
			total, max,
			float64(total)/float64(max),
			float64(total)/(float64(n)*float64(max)))
	}
	fmt.Println("shape check: ideal speedup grows near-linearly in N (hash partitioning")
	fmt.Println("balances the substitution space); the paper defers this quantitative study")
	fmt.Println("to future work (Section 8) — reported here as an extension.")
	return nil
}

// --- E10: general scheme on the non-linear ancestor ---

func runE10(quick bool) error {
	nodes, edges := 80, 320
	if quick {
		nodes, edges = 30, 120
	}
	par := workload.RandomGraph(nodes, edges, 13)
	edb := relation.Store{"par": par}
	lin, linStats, err := seminaive.Eval(workload.AncestorProgram(), edb, seminaive.Options{})
	if err != nil {
		return err
	}
	_, nlStats, err := seminaive.Eval(workload.NonlinearAncestorProgram(), edb, seminaive.Options{})
	if err != nil {
		return err
	}
	h := hashpart.ModHash{N: 4}
	p, err := parallel.BuildGeneral(workload.NonlinearAncestorProgram(), rewrite.GeneralSpec{
		Procs: hashpart.RangeProcs(4),
		Rules: []rewrite.RuleSpec{{Seq: []string{"Y"}, H: h}, {Seq: []string{"Z"}, H: h}},
	})
	if err != nil {
		return err
	}
	res, err := parallel.Run(p, edb, parallel.RunConfig{})
	if err != nil {
		return err
	}
	fmt.Printf("random(%d,%d): |anc| = %d\n", nodes, edges, lin["anc"].Len())
	fmt.Printf("%-34s %10s %12s\n", "evaluation", "firings", "tuples-sent")
	fmt.Printf("%-34s %10d %12s\n", "sequential linear sirup", linStats.Firings, "—")
	fmt.Printf("%-34s %10d %12s\n", "sequential non-linear (Example 8)", nlStats.Firings, "—")
	fmt.Printf("%-34s %10d %12d\n", "parallel general scheme, N=4", res.Stats.TotalFirings(), res.Stats.TotalTuplesSent())
	if !lin["anc"].Equal(res.Output["anc"]) {
		return fmt.Errorf("general scheme result differs")
	}
	if res.Stats.TotalFirings() > nlStats.Firings {
		return fmt.Errorf("Theorem 6 violated")
	}
	fmt.Println("the parallel firing count stays ≤ the non-linear program's sequential count")
	fmt.Println("(Theorem 6); the non-linear rule fires more than the linear sirup, as expected.")
	return nil
}

// --- E11: witness search ---

func runE11(quick bool) error {
	trials := 80
	if quick {
		trials = 30
	}
	s, err := sirupOf(example6Src)
	if err != nil {
		return err
	}
	procs := hashpart.RangeProcs(4)
	F := network.BitVectorF(2)
	d, err := network.Derive(s, []string{"Y", "Z"}, []string{"X", "Y"}, F, F, procs)
	if err != nil {
		return err
	}
	h := network.FuncFromBits("h6", F, hashpart.GParity)
	rep, err := network.FindWitnesses(s, d, rewrite.SirupSpec{
		Procs: procs,
		VR:    []string{"Y", "Z"}, VE: []string{"X", "Y"},
		H: h, HP: h,
	}, trials, 6, 42)
	if err != nil {
		return err
	}
	fmt.Printf("Example 6, %d random databases:\n", rep.Trials)
	fmt.Printf("  predicted cross edges: %d\n", len(d.CrossEdges()))
	witnessed := 0
	for _, ok := range rep.Witnessed {
		if ok {
			witnessed++
		}
	}
	fmt.Printf("  witnessed (minimality): %d/%d\n", witnessed, len(rep.Witnessed))
	fmt.Printf("  unpredicted channel uses (soundness violations): %d\n", len(rep.Violations))
	if len(rep.Violations) > 0 {
		return fmt.Errorf("derivation unsound: %v", rep.Violations)
	}
	if !rep.AllWitnessed() {
		fmt.Println("  note: some edges unwitnessed in this budget; increase trials")
	}
	return nil
}

// --- E12: restricted interconnect ---

func runE12(bool) error {
	for _, tc := range []struct {
		name, src string
		vr, ve    []string
		F         network.BitFunc
		procs     *hashpart.ProcSet
		edb       relation.Store
		out       string
	}{
		{"Example 6", example6Src, []string{"Y", "Z"}, []string{"X", "Y"},
			network.BitVectorF(2), hashpart.RangeProcs(4),
			relation.Store{"q": workload.RandomGraph(20, 60, 1), "r": workload.RandomGraph(20, 60, 2)}, "p"},
		{"Example 7", example7Src, []string{"V", "W", "Z"}, []string{"U", "V", "W"},
			network.LinearF([]int{1, -1, 1}), hashpart.NewProcSet(-1, 0, 1, 2),
			relation.Store{
				"s": workload.RandomRelation(3, 14, 60, 3),
				"q": workload.RandomGraph(14, 50, 4),
			}, "p"},
	} {
		prog := parser.MustParse(tc.src)
		s, err := analysis.ExtractSirup(prog)
		if err != nil {
			return err
		}
		d, err := network.Derive(s, tc.vr, tc.ve, tc.F, tc.F, tc.procs)
		if err != nil {
			return err
		}
		h := network.FuncFromBits("hb", tc.F, hashpart.GParity)
		p, err := parallel.BuildQ(s, rewrite.SirupSpec{Procs: tc.procs, VR: tc.vr, VE: tc.ve, H: h})
		if err != nil {
			return err
		}
		res, err := parallel.Run(p, tc.edb, parallel.RunConfig{
			Topology: parallel.NewTopology(d.CrossEdges()),
		})
		if err != nil {
			return fmt.Errorf("%s: derived interconnect insufficient: %w", tc.name, err)
		}
		seq, _, err := seminaive.Eval(prog, tc.edb, seminaive.Options{})
		if err != nil {
			return err
		}
		fmt.Printf("%-10s: %2d derived links, |%s| = %d, tuples sent = %d, matches sequential: %v\n",
			tc.name, len(d.CrossEdges()), tc.out, res.Output[tc.out].Len(),
			res.Stats.TotalTuplesSent(), seq[tc.out].Equal(res.Output[tc.out]))
		if !seq[tc.out].Equal(res.Output[tc.out]) {
			return fmt.Errorf("%s differs from sequential", tc.name)
		}
	}
	return nil
}

// --- E13: declarative theorem checks ---

func runE13(quick bool) error {
	graphs := 6
	if quick {
		graphs = 3
	}
	pass := 0
	total := 0
	check := func(name string, ok bool) {
		total++
		if ok {
			pass++
		} else {
			fmt.Printf("  FAILED: %s\n", name)
		}
	}
	for seed := int64(0); seed < int64(graphs); seed++ {
		src := ancestorSrc
		prog := parser.MustParse(src)
		edb := relation.Store{"par": workload.RandomGraph(10, 20, seed)}
		seq, _, err := seminaive.Eval(prog, edb, seminaive.Options{})
		if err != nil {
			return err
		}
		s, err := analysis.ExtractSirup(prog)
		if err != nil {
			return err
		}
		// Theorem 1: Q's union program.
		q, err := rewrite.Q(s, rewrite.SirupSpec{
			Procs: hashpart.RangeProcs(3),
			VR:    []string{"Z"}, VE: []string{"X"},
			H: hashpart.ModHash{N: 3, Seed: uint64(seed)},
		})
		if err != nil {
			return err
		}
		qm, _, err := seminaive.Eval(q.Program, edb, seminaive.Options{})
		if err != nil {
			return err
		}
		check(fmt.Sprintf("Theorem 1 seed %d", seed), seq["anc"].Equal(qm["anc"]))

		// Theorem 4: R's union program with mixed h_i.
		r, err := rewrite.R(s, rewrite.RSpec{
			Procs: hashpart.RangeProcs(3),
			VR:    []string{"Z"}, VE: []string{"X"},
			HP: hashpart.ModHash{N: 3},
			HI: func(i int) hashpart.Func {
				return hashpart.Mix{Local: i, Shared: hashpart.ModHash{N: 3}, KeepPermille: 400}
			},
		})
		if err != nil {
			return err
		}
		rm, _, err := seminaive.Eval(r.Program, edb, seminaive.Options{})
		if err != nil {
			return err
		}
		check(fmt.Sprintf("Theorem 4 seed %d", seed), seq["anc"].Equal(rm["anc"]))

		// Theorem 5: the general scheme's union program on the non-linear
		// ancestor.
		nl := parser.MustParse(nonlinearSrc)
		h := hashpart.ModHash{N: 3}
		g, err := rewrite.General(nl, rewrite.GeneralSpec{
			Procs: hashpart.RangeProcs(3),
			Rules: []rewrite.RuleSpec{{Seq: []string{"Y"}, H: h}, {Seq: []string{"Z"}, H: h}},
		})
		if err != nil {
			return err
		}
		gm, _, err := seminaive.Eval(g.Program, edb, seminaive.Options{})
		if err != nil {
			return err
		}
		check(fmt.Sprintf("Theorem 5 seed %d", seed), seq["anc"].Equal(gm["anc"]))
	}
	fmt.Printf("least-model equalities verified: %d/%d (Theorems 1, 4, 5 on the declarative\n", pass, total)
	fmt.Println("rewritten programs, evaluated by the sequential engine)")
	if pass != total {
		return fmt.Errorf("%d theorem checks failed", total-pass)
	}
	return nil
}

// --- E14 (extension): load balancing under skew ---

// runE14 studies load balance — the concern Section 8 defers to future work.
// The framework only requires the discriminating function to be a function,
// so a data-informed h is admissible and every theorem stays intact. Two
// regimes:
//
//   - brooms: nearly all join work concentrates on a handful of hub values;
//     a plain hash bins those few heavy values randomly (collisions), while
//     an LPT-weighted table spreads them almost perfectly. Here the weights
//     are even statically visible (a hub's out-degree).
//   - zipf: work is spread over many values; plain hashing already averages
//     out and a weighted table has little headroom.
func runE14(quick bool) error {
	const N = 4
	brooms := 10
	base, step := 30, 25
	zn, ze := 150, 600
	if quick {
		brooms, base, step = 8, 15, 10
		zn, ze = 80, 280
	}

	type variant struct {
		name    string
		weights func(par, anc *relation.Relation) map[ast.Value]int
	}
	variants := []variant{
		{"mod-hash", nil},
		{"balanced (outdeg wts)", func(par, _ *relation.Relation) map[ast.Value]int {
			return workload.ColumnWeights(par, 0)
		}},
	}

	for _, wl := range []struct {
		name string
		par  *relation.Relation
	}{
		{fmt.Sprintf("brooms(%d)", brooms), workload.Brooms(brooms, base, step)},
		{fmt.Sprintf("zipf(%d,%d)", zn, ze), workload.ZipfGraph(zn, ze, 2.2, 17)},
	} {
		edb := relation.Store{"par": wl.par}
		seq, seqStats, err := seminaive.Eval(workload.AncestorProgram(), edb, seminaive.Options{})
		if err != nil {
			return err
		}
		fmt.Printf("%s: |anc| = %d, sequential firings = %d, N = %d\n",
			wl.name, seq["anc"].Len(), seqStats.Firings, N)
		fmt.Printf("  %-22s %12s %12s %9s\n", "h", "total-work", "max-work", "balance")
		for _, v := range variants {
			var h hashpart.Func = hashpart.ModHash{N: N}
			if v.weights != nil {
				h = hashpart.BalancedTable(v.weights(wl.par, seq["anc"]),
					hashpart.RangeProcs(N), hashpart.ModHash{N: N})
			}
			s, err := analysis.ExtractSirup(workload.AncestorProgram())
			if err != nil {
				return err
			}
			p, err := parallel.BuildQ(s, rewrite.SirupSpec{
				Procs: hashpart.RangeProcs(N),
				VR:    []string{"Z"}, VE: []string{"X"},
				H: h,
			})
			if err != nil {
				return err
			}
			res, err := parallel.Run(p, edb, parallel.RunConfig{})
			if err != nil {
				return err
			}
			if !seq["anc"].Equal(res.Output["anc"]) {
				return fmt.Errorf("%s/%s: wrong result", wl.name, v.name)
			}
			var total, max int64
			for _, ps := range res.Stats.Procs {
				work := ps.Firings + ps.TuplesReceived
				total += work
				if work > max {
					max = work
				}
			}
			fmt.Printf("  %-22s %12d %12d %8.2f\n", v.name, total, max,
				float64(total)/(float64(N)*float64(max)))
		}
	}
	fmt.Println("shape check: on brooms the weighted table lifts balance sharply — the few")
	fmt.Println("heavy join values collide under a plain hash. On the diffuse zipf graph")
	fmt.Println("plain hashing already averages out, and the static out-degree weights")
	fmt.Println("mis-estimate closure work, so the table can even hurt: weighting quality")
	fmt.Println("is the whole game. Both variants are legal hs: identical least models.")
	return nil
}
