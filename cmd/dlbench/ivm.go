package main

// E19 — incremental view maintenance against from-scratch refixpointing.
//
// An ancestor closure over a uniform tree is materialized once into the
// counting/DRed maintenance engine; a stream of single-edge batches — leaf
// attachments and random edge deletions, the small local deltas incremental
// maintenance exists for — is then absorbed incrementally, and after every
// batch the same mutated EDB is refixpointed from scratch. (A dense cyclic
// graph would show the opposite: DRed's overdeletion can do more work than
// refixpointing there, which is exactly why the workload choice is part of
// the experiment's statement.) The comparable unit is
// derived work — rule firings — and the experiment FAILS unless the
// from-scratch runs fire at least 5x more than the maintenance passes in
// total: that factor is incremental maintenance's reason to exist, so it is
// asserted, not just reported. Model equality against the scratch run and
// the engine's own counting audit are checked after every batch. A second,
// uninstrumented replay of the same mutation stream feeds the timing and
// allocation kernels (per batch) written to BENCH_ivm.json for
// cmd/benchguard, which gates allocs/op like it gates E17's storage
// kernels.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"

	"parlog/internal/ast"
	"parlog/internal/relation"
	"parlog/internal/seminaive"
	"parlog/internal/workload"
)

// ivmOut is where runE19 writes its JSON document; the -ivm-out flag (and
// the test harness) override it.
var ivmOut = "BENCH_ivm.json"

// ivmDoc is the top-level shape of BENCH_ivm.json.
type ivmDoc struct {
	Benchmark string       `json:"benchmark"`
	Quick     bool         `json:"quick"`
	Kernels   []coreKernel `json:"kernels"`
	// MaintainFirings is the total derived work of all incremental batches;
	// ScratchFirings the total of the from-scratch refixpoints over the same
	// sequence of EDB states. Reduction is their ratio — gated at >= 5x.
	MaintainFirings int64   `json:"maintain_firings"`
	ScratchFirings  int64   `json:"scratch_firings"`
	Reduction       float64 `json:"reduction"`
	Batches         int     `json:"batches"`
	AncTuples       int     `json:"anc_tuples"`
}

// ivmEdge is one par tuple.
type ivmEdge struct{ a, b ast.Value }

// ivmMutation is one batch: a single edge inserted or deleted.
type ivmMutation struct {
	edge ivmEdge
	del  bool
}

func (mu ivmMutation) delta() (del, ins map[string][]relation.Tuple) {
	d := map[string][]relation.Tuple{"par": {{mu.edge.a, mu.edge.b}}}
	if mu.del {
		return d, nil
	}
	return nil, d
}

func runE19(quick bool) error {
	branch, depth, batches := 3, 7, 8
	if quick {
		branch, depth, batches = 3, 5, 4
	}
	prog := workload.AncestorProgram()
	par := workload.Tree(branch, depth)
	rng := rand.New(rand.NewSource(17))

	doc := ivmDoc{Benchmark: "ivm", Quick: quick, Batches: 2 * batches}

	// Precompute the mutation stream over a mirror of the base relation, so
	// the instrumented pass and the timing replay see identical deltas:
	// `batches` fresh-edge inserts, then `batches` deletes of live edges.
	present := map[ivmEdge]bool{}
	var live []ivmEdge
	for _, t := range par.Rows() {
		e := ivmEdge{t[0], t[1]}
		present[e] = true
		live = append(live, e)
	}
	nextNode := ast.Value(len(live) + 1) // tree node ids are 0..len(edges)
	var muts []ivmMutation
	for i := 0; i < batches; i++ {
		// Attach a fresh leaf under a random existing node.
		e := ivmEdge{live[rng.Intn(len(live))].b, nextNode}
		nextNode++
		present[e] = true
		live = append(live, e)
		muts = append(muts, ivmMutation{edge: e})
	}
	for i := 0; i < batches; i++ {
		j := rng.Intn(len(live))
		e := live[j]
		live[j] = live[len(live)-1]
		live = live[:len(live)-1]
		delete(present, e)
		muts = append(muts, ivmMutation{edge: e, del: true})
	}

	initialEDB := func() relation.Store {
		rel := relation.New(2)
		for _, t := range par.Rows() {
			rel.Insert(t)
		}
		return relation.Store{"par": rel}
	}

	// --- instrumented pass: firings comparison + per-batch correctness ---
	m, _, err := seminaive.NewIVM(prog, initialEDB(), seminaive.Options{})
	if err != nil {
		return err
	}
	state := initialEDB()["par"]
	for i, mu := range muts {
		del, ins := mu.delta()
		st, err := m.Apply(del, ins)
		if err != nil {
			return fmt.Errorf("E19 batch %d: %w", i, err)
		}
		doc.MaintainFirings += st.Firings

		// From-scratch reference over the same EDB state.
		next := relation.New(2)
		for _, t := range state.Rows() {
			if mu.del && t[0] == mu.edge.a && t[1] == mu.edge.b {
				continue
			}
			next.Insert(t)
		}
		if !mu.del {
			next.Insert(relation.Tuple{mu.edge.a, mu.edge.b})
		}
		state = next
		refStore, refStats, err := seminaive.Eval(prog, relation.Store{"par": state.Clone()}, seminaive.Options{})
		if err != nil {
			return err
		}
		doc.ScratchFirings += refStats.Firings
		if !refStore["anc"].Equal(m.Store()["anc"]) {
			return fmt.Errorf("E19 batch %d: maintained anc differs from the from-scratch model", i)
		}
		if err := m.Audit(); err != nil {
			return fmt.Errorf("E19 batch %d: %w", i, err)
		}
	}
	doc.AncTuples = m.Store()["anc"].Len()
	if doc.MaintainFirings > 0 {
		doc.Reduction = round2(float64(doc.ScratchFirings) / float64(doc.MaintainFirings))
	}
	if doc.ScratchFirings < 5*doc.MaintainFirings {
		return fmt.Errorf("E19: maintenance fired %d vs %d from scratch — less than the required 5x reduction",
			doc.MaintainFirings, doc.ScratchFirings)
	}

	// --- timing replay: same mutations, no instrumentation interleaved ---
	var m2 *seminaive.IVM
	openKernel := coreMeasure("ivm-open", 1, func() {
		m2, _, err = seminaive.NewIVM(prog, initialEDB(), seminaive.Options{})
	})
	if err != nil {
		return err
	}
	doc.Kernels = append(doc.Kernels, openKernel)
	var applyErr error
	replay := func(from, to int) func() {
		return func() {
			for _, mu := range muts[from:to] {
				del, ins := mu.delta()
				if _, err := m2.Apply(del, ins); err != nil && applyErr == nil {
					applyErr = err
				}
			}
		}
	}
	insKernel := coreMeasure("ivm-apply-insert", int64(batches), replay(0, batches))
	delKernel := coreMeasure("ivm-apply-delete", int64(batches), replay(batches, 2*batches))
	if applyErr != nil {
		return applyErr
	}
	var snapStore relation.Store
	snapKernel := coreMeasure("ivm-snapshot", 1, func() {
		snapStore = m2.SnapshotStore()
	})
	if got := snapStore["anc"].Len(); got != doc.AncTuples {
		return fmt.Errorf("E19: replay ended with %d anc tuples, instrumented pass had %d", got, doc.AncTuples)
	}
	scratchKernel := coreMeasure("scratch-refixpoint", 1, func() {
		_, _, err = seminaive.Eval(prog, relation.Store{"par": state}, seminaive.Options{})
	})
	if err != nil {
		return err
	}
	doc.Kernels = append(doc.Kernels, insKernel, delKernel, snapKernel, scratchKernel)

	for _, kr := range doc.Kernels {
		fmt.Printf("%-20s ops=%-8d %12.1f ns/op %12.1f B/op %8.2f allocs/op\n",
			kr.Name, kr.Ops, kr.NsPerOp, kr.BPerOp, kr.AllocsPerOp)
	}
	fmt.Printf("firings: %d maintained vs %d from scratch (%.1fx reduction) over %d batches, %d anc tuples\n",
		doc.MaintainFirings, doc.ScratchFirings, doc.Reduction, doc.Batches, doc.AncTuples)

	f, err := os.Create(ivmOut)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", ivmOut)
	return nil
}
