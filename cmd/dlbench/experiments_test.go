package main

import "testing"

// TestAllExperimentsQuick runs every experiment at quick size: each one
// internally verifies its own paper claims (figure matches, theorem bounds,
// result equality) and returns an error on any violation, so this is a full
// integration pass over the reproduction.
func TestAllExperimentsQuick(t *testing.T) {
	for _, e := range experiments {
		e := e
		t.Run(e.id, func(t *testing.T) {
			if err := e.run(true); err != nil {
				t.Fatalf("%s (%s): %v", e.id, e.title, err)
			}
		})
	}
}

func TestExperimentIDsUniqueAndOrdered(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range experiments {
		if seen[e.id] {
			t.Errorf("duplicate experiment id %s", e.id)
		}
		seen[e.id] = true
		if e.title == "" || e.run == nil {
			t.Errorf("experiment %s incomplete", e.id)
		}
	}
	if len(experiments) != 22 {
		t.Errorf("expected 22 experiments, found %d", len(experiments))
	}
}
