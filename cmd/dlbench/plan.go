package main

// E18 — goal-directed query benchmark: demand rewriting and the greedy
// planner.
//
// Two measurements into BENCH_plan.json. First, goal-directed reachability:
// anc(src, X) on a random digraph, answered once from a full materialization
// and once through the magic-sets (demand) rewrite — the experiment fails
// unless demand derives at least 2x fewer tuples while returning the same
// answers, so the rewrite's point (evaluate only what the goal can reach)
// is asserted, not just reported. The ancestor program here is the
// left-linear variant: under a bf goal its magic set stays {src}, which is
// the shape demand rewriting rewards. Second, the greedy planner against
// the left-to-right ablation on Example 3's right-linear ancestor — firing
// counts must match exactly (join order never changes the derived set), and
// the timing/allocation kernels feed cmd/benchguard, which gates allocs/op
// on the query kernels like it gates E17's storage kernels.

import (
	"encoding/json"
	"fmt"
	"os"

	"parlog/internal/ast"
	"parlog/internal/parser"
	"parlog/internal/relation"
	"parlog/internal/rewrite"
	"parlog/internal/seminaive"
	"parlog/internal/workload"
)

// planOut is where runE18 writes its JSON document; the -plan-out flag (and
// the test harness) override it.
var planOut = "BENCH_plan.json"

// planDoc is the top-level shape of BENCH_plan.json.
type planDoc struct {
	Benchmark string       `json:"benchmark"`
	Quick     bool         `json:"quick"`
	Kernels   []coreKernel `json:"kernels"`
	// DemandOnDerived / DemandOffDerived are the new-tuple counts of the
	// two reachability runs; Reduction is their ratio.
	DemandOnDerived  int64   `json:"demand_on_derived"`
	DemandOffDerived int64   `json:"demand_off_derived"`
	Reduction        float64 `json:"reduction"`
	Answers          int     `json:"answers"`
}

// leftLinearAncestor keeps the magic set at the goal constant: the
// recursive call inherits anc's first argument unchanged.
const leftLinearAncestor = `
anc(X, Y) :- par(X, Y).
anc(X, Y) :- anc(X, Z), par(Z, Y).
`

// planAnswers collects the tuples of rel matching the goal's bound first
// argument.
func planAnswers(rel *relation.Relation, src ast.Value) map[string]bool {
	out := map[string]bool{}
	if rel == nil {
		return out
	}
	for _, tup := range rel.Rows() {
		if tup[0] == src {
			out[tup.Key()] = true
		}
	}
	return out
}

func runE18(quick bool) error {
	nodes, edges := 120, 480
	if quick {
		nodes, edges = 40, 160
	}
	par := workload.RandomGraph(nodes, edges, 7)
	src := ast.Value(0)

	doc := planDoc{Benchmark: "query-planner", Quick: quick}

	// --- demand OFF: full materialization, post-hoc filter ---
	prog, err := parser.Parse(leftLinearAncestor)
	if err != nil {
		return err
	}
	var offStore relation.Store
	var offStats *seminaive.Stats
	offKernel := coreMeasure("query-demand-off", 1, func() {
		offStore, offStats, err = seminaive.Eval(prog, relation.Store{"par": par}, seminaive.Options{})
	})
	if err != nil {
		return err
	}
	want := planAnswers(offStore["anc"], src)

	// --- demand ON: magic-sets rewrite, goal-directed fixpoint ---
	goal := ast.NewAtom("anc", ast.C(src), ast.V("X"))
	d, err := rewrite.DemandRewrite(prog, goal)
	if err != nil {
		return err
	}
	if d == nil {
		return fmt.Errorf("E18: demand rewrite did not apply to %s", goal)
	}
	var onStore relation.Store
	var onStats *seminaive.Stats
	onKernel := coreMeasure("query-demand-on", 1, func() {
		seed := relation.New(len(d.SeedTuple))
		seed.Insert(relation.Tuple(d.SeedTuple))
		onStore, onStats, err = seminaive.Eval(d.Program, relation.Store{
			"par": par, d.SeedPred: seed,
		}, seminaive.Options{Planner: seminaive.PlanGreedy})
	})
	if err != nil {
		return err
	}
	got := planAnswers(onStore[d.Goal.Pred], src)
	if len(got) != len(want) {
		return fmt.Errorf("E18: demand answers %d, full answers %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			return fmt.Errorf("E18: demand evaluation missing answer %s", k)
		}
	}
	doc.Answers = len(want)
	doc.DemandOnDerived = onStats.New
	doc.DemandOffDerived = offStats.New
	if onStats.New > 0 {
		doc.Reduction = round2(float64(offStats.New) / float64(onStats.New))
	}
	if 2*doc.DemandOnDerived > doc.DemandOffDerived {
		return fmt.Errorf("E18: demand derived %d tuples vs %d undirected — less than the required 2x reduction",
			doc.DemandOnDerived, doc.DemandOffDerived)
	}
	// Per-answer cost is the comparable unit: both kernels measured one
	// evaluation, report them per answer tuple.
	for _, k := range []*coreKernel{&offKernel, &onKernel} {
		k.Ops = int64(doc.Answers)
		k.NsPerOp = round2(k.NsPerOp / float64(doc.Answers))
		k.BPerOp = round2(k.BPerOp / float64(doc.Answers))
		k.AllocsPerOp = round2(k.AllocsPerOp / float64(doc.Answers))
	}
	doc.Kernels = append(doc.Kernels, offKernel, onKernel)

	// --- greedy vs left-to-right on Example 3's ancestor ---
	ex3 := workload.AncestorProgram()
	edb := relation.Store{"par": workload.RandomGraph(nodes, edges, 11)}
	firings := map[seminaive.PlanMode]int64{}
	for _, mode := range []struct {
		name string
		mode seminaive.PlanMode
	}{
		{"ex3-greedy", seminaive.PlanGreedy},
		{"ex3-ltr", seminaive.PlanLeftToRight},
	} {
		var stats *seminaive.Stats
		k := coreMeasure(mode.name, 1, func() {
			_, stats, err = seminaive.Eval(ex3, edb, seminaive.Options{Planner: mode.mode})
		})
		if err != nil {
			return err
		}
		firings[mode.mode] = stats.Firings
		k.Ops = stats.Firings
		k.NsPerOp = round2(k.NsPerOp / float64(stats.Firings))
		k.BPerOp = round2(k.BPerOp / float64(stats.Firings))
		k.AllocsPerOp = round2(k.AllocsPerOp / float64(stats.Firings))
		doc.Kernels = append(doc.Kernels, k)
	}
	if firings[seminaive.PlanGreedy] != firings[seminaive.PlanLeftToRight] {
		return fmt.Errorf("E18: greedy fired %d, left-to-right %d — join order changed the derived set",
			firings[seminaive.PlanGreedy], firings[seminaive.PlanLeftToRight])
	}

	for _, kr := range doc.Kernels {
		fmt.Printf("%-16s ops=%-8d %10.1f ns/op %10.1f B/op %8.2f allocs/op\n",
			kr.Name, kr.Ops, kr.NsPerOp, kr.BPerOp, kr.AllocsPerOp)
	}
	fmt.Printf("demand: %d derived vs %d undirected (%.1fx reduction), %d answers\n",
		doc.DemandOnDerived, doc.DemandOffDerived, doc.Reduction, doc.Answers)

	f, err := os.Create(planOut)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", planOut)
	return nil
}
