package main

// E15 — machine-readable benchmark of the paper's running Examples 1–3.
//
// Where E5 prints the communication/placement/redundancy table for humans,
// E15 runs the same three schemes with the counting sink attached and dumps
// its full metrics snapshot — per-iteration delta sizes, per-channel tuple
// counts and per-worker busy/idle totals — as BENCH_parallel.json, so the
// numbers can be diffed and plotted across commits.

import (
	"encoding/json"
	"fmt"
	"os"

	"parlog/internal/analysis"
	"parlog/internal/hashpart"
	"parlog/internal/obs"
	"parlog/internal/parallel"
	"parlog/internal/relation"
	"parlog/internal/rewrite"
	"parlog/internal/workload"
)

// benchOut is where runE15 writes its JSON document; the -bench-out flag
// (and the test harness) override it.
var benchOut = "BENCH_parallel.json"

// benchDoc is the top-level shape of BENCH_parallel.json.
type benchDoc struct {
	Benchmark string         `json:"benchmark"`
	Workers   int            `json:"workers"`
	Workload  benchWorkload  `json:"workload"`
	Examples  []benchExample `json:"examples"`
}

type benchWorkload struct {
	Kind  string `json:"kind"`
	Nodes int    `json:"nodes"`
	Edges int    `json:"edges"`
	Seed  int    `json:"seed"`
}

type benchExample struct {
	Example string       `json:"example"`
	VR      []string     `json:"vr"`
	VE      []string     `json:"ve"`
	Anc     int          `json:"anc_tuples"`
	Metrics *obs.Metrics `json:"metrics"`
}

func runE15(quick bool) error {
	nodes, edges, n := 120, 480, 4
	if quick {
		nodes, edges = 40, 160
	}
	par := workload.RandomGraph(nodes, edges, 7)
	edb := relation.Store{"par": par}
	s, err := analysis.ExtractSirup(workload.AncestorProgram())
	if err != nil {
		return err
	}
	h := hashpart.ModHash{N: n}

	frags := map[int]*relation.Relation{}
	for i := 0; i < n; i++ {
		frags[i] = relation.New(2)
	}
	for k, t := range par.Rows() {
		frags[k%n].Insert(t)
	}
	hfrag, err := hashpart.NewFragmentation(frags, h)
	if err != nil {
		return err
	}

	doc := benchDoc{
		Benchmark: "parallel-examples",
		Workers:   n,
		Workload:  benchWorkload{Kind: "random", Nodes: nodes, Edges: edges, Seed: 7},
	}
	schemes := []struct {
		name   string
		vr, ve []string
		h      hashpart.Func
	}{
		{"ex1", []string{"Y"}, []string{"Y"}, h},
		{"ex2", []string{"X", "Z"}, []string{"X", "Y"}, hfrag},
		{"ex3", []string{"Z"}, []string{"X"}, h},
	}
	for _, sc := range schemes {
		p, err := parallel.BuildQ(s, rewrite.SirupSpec{
			Procs: hashpart.RangeProcs(n), VR: sc.vr, VE: sc.ve, H: sc.h,
		})
		if err != nil {
			return err
		}
		c := obs.NewCounting()
		res, err := parallel.Run(p, edb, parallel.RunConfig{Sink: c})
		if err != nil {
			return err
		}
		m := c.Snapshot()
		doc.Examples = append(doc.Examples, benchExample{
			Example: sc.name, VR: sc.vr, VE: sc.ve,
			Anc: res.Output["anc"].Len(), Metrics: m,
		})
		var sent int64
		for _, e := range m.Edges {
			sent += e.Tuples
		}
		fmt.Printf("%-4s N=%d anc=%d iters(p0)=%d tuples-sent=%d\n",
			sc.name, n, res.Output["anc"].Len(), len(m.Procs[0].Iterations), sent)
	}

	f, err := os.Create(benchOut)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", benchOut)
	return nil
}
