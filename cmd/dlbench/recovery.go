package main

// E16 — bounded recovery under a mid-run worker kill.
//
// Three runs of Example 3's scheme on the same random ancestor workload:
// an undisturbed baseline, a kill with log-only recovery (full replay), and
// a kill with checkpointing enabled (install snapshot + replay suffix). All
// three must agree on the least model; the document records how many batches
// each recovery replayed and how many the checkpoint cut off, plus wall
// times, so the replay-bound claim can be tracked across commits as
// BENCH_recovery.json.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"parlog/internal/analysis"
	"parlog/internal/dist"
	"parlog/internal/dist/fault"
	"parlog/internal/hashpart"
	"parlog/internal/parallel"
	"parlog/internal/parser"
	"parlog/internal/relation"
	"parlog/internal/rewrite"
)

// recoveryOut is where runE16 writes its JSON document; the -recovery-out
// flag (and the test harness) override it.
var recoveryOut = "BENCH_recovery.json"

type recoveryDoc struct {
	Benchmark string        `json:"benchmark"`
	Workers   int           `json:"workers"`
	Workload  benchWorkload `json:"workload"`
	Runs      []recoveryRun `json:"runs"`
}

type recoveryRun struct {
	Mode             string `json:"mode"` // undisturbed | log-replay | bounded
	WallNs           int64  `json:"wall_ns"`
	Anc              int    `json:"anc_tuples"`
	Deaths           []int  `json:"deaths,omitempty"`
	Checkpoints      int    `json:"checkpoints,omitempty"`
	TruncatedBatches int64  `json:"truncated_batches,omitempty"`
	Replayed         int    `json:"replayed_batches,omitempty"`
	Truncated        int    `json:"truncated_at_recovery,omitempty"`
}

func runE16(quick bool) error {
	// The seeded schedules below are tuned to this workload: worker 1's
	// connection dies mid-run, after the join handshake but before its data
	// batches dry up (and, for the bounded run, after at least two
	// checkpoint cycles for its bucket have completed).
	const n, nodes, edges, seed = 3, 40, 120, 5
	src := recoverySrc(nodes, edges, seed)
	trials := 5
	if quick {
		trials = 1
	}

	doc := recoveryDoc{
		Benchmark: "bounded-recovery",
		Workers:   n,
		Workload:  benchWorkload{Kind: "random", Nodes: nodes, Edges: edges, Seed: seed},
	}
	modes := []struct {
		name       string
		ckptEvery  int
		kill       bool
		killWrites int
	}{
		{"undisturbed", 0, false, 0},
		{"log-replay", 0, true, 25},
		{"bounded", 2, true, 45},
	}
	anc := -1
	for _, mode := range modes {
		for trial := 0; trial < trials; trial++ {
			p, err := buildRecoveryScheme(src, n)
			if err != nil {
				return err
			}
			cfg := dist.Config{CheckpointEvery: mode.ckptEvery}
			if mode.kill {
				in := fault.New(fault.Schedule{Seed: seed, KillConn: 1, KillAfterWrites: mode.killWrites})
				cfg.WorkerDial = func(wi int) dist.DialFunc {
					if wi == 1 {
						return in.Dial
					}
					return nil
				}
			}
			res, err := dist.Run(p, relation.Store{}, cfg)
			if err != nil {
				return err
			}
			got := res.Output["anc"].Len()
			if anc < 0 {
				anc = got
			} else if got != anc {
				return fmt.Errorf("%s: anc=%d, other runs got %d", mode.name, got, anc)
			}
			if mode.kill && len(res.Recoveries) != 1 {
				return fmt.Errorf("%s: expected exactly one recovery, got %d", mode.name, len(res.Recoveries))
			}
			run := recoveryRun{
				Mode:             mode.name,
				WallNs:           res.Wall.Nanoseconds(),
				Anc:              got,
				Deaths:           res.Deaths,
				Checkpoints:      res.Checkpoints,
				TruncatedBatches: res.TruncatedBatches,
			}
			for _, rec := range res.Recoveries {
				run.Replayed += rec.Replayed
				run.Truncated += rec.Truncated
			}
			doc.Runs = append(doc.Runs, run)
			fmt.Printf("%-12s wall=%-12v anc=%d replayed=%d truncated=%d checkpoints=%d\n",
				mode.name, res.Wall, got, run.Replayed, run.Truncated, res.Checkpoints)
		}
	}

	f, err := os.Create(recoveryOut)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", recoveryOut)
	return nil
}

// recoverySrc builds the ancestor program over a seeded random edge set —
// the same generator the distributed test suite uses, so the tuned kill
// schedules transfer.
func recoverySrc(nodes, edges int, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	b.WriteString("anc(X, Y) :- par(X, Y).\nanc(X, Y) :- par(X, Z), anc(Z, Y).\n")
	seen := map[[2]int]bool{}
	for len(seen) < edges {
		e := [2]int{rng.Intn(nodes), rng.Intn(nodes)}
		if seen[e] {
			continue
		}
		seen[e] = true
		fmt.Fprintf(&b, "par(v%d, v%d).\n", e[0], e[1])
	}
	return b.String()
}

func buildRecoveryScheme(src string, n int) (*parallel.Program, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	s, err := analysis.ExtractSirup(prog)
	if err != nil {
		return nil, err
	}
	return parallel.BuildQ(s, rewrite.SirupSpec{
		Procs: hashpart.RangeProcs(n),
		VR:    []string{"Z"}, VE: []string{"X"},
		H: hashpart.ModHash{N: n},
	})
}
