package main

// E17 — core-kernel microbenchmarks of the tuple-storage hot paths.
//
// Every other experiment measures scheme-level quantities (communication,
// redundancy, placement). E17 measures the storage engine itself: the four
// kernels every evaluation reduces to — insert, membership probe, indexed
// join, semi-naive delta enumeration — plus a 4-worker Example 3 end-to-end
// run, reporting ns/op, B/op and allocs/op into BENCH_core.json. The
// document also carries the recorded numbers of the pre-flat-store engine
// (string-keyed map dedup, per-tuple clones, map[string][]int indexes) as
// the "before" block, so the storage rewrite's effect stays visible across
// commits. CI runs this experiment in -quick mode and gates allocs/op
// regressions with cmd/benchguard.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"parlog/internal/analysis"
	"parlog/internal/ast"
	"parlog/internal/hashpart"
	"parlog/internal/parallel"
	"parlog/internal/relation"
	"parlog/internal/rewrite"
	"parlog/internal/seminaive"
	"parlog/internal/workload"
)

// coreOut is where runE17 writes its JSON document; the -core-out flag (and
// the test harness) override it.
var coreOut = "BENCH_core.json"

// coreKernel is one measured kernel.
type coreKernel struct {
	Name        string  `json:"name"`
	Ops         int64   `json:"ops"`
	NsPerOp     float64 `json:"ns_op"`
	BPerOp      float64 `json:"b_op"`
	AllocsPerOp float64 `json:"allocs_op"`
}

// coreE2E is the end-to-end Example 3 run: op here is one derived tuple, so
// AllocsPerOp is allocations per derived tuple — the headline number of the
// flat-storage rewrite.
type coreE2E struct {
	Name        string  `json:"name"`
	Workers     int     `json:"workers"`
	Anc         int     `json:"anc_tuples"`
	WallNs      int64   `json:"wall_ns"`
	Allocs      int64   `json:"allocs"`
	Bytes       int64   `json:"bytes"`
	AllocsPerOp float64 `json:"allocs_per_tuple"`
}

// coreDoc is the top-level shape of BENCH_core.json.
type coreDoc struct {
	Benchmark string       `json:"benchmark"`
	Quick     bool         `json:"quick"`
	Kernels   []coreKernel `json:"kernels"`
	E2E       coreE2E      `json:"e2e"`
	// Before holds the same kernels measured on the pre-flat-store engine
	// (recorded once, at the commit that introduced the arena layout).
	Before *coreBaseline `json:"before,omitempty"`
}

// coreBaseline is the recorded "before" snapshot.
type coreBaseline struct {
	Note    string       `json:"note"`
	Kernels []coreKernel `json:"kernels"`
	E2E     coreE2E      `json:"e2e"`
}

// coreSeedBaseline records the seed engine's numbers (string-keyed map
// dedup, per-tuple Clone, map[string][]int index buckets), measured with
// this same harness at full (non-quick) sizes immediately before the flat
// arena landed. Populated by the storage-rewrite commit; nil until then.
var coreSeedBaseline = &coreBaseline{
	Note: "seed engine: string-keyed map dedup, per-tuple Clone(), map[string][]int indexes, gob wire batches",
	Kernels: []coreKernel{
		{Name: "insert", Ops: 65536, NsPerOp: 490.5, BPerOp: 245.6, AllocsPerOp: 2.01},
		{Name: "probe", Ops: 131072, NsPerOp: 70.0, BPerOp: 0.0, AllocsPerOp: 0.00},
		{Name: "join", Ops: 65536, NsPerOp: 44.8, BPerOp: 5.0, AllocsPerOp: 0.25},
		{Name: "delta-enumerate", Ops: 979340, NsPerOp: 75.4, BPerOp: 10.4, AllocsPerOp: 0.52},
	},
	E2E: coreE2E{
		Name: "ex3-4workers", Workers: 4, Anc: 13688,
		WallNs: 46900000, Allocs: 266741, Bytes: 22890264, AllocsPerOp: 19.49,
	},
}

// coreMeasure runs f once under the alloc counters. The process is expected
// to be otherwise quiet; dlbench runs experiments sequentially.
func coreMeasure(name string, ops int64, f func()) coreKernel {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	f()
	wall := time.Since(start)
	runtime.ReadMemStats(&m1)
	allocs := int64(m1.Mallocs - m0.Mallocs)
	bytes := int64(m1.TotalAlloc - m0.TotalAlloc)
	k := coreKernel{Name: name, Ops: ops}
	if ops > 0 {
		k.NsPerOp = round2(float64(wall.Nanoseconds()) / float64(ops))
		k.BPerOp = round2(float64(bytes) / float64(ops))
		k.AllocsPerOp = round2(float64(allocs) / float64(ops))
	}
	return k
}

func round2(f float64) float64 { return float64(int64(f*100+0.5)) / 100 }

func runE17(quick bool) error {
	scale := 16
	if quick {
		scale = 12
	}
	n := 1 << scale

	doc := coreDoc{Benchmark: "core-kernels", Quick: quick, Before: coreSeedBaseline}

	// --- insert: n distinct arity-2 tuples into one relation ---
	tuples := make([]relation.Tuple, n)
	for i := range tuples {
		tuples[i] = relation.Tuple{ast.Value(i), ast.Value(i * 7)}
	}
	var insRel *relation.Relation
	doc.Kernels = append(doc.Kernels, coreMeasure("insert", int64(n), func() {
		insRel = relation.New(2)
		for _, t := range tuples {
			insRel.Insert(t)
		}
	}))

	// --- probe: alternating hits and misses against the relation above ---
	misses := make([]relation.Tuple, n)
	for i := range misses {
		misses[i] = relation.Tuple{ast.Value(i), ast.Value(i*7 + 1)}
	}
	hits := 0
	doc.Kernels = append(doc.Kernels, coreMeasure("probe", int64(2*n), func() {
		for i := 0; i < n; i++ {
			if insRel.Contains(tuples[i]) {
				hits++
			}
			if insRel.Contains(misses[i]) {
				hits++
			}
		}
	}))
	if hits != n {
		return fmt.Errorf("probe kernel: %d hits, want %d", hits, n)
	}

	// --- join: q(X,Z) :- e0(X,Y), e1(Y,Z), indexed on the shared column ---
	joinRule := ast.Rule{
		Head: ast.NewAtom("q", ast.V("X"), ast.V("Z")),
		Body: []ast.Atom{
			ast.NewAtom("e0", ast.V("X"), ast.V("Y")),
			ast.NewAtom("e1", ast.V("Y"), ast.V("Z")),
		},
	}
	dom := n / 64 // ~64 tuples per key side: a dense, cache-hostile join
	e0 := relation.New(2)
	e1 := relation.New(2)
	for i := 0; i < n/8; i++ {
		e0.Insert(relation.Tuple{ast.Value(i), ast.Value(i % dom)})
		e1.Insert(relation.Tuple{ast.Value((i * 13) % dom), ast.Value(i)})
	}
	joinStore := relation.Store{"e0": e0, "e1": e1}
	joinPlan := seminaive.Compile(joinRule, nil)
	// Warm the index outside the measurement: the kernel times the probe
	// path, not the one-time build.
	var joinFirings int64
	joinFirings = joinPlan.Enumerate(joinStore, nil, func([]ast.Value) bool { return true })
	k := coreMeasure("join", joinFirings, func() {
		joinFirings = joinPlan.Enumerate(joinStore, nil, func([]ast.Value) bool { return true })
	})
	k.Ops = joinFirings
	doc.Kernels = append(doc.Kernels, k)

	// --- delta enumerate: one semi-naive iteration of the ancestor rule,
	// with the last tenth of anc as the delta ---
	par := workload.RandomGraph(n/128, n/32, 7)
	closure, _, err := seminaive.Eval(workload.AncestorProgram(), relation.Store{"par": par}, seminaive.Options{})
	if err != nil {
		return err
	}
	anc := relation.New(2)
	for i := 0; i < closure["anc"].Len(); i++ {
		anc.Insert(closure["anc"].Row(i))
	}
	deltaRule := ast.Rule{
		Head: ast.NewAtom("anc", ast.V("X"), ast.V("Y")),
		Body: []ast.Atom{
			ast.NewAtom("par", ast.V("X"), ast.V("Z")),
			ast.NewAtom("anc", ast.V("Z"), ast.V("Y")),
		},
	}
	deltaPlans := seminaive.DeltaVariants(deltaRule, []int{1})
	wm := &seminaive.Watermarks{
		Prev: map[string]int{"anc": anc.Len() * 9 / 10},
		Cur:  map[string]int{"anc": anc.Len()},
	}
	deltaStore := relation.Store{"par": par, "anc": anc}
	var deltaFirings int64
	for _, p := range deltaPlans {
		deltaFirings += p.Enumerate(deltaStore, wm, func([]ast.Value) bool { return true })
	}
	reps := int64(10)
	k = coreMeasure("delta-enumerate", deltaFirings*reps, func() {
		for r := int64(0); r < reps; r++ {
			for _, p := range deltaPlans {
				p.Enumerate(deltaStore, wm, func([]ast.Value) bool { return true })
			}
		}
	})
	doc.Kernels = append(doc.Kernels, k)

	// --- end-to-end: Example 3 (v(r)=⟨Z⟩, v(e)=⟨X⟩) on 4 workers ---
	nodes, edges := 120, 480
	if quick {
		nodes, edges = 40, 160
	}
	epar := workload.RandomGraph(nodes, edges, 7)
	edb := relation.Store{"par": epar}
	s, err := analysis.ExtractSirup(workload.AncestorProgram())
	if err != nil {
		return err
	}
	p, err := parallel.BuildQ(s, rewrite.SirupSpec{
		Procs: hashpart.RangeProcs(4),
		VR:    []string{"Z"}, VE: []string{"X"},
		H: hashpart.ModHash{N: 4},
	})
	if err != nil {
		return err
	}
	var res *parallel.Result
	var runErr error
	ek := coreMeasure("ex3-4workers", 1, func() {
		res, runErr = parallel.Run(p, edb, parallel.RunConfig{})
	})
	if runErr != nil {
		return runErr
	}
	ancN := res.Output["anc"].Len()
	doc.E2E = coreE2E{
		Name: "ex3-4workers", Workers: 4, Anc: ancN,
		WallNs: int64(ek.NsPerOp), Allocs: int64(ek.AllocsPerOp), Bytes: int64(ek.BPerOp),
	}
	if ancN > 0 {
		doc.E2E.AllocsPerOp = round2(float64(doc.E2E.Allocs) / float64(ancN))
	}

	for _, kr := range doc.Kernels {
		fmt.Printf("%-16s ops=%-8d %10.1f ns/op %10.1f B/op %8.2f allocs/op\n",
			kr.Name, kr.Ops, kr.NsPerOp, kr.BPerOp, kr.AllocsPerOp)
	}
	fmt.Printf("%-16s anc=%-7d %10.1f ms wall %10d allocs %8.2f allocs/tuple\n",
		doc.E2E.Name, doc.E2E.Anc, float64(doc.E2E.WallNs)/1e6, doc.E2E.Allocs, doc.E2E.AllocsPerOp)

	f, err := os.Create(coreOut)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", coreOut)
	return nil
}
