package main

// E20 — the durable storage tier's two costs: the per-batch WAL tax and
// the restart path.
//
// A materialized ancestor view over a uniform tree absorbs a stream of
// single-edge leaf attachments three times, once per fsync policy
// (always / interval / never), so the document records what each
// durability level charges per acknowledged batch. The always-policy
// state directory is then reused for the restart comparison: a cold
// start (Open over the existing WAL + segment, recovering the exact
// pre-crash epoch) against recomputing the same final model from
// scratch with Eval. Both paths must agree on the model — rendered
// through each program's own interner, since a recovered directory
// replays the original name table while a fresh Eval builds its own —
// and the cold start must land on exactly the epoch the last
// acknowledged batch established. Results go to BENCH_durability.json
// for cmd/benchguard, which gates the apply kernels' allocs/op.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"parlog"
	"parlog/internal/workload"
)

// durOut is where runE20 writes its JSON document; the -durability-out
// flag (and the test harness) override it.
var durOut = "BENCH_durability.json"

// durDoc is the top-level shape of BENCH_durability.json.
type durDoc struct {
	Benchmark string       `json:"benchmark"`
	Quick     bool         `json:"quick"`
	Kernels   []coreKernel `json:"kernels"`
	Batches   int          `json:"batches"`
	AncTuples int          `json:"anc_tuples"`
	// AlwaysOverNever is the fsync tax: ns/op of the always policy over
	// ns/op with flushing off — the price of "acknowledged means durable".
	AlwaysOverNever float64 `json:"fsync_always_over_never"`
}

const durSrc = "anc(X, Y) :- par(X, Y).\nanc(X, Y) :- par(X, Z), anc(Z, Y).\n"

// durCase is one freshly parsed program plus the tree EDB and the
// leaf-attachment batches, all interned under that program. Every Open
// and Eval gets its own case so no run sees another interner's values.
type durCase struct {
	p       *parlog.Program
	edb     parlog.Store
	batches []parlog.Delta
}

func newDurCase(branch, depth, batches int) (*durCase, error) {
	p, err := parlog.Parse(durSrc)
	if err != nil {
		return nil, err
	}
	c := &durCase{p: p, edb: parlog.Store{}}
	par := c.edb.Get("par", 2)
	tree := workload.Tree(branch, depth)
	n := 0
	for _, t := range tree.Rows() {
		par.Insert(parlog.Tuple{c.intern(int(t[0])), c.intern(int(t[1]))})
		if int(t[1]) >= n {
			n = int(t[1]) + 1
		}
	}
	// Each batch hangs one fresh leaf under a rotating existing node —
	// the small local delta the WAL is written for.
	for b := 0; b < batches; b++ {
		d := parlog.NewDelta()
		d.Add("par", parlog.Tuple{c.intern(b % n), c.intern(n + b)})
		c.batches = append(c.batches, *d)
	}
	return c, nil
}

func (c *durCase) intern(node int) parlog.Value {
	return c.p.Intern(fmt.Sprintf("n%d", node))
}

// ancNames renders a store's anc relation through the owning program's
// interner, so models from different interners compare textually.
func ancNames(p *parlog.Program, st parlog.Store) string {
	rel := st["anc"]
	if rel == nil {
		return ""
	}
	rows := make([]string, 0, rel.Len())
	for _, t := range rel.Rows() {
		rows = append(rows, p.ConstName(t[0])+"\x00"+p.ConstName(t[1]))
	}
	sort.Strings(rows)
	return strings.Join(rows, "\n")
}

func runE20(quick bool) error {
	branch, depth, batches := 3, 6, 64
	if quick {
		branch, depth, batches = 3, 4, 16
	}
	ctx := context.Background()
	doc := durDoc{Benchmark: "durability", Quick: quick, Batches: batches}

	policies := []struct {
		name string
		d    parlog.DurabilityOptions
	}{
		{"wal-apply-fsync-always", parlog.DurabilityOptions{Fsync: parlog.FsyncAlways}},
		{"wal-apply-fsync-interval", parlog.DurabilityOptions{Fsync: parlog.FsyncInterval, FsyncEvery: 10 * time.Millisecond}},
		{"wal-apply-fsync-never", parlog.DurabilityOptions{Fsync: parlog.FsyncNever}},
	}
	var alwaysDir, liveModel string
	var liveEpoch uint64
	for _, pol := range policies {
		dir, err := os.MkdirTemp("", "dlbench-e20-*")
		if err != nil {
			return err
		}
		keep := pol.name == "wal-apply-fsync-always"
		if !keep {
			defer os.RemoveAll(dir)
		}
		c, err := newDurCase(branch, depth, batches)
		if err != nil {
			return err
		}
		v, err := parlog.Open(ctx, c.p, c.edb, parlog.EvalOptions{Dir: dir, Durability: pol.d})
		if err != nil {
			return err
		}
		var applyErr error
		k := coreMeasure(pol.name, int64(batches), func() {
			for _, d := range c.batches {
				if _, applyErr = v.Apply(d); applyErr != nil {
					return
				}
			}
		})
		if applyErr != nil {
			return fmt.Errorf("%s: %w", pol.name, applyErr)
		}
		doc.Kernels = append(doc.Kernels, k)
		if keep {
			// Record what the restart must reproduce, then close cleanly
			// so the cold start below reads a compacted segment.
			alwaysDir = dir
			liveEpoch = v.Epoch()
			snap, err := v.Snapshot()
			if err != nil {
				return err
			}
			liveModel = ancNames(c.p, snap.Store())
		}
		if err := v.Close(); err != nil {
			return err
		}
	}
	defer os.RemoveAll(alwaysDir)

	// Cold start: reopen the always-policy directory. The segment's EDB
	// and name table win over the fresh arguments, so the recovered view
	// must land on the pre-shutdown epoch and model.
	cold, err := newDurCase(branch, depth, batches)
	if err != nil {
		return err
	}
	var rv *parlog.View
	var openErr error
	doc.Kernels = append(doc.Kernels, coreMeasure("cold-start-open", 1, func() {
		rv, openErr = parlog.Open(ctx, cold.p, cold.edb, parlog.EvalOptions{Dir: alwaysDir})
	}))
	if openErr != nil {
		return openErr
	}
	if got := rv.DurabilityStats().Epoch; got != liveEpoch {
		return fmt.Errorf("cold start recovered epoch %d, want %d", got, liveEpoch)
	}
	snap, err := rv.Snapshot()
	if err != nil {
		return err
	}
	coldModel := ancNames(cold.p, snap.Store())
	if err := rv.Close(); err != nil {
		return err
	}

	// Recompute: the same final EDB (tree plus every attached leaf),
	// evaluated from scratch — the restart path a durable directory buys
	// its way out of.
	rec, err := newDurCase(branch, depth, batches)
	if err != nil {
		return err
	}
	for _, d := range rec.batches {
		for pred, ts := range d.Insert {
			for _, t := range ts {
				rec.edb.Get(pred, len(t)).Insert(t)
			}
		}
	}
	var res *parlog.Result
	var evalErr error
	doc.Kernels = append(doc.Kernels, coreMeasure("recompute-eval", 1, func() {
		res, evalErr = parlog.Eval(ctx, rec.p, rec.edb, parlog.EvalOptions{})
	}))
	if evalErr != nil {
		return evalErr
	}
	scratchModel := ancNames(rec.p, res.Output)

	if coldModel != liveModel {
		return fmt.Errorf("cold-start model diverges from the pre-shutdown view")
	}
	if coldModel != scratchModel {
		return fmt.Errorf("cold-start model diverges from recomputing the final EDB")
	}
	doc.AncTuples = strings.Count(coldModel, "\n") + 1

	var alwaysNs, neverNs float64
	for _, k := range doc.Kernels {
		switch k.Name {
		case "wal-apply-fsync-always":
			alwaysNs = k.NsPerOp
		case "wal-apply-fsync-never":
			neverNs = k.NsPerOp
		}
	}
	if neverNs > 0 {
		doc.AlwaysOverNever = round2(alwaysNs / neverNs)
	}

	for _, k := range doc.Kernels {
		fmt.Printf("  %-26s %8d ops  %12.2f ns/op  %10.2f B/op  %8.2f allocs/op\n",
			k.Name, k.Ops, k.NsPerOp, k.BPerOp, k.AllocsPerOp)
	}
	fmt.Printf("  epoch %d recovered; anc=%d tuples; fsync always/never = %.2fx\n",
		liveEpoch, doc.AncTuples, doc.AlwaysOverNever)

	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(durOut, append(out, '\n'), 0o644)
}
