package main

// E21 — adaptive load balancing on a skewed workload.
//
// The workload is engineered skew: K disjoint chains whose vertex ids are
// rejection-sampled so every chain hop alternates between hash buckets 0
// and 2 — both of which the static placement (bucket mod workers) puts on
// worker 0. Every derived anc tuple crosses the 0↔2 bucket boundary, so
// the coordinator's per-bucket routed counters see the full load, but the
// two hot buckets serialize on one worker while worker 1 idles. Three
// runs on identical inputs: static partitioning, the skew-triggered
// rebalancer (which must notice the skew and migrate one hot bucket to
// worker 1, roughly doubling effective parallelism), and a rebalanced run
// whose migration target is killed mid-flight (the migration must compose
// with death recovery). All three must agree on the least model and the
// Definition-4 firing totals.
//
// The gated metric is the critical path: the maximum per-worker busy
// (evaluation) time, which is what a run's wall clock converges to on the
// paper's assumed one-processor-per-worker hardware. Raw wall time is
// recorded alongside but never gated — as E9's speedup experiment notes,
// on a time-sliced host with fewer cores than workers (CI boxes included)
// wall time cannot drop no matter how well load is spread, while the
// critical path halves exactly when the migration splits the two hot
// buckets across workers. The document self-gates on a ≥1.5× critical-path
// improvement of rebalancing over static and records the runs
// kernel-shaped so benchguard can track them as BENCH_rebalance.json.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"parlog/internal/analysis"
	"parlog/internal/ast"
	"parlog/internal/dist"
	"parlog/internal/dist/fault"
	"parlog/internal/hashpart"
	"parlog/internal/parallel"
	"parlog/internal/relation"
	"parlog/internal/rewrite"
	"parlog/internal/workload"
)

// rebalanceOut is where runE21 writes its JSON document; the
// -rebalance-out flag (and the test harness) override it.
var rebalanceOut = "BENCH_rebalance.json"

type rebalanceDoc struct {
	Benchmark string         `json:"benchmark"`
	Workers   int            `json:"workers"`
	Buckets   int            `json:"buckets"`
	Quick     bool           `json:"quick"`
	Workload  benchWorkload  `json:"workload"`
	Runs      []rebalanceRun `json:"runs"`
	// Speedup is the critical-path improvement: static max-per-worker
	// busy time over rebalanced max-per-worker busy time (medians over
	// trials) — the number the ≥1.5 gate tests. As with E9, this is what
	// wall clock converges to on the paper's assumed one-processor-per-
	// worker hardware; on a time-sliced single-core host raw wall cannot
	// drop no matter how well load is spread, so the gate uses the
	// machine-independent quantity and reports raw wall alongside.
	Speedup float64 `json:"speedup"`
	// WallSpeedup is the raw wall-clock ratio (static / rebalanced) —
	// meaningful on hosts with at least one core per worker.
	WallSpeedup float64 `json:"wall_speedup"`
	NumCPU      int     `json:"num_cpu"`
	// Kernels duplicates the per-mode critical-path times in the shape
	// benchguard reads, one synthetic kernel per mode with ns_op = median
	// max-per-worker busy nanoseconds.
	Kernels []coreKernel `json:"kernels"`
}

type rebalanceRun struct {
	Mode       string  `json:"mode"` // static | rebalanced | kill-during-migration
	WallNs     int64   `json:"wall_ns"`
	MaxBusyNs  int64   `json:"max_worker_busy_ns"`
	BusyNs     []int64 `json:"worker_busy_ns"`
	Anc        int     `json:"anc_tuples"`
	Firings    int64   `json:"firings"`
	Migrations int     `json:"migrations,omitempty"`
	Replayed   int     `json:"replayed_batches,omitempty"`
	Rejected   int     `json:"rebalance_rejected,omitempty"`
	Deaths     []int   `json:"deaths,omitempty"`
	Skew       float64 `json:"skew,omitempty"`
}

// skewLadders builds K disjoint "heavy-rung ladders": chains of the given
// length whose vertices are rejection-sampled (deterministic ascending id
// scan) so consecutive hops alternate between buckets 0 and 2 of h — the
// routed skeleton the coordinator's per-bucket counters can see — plus
// `fanin` extra par edges into every chain vertex from fresh leaf ids
// pinned to that vertex's own bucket. Each routed chain tuple arriving at
// a bucket then fires fanin+1 joins, of which only one leaves the bucket:
// the leaf derivations are self-destined, stay worker-local and never
// touch the wire. That ratio makes worker CPU — not the coordinator star —
// the bottleneck, which is precisely the load a bucket migration can halve.
func skewLadders(chains, length, fanin int, h hashpart.ModHash) *relation.Relation {
	r := relation.New(2)
	next := 0
	pick := func(bucket int) ast.Value {
		for {
			v := ast.Value(next)
			next++
			if h.Apply([]ast.Value{v}) == bucket {
				return v
			}
		}
	}
	for c := 0; c < chains; c++ {
		// Half the chains start in bucket 0, half in bucket 2: the two hot
		// buckets then carry independent frontier work at every instant
		// (chain hops of one family overlap the other family's), so the
		// ping-pong never phase-locks into strict alternation.
		phase := (c % 2) * 2
		prev := pick(phase)
		for i := 1; i <= length; i++ {
			b := phase
			if i%2 == 1 {
				b = 2 - phase
			}
			cur := pick(b)
			r.Insert(relation.Tuple{prev, cur})
			for m := 0; m < fanin; m++ {
				r.Insert(relation.Tuple{pick(b), cur})
			}
			prev = cur
		}
	}
	return r
}

func sumFirings(stats []parallel.ProcStats) int64 {
	var n int64
	for _, ps := range stats {
		n += ps.Firings
	}
	return n
}

func runE21(quick bool) error {
	const buckets, workers = 4, 2
	chains, length, fanin, trials := 40, 40, 15, 3
	if quick {
		// Quick mode keeps three trials: one run's speedup swings with
		// where in the (short) run the migration lands, and the median is
		// what the CI gate reads.
		chains, length, fanin, trials = 16, 20, 8, 3
	}
	h := hashpart.ModHash{N: buckets}
	par := skewLadders(chains, length, fanin, h)
	edb := relation.Store{"par": par}
	s, err := analysis.ExtractSirup(workload.AncestorProgram())
	if err != nil {
		return err
	}
	build := func() (*parallel.Program, error) {
		return parallel.BuildQ(s, rewrite.SirupSpec{
			Procs: hashpart.RangeProcs(buckets),
			VR:    []string{"Z"}, VE: []string{"X"},
			H: h,
		})
	}
	rebCfg := dist.RebalanceConfig{
		Enabled:       true,
		SkewThreshold: 1.5,
		Interval:      2 * time.Millisecond,
		Window:        2,
		MinVolume:     64,
		MaxMigrations: 1,
	}

	modes := []struct {
		name string
		reb  bool
		kill bool
	}{
		{"static", false, false},
		{"rebalanced", true, false},
		{"kill-during-migration", true, true},
	}
	if quick {
		// The kill fires after a fixed ordinal of worker-1 writes, and on
		// the shrunken quick input that ordinal can land after quiescence
		// (fatal by design) or never. The full run and the -race chaos
		// test in internal/dist pin the migration+death composition; the
		// CI smoke only needs the skew trigger and the speedup document.
		modes = modes[:2]
	}

	doc := rebalanceDoc{
		Benchmark: "adaptive-rebalance",
		Workers:   workers, Buckets: buckets, Quick: quick,
		Workload: benchWorkload{Kind: "skew-chains", Nodes: chains, Edges: par.Len(), Seed: 0},
	}
	fmt.Printf("host: GOMAXPROCS=%d NumCPU=%d\n", runtime.GOMAXPROCS(0), runtime.NumCPU())
	doc.NumCPU = runtime.NumCPU()
	busyMedian := map[string]int64{}
	wallMedian := map[string]int64{}
	anc, firings := -1, int64(-1)
	for _, mode := range modes {
		var walls, busies []int64
		for trial := 0; trial < trials; trial++ {
			p, err := build()
			if err != nil {
				return err
			}
			cfg := dist.Config{Workers: workers}
			if mode.reb {
				cfg.Rebalance = rebCfg
			}
			if mode.kill {
				// Worker 1 — the migration's target under the deterministic
				// least-loaded tie-break — dies while the adopted bucket's
				// replay is still streaming at it.
				in := fault.New(fault.Schedule{Seed: 21, KillConn: 1, KillAfterWrites: 40})
				cfg.WorkerDial = func(wi int) dist.DialFunc {
					if wi == 1 {
						return in.Dial
					}
					return nil
				}
			}
			res, err := dist.Run(p, edb, cfg)
			if err != nil {
				return fmt.Errorf("%s: %w", mode.name, err)
			}

			// Model and firing-count equality across every mode and trial.
			gotAnc, gotF := res.Output["anc"].Len(), sumFirings(res.Stats)
			if anc < 0 {
				anc, firings = gotAnc, gotF
			} else if gotAnc != anc || gotF != firings {
				return fmt.Errorf("%s: anc=%d firings=%d, other runs got anc=%d firings=%d",
					mode.name, gotAnc, gotF, anc, firings)
			}
			if mode.reb && !mode.kill && len(res.Migrations) == 0 {
				return fmt.Errorf("%s: the skew trigger never migrated a bucket", mode.name)
			}
			if mode.kill && len(res.Deaths) != 1 {
				return fmt.Errorf("%s: Deaths=%v, want exactly one", mode.name, res.Deaths)
			}

			var maxBusy int64
			for _, b := range res.WorkerBusy {
				if b > maxBusy {
					maxBusy = b
				}
			}
			run := rebalanceRun{
				Mode: mode.name, WallNs: res.Wall.Nanoseconds(),
				MaxBusyNs: maxBusy, BusyNs: res.WorkerBusy,
				Anc: gotAnc, Firings: gotF,
				Migrations: len(res.Migrations), Rejected: res.RebalanceRejected,
				Deaths: res.Deaths,
			}
			for _, m := range res.Migrations {
				run.Replayed += m.Replayed
				run.Skew = m.Skew
			}
			doc.Runs = append(doc.Runs, run)
			walls = append(walls, res.Wall.Nanoseconds())
			busies = append(busies, maxBusy)
			fmt.Printf("%-22s max-busy=%-10v wall=%-10v anc=%d firings=%d migrations=%d replayed=%d deaths=%v\n",
				mode.name, time.Duration(maxBusy), res.Wall, gotAnc, gotF, len(res.Migrations), run.Replayed, res.Deaths)
		}
		busyMedian[mode.name] = median64(busies)
		wallMedian[mode.name] = median64(walls)
		doc.Kernels = append(doc.Kernels, coreKernel{
			Name: "e21/" + mode.name, Ops: 1, NsPerOp: float64(busyMedian[mode.name]),
		})
	}

	doc.Speedup = float64(busyMedian["static"]) / float64(busyMedian["rebalanced"])
	doc.WallSpeedup = float64(wallMedian["static"]) / float64(wallMedian["rebalanced"])
	fmt.Printf("critical-path speedup (static / rebalanced max-worker-busy) = %.2fx  (raw wall ratio %.2fx)\n",
		doc.Speedup, doc.WallSpeedup)

	f, err := os.Create(rebalanceOut)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", rebalanceOut)

	// The experiment's own gate: adaptive rebalancing must beat static
	// partitioning by ≥1.5× on the critical path (max per-worker busy
	// time). Quick mode (CI smoke on a shrunken input) still reports the
	// ratio but does not fail on it.
	if !quick && doc.Speedup < 1.5 {
		return fmt.Errorf("rebalancing critical-path speedup %.2fx is below the 1.5x gate", doc.Speedup)
	}
	return nil
}

func median64(xs []int64) int64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]int64(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}
