package main

// E22 — runtime-profiler overhead on the Example 3 end-to-end run.
//
// The profiler's contract is two-sided: with RunConfig.Profile off the
// engines must not pay for it (every counter sits behind a nil check on a
// per-plan pointer), and with it on the analyze pass must stay cheap enough
// to leave enabled in production servers. E22 measures both sides on the
// same 4-worker Example 3 run E17 uses for its end-to-end number:
// interleaved repetitions alternate a profile-off and a profile-on run,
// medians absorb scheduler outliers, and the ratio of the two medians is
// the profiler's measured cost. Each profiled repetition also re-proves
// exactness: the merged profile's firing total must equal the engine's own
// statistics, and the output model must match the unprofiled run's.
//
// In full (non-quick) mode the experiment self-gates the disabled path
// against E17's recorded end-to-end wall time in BENCH_core.json: a
// profile-off run is the same code path E17 measured, so its median may
// not exceed that reference by more than 2%. The gate is skipped (with a
// note) when BENCH_core.json is missing or was produced by a -quick run,
// since those wall times are not comparable. CI gates the written document
// with cmd/benchguard -mode profile instead, using a looser bound — wall
// ratios from one interleaved process are robust, but CI machines still
// jitter more than a dedicated box.

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"parlog/internal/analysis"
	"parlog/internal/hashpart"
	"parlog/internal/parallel"
	"parlog/internal/relation"
	"parlog/internal/rewrite"
	"parlog/internal/workload"
)

// profileOut is where runE22 writes its JSON document; the -profile-out
// flag overrides it.
var profileOut = "BENCH_profile.json"

// profileOverheadGate is the full-mode self-gate: the profile-off median
// may exceed the BENCH_core.json end-to-end reference by at most this
// fraction.
const profileOverheadGate = 0.02

// profileSide is one measured configuration (profile off or on).
type profileSide struct {
	Name         string  `json:"name"`
	Reps         int     `json:"reps"`
	MedianWallNs int64   `json:"median_wall_ns"`
	WallNs       []int64 `json:"wall_ns"`
}

// profileDoc is the top-level shape of BENCH_profile.json.
type profileDoc struct {
	Benchmark string      `json:"benchmark"`
	Quick     bool        `json:"quick"`
	Workers   int         `json:"workers"`
	Anc       int         `json:"anc_tuples"`
	Firings   int64       `json:"firings"`
	Disabled  profileSide `json:"disabled"`
	Profiled  profileSide `json:"profiled"`
	// ProfiledOverDisabled is the cost of turning the profiler on: the
	// ratio of the two medians from the same interleaved process.
	ProfiledOverDisabled float64 `json:"profiled_over_disabled"`
	// DisabledOverCore compares the profile-off median against the
	// end-to-end wall time recorded in BENCH_core.json; zero when the
	// reference was unavailable or not comparable.
	DisabledOverCore float64 `json:"disabled_over_core,omitempty"`
	CoreRef          string  `json:"core_ref,omitempty"`
}

func medianNs(ns []int64) int64 {
	s := append([]int64(nil), ns...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

func runE22(quick bool) error {
	nodes, edges, reps := 120, 480, 9
	if quick {
		nodes, edges, reps = 40, 160, 5
	}
	par := workload.RandomGraph(nodes, edges, 7)
	edb := relation.Store{"par": par}
	s, err := analysis.ExtractSirup(workload.AncestorProgram())
	if err != nil {
		return err
	}
	p, err := parallel.BuildQ(s, rewrite.SirupSpec{
		Procs: hashpart.RangeProcs(4),
		VR:    []string{"Z"}, VE: []string{"X"},
		H: hashpart.ModHash{N: 4},
	})
	if err != nil {
		return err
	}

	run := func(profile bool) (*parallel.Result, int64, error) {
		start := time.Now()
		res, err := parallel.Run(p, edb, parallel.RunConfig{Profile: profile})
		return res, time.Since(start).Nanoseconds(), err
	}

	// One unmeasured warm-up per side settles one-time costs (index builds,
	// runtime pools) before any repetition is timed.
	ref, _, err := run(false)
	if err != nil {
		return err
	}
	if _, _, err := run(true); err != nil {
		return err
	}
	wantAnc := ref.Output["anc"].Len()
	wantFirings := ref.Stats.TotalFirings()

	doc := profileDoc{
		Benchmark: "profile-overhead", Quick: quick, Workers: 4,
		Anc: wantAnc, Firings: wantFirings,
		Disabled: profileSide{Name: "ex3-4workers-off", Reps: reps},
		Profiled: profileSide{Name: "ex3-4workers-on", Reps: reps},
	}

	for r := 0; r < reps; r++ {
		// Alternate which side goes first so slow drift (thermal, GC
		// pacing) cancels instead of biasing one side.
		order := []bool{false, true}
		if r%2 == 1 {
			order = []bool{true, false}
		}
		for _, profile := range order {
			res, wall, err := run(profile)
			if err != nil {
				return err
			}
			if got := res.Output["anc"].Len(); got != wantAnc {
				return fmt.Errorf("rep %d profile=%v: %d anc tuples, want %d", r, profile, got, wantAnc)
			}
			if got := res.Stats.TotalFirings(); got != wantFirings {
				return fmt.Errorf("rep %d profile=%v: %d firings, want %d", r, profile, got, wantFirings)
			}
			if !profile {
				if res.Profile != nil {
					return fmt.Errorf("rep %d: Result.Profile non-nil with profiling off", r)
				}
				doc.Disabled.WallNs = append(doc.Disabled.WallNs, wall)
				continue
			}
			if res.Profile == nil {
				return fmt.Errorf("rep %d: Result.Profile nil with profiling on", r)
			}
			if got := res.Profile.TotalFirings(); got != wantFirings {
				return fmt.Errorf("rep %d: profile sums %d firings, stats say %d", r, got, wantFirings)
			}
			doc.Profiled.WallNs = append(doc.Profiled.WallNs, wall)
		}
	}
	doc.Disabled.MedianWallNs = medianNs(doc.Disabled.WallNs)
	doc.Profiled.MedianWallNs = medianNs(doc.Profiled.WallNs)
	doc.ProfiledOverDisabled = round2(float64(doc.Profiled.MedianWallNs) / float64(doc.Disabled.MedianWallNs))

	fmt.Printf("%-18s reps=%d median %8.2f ms\n", doc.Disabled.Name, reps, float64(doc.Disabled.MedianWallNs)/1e6)
	fmt.Printf("%-18s reps=%d median %8.2f ms\n", doc.Profiled.Name, reps, float64(doc.Profiled.MedianWallNs)/1e6)
	fmt.Printf("profiled/disabled: %.2fx (anc=%d firings=%d)\n", doc.ProfiledOverDisabled, wantAnc, wantFirings)

	// Self-gate the disabled path against E17's recorded end-to-end wall
	// time, when a comparable document is on disk.
	if core, err := loadCoreRef(coreOut); err != nil {
		fmt.Printf("disabled-path gate skipped: %v\n", err)
	} else if core.Quick != quick {
		fmt.Printf("disabled-path gate skipped: %s was a quick=%v run, this is quick=%v\n", coreOut, core.Quick, quick)
	} else if core.E2E.WallNs <= 0 {
		fmt.Printf("disabled-path gate skipped: %s records no end-to-end wall time\n", coreOut)
	} else {
		ratio := float64(doc.Disabled.MedianWallNs) / float64(core.E2E.WallNs)
		doc.DisabledOverCore = round2(ratio)
		doc.CoreRef = coreOut
		fmt.Printf("disabled/core-reference: %.2fx (reference %.2f ms from %s)\n",
			ratio, float64(core.E2E.WallNs)/1e6, coreOut)
		if !quick && ratio > 1+profileOverheadGate {
			return fmt.Errorf("disabled-path median %.2f ms exceeds the %s reference %.2f ms by more than %.0f%%",
				float64(doc.Disabled.MedianWallNs)/1e6, coreOut, float64(core.E2E.WallNs)/1e6, profileOverheadGate*100)
		}
	}

	f, err := os.Create(profileOut)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", profileOut)
	return nil
}

// loadCoreRef reads just the fields of BENCH_core.json the gate needs.
func loadCoreRef(path string) (*coreDoc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d coreDoc
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &d, nil
}
