// Command dlbench regenerates every figure and measurable claim of the
// paper's evaluation (the per-experiment index lives in DESIGN.md and the
// recorded outcomes in EXPERIMENTS.md):
//
//	E1  Figure 1   dataflow graph of p(U,V,W) :- p(V,W,Z), q(U,Z)
//	E2  Figure 2   dataflow graph of the ancestor rule
//	E3  Figure 3   network graph of Example 6
//	E4  Figure 4   network graph of Example 7 (linear system over {0,1})
//	E5  Examples 1–3: communication / placement / redundancy profile
//	E6  Theorems 2 & 6: semi-naive non-redundancy counts
//	E7  Section 6 trade-off: locality sweep
//	E8  Theorem 3: derived communication-free schemes
//	E9  speedup and processor utilization (Section 8 future work)
//	E10 Section 7 general scheme on the non-linear ancestor (Example 8)
//	E11 Section 5 minimality: witness search over random databases
//	E12 Section 5 adaptation: execution on the derived interconnect
//	E13 Theorems 1, 4, 5: least-model equality of the rewritten programs
//	E14 extension: load balancing via weighted discriminating functions
//	E15 Examples 1–3 rerun with the counting sink; per-iteration deltas,
//	    per-channel tuple counts and per-worker busy/idle totals are written
//	    to BENCH_parallel.json (see -bench-out)
//	E16 extension: bounded recovery — a mid-run worker kill recovered from a
//	    checkpoint plus log suffix vs a full log replay; replay counts and
//	    wall times are written to BENCH_recovery.json (see -recovery-out)
//	E17 core kernels: insert/probe/indexed-join/delta-enumerate microbenches
//	    plus a 4-worker Example 3 end-to-end run; ns/op, B/op and allocs/op
//	    are written to BENCH_core.json (see -core-out)
//	E18 query planning: goal-directed reachability with the magic-sets
//	    (demand) rewrite vs full materialization, and the greedy planner vs
//	    the left-to-right ablation; written to BENCH_plan.json (see
//	    -plan-out)
//	E19 incremental maintenance: single-edge insert/delete batches absorbed
//	    by the counting/DRed engine vs from-scratch refixpoints; fails
//	    unless refixpointing does at least 5x the derived work; written to
//	    BENCH_ivm.json (see -ivm-out)
//	E20 durable storage: per-batch WAL apply cost under the always /
//	    interval / never fsync policies, plus cold-start recovery of an
//	    existing state directory vs recomputing the final model from
//	    scratch; written to BENCH_durability.json (see -durability-out)
//	E21 adaptive load balancing: skew-triggered hot-bucket migration on an
//	    engineered-skew chain workload vs static partitioning, plus a
//	    mid-migration worker kill; self-gates on a ≥1.5x critical-path
//	    (max per-worker busy time) improvement and model/firing equality;
//	    written to BENCH_rebalance.json (see -rebalance-out)
//	E22 runtime profiler overhead: interleaved profile-off / profile-on
//	    repetitions of E17's 4-worker Example 3 end-to-end run; medians,
//	    the on/off ratio and (full mode) a ≤2% disabled-path self-gate
//	    against BENCH_core.json are written to BENCH_profile.json (see
//	    -profile-out)
//
// Usage: dlbench [-experiment E5] [-quick] [-bench-out BENCH_parallel.json]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"parlog/internal/metrics"
)

type experiment struct {
	id    string
	title string
	run   func(quick bool) error
}

var experiments = []experiment{
	{"E1", "Figure 1 — dataflow graph of p(U,V,W) :- p(V,W,Z), q(U,Z)", runE1},
	{"E2", "Figure 2 — dataflow graph of the ancestor rule", runE2},
	{"E3", "Figure 3 — network graph of Example 6", runE3},
	{"E4", "Figure 4 — network graph of Example 7", runE4},
	{"E5", "Examples 1–3 — communication, placement, redundancy", runE5},
	{"E6", "Theorems 2 & 6 — semi-naive non-redundancy", runE6},
	{"E7", "Section 6 — redundancy/communication trade-off sweep", runE7},
	{"E8", "Theorem 3 — derived communication-free schemes", runE8},
	{"E9", "Speedup and utilization (Section 8 future work)", runE9},
	{"E10", "Section 7 — general scheme on the non-linear ancestor", runE10},
	{"E11", "Section 5 — network minimality witness search", runE11},
	{"E12", "Section 5 — execution on the derived interconnect", runE12},
	{"E13", "Theorems 1, 4, 5 — least-model equality of rewritten programs", runE13},
	{"E14", "Extension — load balancing via weighted discriminating functions", runE14},
	{"E15", "Examples 1–3 — metrics snapshot to BENCH_parallel.json", runE15},
	{"E16", "Bounded recovery — checkpointed vs full-replay worker kill", runE16},
	{"E17", "Core kernels — insert/probe/join/delta + Example 3 to BENCH_core.json", runE17},
	{"E18", "Query planning — demand rewrite + greedy planner to BENCH_plan.json", runE18},
	{"E19", "Incremental maintenance — counting/DRed deltas vs refixpoint to BENCH_ivm.json", runE19},
	{"E20", "Durable storage — fsync-policy WAL tax + cold start vs recompute to BENCH_durability.json", runE20},
	{"E21", "Adaptive rebalancing — skew-triggered hot-bucket migration to BENCH_rebalance.json", runE21},
	{"E22", "Runtime profiler — profile-on vs profile-off Example 3 to BENCH_profile.json", runE22},
}

func main() {
	var (
		which = flag.String("experiment", "all", "experiment id (E1..E22) or 'all'")
		quick = flag.Bool("quick", false, "smaller workloads for a fast pass")

		metricsAddr = flag.String("metrics-addr", "", "serve a process-level metrics endpoint while experiments run")
		pprofF      = flag.Bool("pprof", false, "mount net/http/pprof on the -metrics-addr server (profile the benchmarks)")
	)
	flag.StringVar(&benchOut, "bench-out", benchOut, "output path of E15's JSON benchmark document")
	flag.StringVar(&recoveryOut, "recovery-out", recoveryOut, "output path of E16's JSON benchmark document")
	flag.StringVar(&coreOut, "core-out", coreOut, "output path of E17's JSON benchmark document")
	flag.StringVar(&planOut, "plan-out", planOut, "output path of E18's JSON benchmark document")
	flag.StringVar(&ivmOut, "ivm-out", ivmOut, "output path of E19's JSON benchmark document")
	flag.StringVar(&durOut, "durability-out", durOut, "output path of E20's JSON benchmark document")
	flag.StringVar(&rebalanceOut, "rebalance-out", rebalanceOut, "output path of E21's JSON benchmark document")
	flag.StringVar(&profileOut, "profile-out", profileOut, "output path of E22's JSON benchmark document")
	flag.Parse()

	if *metricsAddr != "" {
		srv, err := metrics.NewServer(*metricsAddr, metrics.New(), metrics.ServerOptions{Pprof: *pprofF})
		if err != nil {
			fmt.Fprintln(os.Stderr, "dlbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "dlbench: serving metrics on http://%s/metrics\n", srv.Addr())
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			srv.Close(ctx)
		}()
	}

	ids := map[string]bool{}
	for _, e := range strings.Split(*which, ",") {
		ids[strings.ToUpper(strings.TrimSpace(e))] = true
	}
	ran := 0
	for _, e := range experiments {
		if !ids["ALL"] && !ids[e.id] {
			continue
		}
		ran++
		fmt.Printf("== %s: %s ==\n", e.id, e.title)
		if err := e.run(*quick); err != nil {
			fmt.Fprintf(os.Stderr, "dlbench: %s failed: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if ran == 0 {
		known := make([]string, len(experiments))
		for i, e := range experiments {
			known[i] = e.id
		}
		sort.Strings(known)
		fmt.Fprintf(os.Stderr, "dlbench: unknown experiment %q (known: %s, all)\n", *which, strings.Join(known, " "))
		os.Exit(2)
	}
}
