// Command benchguard is the CI gate over the core-kernel benchmark: it
// compares a fresh BENCH_core.json (cmd/dlbench -experiment E17) against
// the checked-in baseline and fails when allocs/op on the guarded kernels
// regresses past the threshold. The comparison is benchstat-style — one
// line per kernel with the relative delta — but the pass/fail contract is
// deliberately narrow: only allocations on the dedup hot paths (insert,
// probe) are load-bearing, because those are the kernels the flat arena
// made allocation-free; time-based metrics are reported but never gate,
// since CI machines are too noisy for wall-clock thresholds.
//
// Near-zero baselines get an absolute slack on top of the relative
// threshold: 20% of 0.00 allocs/op is 0, and failing on a 0.01 jitter
// would make the gate flaky rather than strict.
//
// Two further modes extend the same compare-against-baseline contract to
// the distributed-engine documents:
//
//   - -mode parallel reads E15's BENCH_parallel.json and gates each
//     example's per-worker busy-time skew (max/mean over workers — a
//     ratio, so it survives machine-speed differences) against the
//     baseline, plus a catastrophic-only wall-time bound (-max-wall-factor,
//     default 5x) in the spirit of "time never gates tightly in CI".
//     -bench may list several documents from repeated runs (comma-
//     separated); each example is judged on its median skew and wall
//     time, which absorbs single-run scheduler outliers.
//   - -mode rebalance reads E21's BENCH_rebalance.json and gates the
//     recorded critical-path speedup of rebalancing over static
//     partitioning against -min-speedup; the per-mode kernels are shown
//     against the baseline informationally.
//   - -mode profile reads E22's BENCH_profile.json and gates the
//     profile-on / profile-off wall-time ratio against
//     -max-profile-overhead. The ratio is measured from interleaved
//     repetitions of one process, so it survives machine-speed
//     differences; the CI bound is still looser than E22's own full-mode
//     ≤2% disabled-path self-gate, which runs on a quiet box.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

type kernel struct {
	Name        string  `json:"name"`
	Ops         int64   `json:"ops"`
	NsPerOp     float64 `json:"ns_op"`
	BPerOp      float64 `json:"b_op"`
	AllocsPerOp float64 `json:"allocs_op"`
}

type doc struct {
	Kernels []kernel `json:"kernels"`
}

func load(path string) (map[string]kernel, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d doc
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]kernel, len(d.Kernels))
	for _, k := range d.Kernels {
		out[k.Name] = k
	}
	return out, nil
}

func main() {
	var (
		mode      = flag.String("mode", "kernels", "document kind: kernels (E17/E18/E19/E20), parallel (E15), rebalance (E21), profile (E22)")
		benchPath = flag.String("bench", "BENCH_core.json", "fresh benchmark document (parallel mode: comma-separated repeats, judged on medians)")
		basePath  = flag.String("baseline", "cmd/benchguard/baseline.json", "checked-in baseline document")
		guarded   = flag.String("kernels", "insert,probe", "comma-separated kernels whose allocs/op gate the build")
		maxReg    = flag.Float64("max-regress", 0.20, "relative regression tolerated on guarded quantities")
		slack     = flag.Float64("slack", 0.10, "absolute slack added to the bound (for near-zero baselines)")

		wallFactor = flag.Float64("max-wall-factor", 5, "parallel mode: catastrophic wall-time bound as a multiple of baseline")
		minSpeedup = flag.Float64("min-speedup", 1.5, "rebalance mode: minimum critical-path speedup of rebalanced over static")

		maxOverhead = flag.Float64("max-profile-overhead", 1.25, "profile mode: maximum profile-on / profile-off wall-time ratio")
	)
	flag.Parse()

	switch *mode {
	case "parallel":
		guardParallel(*benchPath, *basePath, *maxReg, *slack, *wallFactor)
		return
	case "rebalance":
		guardRebalance(*benchPath, *basePath, *minSpeedup)
		return
	case "profile":
		guardProfile(*benchPath, *maxOverhead)
		return
	case "kernels":
	default:
		fatal(fmt.Errorf("unknown -mode %q (kernels, parallel, rebalance, profile)", *mode))
	}

	fresh, err := load(*benchPath)
	if err != nil {
		fatal(err)
	}
	base, err := load(*basePath)
	if err != nil {
		fatal(err)
	}

	gate := map[string]bool{}
	var gateOrder []string
	for _, k := range strings.Split(*guarded, ",") {
		if k = strings.TrimSpace(k); k != "" && !gate[k] {
			gate[k] = true
			gateOrder = append(gateOrder, k)
		}
	}

	failed := false
	fmt.Printf("%-16s %14s %14s %10s %s\n", "kernel", "base allocs/op", "new allocs/op", "delta", "verdict")
	for _, name := range gateOrder {
		b, okB := base[name]
		f, okF := fresh[name]
		if !okB || !okF {
			fmt.Printf("%-16s missing from %s\n", name, map[bool]string{true: *benchPath, false: *basePath}[okB])
			failed = true
			continue
		}
		bound := b.AllocsPerOp*(1+*maxReg) + *slack
		verdict := "ok"
		if f.AllocsPerOp > bound {
			verdict = fmt.Sprintf("FAIL (bound %.2f)", bound)
			failed = true
		}
		fmt.Printf("%-16s %14.2f %14.2f %+9.1f%% %s\n",
			name, b.AllocsPerOp, f.AllocsPerOp, delta(b.AllocsPerOp, f.AllocsPerOp), verdict)
	}
	// Informational rows for the rest — visible drift, no gate.
	rest := make([]string, 0, len(fresh))
	for name := range fresh {
		if !gate[name] {
			rest = append(rest, name)
		}
	}
	sort.Strings(rest)
	for _, name := range rest {
		if b, ok := base[name]; ok {
			fmt.Printf("%-16s %14.2f %14.2f %+9.1f%% (informational)\n",
				name, b.AllocsPerOp, fresh[name].AllocsPerOp, delta(b.AllocsPerOp, fresh[name].AllocsPerOp))
		}
	}

	if failed {
		fmt.Fprintln(os.Stderr, "benchguard: allocation regression on a guarded kernel")
		os.Exit(1)
	}
}

// parallelDoc is the slice of E15's BENCH_parallel.json benchguard needs:
// per-example wall time and per-worker busy/idle totals.
type parallelDoc struct {
	Examples []struct {
		Example string `json:"example"`
		Metrics *struct {
			WallNs int64 `json:"wall_ns"`
			Procs  []struct {
				BusyNs int64 `json:"busy_ns"`
				IdleNs int64 `json:"idle_ns"`
			} `json:"procs"`
		} `json:"metrics"`
	} `json:"examples"`
}

type parallelRow struct {
	skew   float64 // max per-worker busy / mean per-worker busy
	wallNs int64
}

func loadParallel(path string) (map[string]parallelRow, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d parallelDoc
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]parallelRow, len(d.Examples))
	for _, ex := range d.Examples {
		if ex.Metrics == nil || len(ex.Metrics.Procs) == 0 {
			continue
		}
		var max, total int64
		for _, p := range ex.Metrics.Procs {
			total += p.BusyNs
			if p.BusyNs > max {
				max = p.BusyNs
			}
		}
		row := parallelRow{wallNs: ex.Metrics.WallNs}
		if total > 0 {
			row.skew = float64(max) * float64(len(ex.Metrics.Procs)) / float64(total)
		}
		out[ex.Example] = row
	}
	return out, nil
}

// loadParallelMedian loads one or more fresh E15 documents (comma-separated
// paths) and reduces them to per-example medians of skew and wall time. A
// single quick run's busy split is at the mercy of the OS scheduler — on a
// loaded host one worker occasionally absorbs a whole quantum and the
// per-run skew doubles — so the gate compares medians: an outlier run is
// discarded for free, while genuine serialization (skew → worker count)
// shifts every run and the median with it.
func loadParallelMedian(paths string) (map[string]parallelRow, error) {
	perExample := map[string][]parallelRow{}
	for _, path := range strings.Split(paths, ",") {
		one, err := loadParallel(strings.TrimSpace(path))
		if err != nil {
			return nil, err
		}
		for name, row := range one {
			perExample[name] = append(perExample[name], row)
		}
	}
	out := make(map[string]parallelRow, len(perExample))
	for name, rows := range perExample {
		skews := make([]float64, len(rows))
		walls := make([]int64, len(rows))
		for i, r := range rows {
			skews[i] = r.skew
			walls[i] = r.wallNs
		}
		sort.Float64s(skews)
		sort.Slice(walls, func(i, j int) bool { return walls[i] < walls[j] })
		out[name] = parallelRow{skew: skews[len(skews)/2], wallNs: walls[len(walls)/2]}
	}
	return out, nil
}

// guardParallel gates E15's per-worker load balance: busy-time skew
// (max/mean across workers) must stay within the relative threshold of the
// baseline — a ratio of same-machine quantities, so it transfers across
// machine speeds where raw nanoseconds would not — and wall time only has
// a catastrophic bound (wallFactor × baseline) to catch hangs and
// accidental serialization without flaking on CI noise. benchPaths may
// name several fresh documents (comma-separated, from repeated runs);
// each example is judged on its median skew and wall time across them.
func guardParallel(benchPaths, basePath string, maxReg, slack, wallFactor float64) {
	fresh, err := loadParallelMedian(benchPaths)
	if err != nil {
		fatal(err)
	}
	base, err := loadParallel(basePath)
	if err != nil {
		fatal(err)
	}
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	fmt.Printf("%-8s %10s %10s %10s %14s %14s %s\n",
		"example", "base skew", "new skew", "bound", "base wall", "new wall", "verdict")
	for _, name := range names {
		b := base[name]
		f, ok := fresh[name]
		if !ok {
			fmt.Printf("%-8s missing from %s\n", name, benchPaths)
			failed = true
			continue
		}
		bound := b.skew*(1+maxReg) + slack
		wallBound := int64(float64(b.wallNs) * wallFactor)
		verdict := "ok"
		if f.skew > bound {
			verdict = fmt.Sprintf("FAIL (skew bound %.2f)", bound)
			failed = true
		}
		if f.wallNs > wallBound {
			verdict = fmt.Sprintf("FAIL (wall bound %dns)", wallBound)
			failed = true
		}
		fmt.Printf("%-8s %10.2f %10.2f %10.2f %14d %14d %s\n",
			name, b.skew, f.skew, bound, b.wallNs, f.wallNs, verdict)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchguard: per-worker balance regression on a parallel example")
		os.Exit(1)
	}
}

// rebalanceGuardDoc is the slice of E21's BENCH_rebalance.json benchguard
// needs: the recorded critical-path speedup plus the per-mode kernels.
type rebalanceGuardDoc struct {
	Speedup     float64  `json:"speedup"`
	WallSpeedup float64  `json:"wall_speedup"`
	Kernels     []kernel `json:"kernels"`
}

func loadRebalance(path string) (rebalanceGuardDoc, error) {
	var d rebalanceGuardDoc
	data, err := os.ReadFile(path)
	if err != nil {
		return d, err
	}
	if err := json.Unmarshal(data, &d); err != nil {
		return d, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}

// guardRebalance gates E21's headline number: the critical-path speedup
// (static max-per-worker busy over rebalanced max-per-worker busy) must
// stay at or above minSpeedup. The speedup is a same-machine ratio, so the
// gate holds on any host; the per-mode busy times are shown against the
// baseline informationally.
func guardRebalance(benchPath, basePath string, minSpeedup float64) {
	fresh, err := loadRebalance(benchPath)
	if err != nil {
		fatal(err)
	}
	base, baseErr := loadRebalance(basePath)

	fmt.Printf("critical-path speedup: %.2fx (wall %.2fx), gate ≥ %.2fx\n",
		fresh.Speedup, fresh.WallSpeedup, minSpeedup)
	if baseErr == nil {
		baseK := make(map[string]kernel, len(base.Kernels))
		for _, k := range base.Kernels {
			baseK[k.Name] = k
		}
		for _, f := range fresh.Kernels {
			if b, ok := baseK[f.Name]; ok {
				fmt.Printf("%-26s %14.0f %14.0f %+9.1f%% (informational, max-busy ns)\n",
					f.Name, b.NsPerOp, f.NsPerOp, delta(b.NsPerOp, f.NsPerOp))
			}
		}
		fmt.Printf("baseline speedup was %.2fx\n", base.Speedup)
	} else {
		fmt.Printf("baseline %s unreadable (%v); gating on the absolute threshold only\n", basePath, baseErr)
	}
	if fresh.Speedup < minSpeedup {
		fmt.Fprintf(os.Stderr, "benchguard: rebalancing critical-path speedup %.2fx is below the %.2fx gate\n",
			fresh.Speedup, minSpeedup)
		os.Exit(1)
	}
}

// profileGuardDoc mirrors the fields of E22's BENCH_profile.json that the
// gate reads.
type profileGuardDoc struct {
	Quick                bool    `json:"quick"`
	Anc                  int     `json:"anc_tuples"`
	Firings              int64   `json:"firings"`
	ProfiledOverDisabled float64 `json:"profiled_over_disabled"`
	DisabledOverCore     float64 `json:"disabled_over_core"`
	Disabled             struct {
		MedianWallNs int64 `json:"median_wall_ns"`
	} `json:"disabled"`
	Profiled struct {
		MedianWallNs int64 `json:"median_wall_ns"`
	} `json:"profiled"`
}

func guardProfile(benchPath string, maxOverhead float64) {
	data, err := os.ReadFile(benchPath)
	if err != nil {
		fatal(err)
	}
	var d profileGuardDoc
	if err := json.Unmarshal(data, &d); err != nil {
		fatal(fmt.Errorf("%s: %w", benchPath, err))
	}
	if d.ProfiledOverDisabled <= 0 {
		fatal(fmt.Errorf("%s records no profiled/disabled ratio", benchPath))
	}
	fmt.Printf("profile off median %8.2f ms, on median %8.2f ms (anc=%d firings=%d)\n",
		float64(d.Disabled.MedianWallNs)/1e6, float64(d.Profiled.MedianWallNs)/1e6, d.Anc, d.Firings)
	fmt.Printf("profiled/disabled: %.2fx, gate ≤ %.2fx\n", d.ProfiledOverDisabled, maxOverhead)
	if d.DisabledOverCore > 0 {
		fmt.Printf("disabled/core-reference: %.2fx (informational; E22 gates this at ≤1.02x in full mode)\n",
			d.DisabledOverCore)
	}
	if d.ProfiledOverDisabled > maxOverhead {
		fmt.Fprintf(os.Stderr, "benchguard: profiling overhead %.2fx exceeds the %.2fx gate\n",
			d.ProfiledOverDisabled, maxOverhead)
		os.Exit(1)
	}
}

func delta(base, fresh float64) float64 {
	if base == 0 {
		if fresh == 0 {
			return 0
		}
		return 100
	}
	return (fresh - base) / base * 100
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}
