// Command benchguard is the CI gate over the core-kernel benchmark: it
// compares a fresh BENCH_core.json (cmd/dlbench -experiment E17) against
// the checked-in baseline and fails when allocs/op on the guarded kernels
// regresses past the threshold. The comparison is benchstat-style — one
// line per kernel with the relative delta — but the pass/fail contract is
// deliberately narrow: only allocations on the dedup hot paths (insert,
// probe) are load-bearing, because those are the kernels the flat arena
// made allocation-free; time-based metrics are reported but never gate,
// since CI machines are too noisy for wall-clock thresholds.
//
// Near-zero baselines get an absolute slack on top of the relative
// threshold: 20% of 0.00 allocs/op is 0, and failing on a 0.01 jitter
// would make the gate flaky rather than strict.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

type kernel struct {
	Name        string  `json:"name"`
	Ops         int64   `json:"ops"`
	NsPerOp     float64 `json:"ns_op"`
	BPerOp      float64 `json:"b_op"`
	AllocsPerOp float64 `json:"allocs_op"`
}

type doc struct {
	Kernels []kernel `json:"kernels"`
}

func load(path string) (map[string]kernel, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d doc
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]kernel, len(d.Kernels))
	for _, k := range d.Kernels {
		out[k.Name] = k
	}
	return out, nil
}

func main() {
	var (
		benchPath = flag.String("bench", "BENCH_core.json", "fresh benchmark document (dlbench -experiment E17)")
		basePath  = flag.String("baseline", "cmd/benchguard/baseline.json", "checked-in baseline document")
		guarded   = flag.String("kernels", "insert,probe", "comma-separated kernels whose allocs/op gate the build")
		maxReg    = flag.Float64("max-regress", 0.20, "relative allocs/op regression tolerated on guarded kernels")
		slack     = flag.Float64("slack", 0.10, "absolute allocs/op slack added to the bound (for near-zero baselines)")
	)
	flag.Parse()

	fresh, err := load(*benchPath)
	if err != nil {
		fatal(err)
	}
	base, err := load(*basePath)
	if err != nil {
		fatal(err)
	}

	gate := map[string]bool{}
	var gateOrder []string
	for _, k := range strings.Split(*guarded, ",") {
		if k = strings.TrimSpace(k); k != "" && !gate[k] {
			gate[k] = true
			gateOrder = append(gateOrder, k)
		}
	}

	failed := false
	fmt.Printf("%-16s %14s %14s %10s %s\n", "kernel", "base allocs/op", "new allocs/op", "delta", "verdict")
	for _, name := range gateOrder {
		b, okB := base[name]
		f, okF := fresh[name]
		if !okB || !okF {
			fmt.Printf("%-16s missing from %s\n", name, map[bool]string{true: *benchPath, false: *basePath}[okB])
			failed = true
			continue
		}
		bound := b.AllocsPerOp*(1+*maxReg) + *slack
		verdict := "ok"
		if f.AllocsPerOp > bound {
			verdict = fmt.Sprintf("FAIL (bound %.2f)", bound)
			failed = true
		}
		fmt.Printf("%-16s %14.2f %14.2f %+9.1f%% %s\n",
			name, b.AllocsPerOp, f.AllocsPerOp, delta(b.AllocsPerOp, f.AllocsPerOp), verdict)
	}
	// Informational rows for the rest — visible drift, no gate.
	rest := make([]string, 0, len(fresh))
	for name := range fresh {
		if !gate[name] {
			rest = append(rest, name)
		}
	}
	sort.Strings(rest)
	for _, name := range rest {
		if b, ok := base[name]; ok {
			fmt.Printf("%-16s %14.2f %14.2f %+9.1f%% (informational)\n",
				name, b.AllocsPerOp, fresh[name].AllocsPerOp, delta(b.AllocsPerOp, fresh[name].AllocsPerOp))
		}
	}

	if failed {
		fmt.Fprintln(os.Stderr, "benchguard: allocation regression on a guarded kernel")
		os.Exit(1)
	}
}

func delta(base, fresh float64) float64 {
	if base == 0 {
		if fresh == 0 {
			return 0
		}
		return 100
	}
	return (fresh - base) / base * 100
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}
