package main

import (
	"context"
	"os"
	"strings"

	"parlog"
	"path/filepath"
	"testing"
)

func TestSplitList(t *testing.T) {
	if got := splitList(""); got != nil {
		t.Errorf("splitList(\"\") = %v, want nil", got)
	}
	got := splitList("Z, Y")
	if len(got) != 2 || got[0] != "Z" || got[1] != "Y" {
		t.Errorf("splitList = %v", got)
	}
}

func TestReadSourcesFiles(t *testing.T) {
	dir := t.TempDir()
	p1 := filepath.Join(dir, "a.dl")
	p2 := filepath.Join(dir, "b.dl")
	if err := os.WriteFile(p1, []byte("p(a)."), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p2, []byte("q(b)."), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := readSources([]string{p1, p2})
	if err != nil {
		t.Fatal(err)
	}
	if src != "p(a).\nq(b).\n" {
		t.Errorf("src = %q", src)
	}
	if _, err := readSources([]string{filepath.Join(dir, "missing.dl")}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestCSVFlags(t *testing.T) {
	var c csvFlags
	if err := c.Set("par=/tmp/x.csv"); err != nil {
		t.Fatal(err)
	}
	if len(c) != 1 || c[0].pred != "par" || c[0].path != "/tmp/x.csv" {
		t.Errorf("csvFlags = %+v", c)
	}
	for _, bad := range []string{"", "par", "=x", "par="} {
		if err := c.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted", bad)
		}
	}
	if c.String() == "" {
		t.Error("String empty")
	}
}

func TestREPL(t *testing.T) {
	prog, err := parlog.Parse(`
anc(X, Y) :- par(X, Y).
anc(X, Y) :- par(X, Z), anc(Z, Y).
par(a, b). par(b, c).
`)
	if err != nil {
		t.Fatal(err)
	}
	in := strings.NewReader("anc(a, X)\nbadquery\nanc(X, X).\n\n")
	var out strings.Builder
	repl(context.Background(), prog, nil, in, &out)
	got := out.String()
	for _, want := range []string{"anc(a, b).", "anc(a, c).", "% 2 answers", "error:", "% 0 answers"} {
		if !strings.Contains(got, want) {
			t.Errorf("REPL output missing %q:\n%s", want, got)
		}
	}
}
