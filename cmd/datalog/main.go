// Command datalog evaluates a Datalog program, sequentially or in parallel,
// and prints the derived relations.
//
// Usage:
//
//	datalog [flags] program.dl [facts.dl ...]
//	cat program.dl | datalog [flags]
//
// Flags:
//
//	-workers N      parallel evaluation on N processors (0 = sequential)
//	-strategy S     auto | hash | nocomm | tradeoff | general
//	-vr V,W         discriminating sequence v(r) for the recursive rule
//	-ve V,W         discriminating sequence v(e) for the exit rule
//	-locality F     locality in [0,1] for -strategy tradeoff
//	-naive          sequential naive iteration instead of semi-naive
//	-pred p,q       print only these predicates (default: all derived)
//	-query 'p(a,X)' evaluate goal-directed: demand (magic-sets) rewrite
//	                the program to the goal, then stream its answers
//	-no-demand      answer -query from a full materialization instead
//	-planner P      join-order planner: boundness (default) | greedy |
//	                left-to-right
//	-explain        print the query plan (join orders, pushdowns, demand
//	                rewrite) to stderr
//	-profile        collect a runtime profile and print the EXPLAIN ANALYZE
//	                section (per-rule firings, per-atom probe/match counts)
//	                to stderr
//	-log-json       emit diagnostic log lines as JSON objects
//	-csv pred=path  load a base relation from a CSV file (repeatable)
//	-i              interactive queries after evaluation
//	-stats          print evaluation statistics to stderr
//	-metrics        print per-processor iteration/traffic/busy metrics
//	-trace FILE     write the run's full event stream as JSON
//	-trace-chrome F write the run as Chrome trace_event JSON (load it in
//	                chrome://tracing or ui.perfetto.dev)
//	-dist           run the parallel evaluation on the distributed TCP
//	                engine (in-process workers over real sockets)
//	-metrics-addr A serve live Prometheus metrics, a JSON snapshot at
//	                /debug/parlog, and (with -pprof) net/http/pprof on A
//	-pprof          mount net/http/pprof on the -metrics-addr server
//	-metrics-hold D keep the metrics endpoint up D after the run ends
//	-audit          run the Section 5 network-conformance audit (hash
//	                strategy with -vr; prints the report to stderr)
//	-show-rewrite   print each processor's rewritten program (the paper's
//	                Q_i / R_i / T_i) instead of evaluating
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"parlog"
	"parlog/internal/logx"
)

// log carries the CLI's diagnostics; main swaps in the JSON handler when
// -log-json is set. Report-style output (relations, stats, explain text,
// the audit) stays on plain stderr/stdout — those are results, not logs.
var log = logx.New(os.Stderr, false)

func main() {
	var (
		workers     = flag.Int("workers", 0, "parallel evaluation on N processors (0 = sequential)")
		strategy    = flag.String("strategy", "auto", "auto | hash | nocomm | tradeoff | general")
		vr          = flag.String("vr", "", "comma-separated discriminating sequence v(r)")
		ve          = flag.String("ve", "", "comma-separated discriminating sequence v(e)")
		locality    = flag.Float64("locality", 0, "locality in [0,1] for -strategy tradeoff")
		naive       = flag.Bool("naive", false, "use naive iteration (sequential only)")
		preds       = flag.String("pred", "", "comma-separated predicates to print (default: all derived)")
		query       = flag.String("query", "", "evaluate goal-directed and print the answers of this atom, e.g. 'anc(a, X)'")
		noDemand    = flag.Bool("no-demand", false, "disable the magic-sets rewrite for -query")
		planner     = flag.String("planner", "boundness", "join-order planner: boundness | greedy | left-to-right")
		explain     = flag.Bool("explain", false, "print the query plan to stderr")
		profileF    = flag.Bool("profile", false, "collect a runtime profile and print the analyze section to stderr")
		logJSON     = flag.Bool("log-json", false, "emit diagnostic log lines as JSON objects")
		stats       = flag.Bool("stats", false, "print evaluation statistics to stderr")
		interact    = flag.Bool("i", false, "after evaluating, read query patterns from stdin")
		showRW      = flag.Bool("show-rewrite", false, "print each processor's rewritten program (Q_i/R_i/T_i) instead of evaluating")
		metrics     = flag.Bool("metrics", false, "print per-processor iteration/traffic/busy metrics to stderr")
		traceOut    = flag.String("trace", "", "write the run's full event stream as JSON to this file")
		chromeOut   = flag.String("trace-chrome", "", "write the run as Chrome trace_event JSON to this file")
		dist        = flag.Bool("dist", false, "use the distributed TCP engine (requires -workers)")
		metricsAddr = flag.String("metrics-addr", "", "serve live metrics on this address (e.g. 127.0.0.1:9090)")
		pprofF      = flag.Bool("pprof", false, "mount net/http/pprof on the -metrics-addr server")
		metricsHold = flag.Duration("metrics-hold", 0, "keep the metrics endpoint alive this long after the run")
		audit       = flag.Bool("audit", false, "audit the observed communication matrix against the derived network graph")
	)
	var csvs csvFlags
	flag.Var(&csvs, "csv", "load a base relation from CSV: pred=path (repeatable)")
	flag.Parse()
	if *logJSON {
		log = logx.New(os.Stderr, true)
	}

	// Interrupts cancel the evaluation and cut a -metrics-hold short, so
	// ^C tears the endpoint down instead of orphaning it.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	src, err := readSources(flag.Args())
	if err != nil {
		fatal(err)
	}
	prog, err := parlog.Parse(src)
	if err != nil {
		fatal(err)
	}
	edb := parlog.Store{}
	for _, cf := range csvs {
		if _, err := prog.LoadCSVFile(edb, cf.pred, cf.path); err != nil {
			fatal(err)
		}
	}

	var show []string
	if *preds != "" {
		show = splitList(*preds)
	} else {
		show = prog.IDB()
	}

	if *showRW {
		opts := parlog.EvalOptions{
			Workers: *workers, Locality: *locality,
			VR: splitList(*vr), VE: splitList(*ve),
			Strategy: strategyOf(*strategy),
		}
		listings, err := parlog.RewriteListings(prog, opts)
		if err != nil {
			fatal(err)
		}
		ids := make([]int, 0, len(listings))
		for id := range listings {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			fmt.Printf("%% ---- processor %d ----\n%s\n", id, listings[id])
		}
		return
	}

	var rec *parlog.TraceRecorder
	if *traceOut != "" || *chromeOut != "" {
		rec = parlog.NewTraceRecorder()
	}

	telemetry := parlog.EvalOptions{
		MetricsAddr: *metricsAddr,
		Pprof:       *pprofF,
		MetricsHold: *metricsHold,
	}
	if *metricsAddr != "" {
		telemetry.TelemetryReady = func(addr string) {
			log.Info("serving metrics", "addr", "http://"+addr+"/metrics")
		}
	}

	if *workers <= 0 {
		o := telemetry
		o.Naive, o.Trace, o.Metrics = *naive, traceSink(rec), *metrics
		o.Planner, o.Explain, o.NoDemand = plannerOf(*planner), *explain, *noDemand
		o.Profile = *profileF
		if *query != "" {
			runQuery(ctx, prog, edb, *query, o, *explain || *profileF, *stats)
			writeTrace(rec, *traceOut)
			writeChrome(rec, *chromeOut)
			return
		}
		seqRes, err := parlog.Eval(ctx, prog, edb, o)
		if err != nil {
			fatal(err)
		}
		store, st := seqRes.Output, seqRes.SeqStats
		printResult(prog, store, show)
		if *explain || *profileF {
			fmt.Fprint(os.Stderr, seqRes.Explain())
		}
		if *stats {
			fmt.Fprintf(os.Stderr, "iterations=%d firings=%d new=%d\n", st.Iterations, st.Firings, st.New)
		}
		writeTrace(rec, *traceOut)
		writeChrome(rec, *chromeOut)
		printMetrics(seqRes.Metrics)
		if *interact {
			repl(ctx, prog, edb, os.Stdin, os.Stdout)
		}
		return
	}

	opts := telemetry
	opts.Workers = *workers
	opts.Locality = *locality
	opts.VR = splitList(*vr)
	opts.VE = splitList(*ve)
	opts.Strategy = strategyOf(*strategy)
	opts.Trace = traceSink(rec)
	opts.Metrics = *metrics
	opts.Planner = plannerOf(*planner)
	opts.Explain = *explain
	opts.Profile = *profileF
	opts.NoDemand = *noDemand
	opts.Engine = parlog.EngineParallel
	if *dist {
		opts.Engine = parlog.EngineDistributed
	}
	if *query != "" {
		runQuery(ctx, prog, edb, *query, opts, *explain || *profileF, *stats)
		writeTrace(rec, *traceOut)
		writeChrome(rec, *chromeOut)
		return
	}
	if *audit {
		// The auditor needs the bit-level discriminating function the
		// derivation can reason about: one parity bit per v(r) variable,
		// with the processor set sized to the resulting id space.
		if opts.Strategy != parlog.StrategyHashPartition || len(opts.VR) == 0 {
			fatal(fmt.Errorf("-audit requires -strategy hash and -vr"))
		}
		opts.AuditNetwork = true
		opts.HashBits = parlog.BitVectorHash(len(opts.VR))
		for i := 0; i < 1<<len(opts.VR); i++ {
			opts.Procs = append(opts.Procs, i)
		}
	}
	res, err := parlog.Eval(ctx, prog, edb, opts)
	if err != nil {
		fatal(err)
	}
	printResult(prog, res.Output, show)
	if *explain || *profileF {
		fmt.Fprint(os.Stderr, res.Explain())
	}
	if *stats {
		fmt.Fprint(os.Stderr, res.Stats.String())
	}
	if res.Audit != nil {
		fmt.Fprintln(os.Stderr, res.Audit.String())
	}
	writeTrace(rec, *traceOut)
	writeChrome(rec, *chromeOut)
	printMetrics(res.Metrics)
	if *interact {
		repl(ctx, prog, edb, os.Stdin, os.Stdout)
	}
}

// traceSink avoids stuffing a typed-nil *TraceRecorder into the EventSink
// interface when -trace is off.
func traceSink(rec *parlog.TraceRecorder) parlog.EventSink {
	if rec == nil {
		return nil
	}
	return rec
}

func writeTrace(rec *parlog.TraceRecorder, path string) {
	if rec == nil || path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := rec.WriteJSON(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
}

func writeChrome(rec *parlog.TraceRecorder, path string) {
	if rec == nil || path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := parlog.WriteChromeTrace(f, rec.Events()); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
}

func printMetrics(m *parlog.Metrics) {
	if m == nil {
		return
	}
	for _, p := range m.Procs {
		fmt.Fprintf(os.Stderr, "proc %d: iterations=%d firings=%d (dup %d) sent=%d recv=%d (dup %d) busy=%s idle=%s\n",
			p.Proc, len(p.Iterations), p.Firings, p.DupFirings,
			p.TuplesSent, p.TuplesReceived, p.DupReceived,
			time.Duration(p.BusyNs), time.Duration(p.IdleNs))
	}
	for _, e := range m.Edges {
		fmt.Fprintf(os.Stderr, "edge %d->%d: messages=%d tuples=%d\n", e.From, e.To, e.Messages, e.Tuples)
	}
}

// runQuery evaluates one goal atom through the goal-directed front door and
// streams its answers to stdout.
func runQuery(ctx context.Context, prog *parlog.Program, edb parlog.Store, goal string, opts parlog.EvalOptions, explain, stats bool) {
	qr, err := parlog.Query(ctx, prog, edb, goal, opts)
	if err != nil {
		fatal(err)
	}
	n := 0
	for {
		t, ok := qr.Next()
		if !ok {
			break
		}
		parts := make([]string, len(t))
		for i, v := range t {
			parts[i] = prog.ConstName(v)
		}
		fmt.Printf("%s(%s).\n", qr.Pred, strings.Join(parts, ", "))
		n++
	}
	if explain {
		fmt.Fprint(os.Stderr, qr.Explain())
	}
	if stats {
		fmt.Fprintf(os.Stderr, "%% %d answers\n", n)
		if st := qr.SeqStats; st != nil {
			fmt.Fprintf(os.Stderr, "iterations=%d firings=%d new=%d\n", st.Iterations, st.Firings, st.New)
		} else if qr.Stats != nil {
			fmt.Fprint(os.Stderr, qr.Stats.String())
		}
	}
	printMetrics(qr.Metrics)
}

// plannerOf maps the -planner flag to the API value.
func plannerOf(s string) parlog.PlannerMode {
	switch s {
	case "", "boundness":
		return parlog.PlannerBoundness
	case "greedy":
		return parlog.PlannerGreedy
	case "left-to-right", "ltr":
		return parlog.PlannerLeftToRight
	default:
		fatal(fmt.Errorf("unknown planner %q", s))
		return 0
	}
}

// strategyOf maps the -strategy flag to the API value.
func strategyOf(s string) parlog.Strategy {
	switch s {
	case "auto":
		return parlog.StrategyAuto
	case "hash":
		return parlog.StrategyHashPartition
	case "nocomm":
		return parlog.StrategyNoComm
	case "tradeoff":
		return parlog.StrategyTradeoff
	case "general":
		return parlog.StrategyGeneral
	default:
		fatal(fmt.Errorf("unknown strategy %q", s))
		return 0
	}
}

// csvFlags collects repeated -csv pred=path flags.
type csvFlags []struct{ pred, path string }

// String implements flag.Value.
func (c *csvFlags) String() string { return fmt.Sprintf("%d csv mappings", len(*c)) }

// Set implements flag.Value.
func (c *csvFlags) Set(v string) error {
	eq := strings.IndexByte(v, '=')
	if eq <= 0 || eq == len(v)-1 {
		return fmt.Errorf("want pred=path, got %q", v)
	}
	*c = append(*c, struct{ pred, path string }{v[:eq], v[eq+1:]})
	return nil
}

// repl reads one query pattern per line and prints the matches. When the
// program qualifies for incremental maintenance it is materialized once
// into a View and every pattern becomes a snapshot probe; otherwise each
// line runs through the goal-directed Query front door.
func repl(ctx context.Context, prog *parlog.Program, edb parlog.Store, in io.Reader, out io.Writer) {
	fmt.Fprintln(out, "% enter query patterns like anc(a, X); empty line or EOF quits")
	var snap *parlog.Snapshot
	if view, err := parlog.Open(ctx, prog, edb, parlog.EvalOptions{}); err == nil {
		defer view.Close()
		if s, err := view.Snapshot(); err == nil {
			snap = s
		}
	}
	sc := bufio.NewScanner(in)
	for {
		fmt.Fprint(out, "?- ")
		if !sc.Scan() {
			fmt.Fprintln(out)
			return
		}
		q := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(sc.Text()), "."))
		if q == "" {
			return
		}
		var qr *parlog.QueryResult
		var err error
		if snap != nil {
			qr, err = snap.Query(ctx, q)
		} else {
			qr, err = parlog.Query(ctx, prog, edb, q, parlog.EvalOptions{})
		}
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			continue
		}
		tuples := qr.All()
		sortTuples(tuples)
		for _, t := range tuples {
			parts := make([]string, len(t))
			for i, v := range t {
				parts[i] = prog.ConstName(v)
			}
			fmt.Fprintf(out, "%s(%s).\n", qr.Pred, strings.Join(parts, ", "))
		}
		fmt.Fprintf(out, "%% %d answers\n", len(tuples))
	}
}

// sortTuples orders answers lexicographically for stable REPL output.
func sortTuples(ts []parlog.Tuple) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}

// printResult prints the listed predicates in full.
func printResult(prog *parlog.Program, store parlog.Store, show []string) {
	for _, p := range show {
		fmt.Print(prog.Format(store, p))
	}
}

func readSources(paths []string) (string, error) {
	if len(paths) == 0 {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	var b strings.Builder
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return "", err
		}
		b.Write(data)
		b.WriteByte('\n')
	}
	return b.String(), nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func fatal(err error) {
	log.Error("fatal", "err", err.Error())
	os.Exit(1)
}
