// Command datalog evaluates a Datalog program, sequentially or in parallel,
// and prints the derived relations.
//
// Usage:
//
//	datalog [flags] program.dl [facts.dl ...]
//	cat program.dl | datalog [flags]
//
// Flags:
//
//	-workers N      parallel evaluation on N processors (0 = sequential)
//	-strategy S     auto | hash | nocomm | tradeoff | general
//	-vr V,W         discriminating sequence v(r) for the recursive rule
//	-ve V,W         discriminating sequence v(e) for the exit rule
//	-locality F     locality in [0,1] for -strategy tradeoff
//	-naive          sequential naive iteration instead of semi-naive
//	-pred p,q       print only these predicates (default: all derived)
//	-query 'p(a,X)' print only tuples matching an atom pattern
//	-csv pred=path  load a base relation from a CSV file (repeatable)
//	-i              interactive queries after evaluation
//	-stats          print evaluation statistics to stderr
//	-show-rewrite   print each processor's rewritten program (the paper's
//	                Q_i / R_i / T_i) instead of evaluating
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"parlog"
)

func main() {
	var (
		workers  = flag.Int("workers", 0, "parallel evaluation on N processors (0 = sequential)")
		strategy = flag.String("strategy", "auto", "auto | hash | nocomm | tradeoff | general")
		vr       = flag.String("vr", "", "comma-separated discriminating sequence v(r)")
		ve       = flag.String("ve", "", "comma-separated discriminating sequence v(e)")
		locality = flag.Float64("locality", 0, "locality in [0,1] for -strategy tradeoff")
		naive    = flag.Bool("naive", false, "use naive iteration (sequential only)")
		preds    = flag.String("pred", "", "comma-separated predicates to print (default: all derived)")
		query    = flag.String("query", "", "print only tuples matching this atom pattern, e.g. 'anc(a, X)'")
		stats    = flag.Bool("stats", false, "print evaluation statistics to stderr")
		interact = flag.Bool("i", false, "after evaluating, read query patterns from stdin")
		showRW   = flag.Bool("show-rewrite", false, "print each processor's rewritten program (Q_i/R_i/T_i) instead of evaluating")
	)
	var csvs csvFlags
	flag.Var(&csvs, "csv", "load a base relation from CSV: pred=path (repeatable)")
	flag.Parse()

	src, err := readSources(flag.Args())
	if err != nil {
		fatal(err)
	}
	prog, err := parlog.Parse(src)
	if err != nil {
		fatal(err)
	}
	edb := parlog.Store{}
	for _, cf := range csvs {
		if _, err := prog.LoadCSVFile(edb, cf.pred, cf.path); err != nil {
			fatal(err)
		}
	}

	var show []string
	if *preds != "" {
		show = splitList(*preds)
	} else {
		show = prog.IDB()
	}

	if *showRW {
		opts := parlog.ParallelOptions{
			Workers: *workers, Locality: *locality,
			VR: splitList(*vr), VE: splitList(*ve),
			Strategy: strategyOf(*strategy),
		}
		listings, err := parlog.RewriteListings(prog, opts)
		if err != nil {
			fatal(err)
		}
		ids := make([]int, 0, len(listings))
		for id := range listings {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			fmt.Printf("%% ---- processor %d ----\n%s\n", id, listings[id])
		}
		return
	}

	if *workers <= 0 {
		store, st, err := parlog.Eval(prog, edb, parlog.EvalOptions{Naive: *naive})
		if err != nil {
			fatal(err)
		}
		printResult(prog, store, show, *query)
		if *stats {
			fmt.Fprintf(os.Stderr, "iterations=%d firings=%d new=%d\n", st.Iterations, st.Firings, st.New)
		}
		if *interact {
			repl(prog, store, os.Stdin, os.Stdout)
		}
		return
	}

	opts := parlog.ParallelOptions{
		Workers:  *workers,
		Locality: *locality,
		VR:       splitList(*vr),
		VE:       splitList(*ve),
		Strategy: strategyOf(*strategy),
	}
	res, err := parlog.EvalParallel(prog, edb, opts)
	if err != nil {
		fatal(err)
	}
	printResult(prog, res.Output, show, *query)
	if *stats {
		fmt.Fprint(os.Stderr, res.Stats.String())
	}
	if *interact {
		repl(prog, res.Output, os.Stdin, os.Stdout)
	}
}

// strategyOf maps the -strategy flag to the API value.
func strategyOf(s string) parlog.Strategy {
	switch s {
	case "auto":
		return parlog.StrategyAuto
	case "hash":
		return parlog.StrategyHashPartition
	case "nocomm":
		return parlog.StrategyNoComm
	case "tradeoff":
		return parlog.StrategyTradeoff
	case "general":
		return parlog.StrategyGeneral
	default:
		fatal(fmt.Errorf("unknown strategy %q", s))
		return 0
	}
}

// csvFlags collects repeated -csv pred=path flags.
type csvFlags []struct{ pred, path string }

// String implements flag.Value.
func (c *csvFlags) String() string { return fmt.Sprintf("%d csv mappings", len(*c)) }

// Set implements flag.Value.
func (c *csvFlags) Set(v string) error {
	eq := strings.IndexByte(v, '=')
	if eq <= 0 || eq == len(v)-1 {
		return fmt.Errorf("want pred=path, got %q", v)
	}
	*c = append(*c, struct{ pred, path string }{v[:eq], v[eq+1:]})
	return nil
}

// repl reads one query pattern per line and prints the matches.
func repl(prog *parlog.Program, store parlog.Store, in io.Reader, out io.Writer) {
	fmt.Fprintln(out, "% enter query patterns like anc(a, X); empty line or EOF quits")
	sc := bufio.NewScanner(in)
	for {
		fmt.Fprint(out, "?- ")
		if !sc.Scan() {
			fmt.Fprintln(out)
			return
		}
		q := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(sc.Text()), "."))
		if q == "" {
			return
		}
		tuples, err := prog.Query(store, q)
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			continue
		}
		pred := q[:strings.IndexByte(q, '(')]
		for _, t := range tuples {
			parts := make([]string, len(t))
			for i, v := range t {
				parts[i] = prog.ConstName(v)
			}
			fmt.Fprintf(out, "%s(%s).\n", strings.TrimSpace(pred), strings.Join(parts, ", "))
		}
		fmt.Fprintf(out, "%% %d answers\n", len(tuples))
	}
}

// printResult prints either the matching tuples of a query pattern or the
// listed predicates in full.
func printResult(prog *parlog.Program, store parlog.Store, show []string, query string) {
	if query == "" {
		for _, p := range show {
			fmt.Print(prog.Format(store, p))
		}
		return
	}
	tuples, err := prog.Query(store, query)
	if err != nil {
		fatal(err)
	}
	pred := query[:strings.IndexByte(query, '(')]
	for _, t := range tuples {
		parts := make([]string, len(t))
		for i, v := range t {
			parts[i] = prog.ConstName(v)
		}
		fmt.Printf("%s(%s).\n", strings.TrimSpace(pred), strings.Join(parts, ", "))
	}
}

func readSources(paths []string) (string, error) {
	if len(paths) == 0 {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	var b strings.Builder
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return "", err
		}
		b.Write(data)
		b.WriteByte('\n')
	}
	return b.String(), nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datalog:", err)
	os.Exit(1)
}
