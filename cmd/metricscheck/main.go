// Command metricscheck validates a Prometheus text-format exposition —
// promtool's core "check metrics" pass without the dependency, so CI can
// gate on /metrics well-formedness on machines that don't have promtool.
//
// Usage:
//
//	metricscheck http://127.0.0.1:9090/metrics
//	metricscheck exposition.txt
//	curl -s localhost:9090/metrics | metricscheck
//
// Exit status 0 when the document is well-formed (metric and label names,
// TYPE/HELP consistency, label syntax, histogram bucket/count/sum
// invariants), 1 with a diagnostic on stderr otherwise.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"parlog/internal/metrics"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: metricscheck [URL | FILE]  (no argument: read stdin)")
		flag.PrintDefaults()
	}
	flag.Parse()

	var (
		r    io.Reader
		name string
	)
	switch args := flag.Args(); len(args) {
	case 0:
		r, name = os.Stdin, "stdin"
	case 1:
		name = args[0]
		if strings.HasPrefix(name, "http://") || strings.HasPrefix(name, "https://") {
			resp, err := http.Get(name)
			if err != nil {
				fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				fatal(fmt.Errorf("%s: HTTP %s", name, resp.Status))
			}
			r = resp.Body
		} else {
			f, err := os.Open(name)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			r = f
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	if err := metrics.ValidateExposition(r); err != nil {
		fatal(fmt.Errorf("%s: %w", name, err))
	}
	fmt.Printf("metricscheck: %s OK\n", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "metricscheck:", err)
	os.Exit(1)
}
