package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func build(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "metricscheck")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

func TestValidExpositionFromStdin(t *testing.T) {
	bin := build(t)
	cmd := exec.Command(bin)
	cmd.Stdin = strings.NewReader(`# HELP parlog_runs_total evaluation runs
# TYPE parlog_runs_total counter
parlog_runs_total 3
`)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("valid exposition rejected: %v\n%s", err, out)
	}
}

func TestInvalidExpositionFails(t *testing.T) {
	bin := build(t)
	cmd := exec.Command(bin)
	cmd.Stdin = strings.NewReader("9bad_name 1\n")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("invalid exposition accepted:\n%s", out)
	}
}
