package parlog

import "parlog/internal/obs"

// EventSink receives an evaluation's event stream: run boundaries,
// per-processor semi-naive iterations with their delta sizes, per-rule
// firing batches, inter-processor messages, busy/idle transitions and
// termination-detector probes. Implementations must be concurrency-safe
// and fast; see the interface's method docs for the exact contract. Attach
// one via EvalOptions.Trace.
type EventSink = obs.EventSink

// FanoutSinks combines several sinks into one, dropping nils.
func FanoutSinks(sinks ...EventSink) EventSink { return obs.Fanout(sinks...) }

// TraceEvent is one recorded event of a TraceRecorder.
type TraceEvent = obs.Event

// TraceRecorder is the built-in JSON trace sink: it captures the full
// event stream in memory, exports it with WriteJSON, and canonicalizes it
// (timestamps zeroed) for deterministic comparison. cmd/dlbench uses it to
// emit BENCH_parallel.json.
type TraceRecorder = obs.Recorder

// NewTraceRecorder returns an empty trace recorder.
func NewTraceRecorder() *TraceRecorder { return obs.NewRecorder() }

// CountingSink is the built-in lock-free metrics sink; its Snapshot is
// what Result.Metrics holds when EvalOptions.Metrics is set. Use it
// directly (via EvalOptions.Trace) to accumulate metrics across several
// evaluations.
type CountingSink = obs.Counting

// NewCountingSink returns an empty counting sink.
func NewCountingSink() *CountingSink { return obs.NewCounting() }

// Metrics is a counting sink's aggregate snapshot: per-processor iteration
// deltas, firings, traffic and busy/idle totals, plus per-edge tuple
// counts.
type Metrics = obs.Metrics

// ProcMetrics is one processor's aggregate counters within a Metrics.
type ProcMetrics = obs.ProcMetrics

// IterationDelta records the new-tuple count of one semi-naive iteration.
type IterationDelta = obs.IterationDelta

// EdgeMetrics is the traffic on one directed channel t_{From,To}.
type EdgeMetrics = obs.EdgeMetrics
