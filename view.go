package parlog

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"parlog/internal/ast"
	"parlog/internal/obs"
	"parlog/internal/parser"
	"parlog/internal/seminaive"
)

// ErrViewClosed reports an operation on a View after Close.
var ErrViewClosed = errors.New("parlog: view is closed")

// Delta is one batch of EDB changes for View.Apply: tuples to insert into
// and delete from base relations, keyed by predicate. Deletes are applied
// before inserts, so a tuple appearing in both ends up present. Inserting a
// present tuple or deleting an absent one is a no-op.
type Delta struct {
	Insert map[string][]Tuple
	Delete map[string][]Tuple
}

// NewDelta returns an empty delta ready for Add/Remove chaining.
func NewDelta() *Delta {
	return &Delta{Insert: map[string][]Tuple{}, Delete: map[string][]Tuple{}}
}

// Add queues an insert.
func (d *Delta) Add(pred string, t Tuple) *Delta {
	d.Insert[pred] = append(d.Insert[pred], t)
	return d
}

// Remove queues a delete.
func (d *Delta) Remove(pred string, t Tuple) *Delta {
	d.Delete[pred] = append(d.Delete[pred], t)
	return d
}

func (d Delta) size() (ins, del int) {
	for _, ts := range d.Insert {
		ins += len(ts)
	}
	for _, ts := range d.Delete {
		del += len(ts)
	}
	return
}

// ApplyStats reports what one maintenance batch did.
type ApplyStats struct {
	// Inserted and Deleted count net live-set changes across all
	// predicates, base and derived.
	Inserted, Deleted int
	// Overdeleted counts tuples the DRed overdeletion pass killed;
	// Rederived counts how many of them the rederivation pass revived.
	Overdeleted, Rederived int
	// Firings is the maintenance passes' derived work: successful ground
	// substitutions enumerated while propagating the delta. Compare with
	// SeqStats.Firings of a from-scratch evaluation to see the incremental
	// saving (experiment E19).
	Firings int64
	// Iterations counts semi-naive rounds across the maintenance passes.
	Iterations int
	// Wall is the batch's maintenance time.
	Wall time.Duration
}

// View is an incrementally maintained materialization of a program's least
// model over a mutable EDB — the long-lived counterpart of Eval. Apply
// absorbs EDB deltas with counting-based maintenance (DRed overdeletion
// plus rederivation for deletes), far cheaper than refixpointing when
// deltas are small; Snapshot publishes immutable views that concurrent
// readers query while the writer keeps applying.
//
// A View serializes its own writes; Apply and Snapshot may be called from
// any goroutine. Snapshots are valid forever (they pin their rows) and
// never observe later Applies.
type View struct {
	mu   sync.Mutex
	prog *Program
	opts EvalOptions
	ivm  *seminaive.IVM
	tel  *telemetry
	dur  *durability // nil unless opened with EvalOptions.Dir

	epoch  uint64
	cached *Snapshot
	closed bool
}

// Open materializes prog over edb (which may be nil) and returns a live,
// incrementally maintained view of its least model. The maintenance engine
// is sequential counting/DRed over the opts.Planner join planner; programs
// with negation or constraints are rejected, as are non-sequential engines
// — parallel refixpointing and incremental maintenance do not compose yet
// (run Eval for one-shot parallel evaluation). Telemetry options work as in
// Eval, with the endpoint staying up until Close: set opts.MetricsAddr to
// scrape parlog_ivm_* instruments for the view's lifetime.
func Open(ctx context.Context, p *Program, edb Store, opts EvalOptions) (*View, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.Engine != EngineSequential {
		return nil, badOptions("Open maintains its view on the sequential engine; use Eval for one-shot parallel runs")
	}
	if opts.Naive {
		return nil, badOptions("Naive iteration does not support incremental maintenance")
	}
	opts.fill()
	if edb == nil {
		edb = Store{}
	}
	tel, err := buildTelemetry(&opts)
	if err != nil {
		return nil, err
	}
	var dur *durability
	epoch := uint64(0)
	if opts.Dir != "" {
		// Recover the durable EDB first: the state directory's segment
		// plus surviving WAL records replace (or extend) the edb
		// argument, and one materialization below restores the exact
		// pre-crash model.
		d, rec, derr := openDurability(p, edb, &opts, tel.sink)
		if derr != nil {
			tel.abort()
			return nil, derr
		}
		dur, edb, epoch = d, rec.edb, rec.epoch
	}
	ivm, _, err := seminaive.NewIVM(p.ast, edb, seminaive.Options{
		MaxIterations: opts.MaxIterations,
		Ctx:           ctx,
		Planner:       opts.Planner,
	})
	if err != nil {
		if dur != nil {
			dur.dir.Close()
		}
		tel.abort()
		return nil, fmt.Errorf("parlog: %w", err)
	}
	return &View{prog: p, opts: opts, ivm: ivm, tel: tel, dur: dur, epoch: epoch}, nil
}

// Epoch returns the view's version: 0 after Open, incremented by every
// successful non-empty Apply.
func (v *View) Epoch() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.epoch
}

// Apply absorbs one batch of EDB changes (deletes before inserts) and
// incrementally restores the materialized model. Only base (EDB) predicates
// may appear in the delta. On error the view is unchanged and stays usable.
//
// A durable view (EvalOptions.Dir) write-ahead-logs the batch before
// maintenance runs, so an acknowledged Apply survives a crash under the
// fsync policy in force. If maintenance fails after its batch was logged
// — a context cancellation or iteration cap mid-maintenance — the batch
// is disowned on disk and the view is poisoned (further Applies fail);
// re-Open recovers the last acknowledged state. A failed durable write
// also poisons the view: the in-memory model is then ahead of disk and
// must not acknowledge further batches.
func (v *View) Apply(d Delta) (*ApplyStats, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return nil, ErrViewClosed
	}
	if v.dur != nil {
		if v.dur.err != nil {
			return nil, fmt.Errorf("parlog: view poisoned by durable-write failure: %w", v.dur.err)
		}
		// Validate before logging: a batch the maintenance engine would
		// reject must not enter the WAL at all.
		if err := v.validateDelta(d); err != nil {
			return nil, err
		}
		if err := v.dur.logApply(v.epoch+1, d.Delete, d.Insert); err != nil {
			return nil, fmt.Errorf("parlog: write-ahead log: %w", err)
		}
	}
	ins, del := d.size()
	obs.ApplyStart(v.tel.sink, ins, del)
	start := time.Now()
	st, err := v.ivm.Apply(d.Delete, d.Insert)
	wall := time.Since(start)
	if err != nil {
		obs.ApplyEnd(v.tel.sink, 0, 0, 0, 0, 0, wall, err)
		if v.dur != nil {
			v.dur.abort(v.epoch + 1)
			v.dur.err = fmt.Errorf("maintenance failed after its batch was logged: %w", err)
		}
		return nil, fmt.Errorf("parlog: %w", err)
	}
	obs.ApplyEnd(v.tel.sink, st.Inserted, st.Deleted, st.Overdeleted, st.Rederived, st.Firings, wall, nil)
	v.epoch++
	v.cached = nil
	if v.dur != nil {
		v.dur.epoch = v.epoch
		v.dur.applies++
		if v.dur.applies >= v.dur.opts.CompactEvery {
			if cerr := v.dur.compact(v.edbSnapshot()); cerr != nil {
				// The batch itself is durably logged; only the compaction
				// failed, killing the directory. Fail fast rather than
				// acknowledge batches that can no longer be logged.
				return nil, fmt.Errorf("parlog: compacting state dir: %w", cerr)
			}
		}
	}
	return &ApplyStats{
		Inserted:    st.Inserted,
		Deleted:     st.Deleted,
		Overdeleted: st.Overdeleted,
		Rederived:   st.Rederived,
		Firings:     st.Firings,
		Iterations:  st.Iterations,
		Wall:        wall,
	}, nil
}

// ApplyBatch absorbs a sequence of deltas, coalescing adjacent ones into
// as few maintenance fixpoints as possible. Applying N single-tuple deltas
// one by one pays N counting/DRed passes; coalesced, the common case (a
// stream of inserts, or deletes of unrelated tuples) collapses to one.
//
// Coalescing preserves the sequential semantics exactly: deltas d1 and d2
// merge only when nothing d2 deletes is queued for insertion by d1 —
// otherwise the merged batch (deletes before inserts) would resurrect a
// tuple the sequence kills — and a delta that trips the condition flushes
// the accumulated batch first. Each flushed batch is one Apply: one epoch,
// one write-ahead-log record on a durable view, and concurrent Snapshot
// calls may observe the intermediate epochs. The returned stats aggregate
// all batches, with Iterations summing the semi-naive rounds actually run.
// On error the already-flushed prefix stays applied; the view reports the
// epoch it reached.
func (v *View) ApplyBatch(ds ...Delta) (*ApplyStats, error) {
	total := &ApplyStats{}
	flush := func(d Delta) error {
		if ins, del := d.size(); ins == 0 && del == 0 {
			return nil
		}
		st, err := v.Apply(d)
		if err != nil {
			return err
		}
		total.Inserted += st.Inserted
		total.Deleted += st.Deleted
		total.Overdeleted += st.Overdeleted
		total.Rederived += st.Rederived
		total.Firings += st.Firings
		total.Iterations += st.Iterations
		total.Wall += st.Wall
		return nil
	}

	acc := Delta{Insert: map[string][]Tuple{}, Delete: map[string][]Tuple{}}
	queuedIns := map[string]bool{} // pred|tuple keys of acc's inserts
	for _, d := range ds {
		conflict := false
		for pred, ts := range d.Delete {
			for _, t := range ts {
				if queuedIns[tupleKey(pred, t)] {
					conflict = true
					break
				}
			}
			if conflict {
				break
			}
		}
		if conflict {
			if err := flush(acc); err != nil {
				return total, err
			}
			acc = Delta{Insert: map[string][]Tuple{}, Delete: map[string][]Tuple{}}
			queuedIns = map[string]bool{}
		}
		for pred, ts := range d.Delete {
			acc.Delete[pred] = append(acc.Delete[pred], ts...)
		}
		for pred, ts := range d.Insert {
			acc.Insert[pred] = append(acc.Insert[pred], ts...)
			for _, t := range ts {
				queuedIns[tupleKey(pred, t)] = true
			}
		}
	}
	if err := flush(acc); err != nil {
		return total, err
	}
	return total, nil
}

// tupleKey is a map key identifying one tuple of one predicate, for the
// coalescing conflict check.
func tupleKey(pred string, t Tuple) string {
	return fmt.Sprintf("%s|%v", pred, t)
}

// Snapshot publishes an immutable view of the current model. Snapshots are
// cheap — relations that saw no deletion share the writer's arenas
// zero-copy, pinned at the current length — and cached per epoch, so
// repeated calls between Applies return the same object. A snapshot
// remains valid and consistent forever; later Applies never show through.
func (v *View) Snapshot() (*Snapshot, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return nil, ErrViewClosed
	}
	if v.cached == nil {
		store := v.ivm.SnapshotStore()
		v.cached = &Snapshot{
			prog:    v.prog,
			store:   store,
			epoch:   v.epoch,
			planner: v.opts.Planner,
			profile: v.opts.Profile,
		}
		obs.SnapshotTaken(v.tel.sink, v.epoch, store.TotalTuples())
	}
	return v.cached, nil
}

// validateDelta mirrors the maintenance engine's upfront checks — only
// base predicates, at their declared arity — so a doomed batch is
// rejected before it reaches the write-ahead log.
func (v *View) validateDelta(d Delta) error {
	check := func(m map[string][]Tuple) error {
		for pred, ts := range m {
			if !v.ivm.IsEDB(pred) {
				return fmt.Errorf("parlog: %s is not a base relation", pred)
			}
			ar := v.ivm.Arity(pred)
			for _, t := range ts {
				if ar >= 0 && len(t) != ar {
					return fmt.Errorf("parlog: %s has arity %d, delta tuple has %d", pred, ar, len(t))
				}
			}
		}
		return nil
	}
	if err := check(d.Delete); err != nil {
		return err
	}
	return check(d.Insert)
}

// edbSnapshot extracts the current base relations — what compaction
// persists. Callers hold v.mu.
func (v *View) edbSnapshot() Store {
	return edbSnapshot(v.ivm.SnapshotStore(), v.ivm.IsEDB)
}

// DurabilityStats reports the state directory's extent: the recovered
// epoch plus later Applies, the newest segment's pin, and the WAL length
// a crash right now would replay. Nil for a view opened without Dir.
func (v *View) DurabilityStats() *DurabilityStats {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.dur == nil {
		return nil
	}
	se, has := v.dur.dir.SegmentEpoch()
	return &DurabilityStats{
		Epoch:        v.epoch,
		SegmentEpoch: se,
		HasSegment:   has,
		WALRecords:   v.dur.dir.WALRecords(),
		WALBytes:     v.dur.dir.WALSize(),
	}
}

// Metrics returns the aggregate telemetry snapshot when Open was given
// opts.Metrics (or a MetricsAddr); nil otherwise. IVM* fields carry the
// maintenance counters.
func (v *View) Metrics() *Metrics {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.tel.counting == nil {
		return nil
	}
	return v.tel.counting.Snapshot()
}

// Close releases the view: the telemetry endpoint shuts down and further
// Apply/Snapshot calls fail with ErrViewClosed. Existing snapshots stay
// valid. Close is idempotent.
func (v *View) Close() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return nil
	}
	v.closed = true
	var err error
	if v.dur != nil {
		// Clean shutdown: compact so the next Open replays nothing, then
		// mark the log clean. A poisoned directory is just released.
		err = v.dur.close(v.edbSnapshot())
	}
	v.tel.abort()
	return err
}

// Snapshot is an immutable view of a View's model at one epoch, safe for
// concurrent readers. Store exposes the relations directly; Query serves
// goal-directed reads through the join planner.
type Snapshot struct {
	prog    *Program
	store   Store
	epoch   uint64
	planner PlannerMode
	// profile mirrors the View's Open-time EvalOptions.Profile: snapshot
	// queries then fill QueryResult.Profile with the goal scan's counters.
	profile bool
	mu      sync.Mutex // serializes Query: plans build relation indexes lazily
}

// Epoch returns the view epoch the snapshot pinned.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Store returns the snapshot's relations. Callers must treat them as
// read-only; inserting would defeat the arena sharing with the live view.
func (s *Snapshot) Store() Store { return s.store }

// Query matches a goal atom such as "anc(a, X)" against the snapshot and
// returns its answers through the opts.Planner join planner the view was
// opened with. The model is already materialized, so no evaluation runs —
// and the live View is never blocked: concurrent Snapshot.Query and
// View.Apply proceed independently. Answers are fully collected before the
// call returns; the QueryResult streams them and honors ctx cancellation
// mid-iteration.
func (s *Snapshot) Query(ctx context.Context, goal string) (*QueryResult, error) {
	atom, known, err := s.prog.resolveGoal(goal)
	if err != nil {
		return nil, err
	}
	qr := &QueryResult{
		Result: &Result{Output: s.store},
		Pred:   atom.Pred,
		ctx:    ctx,
		pre:    []Tuple{},
	}
	if !known {
		// The goal names a constant the program never interned; nothing
		// can match.
		return qr, nil
	}
	rel, ok := s.store[atom.Pred]
	if !ok {
		return qr, nil
	}
	if rel.Arity() != atom.Arity() {
		return nil, fmt.Errorf("parlog: %s has arity %d, goal uses %d", atom.Pred, rel.Arity(), atom.Arity())
	}
	// Materialize the matches eagerly under the snapshot lock: plan
	// execution builds relation hash indexes lazily, which concurrent
	// readers must not race on. The scan itself is index-probe joins over
	// the pinned arena — the PR 6 execution path.
	match := ast.Rule{Head: atom.Clone(), Body: []ast.Atom{atom.Clone()}}
	plan := seminaive.CompileWith(match, nil, seminaive.PlanConfig{Mode: s.planner})
	var rp *seminaive.RuleProfile
	var t0 time.Time
	if s.profile {
		plan.EnableProfile()
		qr.Result.Profile = &Profile{Engine: "snapshot"}
		rp = qr.Result.Profile.Rule(seminaive.ProfileKey(s.prog.ast, match), atom.Pred)
		t0 = time.Now()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := plan.Stream(s.store, nil)
	for cur.Next() {
		qr.pre = append(qr.pre, cur.Head())
	}
	if rp != nil {
		rp.Firings = cur.Fired()
		rp.New = cur.Fired()
		rp.Iterations = 1
		rp.WallNs = time.Since(t0).Nanoseconds()
		plan.ProfileInto(rp)
		qr.Result.Profile.WallNs = rp.WallNs
	}
	return qr, nil
}

// resolveGoal parses a goal atom and maps its constants through the
// program's interner WITHOUT mutating it — the read-only twin of parseGoal,
// safe for concurrent snapshot readers. known is false when a constant was
// never interned (the goal then matches nothing).
func (p *Program) resolveGoal(goal string) (ast.Atom, bool, error) {
	q := trimGoal(goal)
	tmp, err := parser.Parse("qwrap(ok) :- " + q + ".")
	if err != nil {
		return ast.Atom{}, false, fmt.Errorf("parlog: bad goal %q: %w", goal, err)
	}
	rule := tmp.Rules[0]
	if len(rule.Body) != 1 || len(rule.Negated) > 0 {
		return ast.Atom{}, false, fmt.Errorf("parlog: goal must be a single positive atom, got %q", goal)
	}
	atom := rule.Body[0]
	for i, term := range atom.Args {
		if term.IsVar() {
			continue
		}
		v, ok := p.ast.Interner.Lookup(tmp.Interner.Name(term.Value))
		if !ok {
			return atom, false, nil
		}
		atom.Args[i] = ast.C(v)
	}
	if ar, ok := p.ast.Arities()[atom.Pred]; ok && ar != atom.Arity() {
		return ast.Atom{}, false, fmt.Errorf("parlog: %s has arity %d, goal uses %d", atom.Pred, ar, atom.Arity())
	}
	return atom, true, nil
}
