package parlog

import (
	"context"
	"testing"

	"parlog/internal/workload"
)

// The golden conformance-audit tests run the paper's Examples 1–3 under
// the bit-level discriminating function h(ā) = bitvector(g(a1), …) — the
// exact configuration DeriveNetwork reasons about — and assert the
// auditor finds the observed communication matrix inside the predicted
// minimal network graph (Section 5, Figures 1–3). GParity yields one bit
// per discriminating variable, so a one-variable sequence addresses
// processors {0,1} and a two-variable sequence {0,1,2,3}.

func runAudited(t *testing.T, opts EvalOptions) *Result {
	t.Helper()
	p := MustParse(`
anc(X, Y) :- par(X, Y).
anc(X, Y) :- par(X, Z), anc(Z, Y).
`)
	edb := Store{"par": workload.RandomGraph(14, 30, 2)}

	seq, err := Eval(context.Background(), p, edb, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}

	opts.Strategy = StrategyHashPartition
	opts.AuditNetwork = true
	opts.Metrics = true
	res, err := Eval(context.Background(), p, edb, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Output["anc"].Equal(res.Output["anc"]) {
		t.Error("audited run differs from sequential")
	}
	if res.Audit == nil {
		t.Fatal("AuditNetwork set but Result.Audit is nil")
	}
	if !res.Audit.OK() {
		t.Fatalf("audit violations on a clean run: %s", res.Audit)
	}
	if res.Metrics == nil || res.Metrics.NetworkViolations != 0 {
		t.Fatalf("metrics violations = %+v, want 0", res.Metrics)
	}
	return res
}

// Example 1: v(r)=v(e)=⟨Y⟩ satisfies Theorem 3, so the derived network
// graph has no cross edges and the run's communication matrix is empty —
// parallelism without a single tuple on the wire.
func TestAuditGoldenExample1(t *testing.T) {
	res := runAudited(t, EvalOptions{
		Engine: EngineParallel,
		VR:     []string{"Y"}, VE: []string{"Y"},
		HashBits: BitVectorHash(1), Procs: []int{0, 1},
	})
	if res.Audit.PredictedCross != 0 {
		t.Errorf("Example 1 predicted %d cross edges, want 0", res.Audit.PredictedCross)
	}
	if len(res.Audit.Observed) != 0 {
		t.Errorf("Example 1 observed cross traffic: %+v", res.Audit.Observed)
	}
	if got := res.Stats.TotalTuplesSent(); got != 0 {
		t.Errorf("Example 1 sent %d tuples, want 0", got)
	}
}

// Example 2: v(r)=⟨X,Z⟩, v(e)=⟨X,Y⟩ — the broadcast-style scheme. Cross
// traffic is predicted; the audit confirms the run never strays off the
// derived graph.
func TestAuditGoldenExample2(t *testing.T) {
	res := runAudited(t, EvalOptions{
		Engine: EngineParallel,
		VR:     []string{"X", "Z"}, VE: []string{"X", "Y"},
		HashBits: BitVectorHash(2), Procs: []int{0, 1, 2, 3},
	})
	if res.Audit.PredictedCross == 0 {
		t.Error("Example 2 predicted no cross edges; broadcast scheme should have some")
	}
}

// Example 3: v(r)=⟨Z⟩, v(e)=⟨X⟩ — point-to-point pipeline. Only edges of
// the minimal graph may carry tuples, and with real data they do.
func TestAuditGoldenExample3(t *testing.T) {
	res := runAudited(t, EvalOptions{
		Engine: EngineParallel,
		VR:     []string{"Z"}, VE: []string{"X"},
		HashBits: BitVectorHash(1), Procs: []int{0, 1},
	})
	if res.Audit.PredictedCross == 0 {
		t.Error("Example 3 predicted no cross edges; pipeline scheme should have some")
	}
	// The receive-side matrix must mirror the send-side one: every batch
	// arrived where the sender addressed it.
	for _, e := range res.Metrics.RecvEdges {
		if e.From == e.To || e.Tuples == 0 {
			continue
		}
		found := false
		for _, s := range res.Metrics.Edges {
			if s.From == e.From && s.To == e.To {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("received traffic %+v on a channel no sender used", e)
		}
	}
}

// The audit also covers the distributed TCP engine: Example 3 over real
// sockets still stays on the predicted graph.
func TestAuditGoldenExample3Distributed(t *testing.T) {
	res := runAudited(t, EvalOptions{
		Engine: EngineDistributed,
		VR:     []string{"Z"}, VE: []string{"X"},
		HashBits: BitVectorHash(1), Procs: []int{0, 1},
	})
	if !res.Audit.OK() {
		t.Fatalf("distributed audit: %s", res.Audit)
	}
}

// AuditNetwork outside the configuration the derivation can reason about
// is an error, not a silent no-op.
func TestAuditRequiresHashBits(t *testing.T) {
	p := MustParse(`
anc(X, Y) :- par(X, Y).
anc(X, Y) :- par(X, Z), anc(Z, Y).
`)
	_, err := Eval(context.Background(), p, Store{"par": workload.Chain(4)}, EvalOptions{
		Engine:   EngineParallel,
		Strategy: StrategyHashPartition,
		VR:       []string{"Y"}, VE: []string{"Y"},
		AuditNetwork: true,
	})
	if err == nil {
		t.Fatal("AuditNetwork without HashBits accepted")
	}
}
