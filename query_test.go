package parlog_test

import (
	"context"
	"errors"
	"fmt"
	"regexp"
	"strings"
	"testing"

	parlog "parlog"
)

// chainProgram returns Example 3's ancestor program over an n-node chain.
func chainProgram(t *testing.T, n int) *parlog.Program {
	t.Helper()
	var b strings.Builder
	b.WriteString("anc(X, Y) :- par(X, Y).\n")
	b.WriteString("anc(X, Y) :- par(X, Z), anc(Z, Y).\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "par(v%d, v%d).\n", i, i+1)
	}
	prog, err := parlog.Parse(b.String())
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func tupleSet(ts []parlog.Tuple) map[string]bool {
	out := map[string]bool{}
	for _, tup := range ts {
		out[tup.Key()] = true
	}
	return out
}

// TestQueryDemandMatchesNoDemand checks that the goal-directed evaluation
// returns exactly the answers of the undirected one, while materializing
// fewer derived tuples.
func TestQueryDemandMatchesNoDemand(t *testing.T) {
	ctx := context.Background()
	prog := chainProgram(t, 60)
	goal := "anc(v50, X)?"

	off, err := parlog.Query(ctx, prog, nil, goal, parlog.EvalOptions{NoDemand: true})
	if err != nil {
		t.Fatal(err)
	}
	on, err := parlog.Query(ctx, prog, nil, goal, parlog.EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wantSet, gotSet := tupleSet(off.All()), tupleSet(on.All())
	if len(wantSet) != 10 {
		t.Fatalf("chain sanity: %d answers, want 10", len(wantSet))
	}
	if len(gotSet) != len(wantSet) {
		t.Fatalf("demand answers = %d, undirected = %d", len(gotSet), len(wantSet))
	}
	for k := range wantSet {
		if !gotSet[k] {
			t.Fatalf("demand evaluation missing %s", k)
		}
	}
	// Goal-directed runs must do less work: the undirected fixpoint derives
	// every anc pair of the chain, the demand-directed one only the suffix.
	if onNew, offNew := on.SeqStats.New, off.SeqStats.New; onNew*2 > offNew {
		t.Fatalf("demand derived %d tuples, undirected %d: want >=2x reduction", onNew, offNew)
	}
	if on.Plan == nil || on.Plan.Demand == nil {
		t.Fatal("demand query lost its PlanReport")
	}
	if on.Plan.Demand.Adornment != "bf" {
		t.Fatalf("adornment = %q", on.Plan.Demand.Adornment)
	}
}

// TestQueryStreaming checks the single-use iterator contract.
func TestQueryStreaming(t *testing.T) {
	prog := chainProgram(t, 5)
	qr, err := parlog.Query(context.Background(), prog, nil, "anc(v2, X)", parlog.EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var n int
	seen := map[string]bool{}
	for {
		tup, ok := qr.Next()
		if !ok {
			break
		}
		if len(tup) != 2 {
			t.Fatalf("answer arity = %d", len(tup))
		}
		if seen[tup.Key()] {
			t.Fatalf("duplicate answer %v", tup)
		}
		seen[tup.Key()] = true
		n++
	}
	if n != 3 {
		t.Fatalf("streamed %d answers, want 3 (v3, v4, v5)", n)
	}
	if _, ok := qr.Next(); ok {
		t.Fatal("exhausted stream yielded again")
	}
}

// TestQueryEDBGoal queries a base relation directly.
func TestQueryEDBGoal(t *testing.T) {
	prog := chainProgram(t, 4)
	qr, err := parlog.Query(context.Background(), prog, nil, "par(v1, X)?", parlog.EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := qr.All(); len(got) != 1 {
		t.Fatalf("EDB goal answers = %v", got)
	}
}

// TestQueryParallelEngine routes a goal through the shared-memory parallel
// engine with the greedy planner.
func TestQueryParallelEngine(t *testing.T) {
	prog := chainProgram(t, 20)
	qr, err := parlog.Query(context.Background(), prog, nil, "anc(v15, X)", parlog.EvalOptions{
		Engine:  parlog.EngineParallel,
		Workers: 3,
		Planner: parlog.PlannerGreedy,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(qr.All()); got != 5 {
		t.Fatalf("parallel query answers = %d, want 5", got)
	}
	if qr.Plan == nil || qr.Plan.Planner != "greedy" {
		t.Fatalf("parallel query plan report = %+v", qr.Plan)
	}
}

// TestQueryBadGoal covers the error paths.
func TestQueryBadGoal(t *testing.T) {
	prog := chainProgram(t, 3)
	for _, goal := range []string{"", "anc(X", "anc(v1)", "!anc(v1, X)"} {
		if _, err := parlog.Query(context.Background(), prog, nil, goal, parlog.EvalOptions{}); err == nil {
			t.Errorf("goal %q: want error", goal)
		}
	}
}

// TestQueryExplainGolden pins the Explain rendering for Example 3 with the
// greedy planner — the text is part of the public API surface (cmd/datalog
// -explain prints it verbatim).
func TestQueryExplainGolden(t *testing.T) {
	prog := chainProgram(t, 10)
	qr, err := parlog.Query(context.Background(), prog, nil, "anc(v0, X)?", parlog.EvalOptions{
		Planner: parlog.PlannerGreedy,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := qr.Explain()
	want := `planner: greedy
demand: goal=anc(v0, X) adornment=bf rules=14 magic=2
rule anc@m@bf(B0) :- anc@seed@bf(B0).
  order: anc@seed@bf(B0)
rule anc@m@bf(Z) :- anc@m@bf(X), par(X, Z).
  order: anc@m@bf(X), par(X, Z)
rule anc@bf(X, Y) :- anc@m@bf(X), par(X, Y).
  order: par(X, Y), anc@m@bf(X)  (reordered)
rule anc@bf(X, Y) :- anc@m@bf(X), par(X, Z), anc@bf(Z, Y).
  order: anc@bf(Z, Y), par(X, Z), anc@m@bf(X)  (reordered)
`
	if got != want {
		t.Fatalf("Explain() drifted.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestQueryExplainAnalyzeGolden pins the full explain-analyze transcript
// for Example 3 with the greedy planner and profiling on. The sequential
// engine is deterministic, so every counter — firings, probes, rows,
// matches, planned cardinalities — is exact; only the wall-time tokens are
// normalized. A drift here means the profiler's accounting changed.
func TestQueryExplainAnalyzeGolden(t *testing.T) {
	prog := chainProgram(t, 10)
	qr, err := parlog.Query(context.Background(), prog, nil, "anc(v0, X)?", parlog.EvalOptions{
		Planner: parlog.PlannerGreedy,
		Profile: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(qr.All()); n != 10 {
		t.Fatalf("answers = %d, want 10", n)
	}
	got := regexp.MustCompile(`wall=\S+`).ReplaceAllString(qr.Explain(), "wall=<t>")
	want := `planner: greedy
demand: goal=anc(v0, X) adornment=bf rules=14 magic=2
rule anc@m@bf(B0) :- anc@seed@bf(B0).
  order: anc@seed@bf(B0)
rule anc@m@bf(Z) :- anc@m@bf(X), par(X, Z).
  order: anc@m@bf(X), par(X, Z)
rule anc@bf(X, Y) :- anc@m@bf(X), par(X, Y).
  order: par(X, Y), anc@m@bf(X)  (reordered)
rule anc@bf(X, Y) :- anc@m@bf(X), par(X, Z), anc@bf(Z, Y).
  order: anc@bf(Z, Y), par(X, Z), anc@m@bf(X)  (reordered)
analyze: engine=seminaive wall=<t>
rule anc@m@bf(B0) :- anc@seed@bf(B0).
  firings=1 new=1 dup=0 iterations=1 wall=<t>
  atom 0 anc@seed@bf: probes=1 rows=1 matches=1 planned=1
rule anc@m@bf(Z) :- anc@m@bf(X), par(X, Z).
  firings=10 new=10 dup=0 iterations=11 wall=<t>
  atom 0 anc@m@bf: probes=11 rows=11 matches=11 planned=1
  atom 1 par: probes=11 rows=10 matches=10 planned=10
rule anc@bf(X, Y) :- anc@m@bf(X), par(X, Y).
  firings=10 new=10 dup=0 iterations=1 wall=<t>
  atom 0 anc@m@bf: probes=10 rows=10 matches=10 planned=11
  atom 1 par: probes=1 rows=10 matches=10 planned=10
rule anc@bf(X, Y) :- anc@m@bf(X), par(X, Z), anc@bf(Z, Y).
  firings=45 new=45 dup=0 iterations=10 wall=<t>
  atom 0 anc@m@bf: probes=45 rows=45 matches=45 planned=11
  atom 1 par: probes=55 rows=45 matches=45 planned=10
  atom 2 anc@bf: probes=10 rows=55 matches=55 planned=10
`
	if got != want {
		t.Fatalf("explain-analyze drifted.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestQueryResultMisuse pins the iterator's behavior under awkward but
// legal call sequences: Next past exhaustion, All after partial Next, a
// second iteration, and context cancellation mid-stream.
func TestQueryResultMisuse(t *testing.T) {
	ctx := context.Background()
	run := func(t *testing.T) *parlog.QueryResult {
		t.Helper()
		qr, err := parlog.Query(ctx, chainProgram(t, 12), nil, "anc(v0, X)", parlog.EvalOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return qr
	}

	t.Run("next after exhaustion", func(t *testing.T) {
		qr := run(t)
		if n := len(qr.All()); n != 12 {
			t.Fatalf("answers = %d, want 12", n)
		}
		for i := 0; i < 3; i++ {
			if tup, ok := qr.Next(); ok || tup != nil {
				t.Fatalf("Next after exhaustion returned %v, %v", tup, ok)
			}
		}
		if qr.Err() != nil {
			t.Errorf("exhausted stream reports error %v", qr.Err())
		}
	})

	t.Run("all after partial next", func(t *testing.T) {
		qr := run(t)
		seen := map[string]bool{}
		for i := 0; i < 5; i++ {
			tup, ok := qr.Next()
			if !ok {
				t.Fatalf("stream dried up at %d", i)
			}
			seen[tup.Key()] = true
		}
		rest := qr.All()
		if len(seen)+len(rest) != 12 {
			t.Fatalf("5 via Next + %d via All != 12", len(rest))
		}
		for _, tup := range rest {
			if seen[tup.Key()] {
				t.Fatalf("All replayed %v already returned by Next", tup)
			}
		}
	})

	t.Run("double iteration", func(t *testing.T) {
		qr := run(t)
		if n := len(qr.All()); n != 12 {
			t.Fatalf("first All = %d", n)
		}
		if again := qr.All(); again != nil {
			t.Fatalf("second All returned %d answers, want nil", len(again))
		}
	})

	t.Run("cancellation mid-stream", func(t *testing.T) {
		cctx, cancel := context.WithCancel(context.Background())
		qr, err := parlog.Query(cctx, chainProgram(t, 12), nil, "anc(v0, X)", parlog.EvalOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := qr.Next(); !ok {
			t.Fatal("no first answer")
		}
		cancel()
		if tup, ok := qr.Next(); ok {
			t.Fatalf("Next after cancel returned %v", tup)
		}
		if !errors.Is(qr.Err(), context.Canceled) {
			t.Errorf("Err() = %v, want context.Canceled", qr.Err())
		}
		if rest := qr.All(); rest != nil {
			t.Errorf("All after cancel returned %d answers", len(rest))
		}
	})

	t.Run("snapshot query cancellation", func(t *testing.T) {
		cctx, cancel := context.WithCancel(context.Background())
		view, err := parlog.Open(ctx, chainProgram(t, 12), nil, parlog.EvalOptions{})
		if err != nil {
			t.Fatal(err)
		}
		defer view.Close()
		snap, err := view.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		qr, err := snap.Query(cctx, "anc(v0, X)")
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := qr.Next(); !ok {
			t.Fatal("no first answer")
		}
		cancel()
		if _, ok := qr.Next(); ok {
			t.Fatal("Next after cancel succeeded")
		}
		if !errors.Is(qr.Err(), context.Canceled) {
			t.Errorf("Err() = %v, want context.Canceled", qr.Err())
		}
	})
}
