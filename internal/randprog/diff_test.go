package randprog

import (
	"fmt"
	"testing"

	"parlog/internal/analysis"
	"parlog/internal/ast"
	"parlog/internal/hashpart"
	"parlog/internal/parallel"
	"parlog/internal/parser"
	"parlog/internal/relation"
	"parlog/internal/rewrite"
	"parlog/internal/seminaive"
)

const diffSeeds = 80

func TestGeneratedProgramsAreSafeAndParseable(t *testing.T) {
	for seed := int64(0); seed < diffSeeds; seed++ {
		g := Generate(Config{}, seed)
		if err := analysis.CheckSafety(g.Prog); err != nil {
			t.Fatalf("seed %d: generated unsafe program: %v\n%s", seed, err, g.Prog)
		}
		// The textual rendering must parse back to an equivalent program.
		again, err := parser.Parse(g.Prog.String())
		if err != nil {
			t.Fatalf("seed %d: program does not re-parse: %v\n%s", seed, err, g.Prog)
		}
		if again.String() != g.Prog.String() {
			t.Fatalf("seed %d: round trip changed the program", seed)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{}, 7)
	b := Generate(Config{}, 7)
	if a.Prog.String() != b.Prog.String() {
		t.Error("same seed produced different programs")
	}
	c := Generate(Config{}, 8)
	if a.Prog.String() == c.Prog.String() {
		t.Error("different seeds produced identical programs")
	}
}

// TestNaiveMatchesSemiNaive is the engine cross-check: both fixpoint
// strategies must compute the same least model on every random program.
func TestNaiveMatchesSemiNaive(t *testing.T) {
	for seed := int64(0); seed < diffSeeds; seed++ {
		g := Generate(Config{}, seed)
		sn, snStats, err := seminaive.Eval(g.Prog, g.EDB, seminaive.Options{})
		if err != nil {
			t.Fatalf("seed %d: semi-naive: %v", seed, err)
		}
		nv, nvStats, err := seminaive.Eval(g.Prog, g.EDB, seminaive.Options{Naive: true})
		if err != nil {
			t.Fatalf("seed %d: naive: %v", seed, err)
		}
		for _, pred := range g.IDB() {
			if !storesEqual(sn, nv, pred) {
				t.Fatalf("seed %d: %s differs between naive and semi-naive\nprogram:\n%s",
					seed, pred, g.Prog)
			}
		}
		if snStats.Firings > nvStats.Firings {
			t.Errorf("seed %d: semi-naive fired more (%d) than naive (%d)",
				seed, snStats.Firings, nvStats.Firings)
		}
	}
}

// generalSpec builds a Section 7 spec for a generated program: each rule
// discriminates on the first variable of its first recursive atom when one
// exists, else its first body variable.
func generalSpec(g *Program, n int, seed uint64) (rewrite.GeneralSpec, error) {
	rules, _ := g.Prog.FactTuples()
	spec := rewrite.GeneralSpec{Procs: hashpart.RangeProcs(n)}
	h := hashpart.ModHash{N: n, Seed: seed}
	for _, r := range rules {
		var seq []string
		if recs := analysis.RecursiveAtoms(g.Prog, r); len(recs) > 0 {
			if vars := r.Body[recs[0]].Vars(nil); len(vars) > 0 {
				seq = vars[:1]
			}
		}
		if seq == nil {
			vars := r.BodyVars()
			if len(vars) == 0 {
				return spec, fmt.Errorf("rule without body variables: %s", g.Prog.FormatRule(r))
			}
			seq = vars[:1]
		}
		spec.Rules = append(spec.Rules, rewrite.RuleSpec{Seq: seq, H: h})
	}
	return spec, nil
}

// TestParallelGeneralMatchesSequential is the central differential test: the
// Section 7 runtime must compute the sequential least model on every random
// program, for several processor counts and all termination detectors, with
// exactly the sequential number of generation firings (Theorem 6 met with
// equality for common per-rule h).
func TestParallelGeneralMatchesSequential(t *testing.T) {
	for seed := int64(0); seed < diffSeeds; seed++ {
		g := Generate(Config{}, seed)
		want, seqStats, err := seminaive.Eval(g.Prog, g.EDB, seminaive.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		n := 2 + int(seed%3)
		mode := parallel.TerminationMode(seed % 3)
		spec, err := generalSpec(g, n, uint64(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		p, err := parallel.BuildGeneral(g.Prog, spec)
		if err != nil {
			t.Fatalf("seed %d: build: %v\n%s", seed, err, g.Prog)
		}
		res, err := parallel.Run(p, g.EDB, parallel.RunConfig{Mode: mode})
		if err != nil {
			t.Fatalf("seed %d: run: %v", seed, err)
		}
		for _, pred := range g.IDB() {
			if !storesEqual(want, res.Output, pred) {
				t.Fatalf("seed %d (N=%d mode=%d): %s differs\nprogram:\n%s",
					seed, n, mode, pred, g.Prog)
			}
		}
		if got := res.Stats.TotalFirings(); got != seqStats.Firings {
			t.Errorf("seed %d: parallel firings %d != sequential %d\nprogram:\n%s",
				seed, got, seqStats.Firings, g.Prog)
		}
	}
}

// TestRewriteGeneralDeclarative checks Theorem 5 on random programs: the
// union program T = ∪T_i, evaluated by the *sequential* engine, has the same
// least model as the original for every derived predicate.
func TestRewriteGeneralDeclarative(t *testing.T) {
	for seed := int64(0); seed < diffSeeds/2; seed++ {
		g := Generate(Config{}, seed)
		want, _, err := seminaive.Eval(g.Prog, g.EDB, seminaive.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		spec, err := generalSpec(g, 3, uint64(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rw, err := rewrite.General(g.Prog, rewrite.GeneralSpec{Procs: spec.Procs, Rules: spec.Rules})
		if err != nil {
			t.Fatalf("seed %d: rewrite: %v", seed, err)
		}
		got, _, err := seminaive.Eval(rw.Program, g.EDB, seminaive.Options{})
		if err != nil {
			t.Fatalf("seed %d: eval rewritten: %v", seed, err)
		}
		for _, pred := range g.IDB() {
			if !storesEqual(want, got, pred) {
				t.Fatalf("seed %d: Theorem 5 violated for %s\nprogram:\n%s", seed, pred, g.Prog)
			}
		}
	}
}

// TestLargerRandomPrograms stresses bigger configurations.
func TestLargerRandomPrograms(t *testing.T) {
	cfg := Config{
		IDBPreds: 5, EDBPreds: 4, MaxArity: 3, MaxRulesPerPred: 4,
		MaxBodyAtoms: 4, ConstPool: 8, MaxFactsPerPred: 20, RecursionBias: 0.5,
	}
	for seed := int64(100); seed < 108; seed++ {
		g := Generate(cfg, seed)
		want, _, err := seminaive.Eval(g.Prog, g.EDB, seminaive.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		spec, err := generalSpec(g, 4, uint64(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		p, err := parallel.BuildGeneral(g.Prog, spec)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := parallel.Run(p, g.EDB, parallel.RunConfig{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, pred := range g.IDB() {
			if !storesEqual(want, res.Output, pred) {
				t.Fatalf("seed %d: %s differs\nprogram:\n%s", seed, pred, g.Prog)
			}
		}
	}
}

func storesEqual(a, b relation.Store, pred string) bool {
	ra, rb := a[pred], b[pred]
	switch {
	case ra == nil && rb == nil:
		return true
	case ra == nil:
		return rb.Len() == 0
	case rb == nil:
		return ra.Len() == 0
	default:
		return ra.Equal(rb)
	}
}

// TestFiringsEqualDistinctSubstitutions validates the exact semi-naive delta
// decomposition: the number of firings accumulated during evaluation must
// equal the number of distinct successful ground substitutions with respect
// to the least model — obtained independently by enumerating each rule once
// over the final store. (Definition 4's quantity; this equality is what
// makes the Theorem 2/6 comparisons meaningful.)
func TestFiringsEqualDistinctSubstitutions(t *testing.T) {
	for seed := int64(0); seed < diffSeeds; seed++ {
		g := Generate(Config{}, seed)
		final, stats, err := seminaive.Eval(g.Prog, g.EDB, seminaive.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rules, _ := g.Prog.FactTuples()
		var oracle int64
		for _, r := range rules {
			plan := seminaive.Compile(r, nil)
			oracle += plan.Enumerate(final, nil, func([]ast.Value) bool { return true })
		}
		if stats.Firings != oracle {
			t.Errorf("seed %d: semi-naive fired %d, distinct substitutions %d\nprogram:\n%s",
				seed, stats.Firings, oracle, g.Prog)
		}
	}
}
