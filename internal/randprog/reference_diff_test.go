package randprog

import (
	"testing"

	"parlog/internal/ast"
	"parlog/internal/parallel"
	"parlog/internal/relation"
	"parlog/internal/seminaive"
)

// referenceModel computes the least model of g with a deliberately naive,
// fully independent evaluator: Reference relations (per-tuple allocations,
// string-keyed membership maps — the pre-arena storage layout) driven by a
// brute-force nested-loop matcher over ast.MatchAtom. Nothing here shares
// code with the arena, the index structures, or the compiled plans, so an
// agreement between this model and the engines' output exercises the whole
// flat-storage stack. It also returns the number of distinct successful
// ground substitutions over the least model — Definition 4's firing count,
// which semi-naive and the parallel runtime must hit with equality
// (Theorems 2 and 6 met without rederivation).
func referenceModel(t *testing.T, g *Program) (map[string]*relation.Reference, int64) {
	t.Helper()
	rules, facts := g.Prog.FactTuples()
	for _, r := range rules {
		if len(r.Negated) > 0 || len(r.Constraints) > 0 {
			t.Fatalf("reference evaluator expects pure positive rules, got %s", g.Prog.FormatRule(r))
		}
	}
	store := make(map[string]*relation.Reference)
	rel := func(pred string, arity int) *relation.Reference {
		r, ok := store[pred]
		if !ok {
			r = relation.NewReference(arity)
			store[pred] = r
		}
		return r
	}
	for pred, arity := range g.Arities {
		rel(pred, arity)
	}
	for pred, rows := range facts {
		for _, row := range rows {
			rel(pred, len(row)).Insert(relation.Tuple(row))
		}
	}
	for pred, r := range g.EDB {
		for i := 0; i < r.Len(); i++ {
			rel(pred, r.Arity()).Insert(r.Row(i))
		}
	}

	// enumerate walks one rule's body left to right, trying every row of
	// every body relation against the partial substitution.
	enumerate := func(r ast.Rule, fn func(sub ast.Subst)) {
		var walk func(i int, sub ast.Subst)
		walk = func(i int, sub ast.Subst) {
			if i == len(r.Body) {
				fn(sub)
				return
			}
			a := r.Body[i]
			body := rel(a.Pred, a.Arity())
			for _, row := range body.Rows() {
				next := sub.Clone()
				if ast.MatchAtom(a, row, next) {
					walk(i+1, next)
				}
			}
		}
		walk(0, ast.Subst{})
	}
	ground := func(r ast.Rule, sub ast.Subst) relation.Tuple {
		out := make(relation.Tuple, r.Head.Arity())
		for i, term := range r.Head.Args {
			if term.IsVar() {
				v, ok := sub.Lookup(term.VarName)
				if !ok {
					t.Fatalf("unsafe rule slipped past the generator: %s", g.Prog.FormatRule(r))
				}
				out[i] = v
			} else {
				out[i] = term.Value
			}
		}
		return out
	}

	for changed := true; changed; {
		changed = false
		for _, r := range rules {
			head := rel(r.Head.Pred, r.Head.Arity())
			enumerate(r, func(sub ast.Subst) {
				if head.Insert(ground(r, sub)) {
					changed = true
				}
			})
		}
	}

	var distinct int64
	for _, r := range rules {
		enumerate(r, func(ast.Subst) { distinct++ })
	}
	return store, distinct
}

// TestEnginesMatchReferenceStore is the storage-layer differential test:
// on ≥50 random programs, all three engines — naive, semi-naive and the
// parallel runtime — running on the flat arena-backed store must produce
// exactly the least model computed by the independent Reference-store
// evaluator, and the exact engines must report precisely the reference
// count of distinct ground substitutions as their firings.
func TestEnginesMatchReferenceStore(t *testing.T) {
	const seeds = 50
	for seed := int64(0); seed < seeds; seed++ {
		g := Generate(Config{}, seed)
		ref, distinct := referenceModel(t, g)

		check := func(engine string, out relation.Store) {
			for _, pred := range g.IDB() {
				if !ref[pred].EqualRelation(out[pred]) {
					t.Fatalf("seed %d: %s disagrees with the reference store on %s\nprogram:\n%s",
						seed, engine, pred, g.Prog)
				}
			}
		}

		sn, snStats, err := seminaive.Eval(g.Prog, g.EDB, seminaive.Options{})
		if err != nil {
			t.Fatalf("seed %d: semi-naive: %v", seed, err)
		}
		check("semi-naive", sn)
		if snStats.Firings != distinct {
			t.Errorf("seed %d: semi-naive fired %d, reference counts %d distinct substitutions\nprogram:\n%s",
				seed, snStats.Firings, distinct, g.Prog)
		}

		nv, _, err := seminaive.Eval(g.Prog, g.EDB, seminaive.Options{Naive: true})
		if err != nil {
			t.Fatalf("seed %d: naive: %v", seed, err)
		}
		check("naive", nv)

		n := 2 + int(seed%3)
		spec, err := generalSpec(g, n, uint64(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		p, err := parallel.BuildGeneral(g.Prog, spec)
		if err != nil {
			t.Fatalf("seed %d: build: %v\n%s", seed, err, g.Prog)
		}
		res, err := parallel.Run(p, g.EDB, parallel.RunConfig{})
		if err != nil {
			t.Fatalf("seed %d: run: %v", seed, err)
		}
		check("parallel", res.Output)
		if got := res.Stats.TotalFirings(); got != distinct {
			t.Errorf("seed %d: parallel fired %d, reference counts %d\nprogram:\n%s",
				seed, got, distinct, g.Prog)
		}
	}
}
