// Package randprog generates random safe Datalog programs and matching
// databases for differential testing: the naive engine, the semi-naive
// engine, the declarative rewrites and the parallel runtime must all agree
// on the least model of every generated program, and the non-redundancy
// theorems must hold on every one of them.
package randprog

import (
	"fmt"
	"math/rand"

	"parlog/internal/ast"
	"parlog/internal/relation"
)

// Config bounds the generator. The zero value is replaced by Defaults.
type Config struct {
	// IDBPreds and EDBPreds are the numbers of derived and base predicates.
	IDBPreds, EDBPreds int
	// MaxArity bounds predicate arities (min 1).
	MaxArity int
	// MaxRulesPerPred bounds how many rules define each derived predicate.
	MaxRulesPerPred int
	// MaxBodyAtoms bounds rule body length (min 1).
	MaxBodyAtoms int
	// ConstPool is the number of distinct constants in the database.
	ConstPool int
	// MaxFactsPerPred bounds base relation sizes.
	MaxFactsPerPred int
	// RecursionBias in [0,1] is the probability that a body atom position
	// uses a derived predicate (creating potential recursion).
	RecursionBias float64
	// NegationProb in [0,1] adds, with this probability per rule, one
	// negated atom over a strictly lower-indexed derived predicate. Combined
	// with Layered it guarantees stratified programs by construction.
	NegationProb float64
	// Layered restricts rule bodies of p_j to derived predicates p_i with
	// i ≤ j, making the index a stratification witness.
	Layered bool
}

// Defaults returns a configuration that produces small but structurally
// diverse programs: mutual recursion, non-linear rules, repeated variables
// and constants in bodies all occur.
func Defaults() Config {
	return Config{
		IDBPreds:        3,
		EDBPreds:        3,
		MaxArity:        3,
		MaxRulesPerPred: 3,
		MaxBodyAtoms:    3,
		ConstPool:       6,
		MaxFactsPerPred: 12,
		RecursionBias:   0.4,
	}
}

// Program is a generated program together with its database.
type Program struct {
	Prog *ast.Program
	EDB  relation.Store
	// Arities records every predicate's arity.
	Arities map[string]int
}

// Generate produces a random safe Datalog program. The same seed and config
// always produce the same program.
func Generate(cfg Config, seed int64) *Program {
	if cfg.IDBPreds == 0 {
		cfg = Defaults()
	}
	rng := rand.New(rand.NewSource(seed))

	arities := make(map[string]int)
	var idb, edb []string
	for i := 0; i < cfg.IDBPreds; i++ {
		p := fmt.Sprintf("p%d", i)
		idb = append(idb, p)
		arities[p] = 1 + rng.Intn(cfg.MaxArity)
	}
	for i := 0; i < cfg.EDBPreds; i++ {
		e := fmt.Sprintf("e%d", i)
		edb = append(edb, e)
		arities[e] = 1 + rng.Intn(cfg.MaxArity)
	}

	prog := ast.NewProgram()
	consts := make([]ast.Value, cfg.ConstPool)
	for i := range consts {
		consts[i] = prog.Interner.Intern(fmt.Sprintf("c%d", i))
	}

	varNames := []string{"X", "Y", "Z", "U", "V", "W"}

	for hi, head := range idb {
		nRules := 1 + rng.Intn(cfg.MaxRulesPerPred)
		for r := 0; r < nRules; r++ {
			// Build the body first; head variables are then drawn from body
			// variables, which guarantees safety by construction.
			nBody := 1 + rng.Intn(cfg.MaxBodyAtoms)
			var body []ast.Atom
			var bodyVars []string
			// Ensure at least one EDB atom so the rule can fire at all
			// (all-IDB bodies are legal but usually vacuous).
			for b := 0; b < nBody; b++ {
				var pred string
				if b == 0 || rng.Float64() >= cfg.RecursionBias {
					pred = edb[rng.Intn(len(edb))]
				} else if cfg.Layered {
					pred = idb[rng.Intn(hi+1)]
				} else {
					pred = idb[rng.Intn(len(idb))]
				}
				args := make([]ast.Term, arities[pred])
				for a := range args {
					switch {
					case rng.Float64() < 0.15:
						args[a] = ast.C(consts[rng.Intn(len(consts))])
					default:
						v := varNames[rng.Intn(len(varNames))]
						args[a] = ast.V(v)
						found := false
						for _, bv := range bodyVars {
							if bv == v {
								found = true
							}
						}
						if !found {
							bodyVars = append(bodyVars, v)
						}
					}
				}
				body = append(body, ast.Atom{Pred: pred, Args: args})
			}
			// Guarantee at least one body variable so every rule admits a
			// discriminating sequence (the schemes need a nonempty v(r)).
			if len(bodyVars) == 0 {
				v := varNames[rng.Intn(len(varNames))]
				body[0].Args[0] = ast.V(v)
				bodyVars = append(bodyVars, v)
			}
			// Optionally negate a strictly lower derived predicate; its
			// variables must come from the positive body (safety).
			var negated []ast.Atom
			if cfg.NegationProb > 0 && hi > 0 && rng.Float64() < cfg.NegationProb {
				pred := idb[rng.Intn(hi)]
				args := make([]ast.Term, arities[pred])
				for a := range args {
					if rng.Float64() < 0.2 {
						args[a] = ast.C(consts[rng.Intn(len(consts))])
					} else {
						args[a] = ast.V(bodyVars[rng.Intn(len(bodyVars))])
					}
				}
				negated = append(negated, ast.Atom{Pred: pred, Args: args})
			}
			headArgs := make([]ast.Term, arities[head])
			for a := range headArgs {
				if len(bodyVars) == 0 || rng.Float64() < 0.1 {
					headArgs[a] = ast.C(consts[rng.Intn(len(consts))])
				} else {
					headArgs[a] = ast.V(bodyVars[rng.Intn(len(bodyVars))])
				}
			}
			prog.AddRule(ast.Rule{Head: ast.Atom{Pred: head, Args: headArgs}, Body: body, Negated: negated})
		}
	}

	store := relation.Store{}
	for _, e := range edb {
		rel := store.Get(e, arities[e])
		n := rng.Intn(cfg.MaxFactsPerPred + 1)
		for k := 0; k < n; k++ {
			t := make(relation.Tuple, arities[e])
			for c := range t {
				t[c] = consts[rng.Intn(len(consts))]
			}
			rel.Insert(t)
		}
	}
	return &Program{Prog: prog, EDB: store, Arities: arities}
}

// IDB returns the generated derived predicate names.
func (p *Program) IDB() []string { return p.Prog.IDBPreds() }
