package randprog

import (
	"testing"

	"parlog/internal/parallel"
	"parlog/internal/relation"
	"parlog/internal/seminaive"
)

// TestGreedyPlannerMatchesReference runs all three engines with the greedy
// join planner ON over 50 random programs and checks (a) model equality
// against the brute-force reference store and (b) firing counts identical
// to the planner-OFF baseline — join order changes which substitutions are
// enumerated in what order, never which substitutions exist.
func TestGreedyPlannerMatchesReference(t *testing.T) {
	const seeds = 50
	for seed := int64(0); seed < seeds; seed++ {
		g := Generate(Config{}, seed)
		ref, distinct := referenceModel(t, g)

		check := func(engine string, out relation.Store) {
			t.Helper()
			for _, pred := range g.IDB() {
				if !ref[pred].EqualRelation(out[pred]) {
					t.Fatalf("seed %d: %s (greedy planner) disagrees with the reference store on %s\nprogram:\n%s",
						seed, engine, pred, g.Prog)
				}
			}
		}

		// Planner-OFF baseline firing count.
		_, baseStats, err := seminaive.Eval(g.Prog, g.EDB, seminaive.Options{})
		if err != nil {
			t.Fatalf("seed %d: baseline: %v", seed, err)
		}

		for _, mode := range []seminaive.PlanMode{seminaive.PlanGreedy, seminaive.PlanLeftToRight} {
			sn, snStats, err := seminaive.Eval(g.Prog, g.EDB, seminaive.Options{Planner: mode})
			if err != nil {
				t.Fatalf("seed %d: semi-naive %v: %v", seed, mode, err)
			}
			check("semi-naive/"+mode.String(), sn)
			if snStats.Firings != baseStats.Firings || snStats.Firings != distinct {
				t.Errorf("seed %d: semi-naive %v fired %d, baseline %d, reference %d\nprogram:\n%s",
					seed, mode, snStats.Firings, baseStats.Firings, distinct, g.Prog)
			}
		}

		nv, _, err := seminaive.Eval(g.Prog, g.EDB, seminaive.Options{Naive: true, Planner: seminaive.PlanGreedy})
		if err != nil {
			t.Fatalf("seed %d: naive greedy: %v", seed, err)
		}
		check("naive", nv)

		n := 2 + int(seed%3)
		spec, err := generalSpec(g, n, uint64(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		p, err := parallel.BuildGeneral(g.Prog, spec)
		if err != nil {
			t.Fatalf("seed %d: build: %v\n%s", seed, err, g.Prog)
		}
		res, err := parallel.Run(p, g.EDB, parallel.RunConfig{Planner: seminaive.PlanGreedy})
		if err != nil {
			t.Fatalf("seed %d: run: %v", seed, err)
		}
		check("parallel", res.Output)
		if got := res.Stats.TotalFirings(); got != distinct {
			t.Errorf("seed %d: parallel (greedy planner) fired %d, reference counts %d\nprogram:\n%s",
				seed, got, distinct, g.Prog)
		}
	}
}
