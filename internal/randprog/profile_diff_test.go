package randprog

import (
	"testing"

	"parlog/internal/dist"
	"parlog/internal/obs"
	"parlog/internal/parallel"
	"parlog/internal/seminaive"
)

const profileSeeds = 50

// countedFirings sums the counting sink's per-processor generation firings —
// the Definition 4 quantity as reported through the event stream, fully
// independent of the profiler's counters.
func countedFirings(c *obs.Counting) int64 {
	var n int64
	for _, p := range c.Snapshot().Procs {
		n += p.Firings
	}
	return n
}

// TestProfileCountersExactAcrossEngines is the profiler's differential
// test: on profileSeeds random programs, the runtime profile collected by
// each engine — sequential semi-naive, the in-process parallel runtime and
// the distributed TCP engine — must account for exactly the Definition 4
// firing count, three ways at once: the profile's per-rule sum, the
// engine's own statistics, and an independent counting sink all agree; and
// the per-head-predicate firing breakdown of the parallel engines matches
// the sequential one exactly.
func TestProfileCountersExactAcrossEngines(t *testing.T) {
	for seed := int64(0); seed < profileSeeds; seed++ {
		g := Generate(Config{}, seed)

		seqSink := obs.NewCounting()
		_, seqStats, err := seminaive.Eval(g.Prog, g.EDB, seminaive.Options{Profile: true, Sink: seqSink})
		if err != nil {
			t.Fatalf("seed %d: semi-naive: %v", seed, err)
		}
		seqProf := seqStats.Profile
		if seqProf == nil {
			t.Fatalf("seed %d: Options.Profile set but Stats.Profile is nil", seed)
		}
		if got := seqProf.TotalFirings(); got != seqStats.Firings {
			t.Fatalf("seed %d: sequential profile sums %d firings, stats say %d\nprogram:\n%s",
				seed, got, seqStats.Firings, g.Prog)
		}
		if got := countedFirings(seqSink); got != seqStats.Firings {
			t.Fatalf("seed %d: counting sink saw %d firings, stats say %d", seed, got, seqStats.Firings)
		}
		wantByPred := seqProf.FiringsByPred()

		checkByPred := func(engine string, prof *seminaive.Profile) {
			t.Helper()
			got := prof.FiringsByPred()
			for pred, want := range wantByPred {
				if got[pred] != want {
					t.Fatalf("seed %d: %s profile fired %d for %s, sequential %d\nprogram:\n%s",
						seed, engine, got[pred], pred, want, g.Prog)
				}
			}
			for pred, n := range got {
				if wantByPred[pred] == 0 && n != 0 {
					t.Fatalf("seed %d: %s profile invented %d firings for %s", seed, engine, n, pred)
				}
			}
		}

		n := 2 + int(seed%3)
		spec, err := generalSpec(g, n, uint64(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		p, err := parallel.BuildGeneral(g.Prog, spec)
		if err != nil {
			t.Fatalf("seed %d: build: %v\n%s", seed, err, g.Prog)
		}

		parSink := obs.NewCounting()
		res, err := parallel.Run(p, g.EDB, parallel.RunConfig{Profile: true, Sink: parSink})
		if err != nil {
			t.Fatalf("seed %d: parallel run: %v", seed, err)
		}
		if res.Profile == nil {
			t.Fatalf("seed %d: RunConfig.Profile set but Result.Profile is nil", seed)
		}
		if got := res.Profile.TotalFirings(); got != seqStats.Firings {
			t.Fatalf("seed %d: parallel profile sums %d firings, sequential %d\nprogram:\n%s",
				seed, got, seqStats.Firings, g.Prog)
		}
		if got, want := res.Profile.TotalFirings(), countedFirings(parSink); got != want {
			t.Fatalf("seed %d: parallel profile %d firings, counting sink %d", seed, got, want)
		}
		checkByPred("parallel", res.Profile)
		for _, rp := range res.Profile.Rules {
			if rp.Firings > 0 && len(rp.Procs) == 0 {
				t.Fatalf("seed %d: parallel rule %q fired %d with no processor attribution",
					seed, rp.Key, rp.Firings)
			}
		}

		// The distributed engine carries the same records home over the gob
		// control envelope; merged at the coordinator they must land on the
		// same totals.
		dres, err := dist.Run(p, g.EDB, dist.Config{Profile: true})
		if err != nil {
			t.Fatalf("seed %d: dist run: %v", seed, err)
		}
		if dres.Profile == nil {
			t.Fatalf("seed %d: Config.Profile set but dist Result.Profile is nil", seed)
		}
		if got := dres.Profile.TotalFirings(); got != seqStats.Firings {
			t.Fatalf("seed %d: dist profile sums %d firings, sequential %d\nprogram:\n%s",
				seed, got, seqStats.Firings, g.Prog)
		}
		checkByPred("dist", dres.Profile)
	}
}

// TestProfileDisabledStaysNil pins the opt-out: no engine allocates a
// profile unless asked, so the serving path's nil checks stay on the cheap
// branch.
func TestProfileDisabledStaysNil(t *testing.T) {
	g := Generate(Config{}, 1)
	_, stats, err := seminaive.Eval(g.Prog, g.EDB, seminaive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Profile != nil {
		t.Error("sequential Stats.Profile non-nil without Options.Profile")
	}
	spec, err := generalSpec(g, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := parallel.BuildGeneral(g.Prog, spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := parallel.Run(p, g.EDB, parallel.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile != nil {
		t.Error("parallel Result.Profile non-nil without RunConfig.Profile")
	}
}
