package rewrite

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"parlog/internal/analysis"
	"parlog/internal/ast"
	"parlog/internal/hashpart"
	"parlog/internal/parser"
	"parlog/internal/relation"
	"parlog/internal/seminaive"
)

const ancestorRules = `
anc(X, Y) :- par(X, Y).
anc(X, Y) :- par(X, Z), anc(Z, Y).
`

// randomParFacts renders n random par edges over the given node count.
func randomParFacts(nodes, edges int, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	seen := map[[2]int]bool{}
	for len(seen) < edges {
		e := [2]int{rng.Intn(nodes), rng.Intn(nodes)}
		if seen[e] {
			continue
		}
		seen[e] = true
		fmt.Fprintf(&b, "par(v%d, v%d).\n", e[0], e[1])
	}
	return b.String()
}

func chainFacts(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "par(v%d, v%d).\n", i, i+1)
	}
	return b.String()
}

// evalBoth evaluates the original program and a rewritten union program and
// returns both stores and stats.
func evalBoth(t *testing.T, prog *ast.Program, rw *Rewritten) (orig, par relation.Store, origStats, parStats *seminaive.Stats) {
	t.Helper()
	orig, origStats, err := seminaive.Eval(prog, relation.Store{}, seminaive.Options{})
	if err != nil {
		t.Fatalf("sequential eval: %v", err)
	}
	par, parStats, err = seminaive.Eval(rw.Program, relation.Store{}, seminaive.Options{})
	if err != nil {
		t.Fatalf("rewritten eval: %v", err)
	}
	return orig, par, origStats, parStats
}

// outFirings sums firings of rules deriving t_out^i predicates — the
// "generation" work that Definition 1 and Theorems 2/6 count.
func outFirings(stats *seminaive.Stats) int64 {
	var n int64
	for pred, c := range stats.FiringsByPred {
		if strings.Contains(pred, "@out@") {
			n += c
		}
	}
	return n
}

func mustSirup(t *testing.T, prog *ast.Program) *analysis.Sirup {
	t.Helper()
	s, err := analysis.ExtractSirup(prog)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// --- Section 3 scheme Q ---

// TestQExample1 reproduces Example 1: v(r)=v(e)=⟨Y⟩. The least model must
// match the sequential one (Theorem 1), no inter-processor channel may carry
// a tuple, and generation firings must equal the sequential count
// (Theorem 2, with equality on this scheme).
func TestQExample1(t *testing.T) {
	prog := parser.MustParse(ancestorRules + randomParFacts(10, 18, 1))
	s := mustSirup(t, prog)
	const N = 4
	rw, err := Q(s, SirupSpec{
		Procs: hashpart.RangeProcs(N),
		VR:    []string{"Y"}, VE: []string{"Y"},
		H: hashpart.ModHash{N: N},
	})
	if err != nil {
		t.Fatal(err)
	}
	orig, par, origStats, parStats := evalBoth(t, prog, rw)
	if !orig["anc"].Equal(par["anc"]) {
		t.Fatalf("Theorem 1 violated: anc differs\nseq: %v\npar: %v", orig["anc"], par["anc"])
	}
	// Example 1's claim: anc_ij = ∅ whenever i ≠ j.
	for i := 0; i < N; i++ {
		for j := 0; j < N; j++ {
			ch := par[ChanPred("anc", i, j)]
			if i != j && ch != nil && ch.Len() > 0 {
				t.Errorf("channel %d→%d carries %d tuples, want 0", i, j, ch.Len())
			}
		}
	}
	if got, want := outFirings(parStats), origStats.Firings; got != want {
		t.Errorf("generation firings = %d, sequential = %d (Theorem 2 equality)", got, want)
	}
}

// TestQExample3 reproduces Example 3: v(e)=⟨X⟩, v(r)=⟨Z⟩ — point-to-point
// communication, non-redundant.
func TestQExample3(t *testing.T) {
	prog := parser.MustParse(ancestorRules + randomParFacts(12, 24, 2))
	s := mustSirup(t, prog)
	const N = 3
	rw, err := Q(s, SirupSpec{
		Procs: hashpart.RangeProcs(N),
		VR:    []string{"Z"}, VE: []string{"X"},
		H: hashpart.ModHash{N: N},
	})
	if err != nil {
		t.Fatal(err)
	}
	orig, par, origStats, parStats := evalBoth(t, prog, rw)
	if !orig["anc"].Equal(par["anc"]) {
		t.Fatal("Theorem 1 violated for Example 3")
	}
	if got, want := outFirings(parStats), origStats.Firings; got != want {
		t.Errorf("generation firings = %d, sequential = %d", got, want)
	}
	// Property 1 of Example 3: a tuple (a,b) ∈ anc_out^i is sent only to the
	// unique processor h(a); so every channel tuple's first component hashes
	// to the receiving processor.
	h := hashpart.ModHash{N: N}
	for i := 0; i < N; i++ {
		for j := 0; j < N; j++ {
			ch := par[ChanPred("anc", i, j)]
			if ch == nil {
				continue
			}
			for _, tuple := range ch.Rows() {
				if h.Apply([]ast.Value{tuple[0]}) != j {
					t.Errorf("channel %d→%d holds %v whose Z does not hash to %d", i, j, tuple, j)
				}
			}
		}
	}
}

// TestQExample2 reproduces Example 2 (Valduriez–Khoshafian): par is
// arbitrarily fragmented, h is induced by the fragmentation, v(r)=⟨X,Z⟩,
// v(e)=⟨X,Y⟩. Because X does not occur in Ȳ=(Z,Y), sending rules are
// unconstrained broadcasts; the execution stays correct and non-redundant.
func TestQExample2(t *testing.T) {
	prog := parser.MustParse(ancestorRules + randomParFacts(10, 20, 3))
	s := mustSirup(t, prog)
	const N = 3

	// Arbitrary fragmentation of par: round-robin by insertion order.
	_, facts := prog.FactTuples()
	frags := map[int]*relation.Relation{}
	for i := 0; i < N; i++ {
		frags[i] = relation.New(2)
	}
	for k, tuple := range facts["par"] {
		frags[k%N].Insert(tuple)
	}
	h, err := hashpart.NewFragmentation(frags, hashpart.ModHash{N: N})
	if err != nil {
		t.Fatal(err)
	}

	rw, err := Q(s, SirupSpec{
		Procs: hashpart.RangeProcs(N),
		VR:    []string{"X", "Z"}, VE: []string{"X", "Y"},
		H: h,
	})
	if err != nil {
		t.Fatal(err)
	}
	orig, par, origStats, parStats := evalBoth(t, prog, rw)
	if !orig["anc"].Equal(par["anc"]) {
		t.Fatal("Theorem 1 violated for Example 2")
	}
	if got, want := outFirings(parStats), origStats.Firings; got != want {
		t.Errorf("generation firings = %d, sequential = %d", got, want)
	}
	// The sending rules must be broadcasts (no constraint).
	for _, r := range rw.ByProc[0] {
		if strings.HasPrefix(r.Head.Pred, "anc@ch@") && len(r.Constraints) != 0 {
			t.Errorf("Example 2 sending rule unexpectedly constrained: %s", rw.Program.FormatRule(r))
		}
	}
}

// TestQSingleProcessor: with |P| = 1 the scheme degenerates to sequential
// evaluation.
func TestQSingleProcessor(t *testing.T) {
	prog := parser.MustParse(ancestorRules + chainFacts(6))
	s := mustSirup(t, prog)
	rw, err := Q(s, SirupSpec{
		Procs: hashpart.RangeProcs(1),
		VR:    []string{"Z"}, VE: []string{"X"},
		H: hashpart.ModHash{N: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	orig, par, _, _ := evalBoth(t, prog, rw)
	if !orig["anc"].Equal(par["anc"]) {
		t.Error("single-processor Q differs from sequential")
	}
}

func TestQValidation(t *testing.T) {
	prog := parser.MustParse(ancestorRules + chainFacts(2))
	s := mustSirup(t, prog)
	// W does not occur in the rule.
	if _, err := Q(s, SirupSpec{
		Procs: hashpart.RangeProcs(2),
		VR:    []string{"W"}, VE: []string{"X"},
		H: hashpart.ModHash{N: 2},
	}); err == nil {
		t.Error("bad v(r) accepted")
	}
	if _, err := Q(s, SirupSpec{
		Procs: hashpart.RangeProcs(2),
		VR:    []string{"Z"}, VE: []string{"Q9"},
		H: hashpart.ModHash{N: 2},
	}); err == nil {
		t.Error("bad v(e) accepted")
	}
	if _, err := Q(s, SirupSpec{VR: []string{"Z"}, VE: []string{"X"}, H: hashpart.ModHash{N: 2}}); err == nil {
		t.Error("nil processor set accepted")
	}
}

func TestQListingShape(t *testing.T) {
	prog := parser.MustParse(ancestorRules + chainFacts(1))
	s := mustSirup(t, prog)
	rw, err := Q(s, SirupSpec{
		Procs: hashpart.RangeProcs(2),
		VR:    []string{"Z"}, VE: []string{"X"},
		H: hashpart.ModHash{N: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	l := rw.Listing(0)
	for _, want := range []string{
		"anc@out@0(X, Y) :- par(X, Y), hmod2(X) = 0.",
		"anc@out@0(X, Y) :- par(X, Z), anc@in@0(Z, Y), hmod2(Z) = 0.",
		"anc@ch@0@1(Z, Y) :- anc@out@0(Z, Y), hmod2(Z) = 1.",
		"anc@in@0(W1, W2) :- anc@ch@1@0(W1, W2).",
		"anc(W1, W2) :- anc@out@0(W1, W2).",
	} {
		if !strings.Contains(l, want) {
			t.Errorf("listing missing %q:\n%s", want, l)
		}
	}
}

// --- Section 6 schemes ---

// TestNoCommRedundant checks the no-communication scheme: correct results
// and generation firings ≥ sequential (duplication is allowed, and on a
// shared chain across 2+ processors it actually occurs).
func TestNoCommRedundant(t *testing.T) {
	prog := parser.MustParse(ancestorRules + chainFacts(12))
	s := mustSirup(t, prog)
	rw, err := NoComm(s, NoCommSpec{
		Procs: hashpart.RangeProcs(3),
		VE:    []string{"X"},
		HP:    hashpart.ModHash{N: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	orig, par, origStats, parStats := evalBoth(t, prog, rw)
	if !orig["anc"].Equal(par["anc"]) {
		t.Fatal("no-communication scheme incorrect")
	}
	if got, want := outFirings(parStats), origStats.Firings; got < want {
		t.Errorf("generation firings = %d < sequential %d: every substitution must fire somewhere", got, want)
	}
	// No channel predicates at all.
	for pred := range par {
		if strings.Contains(pred, "@ch@") {
			t.Errorf("no-communication scheme has channel predicate %s", pred)
		}
	}
}

// TestREqualsNoCommAtConstantExtreme: R with h_i = Constant(i) behaves like
// the no-communication scheme (Section 6, property 1) except tuples cycle
// through the self-channel.
func TestRExtremes(t *testing.T) {
	src := ancestorRules + randomParFacts(9, 16, 4)
	const N = 3

	build := func(hi func(i int) hashpart.Func) (relation.Store, *seminaive.Stats) {
		prog := parser.MustParse(src)
		s := mustSirup(t, prog)
		rw, err := R(s, RSpec{
			Procs: hashpart.RangeProcs(N),
			VR:    []string{"Z"}, VE: []string{"X"},
			HP: hashpart.ModHash{N: N},
			HI: hi,
		})
		if err != nil {
			t.Fatal(err)
		}
		store, stats, err := seminaive.Eval(rw.Program, relation.Store{}, seminaive.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return store, stats
	}

	prog := parser.MustParse(src)
	orig, origStats, err := seminaive.Eval(prog, relation.Store{}, seminaive.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Extreme 1: h_i = Constant(i) — no inter-processor tuples (Theorem 4
	// correctness, redundancy allowed).
	store, stats := build(func(i int) hashpart.Func { return hashpart.Constant{Proc: i} })
	if !orig["anc"].Equal(store["anc"]) {
		t.Error("R/Constant incorrect")
	}
	for i := 0; i < N; i++ {
		for j := 0; j < N; j++ {
			if i == j {
				continue
			}
			if ch := store[ChanPred("anc", i, j)]; ch != nil && ch.Len() > 0 {
				t.Errorf("R/Constant: channel %d→%d carries %d tuples", i, j, ch.Len())
			}
		}
	}
	if outFirings(stats) < origStats.Firings {
		t.Error("R/Constant fired fewer generations than sequential")
	}

	// Extreme 2: h_i = h for all i — non-redundant, equals the sequential
	// firing count (the paper: "this program is identical to Q_i").
	common := hashpart.ModHash{N: N}
	store, stats = build(func(int) hashpart.Func { return common })
	if !orig["anc"].Equal(store["anc"]) {
		t.Error("R/common-h incorrect")
	}
	if got, want := outFirings(stats), origStats.Firings; got != want {
		t.Errorf("R/common-h generation firings = %d, want %d", got, want)
	}
}

// TestRMixSpectrum: intermediate h_i trade communication for redundancy;
// correctness must hold at every point (Theorem 4).
func TestRMixSpectrum(t *testing.T) {
	src := ancestorRules + randomParFacts(10, 20, 5)
	const N = 3
	prog := parser.MustParse(src)
	orig, origStats, err := seminaive.Eval(prog, relation.Store{}, seminaive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	shared := hashpart.ModHash{N: N}
	for _, keep := range []int{0, 250, 500, 750, 1000} {
		prog := parser.MustParse(src)
		s := mustSirup(t, prog)
		rw, err := R(s, RSpec{
			Procs: hashpart.RangeProcs(N),
			VR:    []string{"Z"}, VE: []string{"X"},
			HP: hashpart.ModHash{N: N},
			HI: func(i int) hashpart.Func {
				return hashpart.Mix{Local: i, Shared: shared, KeepPermille: keep}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		store, stats, err := seminaive.Eval(rw.Program, relation.Store{}, seminaive.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !orig["anc"].Equal(store["anc"]) {
			t.Errorf("keep=%d: Theorem 4 violated", keep)
		}
		if outFirings(stats) < origStats.Firings {
			t.Errorf("keep=%d: fewer generation firings than sequential", keep)
		}
	}
}

func TestRValidatesSection6Restriction(t *testing.T) {
	// v(r)=⟨X⟩: X occurs in the body but not in Ȳ=(Z,Y) — Section 6
	// requires v(r) ⊆ Ȳ.
	prog := parser.MustParse(ancestorRules + chainFacts(2))
	s := mustSirup(t, prog)
	_, err := R(s, RSpec{
		Procs: hashpart.RangeProcs(2),
		VR:    []string{"X"}, VE: []string{"X"},
		HP: hashpart.ModHash{N: 2},
		HI: func(int) hashpart.Func { return hashpart.ModHash{N: 2} },
	})
	if err == nil {
		t.Error("R accepted v(r) ⊄ Ȳ")
	}
}

// --- Section 7 general scheme ---

// TestGeneralExample8 reproduces Example 8: the non-linear ancestor program
// with v(r1)=⟨Y⟩, v(r2)=⟨Z⟩ and a common h.
func TestGeneralExample8(t *testing.T) {
	src := `
anc(X, Y) :- par(X, Y).
anc(X, Y) :- anc(X, Z), anc(Z, Y).
` + randomParFacts(10, 18, 6)
	prog := parser.MustParse(src)
	const N = 4
	h := hashpart.ModHash{N: N}
	rw, err := General(prog, GeneralSpec{
		Procs: hashpart.RangeProcs(N),
		Rules: []RuleSpec{
			{Seq: []string{"Y"}, H: h},
			{Seq: []string{"Z"}, H: h},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	orig, par, origStats, parStats := evalBoth(t, prog, rw)
	if !orig["anc"].Equal(par["anc"]) {
		t.Fatal("Theorem 5 violated on Example 8")
	}
	// Theorem 6: parallel generation firings do not exceed sequential; with
	// v(r2)=⟨Z⟩ shared by both occurrences the partition is exact.
	if got, want := outFirings(parStats), origStats.Firings; got > want {
		t.Errorf("Theorem 6 violated: %d parallel > %d sequential", got, want)
	}
}

func TestGeneralExample8Listing(t *testing.T) {
	prog := parser.MustParse(`
anc(X, Y) :- par(X, Y).
anc(X, Y) :- anc(X, Z), anc(Z, Y).
par(a, b).
`)
	h := hashpart.ModHash{N: 2}
	rw, err := General(prog, GeneralSpec{
		Procs: hashpart.RangeProcs(2),
		Rules: []RuleSpec{
			{Seq: []string{"Y"}, H: h},
			{Seq: []string{"Z"}, H: h},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	l := rw.Listing(0)
	for _, want := range []string{
		// Processing (Example 8 step 1).
		"anc@out@0(X, Y) :- par(X, Y), hmod2(Y) = 0.",
		"anc@out@0(X, Y) :- anc@in@0(X, Z), anc@in@0(Z, Y), hmod2(Z) = 0.",
		// Sending for both occurrences (step 2).
		"anc@ch@0@1(X, Z) :- anc@out@0(X, Z), hmod2(Z) = 1.",
		"anc@ch@0@1(Z, Y) :- anc@out@0(Z, Y), hmod2(Z) = 1.",
		// Receiving and pooling (steps 3 and 4).
		"anc@in@0(W1, W2) :- anc@ch@1@0(W1, W2).",
		"anc(W1, W2) :- anc@out@0(W1, W2).",
	} {
		if !strings.Contains(l, want) {
			t.Errorf("listing missing %q:\n%s", want, l)
		}
	}
}

// TestGeneralMutualRecursion: the scheme must handle several recursive
// predicates deriving each other.
func TestGeneralMutualRecursion(t *testing.T) {
	var b strings.Builder
	b.WriteString(`
even(X) :- zero(X).
even(Y) :- succ(X, Y), odd(X).
odd(Y) :- succ(X, Y), even(X).
zero(n0).
`)
	for i := 0; i < 12; i++ {
		fmt.Fprintf(&b, "succ(n%d, n%d).\n", i, i+1)
	}
	prog := parser.MustParse(b.String())
	h := hashpart.ModHash{N: 3}
	rw, err := General(prog, GeneralSpec{
		Procs: hashpart.RangeProcs(3),
		Rules: []RuleSpec{
			{Seq: []string{"X"}, H: h},
			{Seq: []string{"Y"}, H: h},
			{Seq: []string{"Y"}, H: h},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	orig, par, _, _ := evalBoth(t, prog, rw)
	for _, pred := range []string{"even", "odd"} {
		if !orig[pred].Equal(par[pred]) {
			t.Errorf("Theorem 5 violated for %s", pred)
		}
	}
}

// TestGeneralLinearAsSpecialCase: running the general scheme on the linear
// ancestor program with v(r)=⟨Z⟩ must agree with Q/Example 3.
func TestGeneralLinearAsSpecialCase(t *testing.T) {
	src := ancestorRules + randomParFacts(8, 14, 7)
	prog := parser.MustParse(src)
	const N = 2
	h := hashpart.ModHash{N: N}
	rw, err := General(prog, GeneralSpec{
		Procs: hashpart.RangeProcs(N),
		Rules: []RuleSpec{
			{Seq: []string{"X"}, H: h}, // exit rule: v=⟨X⟩
			{Seq: []string{"Z"}, H: h}, // recursive rule: v=⟨Z⟩
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	orig, par, origStats, parStats := evalBoth(t, prog, rw)
	if !orig["anc"].Equal(par["anc"]) {
		t.Fatal("general scheme on linear sirup incorrect")
	}
	if got, want := outFirings(parStats), origStats.Firings; got != want {
		t.Errorf("generation firings = %d, want %d", got, want)
	}
}

func TestGeneralValidation(t *testing.T) {
	prog := parser.MustParse(ancestorRules + chainFacts(2))
	h := hashpart.ModHash{N: 2}
	if _, err := General(prog, GeneralSpec{
		Procs: hashpart.RangeProcs(2),
		Rules: []RuleSpec{{Seq: []string{"X"}, H: h}}, // one spec for two rules
	}); err == nil {
		t.Error("wrong spec count accepted")
	}
	if _, err := General(prog, GeneralSpec{
		Procs: hashpart.RangeProcs(2),
		Rules: []RuleSpec{
			{Seq: []string{"NOPE"}, H: h},
			{Seq: []string{"Z"}, H: h},
		},
	}); err == nil {
		t.Error("unknown discriminating variable accepted")
	}
}

// TestQRandomizedEquivalence is the Theorem 1 property test: across random
// graphs, hash functions and processor counts, the rewritten program's least
// model equals the original's.
func TestQRandomizedEquivalence(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed + 100))
		n := 2 + rng.Intn(4)
		src := ancestorRules + randomParFacts(8+rng.Intn(6), 10+rng.Intn(14), seed)
		prog := parser.MustParse(src)
		s := mustSirup(t, prog)
		// Random legal choice of v(r) among ⟨Y⟩, ⟨Z⟩, ⟨X,Z⟩, ⟨Z,Y⟩.
		vrChoices := [][]string{{"Y"}, {"Z"}, {"X", "Z"}, {"Z", "Y"}}
		vr := vrChoices[rng.Intn(len(vrChoices))]
		veChoices := [][]string{{"X"}, {"Y"}, {"X", "Y"}}
		ve := veChoices[rng.Intn(len(veChoices))]
		rw, err := Q(s, SirupSpec{
			Procs: hashpart.RangeProcs(n),
			VR:    vr, VE: ve,
			H:  hashpart.ModHash{N: n, Seed: uint64(seed)},
			HP: hashpart.ModHash{N: n, Seed: uint64(seed * 7)},
		})
		if err != nil {
			t.Fatal(err)
		}
		orig, par, origStats, parStats := evalBoth(t, prog, rw)
		if !orig["anc"].Equal(par["anc"]) {
			t.Fatalf("seed %d vr=%v ve=%v n=%d: Theorem 1 violated", seed, vr, ve, n)
		}
		if got, want := outFirings(parStats), origStats.Firings; got != want {
			t.Errorf("seed %d: generation firings %d != sequential %d", seed, got, want)
		}
	}
}

// TestGeneralWithNegationDeclarative: the Section 7 rewrite extended with
// stratified negation — the union program, evaluated sequentially, must
// equal the original stratified semantics.
func TestGeneralWithNegationDeclarative(t *testing.T) {
	src := `
reach(X) :- source(X).
reach(Y) :- reach(X), edge(X, Y).
unreachable(X) :- node(X), !reach(X).
source(v0).
` + randomParFacts(0, 0, 0)
	var b strings.Builder
	b.WriteString(src)
	for i := 0; i < 12; i++ {
		fmt.Fprintf(&b, "node(v%d).\n", i)
	}
	rng := rand.New(rand.NewSource(9))
	for k := 0; k < 18; k++ {
		fmt.Fprintf(&b, "edge(v%d, v%d).\n", rng.Intn(12), rng.Intn(12))
	}
	prog := parser.MustParse(b.String())
	want, _, err := seminaive.Eval(prog, relation.Store{}, seminaive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	h := hashpart.ModHash{N: 3}
	rw, err := General(prog, GeneralSpec{
		Procs: hashpart.RangeProcs(3),
		Rules: []RuleSpec{
			{Seq: []string{"X"}, H: h},
			{Seq: []string{"Y"}, H: h},
			{Seq: []string{"X"}, H: h},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The union program's listing must carry the negation.
	if !strings.Contains(rw.Listing(0), "!reach(X)") {
		t.Errorf("listing lost negation:\n%s", rw.Listing(0))
	}
	got, _, err := seminaive.Eval(rw.Program, relation.Store{}, seminaive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, pred := range []string{"reach", "unreachable"} {
		if !want[pred].Equal(got[pred]) {
			t.Errorf("%s differs between original and union program", pred)
		}
	}
}
