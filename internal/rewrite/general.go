package rewrite

import (
	"fmt"
	"sort"

	"parlog/internal/analysis"
	"parlog/internal/ast"
	"parlog/internal/hashpart"
)

// RuleSpec is the per-rule discriminating choice of the general scheme: a
// discriminating sequence v(r_l) over the rule's variables and a
// discriminating function h_l.
type RuleSpec struct {
	Seq []string
	H   hashpart.Func
}

// GeneralSpec configures the Section 7 scheme for an arbitrary Datalog
// program: one RuleSpec per proper (non-fact) rule, in rule order.
type GeneralSpec struct {
	Procs *hashpart.ProcSet
	Rules []RuleSpec
}

// General rewrites an arbitrary Datalog program M into the Section 7 scheme
// T = ∪ T_i. For every rule r with discriminating sequence v(r) and function
// h, processor i gets the processing rule
//
//	A_out^i :- B*, …, C*, h(v(r)) = i
//
// where derived atoms read t_in^i and base atoms read the base relation
// (their fragments b^i are an operational concern handled by the runtime's
// EDB distribution; under the h(v(r)) = i constraint the declarative
// semantics is identical). Sending rules route every derived atom occurrence
// C of r: C_ij :- C_out^i, h(v(r)) = j when every variable of v(r) occurs in
// C, and unconditionally (a broadcast) otherwise. Receiving and final
// pooling are per derived predicate. Facts of M are copied unchanged.
func General(prog *ast.Program, spec GeneralSpec) (*Rewritten, error) {
	if spec.Procs == nil || spec.Procs.Len() == 0 {
		return nil, fmt.Errorf("rewrite: empty processor set")
	}
	if err := analysis.CheckSafety(prog); err != nil {
		return nil, err
	}
	rules, facts := prog.FactTuples()
	if len(spec.Rules) != len(rules) {
		return nil, fmt.Errorf("rewrite: %d rule specs for %d rules", len(spec.Rules), len(rules))
	}
	for ri, r := range rules {
		if err := hashpart.ValidateSequence(r, spec.Rules[ri].Seq); err != nil {
			return nil, fmt.Errorf("rule %d: %w", ri, err)
		}
	}

	idb := make(map[string]bool)
	arity := make(map[string]int)
	for _, r := range rules {
		idb[r.Head.Pred] = true
		arity[r.Head.Pred] = r.Head.Arity()
	}

	rw := &Rewritten{
		Program: &ast.Program{Interner: prog.Interner},
		ByProc:  make(map[int][]ast.Rule),
		Procs:   spec.Procs,
	}
	for p := range idb {
		rw.Outputs = append(rw.Outputs, p)
	}
	sort.Strings(rw.Outputs)

	for _, i := range spec.Procs.IDs() {
		var ti []ast.Rule

		for ri, r := range rules {
			h := hashpart.AsHashFunc(spec.Rules[ri].H)
			seq := spec.Rules[ri].Seq

			// Processing: A_out^i :- …, h(v(r)) = i. Negated atoms (the
			// stratified-negation extension) keep their original predicate:
			// in the union program that is the pooled relation, which is
			// complete before this rule's stratum fires.
			body := make([]ast.Atom, len(r.Body))
			for bi, a := range r.Body {
				if idb[a.Pred] {
					body[bi] = ast.NewAtom(InPred(a.Pred, i), a.Clone().Args...)
				} else {
					body[bi] = a.Clone()
				}
			}
			var neg []ast.Atom
			for _, a := range r.Negated {
				neg = append(neg, a.Clone())
			}
			ti = append(ti, ast.Rule{
				Head:    ast.NewAtom(OutPred(r.Head.Pred, i), r.Head.Args...),
				Body:    body,
				Negated: neg,
			}.WithConstraints(ast.NewHashConstraint(h, seq, i)))

			// Sending: one rule per derived atom occurrence and destination.
			for _, a := range r.Body {
				if !idb[a.Pred] {
					continue
				}
				checkable := hashpart.ValidateSubsetOf(seq, a.Vars(nil), "atom") == nil
				for _, j := range spec.Procs.IDs() {
					send := ast.Rule{
						Head: ast.NewAtom(ChanPred(a.Pred, i, j), a.Clone().Args...),
						Body: []ast.Atom{ast.NewAtom(OutPred(a.Pred, i), a.Clone().Args...)},
					}
					if checkable {
						send = send.WithConstraints(ast.NewHashConstraint(h, seq, j))
					}
					ti = append(ti, send)
				}
			}
		}

		// Receiving and final pooling, once per derived predicate.
		for _, t := range rw.Outputs {
			w := freshVars(arity[t])
			for _, j := range spec.Procs.IDs() {
				ti = append(ti, ast.NewRule(
					ast.NewAtom(InPred(t, i), w...),
					ast.NewAtom(ChanPred(t, j, i), w...),
				))
			}
			ti = append(ti, ast.NewRule(
				ast.NewAtom(t, w...),
				ast.NewAtom(OutPred(t, i), w...),
			))
		}

		ti = dedupRules(ti)
		rw.ByProc[i] = ti
		for _, r := range ti {
			rw.Program.AddRule(r)
		}
	}

	// Facts pass through unchanged (they are EDB input).
	for pred, tuples := range facts {
		for _, tuple := range tuples {
			args := make([]ast.Term, len(tuple))
			for k, v := range tuple {
				args[k] = ast.C(v)
			}
			rw.Program.AddRule(ast.NewRule(ast.NewAtom(pred, args...)))
		}
	}
	return rw, nil
}

// dedupRules removes syntactically identical rules (two occurrences of the
// same derived atom in one rule generate identical sending rules).
func dedupRules(rules []ast.Rule) []ast.Rule {
	seen := make(map[string]bool, len(rules))
	out := rules[:0]
	for _, r := range rules {
		k := r.String() // includes constraint listings
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, r)
	}
	return out
}
