package rewrite

import (
	"fmt"
	"strings"

	"parlog/internal/ast"
)

// Demand is the result of a magic-sets rewrite: a program specialized to
// one goal atom, evaluating only the portion of the IDB the goal can reach
// through its bound arguments.
type Demand struct {
	// Program is the rewritten program. It is positive, range-restricted
	// Datalog (same class as the input), so every downstream consumer —
	// the parallel schemes, network.Derive, the engines — applies
	// unchanged.
	Program *ast.Program
	// Goal is the adorned goal atom; its predicate names the relation that
	// holds exactly the original goal predicate's tuples matching the
	// goal's bound arguments.
	Goal ast.Atom
	// Adornment is the goal's binding pattern, 'b' for bound (constant)
	// and 'f' for free argument positions.
	Adornment string
	// SeedPred is an EDB predicate the caller must populate with SeedTuple
	// before evaluating Program: it carries the goal's bound constants
	// into the magic fixpoint. Seeding through the EDB (rather than an IDB
	// fact) keeps the rewritten program acceptable to every engine,
	// including the parallel runtime's EDB partitioner.
	SeedPred  string
	SeedTuple []ast.Value
	// MagicRules counts the demand rules (magic + seed) in Program;
	// Rules is the total rule count.
	MagicRules int
	Rules      int
}

// adornedPred names the goal-specialized copy of pred under adornment a.
// '@' cannot appear in parsed identifiers (same collision-freedom argument
// as OutPred).
func adornedPred(pred, a string) string { return pred + "@" + a }

// magicPred names the demand predicate of pred under adornment a: it holds
// the bound-argument combinations for which answers are demanded.
func magicPred(pred, a string) string { return pred + "@m@" + a }

// seedPred names the EDB predicate seeding the goal's own magic set.
func seedPred(pred, a string) string { return pred + "@seed@" + a }

// adornAtom computes the binding pattern of a body atom given the set of
// already-bound variables: constants and bound variables are 'b', the rest
// 'f'.
func adornAtom(a ast.Atom, bound map[string]bool) string {
	var b strings.Builder
	for _, t := range a.Args {
		if !t.IsVar() || bound[t.VarName] {
			b.WriteByte('b')
		} else {
			b.WriteByte('f')
		}
	}
	return b.String()
}

// boundArgs returns the terms of a at the 'b' positions of adornment ad.
func boundArgs(a ast.Atom, ad string) []ast.Term {
	var out []ast.Term
	for i, c := range ad {
		if c == 'b' {
			out = append(out, a.Args[i])
		}
	}
	return out
}

// DemandRewrite specializes prog to goal with the magic-sets (demand)
// transformation under the left-to-right sideways information passing
// strategy. It returns nil (and no error) when the rewrite does not apply:
// the goal has no bound arguments, its predicate is not derived, or the
// program uses negation or constraint atoms (whose strata the rewrite
// could distort). Callers then evaluate the original program.
func DemandRewrite(prog *ast.Program, goal ast.Atom) (*Demand, error) {
	idb := make(map[string]bool)
	arities := prog.Arities()
	for _, r := range prog.Rules {
		if !r.IsFact() {
			idb[r.Head.Pred] = true
		}
	}
	if ar, ok := arities[goal.Pred]; ok && ar != goal.Arity() {
		return nil, fmt.Errorf("rewrite: goal %s has arity %d, program uses %d", goal.Pred, goal.Arity(), ar)
	}
	if !idb[goal.Pred] {
		return nil, nil
	}
	for _, r := range prog.Rules {
		if len(r.Negated) > 0 || len(r.Constraints) > 0 {
			return nil, nil
		}
	}
	goalAd := adornAtom(goal, nil)
	if !strings.Contains(goalAd, "b") {
		return nil, nil
	}

	out := &ast.Program{Interner: prog.Interner}
	d := &Demand{Program: out, Adornment: goalAd}

	// EDB facts pass through untouched; IDB facts are folded into the
	// per-adornment rule groups below (answering only when demanded).
	for _, r := range prog.Rules {
		if r.IsFact() && !idb[r.Head.Pred] {
			out.AddRule(r.Clone())
		}
	}

	type job struct{ pred, ad string }
	queue := []job{{goal.Pred, goalAd}}
	seen := map[job]bool{queue[0]: true}
	magicSeen := map[string]bool{}
	for len(queue) > 0 {
		j := queue[0]
		queue = queue[1:]
		hasBound := strings.Contains(j.ad, "b")
		for _, r := range prog.Rules {
			if r.Head.Pred != j.pred {
				continue
			}
			// The adorned rule's body: the magic guard, then the original
			// atoms left to right with IDB atoms renamed to their
			// adornment under the bindings accumulated so far.
			var body []ast.Atom
			bound := make(map[string]bool)
			if hasBound {
				guard := ast.NewAtom(magicPred(j.pred, j.ad), boundArgs(r.Head, j.ad)...)
				body = append(body, guard)
				for _, t := range guard.Args {
					if t.IsVar() {
						bound[t.VarName] = true
					}
				}
			}
			for _, a := range r.Body {
				if idb[a.Pred] {
					ad := adornAtom(a, bound)
					if strings.Contains(ad, "b") {
						// Demand rule: the sub-goal's bound arguments are
						// demanded whenever the prefix up to it succeeds.
						magic := ast.Rule{
							Head: ast.NewAtom(magicPred(a.Pred, ad), boundArgs(a, ad)...),
							Body: cloneAtoms(body),
						}
						if key := magic.Head.String() + " :- " + atomsKey(magic.Body); !magicSeen[key] {
							magicSeen[key] = true
							out.AddRule(magic)
							d.MagicRules++
						}
					}
					if !seen[job{a.Pred, ad}] {
						seen[job{a.Pred, ad}] = true
						queue = append(queue, job{a.Pred, ad})
					}
					body = append(body, ast.NewAtom(adornedPred(a.Pred, ad), cloneTerms(a.Args)...))
				} else {
					body = append(body, a.Clone())
				}
				for _, t := range a.Args {
					if t.IsVar() {
						bound[t.VarName] = true
					}
				}
			}
			out.AddRule(ast.Rule{
				Head: ast.NewAtom(adornedPred(j.pred, j.ad), cloneTerms(r.Head.Args)...),
				Body: body,
			})
		}
	}

	// Seed the goal's magic set from an EDB predicate holding the bound
	// constants.
	d.SeedPred = seedPred(goal.Pred, goalAd)
	seedVars := make([]ast.Term, 0, len(goalAd))
	for i, c := range goalAd {
		if c == 'b' {
			d.SeedTuple = append(d.SeedTuple, goal.Args[i].Value)
			seedVars = append(seedVars, ast.V(fmt.Sprintf("B%d", i)))
		}
	}
	out.AddRule(ast.Rule{
		Head: ast.NewAtom(magicPred(goal.Pred, goalAd), seedVars...),
		Body: []ast.Atom{ast.NewAtom(d.SeedPred, seedVars...)},
	})
	d.MagicRules++
	d.Rules = len(out.Rules)

	g := goal.Clone()
	g.Pred = adornedPred(goal.Pred, goalAd)
	d.Goal = g
	return d, nil
}

func cloneTerms(ts []ast.Term) []ast.Term {
	out := make([]ast.Term, len(ts))
	copy(out, ts)
	return out
}

func atomsKey(atoms []ast.Atom) string {
	var b strings.Builder
	for i, a := range atoms {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	return b.String()
}
