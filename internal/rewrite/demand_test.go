package rewrite

import (
	"testing"

	"parlog/internal/ast"
	"parlog/internal/parser"
	"parlog/internal/relation"
	"parlog/internal/seminaive"
)

const leftLinearAncestor = `
anc(X, Y) :- par(X, Y).
anc(X, Y) :- anc(X, Z), par(Z, Y).
`

// evalDemand rewrites prog for goal, evaluates the rewritten program with
// the seed installed, and returns the rewrite plus the output store and
// stats. Fails the test if the rewrite does not apply.
func evalDemand(t *testing.T, prog *ast.Program, goal ast.Atom) (*Demand, relation.Store, *seminaive.Stats) {
	t.Helper()
	d, err := DemandRewrite(prog, goal)
	if err != nil {
		t.Fatalf("DemandRewrite: %v", err)
	}
	if d == nil {
		t.Fatalf("DemandRewrite did not apply to goal %s", goal)
	}
	seed := relation.New(len(d.SeedTuple))
	seed.Insert(relation.Tuple(d.SeedTuple))
	store := relation.Store{d.SeedPred: seed}
	out, stats, err := seminaive.Eval(d.Program, store, seminaive.Options{})
	if err != nil {
		t.Fatalf("eval rewritten program: %v\n%s", err, d.Program)
	}
	return d, out, stats
}

// matches collects the tuples of rel whose bound positions agree with goal.
func matches(rel *relation.Relation, goal ast.Atom) map[string]bool {
	out := map[string]bool{}
	if rel == nil {
		return out
	}
	for _, tup := range rel.Rows() {
		ok := true
		for i, arg := range goal.Args {
			if !arg.IsVar() && tup[i] != arg.Value {
				ok = false
				break
			}
		}
		if ok {
			out[tup.Key()] = true
		}
	}
	return out
}

func storeSize(s relation.Store) int {
	n := 0
	for _, rel := range s {
		n += rel.Len()
	}
	return n
}

// TestDemandAncestorBf checks that the bf-adorned rewrite of the
// left-linear ancestor program returns exactly the goal's answers, while
// deriving far fewer tuples than the undirected fixpoint.
func TestDemandAncestorBf(t *testing.T) {
	prog, err := parser.Parse(leftLinearAncestor + chainFacts(100))
	if err != nil {
		t.Fatal(err)
	}
	src, _ := prog.Interner.Lookup("v90")
	goal := ast.NewAtom("anc", ast.C(src), ast.V("X"))

	full, fullStats, err := seminaive.Eval(prog, relation.Store{}, seminaive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := matches(full["anc"], goal)
	if len(want) != 10 {
		t.Fatalf("chain sanity: %d answers from v90, want 10", len(want))
	}

	d, out, stats := evalDemand(t, prog, goal)
	if d.Adornment != "bf" {
		t.Fatalf("adornment = %q, want bf", d.Adornment)
	}
	got := matches(out[d.Goal.Pred], d.Goal)
	if len(got) != len(want) {
		t.Fatalf("demand answers = %d, full answers = %d", len(got), len(want))
	}
	for tup := range want {
		if !got[tup] {
			t.Fatalf("demand evaluation missing answer %s", tup)
		}
	}
	// On the left-linear program with the goal near the chain's end, magic
	// keeps the frontier at {v90}: the undirected fixpoint derives ~5050
	// anc tuples, the demand-directed one ~10.
	fullDerived := full["anc"].Len()
	demandDerived := storeSize(out) - storeSize(relation.Store{"par": out["par"]})
	if demandDerived*2 > fullDerived {
		t.Fatalf("demand derived %d tuples, full %d: expected >=2x reduction", demandDerived, fullDerived)
	}
	if stats.Firings >= fullStats.Firings {
		t.Fatalf("demand fired %d >= full %d", stats.Firings, fullStats.Firings)
	}
}

// TestDemandRightLinear checks answer equality on the right-linear variant
// too (where magic grows along the chain instead of staying a singleton).
func TestDemandRightLinear(t *testing.T) {
	prog, err := parser.Parse(ancestorRules + chainFacts(40))
	if err != nil {
		t.Fatal(err)
	}
	src, _ := prog.Interner.Lookup("v5")
	goal := ast.NewAtom("anc", ast.C(src), ast.V("X"))

	full, _, err := seminaive.Eval(prog, relation.Store{}, seminaive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := matches(full["anc"], goal)

	d, out, _ := evalDemand(t, prog, goal)
	got := matches(out[d.Goal.Pred], d.Goal)
	if len(got) != len(want) || len(want) == 0 {
		t.Fatalf("demand answers = %d, full answers = %d", len(got), len(want))
	}
}

// TestDemandFullyBoundGoal exercises the bb adornment (existence query).
func TestDemandFullyBoundGoal(t *testing.T) {
	prog, err := parser.Parse(leftLinearAncestor + chainFacts(30))
	if err != nil {
		t.Fatal(err)
	}
	a, _ := prog.Interner.Lookup("v3")
	b, _ := prog.Interner.Lookup("v17")
	goal := ast.NewAtom("anc", ast.C(a), ast.C(b))
	d, out, _ := evalDemand(t, prog, goal)
	if d.Adornment != "bb" {
		t.Fatalf("adornment = %q", d.Adornment)
	}
	if got := matches(out[d.Goal.Pred], d.Goal); len(got) != 1 {
		t.Fatalf("bb goal answers = %d, want 1", len(got))
	}
}

// TestDemandDoesNotApply covers the graceful declines.
func TestDemandDoesNotApply(t *testing.T) {
	prog, err := parser.Parse(leftLinearAncestor + chainFacts(5))
	if err != nil {
		t.Fatal(err)
	}
	// All-free goal: no binding to propagate.
	d, err := DemandRewrite(prog, ast.NewAtom("anc", ast.V("X"), ast.V("Y")))
	if err != nil || d != nil {
		t.Fatalf("all-free goal: d=%v err=%v, want nil,nil", d, err)
	}
	// EDB goal.
	src, _ := prog.Interner.Lookup("v0")
	d, err = DemandRewrite(prog, ast.NewAtom("par", ast.C(src), ast.V("X")))
	if err != nil || d != nil {
		t.Fatalf("EDB goal: d=%v err=%v, want nil,nil", d, err)
	}
	// Arity mismatch is a hard error.
	if _, err = DemandRewrite(prog, ast.NewAtom("anc", ast.C(src))); err == nil {
		t.Fatal("arity mismatch: want error")
	}
	// Negation anywhere in the program declines the rewrite.
	nprog, err := parser.Parse(`
p(X) :- e(X), !q(X).
q(X) :- f(X).
e(a). f(b).
`)
	if err != nil {
		t.Fatal(err)
	}
	na, _ := nprog.Interner.Lookup("a")
	d, err = DemandRewrite(nprog, ast.NewAtom("p", ast.C(na)))
	if err != nil || d != nil {
		t.Fatalf("negated program: d=%v err=%v, want nil,nil", d, err)
	}
}
