// Package rewrite implements the paper's program transformations: the
// non-redundant scheme Q_i of Section 3, the no-communication scheme and the
// redundancy/communication trade-off scheme R_i of Section 6, and the
// general scheme T_i of Section 7 that applies to every Datalog program.
//
// Each transformation produces an ordinary, executable Datalog program (the
// union over all processors) in which the discriminating conditions
// "h(v(r)) = i" appear as constraint atoms and the channel predicates t_ij
// appear as regular derived predicates. Evaluating that union sequentially
// yields the least model that Theorems 1, 4 and 5 talk about, so the
// correctness theorems are tested directly on the declarative artifact; the
// parallel runtime executes the same structure operationally.
package rewrite

import (
	"fmt"

	"parlog/internal/analysis"
	"parlog/internal/ast"
	"parlog/internal/hashpart"
)

// OutPred names t_out^i. The '@' cannot appear in parsed identifiers, so
// rewritten predicates never collide with source predicates.
func OutPred(t string, i int) string { return fmt.Sprintf("%s@out@%d", t, i) }

// InPred names t_in^i.
func InPred(t string, i int) string { return fmt.Sprintf("%s@in@%d", t, i) }

// ChanPred names t_ij, the channel carrying t-tuples from processor i to
// processor j.
func ChanPred(t string, i, j int) string { return fmt.Sprintf("%s@ch@%d@%d", t, i, j) }

// Rewritten is the result of a transformation.
type Rewritten struct {
	// Program is the union ∪_{i∈P} of the per-processor programs — a single
	// executable Datalog program.
	Program *ast.Program
	// ByProc lists each processor's own rules (the paper's Q_i / R_i / T_i),
	// keyed by processor id, for display and for the parallel runtime.
	ByProc map[int][]ast.Rule
	// Outputs are the original derived predicates pooled by the final
	// pooling rules.
	Outputs []string
	// Procs is the processor set used.
	Procs *hashpart.ProcSet
}

// Listing renders one processor's program (the paper's Q_i / R_i / T_i).
func (rw *Rewritten) Listing(proc int) string {
	rules := rw.ByProc[proc]
	out := ""
	for _, r := range rules {
		out += rw.Program.FormatRule(r) + "\n"
	}
	return out
}

// SirupSpec configures the Section 3 non-redundant scheme for a linear
// sirup: the discriminating sequences v(r) and v(e) and functions h and h'.
type SirupSpec struct {
	Procs *hashpart.ProcSet
	VR    []string // v(r): variables of the recursive rule
	VE    []string // v(e): variables of the exit rule
	H     hashpart.Func
	HP    hashpart.Func // h'; nil means use H
}

// Q rewrites a linear sirup into the Section 3 scheme. The per-processor
// program Q_i consists of the initialization, processing, sending, receiving
// and final pooling rules; every processor shares the same h, which is what
// makes the scheme semi-naive non-redundant (Theorem 2).
func Q(s *analysis.Sirup, spec SirupSpec) (*Rewritten, error) {
	if err := validateSirupSpec(s, spec); err != nil {
		return nil, err
	}
	hp := spec.HP
	if hp == nil {
		hp = spec.H
	}
	h := hashpart.AsHashFunc(spec.H)
	hprime := hashpart.AsHashFunc(hp)

	rw := &Rewritten{
		Program: &ast.Program{Interner: s.Program.Interner},
		ByProc:  make(map[int][]ast.Rule),
		Outputs: []string{s.T},
		Procs:   spec.Procs,
	}
	t := s.T
	arity := len(s.HeadVars)

	for _, i := range spec.Procs.IDs() {
		var qi []ast.Rule

		// Initialization: t_out^i(Z̄) :- s-body, h'(v(e)) = i.
		init := ast.Rule{
			Head: ast.NewAtom(OutPred(t, i), s.Exit.Head.Args...),
			Body: cloneAtoms(s.Exit.Body),
		}.WithConstraints(ast.NewHashConstraint(hprime, spec.VE, i))
		qi = append(qi, init)

		// Processing: t_out^i(X̄) :- t_in^i(Ȳ), b1 … bk, h(v(r)) = i.
		body := make([]ast.Atom, 0, len(s.Rec.Body))
		for ai, a := range s.Rec.Body {
			if ai == s.RecAtom {
				body = append(body, ast.NewAtom(InPred(t, i), a.Clone().Args...))
			} else {
				body = append(body, a.Clone())
			}
		}
		proc := ast.Rule{
			Head: ast.NewAtom(OutPred(t, i), s.Rec.Head.Args...),
			Body: body,
		}.WithConstraints(ast.NewHashConstraint(h, spec.VR, i))
		qi = append(qi, proc)

		// Sending: t_ij(Ȳ) :- t_out^i(Ȳ), h(v(r)) = j — the constraint is
		// checkable only when every variable of v(r) occurs in Ȳ; otherwise
		// processor i cannot evaluate it and must send everything (the
		// paper's Example 2).
		recAtom := s.Rec.Body[s.RecAtom]
		checkable := hashpart.ValidateSubsetOf(spec.VR, recAtom.Vars(nil), "Ȳ") == nil
		for _, j := range spec.Procs.IDs() {
			send := ast.Rule{
				Head: ast.NewAtom(ChanPred(t, i, j), recAtom.Clone().Args...),
				Body: []ast.Atom{ast.NewAtom(OutPred(t, i), recAtom.Clone().Args...)},
			}
			if checkable {
				send = send.WithConstraints(ast.NewHashConstraint(h, spec.VR, j))
			}
			qi = append(qi, send)
		}

		// Receiving: t_in^i(W̄) :- t_ji(W̄) for every j.
		w := freshVars(arity)
		for _, j := range spec.Procs.IDs() {
			qi = append(qi, ast.NewRule(
				ast.NewAtom(InPred(t, i), w...),
				ast.NewAtom(ChanPred(t, j, i), w...),
			))
		}

		// Final pooling: t(W̄) :- t_out^i(W̄).
		qi = append(qi, ast.NewRule(
			ast.NewAtom(t, w...),
			ast.NewAtom(OutPred(t, i), w...),
		))

		rw.ByProc[i] = qi
		for _, r := range qi {
			rw.Program.AddRule(r)
		}
	}
	copyFacts(s.Program, rw.Program)
	return rw, nil
}

// NoCommSpec configures the Section 6 no-communication scheme (first
// presented in Wolfson '88): only v(e) and h' are needed.
type NoCommSpec struct {
	Procs *hashpart.ProcSet
	VE    []string
	HP    hashpart.Func
}

// NoComm rewrites a linear sirup into the communication-free scheme: each
// processor seeds its local t^i from its share of the exit tuples and runs
// the unmodified recursive rule to completion. The same tuple may be
// generated at several processors (redundancy), and base relations are
// shared/replicated.
func NoComm(s *analysis.Sirup, spec NoCommSpec) (*Rewritten, error) {
	if err := hashpart.ValidateSequence(s.Exit, spec.VE); err != nil {
		return nil, err
	}
	hprime := hashpart.AsHashFunc(spec.HP)
	rw := &Rewritten{
		Program: &ast.Program{Interner: s.Program.Interner},
		ByProc:  make(map[int][]ast.Rule),
		Outputs: []string{s.T},
		Procs:   spec.Procs,
	}
	t := s.T
	arity := len(s.HeadVars)
	for _, i := range spec.Procs.IDs() {
		var ri []ast.Rule
		// Initialization: t^i(Z̄) :- s-body, h'(v(e)) = i. We reuse the
		// t_out naming so accounting treats all schemes uniformly.
		ri = append(ri, ast.Rule{
			Head: ast.NewAtom(OutPred(t, i), s.Exit.Head.Args...),
			Body: cloneAtoms(s.Exit.Body),
		}.WithConstraints(ast.NewHashConstraint(hprime, spec.VE, i)))
		// Recursive processing: t^i(X̄) :- t^i(Ȳ), b1 … bk — no constraint,
		// no channels.
		body := make([]ast.Atom, 0, len(s.Rec.Body))
		for ai, a := range s.Rec.Body {
			if ai == s.RecAtom {
				body = append(body, ast.NewAtom(OutPred(t, i), a.Clone().Args...))
			} else {
				body = append(body, a.Clone())
			}
		}
		ri = append(ri, ast.Rule{
			Head: ast.NewAtom(OutPred(t, i), s.Rec.Head.Args...),
			Body: body,
		})
		// Final pooling.
		w := freshVars(arity)
		ri = append(ri, ast.NewRule(
			ast.NewAtom(t, w...),
			ast.NewAtom(OutPred(t, i), w...),
		))
		rw.ByProc[i] = ri
		for _, r := range ri {
			rw.Program.AddRule(r)
		}
	}
	copyFacts(s.Program, rw.Program)
	return rw, nil
}

// RSpec configures the Section 6 trade-off scheme: a common v(e)/h' and a
// per-processor family of discriminating functions h_i.
type RSpec struct {
	Procs *hashpart.ProcSet
	VR    []string // must satisfy v(r) ⊆ Ȳ (Section 6 restriction)
	VE    []string
	HP    hashpart.Func
	// HI returns processor i's discriminating function h_i.
	HI func(i int) hashpart.Func
}

// R rewrites a linear sirup into the trade-off scheme R_i: the processing
// rule carries no discriminating constraint (a processor processes whatever
// reaches its t_in), and each processor routes its outputs with its own h_i.
// With h_i = Constant{i} this degenerates to NoComm; with all h_i equal it
// coincides with Q (the paper's two extremes).
func R(s *analysis.Sirup, spec RSpec) (*Rewritten, error) {
	if err := hashpart.ValidateSequence(s.Rec, spec.VR); err != nil {
		return nil, err
	}
	if err := hashpart.ValidateSequence(s.Exit, spec.VE); err != nil {
		return nil, err
	}
	// Section 6 requires every variable of v(r) to appear in Ȳ.
	if err := hashpart.ValidateSubsetOf(spec.VR, s.BodyVars, "Ȳ (the recursive body atom)"); err != nil {
		return nil, err
	}
	hprime := hashpart.AsHashFunc(spec.HP)

	rw := &Rewritten{
		Program: &ast.Program{Interner: s.Program.Interner},
		ByProc:  make(map[int][]ast.Rule),
		Outputs: []string{s.T},
		Procs:   spec.Procs,
	}
	t := s.T
	arity := len(s.HeadVars)
	for _, i := range spec.Procs.IDs() {
		hi := hashpart.AsHashFunc(spec.HI(i))
		var ri []ast.Rule

		// Initialization: t_out^i(Z̄) :- s-body, h'(v(e)) = i.
		ri = append(ri, ast.Rule{
			Head: ast.NewAtom(OutPred(t, i), s.Exit.Head.Args...),
			Body: cloneAtoms(s.Exit.Body),
		}.WithConstraints(ast.NewHashConstraint(hprime, spec.VE, i)))

		// Initialization tuples enter the processing loop through the
		// processor's own router exactly like derived tuples do: the sending
		// rules below read t_out^i, which includes them.

		// Processing: t_out^i(X̄) :- t_in^i(Ȳ), b1 … bk (no constraint).
		body := make([]ast.Atom, 0, len(s.Rec.Body))
		for ai, a := range s.Rec.Body {
			if ai == s.RecAtom {
				body = append(body, ast.NewAtom(InPred(t, i), a.Clone().Args...))
			} else {
				body = append(body, a.Clone())
			}
		}
		ri = append(ri, ast.Rule{
			Head: ast.NewAtom(OutPred(t, i), s.Rec.Head.Args...),
			Body: body,
		})

		// Sending: t_ij(Ȳ) :- t_out^i(Ȳ), h_i(v(r)) = j.
		recAtom := s.Rec.Body[s.RecAtom]
		for _, j := range spec.Procs.IDs() {
			ri = append(ri, ast.Rule{
				Head: ast.NewAtom(ChanPred(t, i, j), recAtom.Clone().Args...),
				Body: []ast.Atom{ast.NewAtom(OutPred(t, i), recAtom.Clone().Args...)},
			}.WithConstraints(ast.NewHashConstraint(hi, spec.VR, j)))
		}

		// Receiving and final pooling.
		w := freshVars(arity)
		for _, j := range spec.Procs.IDs() {
			ri = append(ri, ast.NewRule(
				ast.NewAtom(InPred(t, i), w...),
				ast.NewAtom(ChanPred(t, j, i), w...),
			))
		}
		ri = append(ri, ast.NewRule(
			ast.NewAtom(t, w...),
			ast.NewAtom(OutPred(t, i), w...),
		))

		rw.ByProc[i] = ri
		for _, r := range ri {
			rw.Program.AddRule(r)
		}
	}
	copyFacts(s.Program, rw.Program)
	return rw, nil
}

func validateSirupSpec(s *analysis.Sirup, spec SirupSpec) error {
	if spec.Procs == nil || spec.Procs.Len() == 0 {
		return fmt.Errorf("rewrite: empty processor set")
	}
	if err := hashpart.ValidateSequence(s.Rec, spec.VR); err != nil {
		return err
	}
	return hashpart.ValidateSequence(s.Exit, spec.VE)
}

func cloneAtoms(atoms []ast.Atom) []ast.Atom {
	out := make([]ast.Atom, len(atoms))
	for i, a := range atoms {
		out[i] = a.Clone()
	}
	return out
}

// freshVars returns W1 … Wn, the paper's sequence of new distinct variables.
func freshVars(n int) []ast.Term {
	out := make([]ast.Term, n)
	for i := range out {
		out[i] = ast.V(fmt.Sprintf("W%d", i+1))
	}
	return out
}

// copyFacts carries the source program's ground facts into the rewritten
// program unchanged: they are EDB input, not part of any scheme.
func copyFacts(src, dst *ast.Program) {
	for _, r := range src.Rules {
		if r.IsFact() {
			dst.AddRule(r.Clone())
		}
	}
}
