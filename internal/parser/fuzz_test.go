package parser

import (
	"os"
	"path/filepath"
	"testing"

	"parlog/internal/relation"
	"parlog/internal/seminaive"
)

// addCorpusSeeds feeds every .dl program under testdata/programs to the
// fuzzer, so mutation starts from realistic inputs (recursion, negated-free
// sirups, comments) rather than only the hand-written snippets below.
func addCorpusSeeds(f *testing.F) {
	f.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "programs", "*.dl"))
	if err != nil {
		f.Fatalf("globbing seed corpus: %v", err)
	}
	if len(paths) == 0 {
		f.Fatal("no .dl seed programs found under testdata/programs")
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatalf("reading seed %s: %v", p, err)
		}
		f.Add(string(data))
	}
}

// FuzzParse checks that the parser never panics and that accepted programs
// re-parse to themselves through the printer (print/parse is a fixpoint).
// Without -fuzz this runs the seed corpus as ordinary tests.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"p(a).",
		"anc(X, Y) :- par(X, Y).\nanc(X, Y) :- par(X, Z), anc(Z, Y).",
		`p(X) :- q(X, "str \" esc", -42, _).`,
		"% comment only",
		"p(",
		"p(X) :- .",
		"p(a) :- q(a), r(b).",
		"p(X,Y):-q(Y,X).",
		"p(_,_) :- q(_).",
		"päö(X) :- qüü(X).", // non-ASCII identifiers
	}
	for _, s := range seeds {
		f.Add(s)
	}
	addCorpusSeeds(f)
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		printed := prog.String()
		again, err := Parse(printed)
		if err != nil {
			t.Fatalf("accepted program does not re-parse: %v\nsource: %q\nprinted: %q", err, src, printed)
		}
		if again.String() != printed {
			t.Fatalf("print/parse not a fixpoint:\nfirst:  %q\nsecond: %q", printed, again.String())
		}
	})
}

// FuzzEval checks that evaluation of any accepted program terminates within
// the iteration bound without panicking.
func FuzzEval(f *testing.F) {
	f.Add("anc(X, Y) :- par(X, Y).\nanc(X, Y) :- par(X, Z), anc(Z, Y).\npar(a, b). par(b, a).")
	f.Add("p(X) :- q(X), p2(X).\np2(X) :- q(X).\nq(a). q(b).")
	f.Add("p(X, X) :- q(X).\nq(c).")
	addCorpusSeeds(f)
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			return
		}
		prog, err := Parse(src)
		if err != nil {
			return
		}
		// MaxIterations bounds runaway fixpoints; errors are acceptable,
		// panics are not.
		_, _, _ = seminaive.Eval(prog, relation.Store{}, seminaive.Options{MaxIterations: 60})
	})
}
