package parser

import (
	"strings"
	"testing"

	"parlog/internal/ast"
)

const ancestorSrc = `
% the running example of the paper
anc(X, Y) :- par(X, Y).
anc(X, Y) :- par(X, Z), anc(Z, Y).
par(a, b).
par(b, c).
`

func TestParseAncestor(t *testing.T) {
	prog, err := Parse(ancestorSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 4 {
		t.Fatalf("rules = %d, want 4", len(prog.Rules))
	}
	r := prog.Rules[1]
	if r.Head.Pred != "anc" || len(r.Body) != 2 {
		t.Errorf("second rule parsed wrong: %s", prog.FormatRule(r))
	}
	if got := prog.FormatRule(r); got != "anc(X, Y) :- par(X, Z), anc(Z, Y)." {
		t.Errorf("FormatRule = %q", got)
	}
	rules, facts := prog.FactTuples()
	if len(rules) != 2 || len(facts["par"]) != 2 {
		t.Errorf("split: %d rules, %d par facts", len(rules), len(facts["par"]))
	}
}

func TestParseTermKinds(t *testing.T) {
	prog, err := Parse(`p(X) :- q(X, abc, 42, -7, "hello world", _, _).`)
	if err != nil {
		t.Fatal(err)
	}
	args := prog.Rules[0].Body[0].Args
	if !args[0].IsVar() || args[0].VarName != "X" {
		t.Errorf("arg0 = %v", args[0])
	}
	for i, want := range map[int]string{1: "abc", 2: "42", 3: "-7", 4: "hello world"} {
		if args[i].IsVar() {
			t.Errorf("arg%d is a variable", i)
			continue
		}
		if got := prog.Interner.Name(args[i].Value); got != want {
			t.Errorf("arg%d = %q, want %q", i, got, want)
		}
	}
	// Two anonymous variables must be distinct.
	if !args[5].IsVar() || !args[6].IsVar() || args[5].VarName == args[6].VarName {
		t.Errorf("anonymous variables: %v %v", args[5], args[6])
	}
}

func TestParseStringEscapes(t *testing.T) {
	prog, err := Parse(`p("a\nb\t\"c\\").`)
	if err != nil {
		t.Fatal(err)
	}
	got := prog.Interner.Name(prog.Rules[0].Head.Args[0].Value)
	if got != "a\nb\t\"c\\" {
		t.Errorf("string = %q", got)
	}
}

func TestParseComments(t *testing.T) {
	prog, err := Parse("% leading\np(a). % trailing\n% final\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 1 {
		t.Errorf("rules = %d", len(prog.Rules))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // substring of the error
	}{
		{"missing dot", `p(a)`, "expected '.'"},
		{"missing paren", `p(a.`, "expected"},
		{"bad colon", `p(X) : q(X).`, "expected ':-'"},
		{"unterminated string", `p("abc`, "unterminated"},
		{"bad escape", `p("a\q").`, "unknown escape"},
		{"dangling minus", `p(-).`, "digit"},
		{"unexpected char", `p(a); q(b).`, "unexpected character"},
		{"unsafe rule", `p(X, Y) :- q(X).`, "unsafe rule"},
		{"arity conflict", "p(a).\np(a, b).", "arities 1 and 2"},
		{"zero-arg atom", `p().`, "expected term"},
		{"empty body atom", `p(a) :- .`, "expected"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("Parse(%q) succeeded, want error containing %q", tc.src, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %q, want substring %q", err, tc.want)
			}
		})
	}
}

func TestParseErrorPositions(t *testing.T) {
	_, err := Parse("p(a).\nq(b)\nr(c).")
	if err == nil {
		t.Fatal("want error")
	}
	pe, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if pe.Line != 3 { // the '.' is missing, discovered at r on line 3
		t.Errorf("error line = %d, want 3 (got %v)", pe.Line, err)
	}
}

func TestParseIntoSharesInterner(t *testing.T) {
	prog := MustParse(`p(a).`)
	if _, err := ParseInto(`q(a). q(b).`, prog); err != nil {
		t.Fatal(err)
	}
	va, _ := prog.Interner.Lookup("a")
	// "a" must have been interned once: both rules' first args equal.
	if prog.Rules[0].Head.Args[0].Value != va || prog.Rules[1].Head.Args[0].Value != va {
		t.Error("interner not shared across ParseInto")
	}
	if len(prog.Rules) != 3 {
		t.Errorf("rules = %d", len(prog.Rules))
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse on bad input did not panic")
		}
	}()
	MustParse("p(")
}

func TestRoundTripThroughString(t *testing.T) {
	prog := MustParse(ancestorSrc)
	again, err := Parse(prog.String())
	if err != nil {
		t.Fatalf("reparse failed: %v\nsource:\n%s", err, prog.String())
	}
	if again.String() != prog.String() {
		t.Errorf("round trip changed program:\n%s\nvs\n%s", prog.String(), again.String())
	}
}

func TestVariableLexing(t *testing.T) {
	prog := MustParse(`p(Xs, _under, Y2, lower, CamelCase) :- q(Xs, _under, Y2, CamelCase).`)
	args := prog.Rules[0].Head.Args
	wantVar := []bool{true, true, true, false, true}
	for i, w := range wantVar {
		if args[i].IsVar() != w {
			t.Errorf("arg %d: IsVar=%v, want %v", i, args[i].IsVar(), w)
		}
	}
	_ = ast.Subst{} // keep ast import for clarity of test intent
}

// TestPrintParseFixpointWithOddConstants is the regression test for the
// quoting bug the fuzzer found: constants that do not lex as bare tokens
// must be quoted when printed.
func TestPrintParseFixpointWithOddConstants(t *testing.T) {
	cases := []string{
		`p("str \" esc").`,
		`p("").`,
		`p("UpperCase").`,
		`p("has space").`,
		`p("42abc").`,
		`p("-").`,
		`p("tab\tnl\nback\\").`,
		`p("päö").`,
		`p(-7).`,
		`p(abc'quote).`,
	}
	for _, src := range cases {
		prog, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		printed := prog.String()
		again, err := Parse(printed)
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", printed, err)
		}
		if again.String() != printed {
			t.Errorf("not a fixpoint: %q -> %q", printed, again.String())
		}
		// The constant must intern back to the same spelling.
		v1 := prog.Rules[0].Head.Args[0].Value
		v2 := again.Rules[0].Head.Args[0].Value
		if prog.Interner.Name(v1) != again.Interner.Name(v2) {
			t.Errorf("constant changed: %q vs %q", prog.Interner.Name(v1), again.Interner.Name(v2))
		}
	}
}

func TestParseNegation(t *testing.T) {
	prog, err := Parse(`unreach(X) :- node(X), !reach(X), !bad(X, c).`)
	if err != nil {
		t.Fatal(err)
	}
	r := prog.Rules[0]
	if len(r.Body) != 1 || len(r.Negated) != 2 {
		t.Fatalf("body=%d negated=%d", len(r.Body), len(r.Negated))
	}
	if r.Negated[0].Pred != "reach" || r.Negated[1].Pred != "bad" {
		t.Errorf("negated = %v", r.Negated)
	}
	// Negation order can interleave with positive atoms.
	prog2, err := Parse(`p(X) :- !a(X), q(X), !b(X), r(X).`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog2.Rules[0].Body) != 2 || len(prog2.Rules[0].Negated) != 2 {
		t.Error("interleaved negation parsed wrong")
	}
}

func TestParseNegationErrors(t *testing.T) {
	for _, src := range []string{
		`p(X) :- !`,         // dangling bang
		`p(X) :- !!q(X).`,   // double bang
		`!p(a).`,            // negated head
		`p(X) :- q(X), !X.`, // bang before variable
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted", src)
		}
	}
}
