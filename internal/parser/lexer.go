// Package parser turns Datalog source text into ast.Program values.
//
// Grammar (informally):
//
//	program  := { clause }
//	clause   := atom [ ":-" atom { "," atom } ] "."
//	atom     := ident "(" term { "," term } ")"
//	term     := VARIABLE | CONSTANT | INTEGER | STRING
//
// Identifiers starting with an upper-case letter or "_" are variables;
// identifiers starting with a lower-case letter, integers and quoted strings
// are constants. "%" starts a line comment.
package parser

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokVariable
	tokInt
	tokString
	tokLParen
	tokRParen
	tokComma
	tokDot
	tokImplies // ":-"
	tokBang    // "!" (negation, an extension beyond the paper's pure Datalog)
)

// String names the token kind for error messages.
func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokVariable:
		return "variable"
	case tokInt:
		return "integer"
	case tokString:
		return "string"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokDot:
		return "'.'"
	case tokImplies:
		return "':-'"
	case tokBang:
		return "'!'"
	}
	return "unknown token"
}

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

// Error is a parse error with a source position.
type Error struct {
	Line, Col int
	Msg       string
}

// Error implements the error interface with a line:col prefix.
func (e *Error) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) errorf(line, col int, format string, args ...any) *Error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peekByte() (byte, bool) {
	if l.pos >= len(l.src) {
		return 0, false
	}
	return l.src[l.pos], true
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() {
	for {
		c, ok := l.peekByte()
		if !ok {
			return
		}
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '%':
			for {
				c, ok := l.peekByte()
				if !ok || c == '\n' {
					break
				}
				l.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentChar(c byte) bool {
	return c == '_' || c == '\'' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func (l *lexer) next() (token, *Error) {
	l.skipSpaceAndComments()
	line, col := l.line, l.col
	c, ok := l.peekByte()
	if !ok {
		return token{kind: tokEOF, line: line, col: col}, nil
	}
	switch {
	case c == '(':
		l.advance()
		return token{kind: tokLParen, text: "(", line: line, col: col}, nil
	case c == ')':
		l.advance()
		return token{kind: tokRParen, text: ")", line: line, col: col}, nil
	case c == ',':
		l.advance()
		return token{kind: tokComma, text: ",", line: line, col: col}, nil
	case c == '.':
		l.advance()
		return token{kind: tokDot, text: ".", line: line, col: col}, nil
	case c == '!':
		l.advance()
		return token{kind: tokBang, text: "!", line: line, col: col}, nil
	case c == ':':
		l.advance()
		if c2, ok := l.peekByte(); ok && c2 == '-' {
			l.advance()
			return token{kind: tokImplies, text: ":-", line: line, col: col}, nil
		}
		return token{}, l.errorf(line, col, "expected ':-', found ':%c'", c)
	case c == '"':
		l.advance()
		var b strings.Builder
		for {
			c, ok := l.peekByte()
			if !ok {
				return token{}, l.errorf(line, col, "unterminated string literal")
			}
			l.advance()
			if c == '"' {
				return token{kind: tokString, text: b.String(), line: line, col: col}, nil
			}
			if c == '\\' {
				esc, ok := l.peekByte()
				if !ok {
					return token{}, l.errorf(line, col, "unterminated string literal")
				}
				l.advance()
				switch esc {
				case 'n':
					b.WriteByte('\n')
				case 't':
					b.WriteByte('\t')
				case '\\', '"':
					b.WriteByte(esc)
				default:
					return token{}, l.errorf(l.line, l.col, "unknown escape '\\%c'", esc)
				}
				continue
			}
			b.WriteByte(c)
		}
	case c == '-' || unicode.IsDigit(rune(c)):
		start := l.pos
		l.advance()
		if c == '-' {
			d, ok := l.peekByte()
			if !ok || !unicode.IsDigit(rune(d)) {
				return token{}, l.errorf(line, col, "expected digit after '-'")
			}
		}
		for {
			d, ok := l.peekByte()
			if !ok || !unicode.IsDigit(rune(d)) {
				break
			}
			l.advance()
		}
		return token{kind: tokInt, text: l.src[start:l.pos], line: line, col: col}, nil
	case isIdentStart(c):
		start := l.pos
		l.advance()
		for {
			d, ok := l.peekByte()
			if !ok || !isIdentChar(d) {
				break
			}
			l.advance()
		}
		text := l.src[start:l.pos]
		first := rune(text[0])
		if first == '_' || unicode.IsUpper(first) {
			return token{kind: tokVariable, text: text, line: line, col: col}, nil
		}
		return token{kind: tokIdent, text: text, line: line, col: col}, nil
	default:
		return token{}, l.errorf(line, col, "unexpected character %q", c)
	}
}
