package parser

import (
	"fmt"

	"parlog/internal/ast"
)

type parser struct {
	lx   *lexer
	tok  token
	prog *ast.Program
	// anonCount numbers the anonymous variables "_" so each occurrence is
	// distinct, as in Prolog.
	anonCount int
}

// Parse parses a complete Datalog program. Facts appear as ground empty-body
// rules; use Program.FactTuples to split them out. Constants are interned
// into a fresh interner.
func Parse(src string) (*ast.Program, error) {
	return ParseInto(src, ast.NewProgram())
}

// ParseInto parses src, appending rules to prog and interning constants into
// prog's interner. It is useful for layering facts from a second source onto
// an existing program.
func ParseInto(src string, prog *ast.Program) (*ast.Program, error) {
	p := &parser{lx: newLexer(src), prog: prog}
	if err := p.advance(); err != nil {
		return nil, err
	}
	for p.tok.kind != tokEOF {
		r, err := p.clause()
		if err != nil {
			return nil, err
		}
		if !r.IsFact() && !r.IsSafe() {
			return nil, &Error{Line: p.tok.line, Col: p.tok.col,
				Msg: fmt.Sprintf("unsafe rule (a head variable does not occur in the body): %s", prog.FormatRule(r))}
		}
		prog.AddRule(r)
	}
	if err := checkArities(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

// MustParse parses src and panics on error; for tests and examples.
func MustParse(src string) *ast.Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

func (p *parser) advance() error {
	tok, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = tok
	return nil
}

func (p *parser) expect(kind tokenKind) (token, error) {
	if p.tok.kind != kind {
		return token{}, &Error{Line: p.tok.line, Col: p.tok.col,
			Msg: fmt.Sprintf("expected %s, found %s %q", kind, p.tok.kind, p.tok.text)}
	}
	tok := p.tok
	if err := p.advance(); err != nil {
		return token{}, err
	}
	return tok, nil
}

func (p *parser) clause() (ast.Rule, error) {
	head, err := p.atom()
	if err != nil {
		return ast.Rule{}, err
	}
	r := ast.Rule{Head: head}
	if p.tok.kind == tokImplies {
		if err := p.advance(); err != nil {
			return ast.Rule{}, err
		}
		for {
			negated := false
			if p.tok.kind == tokBang {
				negated = true
				if err := p.advance(); err != nil {
					return ast.Rule{}, err
				}
			}
			a, err := p.atom()
			if err != nil {
				return ast.Rule{}, err
			}
			if negated {
				r.Negated = append(r.Negated, a)
			} else {
				r.Body = append(r.Body, a)
			}
			if p.tok.kind != tokComma {
				break
			}
			if err := p.advance(); err != nil {
				return ast.Rule{}, err
			}
		}
	}
	if _, err := p.expect(tokDot); err != nil {
		return ast.Rule{}, err
	}
	return r, nil
}

func (p *parser) atom() (ast.Atom, error) {
	name, err := p.expect(tokIdent)
	if err != nil {
		return ast.Atom{}, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return ast.Atom{}, err
	}
	var args []ast.Term
	for {
		t, err := p.term()
		if err != nil {
			return ast.Atom{}, err
		}
		args = append(args, t)
		if p.tok.kind != tokComma {
			break
		}
		if err := p.advance(); err != nil {
			return ast.Atom{}, err
		}
	}
	if _, err := p.expect(tokRParen); err != nil {
		return ast.Atom{}, err
	}
	return ast.Atom{Pred: name.text, Args: args}, nil
}

func (p *parser) term() (ast.Term, error) {
	switch p.tok.kind {
	case tokVariable:
		name := p.tok.text
		if name == "_" {
			p.anonCount++
			name = fmt.Sprintf("_G%d", p.anonCount)
		}
		if err := p.advance(); err != nil {
			return ast.Term{}, err
		}
		return ast.V(name), nil
	case tokIdent, tokInt, tokString:
		v := p.prog.Interner.Intern(p.tok.text)
		if err := p.advance(); err != nil {
			return ast.Term{}, err
		}
		return ast.C(v), nil
	default:
		return ast.Term{}, &Error{Line: p.tok.line, Col: p.tok.col,
			Msg: fmt.Sprintf("expected term, found %s %q", p.tok.kind, p.tok.text)}
	}
}

// checkArities rejects programs that use one predicate symbol at two
// different arities, which is almost always a typo.
func checkArities(prog *ast.Program) error {
	seen := make(map[string]int)
	check := func(a ast.Atom) error {
		if prev, ok := seen[a.Pred]; ok && prev != a.Arity() {
			return &Error{Line: 0, Col: 0,
				Msg: fmt.Sprintf("predicate %s used with arities %d and %d", a.Pred, prev, a.Arity())}
		}
		seen[a.Pred] = a.Arity()
		return nil
	}
	for _, r := range prog.Rules {
		if err := check(r.Head); err != nil {
			return err
		}
		for _, a := range r.Body {
			if err := check(a); err != nil {
				return err
			}
		}
		for _, a := range r.Negated {
			if err := check(a); err != nil {
				return err
			}
		}
	}
	return nil
}
