package termdetect

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// --- Credit ---

func TestCreditSimple(t *testing.T) {
	c := NewCredit()
	c.Add(2)
	select {
	case <-c.Quiesced():
		t.Fatal("quiesced with outstanding work")
	default:
	}
	c.Done()
	c.Done()
	select {
	case <-c.Quiesced():
	case <-time.After(time.Second):
		t.Fatal("did not quiesce")
	}
	if c.Outstanding() != 0 {
		t.Errorf("outstanding = %d", c.Outstanding())
	}
}

func TestCreditUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Done without Add did not panic")
		}
	}()
	NewCredit().Done()
}

// TestCreditMessageSystem simulates a random message-passing system: workers
// forward "work" with decreasing probability. The detector must fire only
// after ground-truth quiescence.
func TestCreditMessageSystem(t *testing.T) {
	const workers = 8
	c := NewCredit()
	var groundTruthBusy atomic.Int64

	chans := make([]chan int, workers)
	for i := range chans {
		chans[i] = make(chan int, 1024)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for {
				select {
				case ttl := <-chans[w]:
					groundTruthBusy.Add(1)
					// Forward up to 2 messages with decreasing ttl.
					if ttl > 0 {
						n := rng.Intn(3)
						for k := 0; k < n; k++ {
							dst := rng.Intn(workers)
							c.Add(1)
							chans[dst] <- ttl - 1
						}
					}
					groundTruthBusy.Add(-1)
					c.Done()
				case <-stop:
					return
				}
			}
		}(w)
	}
	// Seed the system.
	for w := 0; w < workers; w++ {
		c.Add(1)
		chans[w] <- 6
	}
	select {
	case <-c.Quiesced():
	case <-time.After(5 * time.Second):
		t.Fatal("credit detector never fired")
	}
	// At detection, no worker may be mid-processing and all queues empty.
	if got := groundTruthBusy.Load(); got != 0 {
		t.Errorf("detected termination while %d workers busy", got)
	}
	for i, ch := range chans {
		if len(ch) != 0 {
			t.Errorf("queue %d holds %d messages at detection", i, len(ch))
		}
	}
	close(stop)
	wg.Wait()
}

// --- Counting ---

func TestCountingRequiresTwoWaves(t *testing.T) {
	c := NewCounting(2)
	c.SetIdle(0, true)
	c.SetIdle(1, true)
	if c.Check() {
		t.Error("first wave alone declared termination")
	}
	if !c.Check() {
		t.Error("two identical idle balanced waves did not declare termination")
	}
}

func TestCountingUnbalancedNotTerminated(t *testing.T) {
	c := NewCounting(2)
	c.SetIdle(0, true)
	c.SetIdle(1, true)
	c.Sent(0) // message in flight, never received
	c.Check()
	if c.Check() {
		t.Error("declared termination with sent != received")
	}
}

func TestCountingBusyWorkerBlocks(t *testing.T) {
	c := NewCounting(2)
	c.SetIdle(0, true) // worker 1 stays busy
	c.Check()
	if c.Check() {
		t.Error("declared termination with a busy worker")
	}
}

func TestCountingChangedCountersResetWave(t *testing.T) {
	c := NewCounting(1)
	c.SetIdle(0, true)
	c.Check()
	// Activity between waves: both counters move (balanced again).
	c.SetIdle(0, false)
	c.Sent(0)
	c.SetIdle(0, true)
	c.Received(0)
	if c.Check() {
		t.Error("wave after activity must not match the stale previous wave")
	}
	if !c.Check() {
		t.Error("two fresh identical waves should then terminate")
	}
}

// TestCountingMessageSystem drives the counting detector with a real
// message-passing simulation and polls it.
func TestCountingMessageSystem(t *testing.T) {
	const workers = 6
	c := NewCounting(workers)
	var busy atomic.Int64

	chans := make([]chan int, workers)
	for i := range chans {
		chans[i] = make(chan int, 4096)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 99))
			for {
				select {
				case ttl := <-chans[w]:
					c.SetIdle(w, false)
					c.Received(w)
					busy.Add(1)
					if ttl > 0 {
						for k := rng.Intn(3); k > 0; k-- {
							dst := rng.Intn(workers)
							c.Sent(w)
							chans[dst] <- ttl - 1
						}
					}
					busy.Add(-1)
					// Idle only if nothing is queued locally right now.
					if len(chans[w]) == 0 {
						c.SetIdle(w, true)
					}
				case <-stop:
					return
				}
			}
		}(w)
	}
	// Seed: the environment's sends are attributed to worker 0.
	for w := 0; w < workers; w++ {
		c.Sent(0)
		chans[w] <- 5
	}

	deadline := time.After(5 * time.Second)
	for {
		if c.Check() {
			break
		}
		select {
		case <-deadline:
			t.Fatal("counting detector never fired")
		case <-time.After(200 * time.Microsecond):
		}
	}
	if got := busy.Load(); got != 0 {
		t.Errorf("termination declared while %d workers busy", got)
	}
	for i, ch := range chans {
		if len(ch) != 0 {
			t.Errorf("queue %d nonempty at detection", i)
		}
	}
	close(stop)
	wg.Wait()
}

// --- Dijkstra–Scholten ---

func TestDSImmediateQuiescence(t *testing.T) {
	d := NewDijkstraScholten(3)
	for w := 0; w < 3; w++ {
		d.SetPassive(w)
	}
	select {
	case <-d.Quiesced():
	case <-time.After(time.Second):
		t.Fatal("all-passive workers did not quiesce")
	}
	if !d.Terminated() {
		t.Error("Terminated() = false after quiescence")
	}
}

func TestDSWithheldAck(t *testing.T) {
	d := NewDijkstraScholten(2)
	// Worker 0 sends to worker 1 and goes passive; the tree is root→{0,1}
	// so no re-engagement happens, the ack is immediate.
	d.MessageSent(0)
	d.SetPassive(0) // deficit 1 — cannot retire yet
	d.MessageReceived(1, 0)
	if d.Terminated() {
		t.Fatal("premature termination")
	}
	d.SetPassive(1)
	select {
	case <-d.Quiesced():
	case <-time.After(time.Second):
		t.Fatal("did not quiesce after both passive and acks delivered")
	}
}

func TestDSReEngagement(t *testing.T) {
	d := NewDijkstraScholten(2)
	// Worker 1 retires first.
	d.SetPassive(1)
	if d.Terminated() {
		t.Fatal("terminated with worker 0 active")
	}
	// Worker 0 engages the dead worker 1: 1's parent becomes 0 and the ack
	// is withheld.
	d.MessageSent(0)
	d.MessageReceived(1, 0)
	d.SetPassive(0) // deficit 1: waiting for 1's withheld ack
	if d.Terminated() {
		t.Fatal("terminated while child engaged")
	}
	// 1 goes passive → acks parent 0 → 0 retires → root deficit 0.
	d.SetPassive(1)
	select {
	case <-d.Quiesced():
	case <-time.After(time.Second):
		t.Fatal("cascade retirement did not complete")
	}
}

// TestDSMessageSystem drives the DS detector with a random message system.
func TestDSMessageSystem(t *testing.T) {
	const workers = 6
	d := NewDijkstraScholten(workers)
	var busy atomic.Int64

	chans := make([]chan [2]int, workers) // {sender, ttl}
	for i := range chans {
		chans[i] = make(chan [2]int, 4096)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 7))
			for {
				select {
				case m := <-chans[w]:
					d.MessageReceived(w, m[0])
					busy.Add(1)
					if m[1] > 0 {
						for k := rng.Intn(3); k > 0; k-- {
							dst := rng.Intn(workers)
							d.MessageSent(w)
							chans[dst] <- [2]int{w, m[1] - 1}
						}
					}
					busy.Add(-1)
					if len(chans[w]) == 0 {
						d.SetPassive(w)
					}
				case <-stop:
					return
				}
			}
		}(w)
	}
	// Every worker starts engaged by the root with one seed work item which
	// it processes "locally": simulate by sending from the worker itself
	// being active at start; here we let each worker receive a seed message
	// attributed to the root engagement by marking it active first.
	for w := 0; w < workers; w++ {
		d.SetActive(w)
		d.MessageSent(w) // worker sends itself its seed
		chans[w] <- [2]int{w, 5}
	}
	select {
	case <-d.Quiesced():
	case <-time.After(5 * time.Second):
		t.Fatal("DS detector never fired")
	}
	if got := busy.Load(); got != 0 {
		t.Errorf("termination declared while %d workers busy", got)
	}
	for i, ch := range chans {
		if len(ch) != 0 {
			t.Errorf("queue %d nonempty at detection", i)
		}
	}
	close(stop)
	wg.Wait()
}

// TestDetectorsAgreeOnRandomRuns: run the same deterministic single-threaded
// schedule through Credit and DS; both must detect exactly at the end.
func TestDetectorsAgreeSingleThreaded(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		const workers = 4
		cr := NewCredit()
		ds := NewDijkstraScholten(workers)

		type msg struct{ from, to, ttl int }
		var queue []msg
		for w := 0; w < workers; w++ {
			cr.Add(1)
			ds.MessageSent(w)
			queue = append(queue, msg{from: w, to: w, ttl: 4})
		}
		for len(queue) > 0 {
			// Pop a random message.
			i := rng.Intn(len(queue))
			m := queue[i]
			queue = append(queue[:i], queue[i+1:]...)
			ds.MessageReceived(m.to, m.from)
			if m.ttl > 0 {
				for k := rng.Intn(3); k > 0; k-- {
					nm := msg{from: m.to, to: rng.Intn(workers), ttl: m.ttl - 1}
					cr.Add(1)
					ds.MessageSent(nm.from)
					queue = append(queue, nm)
				}
			}
			cr.Done()
			// The worker goes passive if no queued message targets it.
			pending := false
			for _, q := range queue {
				if q.to == m.to {
					pending = true
				}
			}
			if !pending {
				ds.SetPassive(m.to)
			}
			premature := false
			select {
			case <-cr.Quiesced():
				premature = len(queue) > 0
			default:
			}
			if premature {
				t.Fatalf("seed %d: credit fired with %d queued", seed, len(queue))
			}
		}
		// Drain passivity for workers that still think they're active.
		for w := 0; w < workers; w++ {
			ds.SetPassive(w)
		}
		select {
		case <-cr.Quiesced():
		default:
			t.Fatalf("seed %d: credit never fired", seed)
		}
		if !ds.Terminated() {
			t.Fatalf("seed %d: DS never fired", seed)
		}
	}
}
