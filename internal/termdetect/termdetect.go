// Package termdetect implements distributed termination detection for the
// parallel runtime. The paper (Section 3, "Parallel Termination") defers to
// the classic algorithms of Dijkstra–Scholten [7] and Chandy–Misra [5]; this
// package provides three detectors:
//
//   - Credit: a collapsed shared-memory variant of diffusing-computation
//     accounting — one atomic counter of outstanding work units. The runtime
//     default: exact, no polling, detection is immediate.
//   - Counting: Mattern's four-counter method — per-worker send/receive
//     counters sampled in two consecutive waves. Poll-based.
//   - DijkstraScholten: the full parent/deficit diffusing-computation
//     algorithm with a virtual root engaging every worker.
//
// All three assume the instrumentation contract documented on each type;
// the contract is what makes detection sound (no false positives).
package termdetect

import (
	"sync"
	"sync/atomic"
)

// Credit counts outstanding work units: one per initial worker activation
// and one per in-flight or not-yet-fully-processed message.
//
// Contract: call Add BEFORE making the corresponding work visible to another
// goroutine (before enqueueing a message, before starting a worker), and
// Done only AFTER all effects of that work — including any Adds it performed
// — have completed. Then the counter reaches zero exactly once, at true
// quiescence.
type Credit struct {
	outstanding atomic.Int64
	done        chan struct{}
	closed      atomic.Bool
}

// NewCredit returns a detector with no outstanding work. Callers must Add
// their initial activations before any Done can run.
func NewCredit() *Credit {
	return &Credit{done: make(chan struct{})}
}

// Add registers n new work units.
func (c *Credit) Add(n int) {
	c.outstanding.Add(int64(n))
}

// Done retires one work unit. When the last unit retires, Done signals
// termination.
func (c *Credit) Done() {
	v := c.outstanding.Add(-1)
	if v < 0 {
		panic("termdetect: Credit.Done without matching Add")
	}
	if v == 0 && c.closed.CompareAndSwap(false, true) {
		close(c.done)
	}
}

// Quiesced returns a channel closed at termination.
func (c *Credit) Quiesced() <-chan struct{} { return c.done }

// Outstanding reports the current number of work units (for diagnostics).
func (c *Credit) Outstanding() int64 { return c.outstanding.Load() }

// Counting is Mattern's four-counter termination detector. Worker w calls
// Sent(w) BEFORE enqueueing each message and Received(w) AFTER dequeueing
// one but only after clearing its idle flag; it calls SetIdle(w, true) only
// when its input queue is empty and it has no local work. A detection wave
// samples idle flags, then receive counters, then send counters; two
// consecutive identical balanced idle waves imply quiescence.
type Counting struct {
	sent []atomic.Int64
	recv []atomic.Int64
	idle []atomic.Bool

	mu   sync.Mutex
	last *wave
}

type wave struct {
	s, r    int64
	allIdle bool
}

// NewCounting returns a detector for n workers, all initially busy.
func NewCounting(n int) *Counting {
	return &Counting{
		sent: make([]atomic.Int64, n),
		recv: make([]atomic.Int64, n),
		idle: make([]atomic.Bool, n),
	}
}

// Sent records that worker w enqueued a message. Call before the enqueue.
func (c *Counting) Sent(w int) { c.sent[w].Add(1) }

// Received records that worker w dequeued a message. Call after clearing w's
// idle flag.
func (c *Counting) Received(w int) { c.recv[w].Add(1) }

// SetIdle publishes worker w's idleness.
func (c *Counting) SetIdle(w int, idle bool) { c.idle[w].Store(idle) }

// snapshot performs one wave: idle flags first, then receive counters, then
// send counters. Reading receives before sends guarantees that a balanced
// wave cannot be produced by a message counted as received but not as sent.
func (c *Counting) snapshot() wave {
	w := wave{allIdle: true}
	for i := range c.idle {
		if !c.idle[i].Load() {
			w.allIdle = false
		}
	}
	for i := range c.recv {
		w.r += c.recv[i].Load()
	}
	for i := range c.sent {
		w.s += c.sent[i].Load()
	}
	return w
}

// Check runs one detection wave and reports whether termination is
// established: this wave and the previous one must both be all-idle,
// balanced (sent == received) and identical. Call repeatedly (poll).
func (c *Counting) Check() bool {
	cur := c.snapshot()
	c.mu.Lock()
	defer c.mu.Unlock()
	ok := cur.allIdle && cur.s == cur.r &&
		c.last != nil && c.last.allIdle &&
		c.last.s == cur.s && c.last.r == cur.r
	c.last = &cur
	return ok
}

// DijkstraScholten is the diffusing-computation termination detector. A
// virtual root (node index -1) engages all n workers at Start. Every data
// message creates an ack obligation from receiver to sender; a worker
// engaged while dead adopts the sender as parent and withholds that ack
// until it retires (passive with zero deficit). Acks are delivered through
// shared memory here, cascading retirement up the engagement tree. The
// computation has terminated when the root's deficit reaches zero.
//
// Contract: call MessageSent before enqueueing, MessageReceived after
// dequeueing (before processing), SetPassive(w) when w has no local work,
// and SetActive(w) when w starts processing again. All methods are safe for
// concurrent use.
type DijkstraScholten struct {
	mu       sync.Mutex
	deficit  []int // per worker: messages sent and not yet acked
	parent   []int // engagement parent, or dead (-2)
	passive  []bool
	rootDef  int
	done     chan struct{}
	finished bool
}

const dsDead = -2

// DSRoot is the parent index representing the virtual root.
const DSRoot = -1

// NewDijkstraScholten creates the detector and engages all n workers from
// the virtual root (root deficit = n), matching a computation where every
// processor starts active on its initialization rule.
func NewDijkstraScholten(n int) *DijkstraScholten {
	d := &DijkstraScholten{
		deficit: make([]int, n),
		parent:  make([]int, n),
		passive: make([]bool, n),
		rootDef: n,
		done:    make(chan struct{}),
	}
	for i := range d.parent {
		d.parent[i] = DSRoot
	}
	return d
}

// MessageSent records that from sent one data message.
func (d *DijkstraScholten) MessageSent(from int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.deficit[from]++
}

// MessageReceived records that w dequeued a message from sender. If w was
// dead (retired), the message re-engages it with parent = sender and the
// ack is withheld; otherwise the ack is delivered immediately.
func (d *DijkstraScholten) MessageReceived(w, sender int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.passive[w] = false
	if d.parent[w] == dsDead {
		d.parent[w] = sender
		return
	}
	d.ackLocked(sender)
}

// SetActive marks w busy (it has local work to process).
func (d *DijkstraScholten) SetActive(w int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.passive[w] = false
}

// SetPassive marks w as having no local work and retires it if its deficit
// is zero.
func (d *DijkstraScholten) SetPassive(w int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.passive[w] = true
	d.tryRetireLocked(w)
}

// ackLocked delivers an ack to node to (worker or root), cascading
// retirements.
func (d *DijkstraScholten) ackLocked(to int) {
	if to == DSRoot {
		d.rootDef--
		if d.rootDef == 0 && !d.finished {
			d.finished = true
			close(d.done)
		}
		return
	}
	d.deficit[to]--
	d.tryRetireLocked(to)
}

// tryRetireLocked retires w (acks its engagement parent and marks it dead)
// when it is passive with zero deficit.
func (d *DijkstraScholten) tryRetireLocked(w int) {
	for {
		if !d.passive[w] || d.deficit[w] != 0 || d.parent[w] == dsDead {
			return
		}
		p := d.parent[w]
		d.parent[w] = dsDead
		if p == DSRoot {
			d.rootDef--
			if d.rootDef == 0 && !d.finished {
				d.finished = true
				close(d.done)
			}
			return
		}
		d.deficit[p]--
		w = p // cascade: the parent may now retire too
	}
}

// Quiesced returns a channel closed when the root's deficit reaches zero.
func (d *DijkstraScholten) Quiesced() <-chan struct{} { return d.done }

// Terminated reports whether termination has been detected.
func (d *DijkstraScholten) Terminated() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.finished
}
