// Package workload generates the synthetic base relations the experiments
// run on: chains, cycles, trees, random digraphs, grids and disconnected
// components for the transitive-closure programs, plus tree shapes for the
// same-generation query. All generators are deterministic in their
// parameters (and seed, where applicable).
package workload

import (
	"math/rand"

	"parlog/internal/ast"
	"parlog/internal/parser"
	"parlog/internal/relation"
)

// Chain returns the edge relation {(i, i+1) : 0 ≤ i < n} — a path of n
// edges whose transitive closure has n(n+1)/2 tuples.
func Chain(n int) *relation.Relation {
	r := relation.New(2)
	for i := 0; i < n; i++ {
		r.Insert(relation.Tuple{ast.Value(i), ast.Value(i + 1)})
	}
	return r
}

// Cycle returns a directed cycle of n nodes; its closure is all n² pairs.
func Cycle(n int) *relation.Relation {
	r := relation.New(2)
	for i := 0; i < n; i++ {
		r.Insert(relation.Tuple{ast.Value(i), ast.Value((i + 1) % n)})
	}
	return r
}

// Tree returns parent→child edges of a complete tree with the given
// branching factor and depth (depth 0 is a single root, no edges). Nodes
// are numbered breadth-first from 0.
func Tree(branch, depth int) *relation.Relation {
	r := relation.New(2)
	next := 1
	frontier := []int{0}
	for d := 0; d < depth; d++ {
		var newFrontier []int
		for _, p := range frontier {
			for b := 0; b < branch; b++ {
				c := next
				next++
				r.Insert(relation.Tuple{ast.Value(p), ast.Value(c)})
				newFrontier = append(newFrontier, c)
			}
		}
		frontier = newFrontier
	}
	return r
}

// RandomGraph returns a simple random digraph with the given node and edge
// counts (no self-loops, no duplicate edges). It panics if more edges are
// requested than n(n−1).
func RandomGraph(nodes, edges int, seed int64) *relation.Relation {
	if edges > nodes*(nodes-1) {
		panic("workload: too many edges requested")
	}
	rng := rand.New(rand.NewSource(seed))
	r := relation.New(2)
	for r.Len() < edges {
		a, b := rng.Intn(nodes), rng.Intn(nodes)
		if a == b {
			continue
		}
		r.Insert(relation.Tuple{ast.Value(a), ast.Value(b)})
	}
	return r
}

// RandomRelation returns a random relation of the given arity with count
// distinct tuples over a pool of constants 0…pool−1.
func RandomRelation(arity, pool, count int, seed int64) *relation.Relation {
	max := 1
	for i := 0; i < arity; i++ {
		max *= pool
	}
	if count > max {
		panic("workload: too many tuples requested")
	}
	rng := rand.New(rand.NewSource(seed))
	r := relation.New(arity)
	for r.Len() < count {
		t := make(relation.Tuple, arity)
		for c := range t {
			t[c] = ast.Value(rng.Intn(pool))
		}
		r.Insert(t)
	}
	return r
}

// ZipfGraph returns a random digraph whose edge *sources* follow a Zipf
// distribution with exponent s > 1: a few hub nodes originate most edges —
// the skew that breaks naive hash partitioning of the transitive-closure
// computation (the load-balancing concern of the paper's Section 8).
func ZipfGraph(nodes, edges int, s float64, seed int64) *relation.Relation {
	if edges > nodes*(nodes-1) {
		panic("workload: too many edges requested")
	}
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, s, 1, uint64(nodes-1))
	r := relation.New(2)
	for r.Len() < edges {
		a := int(zipf.Uint64())
		b := rng.Intn(nodes)
		if a == b {
			continue
		}
		r.Insert(relation.Tuple{ast.Value(a), ast.Value(b)})
	}
	return r
}

// Brooms returns k disjoint "broom" graphs: entry_j → hub_j → leaf_j,1 …
// leaf_j,m_j with m_j = base + j·step leaves. Almost all transitive-closure
// work joins on the k hub values, whose weights differ — the workload on
// which a value-balanced discriminating function beats plain hashing (few
// heavy join values collide under a random hash).
func Brooms(k, base, step int) *relation.Relation {
	r := relation.New(2)
	next := 0
	alloc := func() ast.Value { v := ast.Value(next); next++; return v }
	for j := 0; j < k; j++ {
		entry := alloc()
		hub := alloc()
		r.Insert(relation.Tuple{entry, hub})
		leaves := base + j*step
		for l := 0; l < leaves; l++ {
			r.Insert(relation.Tuple{hub, alloc()})
		}
	}
	return r
}

// ColumnWeights counts the frequency of each value in one column of a
// relation — the sampling input for balance-aware discriminating functions.
func ColumnWeights(rel *relation.Relation, col int) map[ast.Value]int {
	w := make(map[ast.Value]int)
	for _, t := range rel.Rows() {
		w[t[col]]++
	}
	return w
}

// Grid returns the directed w×h grid: edges right and down. Its closure
// relates each cell to every cell below-right of it.
func Grid(w, h int) *relation.Relation {
	r := relation.New(2)
	id := func(x, y int) ast.Value { return ast.Value(y*w + x) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				r.Insert(relation.Tuple{id(x, y), id(x+1, y)})
			}
			if y+1 < h {
				r.Insert(relation.Tuple{id(x, y), id(x, y+1)})
			}
		}
	}
	return r
}

// Components returns k disjoint chains of the given length each — the
// workload on which partitioned evaluation shines (no cross-partition
// paths).
func Components(k, length int) *relation.Relation {
	r := relation.New(2)
	for c := 0; c < k; c++ {
		base := c * (length + 1)
		for i := 0; i < length; i++ {
			r.Insert(relation.Tuple{ast.Value(base + i), ast.Value(base + i + 1)})
		}
	}
	return r
}

// SameGenInput returns the up, flat and down relations of the classic
// same-generation query over a complete tree: up(child, parent),
// down(parent, child), flat(root, root).
func SameGenInput(branch, depth int) (up, flat, down *relation.Relation) {
	tree := Tree(branch, depth)
	up = relation.New(2)
	down = relation.New(2)
	for _, e := range tree.Rows() {
		up.Insert(relation.Tuple{e[1], e[0]})
		down.Insert(relation.Tuple{e[0], e[1]})
	}
	flat = relation.New(2)
	flat.Insert(relation.Tuple{0, 0})
	return up, flat, down
}

// AncestorProgram returns the paper's running example (linear transitive
// closure) with no facts.
func AncestorProgram() *ast.Program {
	return parser.MustParse(`
anc(X, Y) :- par(X, Y).
anc(X, Y) :- par(X, Z), anc(Z, Y).
`)
}

// NonlinearAncestorProgram returns Example 8's non-linear ancestor program.
func NonlinearAncestorProgram() *ast.Program {
	return parser.MustParse(`
anc(X, Y) :- par(X, Y).
anc(X, Y) :- anc(X, Z), anc(Z, Y).
`)
}

// SameGenProgram returns the same-generation program over up/flat/down.
func SameGenProgram() *ast.Program {
	return parser.MustParse(`
sg(X, Y) :- flat(X, Y).
sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
`)
}

// Store bundles relations into an EDB store.
func Store(rels map[string]*relation.Relation) relation.Store {
	s := relation.Store{}
	for pred, r := range rels {
		s[pred] = r
	}
	return s
}
