package workload

import (
	"testing"

	"parlog/internal/relation"
	"parlog/internal/seminaive"
)

// closureSize evaluates the ancestor program over par and returns |anc|.
func closureSize(t *testing.T, par *relation.Relation) int {
	t.Helper()
	store, _, err := seminaive.Eval(AncestorProgram(), Store(map[string]*relation.Relation{"par": par}), seminaive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return store["anc"].Len()
}

func TestChainClosure(t *testing.T) {
	for _, n := range []int{1, 5, 12} {
		par := Chain(n)
		if par.Len() != n {
			t.Errorf("Chain(%d) has %d edges", n, par.Len())
		}
		if got, want := closureSize(t, par), n*(n+1)/2; got != want {
			t.Errorf("Chain(%d) closure = %d, want %d", n, got, want)
		}
	}
}

func TestCycleClosure(t *testing.T) {
	const n = 6
	if got, want := closureSize(t, Cycle(n)), n*n; got != want {
		t.Errorf("Cycle(%d) closure = %d, want %d", n, got, want)
	}
}

func TestTreeShape(t *testing.T) {
	// Complete binary tree of depth 3: 2+4+8 = 14 edges.
	tr := Tree(2, 3)
	if tr.Len() != 14 {
		t.Errorf("Tree(2,3) has %d edges, want 14", tr.Len())
	}
	// Closure: each node relates to all proper descendants.
	// Depth-d subtree sizes: node at level l has 2^(3-l+1)-2 descendants.
	// Total = Σ_{l=0}^{3} 2^l · (2^{4−l} − 2) = Σ 2^4 − 2^{l+1}.
	want := 0
	for l := 0; l <= 3; l++ {
		want += (1 << l) * ((1 << (4 - l)) - 2)
	}
	if got := closureSize(t, tr); got != want {
		t.Errorf("Tree(2,3) closure = %d, want %d", got, want)
	}
	if Tree(3, 0).Len() != 0 {
		t.Error("depth-0 tree has edges")
	}
}

func TestRandomGraphProperties(t *testing.T) {
	g := RandomGraph(10, 30, 1)
	if g.Len() != 30 {
		t.Errorf("edges = %d, want 30", g.Len())
	}
	for _, e := range g.Rows() {
		if e[0] == e[1] {
			t.Errorf("self-loop %v", e)
		}
		if int(e[0]) >= 10 || int(e[1]) >= 10 {
			t.Errorf("node out of range: %v", e)
		}
	}
	// Determinism.
	h := RandomGraph(10, 30, 1)
	if !g.Equal(h) {
		t.Error("same seed produced different graphs")
	}
	if g.Equal(RandomGraph(10, 30, 2)) {
		t.Error("different seeds produced identical graphs")
	}
}

func TestRandomGraphPanicsOnOverfull(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for impossible edge count")
		}
	}()
	RandomGraph(3, 7, 0)
}

func TestGridClosure(t *testing.T) {
	// 2×2 grid: closure pairs: (0,0)→{(1,0),(0,1),(1,1)}, (1,0)→(1,1),
	// (0,1)→(1,1): 5 pairs.
	if got := closureSize(t, Grid(2, 2)); got != 5 {
		t.Errorf("Grid(2,2) closure = %d, want 5", got)
	}
	if Grid(3, 1).Len() != 2 {
		t.Errorf("Grid(3,1) edges = %d, want 2", Grid(3, 1).Len())
	}
}

func TestComponentsClosure(t *testing.T) {
	// 3 disjoint chains of 4 edges: closure = 3 · 4·5/2 = 30, and no pair
	// crosses components.
	par := Components(3, 4)
	if par.Len() != 12 {
		t.Errorf("edges = %d", par.Len())
	}
	if got := closureSize(t, par); got != 30 {
		t.Errorf("closure = %d, want 30", got)
	}
}

func TestSameGenInput(t *testing.T) {
	up, flat, down := SameGenInput(2, 2)
	if up.Len() != 6 || down.Len() != 6 || flat.Len() != 1 {
		t.Errorf("sizes: up=%d flat=%d down=%d", up.Len(), flat.Len(), down.Len())
	}
	store, _, err := seminaive.Eval(SameGenProgram(), Store(map[string]*relation.Relation{
		"up": up, "flat": flat, "down": down,
	}), seminaive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Level 1 has 2 nodes (4 pairs), level 2 has 4 nodes (16 pairs), plus
	// (root,root): 21.
	if got := store["sg"].Len(); got != 21 {
		t.Errorf("|sg| = %d, want 21", got)
	}
}

func TestNonlinearAgreesWithLinear(t *testing.T) {
	par := RandomGraph(9, 20, 3)
	edb := Store(map[string]*relation.Relation{"par": par})
	lin, _, err := seminaive.Eval(AncestorProgram(), edb, seminaive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	non, _, err := seminaive.Eval(NonlinearAncestorProgram(), edb, seminaive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !lin["anc"].Equal(non["anc"]) {
		t.Error("linear and nonlinear ancestor disagree")
	}
}

func TestZipfGraph(t *testing.T) {
	g := ZipfGraph(50, 200, 2.0, 1)
	if g.Len() != 200 {
		t.Errorf("edges = %d", g.Len())
	}
	// Skew: the most frequent source should dominate.
	w := ColumnWeights(g, 0)
	max := 0
	for _, c := range w {
		if c > max {
			max = c
		}
	}
	if max < 200/10 {
		t.Errorf("max source frequency %d — not skewed", max)
	}
	if !g.Equal(ZipfGraph(50, 200, 2.0, 1)) {
		t.Error("not deterministic")
	}
}

func TestBrooms(t *testing.T) {
	// 3 brooms with 5, 7, 9 leaves: edges = 3 entries + 21 leaves = 24.
	b := Brooms(3, 5, 2)
	if b.Len() != 24 {
		t.Errorf("edges = %d, want 24", b.Len())
	}
	// Closure: per broom j with m leaves: entry→hub, entry→leaf×m,
	// hub→leaf×m = 2m+1.
	want := (2*5 + 1) + (2*7 + 1) + (2*9 + 1)
	if got := closureSize(t, b); got != want {
		t.Errorf("closure = %d, want %d", got, want)
	}
}

func TestColumnWeights(t *testing.T) {
	r := relation.New(2)
	r.Insert(relation.Tuple{1, 2})
	r.Insert(relation.Tuple{1, 3})
	r.Insert(relation.Tuple{2, 3})
	w := ColumnWeights(r, 0)
	if w[1] != 2 || w[2] != 1 {
		t.Errorf("weights = %v", w)
	}
}

func TestRandomRelation(t *testing.T) {
	r := RandomRelation(3, 5, 20, 2)
	if r.Len() != 20 || r.Arity() != 3 {
		t.Errorf("len=%d arity=%d", r.Len(), r.Arity())
	}
	defer func() {
		if recover() == nil {
			t.Error("impossible tuple count did not panic")
		}
	}()
	RandomRelation(1, 2, 5, 0)
}
