// Package dist executes a compiled parallel Datalog program over genuine
// message passing: every processor is a TCP endpoint exchanging gob-encoded
// tuple batches, with no shared memory between processors — the
// "non-shared-memory architecture" reading of the paper's abstract machine
// (Section 3), in contrast to internal/parallel's goroutine/channel
// idealization. Both transports drive the same parallel.Node state machine,
// so the scheme semantics are identical by construction.
//
// Topology: one coordinator plus N workers in a star. Workers dial the
// coordinator's port, announce their dense index, and exchange everything —
// control traffic and data batches — over that single connection. The
// coordinator routes every data batch to the worker currently owning its
// destination hash bucket and appends it to a per-bucket send log. That log
// is what makes worker failure survivable: the paper's discriminating hash
// function partitions the ground substitutions disjointly across buckets
// (Theorems 1–2), so a dead worker's bucket is a self-contained unit of
// work. On failure the coordinator reassigns the bucket to a survivor,
// which rebuilds the bucket's EDB fragment locally and replays the logged
// message history; monotonicity and set semantics make the replay confluent
// with the original execution, so the run still computes the exact least
// model (receivers drop rederived tuples by difference, as always).
//
// Liveness is coordinator-side: status probes double as heartbeats, and a
// worker silent past Config.WorkerDeadline (or whose connection breaks) is
// declared dead. Termination uses Mattern-style counter waves adapted to
// the star: per live worker, the batches it reports sent must equal the
// batches the coordinator accepted from it, and the batches it reports
// processed must equal the batches the coordinator delivered to it; two
// consecutive identical all-idle waves with no membership change establish
// quiescence, after which the coordinator collects outputs and statistics
// (the final pooling step).
//
// Workers may run as goroutines in the same process (Run) or as separate OS
// processes (cmd/dldist + RunWorker); the wire protocol is identical. For
// multi-process runs every process must parse the same program text so the
// constant interners agree.
package dist

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"parlog/internal/ast"
	"parlog/internal/obs"
	"parlog/internal/parallel"
	"parlog/internal/relation"
)

// Sentinel errors callers can test with errors.Is.
var (
	// ErrWorkerLost reports a worker death the runtime could not recover
	// from (no survivors left, or a death after quiescence).
	ErrWorkerLost = errors.New("dist: worker lost")
	// ErrTimeout reports a run that exceeded Config.Timeout.
	ErrTimeout = errors.New("dist: timeout")
)

// msgKind enumerates wire message types. Control and data share one
// connection per worker, so a single envelope carries both planes.
type msgKind int

const (
	kindJoin        msgKind = iota + 1 // worker → coordinator: announce index
	kindStart                          // coordinator → worker: begin evaluation
	kindStatus                         // coordinator → worker: heartbeat/status probe
	kindStatusReply                    // worker → coordinator: counters + idleness
	kindData                           // both directions: one tuple batch for a bucket
	kindAdopt                          // coordinator → worker: take over a bucket
	kindFinish                         // coordinator → worker: quiescent, ship outputs
	kindOutput                         // worker → coordinator: pooled outputs + stats
)

// wireMsg is the single wire envelope; Kind selects the meaningful fields.
type wireMsg struct {
	Kind   msgKind
	Index  int   // Join: the worker's dense index
	Probe  int   // Status/StatusReply: heartbeat sequence number
	Sent   int64 // StatusReply: data batches handed to the wire
	Recv   int64 // StatusReply: data batches processed
	Idle   bool  // StatusReply
	Bucket int   // Data: destination bucket; Adopt: bucket to take over
	From   int   // Data: originating bucket
	Pred   string
	Tuples [][]ast.Value
	Output map[string][][]ast.Value  // Output: per-predicate rows
	Stats  []parallel.ProcStats      // Output: one entry per hosted bucket
}

// Config configures a distributed run.
type Config struct {
	// Workers is the number of processors the coordinator waits for.
	Workers int
	// Addr is the coordinator's listen address (default "127.0.0.1:0").
	Addr string
	// WavePoll is the detection-wave and heartbeat-probe period
	// (default 200µs).
	WavePoll time.Duration
	// Timeout aborts a run that never quiesces (default 60s). The
	// returned error wraps ErrTimeout.
	Timeout time.Duration
	// HeartbeatInterval is how long a worker may stay silent before the
	// coordinator records a heartbeat miss (default 100ms).
	HeartbeatInterval time.Duration
	// WorkerDeadline is how long a worker may stay silent before the
	// coordinator declares it dead and recovers its buckets (default 2s).
	WorkerDeadline time.Duration
	// MaxRetries bounds a worker's connect retries (exponential backoff
	// with jitter); used by Run when spawning in-process workers
	// (default 5).
	MaxRetries int
	// RetryBase is the first backoff step of the connect retry
	// (default 5ms).
	RetryBase time.Duration
	// Ctx, when non-nil, cancels the run: every blocking path (accept,
	// decode, queue waits, detection waves) unblocks promptly.
	Ctx context.Context
	// Sink, when non-nil, receives the coordinator's and (for in-process
	// workers started by Run) the workers' event stream, including the
	// fault-tolerance events (heartbeat misses, deaths, reassignments,
	// replays).
	Sink obs.EventSink
	// ProcIDs maps dense worker indices to paper-level processor ids for
	// event labeling; nil labels events with the dense index.
	ProcIDs []int
	// WorkerDial, when non-nil, supplies each in-process worker's dialer
	// (Run only) — the fault-injection hook.
	WorkerDial func(wi int) DialFunc
}

func (c *Config) fill() {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.WavePoll <= 0 {
		c.WavePoll = 200 * time.Microsecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 60 * time.Second
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 100 * time.Millisecond
	}
	if c.WorkerDeadline <= 0 {
		c.WorkerDeadline = 2 * time.Second
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 5
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 5 * time.Millisecond
	}
	if c.Ctx == nil {
		c.Ctx = context.Background()
	}
}

// procID labels a dense worker index with its paper-level processor id.
func (c *Config) procID(wi int) int {
	if wi >= 0 && wi < len(c.ProcIDs) {
		return c.ProcIDs[wi]
	}
	return wi
}

// Recovery records one bucket reassignment performed during a run.
type Recovery struct {
	// Bucket is the recovered hash bucket (the dead worker's dense index
	// at compile time).
	Bucket int
	// FromWorker and ToWorker are dense worker indices.
	FromWorker, ToWorker int
	// Replayed is the number of logged batches replayed to the new owner.
	Replayed int
}

// Result is the pooled outcome of a distributed run.
type Result struct {
	Output relation.Store
	// Stats holds one entry per hash bucket (not per surviving worker):
	// a worker hosting recovered buckets reports each separately. Sorted
	// by processor id.
	Stats []parallel.ProcStats
	Wall  time.Duration
	// Deaths lists the dense indices of workers declared dead, in order
	// of death.
	Deaths []int
	// Recoveries lists the bucket reassignments that kept the run alive.
	Recoveries []Recovery
}

// queue is an unbounded FIFO of wire messages with close semantics: pop
// drains remaining messages before reporting closed, so a writer can flush
// everything enqueued before shutdown. One consumer per queue.
type queue struct {
	mu     sync.Mutex
	msgs   []wireMsg
	head   int
	closed bool
	notify chan struct{}
}

func newQueue() *queue { return &queue{notify: make(chan struct{}, 1)} }

func (q *queue) signal() {
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

// push enqueues m unless the queue is closed.
func (q *queue) push(m wireMsg) {
	q.mu.Lock()
	if !q.closed {
		q.msgs = append(q.msgs, m)
	}
	q.mu.Unlock()
	q.signal()
}

// pop blocks until a message is available or the queue is closed and
// drained.
func (q *queue) pop() (wireMsg, bool) {
	for {
		q.mu.Lock()
		if q.head < len(q.msgs) {
			m := q.msgs[q.head]
			q.msgs[q.head] = wireMsg{} // release tuple memory
			q.head++
			if q.head == len(q.msgs) {
				q.msgs = q.msgs[:0]
				q.head = 0
			}
			q.mu.Unlock()
			return m, true
		}
		closed := q.closed
		q.mu.Unlock()
		if closed {
			return wireMsg{}, false
		}
		<-q.notify
	}
}

// takeAll drains the queue without blocking (mailbox mode).
func (q *queue) takeAll() []wireMsg {
	q.mu.Lock()
	out := q.msgs[q.head:]
	q.msgs = nil
	q.head = 0
	q.mu.Unlock()
	return out
}

// close stops accepting pushes and wakes the consumer.
func (q *queue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.signal()
}

// Coordinator orchestrates one run. Create with NewCoordinator, hand its
// Addr to the workers, then call Wait.
type Coordinator struct {
	cfg     Config
	ln      net.Listener
	arities map[string]int
}

// NewCoordinator opens the control listener.
func NewCoordinator(cfg Config, idbArities map[string]int) (*Coordinator, error) {
	cfg.fill()
	if cfg.Workers <= 0 {
		return nil, fmt.Errorf("dist: Workers must be positive")
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	return &Coordinator{cfg: cfg, ln: ln, arities: idbArities}, nil
}

// Addr returns the address workers must dial.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// wkState is the coordinator's handle on one worker: its connection, its
// serialized outbound queue, and the counters the termination and liveness
// logic reads. All mutable fields are guarded by the router mutex.
type wkState struct {
	index int
	conn  net.Conn
	dec   *gob.Decoder
	out   *queue

	alive     bool
	connErr   error     // first reader/writer error; death finalized by the wave loop
	lastHeard time.Time // last status reply (or start time)
	misses    int       // heartbeat misses already reported

	// Last reported worker counters (from kindStatusReply).
	rSent, rRecv int64
	rIdle        bool

	// Coordinator-side authoritative counters: data batches accepted
	// from this worker and delivered to it (including replays).
	accepted, delivered int64

	output *wireMsg // final kindOutput, once received
}

// router is the shared hub: bucket ownership, per-bucket send logs, worker
// states and the death/recovery bookkeeping. One mutex guards it all — the
// data plane takes it once per batch, which is noise next to a gob encode.
type router struct {
	mu   sync.Mutex
	cfg  *Config
	ws   []*wkState
	own  []int       // bucket → dense index of the hosting worker
	logs [][]wireMsg // bucket → every data batch ever delivered to it

	gen        int // membership generation; bumped on every death
	deaths     []int
	recoveries []Recovery
	fatal      error

	outputCh chan int // worker indices that delivered their output
}

func newRouter(cfg *Config, ws []*wkState) *router {
	r := &router{
		cfg:      cfg,
		ws:       ws,
		own:      make([]int, len(ws)),
		logs:     make([][]wireMsg, len(ws)),
		outputCh: make(chan int, len(ws)),
	}
	for i := range r.own {
		r.own[i] = i
	}
	return r
}

// connBroken records a connection failure; the wave loop turns it into a
// death (keeping all recovery logic on one goroutine).
func (r *router) connBroken(w *wkState, err error) {
	r.mu.Lock()
	if w.alive && w.connErr == nil {
		w.connErr = err
	}
	r.mu.Unlock()
}

// route logs and forwards one data batch to the current owner of its
// destination bucket. Batches from workers already declared dead are
// dropped: their buckets are being replayed and set semantics make the
// replayed derivations a superset.
func (r *router) route(w *wkState, m wireMsg) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !w.alive {
		return
	}
	w.accepted++
	if m.Bucket < 0 || m.Bucket >= len(r.own) {
		return // corrupt destination; counted so the wave math stays balanced
	}
	r.logs[m.Bucket] = append(r.logs[m.Bucket], m)
	o := r.ws[r.own[m.Bucket]]
	o.delivered++
	o.out.push(m)
}

func (r *router) noteStatus(w *wkState, m wireMsg) {
	r.mu.Lock()
	w.lastHeard = time.Now()
	w.misses = 0
	w.rSent, w.rRecv, w.rIdle = m.Sent, m.Recv, m.Idle
	r.mu.Unlock()
}

func (r *router) noteOutput(w *wkState, m wireMsg) {
	r.mu.Lock()
	w.output = &m
	r.mu.Unlock()
	r.outputCh <- w.index
}

// probe enqueues one status/heartbeat probe to every live worker.
func (r *router) probe(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, w := range r.ws {
		if w.alive {
			w.out.push(wireMsg{Kind: kindStatus, Probe: n})
		}
	}
}

// checkLiveness declares deaths (broken connections, deadline overruns),
// reports heartbeat misses, and performs bucket recovery. Called from the
// wave loop only.
func (r *router) checkLiveness(now time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, w := range r.ws {
		if !w.alive {
			continue
		}
		if w.connErr != nil {
			r.declareDead(w, fmt.Sprintf("connection failed: %v", w.connErr))
			continue
		}
		silent := now.Sub(w.lastHeard)
		if silent > r.cfg.WorkerDeadline {
			r.declareDead(w, fmt.Sprintf("no heartbeat for %v", silent.Round(time.Millisecond)))
			continue
		}
		if r.cfg.HeartbeatInterval > 0 {
			if missed := int(silent / r.cfg.HeartbeatInterval); missed > w.misses {
				w.misses = missed
				if r.cfg.Sink != nil {
					r.cfg.Sink.HeartbeatMiss(r.cfg.procID(w.index), missed)
				}
			}
		}
	}
}

// declareDead removes w from the membership and recovers its buckets:
// every bucket w hosted is reassigned to the least-loaded survivor, which
// is told to adopt it (rebuilding the EDB fragment locally) and is then
// replayed the bucket's complete message log. Caller holds the mutex.
func (r *router) declareDead(w *wkState, reason string) {
	w.alive = false
	r.gen++
	r.deaths = append(r.deaths, w.index)
	w.conn.Close()
	w.out.close()
	if r.cfg.Sink != nil {
		r.cfg.Sink.WorkerDead(r.cfg.procID(w.index), reason)
	}

	// Buckets w hosted (its own, plus any it had adopted earlier —
	// cascading failures recover the same way).
	var lost []int
	for b, o := range r.own {
		if o == w.index {
			lost = append(lost, b)
		}
	}
	if len(lost) == 0 {
		return
	}
	for _, b := range lost {
		s := r.survivorLocked()
		if s == nil {
			if r.fatal == nil {
				r.fatal = fmt.Errorf("dist: worker %d died (%s) with no survivors: %w", w.index, reason, ErrWorkerLost)
			}
			return
		}
		r.own[b] = s.index
		r.recoveries = append(r.recoveries, Recovery{
			Bucket: b, FromWorker: w.index, ToWorker: s.index, Replayed: len(r.logs[b]),
		})
		if r.cfg.Sink != nil {
			r.cfg.Sink.BucketReassigned(b, r.cfg.procID(w.index), r.cfg.procID(s.index))
			r.cfg.Sink.ReplayStart(b, r.cfg.procID(s.index))
		}
		s.out.push(wireMsg{Kind: kindAdopt, Bucket: b})
		for _, lm := range r.logs[b] {
			s.delivered++
			s.out.push(lm)
		}
		if r.cfg.Sink != nil {
			r.cfg.Sink.ReplayEnd(b, r.cfg.procID(s.index), len(r.logs[b]))
		}
	}
}

// survivorLocked picks the live worker hosting the fewest buckets (lowest
// index on ties) — a deterministic, load-balancing choice.
func (r *router) survivorLocked() *wkState {
	hosted := make(map[int]int)
	for _, o := range r.own {
		hosted[o]++
	}
	var best *wkState
	for _, w := range r.ws {
		if !w.alive {
			continue
		}
		if best == nil || hosted[w.index] < hosted[best.index] {
			best = w
		}
	}
	return best
}

// snapshot evaluates the quiescence condition over the live membership and
// returns the wave vector the two-wave stability check compares.
func (r *router) snapshot() (vec []int64, allQuiet bool, gen int, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	allQuiet = true
	any := false
	for _, w := range r.ws {
		if !w.alive {
			continue
		}
		any = true
		if !w.rIdle || w.rSent != w.accepted || w.rRecv != w.delivered {
			allQuiet = false
		}
		var idle int64
		if w.rIdle {
			idle = 1
		}
		vec = append(vec, int64(w.index), w.rSent, w.rRecv, w.accepted, w.delivered, idle)
	}
	if !any {
		allQuiet = false
	}
	return vec, allQuiet, r.gen, r.fatal
}

// finish asks every live worker for its output and returns their indices.
func (r *router) finish() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	var live []int
	for _, w := range r.ws {
		if w.alive {
			w.out.push(wireMsg{Kind: kindFinish})
			live = append(live, w.index)
		}
	}
	return live
}

// closeAll tears down every connection and queue (idempotent).
func (r *router) closeAll() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, w := range r.ws {
		w.conn.Close()
		w.out.close()
	}
}

func equalVec(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Wait accepts the workers, runs the protocol to completion — surviving
// worker deaths via bucket recovery — and returns the pooled result. It
// closes the listener before returning.
func (c *Coordinator) Wait() (*Result, error) {
	defer c.ln.Close()
	start := time.Now()
	deadline := start.Add(c.cfg.Timeout)
	ctx := c.cfg.Ctx

	// Join phase: accept one connection per worker. Cancellation closes
	// the listener; the deadline bounds the whole phase.
	stopJoinWatch := context.AfterFunc(ctx, func() { c.ln.Close() })
	ws := make([]*wkState, c.cfg.Workers)
	for joined := 0; joined < c.cfg.Workers; joined++ {
		if err := c.ln.(*net.TCPListener).SetDeadline(deadline); err != nil {
			stopJoinWatch()
			return nil, err
		}
		conn, err := c.ln.Accept()
		if err != nil {
			stopJoinWatch()
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				return nil, fmt.Errorf("dist: waiting for workers: %v: %w", err, ErrTimeout)
			}
			return nil, fmt.Errorf("dist: waiting for workers: %w", err)
		}
		dec := gob.NewDecoder(conn)
		var join wireMsg
		if err := dec.Decode(&join); err != nil {
			stopJoinWatch()
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, fmt.Errorf("dist: join decode: %w", err)
		}
		if join.Kind != kindJoin || join.Index < 0 || join.Index >= c.cfg.Workers {
			stopJoinWatch()
			conn.Close()
			return nil, fmt.Errorf("dist: bad join message (kind %d, index %d)", join.Kind, join.Index)
		}
		if ws[join.Index] != nil {
			stopJoinWatch()
			conn.Close()
			return nil, fmt.Errorf("dist: duplicate worker index %d", join.Index)
		}
		ws[join.Index] = &wkState{
			index: join.Index, conn: conn, dec: dec, out: newQueue(),
			alive: true, lastHeard: time.Now(),
		}
	}
	stopJoinWatch()
	if err := ctx.Err(); err != nil {
		for _, w := range ws {
			w.conn.Close()
		}
		return nil, err
	}

	r := newRouter(&c.cfg, ws)
	defer r.closeAll()
	stopWatch := context.AfterFunc(ctx, r.closeAll)
	defer stopWatch()

	// Per-worker reader and writer goroutines.
	for _, w := range ws {
		w := w
		go c.readLoop(r, w)
		go func() {
			enc := gob.NewEncoder(w.conn)
			for {
				m, ok := w.out.pop()
				if !ok {
					return
				}
				if err := enc.Encode(m); err != nil {
					r.connBroken(w, err)
					return
				}
			}
		}()
	}

	// Start phase.
	r.mu.Lock()
	for _, w := range ws {
		w.lastHeard = time.Now() // the liveness clock starts now
		w.out.push(wireMsg{Kind: kindStart})
	}
	r.mu.Unlock()

	// Detection waves: Mattern-style counter comparison over the star.
	// Each wave doubles as a heartbeat probe; deaths discovered here
	// trigger bucket recovery before the next quiescence check.
	var prevVec []int64
	prevQuiet := false
	prevGen := -1
	waveTimer := time.NewTimer(c.cfg.WavePoll)
	defer waveTimer.Stop()
	for waveNum := 0; ; waveNum++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("dist: run exceeded %v without quiescing: %w", c.cfg.Timeout, ErrTimeout)
		}
		r.checkLiveness(time.Now())
		r.probe(waveNum)
		vec, quiet, gen, fatal := r.snapshot()
		if fatal != nil {
			return nil, fatal
		}
		done := quiet && prevQuiet && gen == prevGen && equalVec(vec, prevVec)
		if c.cfg.Sink != nil {
			c.cfg.Sink.TermProbe("mattern", waveNum, done)
		}
		if done {
			break
		}
		prevVec, prevQuiet, prevGen = vec, quiet, gen
		waveTimer.Reset(c.cfg.WavePoll)
		select {
		case <-waveTimer.C:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}

	// Collection phase: final pooling. A worker death here is fatal —
	// survivors may already have shipped outputs and exited, so the
	// replay machinery is gone.
	live := r.finish()
	need := make(map[int]bool, len(live))
	for _, wi := range live {
		need[wi] = true
	}
	collectTimer := time.NewTimer(c.cfg.WavePoll)
	defer collectTimer.Stop()
	for len(need) > 0 {
		select {
		case wi := <-r.outputCh:
			delete(need, wi)
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-collectTimer.C:
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("dist: output collection exceeded %v: %w", c.cfg.Timeout, ErrTimeout)
			}
			r.mu.Lock()
			var broken error
			for _, w := range ws {
				if w.alive && need[w.index] && w.connErr != nil {
					broken = fmt.Errorf("dist: worker %d died after quiescence: %v: %w", w.index, w.connErr, ErrWorkerLost)
				}
			}
			r.mu.Unlock()
			if broken != nil {
				return nil, broken
			}
			collectTimer.Reset(c.cfg.WavePoll)
		}
	}

	res := &Result{Output: relation.Store{}}
	for pred, ar := range c.arities {
		res.Output.Get(pred, ar)
	}
	r.mu.Lock()
	res.Deaths = append(res.Deaths, r.deaths...)
	res.Recoveries = append(res.Recoveries, r.recoveries...)
	for _, w := range ws {
		if w.output == nil {
			continue
		}
		for pred, tuples := range w.output.Output {
			if len(tuples) == 0 {
				continue
			}
			ar := len(tuples[0])
			if want, ok := c.arities[pred]; ok {
				ar = want
			}
			dst := res.Output.Get(pred, ar)
			for _, t := range tuples {
				dst.Insert(t)
			}
		}
		res.Stats = append(res.Stats, w.output.Stats...)
	}
	r.mu.Unlock()
	sort.Slice(res.Stats, func(i, j int) bool { return res.Stats[i].Proc < res.Stats[j].Proc })
	res.Wall = time.Since(start)
	return res, nil
}

// readLoop decodes one worker's inbound stream and dispatches it.
func (c *Coordinator) readLoop(r *router, w *wkState) {
	for {
		var m wireMsg
		if err := w.dec.Decode(&m); err != nil {
			r.connBroken(w, err)
			return
		}
		switch m.Kind {
		case kindStatusReply:
			r.noteStatus(w, m)
		case kindData:
			r.route(w, m)
		case kindOutput:
			r.noteOutput(w, m)
			return
		default:
			r.connBroken(w, fmt.Errorf("unexpected message kind %d", m.Kind))
			return
		}
	}
}
