// Package dist executes a compiled parallel Datalog program over genuine
// message passing: every processor is a TCP endpoint exchanging gob-encoded
// tuple batches, with no shared memory between processors — the
// "non-shared-memory architecture" reading of the paper's abstract machine
// (Section 3), in contrast to internal/parallel's goroutine/channel
// idealization. Both transports drive the same parallel.Node state machine,
// so the scheme semantics are identical by construction.
//
// Topology: one coordinator plus N workers. Workers dial the coordinator's
// control port, announce their data address, receive the peer address map,
// and then exchange data batches directly (full mesh, lazily dialed).
// Termination uses Mattern's four-counter method over the control plane:
// the coordinator polls each worker's monotone (sent, received, idle)
// counters; two consecutive identical, balanced, all-idle waves establish
// quiescence, after which the coordinator collects outputs and statistics
// (the final pooling step).
//
// Workers may run as goroutines in the same process (Run) or as separate OS
// processes (cmd/dldist + RunWorker); the wire protocol is identical. For
// multi-process runs every process must parse the same program text so the
// constant interners agree.
package dist

import (
	"context"
	"encoding/gob"
	"fmt"
	"net"
	"time"

	"parlog/internal/ast"
	"parlog/internal/obs"
	"parlog/internal/parallel"
	"parlog/internal/relation"
)

// ctrlKind enumerates control-plane message types.
type ctrlKind int

const (
	kindJoin ctrlKind = iota + 1
	kindStart
	kindStatus
	kindStatusReply
	kindFinish
	kindOutput
)

// ctrlMsg is the control-plane envelope (coordinator ↔ worker).
type ctrlMsg struct {
	Kind     ctrlKind
	Index    int      // Join: the worker's dense index
	DataAddr string   // Join: where the worker accepts data connections
	Peers    []string // Start: data addresses indexed by worker
	Sent     int64    // StatusReply
	Recv     int64    // StatusReply
	Idle     bool     // StatusReply
	Output   map[string][][]ast.Value
	Stats    parallel.ProcStats
}

// dataMsg is one tuple batch on the data plane (worker → worker).
type dataMsg struct {
	From   int
	Pred   string
	Tuples [][]ast.Value
}

// Config configures a distributed run.
type Config struct {
	// Workers is the number of processors the coordinator waits for.
	Workers int
	// Addr is the coordinator's listen address (default "127.0.0.1:0").
	Addr string
	// WavePoll is the detection-wave period (default 200µs).
	WavePoll time.Duration
	// Timeout aborts a run that never quiesces (default 60s).
	Timeout time.Duration
	// Ctx, when non-nil, cancels the run between detection waves.
	Ctx context.Context
	// Sink, when non-nil, receives the coordinator's and (for in-process
	// workers started by Run) the workers' event stream.
	Sink obs.EventSink
}

func (c *Config) fill() {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.WavePoll <= 0 {
		c.WavePoll = 200 * time.Microsecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 60 * time.Second
	}
}

// Result is the pooled outcome of a distributed run.
type Result struct {
	Output relation.Store
	Stats  []parallel.ProcStats
	Wall   time.Duration
}

// Coordinator orchestrates one run. Create with NewCoordinator, hand its
// Addr to the workers, then call Wait.
type Coordinator struct {
	cfg     Config
	ln      net.Listener
	arities map[string]int
}

// NewCoordinator opens the control listener.
func NewCoordinator(cfg Config, idbArities map[string]int) (*Coordinator, error) {
	cfg.fill()
	if cfg.Workers <= 0 {
		return nil, fmt.Errorf("dist: Workers must be positive")
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	return &Coordinator{cfg: cfg, ln: ln, arities: idbArities}, nil
}

// Addr returns the control address workers must dial.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// wave is one detection snapshot.
type wave struct {
	sent, recv int64
	allIdle    bool
}

// Wait accepts the workers, runs the protocol to completion and returns the
// pooled result. It closes the listener before returning.
func (c *Coordinator) Wait() (*Result, error) {
	defer c.ln.Close()
	start := time.Now()
	deadline := start.Add(c.cfg.Timeout)

	type peer struct {
		conn net.Conn
		enc  *gob.Encoder
		dec  *gob.Decoder
	}
	peers := make([]*peer, c.cfg.Workers)
	addrs := make([]string, c.cfg.Workers)

	// Join phase.
	for joined := 0; joined < c.cfg.Workers; joined++ {
		if err := c.ln.(*net.TCPListener).SetDeadline(deadline); err != nil {
			return nil, err
		}
		conn, err := c.ln.Accept()
		if err != nil {
			return nil, fmt.Errorf("dist: waiting for workers: %w", err)
		}
		p := &peer{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
		var join ctrlMsg
		if err := p.dec.Decode(&join); err != nil {
			return nil, fmt.Errorf("dist: join decode: %w", err)
		}
		if join.Kind != kindJoin || join.Index < 0 || join.Index >= c.cfg.Workers {
			return nil, fmt.Errorf("dist: bad join message (kind %d, index %d)", join.Kind, join.Index)
		}
		if peers[join.Index] != nil {
			return nil, fmt.Errorf("dist: duplicate worker index %d", join.Index)
		}
		peers[join.Index] = p
		addrs[join.Index] = join.DataAddr
	}
	defer func() {
		for _, p := range peers {
			p.conn.Close()
		}
	}()

	// Start phase.
	for _, p := range peers {
		if err := p.enc.Encode(ctrlMsg{Kind: kindStart, Peers: addrs}); err != nil {
			return nil, fmt.Errorf("dist: start: %w", err)
		}
	}

	// Detection waves: Mattern's four-counter method over request/response
	// polling. Per-worker counters are monotone and each worker increments
	// its sent counter before the batch reaches the wire, so two identical
	// balanced all-idle waves imply global quiescence.
	var prev *wave
	for waveNum := 0; ; waveNum++ {
		if c.cfg.Ctx != nil {
			if err := c.cfg.Ctx.Err(); err != nil {
				return nil, err
			}
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("dist: run exceeded %v without quiescing", c.cfg.Timeout)
		}
		cur := wave{allIdle: true}
		for _, p := range peers {
			if err := p.enc.Encode(ctrlMsg{Kind: kindStatus}); err != nil {
				return nil, fmt.Errorf("dist: status: %w", err)
			}
			var rep ctrlMsg
			if err := p.dec.Decode(&rep); err != nil {
				return nil, fmt.Errorf("dist: status reply: %w", err)
			}
			if rep.Kind != kindStatusReply {
				return nil, fmt.Errorf("dist: unexpected reply kind %d", rep.Kind)
			}
			cur.sent += rep.Sent
			cur.recv += rep.Recv
			if !rep.Idle {
				cur.allIdle = false
			}
		}
		done := cur.allIdle && cur.sent == cur.recv && prev != nil && *prev == cur
		if c.cfg.Sink != nil {
			c.cfg.Sink.TermProbe("mattern", waveNum, done)
		}
		if done {
			break
		}
		prev = &cur
		time.Sleep(c.cfg.WavePoll)
	}

	// Collection phase: final pooling.
	res := &Result{Output: relation.Store{}}
	for pred, ar := range c.arities {
		res.Output.Get(pred, ar)
	}
	for _, p := range peers {
		if err := p.enc.Encode(ctrlMsg{Kind: kindFinish}); err != nil {
			return nil, fmt.Errorf("dist: finish: %w", err)
		}
		var out ctrlMsg
		if err := p.dec.Decode(&out); err != nil {
			return nil, fmt.Errorf("dist: output: %w", err)
		}
		if out.Kind != kindOutput {
			return nil, fmt.Errorf("dist: unexpected output kind %d", out.Kind)
		}
		for pred, tuples := range out.Output {
			ar := len(tuples[0])
			if want, ok := c.arities[pred]; ok {
				ar = want
			}
			dst := res.Output.Get(pred, ar)
			for _, t := range tuples {
				dst.Insert(t)
			}
		}
		res.Stats = append(res.Stats, out.Stats)
	}
	res.Wall = time.Since(start)
	return res, nil
}
