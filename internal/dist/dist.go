// Package dist executes a compiled parallel Datalog program over genuine
// message passing: every processor is a TCP endpoint exchanging tuple
// batches, with no shared memory between processors — the
// "non-shared-memory architecture" reading of the paper's abstract machine
// (Section 3), in contrast to internal/parallel's goroutine/channel
// idealization. Both transports drive the same parallel.Node state machine,
// so the scheme semantics are identical by construction.
//
// Topology: one coordinator plus N workers in a star. Workers dial the
// coordinator's port, announce their dense index, and exchange everything —
// control traffic and data batches — over that single connection. The
// coordinator routes every data batch to the worker currently owning its
// destination hash bucket and appends it to a per-bucket send log. That log
// is what makes worker failure survivable: the paper's discriminating hash
// function partitions the ground substitutions disjointly across buckets
// (Theorems 1–2), so a dead worker's bucket is a self-contained unit of
// work. On failure the coordinator reassigns the bucket to a survivor,
// which rebuilds the bucket's EDB fragment locally, installs the bucket's
// latest checkpoint (if any) and replays the logged message suffix;
// monotonicity and set semantics make the replay confluent with the
// original execution, so the run still computes the exact least model
// (receivers drop rederived tuples by difference, as always).
//
// Memory is bounded by three cooperating mechanisms. Periodic bucket
// checkpoints (Config.CheckpointEvery / CheckpointInterval) ask a bucket's
// owner for its derived-tuple set; once a checksummed checkpoint is stored,
// the send-log prefix it covers is truncated, turning recovery from
// O(full history) into O(checkpoint + suffix). Credit-based flow control
// (Config.MaxInflightBatches / MaxQueueBytes) bounds the data resident in
// the coordinator's queues: each worker holds a byte/batch credit and
// blocks before sending past it; credit returns only when the batch leaves
// coordinator memory. Control traffic — joins, heartbeats, status replies,
// adopts, checkpoints, credit grants — bypasses the data credit entirely,
// so liveness and termination detection can never deadlock behind full
// data queues. Finally a shared budget (Config.MaxMemoryBytes) across
// logs, checkpoints and queues first forces an early checkpoint+truncate
// cycle under pressure and, only if still over budget once that cycle
// resolves, fails fast with ErrResourceExhausted instead of OOMing.
//
// Liveness is coordinator-side: status probes double as heartbeats, and a
// worker silent past Config.WorkerDeadline (or whose connection breaks) is
// declared dead. Termination uses Mattern-style counter waves adapted to
// the star: per live worker, the batches it reports sent must equal the
// batches the coordinator accepted from it, and the batches it reports
// processed must equal the batches the coordinator delivered to it; two
// consecutive identical all-idle waves with no membership change establish
// quiescence, after which the coordinator collects outputs and statistics
// (the final pooling step).
//
// The wire format is hybrid: gob carries the envelope (wireMsg) for the
// low-rate control plane, while the high-rate payloads — data batches,
// checkpoint snapshots, the final outputs — travel inside it as opaque
// byte blobs encoded by internal/wire's varint codec. The coordinator
// verifies a snapshot's FNV checksum over those bytes, stores the blob
// verbatim and replays it verbatim on adopt; the byte length is the
// credit/memory accounting unit both ends agree on for free.
//
// Workers may run as goroutines in the same process (Run) or as separate OS
// processes (cmd/dldist + RunWorker); the wire protocol is identical. For
// multi-process runs every process must parse the same program text so the
// constant interners agree.
package dist

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"parlog/internal/network"
	"parlog/internal/obs"
	"parlog/internal/parallel"
	"parlog/internal/relation"
	"parlog/internal/seminaive"
	"parlog/internal/wire"
)

// Sentinel errors callers can test with errors.Is.
var (
	// ErrWorkerLost reports a worker death the runtime could not recover
	// from (no survivors left, or a death after quiescence).
	ErrWorkerLost = errors.New("dist: worker lost")
	// ErrTimeout reports a run that exceeded Config.Timeout.
	ErrTimeout = errors.New("dist: timeout")
	// ErrResourceExhausted reports a run that stayed over its
	// Config.MaxMemoryBytes budget even after a forced checkpoint and
	// truncation cycle — the fail-fast alternative to an OOM kill.
	ErrResourceExhausted = errors.New("dist: resource budget exhausted")
)

// msgKind enumerates wire message types. Control and data share one
// connection per worker, so a single envelope carries both planes.
type msgKind int

const (
	kindJoin            msgKind = iota + 1 // worker → coordinator: announce index
	kindStart                              // coordinator → worker: begin evaluation (carries the initial credit)
	kindStatus                             // coordinator → worker: heartbeat/status probe
	kindStatusReply                        // worker → coordinator: counters + idleness
	kindData                               // both directions: one tuple batch for a bucket
	kindAdopt                              // coordinator → worker: take over a bucket (carries its checkpoint)
	kindFinish                             // coordinator → worker: quiescent, ship outputs
	kindOutput                             // worker → coordinator: pooled outputs + stats
	kindCheckpointReq                      // coordinator → worker: snapshot one hosted bucket
	kindCheckpointReply                    // worker → coordinator: the bucket's derived-tuple set + checksum
	kindCredit                             // coordinator → worker: return send credit
	kindRelease                            // coordinator → worker: stop hosting a bucket (it migrated away)
)

// wireMsg is the single wire envelope; Kind selects the meaningful fields.
type wireMsg struct {
	Kind   msgKind
	Index  int   // Join: the worker's dense index
	Probe  int   // Status/StatusReply: heartbeat sequence; CheckpointReq/Reply: checkpoint id
	Sent   int64 // StatusReply: data batches handed to the wire
	Recv   int64 // StatusReply: data batches processed
	Busy   int64 // StatusReply: cumulative evaluation nanoseconds
	Idle   bool  // StatusReply
	Bucket int   // Data: destination bucket; Adopt/Checkpoint: the bucket concerned
	From   int   // Data: originating bucket
	Pred   string
	Raw    []byte               // Data: one wire-encoded tuple batch (internal/wire)
	Snap   []byte               // Output: the pooled relations; CheckpointReply/Adopt: the snapshot — both wire-encoded
	Stats  []parallel.ProcStats // Output: one entry per hosted bucket
	// Profiles carries the hosted buckets' per-rule runtime profiles on
	// Output when the run was started with Profile set; the flat exported
	// RuleProfile records gob-encode as-is.
	Profiles []*seminaive.RuleProfile
	// Profile on Start arms per-rule runtime counters on every node the
	// worker hosts, including later adoptions.
	Profile bool
	Sum     uint64 // CheckpointReply: wire.Checksum of Snap
	// Span and Parent causally link data batches (see internal/wire's
	// SpanID): Span identifies this batch, Parent the received batch whose
	// processing derived it. They travel in the logged envelope, so a
	// replayed batch carries its originating span verbatim — the causal
	// chain survives worker death.
	Span   uint64 // Data: this batch's span id (0 = untracked)
	Parent uint64 // Data: the span that caused this batch (0 = initialization)
	// Credit fields: the initial grant on Start, replenishment on Credit.
	Credits     int   // data batches the receiver may have in flight (0 = unlimited on Start)
	CreditBytes int64 // data bytes the receiver may have resident at the coordinator (0 = unlimited on Start)
}

// dataCost is the resident size of one data batch — the encoded payload
// plus the envelope — the accounting unit of the credit and memory
// ledgers. Workers and the coordinator charge the same byte slice, so
// debits and grants agree without shipping sizes over the wire.
func dataCost(raw []byte) int64 {
	return 96 + int64(len(raw))
}

// snapCost is dataCost's analogue for a stored checkpoint snapshot.
func snapCost(snap []byte) int64 {
	if len(snap) == 0 {
		return 0
	}
	return 96 + int64(len(snap))
}

// RebalanceConfig tunes the coordinator's skew-triggered adaptive load
// balancer. When Enabled, the coordinator samples each bucket's routed
// tuple volume every Interval into a sliding window of Window samples;
// when the per-bucket window skew (max/mean) reaches SkewThreshold and at
// least MinVolume tuples moved inside the window, the hottest bucket of
// the hottest worker migrates to the least-loaded worker over the
// checkpoint + send-log-suffix replay path — a recovery without a death.
type RebalanceConfig struct {
	// Enabled turns the rebalancer on.
	Enabled bool
	// SkewThreshold triggers a migration when max bucket window load /
	// mean bucket window load reaches it (default 2.0). A perfectly
	// balanced discriminating function scores 1.0.
	SkewThreshold float64
	// Interval is the load-sampling period (default 10ms).
	Interval time.Duration
	// Window is the number of samples in the sliding window (default 3).
	Window int
	// Cooldown is the minimum gap between migration decisions — applied
	// after migrations and rejections alike, so a doomed candidate can't
	// spin (default 2×Interval).
	Cooldown time.Duration
	// MaxMigrations bounds migrations per run; 0 = unlimited.
	MaxMigrations int
	// MinVolume is the minimum tuples routed inside the window for the
	// skew signal to be trusted (default 64); quiet tails don't migrate.
	MinVolume int64
	// Force triggers a migration on every eligible sample regardless of
	// skew or volume — the differential tests' forced-migration mode.
	Force bool
}

func (rc *RebalanceConfig) fill() {
	if !rc.Enabled {
		return
	}
	if rc.SkewThreshold <= 0 {
		rc.SkewThreshold = 2.0
	}
	if rc.Interval <= 0 {
		rc.Interval = 10 * time.Millisecond
	}
	if rc.Window <= 0 {
		rc.Window = 3
	}
	if rc.Cooldown <= 0 {
		rc.Cooldown = 2 * rc.Interval
	}
	if rc.MinVolume <= 0 {
		rc.MinVolume = 64
	}
}

// Config configures a distributed run.
type Config struct {
	// Workers is the number of processors the coordinator waits for.
	Workers int
	// Buckets is the number of hash buckets the program was compiled for.
	// It may exceed Workers — extra buckets are spread bucket%Workers at
	// start and are the rebalancer's unit of migration. 0 (or any value
	// below Workers) means one bucket per worker, the classic 1:1 layout.
	Buckets int
	// Addr is the coordinator's listen address (default "127.0.0.1:0").
	Addr string
	// WavePoll is the detection-wave and heartbeat-probe period
	// (default 200µs).
	WavePoll time.Duration
	// Timeout aborts a run that never quiesces (default 60s). The
	// returned error wraps ErrTimeout.
	Timeout time.Duration
	// HeartbeatInterval is how long a worker may stay silent before the
	// coordinator records a heartbeat miss (default 100ms).
	HeartbeatInterval time.Duration
	// WorkerDeadline is how long a worker may stay silent before the
	// coordinator declares it dead and recovers its buckets (default 2s).
	WorkerDeadline time.Duration
	// MaxRetries bounds a worker's connect retries (exponential backoff
	// with jitter); used by Run when spawning in-process workers
	// (default 5).
	MaxRetries int
	// RetryBase is the first backoff step of the connect retry
	// (default 5ms).
	RetryBase time.Duration

	// CheckpointEvery requests a checkpoint of a bucket after that many
	// data batches have been logged for it since its last checkpoint;
	// 0 disables the count trigger.
	CheckpointEvery int
	// CheckpointInterval requests a checkpoint of every bucket with a
	// non-empty send log at this period; 0 disables the timer trigger.
	// Either trigger bounds recovery replay to the log suffix since the
	// last accepted checkpoint.
	CheckpointInterval time.Duration
	// MaxInflightBatches bounds the data batches each worker may have
	// unacknowledged at the coordinator; senders block until credit
	// returns. 0 means unlimited.
	MaxInflightBatches int
	// MaxQueueBytes bounds the estimated bytes of data batches resident
	// in the coordinator's outbound queues, split evenly into per-worker
	// byte credits; credit returns only when a batch has been handed to
	// the destination's TCP stream. 0 means unlimited.
	MaxQueueBytes int64
	// MaxMemoryBytes is a shared budget over send logs, stored
	// checkpoints and queued batches. When exceeded the coordinator
	// forces an early checkpoint+truncate cycle; if the budget is still
	// exceeded once that cycle resolves, the run fails with an error
	// wrapping ErrResourceExhausted. 0 means unlimited.
	MaxMemoryBytes int64
	// LocalCheckpoints makes recovery adopt from worker-local disk:
	// adopt messages carry only the accepted checkpoint's checksum, and
	// the survivor loads the blob from its WorkerConfig.Dir (persisted
	// there by the bucket's previous owner — the workers must share the
	// directory, as in-process workers started by Run do via WorkerDir).
	// The coordinator still verifies and stores replies as usual; only
	// the recovery path stops shipping the blob.
	LocalCheckpoints bool
	// WorkerDir is the checkpoint directory Run hands every in-process
	// worker (WorkerConfig.Dir); empty disables local persistence.
	WorkerDir string
	// CheckpointFault, when non-nil, intercepts every checkpoint reply
	// the coordinator receives — the fault-injection hook. Return values
	// follow internal/dist/fault: 0 passes the reply through, 1 drops it
	// in transit, 2 corrupts its payload so the checksum check fails.
	CheckpointFault func(bucket, ckpt int) int
	// RouteFault, when non-nil, may rewrite a data batch's destination
	// bucket as the router accepts it — the fault-injection hook the
	// network-conformance auditor is tested against (a misrouted batch
	// puts traffic on a channel the minimal network graph never
	// predicted). Return the bucket to deliver to; return the argument
	// unchanged to pass the batch through.
	RouteFault func(fromWorker, bucket int) int

	// Rebalance configures the skew-triggered adaptive load balancer.
	Rebalance RebalanceConfig
	// Pinned marks buckets whose compiled rules carry restriction-set
	// constraints (parallel.Program.PinnedBuckets); the transferability
	// check refuses to relabel them. Ownership moves stay allowed.
	Pinned []bool
	// Network, when non-nil, is the program's derived communication graph;
	// every candidate repartitioning is validated against it and the
	// induced worker-level cross edges are derived from it
	// (network.CheckTransferable).
	Network *network.Derivation
	// RebalanceFault, when non-nil, may mutate the candidate bucket map
	// the rebalancer is about to validate — the fault-injection hook that
	// exercises the transferability rejection path (e.g. by relabelling a
	// pinned bucket).
	RebalanceFault func(*network.Candidate)

	// Ctx, when non-nil, cancels the run: every blocking path (accept,
	// decode, queue waits, credit waits, detection waves) unblocks
	// promptly.
	Ctx context.Context
	// Sink, when non-nil, receives the coordinator's and (for in-process
	// workers started by Run) the workers' event stream, including the
	// fault-tolerance events (heartbeat misses, deaths, reassignments,
	// replays) and the bounded-memory events (checkpoints, truncations,
	// credit stalls, memory pressure).
	Sink obs.EventSink
	// ProcIDs maps dense worker indices to paper-level processor ids for
	// event labeling; nil labels events with the dense index.
	ProcIDs []int
	// Planner selects the join-order planner; non-default modes make
	// every node (including recovery replacements) recompile its plans
	// against its own fragment cardinalities before evaluating.
	Planner seminaive.PlanMode
	// Profile arms per-rule runtime counters on every worker node (the
	// start message carries the flag; adopted buckets inherit it) and
	// merges the records shipped with each worker's output into
	// Result.Profile. Off by default.
	Profile bool
	// WorkerDial, when non-nil, supplies each in-process worker's dialer
	// (Run only) — the fault-injection hook.
	WorkerDial func(wi int) DialFunc
	// WrapListener, when non-nil, wraps the coordinator's listener so
	// every accepted worker connection can be instrumented from the
	// coordinator side (e.g. a fault.Injector slowing the coordinator's
	// writes to simulate congested links). The coordinator keeps the raw
	// TCP listener for deadlines; only Accept goes through the wrapper.
	WrapListener func(net.Listener) net.Listener
}

func (c *Config) fill() {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.WavePoll <= 0 {
		c.WavePoll = 200 * time.Microsecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 60 * time.Second
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 100 * time.Millisecond
	}
	if c.WorkerDeadline <= 0 {
		c.WorkerDeadline = 2 * time.Second
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 5
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 5 * time.Millisecond
	}
	if c.Ctx == nil {
		c.Ctx = context.Background()
	}
	c.Rebalance.fill()
}

// procID labels a dense worker index with its paper-level processor id.
func (c *Config) procID(wi int) int {
	if wi >= 0 && wi < len(c.ProcIDs) {
		return c.ProcIDs[wi]
	}
	return wi
}

// Recovery records one bucket reassignment performed during a run.
type Recovery struct {
	// Bucket is the recovered hash bucket (the dead worker's dense index
	// at compile time).
	Bucket int
	// FromWorker and ToWorker are dense worker indices.
	FromWorker, ToWorker int
	// Replayed is the number of logged batches replayed to the new
	// owner — the suffix since the last accepted checkpoint.
	Replayed int
	// Truncated is the number of batches the bucket's checkpoint covers;
	// they were dropped from the log and did not need replaying. The
	// bucket's full history length is Replayed + Truncated.
	Truncated int
}

// Migration records one live bucket move performed by the rebalancer.
type Migration struct {
	// Bucket is the migrated hash bucket.
	Bucket int
	// FromWorker and ToWorker are dense worker indices; both were alive.
	FromWorker, ToWorker int
	// Replayed is the number of logged batches replayed to the new owner;
	// Truncated is the prefix the bucket's checkpoint covered.
	Replayed, Truncated int
	// Skew is the window skew ratio that triggered the move (0 under
	// RebalanceConfig.Force with no measurable load).
	Skew float64
}

// Result is the pooled outcome of a distributed run.
type Result struct {
	Output relation.Store
	// Stats holds one entry per hash bucket (not per surviving worker):
	// a worker hosting recovered buckets reports each separately. Sorted
	// by processor id.
	Stats []parallel.ProcStats
	Wall  time.Duration
	// Deaths lists the dense indices of workers declared dead, in order
	// of death.
	Deaths []int
	// Recoveries lists the bucket reassignments that kept the run alive.
	Recoveries []Recovery
	// Checkpoints counts the bucket checkpoints the coordinator accepted.
	Checkpoints int
	// TruncatedBatches counts logged batches dropped because an accepted
	// checkpoint covered them.
	TruncatedBatches int64
	// PeakQueueBytes is the high-water mark of estimated data bytes
	// resident in the coordinator's outbound queues.
	PeakQueueBytes int64
	// DroppedBatches counts data batches addressed to out-of-range
	// buckets, discarded (and reported) by the router.
	DroppedBatches int64
	// Migrations lists the live bucket moves the rebalancer applied.
	Migrations []Migration
	// RebalanceRejected counts candidate repartitionings the
	// transferability check refused.
	RebalanceRejected int
	// Profile is the merged per-rule runtime profile of the whole run; nil
	// unless Config.Profile was set. Records from all buckets (including
	// recovered and migrated ones) fold by constraint-stripped rule text.
	Profile *seminaive.Profile
	// WorkerBusy holds each worker's cumulative evaluation nanoseconds
	// (from its final status reply), indexed by dense worker index; dead
	// workers keep the last value they reported. On the paper's
	// one-processor-per-worker hardware the maximum entry is the critical
	// path that a run's wall clock converges to, which makes it the
	// machine-independent load-balance measure (cf. E9 in cmd/dlbench).
	WorkerBusy []int64
}

// qmsg is one queued wire message plus the coordinator-side ledger fields:
// cost is the dataCost of a data batch (0 for control), sender the dense
// index of the worker owed credit once the batch leaves coordinator memory
// (-1 for control and replayed batches).
type qmsg struct {
	m      wireMsg
	cost   int64
	sender int
}

// control wraps a control-plane message as a zero-cost queue entry.
func control(m wireMsg) qmsg { return qmsg{m: m, sender: -1} }

// queue is an unbounded FIFO of wire messages with close semantics: pop
// drains remaining messages before reporting closed, so a writer can flush
// everything enqueued before shutdown. Boundedness of the data plane is
// enforced by the credit gate at the senders, not structurally here, which
// is what lets control traffic bypass the data credit. One consumer per
// queue.
type queue struct {
	mu     sync.Mutex
	msgs   []qmsg
	head   int
	closed bool
	notify chan struct{}
}

func newQueue() *queue { return &queue{notify: make(chan struct{}, 1)} }

func (q *queue) signal() {
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

// push enqueues m unless the queue is closed.
func (q *queue) push(m qmsg) {
	q.mu.Lock()
	if !q.closed {
		q.msgs = append(q.msgs, m)
	}
	q.mu.Unlock()
	q.signal()
}

// pop blocks until a message is available or the queue is closed and
// drained.
func (q *queue) pop() (qmsg, bool) {
	for {
		q.mu.Lock()
		if q.head < len(q.msgs) {
			m := q.msgs[q.head]
			q.msgs[q.head] = qmsg{} // release tuple memory
			q.head++
			if q.head == len(q.msgs) {
				q.msgs = q.msgs[:0]
				q.head = 0
			}
			q.mu.Unlock()
			return m, true
		}
		closed := q.closed
		q.mu.Unlock()
		if closed {
			return qmsg{}, false
		}
		<-q.notify
	}
}

// takeAll drains the queue without blocking (mailbox mode).
func (q *queue) takeAll() []qmsg {
	q.mu.Lock()
	out := q.msgs[q.head:]
	q.msgs = nil
	q.head = 0
	q.mu.Unlock()
	return out
}

// close stops accepting pushes and wakes the consumer.
func (q *queue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.signal()
}

// remaining empties the queue and returns what the consumer never popped;
// the router refunds the credit of any data batches stranded there when a
// worker dies.
func (q *queue) remaining() []qmsg {
	q.mu.Lock()
	out := q.msgs[q.head:]
	q.msgs = nil
	q.head = 0
	q.mu.Unlock()
	return out
}

// Coordinator orchestrates one run. Create with NewCoordinator, hand its
// Addr to the workers, then call Wait.
type Coordinator struct {
	cfg     Config
	ln      net.Listener // raw TCP listener (deadlines, Addr)
	acc     net.Listener // accept path, possibly wrapped by cfg.WrapListener
	arities map[string]int
}

// NewCoordinator opens the control listener.
func NewCoordinator(cfg Config, idbArities map[string]int) (*Coordinator, error) {
	cfg.fill()
	if cfg.Workers <= 0 {
		return nil, fmt.Errorf("dist: Workers must be positive")
	}
	if cfg.Buckets < cfg.Workers {
		cfg.Buckets = cfg.Workers
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	acc := ln
	if cfg.WrapListener != nil {
		acc = cfg.WrapListener(ln)
	}
	return &Coordinator{cfg: cfg, ln: ln, acc: acc, arities: idbArities}, nil
}

// Addr returns the address workers must dial.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// wkState is the coordinator's handle on one worker: its connection, its
// serialized outbound queue, and the counters the termination and liveness
// logic reads. All mutable fields are guarded by the router mutex.
type wkState struct {
	index int
	conn  net.Conn
	dec   *gob.Decoder
	out   *queue

	alive     bool
	connErr   error     // first reader/writer error; death finalized by the wave loop
	lastHeard time.Time // last status reply (or start time)
	misses    int       // heartbeat misses already reported

	// Last reported worker counters (from kindStatusReply).
	rSent, rRecv int64
	rBusy        int64 // cumulative evaluation ns — the busy-fraction input to rebalancing
	rIdle        bool

	// Coordinator-side authoritative counters: data batches accepted
	// from this worker and delivered to it (including replays).
	accepted, delivered int64

	output *wireMsg // final kindOutput, once received
}

// logEntry is one logged data batch with its ledger cost.
type logEntry struct {
	m    wireMsg
	cost int64
}

// bucketState is the coordinator's bookkeeping for one hash bucket: who
// hosts it, the send-log suffix since its last checkpoint, and the stored
// checkpoint that replaces the truncated prefix during recovery.
type bucketState struct {
	owner    int
	log      []logEntry
	logBase  int64 // absolute index of log[0]: batches truncated so far
	logBytes int64

	snap       []byte // latest accepted checkpoint (wire-encoded); nil if none
	snapBytes  int64
	snapOffset int64  // absolute batch count the checkpoint covers
	sum        uint64 // wire.Checksum of snap — what LocalCheckpoints adopts ship
	probe      int    // the accepted checkpoint's request id, shipped alongside sum

	pending       int   // outstanding checkpoint request id; 0 = none
	pendingOffset int64 // log length (absolute) at request time
	lastReq       time.Time

	// Rebalancer load tracking: cumulative tuples routed to this bucket,
	// the cumulative value at the last sample, and the sliding window of
	// per-interval deltas (ring indexed by router.winIdx).
	routed     int64
	lastRouted int64
	win        []int64
}

// router is the shared hub: bucket ownership, per-bucket send logs and
// checkpoints, worker states, the credit/memory ledgers and the
// death/recovery bookkeeping. One mutex guards it all — the data plane
// takes it once per batch, which is noise next to a gob encode.
type router struct {
	mu      sync.Mutex
	cfg     *Config
	ws      []*wkState
	buckets []bucketState

	gen        int // membership generation; bumped on every death
	deaths     []int
	recoveries []Recovery
	fatal      error

	// Ledgers (all estimated via dataCost/snapCost).
	queueBytes int64 // data bytes resident in outbound queues
	peakQueue  int64
	logBytes   int64 // data bytes held by send logs
	snapBytes  int64 // bytes held by stored checkpoints
	pressured  bool  // over MaxMemoryBytes; a forced checkpoint cycle is in flight

	ckptSeq   int // checkpoint request id generator
	ckpts     int // accepted checkpoints
	truncated int64
	dropped   int64 // out-of-range data batches discarded

	// Rebalancer state.
	migrations    []Migration
	rebalRejected int
	winIdx        int       // samples taken so far (ring cursor)
	lastSampleAt  time.Time // previous sampling instant
	lastDecideAt  time.Time // previous migration or rejection (cooldown clock)

	outputCh chan int // worker indices that delivered their output
}

func newRouter(cfg *Config, ws []*wkState) *router {
	nb := cfg.Buckets
	if nb < len(ws) {
		nb = len(ws)
	}
	r := &router{
		cfg:      cfg,
		ws:       ws,
		buckets:  make([]bucketState, nb),
		outputCh: make(chan int, len(ws)),
	}
	now := time.Now()
	for i := range r.buckets {
		r.buckets[i].owner = InitialOwner(i, len(ws))
		r.buckets[i].lastReq = now
	}
	return r
}

// InitialOwner is the start-of-run bucket placement: bucket b lives on
// worker b%workers, so bucket i == worker i whenever buckets and workers
// agree (the classic 1:1 layout) and extra buckets wrap around.
func InitialOwner(bucket, workers int) int { return bucket % workers }

// connBroken records a connection failure; the wave loop turns it into a
// death (keeping all recovery logic on one goroutine).
func (r *router) connBroken(w *wkState, err error) {
	r.mu.Lock()
	if w.alive && w.connErr == nil {
		w.connErr = err
	}
	r.mu.Unlock()
}

// route logs and forwards one data batch to the current owner of its
// destination bucket. Batches from workers already declared dead are
// dropped: their buckets are being replayed and set semantics make the
// replayed derivations a superset.
func (r *router) route(w *wkState, m wireMsg) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !w.alive {
		return
	}
	w.accepted++
	if r.cfg.RouteFault != nil {
		m.Bucket = r.cfg.RouteFault(w.index, m.Bucket)
	}
	if m.Bucket < 0 || m.Bucket >= len(r.buckets) {
		// Corrupt destination: accepted (so the wave math stays
		// balanced) but undeliverable. Count and report it instead of
		// losing it invisibly.
		r.dropped++
		if r.cfg.Sink != nil {
			r.cfg.Sink.BatchDropped(r.cfg.procID(w.index), m.Bucket, wire.BatchCount(m.Raw))
		}
		return
	}
	cost := dataCost(m.Raw)
	bs := &r.buckets[m.Bucket]
	bs.routed += int64(wire.BatchCount(m.Raw))
	bs.log = append(bs.log, logEntry{m: m, cost: cost})
	bs.logBytes += cost
	r.logBytes += cost
	o := r.ws[bs.owner]
	o.delivered++
	r.queueBytes += cost
	if r.queueBytes > r.peakQueue {
		r.peakQueue = r.queueBytes
	}
	o.out.push(qmsg{m: m, cost: cost, sender: w.index})
	if r.cfg.CheckpointEvery > 0 && bs.pending == 0 &&
		bs.logBase+int64(len(bs.log))-bs.snapOffset >= int64(r.cfg.CheckpointEvery) {
		r.requestCheckpointLocked(m.Bucket)
	}
}

// settle retires one popped queue entry: the batch has left coordinator
// memory (encoded to the destination's TCP stream, or stranded on a dead
// connection), so its bytes leave the queue ledger and its credit returns
// to the sender.
func (r *router) settle(qm qmsg) {
	if qm.m.Kind != kindData {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.queueBytes -= qm.cost
	r.grantLocked(qm)
}

// grantLocked returns one batch's credit to its sender, if it is still
// alive to use it. Caller holds the mutex.
func (r *router) grantLocked(qm qmsg) {
	if qm.sender < 0 || qm.sender >= len(r.ws) {
		return
	}
	if r.cfg.MaxInflightBatches <= 0 && r.cfg.MaxQueueBytes <= 0 {
		return
	}
	s := r.ws[qm.sender]
	if s.alive {
		s.out.push(control(wireMsg{Kind: kindCredit, Credits: 1, CreditBytes: qm.cost}))
	}
}

// requestCheckpointLocked asks a bucket's owner for a snapshot covering
// the log as of now. At most one request per bucket is outstanding; the
// reply's checksum is verified before any truncation. Caller holds the
// mutex.
func (r *router) requestCheckpointLocked(b int) {
	bs := &r.buckets[b]
	o := r.ws[bs.owner]
	if bs.pending != 0 || !o.alive {
		return
	}
	r.ckptSeq++
	bs.pending = r.ckptSeq
	bs.pendingOffset = bs.logBase + int64(len(bs.log))
	bs.lastReq = time.Now()
	o.out.push(control(wireMsg{Kind: kindCheckpointReq, Bucket: b, Probe: bs.pending}))
	if r.cfg.Sink != nil {
		r.cfg.Sink.CheckpointStart(b, r.cfg.procID(o.index))
	}
}

// checkCheckpoints fires the timer-based checkpoint trigger. Called from
// the wave loop.
func (r *router) checkCheckpoints(now time.Time) {
	if r.cfg.CheckpointInterval <= 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for b := range r.buckets {
		bs := &r.buckets[b]
		if bs.pending == 0 && len(bs.log) > 0 && now.Sub(bs.lastReq) >= r.cfg.CheckpointInterval {
			r.requestCheckpointLocked(b)
		}
	}
}

// noteCheckpoint processes one checkpoint reply: verify it, store it,
// truncate the log prefix it covers. A reply that raced with a bucket
// reassignment, was superseded, failed its checksum, or was dropped or
// corrupted by the fault hook leaves the log untouched — recovery then
// simply replays a longer suffix, so every outcome is safe.
func (r *router) noteCheckpoint(w *wkState, m wireMsg) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.Bucket < 0 || m.Bucket >= len(r.buckets) {
		return
	}
	bs := &r.buckets[m.Bucket]
	if bs.pending == 0 || m.Probe != bs.pending || bs.owner != w.index {
		return // stale: the bucket moved or the request was superseded
	}
	off := bs.pendingOffset
	bs.pending = 0
	proc := r.cfg.procID(w.index)
	sum := m.Sum
	if r.cfg.CheckpointFault != nil {
		switch r.cfg.CheckpointFault(m.Bucket, m.Probe) {
		case 1: // dropped in transit
			if r.cfg.Sink != nil {
				r.cfg.Sink.CheckpointEnd(m.Bucket, proc, 0, false)
			}
			return
		case 2: // corrupted in transit: the checksum check below rejects it
			sum ^= 0xdecea5ed
		}
	}
	tuples := wire.SnapshotTuples(m.Snap)
	if m.Snap == nil || wire.Checksum(m.Snap) != sum {
		if r.cfg.Sink != nil {
			r.cfg.Sink.CheckpointEnd(m.Bucket, proc, tuples, false)
		}
		return
	}
	newBytes := snapCost(m.Snap)
	r.snapBytes += newBytes - bs.snapBytes
	bs.snap, bs.snapBytes, bs.snapOffset = m.Snap, newBytes, off
	bs.sum, bs.probe = sum, m.Probe
	r.ckpts++
	if r.cfg.Sink != nil {
		r.cfg.Sink.CheckpointEnd(m.Bucket, proc, tuples, true)
	}
	cut := int(off - bs.logBase)
	if cut > len(bs.log) {
		cut = len(bs.log)
	}
	if cut > 0 {
		var freed int64
		for _, le := range bs.log[:cut] {
			freed += le.cost
		}
		bs.log = append([]logEntry(nil), bs.log[cut:]...)
		bs.logBase = off
		bs.logBytes -= freed
		r.logBytes -= freed
		r.truncated += int64(cut)
		if r.cfg.Sink != nil {
			r.cfg.Sink.LogTruncated(m.Bucket, cut)
		}
	}
}

// checkMemory enforces the shared budget across logs, checkpoints and
// queues: on first overrun it forces an early checkpoint+truncate cycle;
// if the budget is still exceeded once no checkpoint requests remain in
// flight and no log is left to truncate, it fails the run fast with
// ErrResourceExhausted. Called from the wave loop.
func (r *router) checkMemory() {
	if r.cfg.MaxMemoryBytes <= 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	used := r.logBytes + r.snapBytes + r.queueBytes
	if used <= r.cfg.MaxMemoryBytes {
		r.pressured = false
		return
	}
	if !r.pressured {
		r.pressured = true
		if r.cfg.Sink != nil {
			r.cfg.Sink.MemoryPressure(used, r.cfg.MaxMemoryBytes)
		}
	}
	// The stored checkpoints are the condensed, irreducible recovery
	// state — every log is a superset of what its bucket's snapshot
	// holds. If the snapshots alone exceed the budget, no amount of
	// truncation can ever get under it: fail fast.
	if r.snapBytes > r.cfg.MaxMemoryBytes && r.fatal == nil {
		r.fatal = fmt.Errorf("dist: checkpointed state alone is %d bytes, over budget %d: %w",
			r.snapBytes, r.cfg.MaxMemoryBytes, ErrResourceExhausted)
		return
	}
	// Degrade gracefully: checkpoint every bucket that still has log to
	// truncate. Only when nothing is pending and nothing is left to
	// reclaim is the overrun unrecoverable.
	reclaimable := false
	for b := range r.buckets {
		bs := &r.buckets[b]
		if bs.pending != 0 {
			reclaimable = true
			continue
		}
		if len(bs.log) > 0 && r.ws[bs.owner].alive {
			r.requestCheckpointLocked(b)
			reclaimable = true
		}
	}
	if !reclaimable && r.fatal == nil {
		r.fatal = fmt.Errorf("dist: memory %d bytes over budget %d after forced checkpointing: %w",
			used, r.cfg.MaxMemoryBytes, ErrResourceExhausted)
	}
}

func (r *router) noteStatus(w *wkState, m wireMsg) {
	r.mu.Lock()
	w.lastHeard = time.Now()
	w.misses = 0
	w.rSent, w.rRecv, w.rIdle = m.Sent, m.Recv, m.Idle
	w.rBusy = m.Busy
	r.mu.Unlock()
}

func (r *router) noteOutput(w *wkState, m wireMsg) {
	r.mu.Lock()
	w.output = &m
	r.mu.Unlock()
	r.outputCh <- w.index
}

// probe enqueues one status/heartbeat probe to every live worker.
func (r *router) probe(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, w := range r.ws {
		if w.alive {
			w.out.push(control(wireMsg{Kind: kindStatus, Probe: n}))
		}
	}
}

// checkLiveness declares deaths (broken connections, deadline overruns),
// reports heartbeat misses, and performs bucket recovery. Called from the
// wave loop only.
func (r *router) checkLiveness(now time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, w := range r.ws {
		if !w.alive {
			continue
		}
		if w.connErr != nil {
			r.declareDead(w, fmt.Sprintf("connection failed: %v", w.connErr))
			continue
		}
		silent := now.Sub(w.lastHeard)
		if silent > r.cfg.WorkerDeadline {
			r.declareDead(w, fmt.Sprintf("no heartbeat for %v", silent.Round(time.Millisecond)))
			continue
		}
		if r.cfg.HeartbeatInterval > 0 {
			if missed := int(silent / r.cfg.HeartbeatInterval); missed > w.misses {
				w.misses = missed
				if r.cfg.Sink != nil {
					r.cfg.Sink.HeartbeatMiss(r.cfg.procID(w.index), missed)
				}
			}
		}
	}
}

// declareDead removes w from the membership and recovers its buckets:
// every bucket w hosted is reassigned to the least-loaded survivor, which
// is told to adopt it — installing the bucket's stored checkpoint and
// rebuilding the EDB fragment locally — and is then replayed the bucket's
// logged suffix. Credit stranded in w's queue is refunded to the senders
// so nobody blocks on a dead worker's unprocessed batches. Caller holds
// the mutex.
func (r *router) declareDead(w *wkState, reason string) {
	w.alive = false
	r.gen++
	r.deaths = append(r.deaths, w.index)
	w.conn.Close()
	w.out.close()
	for _, qm := range w.out.remaining() {
		if qm.m.Kind == kindData {
			r.queueBytes -= qm.cost
			r.grantLocked(qm)
		}
	}
	if r.cfg.Sink != nil {
		r.cfg.Sink.WorkerDead(r.cfg.procID(w.index), reason)
	}

	// Buckets w hosted (its own, plus any it had adopted earlier —
	// cascading failures recover the same way).
	var lost []int
	for b := range r.buckets {
		if r.buckets[b].owner == w.index {
			lost = append(lost, b)
		}
	}
	if len(lost) == 0 {
		return
	}
	for _, b := range lost {
		s := r.survivorLocked()
		if s == nil {
			if r.fatal == nil {
				r.fatal = fmt.Errorf("dist: worker %d died (%s) with no survivors: %w", w.index, reason, ErrWorkerLost)
			}
			return
		}
		bs := &r.buckets[b]
		bs.owner = s.index
		bs.pending = 0 // a dead owner can never answer its request
		r.recoveries = append(r.recoveries, Recovery{
			Bucket: b, FromWorker: w.index, ToWorker: s.index,
			Replayed: len(bs.log), Truncated: int(bs.logBase),
		})
		if r.cfg.Sink != nil {
			r.cfg.Sink.BucketReassigned(b, r.cfg.procID(w.index), r.cfg.procID(s.index))
		}
		r.adoptAndReplayLocked(b, s)
	}
}

// adoptAndReplayLocked hands bucket b to live worker s: an adopt message
// installs the bucket's stored checkpoint, then the logged suffix replays —
// the shared primitive of death recovery and live migration. The adopt
// carries the checkpoint (nil if none): the new owner installs it, then the
// logged suffix completes the bucket's history. Stored snapshots are the
// verified wire blobs, shipped verbatim — no re-encode on this path. Under
// LocalCheckpoints only the checksum travels; the new owner loads the blob
// the previous owner persisted to the shared local directory and verifies
// it against this sum. Returns the replayed batch count. Caller holds the
// mutex and has already flipped the bucket's owner to s.index.
func (r *router) adoptAndReplayLocked(b int, s *wkState) int {
	bs := &r.buckets[b]
	if r.cfg.Sink != nil {
		r.cfg.Sink.ReplayStart(b, r.cfg.procID(s.index))
	}
	adopt := wireMsg{Kind: kindAdopt, Bucket: b, Snap: bs.snap}
	if r.cfg.LocalCheckpoints && bs.snap != nil {
		adopt.Snap, adopt.Sum, adopt.Probe = nil, bs.sum, bs.probe
	}
	s.out.push(control(adopt))
	for _, le := range bs.log {
		s.delivered++
		r.queueBytes += le.cost
		if r.queueBytes > r.peakQueue {
			r.peakQueue = r.queueBytes
		}
		if le.m.Span != 0 {
			obs.SpanReplay(r.cfg.Sink, b, r.cfg.procID(s.index), le.m.Span)
		}
		s.out.push(qmsg{m: le.m, cost: le.cost, sender: -1})
	}
	if r.cfg.Sink != nil {
		r.cfg.Sink.ReplayEnd(b, r.cfg.procID(s.index), len(bs.log))
	}
	return len(bs.log)
}

// survivorLocked picks the live worker hosting the fewest buckets (lowest
// index on ties) — a deterministic, load-balancing choice.
func (r *router) survivorLocked() *wkState {
	hosted := make(map[int]int)
	for b := range r.buckets {
		hosted[r.buckets[b].owner]++
	}
	var best *wkState
	for _, w := range r.ws {
		if !w.alive {
			continue
		}
		if best == nil || hosted[w.index] < hosted[best.index] {
			best = w
		}
	}
	return best
}

// checkRebalance is the adaptive load balancer's decision point, called at
// wave cadence. Every Interval it samples each bucket's routed-tuple delta
// into the sliding window; when the per-bucket window skew crosses the
// threshold (or under Force) it picks the hottest bucket of the hottest
// worker and migrates it to the least-loaded live worker — after the
// candidate map passes the transferability check — using the same
// checkpoint-adopt + log-suffix replay as death recovery. The membership
// generation bump fences the Mattern termination check across the move, and
// FIFO queue order fences in-flight batches: everything routed before the
// flip precedes the release in the old owner's queue, and anything it had
// accepted but not drained is regenerated at the new owner by the replay
// (set semantics make that confluent).
func (r *router) checkRebalance(now time.Time) {
	rc := &r.cfg.Rebalance
	if !rc.Enabled {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if now.Sub(r.lastSampleAt) < rc.Interval {
		return
	}
	r.lastSampleAt = now

	// Sample: fold each bucket's routed delta into its window ring.
	for b := range r.buckets {
		bs := &r.buckets[b]
		if len(bs.win) != rc.Window {
			bs.win = make([]int64, rc.Window)
		}
		bs.win[r.winIdx%rc.Window] = bs.routed - bs.lastRouted
		bs.lastRouted = bs.routed
	}
	r.winIdx++

	if rc.MaxMigrations > 0 && len(r.migrations) >= rc.MaxMigrations {
		return
	}
	if !r.lastDecideAt.IsZero() && now.Sub(r.lastDecideAt) < rc.Cooldown {
		return
	}
	if r.winIdx < rc.Window && !rc.Force {
		return // window not yet full: the skew estimate is noise
	}

	// Per-bucket window sums and per-worker aggregates. Worker load is its
	// buckets' window volume; ties break on reported busy time.
	load := make([]int64, len(r.ws))
	hosted := make([]int, len(r.ws))
	winSum := make([]int64, len(r.buckets))
	var volume, maxBucket int64
	for b := range r.buckets {
		bs := &r.buckets[b]
		for _, d := range bs.win {
			winSum[b] += d
		}
		volume += winSum[b]
		if winSum[b] > maxBucket {
			maxBucket = winSum[b]
		}
		load[bs.owner] += winSum[b]
		hosted[bs.owner]++
	}
	skew := 0.0
	if volume > 0 {
		skew = float64(maxBucket) * float64(len(r.buckets)) / float64(volume)
	}
	if !rc.Force && (volume < rc.MinVolume || skew < rc.SkewThreshold) {
		return
	}

	// Hottest worker with at least two buckets (a single-bucket worker has
	// nothing to shed), and the least-loaded live worker as the target.
	from, to := -1, -1
	for _, w := range r.ws {
		if !w.alive || hosted[w.index] < 2 {
			continue
		}
		if from < 0 || load[w.index] > load[from] ||
			(load[w.index] == load[from] && w.rBusy > r.ws[from].rBusy) {
			from = w.index
		}
	}
	for _, w := range r.ws {
		if !w.alive || w.index == from {
			continue
		}
		if to < 0 || load[w.index] < load[to] ||
			(load[w.index] == load[to] && w.rBusy < r.ws[to].rBusy) {
			to = w.index
		}
	}
	if from < 0 || to < 0 || load[to] >= load[from] && !rc.Force {
		return
	}
	hot := -1
	for b := range r.buckets {
		if r.buckets[b].owner != from {
			continue
		}
		if hot < 0 || winSum[b] > winSum[hot] {
			hot = b
		}
	}
	if hot < 0 {
		return
	}
	r.lastDecideAt = now

	// Transferability: validate the post-move bucket map against the
	// derived communication constraints before touching anything. The
	// fault hook may corrupt the candidate to exercise the rejection path.
	owner := make([]int, len(r.buckets))
	for b := range r.buckets {
		owner[b] = r.buckets[b].owner
	}
	owner[hot] = to
	cand := network.Candidate{Buckets: len(r.buckets), Workers: len(r.ws), Owner: owner}
	if r.cfg.RebalanceFault != nil {
		r.cfg.RebalanceFault(&cand)
	}
	if _, err := network.CheckTransferable(cand, r.cfg.Pinned, r.cfg.Network); err != nil {
		r.rebalRejected++
		obs.RebalanceRejected(r.cfg.Sink, hot, r.cfg.procID(from), r.cfg.procID(to), err.Error())
		return
	}

	// Apply the move: a recovery without a death. The generation bump
	// voids any in-flight quiescence decision; the release is enqueued to
	// the old owner after every batch already routed to it (FIFO), and the
	// adopt + suffix replay rebuilds the bucket at the new owner.
	obs.MigrationStart(r.cfg.Sink, hot, r.cfg.procID(from), r.cfg.procID(to), skew)
	r.gen++
	bs := &r.buckets[hot]
	bs.owner = to
	bs.pending = 0 // the old owner's checkpoint reply would be stale
	r.ws[from].out.push(control(wireMsg{Kind: kindRelease, Bucket: hot}))
	if r.cfg.Sink != nil {
		r.cfg.Sink.BucketReassigned(hot, r.cfg.procID(from), r.cfg.procID(to))
	}
	replayed := r.adoptAndReplayLocked(hot, r.ws[to])
	r.migrations = append(r.migrations, Migration{
		Bucket: hot, FromWorker: from, ToWorker: to,
		Replayed: replayed, Truncated: int(bs.logBase), Skew: skew,
	})
	obs.MigrationEnd(r.cfg.Sink, hot, r.cfg.procID(from), r.cfg.procID(to), replayed)
}

// snapshot evaluates the quiescence condition over the live membership and
// returns the wave vector the two-wave stability check compares.
func (r *router) snapshot() (vec []int64, allQuiet bool, gen int, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	allQuiet = true
	any := false
	for _, w := range r.ws {
		if !w.alive {
			continue
		}
		any = true
		if !w.rIdle || w.rSent != w.accepted || w.rRecv != w.delivered {
			allQuiet = false
		}
		var idle int64
		if w.rIdle {
			idle = 1
		}
		vec = append(vec, int64(w.index), w.rSent, w.rRecv, w.accepted, w.delivered, idle)
	}
	if !any {
		allQuiet = false
	}
	return vec, allQuiet, r.gen, r.fatal
}

// finish asks every live worker for its output and returns their indices.
func (r *router) finish() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	var live []int
	for _, w := range r.ws {
		if w.alive {
			w.out.push(control(wireMsg{Kind: kindFinish}))
			live = append(live, w.index)
		}
	}
	return live
}

// closeAll tears down every connection and queue (idempotent).
func (r *router) closeAll() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, w := range r.ws {
		w.conn.Close()
		w.out.close()
	}
}

func equalVec(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Wait accepts the workers, runs the protocol to completion — surviving
// worker deaths via checkpoint+suffix bucket recovery — and returns the
// pooled result. It closes the listener before returning.
func (c *Coordinator) Wait() (*Result, error) {
	defer c.ln.Close()
	start := time.Now()
	deadline := start.Add(c.cfg.Timeout)
	ctx := c.cfg.Ctx

	// Join phase: accept one connection per worker. Cancellation closes
	// the listener; the deadline bounds the whole phase.
	stopJoinWatch := context.AfterFunc(ctx, func() { c.ln.Close() })
	ws := make([]*wkState, c.cfg.Workers)
	for joined := 0; joined < c.cfg.Workers; joined++ {
		if err := c.ln.(*net.TCPListener).SetDeadline(deadline); err != nil {
			stopJoinWatch()
			return nil, err
		}
		conn, err := c.acc.Accept()
		if err != nil {
			stopJoinWatch()
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				return nil, fmt.Errorf("dist: waiting for workers: %v: %w", err, ErrTimeout)
			}
			return nil, fmt.Errorf("dist: waiting for workers: %w", err)
		}
		dec := gob.NewDecoder(conn)
		var join wireMsg
		if err := dec.Decode(&join); err != nil {
			stopJoinWatch()
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, fmt.Errorf("dist: join decode: %w", err)
		}
		if join.Kind != kindJoin || join.Index < 0 || join.Index >= c.cfg.Workers {
			stopJoinWatch()
			conn.Close()
			return nil, fmt.Errorf("dist: bad join message (kind %d, index %d)", join.Kind, join.Index)
		}
		if ws[join.Index] != nil {
			stopJoinWatch()
			conn.Close()
			return nil, fmt.Errorf("dist: duplicate worker index %d", join.Index)
		}
		ws[join.Index] = &wkState{
			index: join.Index, conn: conn, dec: dec, out: newQueue(),
			alive: true, lastHeard: time.Now(),
		}
	}
	stopJoinWatch()
	if err := ctx.Err(); err != nil {
		for _, w := range ws {
			w.conn.Close()
		}
		return nil, err
	}

	r := newRouter(&c.cfg, ws)
	defer r.closeAll()
	stopWatch := context.AfterFunc(ctx, r.closeAll)
	defer stopWatch()

	// Per-worker reader and writer goroutines. The writer settles every
	// data batch it pops — successfully encoded or stranded by a broken
	// connection — so the queue ledger shrinks and the sender's credit
	// returns exactly once per batch.
	for _, w := range ws {
		w := w
		go c.readLoop(r, w)
		go func() {
			enc := gob.NewEncoder(w.conn)
			for {
				qm, ok := w.out.pop()
				if !ok {
					return
				}
				err := enc.Encode(qm.m)
				r.settle(qm)
				if err != nil {
					r.connBroken(w, err)
					return
				}
			}
		}()
	}

	// Start phase: the start message carries each worker's initial send
	// credit (the byte budget split evenly across workers).
	creditBytes := int64(0)
	if c.cfg.MaxQueueBytes > 0 {
		creditBytes = c.cfg.MaxQueueBytes / int64(len(ws))
		if creditBytes < 1 {
			creditBytes = 1
		}
	}
	r.mu.Lock()
	for _, w := range ws {
		w.lastHeard = time.Now() // the liveness clock starts now
		w.out.push(control(wireMsg{
			Kind:        kindStart,
			Credits:     c.cfg.MaxInflightBatches,
			CreditBytes: creditBytes,
			Profile:     c.cfg.Profile,
		}))
	}
	// Extra buckets (Buckets > Workers): each worker natively builds only
	// the node of its own index, so every wrapped-around bucket is adopted
	// fresh (nil snapshot) at start. Pushing under the router mutex, before
	// any data can be routed, makes the adopt precede the bucket's first
	// batch in the owner's FIFO queue.
	for b := len(ws); b < len(r.buckets); b++ {
		r.ws[r.buckets[b].owner].out.push(control(wireMsg{Kind: kindAdopt, Bucket: b}))
	}
	r.mu.Unlock()

	// Detection waves: Mattern-style counter comparison over the star.
	// Each wave doubles as a heartbeat probe; deaths discovered here
	// trigger bucket recovery before the next quiescence check, and the
	// checkpoint timer and memory budget are enforced at the same cadence.
	var prevVec []int64
	prevQuiet := false
	prevGen := -1
	waveTimer := time.NewTimer(c.cfg.WavePoll)
	defer waveTimer.Stop()
	for waveNum := 0; ; waveNum++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("dist: run exceeded %v without quiescing: %w", c.cfg.Timeout, ErrTimeout)
		}
		now := time.Now()
		r.checkLiveness(now)
		r.checkCheckpoints(now)
		r.checkMemory()
		r.checkRebalance(now)
		r.probe(waveNum)
		vec, quiet, gen, fatal := r.snapshot()
		if fatal != nil {
			return nil, fatal
		}
		done := quiet && prevQuiet && gen == prevGen && equalVec(vec, prevVec)
		if c.cfg.Sink != nil {
			c.cfg.Sink.TermProbe("mattern", waveNum, done)
		}
		if done {
			break
		}
		prevVec, prevQuiet, prevGen = vec, quiet, gen
		waveTimer.Reset(c.cfg.WavePoll)
		select {
		case <-waveTimer.C:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}

	// Collection phase: final pooling. A worker death here is fatal —
	// survivors may already have shipped outputs and exited, so the
	// replay machinery is gone.
	live := r.finish()
	need := make(map[int]bool, len(live))
	for _, wi := range live {
		need[wi] = true
	}
	collectTimer := time.NewTimer(c.cfg.WavePoll)
	defer collectTimer.Stop()
	for len(need) > 0 {
		select {
		case wi := <-r.outputCh:
			delete(need, wi)
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-collectTimer.C:
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("dist: output collection exceeded %v: %w", c.cfg.Timeout, ErrTimeout)
			}
			r.mu.Lock()
			var broken error
			for _, w := range ws {
				if w.alive && need[w.index] && w.connErr != nil {
					broken = fmt.Errorf("dist: worker %d died after quiescence: %v: %w", w.index, w.connErr, ErrWorkerLost)
				}
			}
			r.mu.Unlock()
			if broken != nil {
				return nil, broken
			}
			collectTimer.Reset(c.cfg.WavePoll)
		}
	}

	res := &Result{Output: relation.Store{}}
	if c.cfg.Profile {
		res.Profile = &seminaive.Profile{Engine: "dist"}
	}
	for pred, ar := range c.arities {
		res.Output.Get(pred, ar)
	}
	r.mu.Lock()
	res.Deaths = append(res.Deaths, r.deaths...)
	res.Recoveries = append(res.Recoveries, r.recoveries...)
	res.Checkpoints = r.ckpts
	res.TruncatedBatches = r.truncated
	res.PeakQueueBytes = r.peakQueue
	res.DroppedBatches = r.dropped
	res.Migrations = append(res.Migrations, r.migrations...)
	res.RebalanceRejected = r.rebalRejected
	for _, w := range ws {
		res.WorkerBusy = append(res.WorkerBusy, w.rBusy)
	}
	var decodeErr error
	for _, w := range ws {
		if w.output == nil {
			continue
		}
		err := wire.DecodeSnapshot(w.output.Snap, func(pred string, tuples []relation.Tuple) error {
			if len(tuples) == 0 {
				return nil
			}
			ar := len(tuples[0])
			if want, ok := c.arities[pred]; ok {
				ar = want
			}
			dst := res.Output.Get(pred, ar)
			for _, t := range tuples {
				dst.Insert(t)
			}
			return nil
		})
		if err != nil && decodeErr == nil {
			decodeErr = fmt.Errorf("dist: worker %d output payload: %w", w.index, err)
		}
		res.Stats = append(res.Stats, w.output.Stats...)
		if res.Profile != nil {
			res.Profile.AddRules(w.output.Profiles)
		}
	}
	r.mu.Unlock()
	if decodeErr != nil {
		return nil, decodeErr
	}
	sort.Slice(res.Stats, func(i, j int) bool { return res.Stats[i].Proc < res.Stats[j].Proc })
	res.Wall = time.Since(start)
	if res.Profile != nil {
		res.Profile.WallNs = res.Wall.Nanoseconds()
	}
	return res, nil
}

// readLoop decodes one worker's inbound stream and dispatches it.
func (c *Coordinator) readLoop(r *router, w *wkState) {
	for {
		var m wireMsg
		if err := w.dec.Decode(&m); err != nil {
			r.connBroken(w, err)
			return
		}
		switch m.Kind {
		case kindStatusReply:
			r.noteStatus(w, m)
		case kindData:
			r.route(w, m)
		case kindCheckpointReply:
			r.noteCheckpoint(w, m)
		case kindOutput:
			r.noteOutput(w, m)
			return
		default:
			r.connBroken(w, fmt.Errorf("unexpected message kind %d", m.Kind))
			return
		}
	}
}
