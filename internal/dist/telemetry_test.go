package dist

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"parlog/internal/analysis"
	"parlog/internal/dist/fault"
	"parlog/internal/hashpart"
	"parlog/internal/metrics"
	"parlog/internal/network"
	"parlog/internal/obs"
	"parlog/internal/parallel"
	"parlog/internal/parser"
	"parlog/internal/relation"
	"parlog/internal/rewrite"
	"parlog/internal/wire"
)

// scrape GETs url and returns every sample as name{labels} → value,
// validating the exposition on the way.
func scrape(t *testing.T, url string) (map[string]float64, error) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if err := metrics.ValidateExposition(strings.NewReader(string(body))); err != nil {
		return nil, fmt.Errorf("invalid exposition: %w", err)
	}
	out := map[string]float64{}
	sc := bufio.NewScanner(strings.NewReader(string(body)))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("unparsable sample %q", line)
		}
		out[line[:sp]] = v
	}
	return out, sc.Err()
}

// TestDistributedMetricsScrapeUnderFaults runs the kill-one-of-three
// recovery scenario while a scraper hammers the /metrics endpoint. Every
// scrape must be a valid exposition, every *_total counter must be
// monotone across scrapes, and each histogram's _count must equal its
// +Inf cumulative bucket — the invariant the registry maintains by
// deriving the count from the buckets in one snapshot.
func TestDistributedMetricsScrapeUnderFaults(t *testing.T) {
	src := ancestorRules + randomParFacts(40, 120, 5)
	p, edb, seq := buildAncestorQ(t, src, 3, []string{"Z"}, []string{"X"})
	dial, _ := injectorDial(1, fault.Schedule{Seed: 5, KillConn: 1, KillAfterWrites: 25})

	reg := metrics.New()
	srv, err := metrics.NewServer("127.0.0.1:0", reg, metrics.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close(nil)

	var (
		done     = make(chan struct{})
		wg       sync.WaitGroup
		mu       sync.Mutex
		scrapes  int
		problems []string
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		prev := map[string]float64{}
		for {
			select {
			case <-done:
				return
			default:
			}
			vals, err := scrape(t, srv.URL()+"/metrics")
			mu.Lock()
			if err != nil {
				problems = append(problems, err.Error())
			} else {
				scrapes++
				for k, v := range vals {
					if strings.Contains(k, "_total") && v < prev[k] {
						problems = append(problems, fmt.Sprintf("%s went backwards: %v → %v", k, prev[k], v))
					}
					prev[k] = v
				}
				for _, h := range []string{"parlog_iteration_seconds", "parlog_batch_tuples", "parlog_iteration_delta_tuples", "parlog_bucket_load_tuples"} {
					count, okC := vals[h+"_count"]
					inf, okI := vals[h+`_bucket{le="+Inf"}`]
					if okC != okI || (okC && count != inf) {
						problems = append(problems, fmt.Sprintf("%s: _count %v != +Inf bucket %v", h, count, inf))
					}
				}
			}
			mu.Unlock()
			time.Sleep(200 * time.Microsecond)
		}
	}()

	res, err := Run(p, edb, Config{WorkerDial: dial, Sink: obs.NewMetricsSink(reg)})
	close(done)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !seq["anc"].Equal(res.Output["anc"]) {
		t.Fatal("scraped run differs from sequential least model")
	}
	mu.Lock()
	defer mu.Unlock()
	for _, p := range problems {
		t.Error(p)
	}
	if scrapes == 0 {
		t.Fatal("scraper never completed a scrape")
	}

	// The endpoint's final state reflects the recovery the run went through.
	final, err := scrape(t, srv.URL()+"/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if final["parlog_worker_deaths_total"] < 1 {
		t.Errorf("worker_deaths = %v, want >= 1", final["parlog_worker_deaths_total"])
	}
	if final["parlog_replayed_batches_total"] < 1 {
		t.Errorf("replayed_batches = %v, want >= 1", final["parlog_replayed_batches_total"])
	}
}

// TestReplayCarriesOriginatingSpan kills a worker and checks the causal
// chain: every batch replayed during recovery must carry the span id the
// originating sender allocated — the id travels in the logged wire
// envelope, so the trace links the replay back to the send it repeats.
func TestReplayCarriesOriginatingSpan(t *testing.T) {
	src := ancestorRules + randomParFacts(40, 120, 5)
	p, edb, _ := buildAncestorQ(t, src, 3, []string{"Z"}, []string{"X"})
	dial, _ := injectorDial(1, fault.Schedule{Seed: 5, KillConn: 1, KillAfterWrites: 25})

	rec := obs.NewRecorder()
	if _, err := Run(p, edb, Config{WorkerDial: dial, Sink: rec}); err != nil {
		t.Fatal(err)
	}

	sent := map[uint64]bool{}
	var replays []obs.Event
	for _, e := range rec.Events() {
		switch e.Kind {
		case obs.KindSpanSend:
			if e.Span == 0 {
				t.Fatal("span_send with zero span id")
			}
			sent[e.Span] = true
		case obs.KindSpanReplay:
			replays = append(replays, e)
		}
	}
	if len(replays) == 0 {
		t.Fatal("no span_replay events after a worker death")
	}
	for _, e := range replays {
		if e.Span == 0 {
			t.Error("replayed batch lost its span id")
			continue
		}
		if !sent[e.Span] {
			t.Errorf("replayed span %#x matches no recorded send", e.Span)
		}
		if o := wire.SpanOrigin(e.Span); o < 0 || o > 2 {
			t.Errorf("replayed span %#x has origin %d outside the worker set", e.Span, o)
		}
		if e.Bucket != 1 {
			t.Errorf("replay for bucket %d, want the dead worker's bucket 1", e.Bucket)
		}
	}
}

// TestMisrouteDetectedAndCounted injects a router-level misroute into
// Example 6 (whose Figure 3 network graph is sparse: processor 0 may send
// only to 0 and 2) and checks the conformance pipeline end to end: the
// receive-side matrix records the traffic where it actually landed, the
// audit flags the unpredicted channel, and the violation is counted. The
// send-side matrix alone must NOT catch it — senders fired MessageSent
// with the intended destination before the router diverted the batch,
// which is exactly why the counting sink keeps both matrices.
func TestMisrouteDetectedAndCounted(t *testing.T) {
	var b strings.Builder
	b.WriteString("p(X, Y) :- q(X, Y).\np(X, Y) :- p(Y, Z), r(X, Z).\n")
	for i := 0; i < 9; i++ {
		for j := 0; j < 9; j += 2 {
			fmt.Fprintf(&b, "q(c%d, c%d).\n", i, (i+j)%9)
			fmt.Fprintf(&b, "r(c%d, c%d).\n", (i+j)%9, i)
		}
	}
	prog := parser.MustParse(b.String())
	s, err := analysis.ExtractSirup(prog)
	if err != nil {
		t.Fatal(err)
	}
	procs := hashpart.RangeProcs(4)
	F := network.BitVectorF(2)
	vr, ve := []string{"Y", "Z"}, []string{"X", "Y"}
	d, err := network.Derive(s, vr, ve, F, F, procs)
	if err != nil {
		t.Fatal(err)
	}
	if d.HasEdge(0, 1) {
		t.Fatal("Figure 3 graph unexpectedly predicts 0→1; the misroute would be legal")
	}
	h := network.FuncFromBits("h6", F, hashpart.GParity)
	p, err := parallel.BuildQ(s, rewrite.SirupSpec{Procs: procs, VR: vr, VE: ve, H: h})
	if err != nil {
		t.Fatal(err)
	}

	plan := fault.NewMisroutePlan(0, 0).DivertAllFrom(0, 1)
	counting := obs.NewCounting()
	if _, err := Run(p, relation.Store{}, Config{RouteFault: plan.Route, Sink: counting}); err != nil {
		t.Fatal(err)
	}
	if plan.Seen() == 0 {
		t.Fatal("router never consulted the misroute plan")
	}
	snap := counting.Snapshot()

	var diverted bool
	for _, e := range snap.RecvEdges {
		if e.From == 0 && e.To == 1 && e.Tuples > 0 {
			diverted = true
		}
	}
	if !diverted {
		t.Fatalf("no diverted tuples in the receive-side matrix: %+v", snap.RecvEdges)
	}

	// The sender-side matrix still shows the intended routing — clean.
	sendObs := make([]network.ObservedEdge, 0, len(snap.Edges))
	for _, e := range snap.Edges {
		sendObs = append(sendObs, network.ObservedEdge{From: e.From, To: e.To, Messages: e.Messages, Tuples: e.Tuples})
	}
	if rep := d.Audit(sendObs); !rep.OK() {
		t.Fatalf("send-side matrix flagged the misroute; it fires before routing and should be clean: %s", rep)
	}

	// The union with the receive-side matrix catches it.
	both := sendObs
	for _, e := range snap.RecvEdges {
		both = append(both, network.ObservedEdge{From: e.From, To: e.To, Messages: e.Messages, Tuples: e.Tuples})
	}
	rep := d.Audit(both)
	if rep.OK() {
		t.Fatalf("misroute not flagged: %s", rep)
	}
	found := false
	for _, v := range rep.Violations {
		if v.From == 0 && v.To == 1 {
			found = true
		}
		counting.NetworkViolation(v.From, v.To, v.Tuples)
	}
	if !found {
		t.Fatalf("violations %+v missing the injected 0→1 channel", rep.Violations)
	}
	if got := counting.Snapshot().NetworkViolations; got < 1 {
		t.Fatalf("NetworkViolations = %d, want >= 1", got)
	}
}
