package dist

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"parlog/internal/dist/fault"
	"parlog/internal/hashpart"
	"parlog/internal/metrics"
	"parlog/internal/network"
	"parlog/internal/obs"
	"parlog/internal/parallel"
	"parlog/internal/randprog"
	"parlog/internal/rewrite"
	"parlog/internal/seminaive"
	"parlog/internal/workload"
)

// zipfParFacts renders a Zipf-skewed digraph as par/2 facts: a few hub
// sources originate most edges — the skew that concentrates load in the
// hubs' hash buckets.
func zipfParFacts(nodes, edges int, s float64, seed int64) string {
	g := workload.ZipfGraph(nodes, edges, s, seed)
	var b strings.Builder
	for _, row := range g.Rows() {
		fmt.Fprintf(&b, "par(v%d, v%d).\n", int(row[0]), int(row[1]))
	}
	return b.String()
}

// firingTotal sums Definition-4 firings over per-bucket stats.
func firingTotal(stats []parallel.ProcStats) int64 {
	var n int64
	for _, ps := range stats {
		n += ps.Firings
	}
	return n
}

// TestFewerWorkersThanBuckets: the program compiles for 4 processors but
// only 2 OS workers run; each worker natively hosts its own bucket and
// adopts one wrapped-around bucket at start. The model and the per-bucket
// stats must be indistinguishable from the 4-worker run.
func TestFewerWorkersThanBuckets(t *testing.T) {
	src := ancestorRules + randomParFacts(20, 50, 11)
	p, edb, seq := buildAncestorQ(t, src, 4, []string{"Z"}, []string{"X"})
	res, err := Run(p, edb, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !seq["anc"].Equal(res.Output["anc"]) {
		t.Fatalf("2-workers-4-buckets run differs from sequential:\nseq %v\ndist %v",
			seq["anc"], res.Output["anc"])
	}
	if len(res.Stats) != 4 {
		t.Errorf("stats for %d buckets, want 4", len(res.Stats))
	}

	full, err := Run(p, edb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := firingTotal(res.Stats), firingTotal(full.Stats); got != want {
		t.Errorf("firings differ: 2 workers %d, 4 workers %d", got, want)
	}
}

// TestForcedMigrationPreservesModel is the "reassignment is a recovery
// without a death" invariant: a forced mid-run hot-bucket migration must
// leave the least model and the total firing count exactly as a static
// run produces them, and the move must be reported in Result.Migrations
// and narrated in the event stream.
func TestForcedMigrationPreservesModel(t *testing.T) {
	src := ancestorRules + randomParFacts(40, 120, 12)
	p, edb, seq := buildAncestorQ(t, src, 4, []string{"Z"}, []string{"X"})

	static, err := Run(p, edb, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	rec := obs.NewRecorder()
	res, err := Run(p, edb, Config{
		Workers: 2,
		Sink:    rec,
		Rebalance: RebalanceConfig{
			Enabled: true, Force: true, MaxMigrations: 1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	if !seq["anc"].Equal(res.Output["anc"]) {
		t.Fatalf("migrated run differs from sequential least model:\nseq %v\ndist %v",
			seq["anc"], res.Output["anc"])
	}
	if len(res.Migrations) != 1 {
		t.Fatalf("Migrations = %v, want exactly one", res.Migrations)
	}
	m := res.Migrations[0]
	if m.FromWorker == m.ToWorker {
		t.Errorf("migration moved bucket %d onto its own worker %d", m.Bucket, m.FromWorker)
	}
	if len(res.Deaths) != 0 {
		t.Errorf("Deaths = %v during a pure migration, want none", res.Deaths)
	}
	if got, want := firingTotal(res.Stats), firingTotal(static.Stats); got != want {
		t.Errorf("firings differ: migrated %d, static %d", got, want)
	}
	if len(res.Stats) != 4 {
		t.Errorf("stats for %d buckets, want 4", len(res.Stats))
	}
	kinds := map[string]int{}
	for _, e := range rec.Events() {
		kinds[e.Kind]++
	}
	for _, k := range []string{obs.KindMigrationStart, obs.KindMigrationEnd, obs.KindBucketReassigned, obs.KindReplayEnd} {
		if kinds[k] == 0 {
			t.Errorf("no %s event recorded", k)
		}
	}
}

// TestRebalanceRejectedByTransferability drives the rejection path: the
// fault hook corrupts every candidate bucket map with a relabel of a
// pinned bucket, so network.CheckTransferable must veto each attempt. The
// run completes untouched, counts the rejections, and emits the typed
// event — but never migrates.
func TestRebalanceRejectedByTransferability(t *testing.T) {
	src := ancestorRules + randomParFacts(30, 80, 13)
	p, edb, seq := buildAncestorQ(t, src, 4, []string{"Z"}, []string{"X"})

	rec := obs.NewRecorder()
	res, err := Run(p, edb, Config{
		Workers: 2,
		Sink:    rec,
		Rebalance: RebalanceConfig{
			Enabled: true, Force: true, MaxMigrations: 1,
		},
		// Swap the discriminating-function labels of buckets 0 and 1: both
		// carry restriction-set constraints (BuildQ pins every bucket), so
		// the repartition is model-breaking and must be rejected.
		RebalanceFault: func(c *network.Candidate) {
			relabel := make([]int, c.Buckets)
			for i := range relabel {
				relabel[i] = i
			}
			relabel[0], relabel[1] = 1, 0
			c.Relabel = relabel
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !seq["anc"].Equal(res.Output["anc"]) {
		t.Fatal("run with rejected rebalances differs from sequential least model")
	}
	if len(res.Migrations) != 0 {
		t.Fatalf("Migrations = %v, want none (every candidate was corrupted)", res.Migrations)
	}
	if res.RebalanceRejected == 0 {
		t.Fatal("RebalanceRejected = 0, want at least one rejection")
	}
	found := false
	for _, e := range rec.Events() {
		if e.Kind == obs.KindRebalanceRejected {
			found = true
			if e.Reason == "" {
				t.Error("rejection event carries no reason")
			}
		}
	}
	if !found {
		t.Fatal("no rebalance_rejected event recorded")
	}
}

// TestRebalanceSkewTriggered exercises the real trigger, not Force: a
// Zipf-skewed reachability workload routed into 4 buckets on 2 workers
// develops measurable bucket skew, and the rebalancer must notice and
// move at least one hot bucket without damaging the model.
func TestRebalanceSkewTriggered(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	src := ancestorRules + zipfParFacts(70, 200, 1.2, 14)
	p, edb, seq := buildAncestorQ(t, src, 4, []string{"Z"}, []string{"X"})
	res, err := Run(p, edb, Config{
		Workers: 2,
		Rebalance: RebalanceConfig{
			Enabled:       true,
			SkewThreshold: 1.2,
			Interval:      time.Millisecond, // sample fast enough to see the run
			Window:        2,
			MinVolume:     8,
			Cooldown:      50 * time.Millisecond,
			MaxMigrations: 2, // bound replay work: each move re-ships a log suffix
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !seq["anc"].Equal(res.Output["anc"]) {
		t.Fatal("skew-triggered run differs from sequential least model")
	}
	// The workload is short; the trigger may or may not fire on a given
	// machine. What must hold: any migration it did make carried a skew
	// measurement above the threshold.
	for _, m := range res.Migrations {
		if m.Skew < 1.2 {
			t.Errorf("migration of bucket %d recorded skew %.2f below the 1.2 threshold", m.Bucket, m.Skew)
		}
	}
}

// TestMigrationChaosKillDuringMigration composes the fault injector with a
// forced migration: worker 1 — the migration target under the deterministic
// tie-break — is killed while batches are still in flight, so the death
// races the adopt/replay of the migrated bucket. Death recovery must then
// move everything worker 1 hosted (its native buckets plus the freshly
// migrated one) to the survivors, and the model must match the undisturbed
// static run exactly. Run under -race -count=5.
func TestMigrationChaosKillDuringMigration(t *testing.T) {
	src := ancestorRules + randomParFacts(40, 120, 15)
	p, edb, seq := buildAncestorQ(t, src, 6, []string{"Z"}, []string{"X"})

	undisturbed, err := Run(p, edb, Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}

	dial, _ := injectorDial(1, fault.Schedule{Seed: 15, KillConn: 1, KillAfterWrites: 25})
	res, err := Run(p, edb, Config{
		Workers:    3,
		WorkerDial: dial,
		Rebalance: RebalanceConfig{
			Enabled: true, Force: true, MaxMigrations: 2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !undisturbed.Output["anc"].Equal(res.Output["anc"]) {
		t.Fatal("kill-during-migration run differs from the undisturbed run")
	}
	if !seq["anc"].Equal(res.Output["anc"]) {
		t.Fatal("kill-during-migration run differs from sequential least model")
	}
	if len(res.Deaths) != 1 || res.Deaths[0] != 1 {
		t.Fatalf("Deaths = %v, want [1]", res.Deaths)
	}
	if len(res.Stats) != 6 {
		t.Errorf("stats for %d buckets, want 6", len(res.Stats))
	}
}

// TestRebalanceRandomProgramsForcedMigration is the randprog differential
// under forced migrations: 50 generated programs, each run with 2 workers
// over 3 buckets and a forced mid-run migration, checked against the
// sequential least model — and, seed by seed, against the static run's
// firing totals.
func TestRebalanceRandomProgramsForcedMigration(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for seed := int64(0); seed < 50; seed++ {
		g := randprog.Generate(randprog.Config{}, seed)
		want, _, err := seminaive.Eval(g.Prog, g.EDB, seminaive.Options{})
		if err != nil {
			t.Fatal(err)
		}
		rules, _ := g.Prog.FactTuples()
		spec := rewrite.GeneralSpec{Procs: hashpart.RangeProcs(3)}
		h := hashpart.ModHash{N: 3, Seed: uint64(seed)}
		ok := true
		for _, r := range rules {
			vars := r.BodyVars()
			if len(vars) == 0 {
				ok = false
				break
			}
			spec.Rules = append(spec.Rules, rewrite.RuleSpec{Seq: vars[:1], H: h})
		}
		if !ok {
			continue
		}
		p, err := parallel.BuildGeneral(g.Prog, spec)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		static, err := Run(p, g.EDB, Config{Workers: 2})
		if err != nil {
			t.Fatalf("seed %d (static): %v", seed, err)
		}
		res, err := Run(p, g.EDB, Config{
			Workers: 2,
			Rebalance: RebalanceConfig{
				Enabled: true, Force: true, MaxMigrations: 1,
			},
		})
		if err != nil {
			t.Fatalf("seed %d (rebalanced): %v", seed, err)
		}
		for _, pred := range g.Prog.IDBPreds() {
			a, b := want[pred], res.Output[pred]
			if (a == nil) != (b == nil) || (a != nil && !a.Equal(b)) {
				t.Fatalf("seed %d: %s differs under forced migration\nprogram:\n%s", seed, pred, g.Prog)
			}
		}
		if got, wantF := firingTotal(res.Stats), firingTotal(static.Stats); got != wantF {
			t.Fatalf("seed %d: firings differ under forced migration: %d vs static %d\nprogram:\n%s",
				seed, got, wantF, g.Prog)
		}
	}
}

// TestRebalanceMetrics: the MetricsSink surfaces the rebalance counters.
func TestRebalanceMetrics(t *testing.T) {
	src := ancestorRules + randomParFacts(30, 80, 16)
	p, edb, _ := buildAncestorQ(t, src, 4, []string{"Z"}, []string{"X"})

	reg := metrics.New()
	sink := obs.NewMetricsSink(reg)
	res, err := Run(p, edb, Config{
		Workers: 2,
		Sink:    sink,
		Rebalance: RebalanceConfig{
			Enabled: true, Force: true, MaxMigrations: 1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Migrations) != 1 {
		t.Fatalf("Migrations = %v, want one", res.Migrations)
	}
	vals := map[string]float64{}
	for _, ms := range reg.Snapshot() {
		if ms.Value != nil {
			vals[ms.Name] = *ms.Value
		}
	}
	if vals["parlog_rebalance_migrations_total"] != 1 {
		t.Errorf("parlog_rebalance_migrations_total = %v, want 1", vals["parlog_rebalance_migrations_total"])
	}
	if int(vals["parlog_rebalance_replayed_batches_total"]) != res.Migrations[0].Replayed {
		t.Errorf("parlog_rebalance_replayed_batches_total = %v, want %d",
			vals["parlog_rebalance_replayed_batches_total"], res.Migrations[0].Replayed)
	}
}
