package dist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"parlog/internal/dist/fault"
	"parlog/internal/relation"
	"parlog/internal/store"
	"parlog/internal/wire"
)

// TestWorkerPersistsCheckpoints: with a checkpoint directory configured,
// every accepted checkpoint must also exist on disk as an intact,
// checksummed file decoding to a wire snapshot.
func TestWorkerPersistsCheckpoints(t *testing.T) {
	src := ancestorRules + randomParFacts(40, 120, 11)
	p, edb, seq := buildAncestorQ(t, src, 3, []string{"Z"}, []string{"X"})

	dir := t.TempDir()
	res, err := Run(p, edb, Config{CheckpointEvery: 4, WorkerDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if !seq["anc"].Equal(res.Output["anc"]) {
		t.Fatal("persisted-checkpoint run differs from sequential least model")
	}
	if res.Checkpoints == 0 {
		t.Fatal("no checkpoints accepted with CheckpointEvery=4")
	}
	files, err := filepath.Glob(filepath.Join(dir, "ckpt-*.ckpt"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no checkpoint files on disk (err=%v)", err)
	}
	for _, f := range files {
		var bucket int
		if _, err := fmt.Sscanf(filepath.Base(f), "ckpt-%d.ckpt", &bucket); err != nil {
			t.Fatalf("unexpected checkpoint file name %s", f)
		}
		probe, snap, err := loadCheckpoint(dir, bucket)
		if err != nil {
			t.Fatalf("checkpoint file %s damaged: %v", f, err)
		}
		if probe == 0 {
			t.Fatalf("checkpoint file %s carries no probe number", f)
		}
		if err := wire.DecodeSnapshot(snap, func(string, []relation.Tuple) error { return nil }); err != nil {
			t.Fatalf("checkpoint file %s does not decode: %v", f, err)
		}
	}
	// Stale temp files never linger: WriteAtomic either publishes or
	// leaves a .tmp the next open removes — and the happy path leaves none.
	if tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(tmps) != 0 {
		t.Fatalf("stale temp files after a clean run: %v", tmps)
	}
}

// TestLocalCheckpointAdoption is the recovery scenario under
// LocalCheckpoints: a worker dies after checkpoint cycles, the adopt
// message carries only the checksum, and the survivor restores the
// bucket from the shared directory — still the exact least model.
func TestLocalCheckpointAdoption(t *testing.T) {
	src := ancestorRules + randomParFacts(40, 120, 5)
	p, edb, seq := buildAncestorQ(t, src, 3, []string{"Z"}, []string{"X"})

	dial, _ := injectorDial(1, fault.Schedule{Seed: 5, KillConn: 1, KillAfterWrites: 45})
	res, err := Run(p, edb, Config{
		CheckpointEvery:  2,
		WorkerDir:        t.TempDir(),
		LocalCheckpoints: true,
		WorkerDial:       dial,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !seq["anc"].Equal(res.Output["anc"]) {
		t.Fatalf("local-checkpoint recovery differs from sequential least model:\nseq %v\ndist %v",
			seq["anc"], res.Output["anc"])
	}
	if len(res.Deaths) != 1 || res.Deaths[0] != 1 {
		t.Fatalf("Deaths = %v, want [1]", res.Deaths)
	}
	if res.Checkpoints < 2 {
		t.Fatalf("only %d checkpoints accepted before the kill", res.Checkpoints)
	}
	if len(res.Recoveries) != 1 || res.Recoveries[0].Truncated == 0 {
		t.Fatalf("Recoveries = %+v, want one with a truncated prefix (the part the local checkpoint covers)", res.Recoveries)
	}
}

// TestResolveAdoptSnap pins every branch of the checksum-only adopt
// resolution: a checksum referencing a missing, stale or mismatched
// local checkpoint is a hard error (the coordinator already truncated
// the covered log prefix — nothing can rebuild it), while an exact or
// newer intact file is installed.
func TestResolveAdoptSnap(t *testing.T) {
	dir := t.TempDir()
	snap := wire.AppendSnapshot(nil, map[string][]relation.Tuple{"anc": {{1, 2}}})
	sum := wire.Checksum(snap)

	// Shipped blob and no-checkpoint adopts bypass the directory entirely.
	if got, err := resolveAdoptSnap(dir, wireMsg{Bucket: 0, Snap: snap, Sum: sum}); err != nil || string(got) != string(snap) {
		t.Fatalf("shipped adopt: got %v, %v", got, err)
	}
	if got, err := resolveAdoptSnap(dir, wireMsg{Bucket: 0}); err != nil || got != nil {
		t.Fatalf("empty adopt: got %v, %v", got, err)
	}

	// Checksum-only adopt with no file on disk: fail loud.
	if _, err := resolveAdoptSnap(dir, wireMsg{Bucket: 0, Sum: sum, Probe: 3}); err == nil {
		t.Fatal("missing local checkpoint did not fail the adopt")
	}

	if err := persistCheckpoint(dir, 0, 3, snap); err != nil {
		t.Fatal(err)
	}
	// Exact probe, matching checksum: installed.
	if got, err := resolveAdoptSnap(dir, wireMsg{Bucket: 0, Sum: sum, Probe: 3}); err != nil || string(got) != string(snap) {
		t.Fatalf("exact-probe adopt: got %v, %v", got, err)
	}
	// Exact probe, wrong checksum: corrupt.
	if _, err := resolveAdoptSnap(dir, wireMsg{Bucket: 0, Sum: sum ^ 1, Probe: 3}); !errors.Is(err, store.ErrCorruptSegment) {
		t.Fatalf("checksum mismatch: err = %v, want ErrCorruptSegment", err)
	}
	// On-disk file older than the accepted checkpoint: the disk lost
	// data the coordinator relies on — corrupt.
	if _, err := resolveAdoptSnap(dir, wireMsg{Bucket: 0, Sum: sum, Probe: 4}); !errors.Is(err, store.ErrCorruptSegment) {
		t.Fatalf("stale file: err = %v, want ErrCorruptSegment", err)
	}
	// On-disk file newer than the accepted checkpoint (persisted, then
	// killed before the reply was accepted): installed — a later
	// checkpoint is a superset, so this is monotone-safe.
	newer := wire.AppendSnapshot(nil, map[string][]relation.Tuple{"anc": {{1, 2}, {1, 3}}})
	if err := persistCheckpoint(dir, 0, 5, newer); err != nil {
		t.Fatal(err)
	}
	if got, err := resolveAdoptSnap(dir, wireMsg{Bucket: 0, Sum: sum, Probe: 3}); err != nil || string(got) != string(newer) {
		t.Fatalf("newer-probe adopt: got %v, %v", got, err)
	}

	// A truncated file (torn write the atomic rename should prevent, or
	// a bad disk) is detected by the store-layer checksum.
	path := filepath.Join(dir, ckptName(0))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := resolveAdoptSnap(dir, wireMsg{Bucket: 0, Sum: sum, Probe: 3}); err == nil {
		t.Fatal("truncated checkpoint file did not fail the adopt")
	}
}

// TestColdStartFromLocalCheckpoints: a second run over the same program
// and directory finds the first run's checkpoint files at worker start
// and installs them before evaluation. Installing a checkpoint — a
// subset of each bucket's least model — is monotone-safe, so the second
// run must still produce the exact least model.
func TestColdStartFromLocalCheckpoints(t *testing.T) {
	src := ancestorRules + randomParFacts(40, 120, 11)
	dir := t.TempDir()

	p, edb, seq := buildAncestorQ(t, src, 3, []string{"Z"}, []string{"X"})
	res, err := Run(p, edb, Config{CheckpointEvery: 4, WorkerDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if !seq["anc"].Equal(res.Output["anc"]) {
		t.Fatal("first run differs from sequential least model")
	}
	if files, _ := filepath.Glob(filepath.Join(dir, "ckpt-*.ckpt")); len(files) == 0 {
		t.Fatal("first run persisted no checkpoints")
	}

	// Fresh program/EDB objects, same directory: workers install their
	// buckets' persisted checkpoints at cold start.
	p2, edb2, seq2 := buildAncestorQ(t, src, 3, []string{"Z"}, []string{"X"})
	res2, err := Run(p2, edb2, Config{WorkerDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if !seq2["anc"].Equal(res2.Output["anc"]) {
		t.Fatal("cold-start run differs from sequential least model")
	}
}
