package dist

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"parlog/internal/dist/fault"
	"parlog/internal/obs"
)

// TestCheckpointTruncatesLog: with the count trigger armed and no faults,
// the coordinator must accept checkpoints, truncate the covered log
// prefixes, and still compute the exact least model.
func TestCheckpointTruncatesLog(t *testing.T) {
	src := ancestorRules + randomParFacts(40, 120, 11)
	p, edb, seq := buildAncestorQ(t, src, 3, []string{"Z"}, []string{"X"})

	cs := obs.NewCounting()
	res, err := Run(p, edb, Config{CheckpointEvery: 4, Sink: cs})
	if err != nil {
		t.Fatal(err)
	}
	if !seq["anc"].Equal(res.Output["anc"]) {
		t.Fatal("checkpointed run differs from sequential least model")
	}
	if res.Checkpoints == 0 {
		t.Error("no checkpoints accepted with CheckpointEvery=4")
	}
	if res.TruncatedBatches == 0 {
		t.Error("no logged batches truncated despite accepted checkpoints")
	}
	m := cs.Snapshot()
	if m.Checkpoints != int64(res.Checkpoints) {
		t.Errorf("sink counted %d checkpoints, result says %d", m.Checkpoints, res.Checkpoints)
	}
	if m.TruncatedBatches != res.TruncatedBatches {
		t.Errorf("sink counted %d truncated batches, result says %d", m.TruncatedBatches, res.TruncatedBatches)
	}
}

// TestCheckpointIntervalTrigger: the timer trigger alone must also produce
// checkpoints on a workload that keeps logs non-empty.
func TestCheckpointIntervalTrigger(t *testing.T) {
	src := ancestorRules + randomParFacts(40, 120, 12)
	p, edb, seq := buildAncestorQ(t, src, 3, []string{"Z"}, []string{"X"})

	// Slow the workers' writes a little so the run spans several timer
	// periods.
	in := fault.New(fault.Schedule{Delay: 300 * time.Microsecond})
	res, err := Run(p, edb, Config{
		CheckpointInterval: 2 * time.Millisecond,
		WorkerDial:         func(wi int) DialFunc { return in.Dial },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !seq["anc"].Equal(res.Output["anc"]) {
		t.Fatal("interval-checkpointed run differs from sequential least model")
	}
	if res.Checkpoints == 0 {
		t.Error("no checkpoints accepted with a 2ms interval trigger")
	}
}

// TestCheckpointRecoveryReplaysSuffix is the headline bounded-recovery
// scenario: checkpoints run throughout, then a worker is killed after at
// least two checkpoint cycles have completed. Recovery must install the
// dead bucket's checkpoint and replay strictly fewer batches than the
// bucket's full history — and still produce the exact least model.
func TestCheckpointRecoveryReplaysSuffix(t *testing.T) {
	src := ancestorRules + randomParFacts(40, 120, 5)
	p, edb, seq := buildAncestorQ(t, src, 3, []string{"Z"}, []string{"X"})

	// Same seed-5 workload as the non-checkpointed recovery test, but the
	// kill lands later in worker 1's write sequence so the small
	// CheckpointEvery has completed several request/reply cycles for its
	// bucket first.
	dial, _ := injectorDial(1, fault.Schedule{Seed: 5, KillConn: 1, KillAfterWrites: 45})
	rec := obs.NewRecorder()
	res, err := Run(p, edb, Config{CheckpointEvery: 2, WorkerDial: dial, Sink: rec})
	if err != nil {
		t.Fatal(err)
	}

	if !seq["anc"].Equal(res.Output["anc"]) {
		t.Fatalf("recovered run differs from sequential least model:\nseq %v\ndist %v",
			seq["anc"], res.Output["anc"])
	}
	if len(res.Deaths) != 1 || res.Deaths[0] != 1 {
		t.Fatalf("Deaths = %v, want [1]", res.Deaths)
	}
	if res.Checkpoints < 2 {
		t.Fatalf("only %d checkpoints accepted before the kill, want >= 2 cycles", res.Checkpoints)
	}
	if len(res.Recoveries) != 1 {
		t.Fatalf("Recoveries = %v, want exactly one", res.Recoveries)
	}
	r := res.Recoveries[0]
	full := r.Replayed + r.Truncated
	if r.Truncated == 0 {
		t.Errorf("recovery replayed the full history (%d batches); checkpoint truncated nothing", full)
	}
	if r.Replayed >= full {
		t.Errorf("Replayed = %d, want strictly less than the %d-batch full history", r.Replayed, full)
	}
	// The event stream narrates checkpoint, truncation and recovery.
	kinds := map[string]int{}
	for _, e := range rec.Events() {
		kinds[e.Kind]++
	}
	for _, k := range []string{
		obs.KindCheckpointStart, obs.KindCheckpointEnd, obs.KindLogTruncated,
		obs.KindWorkerDead, obs.KindBucketReassigned, obs.KindReplayEnd,
	} {
		if kinds[k] == 0 {
			t.Errorf("no %s event recorded", k)
		}
	}
}

// TestCheckpointFaults: dropped and corrupted checkpoint replies must be
// rejected without truncating anything, later intact replies must still be
// accepted, and the run must stay exact. The fault plan is message-level
// and deterministic: the 1st reply is dropped, the 2nd corrupted.
func TestCheckpointFaults(t *testing.T) {
	src := ancestorRules + randomParFacts(40, 120, 13)
	p, edb, seq := buildAncestorQ(t, src, 3, []string{"Z"}, []string{"X"})

	plan := fault.NewCheckpointPlan([]int{1}, []int{2})
	cs := obs.NewCounting()
	res, err := Run(p, edb, Config{
		CheckpointEvery: 2,
		CheckpointFault: func(bucket, ckpt int) int { return plan.Next() },
		Sink:            cs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !seq["anc"].Equal(res.Output["anc"]) {
		t.Fatal("run with faulty checkpoint replies differs from sequential least model")
	}
	if plan.Seen() < 3 {
		t.Fatalf("only %d checkpoint replies seen, want the two faulty ones plus at least one clean", plan.Seen())
	}
	m := cs.Snapshot()
	if m.CheckpointsRejected != 2 {
		t.Errorf("CheckpointsRejected = %d, want exactly the dropped and the corrupted reply", m.CheckpointsRejected)
	}
	if res.Checkpoints == 0 {
		t.Error("no clean checkpoint was accepted after the faulty ones")
	}
}

// TestCheckpointKillDuringCheckpointing kills a worker while checkpoint
// traffic is in flight on every wave (interval trigger at the wave period):
// requests racing the death, replies from a worker already declared dead
// and pending requests to a dead owner must all resolve safely.
func TestCheckpointKillDuringCheckpointing(t *testing.T) {
	src := ancestorRules + randomParFacts(40, 120, 6)
	p, edb, seq := buildAncestorQ(t, src, 3, []string{"Z"}, []string{"X"})

	dial, _ := injectorDial(1, fault.Schedule{Seed: 6, KillConn: 1, KillAfterWrites: 20})
	res, err := Run(p, edb, Config{
		CheckpointEvery:    2,
		CheckpointInterval: time.Millisecond,
		WorkerDial:         dial,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !seq["anc"].Equal(res.Output["anc"]) {
		t.Fatal("kill-during-checkpoint run differs from sequential least model")
	}
	if len(res.Deaths) != 1 {
		t.Fatalf("Deaths = %v, want one", res.Deaths)
	}
}

// TestCheckpointEquivalenceLockstep is the golden equivalence check: the
// Example 3 transitive closure evaluated undisturbed, and again through a
// checkpoint+kill+replay recovery, must render byte-identical sorted
// output.
func TestCheckpointEquivalenceLockstep(t *testing.T) {
	src := ancestorRules + randomParFacts(40, 120, 5)

	render := func(res *Result) string {
		return fmt.Sprintf("%v", res.Output["anc"].SortedRows())
	}

	p, edb, _ := buildAncestorQ(t, src, 3, []string{"Z"}, []string{"X"})
	plain, err := Run(p, edb, Config{})
	if err != nil {
		t.Fatal(err)
	}

	p2, edb2, _ := buildAncestorQ(t, src, 3, []string{"Z"}, []string{"X"})
	dial, _ := injectorDial(1, fault.Schedule{Seed: 5, KillConn: 1, KillAfterWrites: 25})
	recovered, err := Run(p2, edb2, Config{CheckpointEvery: 2, WorkerDial: dial})
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered.Deaths) != 1 {
		t.Fatalf("Deaths = %v, want the scheduled kill", recovered.Deaths)
	}

	a, b := render(plain), render(recovered)
	if a != b {
		t.Fatalf("recovered-from-checkpoint output is not byte-identical to the undisturbed run:\nplain     %s\nrecovered %s", a, b)
	}
}

// TestBackpressureBoundsQueueMemory: with the coordinator's writes slowed
// (congested links via the listener-side injector), an unthrottled run
// piles data into the coordinator's queues past the budget, while the
// credit-gated run keeps the peak at or under MaxQueueBytes.
func TestBackpressureBoundsQueueMemory(t *testing.T) {
	const limit = 4096
	src := ancestorRules + randomParFacts(40, 120, 14)

	run := func(maxQueue int64, cs *obs.Counting) *Result {
		t.Helper()
		p, edb, seq := buildAncestorQ(t, src, 3, []string{"Z"}, []string{"X"})
		in := fault.New(fault.Schedule{Delay: time.Millisecond})
		cfg := Config{
			MaxQueueBytes:  maxQueue,
			WrapListener:   in.Listener,
			WavePoll:       5 * time.Millisecond,
			WorkerDeadline: 20 * time.Second,
			Timeout:        60 * time.Second,
		}
		if cs != nil {
			cfg.Sink = cs
		}
		res, err := Run(p, edb, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !seq["anc"].Equal(res.Output["anc"]) {
			t.Fatal("throttled run differs from sequential least model")
		}
		return res
	}

	baseline := run(0, nil)
	if baseline.PeakQueueBytes <= limit {
		t.Fatalf("unthrottled baseline peaked at %d bytes, need > %d for the comparison to mean anything",
			baseline.PeakQueueBytes, limit)
	}

	cs := obs.NewCounting()
	bounded := run(limit, cs)
	if bounded.PeakQueueBytes > limit {
		t.Errorf("credit-gated run peaked at %d bytes, want <= MaxQueueBytes %d", bounded.PeakQueueBytes, limit)
	}
	if cs.Snapshot().CreditStalls == 0 {
		t.Error("no CreditStall events: the gate never blocked, so the bound was not exercised")
	}
}

// TestMaxInflightBatches: the batch-count credit alone must also bound the
// queues and preserve exactness.
func TestMaxInflightBatches(t *testing.T) {
	src := ancestorRules + randomParFacts(40, 120, 15)
	p, edb, seq := buildAncestorQ(t, src, 3, []string{"Z"}, []string{"X"})
	res, err := Run(p, edb, Config{MaxInflightBatches: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !seq["anc"].Equal(res.Output["anc"]) {
		t.Fatal("inflight-limited run differs from sequential least model")
	}
}

// TestMemoryBudgetForcesCheckpoints: a budget big enough to finish but
// smaller than the run's natural log footprint must trigger memory
// pressure, force early checkpoints, and still complete exactly.
func TestMemoryBudgetForcesCheckpoints(t *testing.T) {
	src := ancestorRules + randomParFacts(60, 180, 16)
	p, edb, seq := buildAncestorQ(t, src, 3, []string{"Z"}, []string{"X"})

	// No checkpoint triggers configured: every checkpoint must come from
	// the pressure path.
	natural, err := Run(p, edb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if natural.Checkpoints != 0 {
		t.Fatalf("baseline run checkpointed %d times with no triggers armed", natural.Checkpoints)
	}

	p2, edb2, _ := buildAncestorQ(t, src, 3, []string{"Z"}, []string{"X"})
	cs := obs.NewCounting()
	// Slow the workers slightly so the coordinator's wave loop gets a
	// chance to observe the growing logs before the run quiesces.
	in := fault.New(fault.Schedule{Delay: 200 * time.Microsecond})
	// The budget sits between this workload's irreducible checkpoint
	// footprint (~12KB of wire-encoded condensed state, measured) and its
	// unchecked log footprint (~65KB plus queues), so pressure must fire
	// and forced truncation must be what keeps the run inside it.
	res, err := Run(p2, edb2, Config{
		MaxMemoryBytes: 24 * 1024,
		WorkerDial:     func(wi int) DialFunc { return in.Dial },
		Sink:           cs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !seq["anc"].Equal(res.Output["anc"]) {
		t.Fatal("pressure-checkpointed run differs from sequential least model")
	}
	m := cs.Snapshot()
	if m.MemoryPressureEvents == 0 {
		t.Fatal("no MemoryPressure events: the budget was never hit, pick a smaller one")
	}
	if res.Checkpoints == 0 {
		t.Error("memory pressure forced no checkpoints")
	}
	if res.TruncatedBatches == 0 {
		t.Error("memory pressure reclaimed no log space")
	}
}

// TestMemoryBudgetExhausted: a budget smaller than even the checkpointed
// state must fail fast with ErrResourceExhausted instead of running on.
func TestMemoryBudgetExhausted(t *testing.T) {
	src := ancestorRules + randomParFacts(60, 180, 17)
	p, edb, _ := buildAncestorQ(t, src, 3, []string{"Z"}, []string{"X"})

	in := fault.New(fault.Schedule{Delay: 200 * time.Microsecond})
	_, err := Run(p, edb, Config{
		MaxMemoryBytes: 512,
		WorkerDial:     func(wi int) DialFunc { return in.Dial },
	})
	if err == nil {
		t.Fatal("run stayed over a 512-byte budget and still reported success")
	}
	if !errors.Is(err, ErrResourceExhausted) {
		t.Fatalf("err = %v, want ErrResourceExhausted", err)
	}
}

// TestRouterReportsDroppedBatches: a data batch addressed to an
// out-of-range bucket must be counted and reported through the sink, not
// silently discarded.
func TestRouterReportsDroppedBatches(t *testing.T) {
	cfg := &Config{}
	cfg.fill()
	rec := obs.NewRecorder()
	cfg.Sink = rec
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	ws := []*wkState{
		{index: 0, conn: c1, out: newQueue(), alive: true},
		{index: 1, conn: c2, out: newQueue(), alive: true},
	}
	r := newRouter(cfg, ws)

	r.route(ws[0], wireMsg{Kind: kindData, Bucket: 7, From: 0, Pred: "anc", Raw: nil})

	if r.dropped != 1 {
		t.Fatalf("dropped = %d, want 1", r.dropped)
	}
	if ws[0].accepted != 1 {
		t.Errorf("accepted = %d, want 1 (the wave ledger must stay balanced)", ws[0].accepted)
	}
	found := false
	for _, e := range rec.Events() {
		if e.Kind == obs.KindBatchDropped && e.Bucket == 7 {
			found = true
		}
	}
	if !found {
		t.Error("no BatchDropped event recorded")
	}
}
