package dist

import (
	"testing"
)

// profileByKey indexes a merged profile's rule records.
func profileByKey(t *testing.T, res *Result) map[string]int64 {
	t.Helper()
	if res.Profile == nil {
		t.Fatal("Config.Profile set but Result.Profile is nil")
	}
	out := make(map[string]int64, len(res.Profile.Rules))
	for _, rp := range res.Profile.Rules {
		out[rp.Key] += rp.Firings
	}
	return out
}

// TestProfileSurvivesForcedMigration: the coordinator's merged profile is a
// run-independent account. A forced mid-run hot-bucket migration moves a
// bucket to another worker — the adopting node re-derives from the bucket's
// checkpointed state, and semi-naive exactness means every rule fires the
// same Definition 4 count it would have fired in a static run. The merged
// per-rule firings of the migrated run must therefore equal the static
// run's, record for record.
func TestProfileSurvivesForcedMigration(t *testing.T) {
	src := ancestorRules + randomParFacts(40, 120, 12)
	p, edb, seq := buildAncestorQ(t, src, 4, []string{"Z"}, []string{"X"})

	static, err := Run(p, edb, Config{Workers: 2, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	migrated, err := Run(p, edb, Config{
		Workers: 2,
		Profile: true,
		Rebalance: RebalanceConfig{
			Enabled: true, Force: true, MaxMigrations: 1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(migrated.Migrations) != 1 {
		t.Fatalf("Migrations = %v, want exactly one forced move", migrated.Migrations)
	}
	if !seq["anc"].Equal(migrated.Output["anc"]) {
		t.Fatal("migrated run differs from the sequential least model")
	}

	want := profileByKey(t, static)
	got := profileByKey(t, migrated)
	if len(got) != len(want) {
		t.Fatalf("migrated profile has %d rules, static %d", len(got), len(want))
	}
	for key, firings := range want {
		if got[key] != firings {
			t.Errorf("rule %q: migrated profile fired %d, static %d", key, got[key], firings)
		}
	}
	if sp, mp := static.Profile.TotalFirings(), migrated.Profile.TotalFirings(); sp != mp {
		t.Errorf("total firings: static %d, migrated %d", sp, mp)
	}
	// The wire round trip preserved per-worker attribution.
	for _, rp := range migrated.Profile.Rules {
		if rp.Firings > 0 && len(rp.Procs) == 0 {
			t.Errorf("rule %q fired %d with no processor attribution", rp.Key, rp.Firings)
		}
	}
}
