package dist

import (
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"testing"
	"time"

	"parlog/internal/analysis"
	"parlog/internal/hashpart"
	"parlog/internal/parallel"
	"parlog/internal/parser"
	"parlog/internal/randprog"
	"parlog/internal/relation"
	"parlog/internal/rewrite"
	"parlog/internal/seminaive"
	"parlog/internal/workload"
)

const ancestorRules = `
anc(X, Y) :- par(X, Y).
anc(X, Y) :- par(X, Z), anc(Z, Y).
`

func randomParFacts(nodes, edges int, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	seen := map[[2]int]bool{}
	for len(seen) < edges {
		e := [2]int{rng.Intn(nodes), rng.Intn(nodes)}
		if seen[e] {
			continue
		}
		seen[e] = true
		fmt.Fprintf(&b, "par(v%d, v%d).\n", e[0], e[1])
	}
	return b.String()
}

func buildAncestorQ(t *testing.T, src string, n int, vr, ve []string) (*parallel.Program, relation.Store, relation.Store) {
	t.Helper()
	prog := parser.MustParse(src)
	seq, _, err := seminaive.Eval(prog, relation.Store{}, seminaive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := analysis.ExtractSirup(prog)
	if err != nil {
		t.Fatal(err)
	}
	p, err := parallel.BuildQ(s, rewrite.SirupSpec{
		Procs: hashpart.RangeProcs(n),
		VR:    vr, VE: ve,
		H: hashpart.ModHash{N: n},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p, relation.Store{}, seq
}

// TestDistributedAncestor runs Example 3's scheme over real TCP sockets and
// compares with sequential evaluation.
func TestDistributedAncestor(t *testing.T) {
	src := ancestorRules + randomParFacts(14, 30, 1)
	p, edb, seq := buildAncestorQ(t, src, 4, []string{"Z"}, []string{"X"})
	res, err := Run(p, edb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !seq["anc"].Equal(res.Output["anc"]) {
		t.Fatalf("distributed result differs:\nseq %v\ndist %v", seq["anc"], res.Output["anc"])
	}
	if len(res.Stats) != 4 {
		t.Errorf("stats for %d workers, want 4", len(res.Stats))
	}
}

// TestDistributedMatchesInProcess: the TCP transport and the goroutine
// transport drive the same Node, so results and firing totals must agree.
func TestDistributedMatchesInProcess(t *testing.T) {
	src := ancestorRules + randomParFacts(12, 26, 2)
	p, edb, _ := buildAncestorQ(t, src, 3, []string{"Z"}, []string{"X"})
	inproc, err := parallel.Run(p, edb, parallel.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := Run(p, edb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !inproc.Output["anc"].Equal(dist.Output["anc"]) {
		t.Fatal("transports disagree on the least model")
	}
	var inprocFirings, distFirings, inprocSent, distSent int64
	for _, ps := range inproc.Stats.Procs {
		inprocFirings += ps.Firings
		inprocSent += ps.TuplesSent
	}
	for _, ps := range dist.Stats {
		distFirings += ps.Firings
		distSent += ps.TuplesSent
	}
	if inprocFirings != distFirings {
		t.Errorf("firings differ: in-process %d, TCP %d", inprocFirings, distFirings)
	}
	if inprocSent != distSent {
		t.Errorf("tuple traffic differs: in-process %d, TCP %d", inprocSent, distSent)
	}
}

// TestDistributedCommFree: Theorem 3's scheme sends nothing even over TCP.
func TestDistributedCommFree(t *testing.T) {
	src := ancestorRules + randomParFacts(10, 20, 3)
	p, edb, seq := buildAncestorQ(t, src, 3, []string{"Y"}, []string{"Y"})
	res, err := Run(p, edb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !seq["anc"].Equal(res.Output["anc"]) {
		t.Fatal("result differs")
	}
	var sent int64
	for _, ps := range res.Stats {
		sent += ps.TuplesSent
	}
	if sent != 0 {
		t.Errorf("communication-free scheme sent %d tuples over TCP", sent)
	}
}

// TestDistributedGeneralScheme runs the Section 7 scheme for the non-linear
// ancestor over TCP.
func TestDistributedGeneralScheme(t *testing.T) {
	src := `
anc(X, Y) :- par(X, Y).
anc(X, Y) :- anc(X, Z), anc(Z, Y).
` + randomParFacts(10, 20, 4)
	prog := parser.MustParse(src)
	seq, _, err := seminaive.Eval(prog, relation.Store{}, seminaive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	h := hashpart.ModHash{N: 3}
	p, err := parallel.BuildGeneral(prog, rewrite.GeneralSpec{
		Procs: hashpart.RangeProcs(3),
		Rules: []rewrite.RuleSpec{
			{Seq: []string{"Y"}, H: h},
			{Seq: []string{"Z"}, H: h},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, relation.Store{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !seq["anc"].Equal(res.Output["anc"]) {
		t.Fatal("distributed general scheme differs from sequential")
	}
}

// TestDistributedRandomPrograms: differential testing over TCP.
func TestDistributedRandomPrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for seed := int64(0); seed < 6; seed++ {
		g := randprog.Generate(randprog.Config{}, seed)
		want, _, err := seminaive.Eval(g.Prog, g.EDB, seminaive.Options{})
		if err != nil {
			t.Fatal(err)
		}
		rules, _ := g.Prog.FactTuples()
		spec := rewrite.GeneralSpec{Procs: hashpart.RangeProcs(3)}
		h := hashpart.ModHash{N: 3, Seed: uint64(seed)}
		ok := true
		for _, r := range rules {
			vars := r.BodyVars()
			if len(vars) == 0 {
				ok = false
				break
			}
			spec.Rules = append(spec.Rules, rewrite.RuleSpec{Seq: vars[:1], H: h})
		}
		if !ok {
			continue
		}
		p, err := parallel.BuildGeneral(g.Prog, spec)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := Run(p, g.EDB, Config{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, pred := range g.Prog.IDBPreds() {
			a, b := want[pred], res.Output[pred]
			if (a == nil) != (b == nil) || (a != nil && !a.Equal(b)) {
				t.Fatalf("seed %d: %s differs over TCP\nprogram:\n%s", seed, pred, g.Prog)
			}
		}
	}
}

// TestDistributedSameGen runs a bigger workload end to end over sockets.
func TestDistributedSameGen(t *testing.T) {
	up, flat, down := workload.SameGenInput(2, 5)
	edb := relation.Store{"up": up, "flat": flat, "down": down}
	prog := workload.SameGenProgram()
	seq, _, err := seminaive.Eval(prog, edb, seminaive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	h := hashpart.ModHash{N: 4}
	p, err := parallel.BuildGeneral(prog, rewrite.GeneralSpec{
		Procs: hashpart.RangeProcs(4),
		Rules: []rewrite.RuleSpec{
			{Seq: []string{"X"}, H: h},
			{Seq: []string{"U"}, H: h},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, edb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !seq["sg"].Equal(res.Output["sg"]) {
		t.Fatal("distributed same-generation differs")
	}
}

func TestCoordinatorTimeout(t *testing.T) {
	// A coordinator waiting for workers that never join must time out.
	coord, err := NewCoordinator(Config{Workers: 2, Timeout: 150 * time.Millisecond}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = coord.Wait()
	if err == nil {
		t.Error("coordinator did not time out")
	}
	if !errors.Is(err, ErrTimeout) {
		t.Errorf("timeout error is not ErrTimeout: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewCoordinator(Config{Workers: 0}, nil); err == nil {
		t.Error("zero workers accepted")
	}
}

func TestWorkerBadCoordinator(t *testing.T) {
	prog := parser.MustParse(ancestorRules)
	s, err := analysis.ExtractSirup(prog)
	if err != nil {
		t.Fatal(err)
	}
	p, err := parallel.BuildQ(s, rewrite.SirupSpec{
		Procs: hashpart.RangeProcs(1),
		VR:    []string{"Z"}, VE: []string{"X"},
		H: hashpart.ModHash{N: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	global, err := parallel.PrepareEDB(p, relation.Store{})
	if err != nil {
		t.Fatal(err)
	}
	node := parallel.NewNode(p, 0, global)
	cfg := WorkerConfig{MaxRetries: 2, RetryBase: time.Millisecond}
	if err := RunWorker("127.0.0.1:1", node, cfg); err == nil {
		t.Error("dialing a dead coordinator succeeded")
	}
}

func TestCoordinatorRejectsBadJoin(t *testing.T) {
	coord, err := NewCoordinator(Config{Workers: 1, Timeout: 2 * time.Second}, nil)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := coord.Wait()
		done <- err
	}()
	conn, err := net.Dial("tcp", coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := gob.NewEncoder(conn).Encode(wireMsg{Kind: kindJoin, Index: 99}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err == nil {
		t.Error("coordinator accepted an out-of-range worker index")
	}
}
