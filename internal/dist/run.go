package dist

import (
	"fmt"

	"parlog/internal/parallel"
	"parlog/internal/relation"
)

// Run executes the compiled program with one TCP worker per processor, all
// within this process but communicating exclusively over loopback sockets —
// no memory is shared between processors. It is the drop-in distributed
// counterpart of parallel.Run. Every worker gets a node factory so the
// coordinator can reassign a dead worker's bucket to any survivor, and
// cfg.WorkerDial (when set) threads a fault injector under each worker's
// connection.
func Run(p *parallel.Program, edb relation.Store, cfg Config) (*Result, error) {
	global, err := parallel.PrepareEDB(p, edb)
	if err != nil {
		return nil, err
	}
	// The program's processors become hash buckets; the number of OS
	// workers may be smaller (cfg.Workers), in which case each worker
	// natively hosts bucket wi and adopts the rest at start. The default
	// remains one worker per processor.
	cfg.Buckets = p.Procs.Len()
	if cfg.Workers <= 0 || cfg.Workers > cfg.Buckets {
		cfg.Workers = cfg.Buckets
	}
	cfg.ProcIDs = p.Procs.IDs()
	if cfg.Pinned == nil {
		cfg.Pinned = p.PinnedBuckets()
	}
	coord, err := NewCoordinator(cfg, p.IDB)
	if err != nil {
		return nil, err
	}

	if cfg.Sink != nil {
		cfg.Sink.RunStart("dist", p.Procs.IDs())
	}
	newNode := func(bucket int) *parallel.Node {
		n := parallel.NewNode(p, bucket, global)
		n.SetSink(cfg.Sink)
		n.Replan(cfg.Planner)
		return n
	}
	type werr struct {
		wi  int
		err error
	}
	errs := make(chan werr, cfg.Workers)
	for wi := 0; wi < cfg.Workers; wi++ {
		wi := wi
		wcfg := WorkerConfig{
			Ctx:        cfg.Ctx,
			NewNode:    newNode,
			Dir:        cfg.WorkerDir,
			MaxRetries: cfg.MaxRetries,
			RetryBase:  cfg.RetryBase,
		}
		if cfg.WorkerDial != nil {
			wcfg.Dial = cfg.WorkerDial(wi)
		}
		go func() {
			errs <- werr{wi, RunWorker(coord.Addr(), newNode(wi), wcfg)}
		}()
	}

	res, err := coord.Wait()
	if err != nil {
		return nil, err
	}
	// A worker the coordinator declared dead is expected to fail — its
	// bucket was recovered elsewhere. Any other failure is real.
	dead := make(map[int]bool, len(res.Deaths))
	for _, wi := range res.Deaths {
		dead[wi] = true
	}
	for i := 0; i < cfg.Workers; i++ {
		if w := <-errs; w.err != nil && !dead[w.wi] {
			return nil, fmt.Errorf("dist: worker %d failed: %w", w.wi, w.err)
		}
	}
	if cfg.Sink != nil {
		cfg.Sink.RunEnd(res.Wall)
	}
	return res, nil
}
