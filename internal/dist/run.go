package dist

import (
	"fmt"

	"parlog/internal/parallel"
	"parlog/internal/relation"
)

// Run executes the compiled program with one TCP worker per processor, all
// within this process but communicating exclusively over loopback sockets —
// no memory is shared between processors. It is the drop-in distributed
// counterpart of parallel.Run.
func Run(p *parallel.Program, edb relation.Store, cfg Config) (*Result, error) {
	global, err := parallel.PrepareEDB(p, edb)
	if err != nil {
		return nil, err
	}
	cfg.Workers = p.Procs.Len()
	coord, err := NewCoordinator(cfg, p.IDB)
	if err != nil {
		return nil, err
	}

	if cfg.Sink != nil {
		cfg.Sink.RunStart("dist", p.Procs.IDs())
	}
	errs := make(chan error, cfg.Workers)
	for wi := 0; wi < cfg.Workers; wi++ {
		node := parallel.NewNode(p, wi, global)
		node.SetSink(cfg.Sink)
		go func() {
			errs <- RunWorker(coord.Addr(), "127.0.0.1:0", node)
		}()
	}

	res, err := coord.Wait()
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Workers; i++ {
		if werr := <-errs; werr != nil {
			return nil, fmt.Errorf("dist: worker failed: %w", werr)
		}
	}
	if cfg.Sink != nil {
		cfg.Sink.RunEnd(res.Wall)
	}
	return res, nil
}
