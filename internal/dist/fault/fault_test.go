package fault

import (
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// pipe returns a connected TCP pair over loopback (net.Pipe lacks
// deadlines and buffers, so use the real stack like the runtime does).
func pipe(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		server, err = ln.Accept()
	}()
	client, derr := net.Dial("tcp", ln.Addr().String())
	wg.Wait()
	if derr != nil || err != nil {
		t.Fatalf("pipe: %v / %v", derr, err)
	}
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

func TestDialFailuresThenSuccess(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()

	in := New(Schedule{FailDials: 2})
	for i := 0; i < 2; i++ {
		if _, err := in.Dial("tcp", ln.Addr().String()); !errors.Is(err, ErrInjected) {
			t.Fatalf("dial %d: want ErrInjected, got %v", i, err)
		}
	}
	c, err := in.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("third dial should succeed: %v", err)
	}
	c.Close()
	if in.Dials() != 3 {
		t.Errorf("Dials() = %d, want 3", in.Dials())
	}
}

func TestKillAfterWrites(t *testing.T) {
	client, server := pipe(t)
	in := New(Schedule{KillConn: 1, KillAfterWrites: 3})
	c := in.Wrap(client)

	for i := 0; i < 3; i++ {
		if _, err := c.Write([]byte{byte(i)}); err != nil {
			t.Fatalf("write %d should pass: %v", i, err)
		}
	}
	if _, err := c.Write([]byte{9}); !errors.Is(err, ErrInjected) {
		t.Fatalf("4th write: want ErrInjected, got %v", err)
	}
	// The peer must observe the death: reads hit EOF/reset once the three
	// good bytes are consumed.
	buf := make([]byte, 8)
	total := 0
	server.SetReadDeadline(time.Now().Add(2 * time.Second))
	for {
		n, err := server.Read(buf)
		total += n
		if err != nil {
			if err == io.EOF && total == 3 {
				break // clean close after exactly the allowed writes
			}
			if total == 3 {
				break // reset is fine too
			}
			t.Fatalf("peer read: %v after %d bytes", err, total)
		}
	}
	// Further use of the killed conn keeps failing.
	if _, err := c.Read(buf); !errors.Is(err, ErrInjected) {
		t.Errorf("read on killed conn: want ErrInjected, got %v", err)
	}
}

func TestSecondConnUnaffected(t *testing.T) {
	c1a, _ := pipe(t)
	c2a, c2b := pipe(t)
	in := New(Schedule{KillConn: 1, KillAfterWrites: 0})
	k := in.Wrap(c1a)
	ok := in.Wrap(c2a)
	if _, err := k.Write([]byte{1}); !errors.Is(err, ErrInjected) {
		t.Fatalf("conn 1 should die immediately, got %v", err)
	}
	if _, err := ok.Write([]byte{2}); err != nil {
		t.Fatalf("conn 2 should live: %v", err)
	}
	buf := make([]byte, 1)
	c2b.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c2b.Read(buf); err != nil || buf[0] != 2 {
		t.Fatalf("conn 2 payload: %v %v", buf[0], err)
	}
}

func TestDeterministicJitter(t *testing.T) {
	seq := func() []time.Duration {
		in := New(Schedule{Seed: 42, Jitter: time.Millisecond})
		var out []time.Duration
		for i := 0; i < 5; i++ {
			out = append(out, in.delay())
		}
		return out
	}
	a, b := seq(), seq()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("jitter not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestListenerWraps(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	in := New(Schedule{KillConn: 1, KillAfterWrites: 0})
	wln := in.Listener(ln)
	defer wln.Close()
	go func() {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err == nil {
			defer c.Close()
			buf := make([]byte, 1)
			c.SetReadDeadline(time.Now().Add(2 * time.Second))
			c.Read(buf)
		}
	}()
	c, err := wln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte{1}); !errors.Is(err, ErrInjected) {
		t.Fatalf("accepted conn should be scheduled: %v", err)
	}
}

func TestDiskPlanDeterminism(t *testing.T) {
	run := func() ([]string, []error) {
		p := NewDiskPlan().KillAt(3).CorruptAt(2)
		var outs []string
		var errs []error
		for i := 0; i < 5; i++ {
			out, err := p.BeforeWrite("wal.log", []byte{1, 2, 3, 4})
			outs = append(outs, string(out))
			errs = append(errs, err)
		}
		return outs, errs
	}
	a, aerr := run()
	b, berr := run()
	for i := range a {
		if a[i] != b[i] || (aerr[i] == nil) != (berr[i] == nil) {
			t.Fatalf("non-deterministic at write %d", i+1)
		}
	}
	// Write 1 passes untouched, write 2 is corrupted, write 3 kills, 4-5
	// fail (dead).
	if a[0] != "\x01\x02\x03\x04" || aerr[0] != nil {
		t.Fatalf("write 1: %q %v", a[0], aerr[0])
	}
	if a[1] == "\x01\x02\x03\x04" || aerr[1] != nil {
		t.Fatalf("write 2 not corrupted: %q %v", a[1], aerr[1])
	}
	for i := 2; i < 5; i++ {
		if !errors.Is(aerr[i], ErrInjected) {
			t.Fatalf("write %d should fail: %v", i+1, aerr[i])
		}
	}
	if a[2] != "" {
		t.Fatalf("kill persisted bytes: %q", a[2])
	}
}

func TestDiskPlanTearAndSegments(t *testing.T) {
	p := NewDiskPlan().TearAt(2).CorruptSegment(1)
	out, err := p.BeforeWrite("seg-0001.seg", []byte{9, 9, 9, 9})
	if err != nil || string(out) == "\x09\x09\x09\x09" {
		t.Fatalf("segment write not corrupted: %q %v", out, err)
	}
	out, err = p.BeforeWrite("wal.log", []byte{1, 2, 3, 4})
	if !errors.Is(err, ErrInjected) || len(out) != 2 {
		t.Fatalf("tear: %q %v", out, err)
	}
	if p.Writes() != 2 || p.SegWrites() != 1 {
		t.Fatalf("counters: %d writes, %d seg", p.Writes(), p.SegWrites())
	}
}
