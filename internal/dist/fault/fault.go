// Package fault is a deterministic fault-injection layer for the TCP
// runtime: net.Conn and net.Listener wrappers that drop dial attempts,
// delay writes, or kill connections on a seeded schedule. Because faults
// fire on logical events (the n-th dial, the n-th write of the n-th
// connection) rather than on wall-clock timers or real process kills, a
// recovery scenario is reproducible under the race detector with nothing
// but an Injector plugged into the runtime's dial hook.
package fault

import (
	"errors"
	"math/rand"
	"net"
	"strings"
	"sync"
	"time"
)

// ErrInjected is the error every injected failure wraps, so tests can
// distinguish scheduled faults from genuine network errors.
var ErrInjected = errors.New("fault: injected failure")

// Schedule is a deterministic fault plan. Ordinals are 1-based and count
// events per Injector in order of occurrence: with a fixed schedule and a
// deterministic sequence of Dial/Accept calls, the same faults fire at the
// same logical points every run. The zero value injects nothing.
type Schedule struct {
	// Seed drives the jittered component of write delays. Two injectors
	// with equal schedules produce identical delay sequences.
	Seed int64
	// FailDials fails the first FailDials Dial calls with ErrInjected
	// before letting one through (exercises connect retry).
	FailDials int
	// KillConn is the 1-based ordinal of the wrapped connection to kill;
	// 0 kills none. The connection dies after KillAfterWrites successful
	// Write calls: the next write closes the underlying connection and
	// returns ErrInjected, so the peer sees a reset mid-stream.
	KillConn int
	// KillAfterWrites is the number of writes the killed connection is
	// allowed before it dies. 0 kills on the first write.
	KillAfterWrites int
	// Delay is added to every Write on every wrapped connection.
	Delay time.Duration
	// Jitter adds a seeded-uniform extra delay in [0, Jitter) per write.
	Jitter time.Duration
	// ReadDelay is added to every Read on every wrapped connection —
	// a slow consumer, the stimulus that backs up the coordinator's
	// outbound queues and exercises credit-based flow control.
	ReadDelay time.Duration
}

// Injector applies a Schedule to the connections it wraps. Safe for
// concurrent use; all counters are internally synchronized.
type Injector struct {
	mu    sync.Mutex
	sched Schedule
	rng   *rand.Rand
	dials int
	conns int
}

// New returns an injector for the given schedule.
func New(sched Schedule) *Injector {
	return &Injector{sched: sched, rng: rand.New(rand.NewSource(sched.Seed))}
}

// Dial counts a dial attempt, failing it if the schedule says so, and
// otherwise dials for real and wraps the resulting connection. Its
// signature matches the runtime's dial hook.
func (in *Injector) Dial(network, address string) (net.Conn, error) {
	in.mu.Lock()
	in.dials++
	fail := in.dials <= in.sched.FailDials
	in.mu.Unlock()
	if fail {
		return nil, ErrInjected
	}
	c, err := net.Dial(network, address)
	if err != nil {
		return nil, err
	}
	return in.Wrap(c), nil
}

// Wrap returns c under the injector's schedule. The wrapped connection is
// assigned the next connection ordinal.
func (in *Injector) Wrap(c net.Conn) net.Conn {
	in.mu.Lock()
	in.conns++
	id := in.conns
	in.mu.Unlock()
	return &conn{Conn: c, in: in, id: id}
}

// Listener wraps ln so every accepted connection is scheduled, for
// injecting faults on the accepting side.
func (in *Injector) Listener(ln net.Listener) net.Listener {
	return &listener{Listener: ln, in: in}
}

// Dials reports how many Dial calls the injector has seen.
func (in *Injector) Dials() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.dials
}

// delay computes the next write delay (base + seeded jitter).
func (in *Injector) delay() time.Duration {
	d := in.sched.Delay
	if in.sched.Jitter > 0 {
		in.mu.Lock()
		d += time.Duration(in.rng.Int63n(int64(in.sched.Jitter)))
		in.mu.Unlock()
	}
	return d
}

type listener struct {
	net.Listener
	in *Injector
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.in.Wrap(c), nil
}

// conn injects the schedule's write faults over an underlying connection.
type conn struct {
	net.Conn
	in *Injector
	id int

	mu     sync.Mutex
	writes int
	killed bool
}

func (c *conn) Write(p []byte) (int, error) {
	if d := c.in.delay(); d > 0 {
		time.Sleep(d)
	}
	c.mu.Lock()
	if c.killed {
		c.mu.Unlock()
		return 0, ErrInjected
	}
	s := c.in.sched
	if s.KillConn == c.id && c.writes >= s.KillAfterWrites {
		c.killed = true
		c.mu.Unlock()
		// Close the underlying conn so the peer observes the failure
		// mid-stream, exactly like a crashed process.
		c.Conn.Close()
		return 0, ErrInjected
	}
	c.writes++
	c.mu.Unlock()
	return c.Conn.Write(p)
}

func (c *conn) Read(p []byte) (int, error) {
	if d := c.in.sched.ReadDelay; d > 0 {
		time.Sleep(d)
	}
	c.mu.Lock()
	killed := c.killed
	c.mu.Unlock()
	if killed {
		return 0, ErrInjected
	}
	return c.Conn.Read(p)
}

// Checkpoint-message fault actions, the values a runtime checkpoint-fault
// hook returns. Kept as plain ints so the runtime does not need to import
// this package to declare its hook.
const (
	CkptPass    = 0 // deliver the checkpoint reply untouched
	CkptDrop    = 1 // discard the reply in transit (log stays untruncated)
	CkptCorrupt = 2 // flip the reply's payload so the checksum fails
)

// CheckpointPlan schedules message-level checkpoint faults by ordinal:
// the n-th checkpoint reply the coordinator receives is dropped or
// corrupted per the plan. Deterministic and safe for concurrent use.
type CheckpointPlan struct {
	mu      sync.Mutex
	drop    map[int]bool
	corrupt map[int]bool
	n       int
}

// NewCheckpointPlan builds a plan from 1-based reply ordinals.
func NewCheckpointPlan(dropNth, corruptNth []int) *CheckpointPlan {
	p := &CheckpointPlan{drop: map[int]bool{}, corrupt: map[int]bool{}}
	for _, n := range dropNth {
		p.drop[n] = true
	}
	for _, n := range corruptNth {
		p.corrupt[n] = true
	}
	return p
}

// Next counts one checkpoint reply and returns its scheduled action.
func (p *CheckpointPlan) Next() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.n++
	switch {
	case p.drop[p.n]:
		return CkptDrop
	case p.corrupt[p.n]:
		return CkptCorrupt
	}
	return CkptPass
}

// Seen reports how many checkpoint replies the plan has counted.
func (p *CheckpointPlan) Seen() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.n
}

// DiskPlan schedules disk-write faults by ordinal: the n-th physical
// write of a durable store dies cleanly (nothing persisted), tears
// (half the bytes persist, then death) or is silently corrupted (one
// flipped byte, write "succeeds"). Its BeforeWrite method matches the
// store package's WriteHook signature — func(name string, data []byte)
// ([]byte, error) — without importing it, the same decoupling as the
// checkpoint actions above. Once a kill or tear fires the plan is dead:
// every later write fails too, like the process it simulates.
// Deterministic and safe for concurrent use.
type DiskPlan struct {
	mu        sync.Mutex
	writes    int
	segWrites int
	killAt    int
	tearAt    int
	corrupt   map[int]bool
	// corruptSegNth corrupts the nth segment-file write (counted
	// separately from WAL appends, matched by file name).
	corruptSegNth int
	dead          bool
}

// NewDiskPlan returns an empty plan (no faults).
func NewDiskPlan() *DiskPlan { return &DiskPlan{corrupt: map[int]bool{}} }

// KillAt schedules the nth write (1-based) to fail with nothing
// persisted — a clean crash at the write boundary.
func (p *DiskPlan) KillAt(n int) *DiskPlan {
	p.mu.Lock()
	p.killAt = n
	p.mu.Unlock()
	return p
}

// TearAt schedules the nth write to persist only its first half before
// failing — a torn record, the residue of a crash mid-syscall.
func (p *DiskPlan) TearAt(n int) *DiskPlan {
	p.mu.Lock()
	p.tearAt = n
	p.mu.Unlock()
	return p
}

// CorruptAt schedules one flipped byte in the nth write, which otherwise
// succeeds — silent corruption the checksums must catch at recovery.
func (p *DiskPlan) CorruptAt(n int) *DiskPlan {
	p.mu.Lock()
	p.corrupt[n] = true
	p.mu.Unlock()
	return p
}

// CorruptSegment schedules one flipped byte in the nth segment-file
// write (files named "seg-*"), leaving WAL appends untouched.
func (p *DiskPlan) CorruptSegment(n int) *DiskPlan {
	p.mu.Lock()
	p.corruptSegNth = n
	p.mu.Unlock()
	return p
}

// BeforeWrite applies the plan to one physical write — the store layer's
// write hook.
func (p *DiskPlan) BeforeWrite(name string, data []byte) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.dead {
		return nil, ErrInjected
	}
	p.writes++
	isSeg := strings.HasPrefix(name, "seg-")
	if isSeg {
		p.segWrites++
	}
	switch {
	case p.writes == p.killAt:
		p.dead = true
		return nil, ErrInjected
	case p.writes == p.tearAt:
		p.dead = true
		return data[:len(data)/2], ErrInjected
	case p.corrupt[p.writes], isSeg && p.segWrites == p.corruptSegNth:
		out := append([]byte(nil), data...)
		if len(out) > 0 {
			out[len(out)-1] ^= 0xFF
		}
		return out, nil
	}
	return data, nil
}

// Writes reports how many physical writes the plan has counted (the
// write-point space a crash differential iterates over); SegWrites how
// many of them were segment files.
func (p *DiskPlan) Writes() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.writes
}

func (p *DiskPlan) SegWrites() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.segWrites
}

// MisroutePlan schedules router-level misrouting by ordinal: the n-th data
// batch the coordinator accepts is redirected to a fixed wrong bucket —
// traffic the minimal network graph never predicted, which the
// conformance auditor must flag. Deterministic and safe for concurrent
// use; wire it to dist.Config.RouteFault via Route.
type MisroutePlan struct {
	mu sync.Mutex
	// nth maps 1-based accepted-batch ordinals to the bucket the batch is
	// diverted to.
	nth map[int]int
	// from maps worker indices to a bucket: every data batch from that
	// worker is diverted there, regardless of ordinal.
	from map[int]int
	n    int
}

// NewMisroutePlan diverts the nth-th accepted data batch to bucket to.
func NewMisroutePlan(nth, to int) *MisroutePlan {
	return &MisroutePlan{nth: map[int]int{nth: to}}
}

// Divert adds another scheduled diversion to the plan.
func (p *MisroutePlan) Divert(nth, to int) *MisroutePlan {
	p.mu.Lock()
	p.nth[nth] = to
	p.mu.Unlock()
	return p
}

// DivertAllFrom reroutes every data batch accepted from the given worker
// to the fixed bucket — the sustained variant for tests that need a
// *non-empty* batch diverted without knowing which ordinal carries
// tuples (workers also ship zero-tuple defensive batches, which the
// auditor rightly ignores).
func (p *MisroutePlan) DivertAllFrom(worker, to int) *MisroutePlan {
	p.mu.Lock()
	if p.from == nil {
		p.from = map[int]int{}
	}
	p.from[worker] = to
	p.mu.Unlock()
	return p
}

// Route counts one accepted data batch and returns the bucket to deliver
// it to — dist.Config.RouteFault's signature.
func (p *MisroutePlan) Route(fromWorker, bucket int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.n++
	if to, ok := p.from[fromWorker]; ok {
		return to
	}
	if to, ok := p.nth[p.n]; ok {
		return to
	}
	return bucket
}

// Seen reports how many data batches the plan has counted.
func (p *MisroutePlan) Seen() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.n
}
