package dist

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"parlog/internal/ast"
	"parlog/internal/parallel"
	"parlog/internal/relation"
)

// dmailbox is the worker's unbounded inbox for data batches.
type dmailbox struct {
	mu     sync.Mutex
	msgs   []dataMsg
	notify chan struct{}
}

func newDMailbox() *dmailbox { return &dmailbox{notify: make(chan struct{}, 1)} }

func (m *dmailbox) push(msg dataMsg) {
	m.mu.Lock()
	m.msgs = append(m.msgs, msg)
	m.mu.Unlock()
	select {
	case m.notify <- struct{}{}:
	default:
	}
}

func (m *dmailbox) takeAll() []dataMsg {
	m.mu.Lock()
	out := m.msgs
	m.msgs = nil
	m.mu.Unlock()
	return out
}

// RunWorker executes one processor's node against a coordinator: join,
// receive the peer map, evaluate until the coordinator establishes global
// quiescence, then ship outputs and statistics. dataAddr is the address to
// accept peer connections on ("127.0.0.1:0" picks a free port). Blocking;
// returns after the coordinator has collected this worker's output.
func RunWorker(coordAddr, dataAddr string, node *parallel.Node) error {
	ctrl, err := net.Dial("tcp", coordAddr)
	if err != nil {
		return fmt.Errorf("dist: dialing coordinator: %w", err)
	}
	defer ctrl.Close()
	enc := gob.NewEncoder(ctrl)
	dec := gob.NewDecoder(ctrl)

	dataLn, err := net.Listen("tcp", dataAddr)
	if err != nil {
		return fmt.Errorf("dist: data listener: %w", err)
	}
	defer dataLn.Close()

	if err := enc.Encode(ctrlMsg{
		Kind:     kindJoin,
		Index:    node.Index(),
		DataAddr: dataLn.Addr().String(),
	}); err != nil {
		return fmt.Errorf("dist: join: %w", err)
	}
	var start ctrlMsg
	if err := dec.Decode(&start); err != nil {
		return fmt.Errorf("dist: waiting for start: %w", err)
	}
	if start.Kind != kindStart {
		return fmt.Errorf("dist: expected start, got kind %d", start.Kind)
	}

	// Shared state between the control responder (this goroutine), the data
	// acceptor goroutines and the evaluation loop. The counters follow the
	// four-counter contract: sent is incremented before the batch reaches
	// the wire; idle is cleared before received is incremented.
	var (
		sent, recv atomic.Int64
		idle       atomic.Bool
		mbox       = newDMailbox()
		quit       = make(chan struct{})
		loopDone   = make(chan struct{})
	)

	// Data plane: accept peer connections, stream batches into the mailbox.
	go func() {
		for {
			conn, err := dataLn.Accept()
			if err != nil {
				return // listener closed at shutdown
			}
			go func() {
				defer conn.Close()
				d := gob.NewDecoder(conn)
				for {
					var m dataMsg
					if err := d.Decode(&m); err != nil {
						return
					}
					mbox.push(m)
				}
			}()
		}
	}()

	// Evaluation loop: drives the node exactly like the in-process
	// transport, but batches travel over TCP.
	var evalErr error
	go func() {
		defer close(loopDone)

		outConns := make([]*gob.Encoder, len(start.Peers))
		rawConns := make([]net.Conn, len(start.Peers))
		defer func() {
			for _, c := range rawConns {
				if c != nil {
					c.Close()
				}
			}
		}()
		emit := func(dest int, pred string, tuples []relation.Tuple) {
			if evalErr != nil {
				return
			}
			if outConns[dest] == nil {
				conn, err := net.Dial("tcp", start.Peers[dest])
				if err != nil {
					evalErr = fmt.Errorf("dist: dialing peer %d: %w", dest, err)
					return
				}
				rawConns[dest] = conn
				outConns[dest] = gob.NewEncoder(conn)
			}
			ts := make([][]ast.Value, len(tuples))
			for i, t := range tuples {
				ts[i] = t
			}
			node.RecordSent(len(tuples))
			if sink := node.Sink(); sink != nil {
				sink.MessageSent(node.Proc(), node.PeerProc(dest), pred, len(tuples))
			}
			sent.Add(1) // before the batch can reach the wire
			if err := outConns[dest].Encode(dataMsg{From: node.Index(), Pred: pred, Tuples: ts}); err != nil {
				evalErr = fmt.Errorf("dist: sending to peer %d: %w", dest, err)
			}
		}

		sink := node.Sink()
		if sink != nil {
			sink.WorkerBusy(node.Proc())
		}
		begin := time.Now()
		node.Init(emit)
		node.RecordBusy(time.Since(begin))
		if sink != nil {
			sink.WorkerIdle(node.Proc())
		}
		idle.Store(true)
		for {
			select {
			case <-mbox.notify:
				idle.Store(false)
				if sink != nil {
					sink.WorkerBusy(node.Proc())
				}
				begin = time.Now()
				for _, m := range mbox.takeAll() {
					recv.Add(1)
					tuples := make([]relation.Tuple, len(m.Tuples))
					for i, t := range m.Tuples {
						tuples[i] = t
					}
					node.Accept(m.From, m.Pred, tuples)
				}
				node.Drain(emit)
				node.RecordBusy(time.Since(begin))
				if sink != nil {
					sink.WorkerIdle(node.Proc())
				}
				idle.Store(true)
			case <-quit:
				return
			}
		}
	}()

	// Control plane: answer detection waves until the coordinator declares
	// quiescence and asks for the output.
	for {
		var msg ctrlMsg
		if err := dec.Decode(&msg); err != nil {
			close(quit)
			<-loopDone
			return fmt.Errorf("dist: control channel: %w", err)
		}
		switch msg.Kind {
		case kindStatus:
			if err := enc.Encode(ctrlMsg{
				Kind: kindStatusReply,
				Sent: sent.Load(),
				Recv: recv.Load(),
				Idle: idle.Load(),
			}); err != nil {
				close(quit)
				<-loopDone
				return fmt.Errorf("dist: status reply: %w", err)
			}
		case kindFinish:
			close(quit)
			<-loopDone
			if evalErr != nil {
				return evalErr
			}
			out := ctrlMsg{Kind: kindOutput, Output: map[string][][]ast.Value{}, Stats: node.Stats()}
			for pred, rel := range node.Outputs() {
				if rel.Len() == 0 {
					continue
				}
				ts := make([][]ast.Value, rel.Len())
				for i, t := range rel.Rows() {
					ts[i] = t
				}
				out.Output[pred] = ts
			}
			if err := enc.Encode(out); err != nil {
				return fmt.Errorf("dist: output: %w", err)
			}
			return nil
		default:
			close(quit)
			<-loopDone
			return fmt.Errorf("dist: unexpected control kind %d", msg.Kind)
		}
	}
}
