package dist

import (
	"context"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"parlog/internal/obs"
	"parlog/internal/parallel"
	"parlog/internal/relation"
	"parlog/internal/store"
	"parlog/internal/wire"
)

// ckptRecord is the record kind checkpoint files carry: a single record
// whose payload is the uvarint checkpoint probe number followed by the
// wire-encoded snapshot blob, framed and checksummed by the store layer.
const ckptRecord byte = 1

// ckptName is the per-bucket checkpoint file inside WorkerConfig.Dir.
func ckptName(bucket int) string { return fmt.Sprintf("ckpt-%04d.ckpt", bucket) }

// persistCheckpoint writes one bucket's snapshot blob atomically; the
// file is either the complete new checkpoint or the previous one. The
// probe number travels inside the record so an adopting worker can tell
// whether the file is the checkpoint the coordinator accepted — or a
// newer one whose reply never arrived.
func persistCheckpoint(dir string, bucket, probe int, snap []byte) error {
	payload := binary.AppendUvarint(make([]byte, 0, len(snap)+binary.MaxVarintLen64), uint64(probe))
	payload = append(payload, snap...)
	_, err := store.WriteAtomic(dir, ckptName(bucket), []store.Record{{Kind: ckptRecord, Payload: payload}}, nil)
	return err
}

// loadCheckpoint reads one bucket's persisted snapshot blob, verifying
// the store-layer checksum. A missing or damaged file returns an error.
func loadCheckpoint(dir string, bucket int) (probe int, snap []byte, err error) {
	recs, err := store.ReadSegment(filepath.Join(dir, ckptName(bucket)))
	if err != nil {
		return 0, nil, err
	}
	if len(recs) != 1 || recs[0].Kind != ckptRecord {
		return 0, nil, fmt.Errorf("dist: checkpoint file for bucket %d has unexpected layout: %w", bucket, store.ErrCorruptSegment)
	}
	p, n := binary.Uvarint(recs[0].Payload)
	if n <= 0 {
		return 0, nil, fmt.Errorf("dist: checkpoint file for bucket %d has a malformed probe header: %w", bucket, store.ErrCorruptSegment)
	}
	return int(p), recs[0].Payload[n:], nil
}

// resolveAdoptSnap turns an adopt message into the snapshot to install.
// A shipped blob (or no checkpoint at all — Sum 0) passes straight
// through. A checksum-only adopt (LocalCheckpoints) loads the blob the
// dead owner persisted to the shared local directory. The file may be
// NEWER than the accepted checkpoint: the previous owner persists before
// replying, so a kill between persist and acceptance leaves probe
// m.Probe+k on disk. A later checkpoint is a superset of an earlier one
// (bucket state only grows), so installing it is monotone-safe; only an
// exact probe match can be verified against the adopt checksum. A
// missing, damaged or stale file is a hard error — unlike a shipped
// adopt, the coordinator has already truncated the log prefix the
// checkpoint covers, so there is no state left to rebuild it from.
func resolveAdoptSnap(dir string, m wireMsg) ([]byte, error) {
	if m.Snap != nil || m.Sum == 0 {
		return m.Snap, nil
	}
	probe, loaded, err := loadCheckpoint(dir, m.Bucket)
	if err != nil {
		return nil, fmt.Errorf("dist: local checkpoint for bucket %d: %w", m.Bucket, err)
	}
	switch {
	case probe < m.Probe:
		return nil, fmt.Errorf("dist: local checkpoint for bucket %d is stale (probe %d, coordinator accepted %d): %w", m.Bucket, probe, m.Probe, store.ErrCorruptSegment)
	case probe == m.Probe && wire.Checksum(loaded) != m.Sum:
		return nil, fmt.Errorf("dist: local checkpoint for bucket %d does not match the coordinator's checksum: %w", m.Bucket, store.ErrCorruptSegment)
	}
	return loaded, nil
}

// DialFunc is the worker's dial hook — net.Dial's signature, so a
// fault.Injector (or any proxy) can stand in for the real stack.
type DialFunc func(network, address string) (net.Conn, error)

// WorkerConfig carries a worker's runtime knobs. The zero value works: real
// dialing, background context, default retry policy, no adoption.
type WorkerConfig struct {
	// Ctx, when non-nil, cancels the worker: the connection is closed and
	// RunWorker returns promptly from any blocking point.
	Ctx context.Context
	// NewNode builds the node for a bucket this worker is told to adopt
	// during recovery: it must return a freshly initialized node holding
	// the bucket's EDB fragment (NewNode(prog, bucket, globalEDB)). A
	// worker with a nil factory fails if asked to adopt — acceptable for
	// deployments that rule out recovery, required otherwise.
	NewNode func(bucket int) *parallel.Node
	// Dial replaces net.Dial for the coordinator connection (fault
	// injection, proxies). Nil means net.Dial.
	Dial DialFunc
	// Dir, when non-empty, is a machine-local directory the worker
	// persists its bucket checkpoints into (one atomically written,
	// checksummed file per bucket). A restarted worker then installs its
	// own bucket's checkpoint from disk at cold start instead of waiting
	// for coordinator replay, and under the coordinator's
	// LocalCheckpoints mode adopt messages carry only a checksum — the
	// survivor loads the blob from this directory. In-process workers
	// (dist.Run) share one directory; the directory must not be reused
	// across different programs.
	Dir string
	// MaxRetries bounds connect attempts (default 5).
	MaxRetries int
	// RetryBase is the first backoff step (default 5ms); backoff doubles
	// per attempt, capped at 1s, with uniform jitter in [b/2, b).
	RetryBase time.Duration
}

func (c *WorkerConfig) fill() {
	if c.Ctx == nil {
		c.Ctx = context.Background()
	}
	if c.Dial == nil {
		c.Dial = net.Dial
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 5
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 5 * time.Millisecond
	}
}

// failure latches the first error any worker goroutine hits and signals the
// others. err is published before ch closes, so readers that wait on ch see
// it without further synchronization.
type failure struct {
	once sync.Once
	err  error
	ch   chan struct{}
}

func newFailure() *failure { return &failure{ch: make(chan struct{})} }

func (f *failure) fail(err error) {
	f.once.Do(func() {
		f.err = err
		close(f.ch)
	})
}

// creditGate is the sender side of the coordinator's flow control: the
// start message deposits the worker's initial credit (batches and/or
// bytes), every data send debits it before reaching the wire, and every
// kindCredit grant replenishes it. acquire blocks the eval loop — never
// the reader, so heartbeats and grants keep flowing — until the debit
// fits. An unconfigured gate (no limits) admits everything immediately.
type creditGate struct {
	mu       sync.Mutex
	notify   chan struct{}
	limBatch bool
	limBytes bool
	batches  int
	bytes    int64
	chunk    int64 // initial byte credit: the outgoing batch split size
	inflight int   // batches debited and not yet granted back
}

func newCreditGate() *creditGate { return &creditGate{notify: make(chan struct{}, 1)} }

func (g *creditGate) signal() {
	select {
	case g.notify <- struct{}{}:
	default:
	}
}

// configure installs the initial credit from the start message. Called by
// the reader before the eval loop starts (the started-channel close is the
// happens-before edge).
func (g *creditGate) configure(batches int, bytes int64) {
	g.mu.Lock()
	g.limBatch = batches > 0
	g.batches = batches
	g.limBytes = bytes > 0
	g.bytes = bytes
	g.chunk = bytes
	g.mu.Unlock()
}

// chunkLimit returns the byte size outgoing batches must be split to (the
// worker's whole byte credit), or 0 when byte credit is unlimited. Keeping
// every batch within the credit is what makes the coordinator's residency
// bound strict: a batch never needs to overdraw.
func (g *creditGate) chunkLimit() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.limBytes {
		return 0
	}
	return g.chunk
}

// acquire debits one batch of the given cost, blocking until the credit
// covers it. A batch larger than the whole byte budget is admitted once
// nothing else is in flight, so an oversized batch degrades to
// stop-and-wait instead of deadlocking. Returns false if the connection
// failed or the context was canceled while waiting (the caller's send then
// goes nowhere anyway). stall reports whether the call had to wait.
func (g *creditGate) acquire(cost int64, f *failure, ctx context.Context) (ok, stalled bool) {
	for {
		g.mu.Lock()
		fits := true
		if g.limBatch && g.batches < 1 {
			fits = false
		}
		if g.limBytes && g.bytes < cost && g.inflight > 0 {
			fits = false
		}
		if fits {
			if g.limBatch {
				g.batches--
			}
			if g.limBytes {
				g.bytes -= cost
			}
			g.inflight++
			g.mu.Unlock()
			return true, stalled
		}
		g.mu.Unlock()
		stalled = true
		select {
		case <-g.notify:
		case <-f.ch:
			return false, stalled
		case <-ctx.Done():
			return false, stalled
		}
	}
}

// release credits back one grant and wakes the eval loop if it is waiting.
func (g *creditGate) release(batches int, bytes int64) {
	g.mu.Lock()
	g.batches += batches
	g.bytes += bytes
	if g.inflight > 0 {
		g.inflight--
	}
	g.mu.Unlock()
	g.signal()
}

// dialRetry dials with exponential backoff and jitter, honoring ctx between
// attempts. The jitter is seeded per call — connect storms after a
// coordinator restart spread out instead of synchronizing.
func dialRetry(ctx context.Context, dial DialFunc, addr string, retries int, base time.Duration) (net.Conn, error) {
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	backoff := base
	var lastErr error
	for i := 0; i < retries; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		conn, err := dial("tcp", addr)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		if i == retries-1 {
			break
		}
		sleep := backoff/2 + time.Duration(rng.Int63n(int64(backoff/2)+1))
		select {
		case <-time.After(sleep):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if backoff *= 2; backoff > time.Second {
			backoff = time.Second
		}
	}
	return nil, fmt.Errorf("dist: dialing coordinator after %d attempts: %w", retries, lastErr)
}

// RunWorker executes one processor's node against a coordinator: connect
// (with retry), join, evaluate until the coordinator establishes global
// quiescence, then ship outputs and statistics. All traffic — control,
// heartbeats and data batches — flows over the single coordinator
// connection (star topology), which is what lets the coordinator log every
// batch for replay. If the coordinator reassigns a dead peer's bucket here,
// the worker builds a second node via cfg.NewNode, installs the bucket's
// checkpoint and hosts both; outputs and stats are then reported per
// bucket. Data sends honor the coordinator's credit grants; control
// traffic (status replies, checkpoint replies, the final output) bypasses
// the credit so liveness never queues behind flow control. Blocking;
// returns after the coordinator has collected this worker's output, or
// with an error if the connection breaks mid-run (the coordinator then
// recovers this worker's buckets elsewhere).
func RunWorker(coordAddr string, node *parallel.Node, cfg WorkerConfig) error {
	cfg.fill()
	ctx := cfg.Ctx
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return fmt.Errorf("dist: creating checkpoint dir: %w", err)
		}
	}

	conn, err := dialRetry(ctx, cfg.Dial, coordAddr, cfg.MaxRetries, cfg.RetryBase)
	if err != nil {
		return err
	}
	defer conn.Close()
	stopWatch := context.AfterFunc(ctx, func() { conn.Close() })
	defer stopWatch()

	var (
		f          = newFailure()
		wq         = newQueue() // outbound wire messages, serialized by the writer
		mbox       = newQueue() // inbound data/adopt/finish/checkpoint, drained by the eval loop
		gate       = newCreditGate()
		started    = make(chan struct{})
		writerDone = make(chan struct{})
		// The termination counters: sent is incremented before a batch is
		// enqueued for the wire; recv counts data batches fully merged;
		// idle flips only at the eval loop's rest points. The status
		// responder reads recv, then idle, then sent — sent last, so a
		// reply can never understate in-flight sends relative to the
		// idleness it reports (that ordering is what makes the
		// coordinator's quiescence check sound). A sender blocked on
		// credit is not at a rest point, so idle stays false and the
		// coordinator cannot mistake a credit stall for quiescence.
		sent, recv atomic.Int64
		idle       atomic.Bool
		// busyNs accumulates wall time spent evaluating (init, adopts and
		// drains) and travels on status replies, so the coordinator's
		// rebalancer can weigh workers by real work, not just routed volume.
		busyNs atomic.Int64
		// profileRun mirrors the start message's Profile flag. Written by
		// the reader before close(started), read by the eval loop after
		// <-started — the channel close is the happens-before edge.
		profileRun bool
	)

	// Writer: the only goroutine touching the encoder.
	go func() {
		defer close(writerDone)
		enc := gob.NewEncoder(conn)
		for {
			m, ok := wq.pop()
			if !ok {
				return
			}
			if err := enc.Encode(m.m); err != nil {
				f.fail(fmt.Errorf("dist: coordinator connection: %w", err))
				return
			}
		}
	}()
	wq.push(control(wireMsg{Kind: kindJoin, Index: node.Index()}))

	// Reader: decodes the coordinator's stream. Status probes are answered
	// here, straight from the counters, so heartbeats keep flowing while
	// the eval loop is deep in a long drain or blocked on credit; credit
	// grants are applied here for the same reason.
	go func() {
		dec := gob.NewDecoder(conn)
		startSeen := false
		for {
			var m wireMsg
			if err := dec.Decode(&m); err != nil {
				f.fail(fmt.Errorf("dist: coordinator connection: %w", err))
				return
			}
			switch m.Kind {
			case kindStart:
				if !startSeen {
					startSeen = true
					gate.configure(m.Credits, m.CreditBytes)
					profileRun = m.Profile
					close(started)
				}
			case kindStatus:
				r := recv.Load()
				i := idle.Load()
				s := sent.Load()
				wq.push(control(wireMsg{Kind: kindStatusReply, Probe: m.Probe, Sent: s, Recv: r, Idle: i, Busy: busyNs.Load()}))
			case kindCredit:
				gate.release(m.Credits, m.CreditBytes)
			case kindData, kindAdopt, kindRelease, kindFinish, kindCheckpointReq:
				mbox.push(control(m))
			default:
				f.fail(fmt.Errorf("dist: unexpected message kind %d", m.Kind))
				return
			}
		}
	}()

	fin := func(err error) error {
		wq.close()
		<-writerDone
		return err
	}

	select {
	case <-started:
	case <-f.ch:
		return fin(f.err)
	case <-ctx.Done():
		return fin(ctx.Err())
	}

	// Eval loop (this goroutine). nodes maps hosted buckets to their state
	// machines: the worker's own bucket plus any adopted during recovery.
	// spanSeq numbers this worker's outgoing batches (span ids are
	// origin-qualified, so per-worker counters never collide); curParent is
	// the span of the batch most recently merged, the causal parent of
	// every derivation the following drain ships. Both live on the eval
	// goroutine only — Init, Accept and Drain all run here.
	nodes := map[int]*parallel.Node{node.Index(): node}
	var spanSeq uint64
	var curParent uint64
	mkEmit := func(n *parallel.Node) parallel.EmitFunc {
		sendOne := func(n *parallel.Node, dest int, pred string, tuples int, raw []byte) {
			cost := dataCost(raw)
			ok, stalled := gate.acquire(cost, f, ctx)
			if stalled {
				if sink := n.Sink(); sink != nil {
					sink.CreditStall(n.Proc(), cost)
				}
			}
			if !ok {
				return // connection failed or canceled: the send would be lost anyway
			}
			spanSeq++
			span := wire.SpanID(n.Index(), spanSeq)
			if sink := n.Sink(); sink != nil {
				obs.SpanSend(sink, n.Proc(), n.PeerProc(dest), pred, tuples, span, curParent)
			}
			sent.Add(1) // before the batch can reach the wire
			wq.push(qmsg{m: wireMsg{Kind: kindData, Bucket: dest, From: n.Index(), Pred: pred, Raw: raw, Span: span, Parent: curParent}})
		}
		return func(dest int, pred string, tuples []relation.Tuple) {
			n.RecordSent(len(tuples))
			if sink := n.Sink(); sink != nil {
				sink.MessageSent(n.Proc(), n.PeerProc(dest), pred, len(tuples))
			}
			if len(tuples) == 0 {
				sendOne(n, dest, pred, 0, wire.AppendBatch(nil, nil))
				return
			}
			// Split the logical batch so no wire batch overdraws the byte
			// credit: the chunk's tuple count is sized so even the
			// worst-case encoding fits the whole credit, so the gate never
			// has to admit an oversized batch and the coordinator's
			// residency bound stays strict. At least one tuple goes per
			// chunk regardless, so progress never stalls on a degenerate
			// credit.
			maxCount := len(tuples)
			if limit := gate.chunkLimit(); limit > 0 {
				per := int64(len(tuples[0]) * wire.MaxValueBytes)
				if per < 1 {
					per = 1
				}
				mc := (limit - 96 - wire.MaxBatchHeaderBytes) / per
				if mc < 1 {
					mc = 1
				}
				if mc < int64(maxCount) {
					maxCount = int(mc)
				}
			}
			for start := 0; start < len(tuples); start += maxCount {
				end := start + maxCount
				if end > len(tuples) {
					end = len(tuples)
				}
				sendOne(n, dest, pred, end-start, wire.AppendBatch(nil, tuples[start:end]))
			}
		}
	}

	sink := node.Sink()
	if profileRun {
		node.EnableProfile()
	}
	if sink != nil {
		sink.WorkerBusy(node.Proc())
	}
	begin := time.Now()
	node.Init(mkEmit(node))
	if cfg.Dir != "" {
		// Cold-start recovery: a checkpoint this worker persisted in an
		// earlier life restores its bucket's derived set from local disk,
		// so the coordinator need not replay the covered log prefix.
		// Opportunistic — a missing or damaged file just means starting
		// from the EDB fragment. Installing a checkpoint is monotone-safe:
		// it is a subset of the bucket's least model, and draining from
		// any superset of the EDB converges to the same fixpoint.
		if _, snap, err := loadCheckpoint(cfg.Dir, node.Index()); err == nil {
			installed := false
			_ = wire.DecodeSnapshot(snap, func(pred string, rows []relation.Tuple) error {
				node.Accept(-1, pred, rows)
				installed = true
				return nil
			})
			if installed {
				node.Drain(mkEmit(node))
			}
		}
	}
	elapsed := time.Since(begin)
	node.RecordBusy(elapsed)
	busyNs.Add(int64(elapsed))
	if sink != nil {
		sink.WorkerIdle(node.Proc())
	}
	idle.Store(true)

	for {
		msgs := mbox.takeAll()
		if len(msgs) == 0 {
			select {
			case <-mbox.notify:
				continue
			case <-f.ch:
				return fin(f.err)
			case <-ctx.Done():
				return fin(ctx.Err())
			}
		}

		idle.Store(false)
		if sink != nil {
			sink.WorkerBusy(node.Proc())
		}
		begin = time.Now()
		finish := false
		touched := map[int]bool{}
		var ckptReqs []wireMsg
		for _, qm := range msgs {
			m := qm.m
			switch m.Kind {
			case kindData:
				// recv counts the batch even when its bucket is hosted
				// elsewhere (a stale message for a recovered bucket can
				// never reach here — the coordinator routes by current
				// owner — but defensiveness costs nothing), keeping the
				// coordinator's delivered/recv ledger balanced.
				if n := nodes[m.Bucket]; n != nil {
					tuples, err := wire.DecodeBatch(m.Raw)
					if err != nil {
						return fin(fmt.Errorf("dist: data batch for bucket %d: %w", m.Bucket, err))
					}
					if m.Span != 0 {
						if sink := n.Sink(); sink != nil {
							obs.SpanRecv(sink, n.Proc(), n.PeerProc(m.From), m.Pred, len(tuples), m.Span, m.Parent)
						}
						// Derivations from the coming drain are caused by
						// this batch (the last merged wins when a drain
						// covers several — a linearization, not a loss).
						curParent = m.Span
					}
					n.Accept(m.From, m.Pred, tuples)
					touched[m.Bucket] = true
				}
				recv.Add(1)
			case kindAdopt:
				if cfg.NewNode == nil {
					return fin(fmt.Errorf("dist: asked to adopt bucket %d but no node factory configured", m.Bucket))
				}
				n := cfg.NewNode(m.Bucket)
				if profileRun {
					n.EnableProfile()
				}
				nodes[m.Bucket] = n
				// Init replays the bucket's initialization step: the EDB
				// fragment is rebuilt locally and its initial derivations
				// re-sent (receivers drop what they already hold). The
				// adopt message then carries the bucket's last accepted
				// checkpoint; installing it restores every derived tuple
				// the truncated log prefix would have delivered, and the
				// suffix the coordinator replays next completes the
				// history.
				nb := time.Now()
				n.Init(mkEmit(n))
				// Under LocalCheckpoints the adopt message carries only the
				// checkpoint's checksum; the blob itself is on this
				// machine's disk, persisted by the bucket's previous owner.
				snap, rerr := resolveAdoptSnap(cfg.Dir, m)
				if rerr != nil {
					return fin(rerr)
				}
				// The snapshot decodes in ascending predicate order — the
				// deterministic install sequence is baked into the encoding.
				err := wire.DecodeSnapshot(snap, func(pred string, rows []relation.Tuple) error {
					n.Accept(-1, pred, rows)
					return nil
				})
				if err != nil {
					return fin(fmt.Errorf("dist: adopt snapshot for bucket %d: %w", m.Bucket, err))
				}
				if wire.SnapshotTuples(snap) > 0 {
					touched[m.Bucket] = true
				}
				ne := time.Since(nb)
				n.RecordBusy(ne)
				busyNs.Add(int64(ne))
			case kindRelease:
				// The bucket migrated to another worker: drop its node. Any
				// straggler data batches routed before the coordinator
				// flipped the owner land in the nil-node branch above —
				// counted for the ledger, contents discarded (the new owner
				// receives the same batches via log replay).
				delete(nodes, m.Bucket)
			case kindFinish:
				finish = true
			case kindCheckpointReq:
				ckptReqs = append(ckptReqs, m)
			}
		}
		buckets := make([]int, 0, len(touched))
		for b := range touched {
			buckets = append(buckets, b)
		}
		sort.Ints(buckets)
		for _, b := range buckets {
			n := nodes[b]
			if n == nil {
				continue // released later in the same mailbox batch
			}
			nb := time.Now()
			n.Drain(mkEmit(n))
			ne := time.Since(nb)
			n.RecordBusy(ne)
			busyNs.Add(int64(ne))
		}
		// Checkpoint replies are taken at this rest point — after the
		// drain, so the snapshot reflects every batch processed so far —
		// and bypass the data credit (they shrink coordinator memory, so
		// throttling them would invert the backpressure).
		for _, req := range ckptReqs {
			n := nodes[req.Bucket]
			if n == nil {
				continue // stale request for a bucket this worker never hosted
			}
			snap := wire.AppendSnapshot(nil, n.Snapshot())
			if cfg.Dir != "" {
				// Persist before replying: the coordinator may reference
				// this blob by checksum alone (LocalCheckpoints), so it
				// must be on disk before the reply can trigger truncation.
				// A failed write skips the reply — the coordinator treats
				// it as dropped and simply replays a longer suffix.
				if err := persistCheckpoint(cfg.Dir, req.Bucket, req.Probe, snap); err != nil {
					continue
				}
			}
			wq.push(control(wireMsg{
				Kind: kindCheckpointReply, Bucket: req.Bucket, Probe: req.Probe,
				Snap: snap, Sum: wire.Checksum(snap),
			}))
		}
		if sink != nil {
			sink.WorkerIdle(node.Proc())
		}

		if finish {
			out := wireMsg{Kind: kindOutput, Index: node.Index()}
			pooled := map[string][]relation.Tuple{}
			hosted := make([]int, 0, len(nodes))
			for b := range nodes {
				hosted = append(hosted, b)
			}
			sort.Ints(hosted)
			for _, b := range hosted {
				n := nodes[b]
				for pred, rel := range n.Outputs() {
					if rel.Len() == 0 {
						continue
					}
					ts := pooled[pred]
					for i := 0; i < rel.Len(); i++ {
						ts = append(ts, rel.Row(i))
					}
					pooled[pred] = ts
				}
				out.Stats = append(out.Stats, n.Stats())
				out.Profiles = append(out.Profiles, n.Profile()...)
			}
			out.Snap = wire.AppendSnapshot(nil, pooled)
			wq.push(control(out))
			return fin(nil)
		}
		idle.Store(true)
	}
}
