package dist

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"parlog/internal/dist/fault"
	"parlog/internal/obs"
	"parlog/internal/parallel"
	"parlog/internal/relation"
)

// injectorDial returns a WorkerDial hook that puts sched under the given
// worker's connection and leaves the others on the real stack.
func injectorDial(target int, sched fault.Schedule) (func(wi int) DialFunc, *fault.Injector) {
	in := fault.New(sched)
	return func(wi int) DialFunc {
		if wi == target {
			return in.Dial
		}
		return nil
	}, in
}

// TestBucketRecoveryKillOneOfThree is the headline fault-tolerance
// scenario: three workers, one killed mid-run on a seeded schedule. The
// coordinator must declare the death, reassign the dead worker's bucket to
// a survivor, replay the bucket's message log, and still produce the exact
// least model.
func TestBucketRecoveryKillOneOfThree(t *testing.T) {
	src := ancestorRules + randomParFacts(40, 120, 5)
	p, edb, seq := buildAncestorQ(t, src, 3, []string{"Z"}, []string{"X"})

	// Kill worker 1's (only) connection after 25 successful writes: safely
	// past the join handshake, but well before the run's status replies
	// and data batches dry up (each worker writes ~65 times on this
	// workload).
	dial, _ := injectorDial(1, fault.Schedule{Seed: 5, KillConn: 1, KillAfterWrites: 25})
	rec := obs.NewRecorder()
	res, err := Run(p, edb, Config{WorkerDial: dial, Sink: rec})
	if err != nil {
		t.Fatal(err)
	}

	if !seq["anc"].Equal(res.Output["anc"]) {
		t.Fatalf("recovered run differs from sequential least model:\nseq %v\ndist %v",
			seq["anc"], res.Output["anc"])
	}
	if len(res.Deaths) != 1 || res.Deaths[0] != 1 {
		t.Fatalf("Deaths = %v, want [1]", res.Deaths)
	}
	if len(res.Recoveries) != 1 {
		t.Fatalf("Recoveries = %v, want exactly one", res.Recoveries)
	}
	r := res.Recoveries[0]
	if r.Bucket != 1 || r.FromWorker != 1 || r.ToWorker == 1 {
		t.Errorf("recovery moved bucket %d from %d to %d, want bucket 1 off worker 1", r.Bucket, r.FromWorker, r.ToWorker)
	}
	// Every bucket still reports stats: two survivors plus the adopted one.
	if len(res.Stats) != 3 {
		t.Errorf("stats for %d buckets, want 3", len(res.Stats))
	}
	// The event stream narrates the recovery.
	kinds := map[string]int{}
	for _, e := range rec.Events() {
		kinds[e.Kind]++
	}
	for _, k := range []string{obs.KindWorkerDead, obs.KindBucketReassigned, obs.KindReplayStart, obs.KindReplayEnd} {
		if kinds[k] == 0 {
			t.Errorf("no %s event recorded", k)
		}
	}
}

// TestBucketRecoveryCascade kills two of three workers at different points;
// the lone survivor ends up hosting all three buckets.
func TestBucketRecoveryCascade(t *testing.T) {
	src := ancestorRules + randomParFacts(40, 120, 6)
	p, edb, seq := buildAncestorQ(t, src, 3, []string{"Z"}, []string{"X"})

	in1 := fault.New(fault.Schedule{Seed: 6, KillConn: 1, KillAfterWrites: 20})
	in2 := fault.New(fault.Schedule{Seed: 7, KillConn: 1, KillAfterWrites: 40})
	dial := func(wi int) DialFunc {
		switch wi {
		case 1:
			return in1.Dial
		case 2:
			return in2.Dial
		}
		return nil
	}
	res, err := Run(p, edb, Config{WorkerDial: dial})
	if err != nil {
		t.Fatal(err)
	}
	if !seq["anc"].Equal(res.Output["anc"]) {
		t.Fatal("cascading recovery differs from sequential least model")
	}
	if len(res.Deaths) != 2 {
		t.Fatalf("Deaths = %v, want two", res.Deaths)
	}
	for _, r := range res.Recoveries {
		if r.ToWorker != 0 {
			t.Errorf("bucket %d recovered onto worker %d, want the survivor 0", r.Bucket, r.ToWorker)
		}
	}
	if len(res.Stats) != 3 {
		t.Errorf("stats for %d buckets, want 3", len(res.Stats))
	}
}

// TestWorkerConnectRetry: the first dial attempts fail on schedule; the
// backoff retry must still get every worker connected and the run must
// complete untouched.
func TestWorkerConnectRetry(t *testing.T) {
	src := ancestorRules + randomParFacts(12, 24, 7)
	p, edb, seq := buildAncestorQ(t, src, 3, []string{"Z"}, []string{"X"})

	ins := make([]*fault.Injector, 3)
	for i := range ins {
		ins[i] = fault.New(fault.Schedule{FailDials: 2})
	}
	dial := func(wi int) DialFunc { return ins[wi].Dial }
	res, err := Run(p, edb, Config{
		WorkerDial: dial,
		MaxRetries: 5,
		RetryBase:  time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !seq["anc"].Equal(res.Output["anc"]) {
		t.Fatal("result differs after connect retries")
	}
	if len(res.Deaths) != 0 {
		t.Errorf("Deaths = %v, want none", res.Deaths)
	}
	for i, in := range ins {
		if in.Dials() != 3 {
			t.Errorf("worker %d dialed %d times, want 3 (two scheduled failures + one success)", i, in.Dials())
		}
	}
}

// TestDistributedCancelPromptReturn cancels the context mid-run and checks
// that Run returns promptly — well inside the worker deadline — with
// context.Canceled, and that the runtime's goroutines wind down.
func TestDistributedCancelPromptReturn(t *testing.T) {
	src := ancestorRules + randomParFacts(40, 120, 8)
	p, edb, _ := buildAncestorQ(t, src, 3, []string{"Z"}, []string{"X"})

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()

	// Slow every write down so the run is guaranteed to still be in
	// flight when the cancel lands.
	in := fault.New(fault.Schedule{Delay: 200 * time.Microsecond})
	deadline := 5 * time.Second
	start := time.Now()
	_, err := Run(p, edb, Config{
		Ctx:            ctx,
		WorkerDeadline: deadline,
		WorkerDial:     func(wi int) DialFunc { return in.Dial },
	})
	elapsed := time.Since(start)

	if err == nil {
		t.Fatal("cancelled run reported success")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed >= deadline {
		t.Errorf("cancelled run took %v, want well under the %v worker deadline", elapsed, deadline)
	}
	// The coordinator and worker goroutines must unwind; poll briefly
	// since TCP teardown is asynchronous.
	ok := false
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= before+2 {
			ok = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !ok {
		t.Errorf("goroutines leaked after cancel: before=%d now=%d", before, runtime.NumGoroutine())
	}
}

// TestRecoveryMetrics: the Counting sink aggregates the fault events.
func TestRecoveryMetrics(t *testing.T) {
	src := ancestorRules + randomParFacts(40, 120, 9)
	p, edb, _ := buildAncestorQ(t, src, 3, []string{"Z"}, []string{"X"})

	dial, _ := injectorDial(1, fault.Schedule{Seed: 9, KillConn: 1, KillAfterWrites: 25})
	cs := obs.NewCounting()
	res, err := Run(p, edb, Config{WorkerDial: dial, Sink: cs})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Deaths) != 1 {
		t.Fatalf("Deaths = %v, want one", res.Deaths)
	}
	m := cs.Snapshot()
	if m.WorkerDeaths != 1 {
		t.Errorf("WorkerDeaths = %d, want 1", m.WorkerDeaths)
	}
	if m.BucketsReassigned != 1 {
		t.Errorf("BucketsReassigned = %d, want 1", m.BucketsReassigned)
	}
	if int(m.ReplayedMessages) != res.Recoveries[0].Replayed {
		t.Errorf("ReplayedMessages = %d, want %d", m.ReplayedMessages, res.Recoveries[0].Replayed)
	}
}

// TestRunWorkerCancel: a worker whose context is cancelled returns promptly
// even while blocked waiting for work.
func TestRunWorkerCancel(t *testing.T) {
	src := ancestorRules + randomParFacts(10, 20, 10)
	p, _, _ := buildAncestorQ(t, src, 2, []string{"Z"}, []string{"X"})
	global, err := parallel.PrepareEDB(p, relation.Store{})
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(Config{Workers: 2, Timeout: 10 * time.Second}, p.IDB)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.ln.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		node := parallel.NewNode(p, 0, global)
		done <- RunWorker(coord.Addr(), node, WorkerConfig{Ctx: ctx})
	}()
	// Worker 1 never joins, so the run can't start; the worker sits
	// blocked on the start message until the cancel.
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) && err == nil {
			t.Errorf("want an error after cancel, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("worker did not return after cancel")
	}
}
