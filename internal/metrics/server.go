package metrics

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// ServerOptions configures the optional handlers of a telemetry server.
type ServerOptions struct {
	// Pprof mounts net/http/pprof under /debug/pprof/.
	Pprof bool
	// Debug, when non-nil, is called per /debug/parlog request; its return
	// value is embedded in the JSON document under "debug" — the hook the
	// engine uses to attach its counting-sink snapshot.
	Debug func() any
	// Extra mounts additional handlers on the server's mux, keyed by
	// pattern — how parlogd adds its query/update endpoints next to
	// /metrics. Patterns colliding with the built-ins panic, like any
	// duplicate http.ServeMux registration.
	Extra map[string]http.Handler
	// ReadTimeout bounds reading an entire request including the body
	// (0: header timeout only) — the slow-loris guard for servers that
	// accept uploads, like parlogd's /apply.
	ReadTimeout time.Duration
}

// Server is the live telemetry endpoint: /metrics serves the Prometheus
// text exposition, /debug/parlog a JSON snapshot, and (opt-in)
// /debug/pprof/ the standard profiler. It listens on its own mux so
// nothing leaks into http.DefaultServeMux.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// NewServer starts serving reg on addr (host:port; port 0 picks a free
// one). The listener is bound synchronously — when NewServer returns nil
// error, Addr() is scrapeable.
func NewServer(addr string, reg *Registry, opts ServerOptions) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/parlog", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		doc := struct {
			Metrics []MetricSnapshot `json:"metrics"`
			Debug   any              `json:"debug,omitempty"`
		}{Metrics: reg.Snapshot()}
		if opts.Debug != nil {
			doc.Debug = opts.Debug()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(doc)
	})
	for pattern, h := range opts.Extra {
		mux.Handle(pattern, h)
	}
	if opts.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s := &Server{ln: ln, srv: &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       opts.ReadTimeout,
	}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address (with the resolved port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the http:// base URL of the server.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close shuts the server down gracefully, letting in-flight scrapes
// finish until ctx expires, then closing the listener. A nil ctx waits
// for in-flight scrapes without a deadline.
func (s *Server) Close(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	err := s.srv.Shutdown(ctx)
	if err != nil {
		_ = s.srv.Close()
	}
	return err
}
