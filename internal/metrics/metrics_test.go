package metrics

import (
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("test_ops_total", "ops")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same name+labels returns the same instrument.
	if r.Counter("test_ops_total", "ops") != c {
		t.Fatal("re-registration did not dedup")
	}
	g := r.Gauge("test_temp", "temp", L("room", "a"))
	g.Set(20)
	g.Add(2.5)
	if got := g.Value(); got != 22.5 {
		t.Fatalf("gauge = %v, want 22.5", got)
	}
}

func TestRegisterPanics(t *testing.T) {
	r := New()
	r.Counter("ok_name", "")
	for _, f := range []func(){
		func() { r.Counter("0bad", "") },
		func() { r.Gauge("ok_name", "") },                     // type mismatch
		func() { r.Counter("x_total", "", L("bad-key", "v")) }, // invalid label
		func() { r.Histogram("h", "", []float64{2, 1}) },       // unsorted bounds
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := New()
	h := r.Histogram("test_latency_seconds", "lat", ExpBuckets(0.001, 10, 4))
	for i := 0; i < 100; i++ {
		h.Observe(0.005) // all in the (0.001, 0.01] bucket
	}
	s := h.Snap()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	p50 := s.Quantile(0.50)
	if p50 <= 0.001 || p50 > 0.01 {
		t.Fatalf("p50 = %v, want within (0.001, 0.01]", p50)
	}
	if got := s.Quantile(0.99); got <= 0.001 || got > 0.01 {
		t.Fatalf("p99 = %v, want within (0.001, 0.01]", got)
	}
	// Overflow clamps to the largest finite bound.
	h.Observe(1e9)
	if got := h.Snap().Quantile(1.0); got != 1.0 {
		t.Fatalf("overflow quantile = %v, want largest bound 1.0", got)
	}
	// Empty histogram.
	e := r.Histogram("test_empty", "", []float64{1})
	if !math.IsNaN(e.Snap().Quantile(0.5)) {
		t.Fatal("empty histogram quantile should be NaN")
	}
}

func TestConcurrentObserveSnapshotConsistency(t *testing.T) {
	r := New()
	h := r.Histogram("test_sizes", "", ExpBuckets(1, 2, 10))
	c := r.Counter("test_total", "")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			v := float64(seed + 1)
			for {
				select {
				case <-stop:
					return
				default:
				}
				h.Observe(v)
				c.Inc()
			}
		}(w)
	}
	// Scrape concurrently: count must equal the sum of buckets in every
	// snapshot, and the counter must be monotone across snapshots.
	last := int64(0)
	for i := 0; i < 200; i++ {
		s := h.Snap()
		var sum int64
		for _, b := range s.Counts {
			sum += b
		}
		if sum != s.Count {
			t.Fatalf("snapshot %d: count %d != bucket sum %d", i, s.Count, sum)
		}
		if v := c.Value(); v < last {
			t.Fatalf("counter went backwards: %d < %d", v, last)
		} else {
			last = v
		}
	}
	close(stop)
	wg.Wait()
}

func TestPrometheusExpositionValidates(t *testing.T) {
	r := New()
	r.Counter("parlog_runs_total", "completed runs").Add(3)
	r.Gauge("parlog_workers", "live workers").Set(4)
	h := r.Histogram("parlog_batch_tuples", "tuples per batch", ExpBuckets(1, 4, 6))
	for _, v := range []float64{1, 3, 17, 100000} {
		h.Observe(v)
	}
	for i := 0; i < 2; i++ {
		r.Counter("parlog_channel_tuples_total", "per-channel tuples",
			L("from", "0"), L("to", "1")).Add(int64(i + 1))
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"# TYPE parlog_runs_total counter",
		"parlog_runs_total 3",
		"# TYPE parlog_batch_tuples histogram",
		`parlog_batch_tuples_bucket{le="+Inf"} 4`,
		"parlog_batch_tuples_count 4",
		`parlog_channel_tuples_total{from="0",to="1"} 3`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}
	if err := ValidateExposition(strings.NewReader(text)); err != nil {
		t.Fatalf("own exposition failed validation: %v\n%s", err, text)
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"bad name":         "0bad 1\n",
		"bad value":        "ok_metric notanumber\n",
		"duplicate series": "m 1\nm 1\n",
		"missing inf": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 2` + "\nh_sum 2\nh_count 2\n",
		"count mismatch": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 2` + "\n" + `h_bucket{le="+Inf"} 3` + "\nh_sum 2\nh_count 2\n",
		"non-cumulative": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 5` + "\n" + `h_bucket{le="2"} 3` + "\n" + `h_bucket{le="+Inf"} 5` + "\nh_sum 9\nh_count 5\n",
		"type after sample": "m 1\n# TYPE m counter\n",
		"unknown type":      "# TYPE m exotic\n",
	}
	for name, doc := range cases {
		if err := ValidateExposition(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: validator accepted bad document:\n%s", name, doc)
		}
	}
	good := "# HELP m help text\n# TYPE m counter\nm{a=\"x\\\"y\"} 1 1712345678\n"
	if err := ValidateExposition(strings.NewReader(good)); err != nil {
		t.Errorf("validator rejected good document: %v", err)
	}
}

func TestOnCollectHook(t *testing.T) {
	r := New()
	g := r.Gauge("test_derived", "")
	calls := 0
	r.OnCollect(func() { calls++; g.Set(float64(calls)) })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if calls != 1 || g.Value() != 1 {
		t.Fatalf("hook not run before scrape: calls=%d value=%v", calls, g.Value())
	}
	r.Snapshot()
	if calls != 2 {
		t.Fatalf("hook not run before JSON snapshot: calls=%d", calls)
	}
}

func TestServerEndpoints(t *testing.T) {
	r := New()
	r.Counter("test_hits_total", "hits").Inc()
	h := r.Histogram("test_lat", "", []float64{1, 10})
	h.Observe(2)
	srv, err := NewServer("127.0.0.1:0", r, ServerOptions{
		Pprof: true,
		Debug: func() any { return map[string]int{"extra": 7} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close(context.Background())

	get := func(path string) (string, string) {
		resp, err := http.Get(srv.URL() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	text, ctype := get("/metrics")
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("/metrics content type = %q", ctype)
	}
	if err := ValidateExposition(strings.NewReader(text)); err != nil {
		t.Fatalf("/metrics invalid: %v\n%s", err, text)
	}
	if !strings.Contains(text, "test_hits_total 1") {
		t.Errorf("/metrics missing counter:\n%s", text)
	}

	body, ctype := get("/debug/parlog")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Errorf("/debug/parlog content type = %q", ctype)
	}
	var doc struct {
		Metrics []MetricSnapshot `json:"metrics"`
		Debug   map[string]int   `json:"debug"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/debug/parlog not JSON: %v\n%s", err, body)
	}
	if len(doc.Metrics) == 0 || doc.Debug["extra"] != 7 {
		t.Errorf("debug document incomplete: %s", body)
	}

	if prof, _ := get("/debug/pprof/cmdline"); prof == "" {
		t.Error("pprof cmdline endpoint empty")
	}

	if err := srv.Close(context.Background()); err != nil {
		t.Fatalf("graceful close: %v", err)
	}
	if _, err := http.Get(srv.URL() + "/metrics"); err == nil {
		t.Error("server still serving after Close")
	}
}

func TestBucketHelpers(t *testing.T) {
	exp := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if exp[i] != want[i] {
			t.Fatalf("ExpBuckets = %v", exp)
		}
	}
	lin := LinearBuckets(0, 5, 3)
	want = []float64{0, 5, 10}
	for i := range want {
		if lin[i] != want[i] {
			t.Fatalf("LinearBuckets = %v", lin)
		}
	}
}
