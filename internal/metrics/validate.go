package metrics

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ValidateExposition checks a Prometheus text-format document for the
// invariants a scraper relies on: well-formed metric and label names, TYPE
// headers declared once and before the family's samples, parseable sample
// values, no duplicate series, and — for histograms — cumulative
// non-decreasing buckets, a mandatory le="+Inf" bucket, and _count equal
// to the +Inf bucket. It is the checked-in stand-in for `promtool check
// metrics` in environments without promtool.
func ValidateExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)

	types := map[string]string{}    // family → declared type
	sampled := map[string]bool{}    // family → samples seen
	seen := map[string]bool{}       // full series identity → present
	hists := map[string]*histAcc{}  // family + base labels → histogram accumulator
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := validateComment(line, types, sampled); err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		series := name + "|" + canonLabels(labels)
		if seen[series] {
			return fmt.Errorf("line %d: duplicate series %s", lineNo, strings.TrimSpace(line))
		}
		seen[series] = true

		fam, suffix := familyOf(name, types)
		sampled[fam] = true
		if t, ok := types[fam]; ok && t == "histogram" {
			key := fam + "|" + canonLabels(dropLabel(labels, "le"))
			h := hists[key]
			if h == nil {
				h = &histAcc{fam: fam}
				hists[key] = h
			}
			switch suffix {
			case "_bucket":
				le, ok := labels["le"]
				if !ok {
					return fmt.Errorf("line %d: histogram bucket without le label", lineNo)
				}
				h.buckets = append(h.buckets, bucketSample{le: le, value: value, line: lineNo})
			case "_sum":
				h.hasSum = true
			case "_count":
				h.count = value
				h.hasCount = true
			default:
				return fmt.Errorf("line %d: histogram family %s has plain sample %s", lineNo, fam, name)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	keys := make([]string, 0, len(hists))
	for k := range hists {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if err := hists[k].validate(); err != nil {
			return err
		}
	}
	return nil
}

type bucketSample struct {
	le    string
	value float64
	line  int
}

type histAcc struct {
	fam      string
	buckets  []bucketSample
	count    float64
	hasCount bool
	hasSum   bool
}

func (h *histAcc) validate() error {
	if len(h.buckets) == 0 {
		return fmt.Errorf("histogram %s has no _bucket samples", h.fam)
	}
	type edge struct {
		le    float64
		value float64
	}
	edges := make([]edge, 0, len(h.buckets))
	var inf *bucketSample
	for i := range h.buckets {
		b := &h.buckets[i]
		if b.le == "+Inf" {
			inf = b
			continue
		}
		le, err := strconv.ParseFloat(b.le, 64)
		if err != nil {
			return fmt.Errorf("line %d: histogram %s has unparseable le=%q", b.line, h.fam, b.le)
		}
		edges = append(edges, edge{le: le, value: b.value})
	}
	if inf == nil {
		return fmt.Errorf("histogram %s is missing its le=\"+Inf\" bucket", h.fam)
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].le < edges[j].le })
	prev := 0.0
	for _, e := range edges {
		if e.value < prev {
			return fmt.Errorf("histogram %s buckets are not cumulative: le=%v value %v < %v", h.fam, e.le, e.value, prev)
		}
		prev = e.value
	}
	if inf.value < prev {
		return fmt.Errorf("histogram %s +Inf bucket %v below its largest finite bucket %v", h.fam, inf.value, prev)
	}
	if !h.hasCount {
		return fmt.Errorf("histogram %s is missing _count", h.fam)
	}
	if !h.hasSum {
		return fmt.Errorf("histogram %s is missing _sum", h.fam)
	}
	if h.count != inf.value {
		return fmt.Errorf("histogram %s _count %v != +Inf bucket %v", h.fam, h.count, inf.value)
	}
	return nil
}

// familyOf strips a histogram sample suffix when the base family is
// declared as a histogram, returning (family, suffix).
func familyOf(name string, types map[string]string) (string, string) {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if types[base] == "histogram" {
				return base, suf
			}
		}
	}
	return name, ""
}

func validateComment(line string, types map[string]string, sampled map[string]bool) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		name, typ := fields[2], strings.TrimSpace(fields[3])
		if !validName(name) {
			return fmt.Errorf("invalid metric name %q in TYPE line", name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q for %s", typ, name)
		}
		if _, dup := types[name]; dup {
			return fmt.Errorf("duplicate TYPE line for %s", name)
		}
		if sampled[name] {
			return fmt.Errorf("TYPE line for %s after its samples", name)
		}
		types[name] = typ
	case "HELP":
		if len(fields) < 3 {
			return fmt.Errorf("malformed HELP line %q", line)
		}
		if !validName(fields[2]) {
			return fmt.Errorf("invalid metric name %q in HELP line", fields[2])
		}
	}
	return nil
}

// parseSample splits `name{labels} value [timestamp]` into its parts.
func parseSample(line string) (name string, labels map[string]string, value float64, err error) {
	rest := line
	brace := strings.IndexByte(rest, '{')
	if brace >= 0 {
		name = rest[:brace]
		end := strings.LastIndexByte(rest, '}')
		if end < brace {
			return "", nil, 0, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err = parseLabels(rest[brace+1 : end])
		if err != nil {
			return "", nil, 0, err
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		sp := strings.IndexAny(rest, " \t")
		if sp < 0 {
			return "", nil, 0, fmt.Errorf("sample without value: %q", line)
		}
		name = rest[:sp]
		rest = strings.TrimSpace(rest[sp:])
	}
	if !validName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	parts := strings.Fields(rest)
	if len(parts) < 1 || len(parts) > 2 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	}
	value, err = parseValue(parts[0])
	if err != nil {
		return "", nil, 0, fmt.Errorf("unparseable value %q: %w", parts[0], err)
	}
	if len(parts) == 2 {
		if _, terr := strconv.ParseInt(parts[1], 10, 64); terr != nil {
			return "", nil, 0, fmt.Errorf("unparseable timestamp %q", parts[1])
		}
	}
	return name, labels, value, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return strconv.ParseFloat("+Inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-Inf", 64)
	case "NaN":
		return strconv.ParseFloat("NaN", 64)
	}
	return strconv.ParseFloat(s, 64)
}

// parseLabels parses `k="v",k2="v2"` with exposition-format escapes.
func parseLabels(s string) (map[string]string, error) {
	out := map[string]string{}
	i := 0
	for i < len(s) {
		// Key.
		j := i
		for j < len(s) && s[j] != '=' {
			j++
		}
		if j == len(s) {
			return nil, fmt.Errorf("label without value in %q", s)
		}
		key := strings.TrimSpace(s[i:j])
		if !validName(key) {
			return nil, fmt.Errorf("invalid label name %q", key)
		}
		// Opening quote.
		j++
		if j >= len(s) || s[j] != '"' {
			return nil, fmt.Errorf("label value of %q not quoted", key)
		}
		j++
		var b strings.Builder
		closed := false
		for j < len(s) {
			c := s[j]
			if c == '\\' && j+1 < len(s) {
				switch s[j+1] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					return nil, fmt.Errorf("bad escape \\%c in label %q", s[j+1], key)
				}
				j += 2
				continue
			}
			if c == '"' {
				closed = true
				j++
				break
			}
			b.WriteByte(c)
			j++
		}
		if !closed {
			return nil, fmt.Errorf("unterminated label value for %q", key)
		}
		if _, dup := out[key]; dup {
			return nil, fmt.Errorf("duplicate label %q", key)
		}
		out[key] = b.String()
		// Separator.
		for j < len(s) && (s[j] == ' ' || s[j] == '\t') {
			j++
		}
		if j < len(s) {
			if s[j] != ',' {
				return nil, fmt.Errorf("expected ',' after label %q", key)
			}
			j++
		}
		i = j
	}
	return out, nil
}

func canonLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := ""
	for _, k := range keys {
		s += k + "=" + labels[k] + ";"
	}
	return s
}

func dropLabel(labels map[string]string, key string) map[string]string {
	if _, ok := labels[key]; !ok {
		return labels
	}
	out := make(map[string]string, len(labels))
	for k, v := range labels {
		if k != key {
			out[k] = v
		}
	}
	return out
}
