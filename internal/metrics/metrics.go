// Package metrics is a dependency-free, lock-cheap metrics registry: the
// in-process substrate of the live telemetry endpoint. It offers the three
// classic instrument kinds — monotonic counters, gauges, and fixed-bucket
// histograms with quantile snapshots — grouped into families by name with
// optional constant labels, and renders them as the Prometheus text
// exposition format and as a JSON snapshot document.
//
// The hot path is a single atomic operation per update: counters and
// histogram buckets are atomic.Int64 adds, gauges and histogram sums are
// CAS loops over float bits. The registry mutex guards registration and
// collection only, never updates, so instruments can be hammered from many
// goroutines while an HTTP scrape walks the registry.
//
// Scrape consistency: a histogram's exposition count is computed as the
// sum of its bucket counts loaded at snapshot time — never a separately
// maintained atomic — so `_count == sum of buckets` holds under any
// interleaving with concurrent Observe calls.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Label is one constant name/value pair attached to an instrument at
// registration time.
type Label struct {
	Key, Value string
}

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// instrument is the private interface all three kinds implement.
type instrument interface {
	labels() []Label
}

// family groups all instruments sharing one metric name; the exposition
// emits one HELP/TYPE header per family.
type family struct {
	name    string
	help    string
	typ     string // "counter" | "gauge" | "histogram"
	order   []instrument
	byKey   map[string]instrument
	buckets []float64 // histogram families: the shared bucket bounds
}

// Registry holds a set of metric families. The zero value is not usable;
// call New.
type Registry struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]*family
	hooks  []func()
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// OnCollect registers a hook run at the start of every collection
// (WritePrometheus or Snapshot) — the place to refresh gauges derived from
// other state, e.g. a skew ratio over per-bucket loads.
func (r *Registry) OnCollect(f func()) {
	r.mu.Lock()
	r.hooks = append(r.hooks, f)
	r.mu.Unlock()
}

// runHooks snapshots and runs the collect hooks without holding the lock,
// so a hook may freely touch instruments.
func (r *Registry) runHooks() {
	r.mu.Lock()
	hooks := append([]func(){}, r.hooks...)
	r.mu.Unlock()
	for _, f := range hooks {
		f()
	}
}

// validName reports whether name matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// labelKey builds the identity key of a label set (order-insensitive).
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	key := ""
	for _, l := range ls {
		key += l.Key + "\x00" + l.Value + "\x01"
	}
	return key
}

// register finds or creates the (family, instrument) pair. mk builds a new
// instrument when the label set is unseen. Panics on a name/type/bucket
// mismatch — these are programmer errors a test catches immediately.
func (r *Registry) register(name, help, typ string, buckets []float64, labels []Label, mk func() instrument) instrument {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l.Key) {
			panic(fmt.Sprintf("metrics: invalid label name %q on %q", l.Key, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, byKey: make(map[string]instrument), buckets: buckets}
		r.byName[name] = f
		r.fams = append(r.fams, f)
	} else if f.typ != typ {
		panic(fmt.Sprintf("metrics: %q registered as %s, requested as %s", name, f.typ, typ))
	}
	key := labelKey(labels)
	if in, ok := f.byKey[key]; ok {
		return in
	}
	in := mk()
	f.byKey[key] = in
	f.order = append(f.order, in)
	return in
}

// Counter is a monotonically increasing integer.
type Counter struct {
	ls []Label
	v  atomic.Int64
}

func (c *Counter) labels() []Label { return c.ls }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas are ignored to preserve monotonicity.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Counter finds or creates the counter name{labels...}.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	in := r.register(name, help, "counter", nil, labels, func() instrument {
		return &Counter{ls: append([]Label(nil), labels...)}
	})
	c, ok := in.(*Counter)
	if !ok {
		panic(fmt.Sprintf("metrics: %q is not a counter", name))
	}
	return c
}

// Gauge is an instantaneous float value.
type Gauge struct {
	ls   []Label
	bits atomic.Uint64
}

func (g *Gauge) labels() []Label { return g.ls }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the value by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Gauge finds or creates the gauge name{labels...}.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	in := r.register(name, help, "gauge", nil, labels, func() instrument {
		return &Gauge{ls: append([]Label(nil), labels...)}
	})
	g, ok := in.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("metrics: %q is not a gauge", name))
	}
	return g
}

// Histogram is a fixed-bucket distribution. Bounds are upper bucket edges
// ("le" semantics); an implicit +Inf bucket catches the overflow.
type Histogram struct {
	ls      []Label
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	sumBits atomic.Uint64
}

func (h *Histogram) labels() []Label { return h.ls }

// Observe records one value. The bucket count is incremented before the
// sum, so a concurrent snapshot's count can lead its sum but never trail
// its own buckets.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram. Counts are
// per-bucket (not cumulative); Count is their sum by construction.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []int64 // len(Bounds)+1, last is the +Inf bucket
	Count  int64
	Sum    float64
}

// Snap copies the histogram's state. Count is computed as the sum of the
// loaded bucket counts, so Count == Σ Counts holds even against concurrent
// Observe calls.
func (h *Histogram) Snap() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// Quantile estimates the q-quantile (0 < q ≤ 1) by linear interpolation
// within the bucket containing the target rank, the standard fixed-bucket
// estimate. Observations are assumed non-negative (the first bucket's
// lower edge is 0). Returns NaN for an empty histogram; ranks landing in
// the +Inf bucket clamp to the largest finite bound.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return math.NaN()
	}
	rank := q * float64(s.Count)
	cum := int64(0)
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			if i == len(s.Bounds) { // +Inf bucket
				if len(s.Bounds) == 0 {
					return math.NaN()
				}
				return s.Bounds[len(s.Bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := s.Bounds[i]
			return lo + (hi-lo)*(rank-float64(cum))/float64(c)
		}
		cum += c
	}
	if len(s.Bounds) == 0 {
		return math.NaN()
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Histogram finds or creates the histogram name{labels...} with the given
// bucket bounds (sorted ascending, no +Inf — it is implicit). All
// instruments of one family must share bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: %q bucket bounds not strictly increasing", name))
		}
	}
	in := r.register(name, help, "histogram", bounds, labels, func() instrument {
		h := &Histogram{ls: append([]Label(nil), labels...), bounds: append([]float64(nil), bounds...)}
		h.counts = make([]atomic.Int64, len(bounds)+1)
		return h
	})
	h, ok := in.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("metrics: %q is not a histogram", name))
	}
	return h
}

// ExpBuckets returns n bucket bounds start, start·factor, start·factor².
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("metrics: ExpBuckets needs start > 0, factor > 1, n ≥ 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n bucket bounds start, start+width, start+2·width.
func LinearBuckets(start, width float64, n int) []float64 {
	if width <= 0 || n < 1 {
		panic("metrics: LinearBuckets needs width > 0, n ≥ 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}
