package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// formatValue renders a sample value the way Prometheus expects: shortest
// round-trip float, with the spellings +Inf/-Inf/NaN.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// writeLabels renders {k="v",...}; extra appends one more pair (the
// histogram writer's le). An empty set renders nothing.
func writeLabels(b *strings.Builder, labels []Label, extraKey, extraVal string) {
	if len(labels) == 0 && extraKey == "" {
		return
	}
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraVal))
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): one HELP/TYPE header per family, then every
// sample. Collect hooks run first. Histograms emit cumulative _bucket
// series with an explicit le="+Inf", plus _sum and _count; _count equals
// the +Inf bucket by construction.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.runHooks()
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	orders := make([][]instrument, len(fams))
	for i, f := range fams {
		orders[i] = append([]instrument(nil), f.order...)
	}
	r.mu.Unlock()

	var b strings.Builder
	for i, f := range fams {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, in := range orders[i] {
			switch m := in.(type) {
			case *Counter:
				b.WriteString(f.name)
				writeLabels(&b, m.ls, "", "")
				b.WriteByte(' ')
				b.WriteString(strconv.FormatInt(m.Value(), 10))
				b.WriteByte('\n')
			case *Gauge:
				b.WriteString(f.name)
				writeLabels(&b, m.ls, "", "")
				b.WriteByte(' ')
				b.WriteString(formatValue(m.Value()))
				b.WriteByte('\n')
			case *Histogram:
				s := m.Snap()
				cum := int64(0)
				for bi, bound := range s.Bounds {
					cum += s.Counts[bi]
					b.WriteString(f.name)
					b.WriteString("_bucket")
					writeLabels(&b, m.ls, "le", formatValue(bound))
					b.WriteByte(' ')
					b.WriteString(strconv.FormatInt(cum, 10))
					b.WriteByte('\n')
				}
				b.WriteString(f.name)
				b.WriteString("_bucket")
				writeLabels(&b, m.ls, "le", "+Inf")
				b.WriteByte(' ')
				b.WriteString(strconv.FormatInt(s.Count, 10))
				b.WriteByte('\n')
				b.WriteString(f.name)
				b.WriteString("_sum")
				writeLabels(&b, m.ls, "", "")
				b.WriteByte(' ')
				b.WriteString(formatValue(s.Sum))
				b.WriteByte('\n')
				b.WriteString(f.name)
				b.WriteString("_count")
				writeLabels(&b, m.ls, "", "")
				b.WriteByte(' ')
				b.WriteString(strconv.FormatInt(s.Count, 10))
				b.WriteByte('\n')
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// BucketSnapshot is one histogram bucket in a JSON snapshot. LE is the
// upper edge rendered as a string so +Inf survives JSON.
type BucketSnapshot struct {
	LE    string `json:"le"`
	Count int64  `json:"count"` // non-cumulative
}

// MetricSnapshot is one instrument in a JSON snapshot document.
type MetricSnapshot struct {
	Name   string            `json:"name"`
	Type   string            `json:"type"`
	Labels map[string]string `json:"labels,omitempty"`
	// Counter/gauge value.
	Value *float64 `json:"value,omitempty"`
	// Histogram fields.
	Count     int64              `json:"count,omitempty"`
	Sum       float64            `json:"sum,omitempty"`
	Quantiles map[string]float64 `json:"quantiles,omitempty"`
	Buckets   []BucketSnapshot   `json:"buckets,omitempty"`
}

// Snapshot returns a point-in-time JSON-ready copy of every instrument,
// with p50/p95/p99 estimates for histograms. Collect hooks run first.
func (r *Registry) Snapshot() []MetricSnapshot {
	r.runHooks()
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	orders := make([][]instrument, len(fams))
	for i, f := range fams {
		orders[i] = append([]instrument(nil), f.order...)
	}
	r.mu.Unlock()

	out := make([]MetricSnapshot, 0, len(fams))
	for i, f := range fams {
		for _, in := range orders[i] {
			ms := MetricSnapshot{Name: f.name, Type: f.typ}
			if ls := in.labels(); len(ls) > 0 {
				ms.Labels = make(map[string]string, len(ls))
				for _, l := range ls {
					ms.Labels[l.Key] = l.Value
				}
			}
			switch m := in.(type) {
			case *Counter:
				v := float64(m.Value())
				ms.Value = &v
			case *Gauge:
				v := m.Value()
				ms.Value = &v
			case *Histogram:
				s := m.Snap()
				ms.Count = s.Count
				ms.Sum = s.Sum
				ms.Buckets = make([]BucketSnapshot, len(s.Counts))
				for bi := range s.Counts {
					le := "+Inf"
					if bi < len(s.Bounds) {
						le = formatValue(s.Bounds[bi])
					}
					ms.Buckets[bi] = BucketSnapshot{LE: le, Count: s.Counts[bi]}
				}
				if s.Count > 0 {
					ms.Quantiles = map[string]float64{
						"p50": s.Quantile(0.50),
						"p95": s.Quantile(0.95),
						"p99": s.Quantile(0.99),
					}
				}
			}
			out = append(out, ms)
		}
	}
	sortStable(out)
	return out
}

// sortStable orders snapshots by name then label signature, so the JSON
// document is deterministic regardless of registration interleaving.
func sortStable(ms []MetricSnapshot) {
	sig := func(m MetricSnapshot) string {
		if len(m.Labels) == 0 {
			return ""
		}
		keys := make([]string, 0, len(m.Labels))
		for k := range m.Labels {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		s := ""
		for _, k := range keys {
			s += k + "=" + m.Labels[k] + ";"
		}
		return s
	}
	sort.SliceStable(ms, func(i, j int) bool {
		if ms[i].Name != ms[j].Name {
			return ms[i].Name < ms[j].Name
		}
		return sig(ms[i]) < sig(ms[j])
	})
}
