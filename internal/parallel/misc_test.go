package parallel

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"parlog/internal/ast"
	"parlog/internal/hashpart"
	"parlog/internal/parser"
	"parlog/internal/relation"
	"parlog/internal/rewrite"
)

func TestTopology(t *testing.T) {
	topo := NewTopology([][2]int{{0, 1}, {2, 0}})
	if !topo.Allowed(0, 1) || !topo.Allowed(2, 0) {
		t.Error("listed edges not allowed")
	}
	if topo.Allowed(1, 0) {
		t.Error("missing edge allowed")
	}
	if !topo.Allowed(5, 5) {
		t.Error("self-loop not allowed")
	}
	var nilTopo *Topology
	if !nilTopo.Allowed(3, 4) {
		t.Error("nil topology should be a full mesh")
	}
	edges := topo.Edges()
	if len(edges) != 2 || edges[0] != [2]int{0, 1} || edges[1] != [2]int{2, 0} {
		t.Errorf("Edges = %v", edges)
	}
}

func TestMailboxOrderingAndNotify(t *testing.T) {
	m := newMailbox()
	for i := 0; i < 5; i++ {
		m.push(message{from: i})
	}
	msgs := m.takeAll()
	if len(msgs) != 5 {
		t.Fatalf("takeAll returned %d messages", len(msgs))
	}
	for i, msg := range msgs {
		if msg.from != i {
			t.Errorf("message %d from %d — FIFO violated", i, msg.from)
		}
	}
	select {
	case <-m.notify:
	default:
		t.Error("notify not signalled")
	}
	if got := m.takeAll(); len(got) != 0 {
		t.Errorf("second takeAll returned %d messages", len(got))
	}
}

func TestMailboxConcurrentPush(t *testing.T) {
	m := newMailbox()
	const senders, per = 8, 200
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				m.push(message{from: s})
			}
		}(s)
	}
	done := make(chan int, 1)
	go func() {
		got := 0
		for got < senders*per {
			<-m.notify
			got += len(m.takeAll())
		}
		done <- got
	}()
	wg.Wait()
	select {
	case got := <-done:
		if got != senders*per {
			t.Errorf("received %d of %d messages", got, senders*per)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("receiver never drained all messages — lost notify")
	}
}

func TestStatsAccessors(t *testing.T) {
	s := &Stats{
		Procs: []ProcStats{
			{Proc: 0, Firings: 10, TuplesSent: 3, DupFirings: 1, Busy: 5},
			{Proc: 1, Firings: 20, TuplesSent: 0, DupFirings: 2, Busy: 9},
		},
		Edges: map[[2]int]*EdgeStats{
			{0, 1}: {Messages: 2, Tuples: 3},
			{1, 1}: {Messages: 1, Tuples: 7}, // self edge: not a cross edge
			{1, 0}: {Messages: 0, Tuples: 0}, // unused: not reported
		},
	}
	if s.TotalFirings() != 30 {
		t.Errorf("TotalFirings = %d", s.TotalFirings())
	}
	if s.TotalTuplesSent() != 3 {
		t.Errorf("TotalTuplesSent = %d", s.TotalTuplesSent())
	}
	if s.TotalMessages() != 3 {
		t.Errorf("TotalMessages = %d", s.TotalMessages())
	}
	if s.TotalDupFirings() != 3 {
		t.Errorf("TotalDupFirings = %d", s.TotalDupFirings())
	}
	if s.MaxBusy() != 9 {
		t.Errorf("MaxBusy = %v", s.MaxBusy())
	}
	used := s.UsedEdges()
	if len(used) != 1 || used[0] != [2]int{0, 1} {
		t.Errorf("UsedEdges = %v", used)
	}
	if !strings.Contains(s.String(), "proc 0") || !strings.Contains(s.String(), "proc 1") {
		t.Errorf("String() = %q", s.String())
	}
}

func TestBuildValidation(t *testing.T) {
	prog := parser.MustParse(ancestorRules)
	s := mustSirup(t, prog)
	// Empty processor set.
	if _, err := BuildQ(s, rewrite.SirupSpec{VR: []string{"Z"}, VE: []string{"X"}, H: hashpart.ModHash{N: 1}}); err == nil {
		t.Error("nil processor set accepted")
	}
	// Bad discriminating variable.
	if _, err := BuildQ(s, rewrite.SirupSpec{
		Procs: hashpart.RangeProcs(2), VR: []string{"NOPE"}, VE: []string{"X"}, H: hashpart.ModHash{N: 2},
	}); err == nil {
		t.Error("unknown v(r) accepted")
	}
	// General scheme spec count mismatch.
	if _, err := BuildGeneral(prog, rewrite.GeneralSpec{
		Procs: hashpart.RangeProcs(2),
		Rules: []rewrite.RuleSpec{{Seq: []string{"Z"}, H: hashpart.ModHash{N: 2}}},
	}); err == nil {
		t.Error("wrong rule-spec count accepted")
	}
}

// TestMaxBatchSplitting: tiny batches change message counts but nothing
// else.
func TestMaxBatchSplitting(t *testing.T) {
	src := ancestorRules + randomParFacts(12, 26, 41)
	prog := parser.MustParse(src)
	seq, _ := seqEval(t, prog)
	s := mustSirup(t, prog)
	p, err := BuildQ(s, rewrite.SirupSpec{
		Procs: hashpart.RangeProcs(3),
		VR:    []string{"Z"}, VE: []string{"X"},
		H: hashpart.ModHash{N: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run(p, relation.Store{}, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	small, err := Run(p, relation.Store{}, RunConfig{MaxBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !seq["anc"].Equal(small.Output["anc"]) {
		t.Error("MaxBatch=1 changed the result")
	}
	if small.Stats.TotalTuplesSent() != big.Stats.TotalTuplesSent() {
		t.Errorf("tuple traffic changed: %d vs %d",
			small.Stats.TotalTuplesSent(), big.Stats.TotalTuplesSent())
	}
	if big.Stats.TotalTuplesSent() > 0 &&
		small.Stats.TotalMessages() != small.Stats.TotalTuplesSent() {
		t.Errorf("MaxBatch=1 should send one message per tuple: %d messages for %d tuples",
			small.Stats.TotalMessages(), small.Stats.TotalTuplesSent())
	}
}

// Property: Topology.Allowed agrees with the edge set it was built from.
func TestTopologyProperty(t *testing.T) {
	f := func(raw [][2]uint8) bool {
		edges := make([][2]int, len(raw))
		for i, e := range raw {
			edges[i] = [2]int{int(e[0]) % 8, int(e[1]) % 8}
		}
		topo := NewTopology(edges)
		set := map[[2]int]bool{}
		for _, e := range edges {
			set[e] = true
		}
		for i := 0; i < 8; i++ {
			for j := 0; j < 8; j++ {
				want := set[[2]int{i, j}] || i == j
				if topo.Allowed(i, j) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestNegationInParallelBuild: negated atoms compile as replicated EDB needs
// and produce the stratified result when lower strata arrive as base
// relations.
func TestNegationInParallelBuild(t *testing.T) {
	prog := parser.MustParse(`
unreachable(X) :- node(X), !reach(X).
`)
	h := hashpart.ModHash{N: 2}
	p, err := BuildGeneral(prog, rewrite.GeneralSpec{
		Procs: hashpart.RangeProcs(2),
		Rules: []rewrite.RuleSpec{{Seq: []string{"X"}, H: h}},
	})
	if err != nil {
		t.Fatal(err)
	}
	edb := relation.Store{}
	edb.InsertAll("node", [][]ast.Value{{1}, {2}, {3}})
	edb.InsertAll("reach", [][]ast.Value{{2}})
	res, err := Run(p, edb, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output["unreachable"].Len() != 2 {
		t.Errorf("|unreachable| = %d, want 2", res.Output["unreachable"].Len())
	}
	// The negated relation must be fully replicated at both workers.
	global, err := PrepareEDB(p, edb)
	if err != nil {
		t.Fatal(err)
	}
	pl := Placements(p, global)["reach"]
	for i, n := range pl.TuplesPerProc {
		if n != 1 {
			t.Errorf("proc %d holds %d reach tuples, want full copy 1", i, n)
		}
	}
	// Negating a same-phase derived predicate is rejected.
	bad := parser.MustParse(`
p(X) :- node(X), !q(X).
q(X) :- node(X).
`)
	if _, err := BuildGeneral(bad, rewrite.GeneralSpec{
		Procs: hashpart.RangeProcs(2),
		Rules: []rewrite.RuleSpec{{Seq: []string{"X"}, H: h}, {Seq: []string{"X"}, H: h}},
	}); err == nil {
		t.Error("same-phase negation accepted")
	}
}
