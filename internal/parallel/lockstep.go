package parallel

import (
	"fmt"
	"time"

	"parlog/internal/relation"
)

// RunLockstep executes the compiled program on a single goroutine with a
// deterministic round-robin schedule: workers initialize in dense-index
// order, then take turns consuming their queued messages in FIFO order and
// draining. Because Node.flush hands batches over in sorted (destination,
// pred) order and no two workers ever run concurrently, the event stream
// delivered to cfg.Sink is identical run-to-run — the property the golden
// trace test pins down. The fixpoint itself equals Run's on any schedule
// (Theorem 1), so RunLockstep is also a convenient sequential oracle.
//
// Mode, PollInterval, MaxBatch and the chaos options are ignored: there is
// no concurrency to detect termination under or to perturb. Topology is
// enforced like the concurrent transport.
func RunLockstep(p *Program, edb relation.Store, cfg RunConfig) (*Result, error) {
	n := p.Procs.Len()
	ids := p.Procs.IDs()

	global, err := PrepareEDB(p, edb)
	if err != nil {
		return nil, err
	}
	placements := makePlacements(p, global)

	nodes := make([]*Node, n)
	queues := make([][]message, n)
	edges := make([]map[[2]int]*EdgeStats, n)
	forbidden := make([]int64, n)
	for wi := 0; wi < n; wi++ {
		nodes[wi] = NewNode(p, wi, global)
		nodes[wi].SetSink(cfg.Sink)
		edges[wi] = make(map[[2]int]*EdgeStats)
	}

	if cfg.Sink != nil {
		cfg.Sink.RunStart("lockstep", ids)
	}
	start := time.Now()

	emitFor := func(wi int) EmitFunc {
		return func(dest int, pred string, tuples []relation.Tuple) {
			toProc := ids[dest]
			if !cfg.Topology.Allowed(ids[wi], toProc) {
				forbidden[wi] += int64(len(tuples))
				return
			}
			nodes[wi].RecordSent(len(tuples))
			e := [2]int{wi, dest}
			es := edges[wi][e]
			if es == nil {
				es = &EdgeStats{}
				edges[wi][e] = es
			}
			es.Messages++
			es.Tuples += int64(len(tuples))
			if cfg.Sink != nil {
				cfg.Sink.MessageSent(ids[wi], toProc, pred, len(tuples))
			}
			queues[dest] = append(queues[dest], message{from: wi, pred: pred, tuples: tuples})
		}
	}

	turn := func(wi int, work func()) {
		if cfg.Sink != nil {
			cfg.Sink.WorkerBusy(ids[wi])
		}
		begin := time.Now()
		work()
		nodes[wi].RecordBusy(time.Since(begin))
		if cfg.Sink != nil {
			cfg.Sink.WorkerIdle(ids[wi])
		}
	}

	for wi := 0; wi < n; wi++ {
		wi := wi
		turn(wi, func() { nodes[wi].Init(emitFor(wi)) })
	}
	for {
		if cfg.Ctx != nil {
			if err := cfg.Ctx.Err(); err != nil {
				return nil, err
			}
		}
		progress := false
		for wi := 0; wi < n; wi++ {
			if len(queues[wi]) == 0 {
				continue
			}
			progress = true
			wi := wi
			turn(wi, func() {
				msgs := queues[wi]
				queues[wi] = nil
				for _, m := range msgs {
					nodes[wi].Accept(m.from, m.pred, m.tuples)
				}
				nodes[wi].Drain(emitFor(wi))
			})
		}
		if !progress {
			break
		}
	}
	wall := time.Since(start)
	if cfg.Sink != nil {
		cfg.Sink.TermProbe("lockstep", -1, true)
		cfg.Sink.RunEnd(wall)
	}

	// Final pooling, identical to Run.
	out := relation.Store{}
	stats := &Stats{
		Edges:      make(map[[2]int]*EdgeStats),
		Placements: placements,
		Wall:       wall,
	}
	for pred, ar := range p.IDB {
		out.Get(pred, ar)
	}
	var totalForbidden int64
	for wi, node := range nodes {
		for pred, rel := range node.Outputs() {
			dst := out.Get(pred, rel.Arity())
			for _, t := range rel.Rows() {
				dst.Insert(t)
			}
		}
		stats.Procs = append(stats.Procs, node.Stats())
		for e, es := range edges[wi] {
			key := [2]int{ids[e[0]], ids[e[1]]}
			if prev, ok := stats.Edges[key]; ok {
				prev.Messages += es.Messages
				prev.Tuples += es.Tuples
			} else {
				cp := *es
				stats.Edges[key] = &cp
			}
		}
		totalForbidden += forbidden[wi]
	}
	stats.ForbiddenSends = totalForbidden
	if totalForbidden > 0 {
		return &Result{Output: out, Stats: stats},
			fmt.Errorf("parallel: topology suppressed %d tuple sends — the given network cannot execute this scheme", totalForbidden)
	}
	return &Result{Output: out, Stats: stats}, nil
}
