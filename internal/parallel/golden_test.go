package parallel

import (
	"strings"
	"testing"

	"parlog/internal/hashpart"
	"parlog/internal/obs"
	"parlog/internal/parser"
	"parlog/internal/relation"
	"parlog/internal/rewrite"
)

// goldenProgram compiles the two-processor Example 3 scheme (v(r)=⟨Z⟩,
// v(e)=⟨X⟩) over a four-edge par chain — small enough that its full event
// stream is reviewable by hand.
func goldenProgram(t *testing.T) *Program {
	t.Helper()
	prog := parser.MustParse(ancestorRules + chainFacts(4))
	s := mustSirup(t, prog)
	p, err := BuildQ(s, rewrite.SirupSpec{
		Procs: hashpart.RangeProcs(2),
		VR:    []string{"Z"}, VE: []string{"X"},
		H: hashpart.ModHash{N: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func lockstepTrace(t *testing.T) []string {
	t.Helper()
	rec := obs.NewRecorder()
	res, err := RunLockstep(goldenProgram(t), relation.Store{}, RunConfig{Sink: rec})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Output["anc"].Len(); got != 10 {
		t.Fatalf("|anc| = %d on the 4-chain, want 10", got)
	}
	return rec.CanonicalStrings()
}

// TestGoldenTraceLockstep pins the exact event stream of the deterministic
// scheduler: any change to event semantics (iteration numbering, message
// accounting, busy/idle pairing) shows up as a diff against this golden.
func TestGoldenTraceLockstep(t *testing.T) {
	got := lockstepTrace(t)
	want := strings.Split(strings.TrimSpace(goldenLockstepTrace), "\n")
	if len(got) != len(want) {
		t.Fatalf("trace length %d, want %d\ngot:\n%s", len(got), len(want), strings.Join(got, "\n"))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("trace[%d] = %q, want %q\nfull got:\n%s", i, got[i], want[i], strings.Join(got, "\n"))
		}
	}
}

// TestLockstepTraceDeterministic re-runs the same program and demands an
// identical stream — the property the golden above relies on.
func TestLockstepTraceDeterministic(t *testing.T) {
	a := lockstepTrace(t)
	b := lockstepTrace(t)
	if strings.Join(a, "\n") != strings.Join(b, "\n") {
		t.Fatal("two lockstep runs produced different event streams")
	}
}

const goldenLockstepTrace = `
run_start engine=lockstep procs=[0 1]
busy proc=0
iter_start proc=0 iter=0
firings proc=0 pred=anc n=2 dup=0
iter_end proc=0 iter=0 delta=2
iter_start proc=0 iter=1
firings proc=0 pred=anc n=2 dup=0
iter_end proc=0 iter=1 delta=2
send from=0 to=1 pred=anc n=2
idle proc=0
busy proc=1
iter_start proc=1 iter=0
firings proc=1 pred=anc n=2 dup=0
iter_end proc=1 iter=0 delta=2
iter_start proc=1 iter=1
firings proc=1 pred=anc n=1 dup=0
iter_end proc=1 iter=1 delta=1
send from=1 to=0 pred=anc n=1
idle proc=1
busy proc=0
recv at=0 from=1 pred=anc n=1 dup=0
iter_start proc=0 iter=2
firings proc=0 pred=anc n=1 dup=0
iter_end proc=0 iter=2 delta=1
send from=0 to=1 pred=anc n=1
idle proc=0
busy proc=1
recv at=1 from=0 pred=anc n=2 dup=0
recv at=1 from=0 pred=anc n=1 dup=0
iter_start proc=1 iter=2
firings proc=1 pred=anc n=1 dup=0
iter_end proc=1 iter=2 delta=1
send from=1 to=0 pred=anc n=1
idle proc=1
busy proc=0
recv at=0 from=1 pred=anc n=1 dup=0
iter_start proc=0 iter=3
firings proc=0 pred=anc n=1 dup=0
iter_end proc=0 iter=3 delta=1
send from=0 to=1 pred=anc n=1
idle proc=0
busy proc=1
recv at=1 from=0 pred=anc n=1 dup=0
iter_start proc=1 iter=3
firings proc=1 pred=anc n=0 dup=0
iter_end proc=1 iter=3 delta=0
idle proc=1
probe detector=lockstep n=-1 quiesced=true
run_end
`
