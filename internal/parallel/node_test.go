package parallel

import (
	"testing"

	"parlog/internal/hashpart"
	"parlog/internal/parser"
	"parlog/internal/relation"
	"parlog/internal/rewrite"
)

// buildNode compiles Example 3's scheme and returns node 0 with a chain EDB.
func buildNode(t *testing.T, n int) (*Program, []*Node) {
	t.Helper()
	prog := parser.MustParse(ancestorRules + chainFacts(6))
	s := mustSirup(t, prog)
	p, err := BuildQ(s, rewrite.SirupSpec{
		Procs: hashpart.RangeProcs(n),
		VR:    []string{"Z"}, VE: []string{"X"},
		H: hashpart.ModHash{N: n},
	})
	if err != nil {
		t.Fatal(err)
	}
	global, err := PrepareEDB(p, relation.Store{})
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = NewNode(p, i, global)
	}
	return p, nodes
}

// TestNodeSingleThreadedExecution drives the nodes by hand on one goroutine:
// a deterministic, transport-free execution of the scheme that must compute
// the closure.
func TestNodeSingleThreadedExecution(t *testing.T) {
	const n = 3
	p, nodes := buildNode(t, n)
	if nodes[0].Index() != 0 || nodes[2].Proc() != 2 {
		t.Errorf("Index/Proc wrong: %d %d", nodes[0].Index(), nodes[2].Proc())
	}

	type batch struct {
		dest   int
		pred   string
		tuples []relation.Tuple
	}
	var queue []batch
	emit := func(dest int, pred string, tuples []relation.Tuple) {
		cp := make([]relation.Tuple, len(tuples))
		for i, tu := range tuples {
			cp[i] = tu.Clone()
		}
		queue = append(queue, batch{dest, pred, cp})
	}
	for _, node := range nodes {
		node.Init(emit)
	}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		nodes[b.dest].Accept(-1, b.pred, b.tuples)
		nodes[b.dest].Drain(emit)
	}

	// Pool and compare with sequential.
	pooled := relation.New(2)
	for _, node := range nodes {
		for _, rel := range node.Outputs() {
			for _, tu := range rel.Rows() {
				pooled.Insert(tu)
			}
		}
	}
	if want := 6 * 7 / 2; pooled.Len() != want {
		t.Errorf("|anc| = %d, want %d", pooled.Len(), want)
	}
	var firings int64
	for _, node := range nodes {
		firings += node.Stats().Firings
	}
	if firings != int64(6*7/2) {
		t.Errorf("firings = %d, want %d (chain closure, non-redundant)", firings, 6*7/2)
	}
	_ = p
}

func TestNodeAcceptUnknownPredicate(t *testing.T) {
	_, nodes := buildNode(t, 2)
	// A stale/corrupt message for an unknown predicate must be ignored, not
	// panic.
	nodes[0].Accept(-1, "nosuch", []relation.Tuple{{1, 2}})
	if nodes[0].Stats().TuplesReceived != 0 {
		t.Error("unknown-predicate tuples were counted")
	}
}

func TestNodeRecorders(t *testing.T) {
	_, nodes := buildNode(t, 2)
	nodes[0].RecordSent(7)
	nodes[0].RecordBusy(5)
	st := nodes[0].Stats()
	if st.TuplesSent != 7 || st.Busy != 5 {
		t.Errorf("recorders: sent=%d busy=%v", st.TuplesSent, st.Busy)
	}
}
