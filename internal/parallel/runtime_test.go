package parallel

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"parlog/internal/analysis"
	"parlog/internal/ast"
	"parlog/internal/hashpart"
	"parlog/internal/parser"
	"parlog/internal/relation"
	"parlog/internal/rewrite"
	"parlog/internal/seminaive"
)

const ancestorRules = `
anc(X, Y) :- par(X, Y).
anc(X, Y) :- par(X, Z), anc(Z, Y).
`

func randomParFacts(nodes, edges int, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	seen := map[[2]int]bool{}
	for len(seen) < edges {
		e := [2]int{rng.Intn(nodes), rng.Intn(nodes)}
		if seen[e] {
			continue
		}
		seen[e] = true
		fmt.Fprintf(&b, "par(v%d, v%d).\n", e[0], e[1])
	}
	return b.String()
}

func chainFacts(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "par(v%d, v%d).\n", i, i+1)
	}
	return b.String()
}

func mustSirup(t *testing.T, prog *ast.Program) *analysis.Sirup {
	t.Helper()
	s, err := analysis.ExtractSirup(prog)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func seqEval(t *testing.T, prog *ast.Program) (relation.Store, *seminaive.Stats) {
	t.Helper()
	store, stats, err := seminaive.Eval(prog, relation.Store{}, seminaive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return store, stats
}

// --- Example 1: v(r)=v(e)=⟨Y⟩, zero communication, replicated par ---

func TestRunExample1(t *testing.T) {
	src := ancestorRules + randomParFacts(12, 24, 1)
	prog := parser.MustParse(src)
	seq, seqStats := seqEval(t, prog)

	const N = 4
	s := mustSirup(t, prog)
	p, err := BuildQ(s, rewrite.SirupSpec{
		Procs: hashpart.RangeProcs(N),
		VR:    []string{"Y"}, VE: []string{"Y"},
		H: hashpart.ModHash{N: N},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, relation.Store{}, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !seq["anc"].Equal(res.Output["anc"]) {
		t.Fatalf("Example 1 result differs:\nseq %v\npar %v", seq["anc"], res.Output["anc"])
	}
	// Zero inter-processor communication.
	if got := res.Stats.TotalTuplesSent(); got != 0 {
		t.Errorf("Example 1 sent %d tuples, want 0", got)
	}
	// Non-redundancy with equality (Theorem 2).
	if got, want := res.Stats.TotalFirings(), seqStats.Firings; got != want {
		t.Errorf("firings = %d, sequential = %d", got, want)
	}
	// par must be fully replicated: v(r)=⟨Y⟩ does not occur in par(X,Z).
	pl := res.Stats.Placements["par"]
	for i, n := range pl.TuplesPerProc {
		if n != seq["par"].Len() {
			t.Errorf("proc %d holds %d par tuples, want full copy %d", i, n, seq["par"].Len())
		}
	}
	if pl.Partitioned {
		t.Error("Example 1 placement misreported as partitioned")
	}
}

// --- Example 3: v(e)=⟨X⟩, v(r)=⟨Z⟩, point-to-point, partitioned par ---

func TestRunExample3(t *testing.T) {
	src := ancestorRules + randomParFacts(14, 30, 2)
	prog := parser.MustParse(src)
	seq, seqStats := seqEval(t, prog)

	const N = 4
	s := mustSirup(t, prog)
	p, err := BuildQ(s, rewrite.SirupSpec{
		Procs: hashpart.RangeProcs(N),
		VR:    []string{"Z"}, VE: []string{"X"},
		H: hashpart.ModHash{N: N},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, relation.Store{}, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !seq["anc"].Equal(res.Output["anc"]) {
		t.Fatal("Example 3 result differs from sequential")
	}
	if got, want := res.Stats.TotalFirings(), seqStats.Firings; got != want {
		t.Errorf("firings = %d, sequential = %d (non-redundancy)", got, want)
	}
	// The recursive rule's par fragments are disjoint: total stored equals
	// |par| for the recursive occurrence… but the exit rule uses v(e)=⟨X⟩ on
	// par(X,Y) which fragments too; the union per processor stays well below
	// full replication on any nontrivial hash.
	pl := res.Stats.Placements["par"]
	total := 0
	for _, n := range pl.TuplesPerProc {
		total += n
	}
	if total >= N*seq["par"].Len() {
		t.Errorf("Example 3 stores %d par tuples across procs — looks replicated", total)
	}
	// Point-to-point routing: each generated tuple goes to at most ONE
	// processor (Example 3, property 1), so traffic is bounded by the number
	// of per-site generations — contrast with Example 2's broadcast, which
	// costs N−1 sends per generation.
	var generated int64
	for _, ps := range res.Stats.Procs {
		generated += ps.Generated
	}
	if got := res.Stats.TotalTuplesSent(); got > generated {
		t.Errorf("Example 3 sent %d tuples for %d generations — not point-to-point", got, generated)
	}
}

// --- Example 2: arbitrary fragmentation, broadcast ---

func TestRunExample2(t *testing.T) {
	src := ancestorRules + randomParFacts(10, 20, 3)
	prog := parser.MustParse(src)
	seq, seqStats := seqEval(t, prog)

	const N = 3
	s := mustSirup(t, prog)
	_, facts := prog.FactTuples()
	frags := map[int]*relation.Relation{}
	for i := 0; i < N; i++ {
		frags[i] = relation.New(2)
	}
	for k, tuple := range facts["par"] {
		frags[k%N].Insert(tuple)
	}
	h, err := hashpart.NewFragmentation(frags, hashpart.ModHash{N: N})
	if err != nil {
		t.Fatal(err)
	}
	p, err := BuildQ(s, rewrite.SirupSpec{
		Procs: hashpart.RangeProcs(N),
		VR:    []string{"X", "Z"}, VE: []string{"X", "Y"},
		H: h,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, relation.Store{}, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !seq["anc"].Equal(res.Output["anc"]) {
		t.Fatal("Example 2 result differs from sequential")
	}
	if got, want := res.Stats.TotalFirings(), seqStats.Firings; got != want {
		t.Errorf("firings = %d, sequential = %d (extra communication must not cause redundancy)", got, want)
	}
	// The fragmentation-induced h partitions par: each processor holds
	// exactly its fragment (v(r)=⟨X,Z⟩ covers both columns of par(X,Z), and
	// v(e)=⟨X,Y⟩ covers par(X,Y)).
	pl := res.Stats.Placements["par"]
	for i, n := range pl.TuplesPerProc {
		if n != frags[i].Len() {
			t.Errorf("proc %d holds %d par tuples, want its fragment %d", i, n, frags[i].Len())
		}
	}
	// Broadcast: communication happens unless the closure is tiny.
	if seq["anc"].Len() > N && res.Stats.TotalTuplesSent() == 0 {
		t.Error("Example 2 should communicate (broadcast routing)")
	}
}

// --- NoComm scheme ---

// namedFunc lets tests pin exact processor assignments.
type namedFunc struct {
	name string
	fn   func([]ast.Value) int
}

func (f namedFunc) Name() string            { return f.name }
func (f namedFunc) Apply(v []ast.Value) int { return f.fn(v) }

// TestRunNoComm uses a diamond: x→w, w→a, w→b, a→c, b→c plus a tail. With
// h'(a)=0 and h'(b)=1, anc(w,c) is derived at both processors 0 and 1, so
// the firing par(x,w), anc(w,c) duplicates — the redundancy the paper
// ascribes to the communication-free scheme.
func TestRunNoComm(t *testing.T) {
	src := ancestorRules + `
par(x, w). par(w, a). par(w, b). par(a, c). par(b, c).
`
	prog := parser.MustParse(src)
	seq, seqStats := seqEval(t, prog)

	const N = 2
	va, _ := prog.Interner.Lookup("a")
	hp := namedFunc{name: "hpin", fn: func(v []ast.Value) int {
		if v[0] == va {
			return 0
		}
		return 1
	}}

	s := mustSirup(t, prog)
	p, err := BuildNoComm(s, rewrite.NoCommSpec{
		Procs: hashpart.RangeProcs(N),
		VE:    []string{"X"},
		HP:    hp,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, relation.Store{}, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !seq["anc"].Equal(res.Output["anc"]) {
		t.Fatal("NoComm result differs from sequential")
	}
	if got := res.Stats.TotalTuplesSent(); got != 0 {
		t.Errorf("NoComm sent %d tuples", got)
	}
	// Redundancy: anc(w,c) lives at both processors, so the derivation of
	// anc(x,c) through it fires twice.
	if got, want := res.Stats.TotalFirings(), seqStats.Firings; got <= want {
		t.Errorf("NoComm firings = %d, expected > sequential %d on the diamond", got, want)
	}
	// Base relation fully replicated.
	pl := res.Stats.Placements["par"]
	for i, n := range pl.TuplesPerProc {
		if n != seq["par"].Len() {
			t.Errorf("proc %d holds %d par tuples, want %d", i, n, seq["par"].Len())
		}
	}
}

// --- R trade-off scheme ---

func TestRunRTradeoffSpectrum(t *testing.T) {
	src := ancestorRules + randomParFacts(12, 26, 4)
	prog := parser.MustParse(src)
	seq, seqStats := seqEval(t, prog)
	const N = 3
	shared := hashpart.ModHash{N: N}

	type point struct {
		keep    int
		sent    int64
		firings int64
	}
	var curve []point
	for _, keep := range []int{0, 300, 600, 1000} {
		prog := parser.MustParse(src)
		s := mustSirup(t, prog)
		k := keep
		p, err := BuildR(s, rewrite.RSpec{
			Procs: hashpart.RangeProcs(N),
			VR:    []string{"Z"}, VE: []string{"X"},
			HP: hashpart.ModHash{N: N},
			HI: func(i int) hashpart.Func {
				return hashpart.Mix{Local: i, Shared: shared, KeepPermille: k}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(p, relation.Store{}, RunConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if !seq["anc"].Equal(res.Output["anc"]) {
			t.Fatalf("keep=%d: result differs from sequential (Theorem 4)", keep)
		}
		if res.Stats.TotalFirings() < seqStats.Firings {
			t.Errorf("keep=%d: fewer firings than sequential", keep)
		}
		curve = append(curve, point{keep, res.Stats.TotalTuplesSent(), res.Stats.TotalFirings()})
	}
	// Extremes: keep=0 behaves like Q — non-redundant relative to the
	// sequential count; keep=1000 like NoComm — no communication.
	if curve[0].firings != seqStats.Firings {
		t.Errorf("keep=0 (≡ Q) fired %d, sequential %d", curve[0].firings, seqStats.Firings)
	}
	if last := curve[len(curve)-1]; last.sent != 0 {
		t.Errorf("keep=1000 (≡ NoComm) sent %d tuples", last.sent)
	}
	// Communication decreases along the sweep.
	if !(curve[0].sent >= curve[len(curve)-1].sent) {
		t.Errorf("communication did not decrease across the sweep: %+v", curve)
	}
}

// --- General scheme ---

func TestRunGeneralNonlinear(t *testing.T) {
	src := `
anc(X, Y) :- par(X, Y).
anc(X, Y) :- anc(X, Z), anc(Z, Y).
` + randomParFacts(10, 20, 5)
	prog := parser.MustParse(src)
	seq, seqStats := seqEval(t, prog)

	const N = 4
	h := hashpart.ModHash{N: N}
	p, err := BuildGeneral(prog, rewrite.GeneralSpec{
		Procs: hashpart.RangeProcs(N),
		Rules: []rewrite.RuleSpec{
			{Seq: []string{"Y"}, H: h},
			{Seq: []string{"Z"}, H: h},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, relation.Store{}, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !seq["anc"].Equal(res.Output["anc"]) {
		t.Fatal("general scheme (Example 8) differs from sequential")
	}
	// Theorem 6: no more firings than sequential.
	if got, want := res.Stats.TotalFirings(), seqStats.Firings; got > want {
		t.Errorf("Theorem 6 violated: %d > %d", got, want)
	}
}

func TestRunGeneralMutualRecursion(t *testing.T) {
	var b strings.Builder
	b.WriteString(`
even(X) :- zero(X).
even(Y) :- succ(X, Y), odd(X).
odd(Y) :- succ(X, Y), even(X).
zero(n0).
`)
	for i := 0; i < 14; i++ {
		fmt.Fprintf(&b, "succ(n%d, n%d).\n", i, i+1)
	}
	prog := parser.MustParse(b.String())
	seq, _ := seqEval(t, prog)

	h := hashpart.ModHash{N: 3}
	p, err := BuildGeneral(prog, rewrite.GeneralSpec{
		Procs: hashpart.RangeProcs(3),
		Rules: []rewrite.RuleSpec{
			{Seq: []string{"X"}, H: h},
			{Seq: []string{"Y"}, H: h},
			{Seq: []string{"Y"}, H: h},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, relation.Store{}, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, pred := range []string{"even", "odd"} {
		if !seq[pred].Equal(res.Output[pred]) {
			t.Errorf("%s differs from sequential", pred)
		}
	}
}

// --- Termination modes ---

func TestRunAllTerminationModes(t *testing.T) {
	src := ancestorRules + randomParFacts(12, 26, 6)
	prog := parser.MustParse(src)
	seq, _ := seqEval(t, prog)
	for _, mode := range []TerminationMode{TermCredit, TermCounting, TermDijkstraScholten} {
		mode := mode
		t.Run(fmt.Sprintf("mode%d", mode), func(t *testing.T) {
			prog := parser.MustParse(src)
			s := mustSirup(t, prog)
			p, err := BuildQ(s, rewrite.SirupSpec{
				Procs: hashpart.RangeProcs(4),
				VR:    []string{"Z"}, VE: []string{"X"},
				H: hashpart.ModHash{N: 4},
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(p, relation.Store{}, RunConfig{Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			if !seq["anc"].Equal(res.Output["anc"]) {
				t.Error("result differs from sequential")
			}
		})
	}
}

// --- Topology restriction ---

func TestRunRestrictedTopologySufficient(t *testing.T) {
	// Example 1 needs no inter-processor edges at all: an empty topology must
	// work.
	src := ancestorRules + randomParFacts(10, 18, 7)
	prog := parser.MustParse(src)
	seq, _ := seqEval(t, prog)
	s := mustSirup(t, prog)
	p, err := BuildQ(s, rewrite.SirupSpec{
		Procs: hashpart.RangeProcs(3),
		VR:    []string{"Y"}, VE: []string{"Y"},
		H: hashpart.ModHash{N: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, relation.Store{}, RunConfig{Topology: NewTopology(nil)})
	if err != nil {
		t.Fatal(err)
	}
	if !seq["anc"].Equal(res.Output["anc"]) {
		t.Error("restricted (empty) topology broke Example 1")
	}
}

func TestRunRestrictedTopologyInsufficient(t *testing.T) {
	// Example 3 with 2 processors needs cross edges; forbidding them must
	// surface as an error with a nonzero ForbiddenSends count.
	src := ancestorRules + chainFacts(10)
	prog := parser.MustParse(src)
	s := mustSirup(t, prog)
	p, err := BuildQ(s, rewrite.SirupSpec{
		Procs: hashpart.RangeProcs(2),
		VR:    []string{"Z"}, VE: []string{"X"},
		H: hashpart.ModHash{N: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, relation.Store{}, RunConfig{Topology: NewTopology(nil)})
	if err == nil {
		t.Fatal("insufficient topology did not error")
	}
	if res.Stats.ForbiddenSends == 0 {
		t.Error("ForbiddenSends = 0 despite suppressed sends")
	}
}

// --- misc ---

func TestRunSingleProcessor(t *testing.T) {
	src := ancestorRules + chainFacts(8)
	prog := parser.MustParse(src)
	seq, seqStats := seqEval(t, prog)
	s := mustSirup(t, prog)
	p, err := BuildQ(s, rewrite.SirupSpec{
		Procs: hashpart.RangeProcs(1),
		VR:    []string{"Z"}, VE: []string{"X"},
		H: hashpart.ModHash{N: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, relation.Store{}, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !seq["anc"].Equal(res.Output["anc"]) {
		t.Error("N=1 differs from sequential")
	}
	if got, want := res.Stats.TotalFirings(), seqStats.Firings; got != want {
		t.Errorf("N=1 firings = %d, want %d", got, want)
	}
}

func TestRunEmptyEDB(t *testing.T) {
	prog := parser.MustParse(ancestorRules)
	s := mustSirup(t, prog)
	p, err := BuildQ(s, rewrite.SirupSpec{
		Procs: hashpart.RangeProcs(3),
		VR:    []string{"Z"}, VE: []string{"X"},
		H: hashpart.ModHash{N: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, relation.Store{}, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output["anc"].Len() != 0 {
		t.Errorf("empty EDB derived %d tuples", res.Output["anc"].Len())
	}
}

func TestRunEDBFromStore(t *testing.T) {
	prog := parser.MustParse(ancestorRules)
	a := prog.Interner.Intern("a")
	b := prog.Interner.Intern("b")
	c := prog.Interner.Intern("c")
	edb := relation.Store{}
	edb.InsertAll("par", [][]ast.Value{{a, b}, {b, c}})
	s := mustSirup(t, prog)
	p, err := BuildQ(s, rewrite.SirupSpec{
		Procs: hashpart.RangeProcs(2),
		VR:    []string{"Z"}, VE: []string{"X"},
		H: hashpart.ModHash{N: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, edb, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output["anc"].Len() != 3 {
		t.Errorf("|anc| = %d, want 3", res.Output["anc"].Len())
	}
	if _, ok := edb["anc"]; ok {
		t.Error("Run mutated the caller's EDB store")
	}
}

func TestRunRejectsIDBInput(t *testing.T) {
	prog := parser.MustParse(ancestorRules)
	a := prog.Interner.Intern("a")
	edb := relation.Store{}
	edb.InsertAll("anc", [][]ast.Value{{a, a}})
	s := mustSirup(t, prog)
	p, err := BuildQ(s, rewrite.SirupSpec{
		Procs: hashpart.RangeProcs(2),
		VR:    []string{"Z"}, VE: []string{"X"},
		H: hashpart.ModHash{N: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(p, edb, RunConfig{}); err == nil {
		t.Error("ground tuples for a derived predicate accepted")
	}
}

// TestRunRandomizedAgainstSequential is the big equivalence property: random
// graphs × schemes × processor counts × termination modes.
func TestRunRandomizedAgainstSequential(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed + 500))
		src := ancestorRules + randomParFacts(8+rng.Intn(8), 12+rng.Intn(16), seed)
		prog := parser.MustParse(src)
		seq, seqStats := seqEval(t, prog)
		n := 2 + rng.Intn(4)
		vrChoices := [][]string{{"Y"}, {"Z"}, {"Z", "Y"}}
		vr := vrChoices[rng.Intn(len(vrChoices))]
		mode := TerminationMode(rng.Intn(3))

		prog2 := parser.MustParse(src)
		s := mustSirup(t, prog2)
		p, err := BuildQ(s, rewrite.SirupSpec{
			Procs: hashpart.RangeProcs(n),
			VR:    vr, VE: []string{"X"},
			H: hashpart.ModHash{N: n, Seed: uint64(seed)},
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(p, relation.Store{}, RunConfig{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		if !seq["anc"].Equal(res.Output["anc"]) {
			t.Fatalf("seed %d vr=%v n=%d mode=%d: parallel differs from sequential", seed, vr, n, mode)
		}
		if got, want := res.Stats.TotalFirings(), seqStats.Firings; got != want {
			t.Errorf("seed %d: firings %d != sequential %d", seed, got, want)
		}
	}
}

// TestRunDeterministicStats: tuple-level traffic statistics must be
// reproducible across runs (they are set-determined, not schedule-determined).
func TestRunDeterministicStats(t *testing.T) {
	src := ancestorRules + randomParFacts(12, 26, 8)
	run := func() (int64, int64, int) {
		prog := parser.MustParse(src)
		s := mustSirup(t, prog)
		p, err := BuildQ(s, rewrite.SirupSpec{
			Procs: hashpart.RangeProcs(3),
			VR:    []string{"Z"}, VE: []string{"X"},
			H: hashpart.ModHash{N: 3},
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(p, relation.Store{}, RunConfig{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.TotalTuplesSent(), res.Stats.TotalFirings(), res.Output["anc"].Len()
	}
	s1, f1, n1 := run()
	for i := 0; i < 3; i++ {
		s2, f2, n2 := run()
		if s1 != s2 || f1 != f2 || n1 != n2 {
			t.Fatalf("nondeterministic stats: (%d,%d,%d) vs (%d,%d,%d)", s1, f1, n1, s2, f2, n2)
		}
	}
}
