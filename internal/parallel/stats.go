package parallel

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"parlog/internal/hashpart"
)

// ProcStats accounts one processor's work.
type ProcStats struct {
	Proc int
	// Firings counts successful ground substitutions of this processor's
	// rules (after constraints) — the Definition 1 / Theorem 2 currency.
	Firings int64
	// Generated counts distinct tuples this processor derived (first
	// derivations at this site).
	Generated int64
	// DupFirings counts firings whose head tuple this processor had already
	// generated (local rederivations).
	DupFirings int64
	// TuplesSent / TuplesReceived count inter-processor traffic only;
	// self-routed tuples are free, as in the paper.
	TuplesSent     int64
	TuplesReceived int64
	// DupReceived counts received tuples already present locally.
	DupReceived int64
	// Iterations is the number of local semi-naive rounds.
	Iterations int64
	// Busy is time spent evaluating; the difference to the run's wall clock
	// is idle/blocked time, the utilization input of the paper's future-work
	// study (Section 8).
	Busy time.Duration
	// EDBTuples is the number of base-relation tuples materialized here.
	EDBTuples int
}

// EdgeStats accounts one directed channel i→j.
type EdgeStats struct {
	Messages int64
	Tuples   int64
}

// Stats aggregates a parallel run.
type Stats struct {
	Procs []ProcStats
	// Edges maps [from,to] (processor ids) to channel usage. Only edges that
	// carried at least one message appear.
	Edges map[[2]int]*EdgeStats
	// Placements describes base-relation layout per predicate.
	Placements map[string]hashpart.Placement
	// Wall is the end-to-end run time.
	Wall time.Duration
	// ForbiddenSends counts tuples that the topology restriction suppressed;
	// nonzero means the chosen topology was insufficient for the scheme.
	ForbiddenSends int64
}

// TotalFirings sums firings over all processors.
func (s *Stats) TotalFirings() int64 {
	var n int64
	for _, p := range s.Procs {
		n += p.Firings
	}
	return n
}

// TotalTuplesSent sums inter-processor tuple traffic.
func (s *Stats) TotalTuplesSent() int64 {
	var n int64
	for _, p := range s.Procs {
		n += p.TuplesSent
	}
	return n
}

// TotalMessages sums inter-processor messages (batches).
func (s *Stats) TotalMessages() int64 {
	var n int64
	for _, e := range s.Edges {
		n += e.Messages
	}
	return n
}

// TotalDupFirings sums local rederivations — the redundancy measure of the
// Section 6 trade-off.
func (s *Stats) TotalDupFirings() int64 {
	var n int64
	for _, p := range s.Procs {
		n += p.DupFirings
	}
	return n
}

// MaxBusy returns the longest per-processor busy time (the critical path
// under perfect overlap); Speedup-style metrics divide total work by it.
func (s *Stats) MaxBusy() time.Duration {
	var m time.Duration
	for _, p := range s.Procs {
		if p.Busy > m {
			m = p.Busy
		}
	}
	return m
}

// UsedEdges returns the inter-processor edges that carried tuples, sorted.
func (s *Stats) UsedEdges() [][2]int {
	var out [][2]int
	for e, es := range s.Edges {
		if e[0] != e[1] && es.Tuples > 0 {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// String renders a compact report.
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "wall=%v firings=%d dup=%d sent=%d msgs=%d\n",
		s.Wall.Round(time.Microsecond), s.TotalFirings(), s.TotalDupFirings(), s.TotalTuplesSent(), s.TotalMessages())
	for _, p := range s.Procs {
		fmt.Fprintf(&b, "  proc %d: firings=%d gen=%d dup=%d sent=%d recv=%d recvDup=%d iters=%d busy=%v edb=%d\n",
			p.Proc, p.Firings, p.Generated, p.DupFirings, p.TuplesSent, p.TuplesReceived, p.DupReceived,
			p.Iterations, p.Busy.Round(time.Microsecond), p.EDBTuples)
	}
	return b.String()
}
