package parallel

import (
	"sort"
	"time"

	"parlog/internal/ast"
	"parlog/internal/hashpart"
	"parlog/internal/obs"
	"parlog/internal/relation"
	"parlog/internal/seminaive"
)

// EmitFunc carries one logical outgoing batch to a transport: dest is a
// dense worker index (never the emitting node itself), pred a derived
// predicate. The tuples slice must not be retained past the call unless the
// transport copies it; the in-process and TCP transports both forward it
// immediately.
type EmitFunc func(dest int, pred string, tuples []relation.Tuple)

// Node is the transport-agnostic processor of the paper's abstract
// architecture: it owns the local base-relation fragments and the @in/@out
// relations, fires initialization rules, accepts incoming tuples, runs local
// semi-naive iterations and routes freshly derived tuples per the scheme's
// sending rules. Transports — the in-process goroutine runtime here and the
// TCP runtime in internal/dist — deliver batches via Accept and carry the
// batches handed to the EmitFunc, plus termination detection.
//
// A Node is not safe for concurrent use; each transport drives it from a
// single goroutine.
type Node struct {
	prog   *Program
	wi     int // dense index
	procID int

	// rules is this worker's compiled rule set — the program's shared
	// plans by default, or a node-local recompilation after Replan.
	rules []compiledRule

	store relation.Store                // EDB fragments + @in relations
	in    map[string]*relation.Relation // derived tuples received/kept, by pred
	out   map[string]*relation.Relation // derived tuples generated here, by pred
	wm    *seminaive.Watermarks

	stats ProcStats

	// profile arms per-rule runtime counters; ruleProfs[i] accounts
	// n.rules[i]. The flag is sticky across Replan so a planner change
	// cannot silently drop instrumentation.
	profile   bool
	ruleProfs []*seminaive.RuleProfile

	// sink receives this node's events; nil disables observability.
	sink obs.EventSink

	// outBatch accumulates tuples per (destination, pred) within one local
	// iteration.
	outBatch map[int]map[string][]relation.Tuple

	// scratch holds the head tuple being probed, avoiding an allocation per
	// firing.
	scratch relation.Tuple

	// routers holds the program's sending rules precompiled against this
	// processor: pattern constants/repeated variables become column checks
	// and the discriminating sequence becomes column positions, so routing
	// a tuple allocates nothing.
	routers map[string][]nodeRouter
	// routeVals and destScratch are route's reusable buffers.
	routeVals   []ast.Value
	destScratch []int
}

// nodeRouter is one Router specialized to a processor: the per-tuple
// substitution matching of the generic Router is flattened into column
// comparisons.
type nodeRouter struct {
	self      bool
	broadcast bool
	arity     int // pattern arity; tuples of other widths never match
	// consts are the pattern's constant positions: tuple[col] must be val.
	consts []struct {
		col int
		val ast.Value
	}
	// eqs are repeated-variable positions: tuple[a] must equal tuple[b].
	eqs [][2]int
	// seqPos are the columns of v(r) inside the pattern (point-to-point
	// routing only), and h the processor's routing function.
	seqPos []int
	h      hashpart.Func
}

// compileRouter flattens rt for the processor procID. Build has already
// validated that a point-to-point router's sequence is contained in its
// pattern, so every sequence variable resolves to a column.
func compileRouter(rt Router, procID int) nodeRouter {
	nr := nodeRouter{self: rt.Self, broadcast: rt.Broadcast, arity: len(rt.Pattern.Args)}
	if rt.Self {
		return nr
	}
	firstCol := make(map[string]int, len(rt.Pattern.Args))
	for i, t := range rt.Pattern.Args {
		if t.IsVar() {
			if j, ok := firstCol[t.VarName]; ok {
				nr.eqs = append(nr.eqs, [2]int{j, i})
			} else {
				firstCol[t.VarName] = i
			}
		} else {
			nr.consts = append(nr.consts, struct {
				col int
				val ast.Value
			}{i, t.Value})
		}
	}
	if !rt.Broadcast {
		nr.seqPos = make([]int, len(rt.Seq))
		for i, v := range rt.Seq {
			nr.seqPos[i] = firstCol[v]
		}
		nr.h = rt.HFor(procID)
	}
	return nr
}

// NewNode materializes processor wi's node, including its base-relation
// fragments (the paper's b_k^i / D_in^i) drawn from the global EDB.
func NewNode(p *Program, wi int, global relation.Store) *Node {
	procID := p.Procs.IDs()[wi]
	n := &Node{
		prog:     p,
		wi:       wi,
		procID:   procID,
		rules:    p.rules[wi],
		store:    relation.Store{},
		in:       make(map[string]*relation.Relation),
		out:      make(map[string]*relation.Relation),
		wm:       &seminaive.Watermarks{Prev: map[string]int{}, Cur: map[string]int{}},
		outBatch: make(map[int]map[string][]relation.Tuple),
	}
	n.stats.Proc = procID
	for pred := range p.EDB {
		frag := fragmentFor(p, pred, wi, procID, global)
		n.store[pred] = frag
		n.stats.EDBTuples += frag.Len()
	}
	maxAr := 0
	for pred, ar := range p.IDB {
		rel := relation.New(ar)
		n.in[pred] = rel
		n.store[pred+inSuffix] = rel
		n.out[pred] = relation.New(ar)
		n.wm.Prev[pred+inSuffix] = 0
		n.wm.Cur[pred+inSuffix] = 0
		if ar > maxAr {
			maxAr = ar
		}
	}
	n.scratch = make(relation.Tuple, maxAr)
	n.routers = make(map[string][]nodeRouter, len(p.routers))
	maxSeq := 0
	for pred, rts := range p.routers {
		crs := make([]nodeRouter, len(rts))
		for i, rt := range rts {
			crs[i] = compileRouter(rt, procID)
			if len(crs[i].seqPos) > maxSeq {
				maxSeq = len(crs[i].seqPos)
			}
		}
		n.routers[pred] = crs
	}
	n.routeVals = make([]ast.Value, maxSeq)
	return n
}

// Replan recompiles this node's rule plans under the given planner mode,
// using the node's own base-relation fragment cardinalities (exact at this
// point: NewNode has materialized the fragments, @in relations are still
// empty). PlanBoundness is a no-op — the node keeps the program's shared
// plans, so default runs stay byte-identical. Transports call it after
// SetSink and before Init; each compiled plan is reported as a
// PlanCompiled event.
func (n *Node) Replan(mode seminaive.PlanMode) {
	if mode == seminaive.PlanBoundness {
		return
	}
	cfg := seminaive.PlanConfig{Mode: mode, Card: func(pred string) int {
		if rel, ok := n.store[pred]; ok {
			return rel.Len()
		}
		return 0
	}}
	rules := make([]compiledRule, len(n.rules))
	for i, cr := range n.rules {
		nr := cr
		if cr.init {
			nr.plans = []*seminaive.Plan{seminaive.CompileWith(cr.rule, nil, cfg)}
		} else {
			nr.plans = seminaive.DeltaVariantsWith(cr.rule, cr.recAtoms, cfg)
		}
		for _, pl := range nr.plans {
			obs.PlanCompiled(n.sink, n.procID, nr.head, pl.Moved(), pl.Pushdowns())
		}
		rules[i] = nr
	}
	n.rules = rules
	if n.profile {
		n.armProfiles()
	}
}

// EnableProfile arms per-rule runtime counters on this node. Transports call
// it after Replan and before Init; the flag survives a later Replan (the
// recompiled plans are re-armed). Profiling works on node-local plan copies,
// so the program's shared plans stay untouched.
func (n *Node) EnableProfile() {
	n.profile = true
	n.armProfiles()
}

// armProfiles swaps every plan for an armed copy and resets the per-rule
// records. Rule keys strip the per-processor restriction constraint
// (seminaive.ProfileKey), so all workers' records of one source rule merge.
func (n *Node) armProfiles() {
	n.ruleProfs = make([]*seminaive.RuleProfile, len(n.rules))
	rules := make([]compiledRule, len(n.rules))
	for i, cr := range n.rules {
		nr := cr
		nr.plans = make([]*seminaive.Plan, len(cr.plans))
		for j, pl := range cr.plans {
			nr.plans[j] = pl.WithProfile()
		}
		rules[i] = nr
		n.ruleProfs[i] = &seminaive.RuleProfile{
			Key:  seminaive.ProfileKey(n.prog.src, cr.rule),
			Pred: cr.head,
		}
	}
	n.rules = rules
}

// Profile folds the armed plan counters into the per-rule records and returns
// them with this processor's attribution attached. Call at most once, after
// the node's last Drain; nil when profiling is disabled.
func (n *Node) Profile() []*seminaive.RuleProfile {
	if !n.profile {
		return nil
	}
	out := make([]*seminaive.RuleProfile, len(n.ruleProfs))
	for i := range n.rules {
		rp := n.ruleProfs[i]
		for _, pl := range n.rules[i].plans {
			pl.ProfileInto(rp)
		}
		rp.Procs = []seminaive.ProcProfile{{
			Proc:    n.procID,
			Firings: rp.Firings,
			Dup:     rp.Dup,
			WallNs:  rp.WallNs,
		}}
		out[i] = rp
	}
	return out
}

// Index returns the node's dense worker index.
func (n *Node) Index() int { return n.wi }

// Proc returns the node's processor id.
func (n *Node) Proc() int { return n.procID }

// SetSink attaches an event sink; transports call it before Init. A nil
// sink (the default) disables observability.
func (n *Node) SetSink(s obs.EventSink) { n.sink = s }

// Sink returns the attached event sink, nil when disabled.
func (n *Node) Sink() obs.EventSink { return n.sink }

// PeerProc maps a dense worker index to its processor id, passing through
// out-of-range values (transports use it to label message events).
func (n *Node) PeerProc(wi int) int {
	ids := n.prog.Procs.IDs()
	if wi < 0 || wi >= len(ids) {
		return wi
	}
	return ids[wi]
}

// Init fires the rules without derived body atoms once (the initialization
// step), then drains: the complete first unit of work. The sink sees the
// initialization pass as iteration 0.
func (n *Node) Init(emit EmitFunc) {
	if n.sink != nil {
		n.sink.IterationStart(n.procID, 0)
	}
	genBefore := n.stats.Generated
	for ri := range n.rules {
		cr := &n.rules[ri]
		if !cr.init {
			continue
		}
		fBefore, dupBefore := n.stats.Firings, n.stats.DupFirings
		var t0 time.Time
		if n.profile {
			t0 = time.Now()
		}
		for _, plan := range cr.plans {
			buf := n.scratch[:cr.arity]
			n.stats.Firings += plan.Enumerate(n.store, nil, func(vals []ast.Value) bool {
				n.emitTuple(cr.head, plan.HeadTupleInto(buf, vals))
				return true
			})
		}
		if n.profile {
			n.recordRule(ri, fBefore, dupBefore, t0)
		}
		if n.sink != nil {
			n.sink.RuleFirings(n.procID, cr.head, n.stats.Firings-fBefore, n.stats.DupFirings-dupBefore)
		}
	}
	if n.sink != nil {
		n.sink.IterationEnd(n.procID, 0, int(n.stats.Generated-genBefore))
	}
	n.flush(emit)
	n.Drain(emit)
}

// Accept merges received tuples of one predicate into the local @in
// relation, eliminating duplicates by difference (the paper's receive
// step). from is the sender's dense worker index (-1 when unknown). Call
// Drain afterwards; transports may Accept several batches per Drain.
func (n *Node) Accept(from int, pred string, tuples []relation.Tuple) {
	rel, ok := n.in[pred]
	if !ok {
		return // unknown predicate: a corrupt or stale message; ignore
	}
	dupBefore := n.stats.DupReceived
	for _, t := range tuples {
		n.stats.TuplesReceived++
		if !rel.Insert(t) {
			n.stats.DupReceived++
		}
	}
	if n.sink != nil {
		n.sink.MessageReceived(n.procID, n.PeerProc(from), pred, len(tuples), int(n.stats.DupReceived-dupBefore))
	}
}

// Drain runs local semi-naive iterations until no new tuples appear,
// flushing outgoing batches after each iteration (the paper's per-iteration
// send step).
func (n *Node) Drain(emit EmitFunc) {
	for {
		grew := false
		for pred, rel := range n.in {
			key := pred + inSuffix
			if rel.Len() > n.wm.Cur[key] {
				grew = true
			}
			n.wm.Prev[key] = n.wm.Cur[key]
			n.wm.Cur[key] = rel.Len()
		}
		if !grew {
			return
		}
		n.stats.Iterations++
		iter := int(n.stats.Iterations)
		if n.sink != nil {
			n.sink.IterationStart(n.procID, iter)
		}
		genBefore := n.stats.Generated
		for ri := range n.rules {
			cr := &n.rules[ri]
			if cr.init {
				continue
			}
			fBefore, dupBefore := n.stats.Firings, n.stats.DupFirings
			var t0 time.Time
			if n.profile {
				t0 = time.Now()
			}
			for _, plan := range cr.plans {
				buf := n.scratch[:cr.arity]
				n.stats.Firings += plan.Enumerate(n.store, n.wm, func(vals []ast.Value) bool {
					n.emitTuple(cr.head, plan.HeadTupleInto(buf, vals))
					return true
				})
			}
			if n.profile {
				n.recordRule(ri, fBefore, dupBefore, t0)
			}
			if n.sink != nil {
				n.sink.RuleFirings(n.procID, cr.head, n.stats.Firings-fBefore, n.stats.DupFirings-dupBefore)
			}
		}
		if n.sink != nil {
			n.sink.IterationEnd(n.procID, iter, int(n.stats.Generated-genBefore))
		}
		n.flush(emit)
	}
}

// recordRule accumulates one rule pass into its profile record. A firing that
// survived local dedup is a New tuple at this site (emitTuple inserts into the
// out relation before routing), so New = firings − local rederivations.
func (n *Node) recordRule(ri int, fBefore, dupBefore int64, t0 time.Time) {
	rp := n.ruleProfs[ri]
	f := n.stats.Firings - fBefore
	d := n.stats.DupFirings - dupBefore
	rp.Firings += f
	rp.Dup += d
	rp.New += f - d
	rp.Iterations++
	rp.WallNs += time.Since(t0).Nanoseconds()
}

// emitTuple handles one freshly derived head tuple: dedup against this
// processor's previous outputs, then route. t may be a scratch buffer; the
// routed tuple is the stable copy the out relation stored.
func (n *Node) emitTuple(pred string, t relation.Tuple) {
	out := n.out[pred]
	if !out.Insert(t) {
		n.stats.DupFirings++
		return
	}
	n.stats.Generated++
	n.route(pred, out.Row(out.Len()-1))
}

// route applies every router of pred to t and queues the tuple for its
// destinations. Self-destinations enter the local @in relation immediately
// (they are free, not communication). The precompiled routers and the
// node-owned scratch buffers make this allocation-free per tuple.
func (n *Node) route(pred string, t relation.Tuple) {
	routers := n.routers[pred]
	if len(routers) == 0 {
		return
	}
	dests := n.destScratch[:0]
	add := func(wi int) []int {
		for _, d := range dests {
			if d == wi {
				return dests
			}
		}
		return append(dests, wi)
	}
	for i := range routers {
		rt := &routers[i]
		if rt.self {
			dests = add(n.wi)
			continue
		}
		if len(t) != rt.arity {
			continue
		}
		ok := true
		for _, cv := range rt.consts {
			if t[cv.col] != cv.val {
				ok = false
				break
			}
		}
		for _, eq := range rt.eqs {
			if !ok || t[eq[0]] != t[eq[1]] {
				ok = false
				break
			}
		}
		if !ok {
			continue // cannot ever fire through this occurrence
		}
		if rt.broadcast {
			for wi := 0; wi < n.prog.Procs.Len(); wi++ {
				dests = add(wi)
			}
			continue
		}
		vals := n.routeVals[:len(rt.seqPos)]
		for k, c := range rt.seqPos {
			vals[k] = t[c]
		}
		dest := rt.h.Apply(vals)
		if wi, ok := n.prog.Procs.Index(dest); ok {
			dests = add(wi)
		}
	}
	n.destScratch = dests[:0]
	for _, wi := range dests {
		if wi == n.wi {
			n.in[pred].Insert(t) // local keep: visible to the next iteration
			continue
		}
		m := n.outBatch[wi]
		if m == nil {
			m = make(map[string][]relation.Tuple)
			n.outBatch[wi] = m
		}
		m[pred] = append(m[pred], t)
	}
}

// flush hands the accumulated logical batches to the transport, in sorted
// (destination, pred) order so a deterministic scheduler sees an identical
// send sequence run-to-run. The batch maps are tiny (bounded by procs and
// channel predicates), so the sort is noise next to the sends themselves.
func (n *Node) flush(emit EmitFunc) {
	if len(n.outBatch) == 0 {
		return
	}
	dests := make([]int, 0, len(n.outBatch))
	for wi := range n.outBatch {
		dests = append(dests, wi)
	}
	sort.Ints(dests)
	for _, wi := range dests {
		byPred := n.outBatch[wi]
		preds := make([]string, 0, len(byPred))
		for pred := range byPred {
			preds = append(preds, pred)
		}
		sort.Strings(preds)
		for _, pred := range preds {
			emit(wi, pred, byPred[pred])
		}
		delete(n.outBatch, wi)
	}
}

// Stats returns a snapshot of the node's accounting (transport-recorded
// fields included).
func (n *Node) Stats() ProcStats { return n.stats }

// RecordSent adds transport-level tuple-send accounting.
func (n *Node) RecordSent(tuples int) { n.stats.TuplesSent += int64(tuples) }

// RecordBusy adds transport-measured busy time.
func (n *Node) RecordBusy(d time.Duration) { n.stats.Busy += d }

// Outputs exposes the node's generated relations for final pooling. Callers
// must not modify them.
func (n *Node) Outputs() map[string]*relation.Relation { return n.out }

// Snapshot captures the node's @in relations — the derived tuples this
// bucket has received or kept. Because every other piece of node state
// (the out relations, the local keeps, the watermarks) is a monotone
// function of the EDB fragment and these tuples, a fresh node that runs
// Init, Accepts the snapshot and Drains converges to a state at least as
// advanced as this one: the snapshot is a complete bucket checkpoint.
// Predicates with no tuples are omitted. The rows are headers into the
// relations' arenas, not copies: arena rows are immutable once written,
// so the snapshot stays valid however the node evolves afterwards.
func (n *Node) Snapshot() map[string][]relation.Tuple {
	snap := make(map[string][]relation.Tuple, len(n.in))
	for pred, rel := range n.in {
		if rel.Len() == 0 {
			continue
		}
		rows := make([]relation.Tuple, rel.Len())
		for i := range rows {
			rows[i] = rel.Row(i)
		}
		snap[pred] = rows
	}
	return snap
}
