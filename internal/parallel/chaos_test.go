package parallel

import (
	"testing"
	"time"

	"parlog/internal/hashpart"
	"parlog/internal/obs"
	"parlog/internal/parser"
	"parlog/internal/relation"
	"parlog/internal/rewrite"
)

// TestChaosDuplicateDelivery injects at-least-once delivery: every batch
// arrives twice. Duplicate elimination by difference (the paper's receive
// step) must keep results and firing counts identical, and the duplicates
// must be visible in DupReceived.
func TestChaosDuplicateDelivery(t *testing.T) {
	src := ancestorRules + randomParFacts(12, 26, 31)
	prog := parser.MustParse(src)
	seq, seqStats := seqEval(t, prog)
	s := mustSirup(t, prog)
	p, err := BuildQ(s, rewrite.SirupSpec{
		Procs: hashpart.RangeProcs(4),
		VR:    []string{"Z"}, VE: []string{"X"},
		H: hashpart.ModHash{N: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []TerminationMode{TermCredit, TermCounting, TermDijkstraScholten} {
		res, err := Run(p, relation.Store{}, RunConfig{Mode: mode, ChaosDuplicate: true})
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		if !seq["anc"].Equal(res.Output["anc"]) {
			t.Fatalf("mode %d: duplicated delivery changed the result", mode)
		}
		if got, want := res.Stats.TotalFirings(), seqStats.Firings; got != want {
			t.Errorf("mode %d: firings %d != %d — duplicates caused recomputation", mode, got, want)
		}
		var dup int64
		for _, ps := range res.Stats.Procs {
			dup += ps.DupReceived
		}
		if res.Stats.TotalTuplesSent() > 0 && dup == 0 {
			t.Errorf("mode %d: duplication enabled but no duplicate receives recorded", mode)
		}
	}
}

// TestChaosJitter fuzzes message interleavings; across many perturbed runs
// the result and the traffic accounting must be identical.
func TestChaosJitter(t *testing.T) {
	src := ancestorRules + randomParFacts(10, 22, 32)
	prog := parser.MustParse(src)
	seq, _ := seqEval(t, prog)
	s := mustSirup(t, prog)
	p, err := BuildQ(s, rewrite.SirupSpec{
		Procs: hashpart.RangeProcs(3),
		VR:    []string{"Z"}, VE: []string{"X"},
		H: hashpart.ModHash{N: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	var sent int64 = -1
	for trial := 0; trial < 5; trial++ {
		res, err := Run(p, relation.Store{}, RunConfig{ChaosJitter: 200 * time.Microsecond})
		if err != nil {
			t.Fatal(err)
		}
		if !seq["anc"].Equal(res.Output["anc"]) {
			t.Fatalf("trial %d: jittered run changed the result", trial)
		}
		if sent < 0 {
			sent = res.Stats.TotalTuplesSent()
		} else if sent != res.Stats.TotalTuplesSent() {
			t.Fatalf("trial %d: traffic not schedule-independent: %d vs %d",
				trial, sent, res.Stats.TotalTuplesSent())
		}
	}
}

// TestChaosDuplicateWithRestrictedTopology combines fault injection with a
// restricted interconnect: duplicated sends still traverse only derived
// links.
func TestChaosDuplicateWithRestrictedTopology(t *testing.T) {
	src := ancestorRules + randomParFacts(10, 20, 33)
	prog := parser.MustParse(src)
	seq, _ := seqEval(t, prog)
	s := mustSirup(t, prog)
	p, err := BuildQ(s, rewrite.SirupSpec{
		Procs: hashpart.RangeProcs(2),
		VR:    []string{"Y"}, VE: []string{"Y"},
		H: hashpart.ModHash{N: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Example 1 needs no cross links even under duplication.
	res, err := Run(p, relation.Store{}, RunConfig{
		Topology:       NewTopology(nil),
		ChaosDuplicate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !seq["anc"].Equal(res.Output["anc"]) {
		t.Error("result differs")
	}
}

// TestChaosCountingSink attaches the counting sink while both fault
// injectors are active, across every termination detector. The sink hears
// the same events the Stats accounting counts, by different code paths —
// so every aggregate in the snapshot must agree exactly with the run's
// Stats, and under `go test -race` this doubles as the concurrency check
// on the sink's hot paths.
func TestChaosCountingSink(t *testing.T) {
	src := ancestorRules + randomParFacts(12, 26, 34)
	prog := parser.MustParse(src)
	seq, _ := seqEval(t, prog)
	s := mustSirup(t, prog)
	p, err := BuildQ(s, rewrite.SirupSpec{
		Procs: hashpart.RangeProcs(4),
		VR:    []string{"Z"}, VE: []string{"X"},
		H: hashpart.ModHash{N: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []TerminationMode{TermCredit, TermCounting, TermDijkstraScholten} {
		c := obs.NewCounting()
		res, err := Run(p, relation.Store{}, RunConfig{
			Mode:           mode,
			Sink:           c,
			ChaosDuplicate: true,
			ChaosJitter:    100 * time.Microsecond,
		})
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		if !seq["anc"].Equal(res.Output["anc"]) {
			t.Fatalf("mode %d: chaos run changed the result", mode)
		}
		m := c.Snapshot()
		if m.Engine != "parallel" || len(m.Procs) != 4 {
			t.Fatalf("mode %d: snapshot engine=%q procs=%d", mode, m.Engine, len(m.Procs))
		}
		var firings, sent, recv, dup, edgeTuples int64
		for _, pm := range m.Procs {
			firings += pm.Firings
			sent += pm.TuplesSent
			recv += pm.TuplesReceived
			dup += pm.DupReceived
			if pm.Transitions == 0 {
				t.Errorf("mode %d: proc %d never transitioned busy/idle", mode, pm.Proc)
			}
		}
		for _, e := range m.Edges {
			edgeTuples += e.Tuples
		}
		if got := res.Stats.TotalFirings(); firings != got {
			t.Errorf("mode %d: sink firings %d != stats %d", mode, firings, got)
		}
		if got := res.Stats.TotalTuplesSent(); sent != got {
			t.Errorf("mode %d: sink sent %d != stats %d", mode, sent, got)
		}
		if edgeTuples != sent {
			t.Errorf("mode %d: per-edge tuples %d != sent %d", mode, edgeTuples, sent)
		}
		var statsRecv, statsDup int64
		for _, ps := range res.Stats.Procs {
			statsRecv += ps.TuplesReceived
			statsDup += ps.DupReceived
		}
		if recv != statsRecv || dup != statsDup {
			t.Errorf("mode %d: sink recv/dup %d/%d != stats %d/%d", mode, recv, dup, statsRecv, statsDup)
		}
		if sent > 0 && dup == 0 {
			t.Errorf("mode %d: duplication enabled but sink saw no duplicate receives", mode)
		}
	}
}
