// Package parallel implements the paper's abstract parallel architecture and
// executes the rewritten programs on it: one goroutine per processor,
// reliable point-to-point channels t_ij, asynchronous receives, duplicate
// elimination by difference, pluggable termination detection (Section 3),
// and full accounting of communication, redundancy and base-relation
// placement — the quantities behind Examples 1–3 and the Section 6
// trade-off.
package parallel

import (
	"fmt"

	"parlog/internal/analysis"
	"parlog/internal/ast"
	"parlog/internal/hashpart"
	"parlog/internal/rewrite"
	"parlog/internal/seminaive"
)

// inSuffix marks a worker-local received-tuple relation; body IDB atoms of
// compiled rules read pred+inSuffix.
const inSuffix = "@in"

// Router decides where a freshly generated tuple of one derived predicate
// must be sent, mirroring the paper's sending rules: the tuple is matched
// against the body occurrence's pattern; if the rule's discriminating
// sequence is fully bound by the match, the tuple goes to h(v(r)θ),
// otherwise it is broadcast.
type Router struct {
	// Pred is the derived predicate this router applies to.
	Pred string
	// Pattern is the body atom occurrence, e.g. anc(Z, Y).
	Pattern ast.Atom
	// Self routes every tuple to the generating processor only (the
	// no-communication scheme).
	Self bool
	// Broadcast sends every pattern-matching tuple to all processors.
	Broadcast bool
	// Seq and HFor implement point-to-point routing: destination is
	// HFor(sender).Apply(v(r)θ). Unused when Self or Broadcast.
	Seq  []string
	HFor func(sender int) hashpart.Func
}

// compiledRule is one rule specialized to a processor.
type compiledRule struct {
	// plans are the semi-naive delta variants (a single all-full plan for
	// rules without derived body atoms — those run once at initialization).
	plans []*seminaive.Plan
	head  string
	arity int
	init  bool // no derived body atoms: fires once at start
	// rule and recAtoms retain the compilation inputs so Node.Replan can
	// recompile the plans under a different planner mode.
	rule     ast.Rule
	recAtoms []int
}

// edbNeed records which subset of one base relation a rule's body atom needs
// at each processor: the paper's b_k^i / D_in^i.
type edbNeed struct {
	pred string
	// pattern is the body atom (constants/repeated variables restrict which
	// tuples can ever match).
	pattern ast.Atom
	// seq/hFor define the fragment σ_{h_i(v(r))=i}; nil seq (or seq not
	// fully inside the atom) means the processor needs the full relation.
	seq  []string
	hFor func(i int) hashpart.Func
}

// Program is a compiled parallel Datalog program ready to Run.
type Program struct {
	Procs *hashpart.ProcSet
	// IDB and EDB map predicates to arities.
	IDB map[string]int
	EDB map[string]int
	// rules[k] is the k-th worker's compiled rule set (indexed by dense
	// processor index).
	rules [][]compiledRule
	// routers by predicate (same for every worker; sender-dependence is
	// inside HFor).
	routers map[string][]Router
	// needs lists the EDB subsets each worker materializes.
	needs []edbNeed
	// facts embedded in the source program, merged into the EDB at Run.
	facts map[string][][]ast.Value
	// src retains the source program; profile records key rules through its
	// formatter (seminaive.ProfileKey).
	src *ast.Program
}

// PinnedBuckets reports, per dense bucket index, whether that bucket's
// compiled rule set carries restriction-set constraints (the h_i(seq)=i
// processing guards of Section 3). A pinned bucket's rules only fire on
// instances its own constraint admits, so a repartitioning may move the
// bucket between hosts but never relabel it — the co-location condition the
// rebalancer's transferability check enforces (network.CheckTransferable).
func (p *Program) PinnedBuckets() []bool {
	out := make([]bool, len(p.rules))
	for wi, ws := range p.rules {
		for _, cr := range ws {
			if len(cr.rule.Constraints) > 0 {
				out[wi] = true
				break
			}
		}
	}
	return out
}

// ruleSpec is the scheme-independent description handed to build: one per
// proper rule of the source program. If hFor is non-nil, worker i's copy of
// the rule carries the constraint h_i(seq) = i, and base atoms containing
// all of seq are fragmented accordingly.
type ruleSpec struct {
	seq  []string
	hFor func(i int) hashpart.Func
}

// build compiles the generic scheme description into a Program.
func build(prog *ast.Program, procs *hashpart.ProcSet, specs []ruleSpec, routers []Router) (*Program, error) {
	if procs == nil || procs.Len() == 0 {
		return nil, fmt.Errorf("parallel: empty processor set")
	}
	if err := analysis.CheckSafety(prog); err != nil {
		return nil, err
	}
	rules, facts := prog.FactTuples()
	if len(specs) != len(rules) {
		return nil, fmt.Errorf("parallel: %d rule specs for %d rules", len(specs), len(rules))
	}

	idb := make(map[string]int)
	for _, r := range rules {
		idb[r.Head.Pred] = r.Head.Arity()
	}
	edb := make(map[string]int)
	for _, r := range rules {
		for _, a := range r.Body {
			if _, ok := idb[a.Pred]; !ok {
				edb[a.Pred] = a.Arity()
			}
		}
		for _, a := range r.Negated {
			// Stratified semantics: a negated predicate must be complete
			// before this program runs, so it cannot be derived here. The
			// facade's stratified driver feeds lower strata in as base
			// relations.
			if _, ok := idb[a.Pred]; ok {
				return nil, fmt.Errorf("parallel: %s is negated but derived in the same phase; evaluate lower strata first", a.Pred)
			}
			edb[a.Pred] = a.Arity()
		}
	}
	for pred, tuples := range facts {
		if _, ok := idb[pred]; ok {
			continue
		}
		if len(tuples) > 0 {
			edb[pred] = len(tuples[0])
		}
	}

	p := &Program{
		Procs:   procs,
		IDB:     idb,
		EDB:     edb,
		rules:   make([][]compiledRule, procs.Len()),
		routers: make(map[string][]Router),
		facts:   facts,
		src:     prog,
	}
	for _, rt := range routers {
		if _, ok := idb[rt.Pred]; !ok {
			return nil, fmt.Errorf("parallel: router for non-derived predicate %s", rt.Pred)
		}
		if !rt.Self && !rt.Broadcast {
			if _, ok := hashpart.SeqPositions(rt.Pattern, rt.Seq); !ok {
				return nil, fmt.Errorf("parallel: router for %s: sequence %v not contained in pattern %s",
					rt.Pred, rt.Seq, rt.Pattern)
			}
		}
		p.routers[rt.Pred] = append(p.routers[rt.Pred], rt)
	}

	// Record EDB needs and compile per-worker rules.
	for si, spec := range specs {
		r := rules[si]
		for _, a := range r.Body {
			if _, isEDB := edb[a.Pred]; !isEDB {
				continue
			}
			need := edbNeed{pred: a.Pred, pattern: a.Clone()}
			if spec.hFor != nil {
				if _, ok := hashpart.SeqPositions(a, spec.seq); ok {
					need.seq = spec.seq
					need.hFor = spec.hFor
				}
			}
			p.needs = append(p.needs, need)
		}
		// Negated relations must be complete at every reader: replicate.
		for _, a := range r.Negated {
			p.needs = append(p.needs, edbNeed{pred: a.Pred, pattern: ast.NewAtom(a.Pred, freshVarTerms(a.Arity())...)})
		}
	}

	for wi, procID := range procs.IDs() {
		var ws []compiledRule
		for si, spec := range specs {
			r := rules[si]
			// Rename derived body atoms to their @in relations.
			body := make([]ast.Atom, len(r.Body))
			var recAtoms []int
			for bi, a := range r.Body {
				if _, isIDB := idb[a.Pred]; isIDB {
					body[bi] = ast.NewAtom(a.Pred+inSuffix, a.Clone().Args...)
					recAtoms = append(recAtoms, bi)
				} else {
					body[bi] = a.Clone()
				}
			}
			var neg []ast.Atom
			for _, a := range r.Negated {
				neg = append(neg, a.Clone()) // reads the replicated lower-stratum copy
			}
			wr := ast.Rule{Head: r.Head.Clone(), Body: body, Negated: neg}
			if spec.hFor != nil {
				h := hashpart.AsHashFunc(spec.hFor(procID))
				wr = wr.WithConstraints(ast.NewHashConstraint(h, spec.seq, procID))
			}
			cr := compiledRule{head: r.Head.Pred, arity: r.Head.Arity(), rule: wr, recAtoms: recAtoms}
			if len(recAtoms) == 0 {
				cr.init = true
				cr.plans = []*seminaive.Plan{seminaive.Compile(wr, nil)}
			} else {
				cr.plans = seminaive.DeltaVariants(wr, recAtoms)
			}
			ws = append(ws, cr)
		}
		p.rules[wi] = ws
	}
	return p, nil
}

// BuildQ compiles the Section 3 non-redundant scheme for a linear sirup.
func BuildQ(s *analysis.Sirup, spec rewrite.SirupSpec) (*Program, error) {
	if err := hashpart.ValidateSequence(s.Rec, spec.VR); err != nil {
		return nil, err
	}
	if err := hashpart.ValidateSequence(s.Exit, spec.VE); err != nil {
		return nil, err
	}
	hp := spec.HP
	if hp == nil {
		hp = spec.H
	}
	recAtom := s.Rec.Body[s.RecAtom]
	router := Router{Pred: s.T, Pattern: recAtom.Clone()}
	if _, ok := hashpart.SeqPositions(recAtom, spec.VR); ok {
		router.Seq = spec.VR
		h := spec.H
		router.HFor = func(int) hashpart.Func { return h }
	} else {
		// v(r) ⊄ Ȳ: the sending condition cannot be checked at the sender
		// (Example 2) — broadcast.
		router.Broadcast = true
	}
	rules, _ := s.Program.FactTuples()
	specs, err := sirupRuleSpecs(rules, s, spec.VR, spec.VE,
		func(int) hashpart.Func { return spec.H },
		func(int) hashpart.Func { return hp })
	if err != nil {
		return nil, err
	}
	return build(s.Program, spec.Procs, specs, []Router{router})
}

// BuildNoComm compiles the communication-free scheme of Section 6: outputs
// stay at their generating processor, base relations are replicated.
func BuildNoComm(s *analysis.Sirup, spec rewrite.NoCommSpec) (*Program, error) {
	if err := hashpart.ValidateSequence(s.Exit, spec.VE); err != nil {
		return nil, err
	}
	rules, _ := s.Program.FactTuples()
	specs, err := sirupRuleSpecs(rules, s, nil, spec.VE,
		nil,
		func(int) hashpart.Func { return spec.HP })
	if err != nil {
		return nil, err
	}
	router := Router{Pred: s.T, Self: true}
	return build(s.Program, spec.Procs, specs, []Router{router})
}

// BuildR compiles the Section 6 trade-off scheme: no processing constraint,
// per-processor routing functions h_i.
func BuildR(s *analysis.Sirup, spec rewrite.RSpec) (*Program, error) {
	if err := hashpart.ValidateSequence(s.Rec, spec.VR); err != nil {
		return nil, err
	}
	if err := hashpart.ValidateSequence(s.Exit, spec.VE); err != nil {
		return nil, err
	}
	if err := hashpart.ValidateSubsetOf(spec.VR, s.BodyVars, "Ȳ (the recursive body atom)"); err != nil {
		return nil, err
	}
	rules, _ := s.Program.FactTuples()
	specs, err := sirupRuleSpecs(rules, s, nil, spec.VE,
		nil,
		func(int) hashpart.Func { return spec.HP })
	if err != nil {
		return nil, err
	}
	router := Router{
		Pred:    s.T,
		Pattern: s.Rec.Body[s.RecAtom].Clone(),
		Seq:     spec.VR,
		HFor:    spec.HI,
	}
	return build(s.Program, spec.Procs, specs, []Router{router})
}

// freshVarTerms returns n distinct variable terms W1 … Wn.
func freshVarTerms(n int) []ast.Term {
	out := make([]ast.Term, n)
	for i := range out {
		out[i] = ast.V(fmt.Sprintf("W%d", i+1))
	}
	return out
}

// sirupRuleSpecs assigns (seq, h) to the sirup's two rules in the order they
// appear in rules. recH == nil leaves the recursive rule unconstrained.
func sirupRuleSpecs(rules []ast.Rule, s *analysis.Sirup, vr []string, ve []string,
	recH, exitH func(int) hashpart.Func) ([]ruleSpec, error) {
	if len(rules) != 2 {
		return nil, fmt.Errorf("parallel: sirup with %d rules", len(rules))
	}
	specs := make([]ruleSpec, 2)
	for i, r := range rules {
		recursive := false
		for _, a := range r.Body {
			if a.Pred == r.Head.Pred {
				recursive = true
			}
		}
		if recursive {
			specs[i] = ruleSpec{seq: vr, hFor: recH}
		} else {
			specs[i] = ruleSpec{seq: ve, hFor: exitH}
		}
	}
	return specs, nil
}

// BuildGeneral compiles the Section 7 scheme for an arbitrary Datalog
// program.
func BuildGeneral(prog *ast.Program, gspec rewrite.GeneralSpec) (*Program, error) {
	rules, _ := prog.FactTuples()
	if len(gspec.Rules) != len(rules) {
		return nil, fmt.Errorf("parallel: %d rule specs for %d rules", len(gspec.Rules), len(rules))
	}
	idb := make(map[string]bool)
	for _, r := range rules {
		idb[r.Head.Pred] = true
	}
	var specs []ruleSpec
	var routers []Router
	seenRouter := map[string]bool{}
	for ri, r := range rules {
		rs := gspec.Rules[ri]
		if err := hashpart.ValidateSequence(r, rs.Seq); err != nil {
			return nil, fmt.Errorf("rule %d: %w", ri, err)
		}
		h := rs.H
		specs = append(specs, ruleSpec{seq: rs.Seq, hFor: func(int) hashpart.Func { return h }})
		for _, a := range r.Body {
			if !idb[a.Pred] {
				continue
			}
			router := Router{Pred: a.Pred, Pattern: a.Clone()}
			if _, ok := hashpart.SeqPositions(a, rs.Seq); ok {
				router.Seq = rs.Seq
				router.HFor = func(int) hashpart.Func { return h }
			} else {
				router.Broadcast = true
			}
			key := fmt.Sprintf("%s|%s|%v|%s|%v", a.Pred, a.String(), rs.Seq, h.Name(), router.Broadcast)
			if seenRouter[key] {
				continue
			}
			seenRouter[key] = true
			routers = append(routers, router)
		}
	}
	return build(prog, gspec.Procs, specs, routers)
}
