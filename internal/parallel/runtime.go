package parallel

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"parlog/internal/ast"
	"parlog/internal/hashpart"
	"parlog/internal/obs"
	"parlog/internal/relation"
	"parlog/internal/seminaive"
	"parlog/internal/termdetect"
)

// TerminationMode selects the distributed termination detector.
type TerminationMode int

const (
	// TermCredit uses the credit/outstanding-work detector (default): exact
	// and poll-free.
	TermCredit TerminationMode = iota
	// TermCounting uses Mattern's four-counter two-wave detector with a
	// polling coordinator.
	TermCounting
	// TermDijkstraScholten uses the diffusing-computation detector the paper
	// cites.
	TermDijkstraScholten
)

// Topology restricts which inter-processor channels exist (Section 5's
// network graphs). A nil Topology is the full mesh. Self-loops are always
// permitted: a processor may keep its own tuples.
type Topology struct {
	allowed map[[2]int]bool
}

// NewTopology builds a topology from directed edges (processor ids).
func NewTopology(edges [][2]int) *Topology {
	t := &Topology{allowed: make(map[[2]int]bool, len(edges))}
	for _, e := range edges {
		t.allowed[e] = true
	}
	return t
}

// Allowed reports whether i may send to j.
func (t *Topology) Allowed(i, j int) bool {
	if t == nil || i == j {
		return true
	}
	return t.allowed[[2]int{i, j}]
}

// Edges returns the edge set, sorted.
func (t *Topology) Edges() [][2]int {
	out := make([][2]int, 0, len(t.allowed))
	for e := range t.allowed {
		out = append(out, e)
	}
	sortEdges(out)
	return out
}

func sortEdges(out [][2]int) {
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
}

// RunConfig configures a parallel execution.
type RunConfig struct {
	Mode TerminationMode
	// Topology restricts channels; nil means full mesh. Sends over missing
	// edges are suppressed and counted; Run fails if any occur.
	Topology *Topology
	// PollInterval is the counting detector's wave period (default 100µs).
	PollInterval time.Duration
	// MaxBatch splits outgoing tuple batches (default: unlimited — one batch
	// per destination per local iteration, the paper's per-iteration send).
	MaxBatch int
	// ChaosDuplicate delivers every inter-processor batch twice, modelling an
	// at-least-once channel instead of the paper's exactly-once idealization.
	// Results must be unaffected: receivers eliminate duplicates by
	// difference. For fault-injection tests.
	ChaosDuplicate bool
	// ChaosJitter sleeps a pseudorandom duration below this bound before
	// each send, perturbing message interleavings; for schedule-fuzzing
	// tests.
	ChaosJitter time.Duration
	// Ctx, when non-nil, cancels the run: workers stop at their next
	// scheduling point and Run returns the context's error.
	Ctx context.Context
	// Sink, when non-nil, receives the run's event stream (iterations,
	// rule firings, messages, busy/idle transitions, detector probes).
	Sink obs.EventSink
	// Planner selects the join-order planner; non-default modes make each
	// worker recompile its plans against its own fragment cardinalities
	// (Node.Replan) before evaluation starts.
	Planner seminaive.PlanMode
	// Profile arms per-rule runtime counters on every worker and merges them
	// into Result.Profile with per-processor attribution. Off by default:
	// the disabled path pays nothing.
	Profile bool
}

// Result is the outcome of a parallel run.
type Result struct {
	// Output holds the pooled derived relations (final pooling step) plus
	// nothing else; base relations are the caller's input.
	Output relation.Store
	Stats  *Stats
	// Profile is the merged per-rule runtime profile; nil unless
	// RunConfig.Profile was set.
	Profile *seminaive.Profile
}

// message is a batch of tuples of one predicate sent over one channel.
type message struct {
	from   int // dense worker index
	pred   string
	tuples []relation.Tuple
}

// mailbox is an unbounded, non-blocking inbox: senders never block, so
// bounded-buffer deadlocks cannot occur regardless of topology.
type mailbox struct {
	mu     sync.Mutex
	msgs   []message
	notify chan struct{}
}

func newMailbox() *mailbox {
	return &mailbox{notify: make(chan struct{}, 1)}
}

func (m *mailbox) push(msg message) {
	m.mu.Lock()
	m.msgs = append(m.msgs, msg)
	m.mu.Unlock()
	select {
	case m.notify <- struct{}{}:
	default:
	}
}

func (m *mailbox) takeAll() []message {
	m.mu.Lock()
	out := m.msgs
	m.msgs = nil
	m.mu.Unlock()
	return out
}

// detector abstracts the three termination algorithms behind the hooks the
// worker loop needs.
type detector interface {
	// beforeSend is called by the sender just before enqueueing a batch.
	beforeSend(from int)
	// afterReceive is called by the receiver for each dequeued batch, after
	// it has cleared its idle state.
	afterReceive(w, from int)
	// workDone retires one unit of work (one batch fully processed, or the
	// initial activation).
	workDone(w int)
	// idle publishes that w is about to block with nothing to do.
	idle(w int)
	// busy publishes that w woke up.
	busy(w int)
	// quiesced is closed when global termination is established.
	quiesced() <-chan struct{}
	// stop tears down any auxiliary goroutine.
	stop()
}

// creditDetector adapts termdetect.Credit.
type creditDetector struct{ c *termdetect.Credit }

func newCreditDetector(n int) *creditDetector {
	c := termdetect.NewCredit()
	c.Add(n) // one unit per worker's initialization
	return &creditDetector{c: c}
}

func (d *creditDetector) beforeSend(int)            { d.c.Add(1) }
func (d *creditDetector) afterReceive(int, int)     {}
func (d *creditDetector) workDone(int)              { d.c.Done() }
func (d *creditDetector) idle(int)                  {}
func (d *creditDetector) busy(int)                  {}
func (d *creditDetector) quiesced() <-chan struct{} { return d.c.Quiesced() }
func (d *creditDetector) stop()                     {}

// countingDetector adapts termdetect.Counting with a polling coordinator.
type countingDetector struct {
	c    *termdetect.Counting
	done chan struct{}
	quit chan struct{}
}

func newCountingDetector(n int, poll time.Duration, sink obs.EventSink) *countingDetector {
	d := &countingDetector{
		c:    termdetect.NewCounting(n),
		done: make(chan struct{}),
		quit: make(chan struct{}),
	}
	go func() {
		tick := time.NewTicker(poll)
		defer tick.Stop()
		probe := 0
		for {
			select {
			case <-tick.C:
				ok := d.c.Check()
				if sink != nil {
					sink.TermProbe("counting", probe, ok)
				}
				probe++
				if ok {
					close(d.done)
					return
				}
			case <-d.quit:
				return
			}
		}
	}()
	return d
}

func (d *countingDetector) beforeSend(from int)       { d.c.Sent(from) }
func (d *countingDetector) afterReceive(w, _ int)     { d.c.Received(w) }
func (d *countingDetector) workDone(int)              {}
func (d *countingDetector) idle(w int)                { d.c.SetIdle(w, true) }
func (d *countingDetector) busy(w int)                { d.c.SetIdle(w, false) }
func (d *countingDetector) quiesced() <-chan struct{} { return d.done }
func (d *countingDetector) stop()                     { close(d.quit) }

// dsDetector adapts termdetect.DijkstraScholten.
type dsDetector struct{ d *termdetect.DijkstraScholten }

func newDSDetector(n int) *dsDetector {
	return &dsDetector{d: termdetect.NewDijkstraScholten(n)}
}

func (d *dsDetector) beforeSend(from int)       { d.d.MessageSent(from) }
func (d *dsDetector) afterReceive(w, from int)  { d.d.MessageReceived(w, from) }
func (d *dsDetector) workDone(int)              {}
func (d *dsDetector) idle(w int)                { d.d.SetPassive(w) }
func (d *dsDetector) busy(w int)                { d.d.SetActive(w) }
func (d *dsDetector) quiesced() <-chan struct{} { return d.d.Quiesced() }
func (d *dsDetector) stop()                     {}

// PrepareEDB merges the program's embedded facts with the caller's base
// relations into the global EDB that nodes fragment, validating that no
// ground tuples were supplied for derived predicates. The input store is
// not modified.
func PrepareEDB(p *Program, edb relation.Store) (relation.Store, error) {
	global := relation.Store{}
	for pred, ar := range p.EDB {
		global.Get(pred, ar)
	}
	for pred, r := range edb {
		// The caller's store is user data: reject an arity clash with the
		// program's declared relations instead of panicking.
		dst, err := global.GetChecked(pred, r.Arity())
		if err != nil {
			return nil, fmt.Errorf("parallel: EDB %w", err)
		}
		for i := 0; i < r.Len(); i++ {
			dst.Insert(r.Row(i))
		}
	}
	for pred, tuples := range p.facts {
		global.InsertAll(pred, tuples)
	}
	for pred := range p.IDB {
		if r, ok := global[pred]; ok && r.Len() > 0 {
			return nil, fmt.Errorf("parallel: input provides ground tuples for derived predicate %s; seed them through a base relation and an exit rule instead", pred)
		}
	}
	return global, nil
}

// Placements computes the per-predicate base-relation layout the program
// induces over the prepared global EDB.
func Placements(p *Program, global relation.Store) map[string]hashpart.Placement {
	return makePlacements(p, global)
}

// Run executes the compiled program over the given base relations and pools
// the results. The EDB store is not modified.
func Run(p *Program, edb relation.Store, cfg RunConfig) (*Result, error) {
	n := p.Procs.Len()
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 100 * time.Microsecond
	}

	global, err := PrepareEDB(p, edb)
	if err != nil {
		return nil, err
	}

	// Distribute the EDB: each worker materializes the union of the
	// fragments its rules need (the paper's b_k^i / D_in^i).
	workers := make([]*worker, n)
	placements := makePlacements(p, global)
	for wi := 0; wi < n; wi++ {
		workers[wi] = newWorker(p, wi, global)
		workers[wi].node.SetSink(cfg.Sink)
		workers[wi].node.Replan(cfg.Planner)
		if cfg.Profile {
			workers[wi].node.EnableProfile()
		}
	}

	if cfg.Sink != nil {
		cfg.Sink.RunStart("parallel", p.Procs.IDs())
	}

	var det detector
	switch cfg.Mode {
	case TermCounting:
		det = newCountingDetector(n, cfg.PollInterval, cfg.Sink)
	case TermDijkstraScholten:
		det = newDSDetector(n)
	default:
		det = newCreditDetector(n)
	}

	start := time.Now()
	var wg sync.WaitGroup
	for wi := 0; wi < n; wi++ {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			w.run(workers, det, cfg)
		}(workers[wi])
	}
	wg.Wait()
	det.stop()
	wall := time.Since(start)
	if cfg.Sink != nil {
		cfg.Sink.RunEnd(wall)
	}
	if cfg.Ctx != nil {
		if err := cfg.Ctx.Err(); err != nil {
			return nil, err
		}
	}

	// Final pooling: union each derived predicate across processors.
	out := relation.Store{}
	stats := &Stats{
		Edges:      make(map[[2]int]*EdgeStats),
		Placements: placements,
		Wall:       wall,
	}
	for pred, ar := range p.IDB {
		out.Get(pred, ar)
	}
	var prof *seminaive.Profile
	if cfg.Profile {
		prof = &seminaive.Profile{Engine: "parallel", WallNs: wall.Nanoseconds()}
	}
	var forbidden int64
	for _, w := range workers {
		for pred, rel := range w.node.Outputs() {
			dst := out.Get(pred, rel.Arity())
			for i := 0; i < rel.Len(); i++ {
				dst.Insert(rel.Row(i))
			}
		}
		if prof != nil {
			prof.AddRules(w.node.Profile())
		}
		stats.Procs = append(stats.Procs, w.node.Stats())
		for e, es := range w.edges {
			key := [2]int{p.Procs.IDs()[e[0]], p.Procs.IDs()[e[1]]}
			if prev, ok := stats.Edges[key]; ok {
				prev.Messages += es.Messages
				prev.Tuples += es.Tuples
			} else {
				cp := *es
				stats.Edges[key] = &cp
			}
		}
		forbidden += w.forbidden
	}
	stats.ForbiddenSends = forbidden
	if forbidden > 0 {
		return &Result{Output: out, Stats: stats, Profile: prof},
			fmt.Errorf("parallel: topology suppressed %d tuple sends — the given network cannot execute this scheme", forbidden)
	}
	return &Result{Output: out, Stats: stats, Profile: prof}, nil
}

// makePlacements computes per-predicate placement statistics by replaying
// the same fragmentation the workers perform.
func makePlacements(p *Program, global relation.Store) map[string]hashpart.Placement {
	placements := make(map[string]hashpart.Placement, len(p.EDB))
	for pred := range p.EDB {
		pl := hashpart.Placement{Pred: pred, Partitioned: true, TuplesPerProc: make([]int, p.Procs.Len())}
		for wi, procID := range p.Procs.IDs() {
			frag := fragmentFor(p, pred, wi, procID, global)
			pl.TuplesPerProc[wi] = frag.Len()
		}
		// Partitioned iff the total equals at most the relation size.
		total := 0
		for _, c := range pl.TuplesPerProc {
			total += c
		}
		pl.Partitioned = total <= global[pred].Len()
		placements[pred] = pl
	}
	return placements
}

// fragmentFor materializes the union of EDB subsets worker wi needs of pred.
func fragmentFor(p *Program, pred string, wi, procID int, global relation.Store) *relation.Relation {
	src := global[pred]
	frag := relation.New(src.Arity())
	for _, need := range p.needs {
		if need.pred != pred {
			continue
		}
		if need.seq == nil || need.hFor == nil {
			for i := 0; i < src.Len(); i++ {
				frag.Insert(src.Row(i))
			}
			continue
		}
		pos, ok := hashpart.SeqPositions(need.pattern, need.seq)
		if !ok {
			for i := 0; i < src.Len(); i++ {
				frag.Insert(src.Row(i))
			}
			continue
		}
		h := need.hFor(procID)
		vals := make([]ast.Value, len(pos))
		for i := 0; i < src.Len(); i++ {
			t := src.Row(i)
			if !hashpart.MatchesPattern(need.pattern, t) {
				continue
			}
			for k, c := range pos {
				vals[k] = t[c]
			}
			if h.Apply(vals) == procID {
				frag.Insert(t)
			}
		}
	}
	return frag
}

// worker is the in-process transport around a Node: an unbounded mailbox,
// termination-detector instrumentation, topology enforcement, batching and
// chaos injection.
type worker struct {
	node      *Node
	wi        int
	procID    int
	inbox     *mailbox
	forbidden int64
	jitter    uint64 // xorshift state for ChaosJitter
	edges     map[[2]int]*EdgeStats
}

func newWorker(p *Program, wi int, global relation.Store) *worker {
	return &worker{
		node:   NewNode(p, wi, global),
		wi:     wi,
		procID: p.Procs.IDs()[wi],
		inbox:  newMailbox(),
		jitter: uint64(wi)*0x9e3779b97f4a7c15 + 1,
		edges:  make(map[[2]int]*EdgeStats),
	}
}

// run is the worker main loop: initialization, then receive/process until
// global termination.
func (w *worker) run(workers []*worker, det detector, cfg RunConfig) {
	emit := w.emitFunc(workers, det, cfg)
	sink := w.node.Sink()
	var cancelled <-chan struct{} // nil (never ready) without a Ctx
	if cfg.Ctx != nil {
		cancelled = cfg.Ctx.Done()
	}
	if sink != nil {
		sink.WorkerBusy(w.procID)
	}
	begin := time.Now()
	w.node.Init(emit)
	w.node.RecordBusy(time.Since(begin))
	det.workDone(w.wi) // retire the initialization unit
	if sink != nil {
		sink.WorkerIdle(w.procID)
	}
	det.idle(w.wi)

	for {
		select {
		case <-w.inbox.notify:
			det.busy(w.wi)
			if sink != nil {
				sink.WorkerBusy(w.procID)
			}
			begin = time.Now()
			msgs := w.inbox.takeAll()
			for _, m := range msgs {
				det.afterReceive(w.wi, m.from)
				w.node.Accept(m.from, m.pred, m.tuples)
			}
			w.node.Drain(emit)
			w.node.RecordBusy(time.Since(begin))
			for range msgs {
				det.workDone(w.wi)
			}
			if sink != nil {
				sink.WorkerIdle(w.procID)
			}
			det.idle(w.wi)
		case <-det.quiesced():
			return
		case <-cancelled:
			return
		}
	}
}

// emitFunc builds the transport-side send path: topology enforcement,
// optional batch splitting and chaos, per-edge accounting, detector
// instrumentation, mailbox delivery.
func (w *worker) emitFunc(workers []*worker, det detector, cfg RunConfig) EmitFunc {
	return func(wi int, pred string, tuples []relation.Tuple) {
		toProc := w.node.prog.Procs.IDs()[wi]
		if !cfg.Topology.Allowed(w.procID, toProc) {
			w.forbidden += int64(len(tuples))
			return
		}
		for len(tuples) > 0 {
			batch := tuples
			if cfg.MaxBatch > 0 && len(batch) > cfg.MaxBatch {
				batch = tuples[:cfg.MaxBatch]
			}
			tuples = tuples[len(batch):]
			sends := 1
			if cfg.ChaosDuplicate {
				sends = 2
			}
			for s := 0; s < sends; s++ {
				if cfg.ChaosJitter > 0 {
					w.jitter ^= w.jitter << 13
					w.jitter ^= w.jitter >> 7
					w.jitter ^= w.jitter << 17
					time.Sleep(time.Duration(w.jitter % uint64(cfg.ChaosJitter)))
				}
				w.node.RecordSent(len(batch))
				e := [2]int{w.wi, wi}
				es := w.edges[e]
				if es == nil {
					es = &EdgeStats{}
					w.edges[e] = es
				}
				es.Messages++
				es.Tuples += int64(len(batch))
				if sink := w.node.Sink(); sink != nil {
					sink.MessageSent(w.procID, toProc, pred, len(batch))
				}
				det.beforeSend(w.wi)
				workers[wi].inbox.push(message{from: w.wi, pred: pred, tuples: batch})
			}
		}
	}
}
