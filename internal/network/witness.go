package network

import (
	"fmt"
	"math/rand"

	"parlog/internal/analysis"
	"parlog/internal/ast"
	"parlog/internal/hashpart"
	"parlog/internal/parallel"
	"parlog/internal/relation"
	"parlog/internal/rewrite"
)

// FuncFromBits lifts a bit-level BitFunc to a runtime discriminating
// function: h(a_1,…,a_k) = F(g(a_1),…,g(a_k)). Executions with this h are
// exactly the ones the Derive analysis reasons about, which is what lets the
// witness search compare predictions with real channel usage.
func FuncFromBits(name string, f BitFunc, g hashpart.G) hashpart.Func {
	return bitsFunc{name: name, f: f, g: g}
}

type bitsFunc struct {
	name string
	f    BitFunc
	g    hashpart.G
}

// Name implements hashpart.Func.
func (b bitsFunc) Name() string { return b.name }

// Apply implements hashpart.Func.
func (b bitsFunc) Apply(vals []ast.Value) int {
	bits := make([]int, len(vals))
	for i, v := range vals {
		bits[i] = b.g(v)
	}
	return b.f(bits)
}

// WitnessReport is the outcome of an empirical minimality check.
type WitnessReport struct {
	// Witnessed maps each derived cross edge to whether some database made
	// the execution use it (the minimality direction).
	Witnessed map[[2]int]bool
	// Violations lists channel uses not predicted by the derivation (the
	// soundness direction) — must be empty.
	Violations [][2]int
	// Trials is the number of databases executed.
	Trials int
}

// AllWitnessed reports whether every derived cross edge was exercised.
func (w *WitnessReport) AllWitnessed() bool {
	for _, ok := range w.Witnessed {
		if !ok {
			return false
		}
	}
	return true
}

// FindWitnesses executes the sirup under spec on random small databases and
// compares actual channel usage against the derivation d: every used cross
// channel must be predicted (soundness of Section 5's data-independence
// claim), and the search tries to exhibit a witness database for every
// predicted cross edge (the minimality claim). spec.H must be the lifted
// version (FuncFromBits) of the F handed to Derive, likewise spec.HP for F′.
func FindWitnesses(s *analysis.Sirup, d *Derivation, spec rewrite.SirupSpec, trials, pool int, seed int64) (*WitnessReport, error) {
	prog, err := parallel.BuildQ(s, spec)
	if err != nil {
		return nil, err
	}
	report := &WitnessReport{Witnessed: make(map[[2]int]bool)}
	for _, e := range d.CrossEdges() {
		report.Witnessed[e] = false
	}
	arities := s.Program.Arities()
	idb := map[string]bool{s.T: true}
	rng := rand.New(rand.NewSource(seed))

	for trial := 0; trial < trials; trial++ {
		report.Trials++
		edb := relation.Store{}
		for pred, ar := range arities {
			if idb[pred] {
				continue
			}
			rel := edb.Get(pred, ar)
			n := 1 + rng.Intn(pool*2)
			for k := 0; k < n; k++ {
				t := make(relation.Tuple, ar)
				for c := range t {
					t[c] = ast.Value(rng.Intn(pool))
				}
				rel.Insert(t)
			}
		}
		res, err := parallel.Run(prog, edb, parallel.RunConfig{})
		if err != nil {
			return nil, fmt.Errorf("trial %d: %w", trial, err)
		}
		for _, e := range res.Stats.UsedEdges() {
			if _, predicted := report.Witnessed[e]; !predicted {
				if !d.HasEdge(e[0], e[1]) {
					report.Violations = append(report.Violations, e)
				}
				continue
			}
			report.Witnessed[e] = true
		}
	}
	return report, nil
}
