// Package network implements Section 5 of the paper: dataflow graphs
// (Definition 2, Figures 1–2), the Theorem 3 construction of
// communication-free schemes from dataflow cycles, and the compile-time
// derivation of the minimal network graph (Figures 3–4) by solving the
// paper's constraint systems over bit-valued g functions — including the
// linear-equation formulation of Example 7.
package network

import (
	"fmt"
	"sort"
	"strings"

	"parlog/internal/analysis"
	"parlog/internal/hashpart"
	"parlog/internal/rewrite"
)

// Dataflow is the dataflow graph of a linear recursive rule (Definition 2):
// argument positions are 1-based; an edge i→j exists when the variable at
// position i of the recursive body atom reappears at position j of the head.
type Dataflow struct {
	// Arity is the number of argument positions of the recursive predicate.
	Arity int
	// Succ maps each position to its sorted successor positions.
	Succ map[int][]int
}

// NewDataflow builds the dataflow graph of the sirup's recursive rule.
func NewDataflow(s *analysis.Sirup) *Dataflow {
	g := &Dataflow{Arity: len(s.HeadVars), Succ: make(map[int][]int)}
	for i, y := range s.BodyVars {
		for j, x := range s.HeadVars {
			if y == x {
				g.Succ[i+1] = append(g.Succ[i+1], j+1)
			}
		}
	}
	for i := range g.Succ {
		sort.Ints(g.Succ[i])
	}
	return g
}

// Edges returns the edge list sorted by (from, to).
func (g *Dataflow) Edges() [][2]int {
	var out [][2]int
	for i, succ := range g.Succ {
		for _, j := range succ {
			out = append(out, [2]int{i, j})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a][0] != out[b][0] {
			return out[a][0] < out[b][0]
		}
		return out[a][1] < out[b][1]
	})
	return out
}

// HasEdge reports whether i→j is in the graph.
func (g *Dataflow) HasEdge(i, j int) bool {
	for _, k := range g.Succ[i] {
		if k == j {
			return true
		}
	}
	return false
}

// Cycle returns the positions of one directed cycle (in traversal order), or
// nil if the graph is acyclic. A self-loop yields a single-element cycle.
func (g *Dataflow) Cycle() []int {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[int]int)
	parent := make(map[int]int)
	var cycle []int
	var dfs func(u int) bool
	dfs = func(u int) bool {
		color[u] = gray
		for _, v := range g.Succ[u] {
			switch color[v] {
			case white:
				parent[v] = u
				if dfs(v) {
					return true
				}
			case gray:
				// Found a back edge u→v: reconstruct v … u.
				cycle = []int{v}
				for w := u; w != v; w = parent[w] {
					cycle = append(cycle, w)
				}
				// cycle currently v, u, …, successor(v): reverse the tail so
				// the order follows the edges.
				for a, b := 1, len(cycle)-1; a < b; a, b = a+1, b-1 {
					cycle[a], cycle[b] = cycle[b], cycle[a]
				}
				return true
			}
		}
		color[u] = black
		return false
	}
	nodes := make([]int, 0, len(g.Succ))
	for u := range g.Succ {
		nodes = append(nodes, u)
	}
	sort.Ints(nodes)
	for _, u := range nodes {
		if color[u] == white && dfs(u) {
			return cycle
		}
	}
	return nil
}

// String renders the graph in the paper's figure style: a simple path or
// cycle prints as "1 → 2 → 3"; anything else prints as a sorted edge list.
func (g *Dataflow) String() string {
	edges := g.Edges()
	if len(edges) == 0 {
		return "(empty)"
	}
	// Try to render as a single chain: each node has ≤1 successor and ≤1
	// predecessor.
	outDeg := map[int]int{}
	inDeg := map[int]int{}
	for _, e := range edges {
		outDeg[e[0]]++
		inDeg[e[1]]++
	}
	chainable := true
	for _, e := range edges {
		if outDeg[e[0]] > 1 || inDeg[e[1]] > 1 {
			chainable = false
		}
	}
	if chainable {
		// Find the start: a node with no predecessor (or any node on a pure
		// cycle).
		start := -1
		for _, e := range edges {
			if inDeg[e[0]] == 0 {
				start = e[0]
				break
			}
		}
		if start < 0 {
			start = edges[0][0]
		}
		var parts []string
		parts = append(parts, fmt.Sprintf("%d", start))
		cur := start
		for range edges {
			succ := g.Succ[cur]
			if len(succ) == 0 {
				break
			}
			cur = succ[0]
			parts = append(parts, fmt.Sprintf("%d", cur))
			if cur == start {
				break
			}
		}
		return strings.Join(parts, " → ")
	}
	var parts []string
	for _, e := range edges {
		parts = append(parts, fmt.Sprintf("%d→%d", e[0], e[1]))
	}
	return strings.Join(parts, ", ")
}

// CommFree implements Theorem 3 constructively: if the dataflow graph has a
// cycle, it returns a SirupSpec (discriminating sequences and a
// permutation-invariant hash) whose parallel execution provably never
// communicates between distinct processors. The recipe: take v(r) to be the
// recursive body atom's variables at the cycle positions, v(e) the exit
// head's variables at the same positions, and h = h' a symmetric hash —
// along the cycle, producer and consumer values are cyclic permutations of
// each other, so both hash to the same processor.
func CommFree(s *analysis.Sirup, procs *hashpart.ProcSet) (*rewrite.SirupSpec, error) {
	g := NewDataflow(s)
	cyc := g.Cycle()
	if cyc == nil {
		return nil, fmt.Errorf("network: dataflow graph %s has no cycle; Theorem 3 does not apply", g)
	}
	n := procs.Len()
	ids := procs.IDs()
	for k, id := range ids {
		if id != k {
			return nil, fmt.Errorf("network: CommFree requires processors {0..N-1}, got %v", ids)
		}
	}
	vr := make([]string, 0, len(cyc))
	ve := make([]string, 0, len(cyc))
	for _, pos := range cyc {
		vr = append(vr, s.BodyVars[pos-1])
		ve = append(ve, s.ExitVars[pos-1])
	}
	h := hashpart.SymHash{N: n}
	return &rewrite.SirupSpec{Procs: procs, VR: vr, VE: ve, H: h, HP: h}, nil
}
