package network

import (
	"strings"
	"testing"

	"parlog/internal/hashpart"
)

// The ancestor program with the Theorem 3 choice v(r)=v(e)=⟨Y⟩ derives a
// self-loop-only network: the audit must pass traffic-free and diagonal
// matrices and flag any cross-processor tuple movement.
func TestAuditCommFreeGraph(t *testing.T) {
	s := mustSirup(t, `
anc(X, Y) :- par(X, Y).
anc(X, Y) :- par(X, Z), anc(Z, Y).
`)
	d, err := Derive(s, []string{"Y"}, []string{"Y"}, BitVectorF(2), BitVectorF(2), hashpart.RangeProcs(4))
	if err != nil {
		t.Fatal(err)
	}
	if n := len(d.CrossEdges()); n != 0 {
		t.Fatalf("comm-free choice predicted %d cross edges: %v", n, d.CrossEdges())
	}

	// Self-loops and zero-tuple defensive batches are not violations.
	rep := d.Audit([]ObservedEdge{
		{From: 1, To: 1, Messages: 3, Tuples: 9},
		{From: 0, To: 2, Messages: 4, Tuples: 0},
	})
	if !rep.OK() || len(rep.Observed) != 0 {
		t.Fatalf("clean run flagged: %+v", rep)
	}
	if rep.Utilization() != 1.0 {
		t.Fatalf("utilization of an edgeless graph = %v, want 1", rep.Utilization())
	}

	// One real cross-processor tuple is a violation.
	rep = d.Audit([]ObservedEdge{{From: 0, To: 2, Messages: 1, Tuples: 5}})
	if rep.OK() || len(rep.Violations) != 1 || rep.Violations[0].Tuples != 5 {
		t.Fatalf("misrouted tuple not flagged: %+v", rep)
	}
	if !strings.Contains(rep.String(), "VIOLATION") || !strings.Contains(rep.String(), "t_{0,2}=5") {
		t.Fatalf("report text: %s", rep)
	}
}

// A graph with genuine cross edges: predicted traffic passes, utilization
// counts distinct exercised edges, and unpredicted channels still fail.
func TestAuditGeneralGraph(t *testing.T) {
	// p(X,Y) :- p(Y,X), r(X,Y) with v(r)=v(e)=⟨X⟩: the recursive swap
	// moves tuples between processors, so the derived graph must contain
	// cross edges.
	s := mustSirup(t, `
p(X, Y) :- q(X, Y).
p(X, Y) :- p(Y, X), r(X, Y).
`)
	d, err := Derive(s, []string{"X"}, []string{"X"}, BitVectorF(2), BitVectorF(2), hashpart.RangeProcs(4))
	if err != nil {
		t.Fatal(err)
	}
	cross := d.CrossEdges()
	if len(cross) == 0 {
		t.Fatal("expected cross edges for the swapping cycle")
	}
	e := cross[0]
	rep := d.Audit([]ObservedEdge{
		{From: e[0], To: e[1], Messages: 2, Tuples: 4}, // predicted
		{From: e[0], To: e[1], Messages: 1, Tuples: 1}, // same channel again: one edge used
	})
	if !rep.OK() {
		t.Fatalf("predicted edge flagged: %+v", rep)
	}
	if rep.UsedPredicted != 1 || rep.PredictedCross != len(cross) {
		t.Fatalf("utilization accounting: %+v", rep)
	}
	want := 1.0 / float64(len(cross))
	if rep.Utilization() != want {
		t.Fatalf("utilization = %v, want %v", rep.Utilization(), want)
	}

	// An edge outside the predicted set is still a violation, even in a
	// graph that has some cross edges.
	bad := [2]int{-1, -1}
	for i := 0; i < 4 && bad[0] < 0; i++ {
		for j := 0; j < 4; j++ {
			if i != j && !d.HasEdge(i, j) {
				bad = [2]int{i, j}
				break
			}
		}
	}
	if bad[0] >= 0 {
		rep = d.Audit([]ObservedEdge{{From: bad[0], To: bad[1], Messages: 1, Tuples: 2}})
		if rep.OK() {
			t.Fatalf("unpredicted edge %v passed the audit", bad)
		}
	}
}
