package network

import (
	"errors"
	"fmt"
	"sort"
)

// ErrNotTransferable reports a candidate repartitioning that would change
// the least model — the typed rejection the coordinator's rebalancer turns
// into an obs event instead of a migration.
var ErrNotTransferable = errors.New("network: repartition is not transferable")

// Candidate is a proposed repartitioning of hash buckets onto physical
// workers: Owner[b] names the worker that would host bucket b, and Relabel
// (nil for identity) is a proposed renaming of bucket ids, i.e. tuples that
// hashed to bucket b would be processed under bucket Relabel[b]'s
// discriminating constraints. Plain ownership moves keep Relabel nil — they
// change where a bucket's rules run, never which tuples the rules see.
type Candidate struct {
	Buckets int
	Workers int
	Owner   []int
	Relabel []int
}

// Transfer is the proof object of a successful transferability check: the
// worker-level communication edges the candidate induces from the derived
// bucket-level network graph. A scheduler can use it to prefer moves that
// shrink the physical network.
type Transfer struct {
	// CrossEdges are the worker pairs (i, j), i ≠ j, that some database
	// could make communicate under the candidate map, derived by collapsing
	// the bucket-level Derivation edges through Owner. Sorted, deduplicated.
	CrossEdges [][2]int
}

// CheckTransferable decides whether applying the candidate preserves the
// least model, following the parallel-correctness/transferability line of
// Ameloot et al.: a repartitioning is safe when every rule still sees the
// same ground instances it saw before. Ownership moves are always safe for
// hash-distributed sirups — the discriminating function is unchanged, only
// the host of a bucket's node changes, and the send-log replay reinstalls
// the exact bucket state. What is NOT safe is relabelling a bucket whose
// rules carry restriction-set constraints (the compiled h_i(seq)=i guards):
// those rules fire only on instances the constraint admits, so renaming the
// bucket without recompiling the program drops or duplicates firings.
// pinned[b] marks such buckets; a candidate relabelling a pinned bucket is
// rejected with ErrNotTransferable.
//
// When d is non-nil, the bucket-level network derivation is collapsed
// through the candidate's Owner map into worker-level cross edges, returned
// in the Transfer. d.Procs must enumerate exactly the candidate's buckets
// (position k of d.Procs.IDs() is bucket k); a mismatched derivation is
// rejected — validating a move against the wrong program's network graph
// proves nothing.
func CheckTransferable(c Candidate, pinned []bool, d *Derivation) (*Transfer, error) {
	if c.Buckets <= 0 || c.Workers <= 0 {
		return nil, fmt.Errorf("%w: %d buckets on %d workers", ErrNotTransferable, c.Buckets, c.Workers)
	}
	if len(c.Owner) != c.Buckets {
		return nil, fmt.Errorf("%w: owner map covers %d of %d buckets", ErrNotTransferable, len(c.Owner), c.Buckets)
	}
	for b, w := range c.Owner {
		if w < 0 || w >= c.Workers {
			return nil, fmt.Errorf("%w: bucket %d assigned to worker %d outside [0,%d)", ErrNotTransferable, b, w, c.Workers)
		}
	}
	if c.Relabel != nil {
		if len(c.Relabel) != c.Buckets {
			return nil, fmt.Errorf("%w: relabel map covers %d of %d buckets", ErrNotTransferable, len(c.Relabel), c.Buckets)
		}
		seen := make([]bool, c.Buckets)
		for b, nb := range c.Relabel {
			if nb < 0 || nb >= c.Buckets || seen[nb] {
				return nil, fmt.Errorf("%w: relabel is not a permutation (bucket %d → %d)", ErrNotTransferable, b, nb)
			}
			seen[nb] = true
		}
		for b, nb := range c.Relabel {
			if nb != b && b < len(pinned) && pinned[b] {
				return nil, fmt.Errorf("%w: bucket %d carries restriction-set constraints (h_i(seq)=i) and cannot be relabelled to %d without recompiling", ErrNotTransferable, b, nb)
			}
			if nb != b && nb < len(pinned) && pinned[nb] {
				return nil, fmt.Errorf("%w: bucket %d carries restriction-set constraints (h_i(seq)=i) and cannot adopt bucket %d's tuples without recompiling", ErrNotTransferable, nb, b)
			}
		}
	}

	t := &Transfer{}
	if d == nil {
		return t, nil
	}
	ids := d.Procs.IDs()
	if len(ids) != c.Buckets {
		return nil, fmt.Errorf("%w: derivation covers %d processors, candidate has %d buckets", ErrNotTransferable, len(ids), c.Buckets)
	}
	pos := make(map[int]int, len(ids))
	for k, id := range ids {
		pos[id] = k
	}
	cross := map[[2]int]bool{}
	for _, e := range d.Edges {
		pi, ok := pos[e[0]]
		if !ok {
			return nil, fmt.Errorf("%w: derived edge names unknown processor %d", ErrNotTransferable, e[0])
		}
		pj, ok := pos[e[1]]
		if !ok {
			return nil, fmt.Errorf("%w: derived edge names unknown processor %d", ErrNotTransferable, e[1])
		}
		wi, wj := c.Owner[pi], c.Owner[pj]
		if wi != wj {
			cross[[2]int{wi, wj}] = true
		}
	}
	for e := range cross {
		t.CrossEdges = append(t.CrossEdges, e)
	}
	sort.Slice(t.CrossEdges, func(a, b int) bool {
		if t.CrossEdges[a][0] != t.CrossEdges[b][0] {
			return t.CrossEdges[a][0] < t.CrossEdges[b][0]
		}
		return t.CrossEdges[a][1] < t.CrossEdges[b][1]
	})
	return t, nil
}
