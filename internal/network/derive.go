package network

import (
	"fmt"
	"sort"

	"parlog/internal/analysis"
	"parlog/internal/hashpart"
)

// BitFunc is a discriminating function expressed at the level of g-values:
// it maps the bit vector (g(a_1), …, g(a_k)) of a ground instance of the
// discriminating sequence to a processor id. Section 5 derives network
// graphs by solving constraint systems over these bits, so the derivation
// never looks at actual data.
type BitFunc func(bits []int) int

// BitVectorF is Example 6's h at the bit level: the k bits read MSB-first as
// an integer, matching hashpart.BitVector.
func BitVectorF(k int) BitFunc {
	return func(bits []int) int {
		id := 0
		for _, b := range bits {
			id = id<<1 | (b & 1)
		}
		return id
	}
}

// LinearF is Example 7's h at the bit level: Σ coefs[i]·bit[i], matching
// hashpart.Linear.
func LinearF(coefs []int) BitFunc {
	return func(bits []int) int {
		s := 0
		for i, b := range bits {
			s += coefs[i] * b
		}
		return s
	}
}

// Derivation is a derived network graph: the set of processor pairs (i, j)
// such that some database could make processor i send a tuple to processor
// j. Everything outside Edges is guaranteed channel-free for every input —
// the data-independence property of Section 5.
type Derivation struct {
	Procs *hashpart.ProcSet
	// Edges holds the permissible communication pairs, sorted, including
	// self-pairs (which need no physical link).
	Edges [][2]int
	// Broadcast reports that some v(r) variable does not occur in Ȳ, so
	// the sending rules carry no checkable constraint and every producer
	// ships every tuple to every processor (the paper's Example 2). The
	// graph then pairs each feasible producer with the full processor
	// set — the network the scheme physically needs, not the tighter
	// consumption pattern a filtering transport could achieve.
	Broadcast bool
	edges     map[[2]int]bool
}

// HasEdge reports whether i→j is permissible.
func (d *Derivation) HasEdge(i, j int) bool { return d.edges[[2]int{i, j}] }

// CrossEdges returns the edges with i ≠ j — the physical links the network
// needs.
func (d *Derivation) CrossEdges() [][2]int {
	var out [][2]int
	for _, e := range d.Edges {
		if e[0] != e[1] {
			out = append(out, e)
		}
	}
	return out
}

// String renders the network as a sorted adjacency list.
func (d *Derivation) String() string {
	adj := make(map[int][]int)
	for _, e := range d.Edges {
		adj[e[0]] = append(adj[e[0]], e[1])
	}
	keys := make([]int, 0, len(adj))
	for k := range adj {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := ""
	for _, k := range keys {
		out += fmt.Sprintf("%d → %v\n", k, adj[k])
	}
	return out
}

// Derive computes the network graph of a linear sirup under discriminating
// sequences vr (recursive rule) and ve (exit rule) and bit-level functions F
// and F′, with g ranging over {0,1}. It enumerates every boolean assignment
// of the g-values of the producing rule instance (plus free bits for
// consumer-side discriminating variables that do not occur in Ȳ) and records
// the producer→consumer processor pair of each solution — exactly the
// system of equations of Example 7, solved by exhaustion. Only pairs whose
// ids lie in procs are kept.
func Derive(s *analysis.Sirup, vr, ve []string, F, Fp BitFunc, procs *hashpart.ProcSet) (*Derivation, error) {
	return DeriveRadix(s, vr, ve, F, Fp, procs, 2)
}

// DeriveRadix generalizes Derive to g functions with range {0,…,radix−1} —
// the paper fixes radix 2 in its examples, but nothing in the analysis
// depends on it; larger ranges give finer processor sets at exponentially
// larger (still compile-time) solving cost.
func DeriveRadix(s *analysis.Sirup, vr, ve []string, F, Fp BitFunc, procs *hashpart.ProcSet, radix int) (*Derivation, error) {
	if len(vr) == 0 || len(ve) == 0 {
		return nil, fmt.Errorf("network: empty discriminating sequence")
	}
	if radix < 2 {
		return nil, fmt.Errorf("network: radix %d < 2", radix)
	}
	d := &Derivation{Procs: procs, edges: make(map[[2]int]bool)}

	// posInY[v] is the position of discriminating variable v within Ȳ, or −1
	// when the consumer's value for v is unconstrained by the arriving tuple.
	// Any −1 makes the sending constraint h(v(r)) = j uncheckable at the
	// producer, which turns the scheme into a broadcast: the producer ships
	// every tuple to every processor, so the derived graph must pair each
	// feasible producer with the whole processor set.
	posInY := make([]int, len(vr))
	for k, v := range vr {
		posInY[k] = -1
		for l, y := range s.BodyVars {
			if y == v {
				posInY[k] = l
				break
			}
		}
		if posInY[k] < 0 {
			d.Broadcast = true
		}
	}

	// If Ȳ repeats a variable at positions l1 and l2, only tuples with equal
	// components there are ever consumed; at the bit level this forces the
	// produced head's g-values at l1 and l2 to agree.
	var eqPairs [][2]int
	for l1 := range s.BodyVars {
		for l2 := l1 + 1; l2 < len(s.BodyVars); l2++ {
			if s.BodyVars[l1] == s.BodyVars[l2] {
				eqPairs = append(eqPairs, [2]int{l1, l2})
			}
		}
	}

	var derr error
	addCase := func(producerVars []string, prodSeq []string, prodF BitFunc, headVars []string) {
		// Index the producer instance's variables.
		idx := map[string]int{}
		for _, v := range producerVars {
			if _, ok := idx[v]; !ok {
				idx[v] = len(idx)
			}
		}
		// Free bits: consumer discriminating values not determined by the
		// arriving tuple.
		freeBase := len(idx)
		freeCount := 0
		consSrc := make([]int, len(vr)) // bit index supplying consumer value k
		for k := range vr {
			if posInY[k] >= 0 {
				consSrc[k] = idx[headVars[posInY[k]]]
			} else {
				consSrc[k] = freeBase + freeCount
				freeCount++
			}
		}
		total := freeBase + freeCount
		combos := 1
		for k := 0; k < total; k++ {
			if combos > 1<<24/radix {
				derr = fmt.Errorf("network: %d unknowns at radix %d exceed the exhaustive solver's limit", total, radix)
				return
			}
			combos *= radix
		}
		digits := make([]int, total)
		prodBits := make([]int, len(prodSeq))
		consBits := make([]int, len(vr))
	masks:
		for mask := 0; mask < combos; mask++ {
			m := mask
			for k := 0; k < total; k++ {
				digits[k] = m % radix
				m /= radix
			}
			for _, eq := range eqPairs {
				if digits[idx[headVars[eq[0]]]] != digits[idx[headVars[eq[1]]]] {
					continue masks
				}
			}
			for k, v := range prodSeq {
				prodBits[k] = digits[idx[v]]
			}
			i := prodF(prodBits)
			if !procs.Contains(i) {
				continue
			}
			if d.Broadcast {
				for _, j := range procs.IDs() {
					d.edges[[2]int{i, j}] = true
				}
				continue
			}
			for k := range vr {
				consBits[k] = digits[consSrc[k]]
			}
			j := F(consBits)
			if !procs.Contains(j) {
				continue
			}
			d.edges[[2]int{i, j}] = true
		}
	}

	// Case 1: the tuple was produced by the recursive rule. The producer's
	// variables are the recursive rule's; the consumer's value for the
	// discriminating variable at position l of Ȳ is the produced head's
	// value at position l.
	addCase(s.Rec.Vars(), vr, F, s.HeadVars)
	// Case 2: the tuple was produced by the exit rule.
	addCase(s.Exit.Vars(), ve, Fp, s.ExitVars)
	if derr != nil {
		return nil, derr
	}

	for e := range d.edges {
		d.Edges = append(d.Edges, e)
	}
	sort.Slice(d.Edges, func(a, b int) bool {
		if d.Edges[a][0] != d.Edges[b][0] {
			return d.Edges[a][0] < d.Edges[b][0]
		}
		return d.Edges[a][1] < d.Edges[b][1]
	})
	return d, nil
}
