package network

import (
	"errors"
	"testing"

	"parlog/internal/hashpart"
)

func TestCheckTransferableOwnershipMove(t *testing.T) {
	// Plain ownership moves (identity relabel) are always transferable.
	c := Candidate{Buckets: 4, Workers: 2, Owner: []int{0, 1, 1, 0}}
	tr, err := CheckTransferable(c, []bool{true, true, true, true}, nil)
	if err != nil {
		t.Fatalf("ownership move rejected: %v", err)
	}
	if tr == nil {
		t.Fatal("nil transfer on success")
	}
}

func TestCheckTransferableRejectsPinnedRelabel(t *testing.T) {
	c := Candidate{
		Buckets: 4, Workers: 2,
		Owner:   []int{0, 0, 1, 1},
		Relabel: []int{1, 0, 2, 3}, // swap buckets 0 and 1
	}
	_, err := CheckTransferable(c, []bool{true, false, false, false}, nil)
	if !errors.Is(err, ErrNotTransferable) {
		t.Fatalf("pinned relabel: got %v, want ErrNotTransferable", err)
	}
	// The same swap with no pinned buckets passes.
	if _, err := CheckTransferable(c, []bool{false, false, false, false}, nil); err != nil {
		t.Fatalf("unpinned relabel rejected: %v", err)
	}
}

func TestCheckTransferableRejectsMalformed(t *testing.T) {
	cases := []Candidate{
		{Buckets: 0, Workers: 1, Owner: nil},
		{Buckets: 2, Workers: 1, Owner: []int{0}},              // short owner map
		{Buckets: 2, Workers: 1, Owner: []int{0, 1}},           // worker out of range
		{Buckets: 2, Workers: 2, Owner: []int{0, 1}, Relabel: []int{0}},    // short relabel
		{Buckets: 2, Workers: 2, Owner: []int{0, 1}, Relabel: []int{0, 0}}, // not a permutation
	}
	for i, c := range cases {
		if _, err := CheckTransferable(c, nil, nil); !errors.Is(err, ErrNotTransferable) {
			t.Errorf("case %d: got %v, want ErrNotTransferable", i, err)
		}
	}
}

func TestCheckTransferableCollapsesDerivation(t *testing.T) {
	// Ancestor under a bit-vector h over one variable: 2 buckets, derived
	// self-pairs only (the right-linear rule keeps work bucket-local), so
	// any owner map induces zero cross edges.
	s := mustSirup(t, `
anc(X, Y) :- par(X, Y).
anc(X, Y) :- par(X, Z), anc(Z, Y).
`)
	d, err := Derive(s, []string{"Y"}, []string{"Y"}, BitVectorF(1), BitVectorF(1), hashpart.RangeProcs(2))
	if err != nil {
		t.Fatal(err)
	}
	c := Candidate{Buckets: 2, Workers: 2, Owner: []int{0, 1}}
	tr, err := CheckTransferable(c, nil, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.CrossEdges) != 0 {
		t.Errorf("self-pair derivation induced cross edges %v", tr.CrossEdges)
	}

	// A broadcast derivation (discriminating variable X absent from Ȳ)
	// pairs every producer with every bucket; co-hosting all buckets on one
	// worker still kills every cross edge, splitting them recreates it.
	db, err := Derive(s, []string{"X"}, []string{"X"}, BitVectorF(1), BitVectorF(1), hashpart.RangeProcs(2))
	if err != nil {
		t.Fatal(err)
	}
	if !db.Broadcast {
		t.Fatal("expected broadcast derivation for vr=[X]")
	}
	one := Candidate{Buckets: 2, Workers: 2, Owner: []int{1, 1}}
	tr, err = CheckTransferable(one, nil, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.CrossEdges) != 0 {
		t.Errorf("co-hosted buckets still cross: %v", tr.CrossEdges)
	}
	split := Candidate{Buckets: 2, Workers: 2, Owner: []int{0, 1}}
	tr, err = CheckTransferable(split, nil, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.CrossEdges) == 0 {
		t.Error("split broadcast buckets induced no cross edges")
	}

	// A derivation over the wrong processor count proves nothing.
	bad := Candidate{Buckets: 3, Workers: 2, Owner: []int{0, 1, 0}}
	if _, err := CheckTransferable(bad, nil, d); !errors.Is(err, ErrNotTransferable) {
		t.Errorf("mismatched derivation: got %v, want ErrNotTransferable", err)
	}
}
