package network

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"parlog/internal/analysis"
	"parlog/internal/hashpart"
	"parlog/internal/parallel"
	"parlog/internal/parser"
	"parlog/internal/relation"
	"parlog/internal/rewrite"
	"parlog/internal/seminaive"
)

func mustSirup(t *testing.T, src string) *analysis.Sirup {
	t.Helper()
	s, err := analysis.ExtractSirup(parser.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// --- Figures 1 and 2: dataflow graphs ---

// TestFigure1 reproduces Figure 1: the dataflow graph of
// p(U,V,W) :- p(V,W,Z), q(U,Z) is the path 1 → 2 → 3.
func TestFigure1(t *testing.T) {
	s := mustSirup(t, `
p(U, V, W) :- s(U, V, W).
p(U, V, W) :- p(V, W, Z), q(U, Z).
`)
	g := NewDataflow(s)
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 3) {
		t.Errorf("edges = %v, want 1→2 and 2→3", g.Edges())
	}
	if len(g.Edges()) != 2 {
		t.Errorf("extra edges: %v", g.Edges())
	}
	if got := g.String(); got != "1 → 2 → 3" {
		t.Errorf("String() = %q, want \"1 → 2 → 3\"", got)
	}
	if g.Cycle() != nil {
		t.Errorf("acyclic graph reported cycle %v", g.Cycle())
	}
}

// TestFigure2 reproduces Figure 2: the ancestor rule's dataflow graph has
// the self-loop 2 → 2 (variable Y at position 2 of both body atom and head).
func TestFigure2(t *testing.T) {
	s := mustSirup(t, `
anc(X, Y) :- par(X, Y).
anc(X, Y) :- par(X, Z), anc(Z, Y).
`)
	g := NewDataflow(s)
	if !g.HasEdge(2, 2) {
		t.Errorf("edges = %v, want self-loop 2→2", g.Edges())
	}
	if len(g.Edges()) != 1 {
		t.Errorf("extra edges: %v", g.Edges())
	}
	cyc := g.Cycle()
	if len(cyc) != 1 || cyc[0] != 2 {
		t.Errorf("Cycle() = %v, want [2]", cyc)
	}
}

func TestDataflowLongCycle(t *testing.T) {
	// p(X,Y) :- p(Y,X), r(X,Y): 1→2 (Y at pos1 = head pos2), 2→1.
	s := mustSirup(t, `
p(X, Y) :- q(X, Y).
p(X, Y) :- p(Y, X), r(X, Y).
`)
	g := NewDataflow(s)
	cyc := g.Cycle()
	if len(cyc) != 2 {
		t.Fatalf("Cycle() = %v, want a 2-cycle", cyc)
	}
}

func TestDataflowEmpty(t *testing.T) {
	// No body variable reappears in the head position-wise.
	s := mustSirup(t, `
p(X, Y) :- q(X, Y).
p(X, Y) :- p(U, V), r(U, V, X, Y).
`)
	g := NewDataflow(s)
	if len(g.Edges()) != 0 {
		t.Errorf("edges = %v, want none", g.Edges())
	}
	if g.String() != "(empty)" {
		t.Errorf("String() = %q", g.String())
	}
}

// --- Theorem 3 ---

// TestTheorem3Ancestor: the constructive communication-free choice for the
// ancestor program must pick v(r)=⟨Y⟩ (position 2) and incur zero traffic.
func TestTheorem3Ancestor(t *testing.T) {
	src := `
anc(X, Y) :- par(X, Y).
anc(X, Y) :- par(X, Z), anc(Z, Y).
`
	var facts strings.Builder
	rng := rand.New(rand.NewSource(11))
	for k := 0; k < 30; k++ {
		fmt.Fprintf(&facts, "par(v%d, v%d).\n", rng.Intn(12), rng.Intn(12))
	}
	prog := parser.MustParse(src + facts.String())
	s, err := analysis.ExtractSirup(prog)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := CommFree(s, hashpart.RangeProcs(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.VR) != 1 || spec.VR[0] != "Y" {
		t.Errorf("v(r) = %v, want [Y]", spec.VR)
	}
	if len(spec.VE) != 1 || spec.VE[0] != "Y" {
		t.Errorf("v(e) = %v, want [Y]", spec.VE)
	}
	p, err := parallel.BuildQ(s, *spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := parallel.Run(p, relation.Store{}, parallel.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Stats.TotalTuplesSent(); got != 0 {
		t.Errorf("Theorem 3 scheme sent %d tuples, want 0", got)
	}
	seq, _, err := seminaive.Eval(prog, relation.Store{}, seminaive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !seq["anc"].Equal(res.Output["anc"]) {
		t.Error("Theorem 3 scheme produced a different least model")
	}
}

// TestTheorem3LongCycle: a 2-cycle needs the symmetric hash; verify zero
// communication and correctness on p(X,Y) :- p(Y,X), r(X,Y).
func TestTheorem3LongCycle(t *testing.T) {
	var b strings.Builder
	b.WriteString(`
p(X, Y) :- q(X, Y).
p(X, Y) :- p(Y, X), r(X, Y).
`)
	rng := rand.New(rand.NewSource(13))
	for k := 0; k < 15; k++ {
		fmt.Fprintf(&b, "q(c%d, c%d).\n", rng.Intn(8), rng.Intn(8))
		fmt.Fprintf(&b, "r(c%d, c%d).\n", rng.Intn(8), rng.Intn(8))
	}
	prog := parser.MustParse(b.String())
	s, err := analysis.ExtractSirup(prog)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := CommFree(s, hashpart.RangeProcs(3))
	if err != nil {
		t.Fatal(err)
	}
	p, err := parallel.BuildQ(s, *spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := parallel.Run(p, relation.Store{}, parallel.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Stats.TotalTuplesSent(); got != 0 {
		t.Errorf("2-cycle Theorem 3 scheme sent %d tuples, want 0", got)
	}
	seq, _, err := seminaive.Eval(prog, relation.Store{}, seminaive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !seq["p"].Equal(res.Output["p"]) {
		t.Error("least models differ")
	}
}

func TestCommFreeRequiresCycle(t *testing.T) {
	s := mustSirup(t, `
p(U, V, W) :- s(U, V, W).
p(U, V, W) :- p(V, W, Z), q(U, Z).
`)
	if _, err := CommFree(s, hashpart.RangeProcs(2)); err == nil {
		t.Error("CommFree accepted an acyclic dataflow graph")
	}
}

// --- Figure 3: Example 6's network graph ---

var example6Src = `
p(X, Y) :- q(X, Y).
p(X, Y) :- p(Y, Z), r(X, Z).
`

// TestFigure3NetworkGraph derives Example 6's network: with
// h(a,b)=(g(a),g(b)), processor (ab) may send only to (c a) for c ∈ {0,1};
// exit-rule production adds only self-loops.
func TestFigure3NetworkGraph(t *testing.T) {
	s := mustSirup(t, example6Src)
	procs := hashpart.RangeProcs(4) // (00)=0 (01)=1 (10)=2 (11)=3
	d, err := Derive(s, []string{"Y", "Z"}, []string{"X", "Y"}, BitVectorF(2), BitVectorF(2), procs)
	if err != nil {
		t.Fatal(err)
	}
	// From (a,b), destinations are (c,a): encode (ab) as 2a+b.
	want := map[[2]int]bool{}
	for a := 0; a <= 1; a++ {
		for b := 0; b <= 1; b++ {
			for c := 0; c <= 1; c++ {
				want[[2]int{2*a + b, 2*c + a}] = true
			}
		}
	}
	// Exit self-loops.
	for i := 0; i < 4; i++ {
		want[[2]int{i, i}] = true
	}
	for e := range want {
		if !d.HasEdge(e[0], e[1]) {
			t.Errorf("missing predicted edge %v→%v", e[0], e[1])
		}
	}
	for _, e := range d.Edges {
		if !want[e] {
			t.Errorf("unexpected edge %v→%v", e[0], e[1])
		}
	}
	// The paper's explicit claims: (00) never sends to (01) or (11).
	if d.HasEdge(0, 1) || d.HasEdge(0, 3) {
		t.Error("Example 6: (00) must not communicate with (01)/(11)")
	}
	if !d.HasEdge(0, 2) {
		t.Error("Example 6: (00)→(10) must be possible")
	}
}

// --- Figure 4: Example 7's network graph via linear equations ---

func TestFigure4NetworkGraph(t *testing.T) {
	s := mustSirup(t, `
p(U, V, W) :- s(U, V, W).
p(U, V, W) :- p(V, W, Z), q(U, Z).
`)
	procs := hashpart.NewProcSet(-1, 0, 1, 2)
	coefs := []int{1, -1, 1} // h = g(a1) − g(a2) + g(a3)
	d, err := Derive(s, []string{"V", "W", "Z"}, []string{"U", "V", "W"},
		LinearF(coefs), LinearF(coefs), procs)
	if err != nil {
		t.Fatal(err)
	}
	// Solve the paper's system (4)–(5) independently here as the oracle:
	// u = x2−x3+x4, v = x1−x2+x3 over x ∈ {0,1}^4, plus exit self-loops.
	want := map[[2]int]bool{}
	for x := 0; x < 16; x++ {
		x1, x2, x3, x4 := x&1, x>>1&1, x>>2&1, x>>3&1
		u := x2 - x3 + x4
		v := x1 - x2 + x3
		want[[2]int{u, v}] = true
	}
	for _, i := range procs.IDs() {
		want[[2]int{i, i}] = true
	}
	for e := range want {
		if !d.HasEdge(e[0], e[1]) {
			t.Errorf("missing edge %d→%d", e[0], e[1])
		}
	}
	for _, e := range d.Edges {
		if !want[e] {
			t.Errorf("unexpected edge %d→%d", e[0], e[1])
		}
	}
	// The paper's observation: solving (1)+(2) alone (exit production) gives
	// only i=j, so any cross edge must come from recursive production.
	for _, e := range d.CrossEdges() {
		if e[0] == e[1] {
			t.Errorf("CrossEdges returned self-loop %v", e)
		}
	}
}

// --- Soundness + minimality of the derivation against real executions ---

func TestNetworkSoundnessAndMinimalityExample6(t *testing.T) {
	s := mustSirup(t, example6Src)
	procs := hashpart.RangeProcs(4)
	F := BitVectorF(2)
	d, err := Derive(s, []string{"Y", "Z"}, []string{"X", "Y"}, F, F, procs)
	if err != nil {
		t.Fatal(err)
	}
	h := FuncFromBits("h6", F, hashpart.GParity)
	spec := rewrite.SirupSpec{
		Procs: procs,
		VR:    []string{"Y", "Z"}, VE: []string{"X", "Y"},
		H: h, HP: h,
	}
	rep, err := FindWitnesses(s, d, spec, 60, 6, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) > 0 {
		t.Errorf("soundness violated: unpredicted channels used: %v", rep.Violations)
	}
	if !rep.AllWitnessed() {
		missing := []string{}
		for e, ok := range rep.Witnessed {
			if !ok {
				missing = append(missing, fmt.Sprintf("%d→%d", e[0], e[1]))
			}
		}
		t.Errorf("minimality unconfirmed after %d trials; unwitnessed: %v", rep.Trials, missing)
	}
}

// TestRestrictedTopologyExample6: executing Example 6 on exactly the derived
// network must succeed and produce the sequential least model.
func TestRestrictedTopologyExample6(t *testing.T) {
	var b strings.Builder
	b.WriteString(example6Src)
	rng := rand.New(rand.NewSource(5))
	for k := 0; k < 20; k++ {
		fmt.Fprintf(&b, "q(c%d, c%d).\n", rng.Intn(9), rng.Intn(9))
		fmt.Fprintf(&b, "r(c%d, c%d).\n", rng.Intn(9), rng.Intn(9))
	}
	prog := parser.MustParse(b.String())
	s, err := analysis.ExtractSirup(prog)
	if err != nil {
		t.Fatal(err)
	}
	procs := hashpart.RangeProcs(4)
	F := BitVectorF(2)
	d, err := Derive(s, []string{"Y", "Z"}, []string{"X", "Y"}, F, F, procs)
	if err != nil {
		t.Fatal(err)
	}
	h := FuncFromBits("h6", F, hashpart.GParity)
	p, err := parallel.BuildQ(s, rewrite.SirupSpec{
		Procs: procs,
		VR:    []string{"Y", "Z"}, VE: []string{"X", "Y"},
		H: h, HP: h,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := parallel.Run(p, relation.Store{},
		parallel.RunConfig{Topology: parallel.NewTopology(d.CrossEdges())})
	if err != nil {
		t.Fatalf("derived topology insufficient: %v", err)
	}
	seq, _, err := seminaive.Eval(prog, relation.Store{}, seminaive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !seq["p"].Equal(res.Output["p"]) {
		t.Error("restricted execution differs from sequential")
	}
}

func TestDeriveValidation(t *testing.T) {
	s := mustSirup(t, example6Src)
	if _, err := Derive(s, nil, []string{"X"}, BitVectorF(0), BitVectorF(1), hashpart.RangeProcs(2)); err == nil {
		t.Error("empty v(r) accepted")
	}
}

func TestDerivationString(t *testing.T) {
	s := mustSirup(t, example6Src)
	d, err := Derive(s, []string{"Y", "Z"}, []string{"X", "Y"}, BitVectorF(2), BitVectorF(2), hashpart.RangeProcs(4))
	if err != nil {
		t.Fatal(err)
	}
	str := d.String()
	if !strings.Contains(str, "0 → ") {
		t.Errorf("String() = %q", str)
	}
}

// TestNetworkSoundnessExample7: the linear-hash derivation must also be
// sound against real executions over the sparse processor set {−1,0,1,2}.
func TestNetworkSoundnessExample7(t *testing.T) {
	s := mustSirup(t, `
p(U, V, W) :- s(U, V, W).
p(U, V, W) :- p(V, W, Z), q(U, Z).
`)
	procs := hashpart.NewProcSet(-1, 0, 1, 2)
	F := LinearF([]int{1, -1, 1})
	d, err := Derive(s, []string{"V", "W", "Z"}, []string{"U", "V", "W"}, F, F, procs)
	if err != nil {
		t.Fatal(err)
	}
	h := FuncFromBits("h7", F, hashpart.GParity)
	spec := rewrite.SirupSpec{
		Procs: procs,
		VR:    []string{"V", "W", "Z"}, VE: []string{"U", "V", "W"},
		H: h, HP: h,
	}
	rep, err := FindWitnesses(s, d, spec, 50, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) > 0 {
		t.Errorf("unpredicted channels used: %v", rep.Violations)
	}
	witnessed := 0
	for _, ok := range rep.Witnessed {
		if ok {
			witnessed++
		}
	}
	// Soundness must be perfect; minimality witnesses should cover most of
	// the 8 predicted edges on this budget.
	if witnessed < len(rep.Witnessed)/2 {
		t.Errorf("only %d/%d edges witnessed", witnessed, len(rep.Witnessed))
	}
}
