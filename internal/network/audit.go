package network

import (
	"fmt"
	"sort"
	"strings"
)

// ObservedEdge is one observed communication channel t_{from,to} with its
// measured traffic — the runtime's answer to the Derivation's prediction.
type ObservedEdge struct {
	From, To int
	Messages int64
	Tuples   int64
}

// AuditReport compares a run's observed communication matrix against the
// minimal network graph the Derivation predicted (Section 5): every
// cross-processor channel that carried tuples must be a predicted edge,
// or the hash-partitioning layer routed a substitution to a processor the
// discriminating-function analysis proved can never need it.
type AuditReport struct {
	// Observed lists the cross-processor channels that carried at least
	// one tuple, sorted by (From, To). Intra-processor traffic and
	// zero-tuple control batches (empty defensive sends) are excluded —
	// the graph constrains data movement, not bookkeeping.
	Observed []ObservedEdge
	// Violations are the observed channels the graph does not contain.
	Violations []ObservedEdge
	// PredictedCross counts the graph's cross-processor edges;
	// UsedPredicted counts how many of them the run exercised.
	PredictedCross, UsedPredicted int
}

// OK reports whether every observed channel was predicted.
func (a *AuditReport) OK() bool { return len(a.Violations) == 0 }

// Utilization is the fraction of predicted cross edges the run actually
// used — low values mean the graph admits traffic the data never needs
// (the graph is minimal for the scheme, not for the instance). A graph
// with no cross edges is fully utilized by definition.
func (a *AuditReport) Utilization() float64 {
	if a.PredictedCross == 0 {
		return 1.0
	}
	return float64(a.UsedPredicted) / float64(a.PredictedCross)
}

func (a *AuditReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "network audit: %d observed channel(s), %d/%d predicted edge(s) used",
		len(a.Observed), a.UsedPredicted, a.PredictedCross)
	if a.OK() {
		b.WriteString(", no violations")
	} else {
		fmt.Fprintf(&b, ", %d VIOLATION(S):", len(a.Violations))
		for _, v := range a.Violations {
			fmt.Fprintf(&b, " t_{%d,%d}=%d", v.From, v.To, v.Tuples)
		}
	}
	return b.String()
}

// Audit checks observed traffic against the derived graph. Edges with
// zero tuples are ignored (the transport ships empty batches to keep
// per-channel bookkeeping alive); self-loops are always permissible —
// the graph's diagonal is local computation, never a physical link.
func (d *Derivation) Audit(observed []ObservedEdge) *AuditReport {
	rep := &AuditReport{PredictedCross: len(d.CrossEdges())}
	used := map[[2]int]bool{}
	for _, e := range observed {
		if e.Tuples == 0 || e.From == e.To {
			continue
		}
		rep.Observed = append(rep.Observed, e)
		if d.HasEdge(e.From, e.To) {
			if !used[[2]int{e.From, e.To}] {
				used[[2]int{e.From, e.To}] = true
				rep.UsedPredicted++
			}
		} else {
			rep.Violations = append(rep.Violations, e)
		}
	}
	sortEdges(rep.Observed)
	sortEdges(rep.Violations)
	return rep
}

func sortEdges(es []ObservedEdge) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].From != es[j].From {
			return es[i].From < es[j].From
		}
		return es[i].To < es[j].To
	})
}
