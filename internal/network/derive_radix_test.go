package network

import (
	"testing"

	"parlog/internal/ast"
	"parlog/internal/hashpart"
	"parlog/internal/parallel"
	"parlog/internal/relation"
	"parlog/internal/rewrite"
	"parlog/internal/seminaive"
	"parlog/internal/workload"
)

// radixVectorF encodes k digits MSB-first in the given radix — the radix-m
// analogue of Example 6's bit-vector h.
func radixVectorF(k, radix int) BitFunc {
	return func(digits []int) int {
		id := 0
		for _, d := range digits {
			id = id*radix + d
		}
		return id
	}
}

// TestDeriveRadix3Example6 generalizes Figure 3 to a ternary g: with
// h(a,b) = (g(a), g(b)) over g ∈ {0,1,2} there are 9 processors, and the
// same structural law holds: (a,b) may send only to (c,a).
func TestDeriveRadix3Example6(t *testing.T) {
	s := mustSirup(t, example6Src)
	const radix = 3
	procs := hashpart.RangeProcs(radix * radix)
	F := radixVectorF(2, radix)
	d, err := DeriveRadix(s, []string{"Y", "Z"}, []string{"X", "Y"}, F, F, procs, radix)
	if err != nil {
		t.Fatal(err)
	}
	want := map[[2]int]bool{}
	for a := 0; a < radix; a++ {
		for b := 0; b < radix; b++ {
			for c := 0; c < radix; c++ {
				want[[2]int{a*radix + b, c*radix + a}] = true
			}
		}
	}
	for i := 0; i < radix*radix; i++ {
		want[[2]int{i, i}] = true // exit self-loops
	}
	for e := range want {
		if !d.HasEdge(e[0], e[1]) {
			t.Errorf("missing edge %v", e)
		}
	}
	for _, e := range d.Edges {
		if !want[e] {
			t.Errorf("unexpected edge %v", e)
		}
	}
}

// TestDeriveRadix3Soundness executes Example 6 with a real ternary g and
// checks that every used channel was predicted.
func TestDeriveRadix3Soundness(t *testing.T) {
	s := mustSirup(t, example6Src)
	const radix = 3
	procs := hashpart.RangeProcs(radix * radix)
	F := radixVectorF(2, radix)
	d, err := DeriveRadix(s, []string{"Y", "Z"}, []string{"X", "Y"}, F, F, procs, radix)
	if err != nil {
		t.Fatal(err)
	}
	g := func(v ast.Value) int { return int(v) % radix }
	h := FuncFromBits("h9", F, g)
	p, err := parallel.BuildQ(s, rewrite.SirupSpec{
		Procs: procs,
		VR:    []string{"Y", "Z"}, VE: []string{"X", "Y"},
		H: h,
	})
	if err != nil {
		t.Fatal(err)
	}
	edb := relation.Store{
		"q": workload.RandomGraph(24, 80, 9),
		"r": workload.RandomGraph(24, 80, 10),
	}
	res, err := parallel.Run(p, edb, parallel.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Stats.UsedEdges() {
		if !d.HasEdge(e[0], e[1]) {
			t.Errorf("execution used unpredicted channel %v", e)
		}
	}
	// Correctness against the sequential engine.
	prog := s.Program
	store := relation.Store{}
	for k, rel := range edb {
		store[k] = rel
	}
	seq, _, err := seminaive.Eval(prog, store, seminaive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !seq["p"].Equal(res.Output["p"]) {
		t.Error("radix-3 execution differs from sequential")
	}
}

func TestDeriveRadixValidation(t *testing.T) {
	s := mustSirup(t, example6Src)
	F := radixVectorF(2, 2)
	if _, err := DeriveRadix(s, []string{"Y", "Z"}, []string{"X", "Y"}, F, F, hashpart.RangeProcs(4), 1); err == nil {
		t.Error("radix 1 accepted")
	}
	// An enormous radix must trip the solver guard, not hang.
	if _, err := DeriveRadix(s, []string{"Y", "Z"}, []string{"X", "Y"}, F, F, hashpart.RangeProcs(4), 1<<20); err == nil {
		t.Error("oversized search space accepted")
	}
}

func TestDeriveMatchesDeriveRadix2(t *testing.T) {
	s := mustSirup(t, example6Src)
	F := BitVectorF(2)
	procs := hashpart.RangeProcs(4)
	a, err := Derive(s, []string{"Y", "Z"}, []string{"X", "Y"}, F, F, procs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DeriveRadix(s, []string{"Y", "Z"}, []string{"X", "Y"}, F, F, procs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Edges) != len(b.Edges) {
		t.Fatalf("edge counts differ: %d vs %d", len(a.Edges), len(b.Edges))
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}
