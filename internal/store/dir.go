package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

const (
	walName   = "wal.log"
	segPrefix = "seg-"
	segSuffix = ".seg"
)

// Dir is a durable state directory: one write-ahead log (wal.log) plus
// immutable compacted segments (seg-<epoch hex>.seg). The owning
// consumer appends records for every state change, and periodically
// compacts: a full snapshot is written as a new segment, the WAL is
// reset, and older segments are removed. Open recovers the newest intact
// segment plus the WAL, leaving epoch-level filtering (which WAL records
// the segment already covers) to the consumer, whose record payloads
// carry the epochs.
type Dir struct {
	path     string
	opts     Options
	log      *Log
	segEpoch uint64
	hasSeg   bool
}

// Recovery reports what Open found on disk. The zero value (no segment,
// no WAL records) is a fresh directory.
type Recovery struct {
	// Segment holds the newest intact segment's records, nil if none;
	// SegmentEpoch is the epoch encoded in its file name.
	Segment      []Record
	SegmentEpoch uint64
	// SegmentsDropped counts corrupt segments skipped over to find an
	// intact one (Options.SkipCorrupt).
	SegmentsDropped int
	// WAL holds the log's intact records; Skipped, Torn and TornBytes
	// report the damage recovered past (see LogRecovery).
	WAL       []Record
	Skipped   int
	Torn      bool
	TornBytes int
}

// Open opens (creating if absent) the directory and recovers its state:
// stale temp files are removed, the newest intact segment is loaded —
// a corrupt one fails with ErrCorruptSegment, or is skipped in favor of
// an older sibling under opts.SkipCorrupt — and the WAL is recovered
// with its torn tail truncated away.
func Open(path string, opts Options) (*Dir, *Recovery, error) {
	opts.fill()
	if err := os.MkdirAll(path, 0o755); err != nil {
		return nil, nil, fmt.Errorf("store: creating dir %s: %w", path, err)
	}
	entries, err := os.ReadDir(path)
	if err != nil {
		return nil, nil, fmt.Errorf("store: reading dir %s: %w", path, err)
	}
	var segs []string
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			// The residue of a crash mid-segment-write; the rename never
			// happened, so the content was never acknowledged.
			os.Remove(filepath.Join(path, name))
			continue
		}
		if strings.HasPrefix(name, segPrefix) && strings.HasSuffix(name, segSuffix) {
			segs = append(segs, name)
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(segs))) // newest epoch first

	d := &Dir{path: path, opts: opts}
	rec := &Recovery{}
	for _, name := range segs {
		epoch, perr := segEpoch(name)
		if perr != nil {
			continue // not one of ours
		}
		recs, rerr := ReadSegment(filepath.Join(path, name))
		if rerr != nil {
			if !opts.SkipCorrupt {
				return nil, nil, rerr
			}
			rec.SegmentsDropped++
			continue
		}
		rec.Segment, rec.SegmentEpoch = recs, epoch
		d.segEpoch, d.hasSeg = epoch, true
		break
	}

	log, lrec, err := OpenLog(filepath.Join(path, walName), opts)
	if err != nil {
		return nil, nil, err
	}
	d.log = log
	rec.WAL, rec.Skipped = lrec.Records, lrec.Skipped
	rec.Torn, rec.TornBytes = lrec.Torn, lrec.TornBytes
	return d, rec, nil
}

// Append appends one record to the WAL (see Log.Append).
func (d *Dir) Append(kind byte, payload []byte) (n int, synced bool, err error) {
	return d.log.Append(kind, payload)
}

// Sync forces the WAL to stable storage.
func (d *Dir) Sync() error { return d.log.Sync() }

// Compact makes recs the new authoritative snapshot at the given epoch:
// the segment is written atomically, the WAL is reset (its records are
// now covered), and older segments are removed. A crash between the
// segment write and the WAL reset is safe — recovery sees the new
// segment plus a WAL whose records carry epochs at or below it, which
// the consumer's epoch filter skips. Returns the segment's byte size.
func (d *Dir) Compact(epoch uint64, recs []Record) (int64, error) {
	if err := d.log.Dead(); err != nil {
		return 0, err
	}
	name := fmt.Sprintf("%s%016x%s", segPrefix, epoch, segSuffix)
	n, err := WriteAtomic(d.path, name, recs, d.opts.Hook)
	if err != nil {
		// An injected crash or I/O failure mid-segment-write kills the
		// whole directory: the process this simulates is gone.
		d.log.dead = err
		return 0, err
	}
	prevEpoch, hadSeg := d.segEpoch, d.hasSeg
	d.segEpoch, d.hasSeg = epoch, true
	if err := d.log.Reset(); err != nil {
		return n, err
	}
	if hadSeg && prevEpoch != epoch {
		old := fmt.Sprintf("%s%016x%s", segPrefix, prevEpoch, segSuffix)
		os.Remove(filepath.Join(d.path, old))
	}
	return n, nil
}

// WALSize and WALRecords expose the log's current extent — the numbers
// parlogd reports as the WAL position.
func (d *Dir) WALSize() int64  { return d.log.Size() }
func (d *Dir) WALRecords() int { return d.log.Records() }

// SegmentEpoch returns the current segment's epoch and whether one
// exists.
func (d *Dir) SegmentEpoch() (uint64, bool) { return d.segEpoch, d.hasSeg }

// SetHook swaps the write hook mid-life — the fault-injection seam for
// tests that want a directory to start healthy and fail later.
func (d *Dir) SetHook(h WriteHook) {
	d.opts.Hook = h
	d.log.opts.Hook = h
}

// Dead returns the error that killed the directory, or nil.
func (d *Dir) Dead() error { return d.log.Dead() }

// Close syncs and closes the WAL.
func (d *Dir) Close() error { return d.log.Close() }

// segEpoch parses the epoch out of a segment file name.
func segEpoch(name string) (uint64, error) {
	hex := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	return strconv.ParseUint(hex, 16, 64)
}
