// Package store is parlog's durable storage tier: an append-only
// write-ahead log plus immutable segment snapshots, both framed as
// checksummed records so recovery can tell a torn tail (a write the
// process died inside — safe to drop) from silent mid-file corruption
// (bit rot under acknowledged data — never safe to drop quietly).
//
// Every record is framed as
//
//	len   uint32 LE — payload length
//	kind  byte      — opaque to this package; consumers assign meanings
//	payload
//	sum   uint64 LE — FNV-1a over kind+payload (wire.Checksum)
//
// and every physical write is a single Write call, so a crash leaves at
// most one partially-written record — always at the tail of the log,
// which is exactly the damage Scan classifies as ErrTornLog. Segment
// files are written to a temp name, fsynced, renamed into place and the
// directory fsynced, so a segment is either absent or complete; any
// checksum failure inside one is ErrCorruptSegment.
//
// The package knows nothing about Datalog: payloads are opaque bytes
// (parlog's View logs wire-codec delta batches, the distributed worker
// persists wire-codec checkpoint snapshots). Options.Hook intercepts
// every physical write for deterministic crash-fault injection — see
// fault.DiskPlan.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"parlog/internal/wire"
)

// Sentinel errors for errors.Is. Every recovery-path error wraps one of
// them, so callers can branch on the failure class without parsing
// messages.
var (
	// ErrTornLog reports a partially-written final record — the expected
	// residue of a crash mid-write. Recovery drops the torn tail and
	// reports it; under fsync policies weaker than FsyncAlways the tail
	// may include acknowledged records.
	ErrTornLog = errors.New("store: torn log tail")

	// ErrCorruptSegment reports a checksum failure under data that a
	// crash cannot explain: a damaged record with intact records after
	// it, a damaged segment file, or state inconsistent with the program
	// it was written for. Recovery fails fast unless Options.SkipCorrupt
	// asks for skip-and-report.
	ErrCorruptSegment = errors.New("store: corrupt record")
)

// FsyncPolicy says when the log forces appended records to stable
// storage.
type FsyncPolicy int

const (
	// FsyncAlways syncs after every append: an acknowledged record
	// survives any crash. The default.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs when FsyncEvery has elapsed since the last
	// sync: bounded data loss, amortized cost.
	FsyncInterval
	// FsyncNever leaves flushing to the OS: a machine crash may lose
	// recent records (a mere process crash does not — the data is in the
	// page cache).
	FsyncNever
)

// WriteHook intercepts a physical write for fault injection: it receives
// the file's base name and the exact bytes about to be written and
// returns the bytes to actually write (possibly a prefix, for torn
// writes, or a mutated copy, for corruption) plus an error that
// simulates the process dying at this write. When both are returned the
// prefix is written first — a torn record — and the error surfaces
// after, like a crash mid-syscall.
type WriteHook func(name string, data []byte) ([]byte, error)

// Options tunes a Log or Dir. The zero value is the safe default:
// fsync on every append, fail fast on corruption.
type Options struct {
	// Fsync is the log's durability policy.
	Fsync FsyncPolicy
	// FsyncEvery is FsyncInterval's period (default 100ms).
	FsyncEvery time.Duration
	// SkipCorrupt recovers past checksum-failed records and segments,
	// reporting how many were skipped, instead of failing fast with
	// ErrCorruptSegment.
	SkipCorrupt bool
	// Hook, when non-nil, intercepts every physical write.
	Hook WriteHook
}

func (o *Options) fill() {
	if o.FsyncEvery <= 0 {
		o.FsyncEvery = 100 * time.Millisecond
	}
}

// Record is one framed log or segment entry. Kind is opaque to this
// package.
type Record struct {
	Kind    byte
	Payload []byte
}

const (
	headerLen = 5 // uint32 length + kind byte
	sumLen    = 8
	// maxPayload bounds a single record; a length field claiming more is
	// framing damage, not a real record.
	maxPayload = 1 << 30
)

// AppendRecord appends the framed encoding of (kind, payload) to dst and
// returns the extended slice.
func AppendRecord(dst []byte, kind byte, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, kind)
	dst = append(dst, payload...)
	body := dst[len(dst)-1-len(payload):]
	return binary.LittleEndian.AppendUint64(dst, wire.Checksum(body))
}

// recordSize is the on-disk size of a record with the given payload
// length.
func recordSize(payloadLen int) int { return headerLen + payloadLen + sumLen }

// parseAt examines the record starting at off. structOK is false when
// the record reaches past the end of raw (framing truncation); sumOK is
// false when it is structurally complete but fails its checksum. size is
// the record's claimed on-disk size (meaningful only when structOK).
func parseAt(raw []byte, off int) (rec Record, size int, structOK, sumOK bool) {
	if len(raw)-off < headerLen {
		return Record{}, 0, false, false
	}
	n := int(binary.LittleEndian.Uint32(raw[off:]))
	if n > maxPayload {
		return Record{}, 0, false, false
	}
	size = recordSize(n)
	if len(raw)-off < size {
		return Record{}, 0, false, false
	}
	body := raw[off+4 : off+headerLen+n]
	sum := binary.LittleEndian.Uint64(raw[off+headerLen+n:])
	if wire.Checksum(body) != sum {
		return Record{}, size, true, false
	}
	return Record{Kind: body[0], Payload: body[1:]}, size, true, true
}

// hasValidRecord reports whether raw, scanned from its start along
// claimed record boundaries, contains at least one checksum-valid
// record — the lookahead that distinguishes mid-file corruption (intact
// data follows the damage) from a torn tail (nothing real follows).
func hasValidRecord(raw []byte) bool {
	off := 0
	for off < len(raw) {
		_, size, structOK, sumOK := parseAt(raw, off)
		if !structOK {
			return false
		}
		if sumOK {
			return true
		}
		off += size
	}
	return false
}

// Scan parses the record stream in raw and returns the records of its
// longest intact prefix plus the byte offset scanning stopped at. A
// clean stream returns a nil error. Damage is classified:
//
//   - a record reaching past the end, or a checksum failure with nothing
//     valid after it, wraps ErrTornLog (the residue of a crash — callers
//     drop the tail);
//   - a checksum failure with intact records after it wraps
//     ErrCorruptSegment (damage under acknowledged data — callers fail
//     fast or skip-and-report per Options.SkipCorrupt).
func Scan(raw []byte) ([]Record, int, error) {
	var recs []Record
	off := 0
	for off < len(raw) {
		rec, size, structOK, sumOK := parseAt(raw, off)
		if !structOK {
			return recs, off, fmt.Errorf("record at offset %d reaches past the end (%d bytes left): %w",
				off, len(raw)-off, ErrTornLog)
		}
		if !sumOK {
			if hasValidRecord(raw[off+size:]) {
				return recs, off, fmt.Errorf("record at offset %d fails its checksum with intact records after it: %w",
					off, ErrCorruptSegment)
			}
			return recs, off, fmt.Errorf("final record at offset %d fails its checksum: %w", off, ErrTornLog)
		}
		recs = append(recs, rec)
		off += size
	}
	return recs, off, nil
}

// ScanResult is ScanAll's report: the surviving records plus what was
// lost getting them.
type ScanResult struct {
	Records []Record
	// Skipped counts checksum-failed records recovered past under
	// SkipCorrupt.
	Skipped int
	// Torn reports a dropped torn tail; TornBytes is its length.
	Torn      bool
	TornBytes int
	// Keep is the prefix length holding everything scanned (the torn
	// tail starts here) — what a recovering log truncates to.
	Keep int
}

// ScanAll applies the recovery policy to a record stream: torn tails are
// always dropped and reported, checksum-failed records under intact data
// fail with ErrCorruptSegment unless skipCorrupt, which skips them
// record by record and counts.
func ScanAll(raw []byte, skipCorrupt bool) (ScanResult, error) {
	var res ScanResult
	off := 0
	for {
		recs, n, err := Scan(raw[off:])
		res.Records = append(res.Records, recs...)
		off += n
		if err == nil {
			res.Keep = off
			return res, nil
		}
		if errors.Is(err, ErrTornLog) {
			res.Torn = true
			res.TornBytes = len(raw) - off
			res.Keep = off
			return res, nil
		}
		// Mid-stream corruption.
		if !skipCorrupt {
			return res, err
		}
		_, size, _, _ := parseAt(raw, off)
		res.Skipped++
		off += size
	}
}
