package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// WriteAtomic writes recs as one framed record stream to dir/name with
// full crash atomicity: the bytes go to a temp file in one write, the
// temp file is fsynced, renamed over the final name, and the directory
// is fsynced so the rename itself is durable. A crash at any point
// leaves either no file (a stale .tmp at worst, cleaned on the next
// open) or the complete file — never a partial segment. Returns the
// written byte count.
func WriteAtomic(dir, name string, recs []Record, hook WriteHook) (int64, error) {
	var buf []byte
	for _, r := range recs {
		buf = AppendRecord(buf, r.Kind, r.Payload)
	}
	data, herr := buf, error(nil)
	if hook != nil {
		data, herr = hook(name, buf)
	}
	tmp := filepath.Join(dir, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, fmt.Errorf("store: creating %s: %w", tmp, err)
	}
	if len(data) > 0 {
		if _, werr := f.Write(data); werr != nil {
			f.Close()
			return 0, fmt.Errorf("store: writing %s: %w", tmp, werr)
		}
	}
	if herr != nil {
		// The injected crash fires before the rename: like a real death
		// mid-write, the segment never becomes visible — only the stale
		// temp file remains.
		f.Close()
		return 0, herr
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return 0, fmt.Errorf("store: syncing %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		return 0, fmt.Errorf("store: closing %s: %w", tmp, err)
	}
	final := filepath.Join(dir, name)
	if err := os.Rename(tmp, final); err != nil {
		return 0, fmt.Errorf("store: publishing %s: %w", final, err)
	}
	if err := syncDir(dir); err != nil {
		return 0, err
	}
	return int64(len(data)), nil
}

// ReadSegment reads and fully verifies a segment file. Segments are
// written atomically, so any damage — a torn record, a checksum failure,
// an empty file — is classified ErrCorruptSegment, never a tolerable
// torn tail.
func ReadSegment(path string) ([]Record, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: reading segment %s: %w", path, err)
	}
	recs, n, err := Scan(raw)
	if err != nil || n != len(raw) {
		if err == nil {
			err = errors.New("trailing bytes")
		}
		return nil, fmt.Errorf("store: segment %s is damaged (%v): %w",
			filepath.Base(path), err, ErrCorruptSegment)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("store: segment %s is empty: %w",
			filepath.Base(path), ErrCorruptSegment)
	}
	return recs, nil
}

// syncDir fsyncs a directory so a just-renamed file survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: opening dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: syncing dir %s: %w", dir, err)
	}
	return nil
}
