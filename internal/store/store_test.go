package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func frame(kind byte, payload string) []byte {
	return AppendRecord(nil, kind, []byte(payload))
}

func stream(recs ...Record) []byte {
	var b []byte
	for _, r := range recs {
		b = AppendRecord(b, r.Kind, r.Payload)
	}
	return b
}

func TestScanRoundTrip(t *testing.T) {
	in := []Record{
		{Kind: 1, Payload: []byte("hello")},
		{Kind: 2, Payload: nil},
		{Kind: 7, Payload: bytes.Repeat([]byte{0xAB}, 1000)},
	}
	recs, n, err := Scan(stream(in...))
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if n != len(stream(in...)) {
		t.Fatalf("consumed %d of %d", n, len(stream(in...)))
	}
	if len(recs) != len(in) {
		t.Fatalf("got %d records, want %d", len(recs), len(in))
	}
	for i := range in {
		if recs[i].Kind != in[i].Kind || !bytes.Equal(recs[i].Payload, in[i].Payload) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestScanClassification(t *testing.T) {
	a := frame(1, "first")
	b := frame(2, "second")
	corrupt := func(f []byte) []byte {
		c := append([]byte(nil), f...)
		c[len(c)-1] ^= 0xFF // checksum byte
		return c
	}
	cases := []struct {
		name string
		raw  []byte
		want error
		recs int
	}{
		{"clean", append(append([]byte{}, a...), b...), nil, 2},
		{"empty", nil, nil, 0},
		{"torn header", append(append([]byte{}, a...), b[:3]...), ErrTornLog, 1},
		{"torn payload", append(append([]byte{}, a...), b[:len(b)-4]...), ErrTornLog, 1},
		{"corrupt final is torn", append(append([]byte{}, a...), corrupt(b)...), ErrTornLog, 1},
		{"corrupt mid", append(append([]byte{}, corrupt(a)...), b...), ErrCorruptSegment, 0},
		{"huge length is torn", []byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3, 4, 5, 6, 7, 8, 9}, ErrTornLog, 0},
	}
	for _, tc := range cases {
		recs, _, err := Scan(tc.raw)
		if tc.want == nil && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
			continue
		}
		if tc.want != nil && !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
		if len(recs) != tc.recs {
			t.Errorf("%s: got %d intact records, want %d", tc.name, len(recs), tc.recs)
		}
	}
}

func TestScanAllSkipCorrupt(t *testing.T) {
	a, b, c := frame(1, "aa"), frame(2, "bb"), frame(3, "cc")
	bad := append([]byte(nil), b...)
	bad[headerLen] ^= 0x01 // payload byte
	raw := append(append(append([]byte{}, a...), bad...), c...)

	if _, err := ScanAll(raw, false); !errors.Is(err, ErrCorruptSegment) {
		t.Fatalf("fail-fast: got %v, want ErrCorruptSegment", err)
	}
	res, err := ScanAll(raw, true)
	if err != nil {
		t.Fatalf("skip: %v", err)
	}
	if res.Skipped != 1 || len(res.Records) != 2 {
		t.Fatalf("skip: got %d records, %d skipped", len(res.Records), res.Skipped)
	}
	if res.Records[0].Kind != 1 || res.Records[1].Kind != 3 {
		t.Fatalf("skip: wrong survivors %v", res.Records)
	}
}

func TestLogAppendRecoverTruncate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, rec, err := OpenLog(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 0 || rec.Torn {
		t.Fatalf("fresh log not empty: %+v", rec)
	}
	for i := 0; i < 5; i++ {
		if _, synced, err := l.Append(9, []byte(fmt.Sprintf("rec-%d", i))); err != nil || !synced {
			t.Fatalf("append %d: synced=%v err=%v", i, synced, err)
		}
	}
	if l.Records() != 5 {
		t.Fatalf("records=%d", l.Records())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: drop half the final record.
	raw, _ := os.ReadFile(path)
	if err := os.WriteFile(path, raw[:len(raw)-9], 0o644); err != nil {
		t.Fatal(err)
	}
	l, rec, err = OpenLog(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 4 || !rec.Torn || rec.TornBytes == 0 {
		t.Fatalf("torn recovery: %d records torn=%v", len(rec.Records), rec.Torn)
	}
	// The torn tail must be truncated so the next append is intact.
	if _, _, err := l.Append(9, []byte("after-tear")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l, rec, err = OpenLog(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 5 || rec.Torn {
		t.Fatalf("after tear+append: %d records torn=%v", len(rec.Records), rec.Torn)
	}
	if string(rec.Records[4].Payload) != "after-tear" {
		t.Fatalf("payload %q", rec.Records[4].Payload)
	}
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	if l.Size() != 0 || l.Records() != 0 {
		t.Fatalf("reset left size=%d records=%d", l.Size(), l.Records())
	}
	l.Close()
}

func TestLogFsyncPolicies(t *testing.T) {
	dir := t.TempDir()
	l, _, err := OpenLog(filepath.Join(dir, "never.log"), Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if _, synced, _ := l.Append(1, []byte("x")); synced {
		t.Fatal("FsyncNever synced")
	}
	l.Close()

	l, _, err = OpenLog(filepath.Join(dir, "interval.log"),
		Options{Fsync: FsyncInterval, FsyncEvery: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if _, synced, _ := l.Append(1, []byte("x")); synced {
		t.Fatal("FsyncInterval synced inside the interval")
	}
	l.Close()
}

func TestLogHookCrash(t *testing.T) {
	boom := errors.New("boom")
	path := filepath.Join(t.TempDir(), "wal.log")
	calls := 0
	l, _, err := OpenLog(path, Options{Hook: func(name string, data []byte) ([]byte, error) {
		calls++
		if calls == 2 {
			return data[:len(data)/2], boom // torn write, then death
		}
		return data, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Append(1, []byte("survives")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Append(1, []byte("torn-away")); !errors.Is(err, boom) {
		t.Fatalf("got %v, want injected error", err)
	}
	// Dead log: everything fails with the same error.
	if _, _, err := l.Append(1, []byte("more")); !errors.Is(err, boom) {
		t.Fatalf("dead log admitted an append: %v", err)
	}
	l.Close()

	_, rec, err := OpenLog(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 1 || !rec.Torn {
		t.Fatalf("recovery after torn write: %d records torn=%v", len(rec.Records), rec.Torn)
	}
}

func TestSegmentAtomicity(t *testing.T) {
	dir := t.TempDir()
	recs := []Record{{Kind: 5, Payload: []byte("snapshot")}}
	if _, err := WriteAtomic(dir, "seg-a.seg", recs, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSegment(filepath.Join(dir, "seg-a.seg"))
	if err != nil || len(got) != 1 || string(got[0].Payload) != "snapshot" {
		t.Fatalf("read back: %v %v", got, err)
	}

	// A hook crash must leave no visible segment.
	boom := errors.New("boom")
	_, err = WriteAtomic(dir, "seg-b.seg", recs, func(string, []byte) ([]byte, error) {
		return nil, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "seg-b.seg")); !os.IsNotExist(err) {
		t.Fatal("crashed segment became visible")
	}

	// Damage is always corruption, never a tolerable tear.
	raw, _ := os.ReadFile(filepath.Join(dir, "seg-a.seg"))
	raw[len(raw)-1] ^= 0xFF
	os.WriteFile(filepath.Join(dir, "seg-a.seg"), raw, 0o644)
	if _, err := ReadSegment(filepath.Join(dir, "seg-a.seg")); !errors.Is(err, ErrCorruptSegment) {
		t.Fatalf("corrupt segment: %v", err)
	}

	// Zero-length files are corrupt too.
	os.WriteFile(filepath.Join(dir, "seg-z.seg"), nil, 0o644)
	if _, err := ReadSegment(filepath.Join(dir, "seg-z.seg")); !errors.Is(err, ErrCorruptSegment) {
		t.Fatalf("empty segment: %v", err)
	}
}

func TestDirLifecycle(t *testing.T) {
	path := t.TempDir()
	d, rec, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Segment != nil || len(rec.WAL) != 0 {
		t.Fatalf("fresh dir not empty: %+v", rec)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := d.Append(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Compact(3, []Record{{Kind: 5, Payload: []byte("snap@3")}}); err != nil {
		t.Fatal(err)
	}
	if d.WALRecords() != 0 {
		t.Fatalf("compact left %d WAL records", d.WALRecords())
	}
	if _, _, err := d.Append(1, []byte{9}); err != nil {
		t.Fatal(err)
	}
	d.Close()

	d, rec, err = Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.SegmentEpoch != 3 || len(rec.Segment) != 1 || string(rec.Segment[0].Payload) != "snap@3" {
		t.Fatalf("segment recovery: %+v", rec)
	}
	if len(rec.WAL) != 1 || rec.WAL[0].Payload[0] != 9 {
		t.Fatalf("WAL recovery: %+v", rec.WAL)
	}

	// Compacting at a later epoch removes the older segment.
	if _, err := d.Compact(7, []Record{{Kind: 5, Payload: []byte("snap@7")}}); err != nil {
		t.Fatal(err)
	}
	d.Close()
	if _, err := os.Stat(filepath.Join(path, "seg-0000000000000003.seg")); !os.IsNotExist(err) {
		t.Fatal("old segment not removed")
	}
	_, rec, err = Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.SegmentEpoch != 7 {
		t.Fatalf("epoch %d", rec.SegmentEpoch)
	}
}

func TestDirCorruptSegmentPolicies(t *testing.T) {
	path := t.TempDir()
	d, _, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Compact(1, []Record{{Kind: 5, Payload: []byte("old")}}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Compact(2, []Record{{Kind: 5, Payload: []byte("new")}}); err != nil {
		t.Fatal(err)
	}
	d.Close()
	// Resurrect an older segment, then corrupt the newest.
	if _, err := WriteAtomic(path, "seg-0000000000000001.seg",
		[]Record{{Kind: 5, Payload: []byte("old")}}, nil); err != nil {
		t.Fatal(err)
	}
	seg2 := filepath.Join(path, "seg-0000000000000002.seg")
	raw, _ := os.ReadFile(seg2)
	raw[len(raw)-2] ^= 0xFF
	os.WriteFile(seg2, raw, 0o644)

	if _, _, err := Open(path, Options{}); !errors.Is(err, ErrCorruptSegment) {
		t.Fatalf("fail-fast open: %v", err)
	}
	d, rec, err := Open(path, Options{SkipCorrupt: true})
	if err != nil {
		t.Fatal(err)
	}
	if rec.SegmentsDropped != 1 || rec.SegmentEpoch != 1 || string(rec.Segment[0].Payload) != "old" {
		t.Fatalf("skip open fell back wrong: %+v", rec)
	}
	d.Close()
}

func TestDirCrashBetweenSegmentAndReset(t *testing.T) {
	// A hook that dies right after the segment write (on the WAL reset's
	// sync there is no hook — so simulate by killing after Compact's
	// WriteAtomic and before Reset via a hook error on nothing; instead
	// we emulate the window by writing the segment manually and leaving
	// the WAL untouched).
	path := t.TempDir()
	d, _, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Append(1, []byte("covered")); err != nil {
		t.Fatal(err)
	}
	d.Close()
	// Segment appears (epoch 1) but the WAL was never reset — the
	// crash-between window.
	if _, err := WriteAtomic(path, "seg-0000000000000001.seg",
		[]Record{{Kind: 5, Payload: []byte("snap@1")}}, nil); err != nil {
		t.Fatal(err)
	}
	_, rec, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Both survive; the consumer's epoch filter skips the covered WAL
	// records.
	if rec.SegmentEpoch != 1 || len(rec.WAL) != 1 {
		t.Fatalf("window recovery: seg=%d wal=%d", rec.SegmentEpoch, len(rec.WAL))
	}
}

func TestDirRemovesStaleTemp(t *testing.T) {
	path := t.TempDir()
	tmp := filepath.Join(path, "seg-0000000000000009.seg.tmp")
	os.WriteFile(tmp, []byte("half-written"), 0o644)
	d, rec, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d.Close()
	if rec.Segment != nil {
		t.Fatal("temp file recovered as a segment")
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("stale temp file survived Open")
	}
}
