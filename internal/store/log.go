package store

import (
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// Log is an append-only write-ahead log of framed records. Every Append
// is one physical write, so a crash tears at most the final record;
// OpenLog recovers the intact prefix, truncates the torn tail away and
// reports what it found. A Log is not safe for concurrent use — callers
// (the View's writer, the worker's eval loop) already serialize writes.
type Log struct {
	path     string
	opts     Options
	f        *os.File
	size     int64
	records  int
	lastSync time.Time
	dead     error // first injected-crash or I/O error; appends fail after it
}

// LogRecovery reports what OpenLog found on disk.
type LogRecovery struct {
	// Records is the intact record sequence, in append order.
	Records []Record
	// Skipped counts checksum-failed records recovered past
	// (Options.SkipCorrupt).
	Skipped int
	// Torn reports a dropped torn tail of TornBytes bytes.
	Torn      bool
	TornBytes int
}

// OpenLog opens (creating if absent) the log at path and recovers its
// records. The torn tail, if any, is truncated away so new appends start
// on a record boundary; mid-file corruption fails with ErrCorruptSegment
// unless opts.SkipCorrupt.
func OpenLog(path string, opts Options) (*Log, *LogRecovery, error) {
	opts.fill()
	raw, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("store: reading log %s: %w", path, err)
	}
	res, err := ScanAll(raw, opts.SkipCorrupt)
	if err != nil {
		return nil, nil, fmt.Errorf("store: log %s: %w", filepath.Base(path), err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("store: opening log %s: %w", path, err)
	}
	if res.Keep < len(raw) {
		// Drop the torn tail so the next append lands on a boundary.
		if err := f.Truncate(int64(res.Keep)); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("store: truncating torn tail of %s: %w", path, err)
		}
	}
	if _, err := f.Seek(int64(res.Keep), 0); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("store: seeking log %s: %w", path, err)
	}
	l := &Log{path: path, opts: opts, f: f, size: int64(res.Keep),
		records: len(res.Records), lastSync: time.Now()}
	rec := &LogRecovery{Records: res.Records, Skipped: res.Skipped,
		Torn: res.Torn, TornBytes: res.TornBytes}
	return l, rec, nil
}

// Append frames (kind, payload), writes it in one call and applies the
// fsync policy. It returns the framed byte count and whether this append
// synced. After any write error — injected or real — the log is dead and
// every later Append fails with the same error.
func (l *Log) Append(kind byte, payload []byte) (n int, synced bool, err error) {
	if l.dead != nil {
		return 0, false, l.dead
	}
	frame := AppendRecord(nil, kind, payload)
	data, herr := frame, error(nil)
	if l.opts.Hook != nil {
		data, herr = l.opts.Hook(filepath.Base(l.path), frame)
	}
	if len(data) > 0 {
		if _, werr := l.f.Write(data); werr != nil {
			l.dead = fmt.Errorf("store: appending to %s: %w", l.path, werr)
			return 0, false, l.dead
		}
	}
	if herr != nil {
		l.dead = herr
		return 0, false, herr
	}
	l.size += int64(len(frame))
	l.records++
	switch l.opts.Fsync {
	case FsyncAlways:
		synced = true
	case FsyncInterval:
		synced = time.Since(l.lastSync) >= l.opts.FsyncEvery
	}
	if synced {
		if err := l.Sync(); err != nil {
			return len(frame), false, err
		}
	}
	return len(frame), synced, nil
}

// Sync forces appended records to stable storage regardless of policy.
func (l *Log) Sync() error {
	if l.dead != nil {
		return l.dead
	}
	if err := l.f.Sync(); err != nil {
		l.dead = fmt.Errorf("store: syncing %s: %w", l.path, err)
		return l.dead
	}
	l.lastSync = time.Now()
	return nil
}

// Reset truncates the log to empty — the step after a successful
// compaction, when every logged record is covered by the new segment.
func (l *Log) Reset() error {
	if l.dead != nil {
		return l.dead
	}
	if err := l.f.Truncate(0); err != nil {
		l.dead = fmt.Errorf("store: resetting %s: %w", l.path, err)
		return l.dead
	}
	if _, err := l.f.Seek(0, 0); err != nil {
		l.dead = fmt.Errorf("store: resetting %s: %w", l.path, err)
		return l.dead
	}
	l.size, l.records = 0, 0
	return l.Sync()
}

// Size is the log's current byte length; Records its record count
// (recovered plus appended).
func (l *Log) Size() int64  { return l.size }
func (l *Log) Records() int { return l.records }

// Dead returns the error that killed the log, or nil while it is
// usable.
func (l *Log) Dead() error { return l.dead }

// Close syncs (when the log is still alive) and closes the file.
func (l *Log) Close() error {
	if l.dead == nil {
		if err := l.f.Sync(); err != nil {
			l.f.Close()
			return err
		}
	}
	return l.f.Close()
}
