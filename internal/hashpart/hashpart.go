// Package hashpart implements the paper's discriminating machinery: the
// discriminating sequences of variables v(r), v(e), the discriminating
// functions h, h' and h_i that map ground instances of those sequences to
// processors, processor sets, and the induced fragmentation of base
// relations (the b_k^i of Section 3).
package hashpart

import (
	"fmt"
	"sort"

	"parlog/internal/ast"
	"parlog/internal/relation"
)

// Func is a discriminating function: a deterministic map from a ground
// instance of a discriminating sequence to a processor id. Processor ids are
// arbitrary ints (the paper uses sets such as {0, 1, -1, 2} in Example 7).
type Func interface {
	Name() string
	Apply(vals []ast.Value) int
}

// ProcSet is a finite ordered set of processor ids, the paper's P.
type ProcSet struct {
	ids   []int
	index map[int]int
}

// NewProcSet builds a processor set from distinct ids, preserving order.
func NewProcSet(ids ...int) *ProcSet {
	p := &ProcSet{index: make(map[int]int, len(ids))}
	for _, id := range ids {
		if _, dup := p.index[id]; dup {
			panic(fmt.Sprintf("hashpart: duplicate processor id %d", id))
		}
		p.index[id] = len(p.ids)
		p.ids = append(p.ids, id)
	}
	return p
}

// RangeProcs returns the processor set {0, 1, …, n−1}.
func RangeProcs(n int) *ProcSet {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return NewProcSet(ids...)
}

// Len returns the number of processors.
func (p *ProcSet) Len() int { return len(p.ids) }

// IDs returns the processor ids in order. Callers must not modify it.
func (p *ProcSet) IDs() []int { return p.ids }

// Index returns the dense index of id within the set.
func (p *ProcSet) Index(id int) (int, bool) {
	i, ok := p.index[id]
	return i, ok
}

// Contains reports membership.
func (p *ProcSet) Contains(id int) bool {
	_, ok := p.index[id]
	return ok
}

// --- concrete discriminating functions ---

// ModHash hashes the value sequence (FNV-1a) onto {0,…,N−1}. It is the
// "arbitrary discriminating function" of Examples 1 and 3.
type ModHash struct {
	N    int
	Seed uint64
}

// Name implements Func.
func (m ModHash) Name() string {
	if m.Seed == 0 {
		return fmt.Sprintf("hmod%d", m.N)
	}
	return fmt.Sprintf("hmod%d.%d", m.N, m.Seed)
}

// Apply implements Func.
func (m ModHash) Apply(vals []ast.Value) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := offset64 ^ m.Seed
	for _, v := range vals {
		for shift := 0; shift < 32; shift += 8 {
			h ^= uint64(byte(v >> shift))
			h *= prime64
		}
	}
	return int(h % uint64(m.N))
}

// SymHash hashes the value sequence onto {0,…,N−1} invariantly under any
// permutation of the arguments (it combines per-value hashes with addition).
// Theorem 3's communication-free construction needs this: along a dataflow
// cycle the discriminating values of producer and consumer are cyclic
// permutations of each other, so a permutation-invariant h maps both to the
// same processor.
type SymHash struct {
	N    int
	Seed uint64
}

// Name implements Func.
func (s SymHash) Name() string { return fmt.Sprintf("hsym%d", s.N) }

// Apply implements Func.
func (s SymHash) Apply(vals []ast.Value) int {
	inner := ModHash{N: 1 << 30, Seed: s.Seed}
	sum := uint64(0)
	for _, v := range vals {
		sum += uint64(inner.Apply([]ast.Value{v}))
	}
	return int(sum % uint64(s.N))
}

// G is a function from constants to small ints, the paper's g (Sections 5–6
// use range {0,1}).
type G func(ast.Value) int

// GParity maps a constant to its id's parity — a simple, deterministic g.
func GParity(v ast.Value) int { return int(v) & 1 }

// GBit returns a g extracting the given bit of an FNV hash of the value, so
// different bits give independent gs.
func GBit(bit uint, seed uint64) G {
	m := ModHash{N: 1 << 31, Seed: seed}
	return func(v ast.Value) int {
		return (m.Apply([]ast.Value{v}) >> bit) & 1
	}
}

// GTable is a table-driven g with a default for unknown constants.
func GTable(table map[ast.Value]int, dflt int) G {
	return func(v ast.Value) int {
		if g, ok := table[v]; ok {
			return g
		}
		return dflt
	}
}

// BitVector is Example 6's discriminating function: h(a1,…,ak) is the tuple
// (g(a1),…,g(ak)) of bits, encoded MSB-first as an integer, so for k=2 the
// processors are (00)=0, (01)=1, (10)=2, (11)=3.
type BitVector struct {
	G G
	K int
}

// Name implements Func.
func (b BitVector) Name() string { return fmt.Sprintf("gvec%d", b.K) }

// Apply implements Func.
func (b BitVector) Apply(vals []ast.Value) int {
	if len(vals) != b.K {
		panic(fmt.Sprintf("hashpart: BitVector arity %d applied to %d values", b.K, len(vals)))
	}
	id := 0
	for _, v := range vals {
		id = id<<1 | (b.G(v) & 1)
	}
	return id
}

// Procs returns the processor set {0,…,2^K−1} induced by the bit vector.
func (b BitVector) Procs() *ProcSet { return RangeProcs(1 << b.K) }

// Linear is Example 7's discriminating function: h(a1,…,ak) = Σ Coefs[i]·g(ai).
// With g ranging over {0,1} its range is a small set of ints that may
// include negative ids.
type Linear struct {
	G     G
	Coefs []int
}

// Name implements Func.
func (l Linear) Name() string { return "hlin" }

// Apply implements Func.
func (l Linear) Apply(vals []ast.Value) int {
	if len(vals) != len(l.Coefs) {
		panic(fmt.Sprintf("hashpart: Linear with %d coefficients applied to %d values", len(l.Coefs), len(vals)))
	}
	sum := 0
	for i, v := range vals {
		sum += l.Coefs[i] * l.G(v)
	}
	return sum
}

// Procs returns the exact range of the linear function over g-values in
// {0,1}: every achievable Σ Coefs[i]·b_i, sorted ascending.
func (l Linear) Procs() *ProcSet {
	sums := map[int]bool{}
	k := len(l.Coefs)
	for mask := 0; mask < 1<<k; mask++ {
		s := 0
		for i := 0; i < k; i++ {
			if mask>>i&1 == 1 {
				s += l.Coefs[i]
			}
		}
		sums[s] = true
	}
	ids := make([]int, 0, len(sums))
	for s := range sums {
		ids = append(ids, s)
	}
	sort.Ints(ids)
	return NewProcSet(ids...)
}

// Fragmentation is Example 2's discriminating function: h(ā) = i iff ā is a
// tuple of fragment i of a pre-partitioned relation. Ground instances not in
// any fragment fall back to Fallback (they can only arise outside the
// partitioned relation's own tuples).
type Fragmentation struct {
	Table    map[string]int
	Fallback Func
}

// NewFragmentation builds the function from per-processor fragments: frags
// maps processor id → its tuples.
func NewFragmentation(frags map[int]*relation.Relation, fallback Func) (*Fragmentation, error) {
	f := &Fragmentation{Table: make(map[string]int), Fallback: fallback}
	for proc, rel := range frags {
		for _, t := range rel.Rows() {
			k := t.Key()
			if prev, dup := f.Table[k]; dup && prev != proc {
				return nil, fmt.Errorf("hashpart: tuple present in fragments %d and %d — not a partition", prev, proc)
			}
			f.Table[k] = proc
		}
	}
	return f, nil
}

// Name implements Func.
func (f *Fragmentation) Name() string { return "hfrag" }

// Apply implements Func.
func (f *Fragmentation) Apply(vals []ast.Value) int {
	if proc, ok := f.Table[relation.Tuple(vals).Key()]; ok {
		return proc
	}
	return f.Fallback.Apply(vals)
}

// BalancedTable builds a discriminating function that equalizes load under
// skew: values with known weights are assigned to processors by greedy
// longest-processing-time bin packing (heaviest value first, onto the
// currently lightest processor), and unseen values fall back to fallback.
// This realizes the load-balancing direction the paper defers to future work
// (Section 8): the framework only requires h to be a function, so a
// data-informed h is admissible and keeps every theorem intact.
func BalancedTable(weights map[ast.Value]int, procs *ProcSet, fallback Func) Func {
	type wv struct {
		v ast.Value
		w int
	}
	items := make([]wv, 0, len(weights))
	for v, w := range weights {
		items = append(items, wv{v, w})
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].w != items[j].w {
			return items[i].w > items[j].w
		}
		return items[i].v < items[j].v
	})
	load := make([]int, procs.Len())
	table := make(map[ast.Value]int, len(items))
	for _, it := range items {
		best := 0
		for k := 1; k < len(load); k++ {
			if load[k] < load[best] {
				best = k
			}
		}
		load[best] += it.w
		table[it.v] = procs.IDs()[best]
	}
	return &balancedFunc{table: table, fallback: fallback}
}

type balancedFunc struct {
	table    map[ast.Value]int
	fallback Func
}

// Name implements Func.
func (b *balancedFunc) Name() string { return "hbal" }

// Apply implements Func. Multi-value sequences hash the first value through
// the table (balanced functions are built for single-variable sequences).
func (b *balancedFunc) Apply(vals []ast.Value) int {
	if p, ok := b.table[vals[0]]; ok {
		return p
	}
	return b.fallback.Apply(vals)
}

// Constant is the trade-off scheme's "keep everything local" extreme:
// h_i(ā) = i for every ā (Section 6).
type Constant struct{ Proc int }

// Name implements Func.
func (c Constant) Name() string { return fmt.Sprintf("const%d", c.Proc) }

// Apply implements Func.
func (c Constant) Apply([]ast.Value) int { return c.Proc }

// Mix is the trade-off scheme's intermediate point: it keeps a tuple local
// (returns Local) when an auxiliary hash of the tuple falls below
// KeepPermille/1000, and otherwise delegates to Shared — a deterministic
// family h_i interpolating between Constant (KeepPermille=1000) and a common
// h (KeepPermille=0).
type Mix struct {
	Local        int
	Shared       Func
	KeepPermille int
	Seed         uint64
}

// Name implements Func.
func (m Mix) Name() string { return fmt.Sprintf("hmix%d@%d", m.KeepPermille, m.Local) }

// Apply implements Func.
func (m Mix) Apply(vals []ast.Value) int {
	coin := ModHash{N: 1000, Seed: m.Seed ^ 0x9e3779b97f4a7c15}.Apply(vals)
	if coin < m.KeepPermille {
		return m.Local
	}
	return m.Shared.Apply(vals)
}

// AsHashFunc adapts a Func to the ast constraint-level HashFunc.
func AsHashFunc(f Func) *ast.HashFunc {
	return &ast.HashFunc{Name: f.Name(), Fn: f.Apply}
}
