package hashpart

import (
	"fmt"

	"parlog/internal/ast"
	"parlog/internal/relation"
)

// ValidateSequence checks that seq is a legal discriminating sequence for
// rule under the paper's restrictions: every variable of the sequence must
// occur in the rule, and — to keep the hash selection pushable into the
// joins (Section 3) — every variable must occur in at least one body atom.
func ValidateSequence(rule ast.Rule, seq []string) error {
	if len(seq) == 0 {
		return fmt.Errorf("hashpart: empty discriminating sequence")
	}
	bodyVars := rule.BodyVars()
	for _, v := range seq {
		found := false
		for _, bv := range bodyVars {
			if bv == v {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("hashpart: discriminating variable %s does not occur in the rule body", v)
		}
	}
	return nil
}

// ValidateSubsetOf checks the Section 6 restriction that every variable of
// the recursive rule's discriminating sequence also appears in Ȳ (the
// arguments of the recursive body atom), so that a received tuple determines
// its own h-value.
func ValidateSubsetOf(seq, within []string, what string) error {
	for _, v := range seq {
		found := false
		for _, w := range within {
			if w == v {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("hashpart: discriminating variable %s does not occur in %s", v, what)
		}
	}
	return nil
}

// SeqPositions maps each variable of seq to its first argument position in
// atom, returning ok=false if some variable does not occur in atom. When ok,
// the ground instance of seq for a tuple t of atom's relation is
// t[pos[0]], …, t[pos[k-1]] (valid only for tuples that actually match the
// atom's repeated-variable/constant pattern).
func SeqPositions(atom ast.Atom, seq []string) (pos []int, ok bool) {
	pos = make([]int, len(seq))
	for i, v := range seq {
		found := -1
		for j, t := range atom.Args {
			if t.IsVar() && t.VarName == v {
				found = j
				break
			}
		}
		if found < 0 {
			return nil, false
		}
		pos[i] = found
	}
	return pos, true
}

// MatchesPattern reports whether tuple is consistent with atom's constants
// and repeated variables (e.g. p(X, X, a) only matches tuples with equal
// first two fields and third field a).
func MatchesPattern(atom ast.Atom, tuple relation.Tuple) bool {
	return ast.MatchAtom(atom, tuple, ast.Subst{})
}

// FragmentAtom computes the per-processor fragments of rel as accessed
// through atom under the discriminating sequence seq and function h — the
// paper's b_k^i. If every variable of seq occurs in atom, tuple t belongs
// exactly to processor h(seq θ) where θ = match(atom, t), and partitioned is
// true; tuples that cannot match atom's pattern are dropped from every
// fragment. Otherwise the selection cannot be pushed into this atom, the
// relation is replicated in full, and partitioned is false.
//
// Fragments are returned indexed by the dense processor index of procs.
// Tuples whose h-value falls outside procs are dropped (they could never
// satisfy the processing rule's constraint at any processor).
func FragmentAtom(atom ast.Atom, seq []string, h Func, procs *ProcSet, rel *relation.Relation) (frags []*relation.Relation, partitioned bool) {
	frags = make([]*relation.Relation, procs.Len())
	for i := range frags {
		frags[i] = relation.New(rel.Arity())
	}
	pos, ok := SeqPositions(atom, seq)
	if !ok {
		for _, t := range rel.Rows() {
			for _, f := range frags {
				f.Insert(t)
			}
		}
		return frags, false
	}
	vals := make([]ast.Value, len(pos))
	for _, t := range rel.Rows() {
		if !MatchesPattern(atom, t) {
			continue
		}
		for i, p := range pos {
			vals[i] = t[p]
		}
		if idx, ok := procs.Index(h.Apply(vals)); ok {
			frags[idx].Insert(t)
		}
	}
	return frags, true
}

// Placement describes how one base predicate is laid out across processors.
type Placement struct {
	Pred string
	// Partitioned is true when every processor holds a disjoint fragment.
	Partitioned bool
	// TuplesPerProc[i] is the fragment size at the i-th processor.
	TuplesPerProc []int
}

// ReplicationFactor is total stored tuples divided by the relation size —
// 1.0 for a perfect partition of a matching-pattern-only relation, N for
// full replication.
func (p Placement) ReplicationFactor(relSize int) float64 {
	if relSize == 0 {
		return 0
	}
	total := 0
	for _, n := range p.TuplesPerProc {
		total += n
	}
	return float64(total) / float64(relSize)
}
