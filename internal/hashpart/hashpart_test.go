package hashpart

import (
	"testing"
	"testing/quick"

	"parlog/internal/ast"
	"parlog/internal/parser"
	"parlog/internal/relation"
)

func TestProcSet(t *testing.T) {
	p := NewProcSet(0, 1, -1, 2) // Example 7's processor set
	if p.Len() != 4 {
		t.Fatalf("Len = %d", p.Len())
	}
	if i, ok := p.Index(-1); !ok || i != 2 {
		t.Errorf("Index(-1) = %d,%v", i, ok)
	}
	if p.Contains(3) {
		t.Error("Contains(3) = true")
	}
	r := RangeProcs(3)
	if r.Len() != 3 || !r.Contains(2) || r.Contains(3) {
		t.Error("RangeProcs wrong")
	}
}

func TestProcSetDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate processor id did not panic")
		}
	}()
	NewProcSet(1, 1)
}

func TestModHashRangeAndDeterminism(t *testing.T) {
	h := ModHash{N: 4}
	counts := make([]int, 4)
	for v := ast.Value(0); v < 1000; v++ {
		p := h.Apply([]ast.Value{v})
		if p < 0 || p >= 4 {
			t.Fatalf("Apply out of range: %d", p)
		}
		if p != h.Apply([]ast.Value{v}) {
			t.Fatal("not deterministic")
		}
		counts[p]++
	}
	// A sane hash should not put everything in one bucket.
	for i, c := range counts {
		if c == 0 || c == 1000 {
			t.Errorf("bucket %d has %d of 1000", i, c)
		}
	}
}

func TestModHashSeedsDiffer(t *testing.T) {
	a := ModHash{N: 16, Seed: 1}
	b := ModHash{N: 16, Seed: 2}
	same := 0
	for v := ast.Value(0); v < 256; v++ {
		if a.Apply([]ast.Value{v}) == b.Apply([]ast.Value{v}) {
			same++
		}
	}
	if same == 256 {
		t.Error("different seeds produced identical hash functions")
	}
}

func TestBitVector(t *testing.T) {
	// g = parity. h(a,b) = (g(a),g(b)) as 2 bits MSB-first.
	h := BitVector{G: GParity, K: 2}
	cases := []struct {
		vals []ast.Value
		want int
	}{
		{[]ast.Value{0, 0}, 0}, // (00)
		{[]ast.Value{0, 1}, 1}, // (01)
		{[]ast.Value{1, 0}, 2}, // (10)
		{[]ast.Value{1, 1}, 3}, // (11)
	}
	for _, tc := range cases {
		if got := h.Apply(tc.vals); got != tc.want {
			t.Errorf("Apply(%v) = %d, want %d", tc.vals, got, tc.want)
		}
	}
	if h.Procs().Len() != 4 {
		t.Errorf("Procs = %v", h.Procs().IDs())
	}
}

func TestLinearExample7(t *testing.T) {
	// Example 7: h(a1,a2,a3) = g(a1) − g(a2) + g(a3); range {−1,0,1,2}.
	h := Linear{G: GParity, Coefs: []int{1, -1, 1}}
	if got := h.Apply([]ast.Value{1, 0, 1}); got != 2 {
		t.Errorf("h(1,0,1) = %d, want 2", got)
	}
	if got := h.Apply([]ast.Value{0, 1, 0}); got != -1 {
		t.Errorf("h(0,1,0) = %d, want -1", got)
	}
	procs := h.Procs()
	want := []int{-1, 0, 1, 2}
	if procs.Len() != 4 {
		t.Fatalf("Procs = %v", procs.IDs())
	}
	for i, id := range procs.IDs() {
		if id != want[i] {
			t.Errorf("Procs = %v, want %v", procs.IDs(), want)
		}
	}
}

func TestGBitIndependence(t *testing.T) {
	g0 := GBit(0, 7)
	g1 := GBit(5, 7)
	diff := false
	for v := ast.Value(0); v < 64; v++ {
		b := g0(v)
		if b != 0 && b != 1 {
			t.Fatalf("GBit out of range: %d", b)
		}
		if g0(v) != g1(v) {
			diff = true
		}
	}
	if !diff {
		t.Error("two different bits produced identical g")
	}
}

func TestGTable(t *testing.T) {
	g := GTable(map[ast.Value]int{3: 1}, 0)
	if g(3) != 1 || g(4) != 0 {
		t.Error("GTable lookup/default wrong")
	}
}

func TestFragmentationFunction(t *testing.T) {
	f0 := relation.FromTuples(2, [][]ast.Value{{1, 2}})
	f1 := relation.FromTuples(2, [][]ast.Value{{3, 4}})
	h, err := NewFragmentation(map[int]*relation.Relation{0: f0, 1: f1}, Constant{Proc: 9})
	if err != nil {
		t.Fatal(err)
	}
	if h.Apply([]ast.Value{1, 2}) != 0 || h.Apply([]ast.Value{3, 4}) != 1 {
		t.Error("fragment lookup wrong")
	}
	if h.Apply([]ast.Value{9, 9}) != 9 {
		t.Error("fallback not used")
	}
}

func TestFragmentationOverlapRejected(t *testing.T) {
	f0 := relation.FromTuples(2, [][]ast.Value{{1, 2}})
	f1 := relation.FromTuples(2, [][]ast.Value{{1, 2}})
	if _, err := NewFragmentation(map[int]*relation.Relation{0: f0, 1: f1}, nil); err == nil {
		t.Error("overlapping fragments accepted")
	}
}

func TestConstant(t *testing.T) {
	if (Constant{Proc: 5}).Apply([]ast.Value{1, 2}) != 5 {
		t.Error("Constant.Apply wrong")
	}
}

func TestMixExtremes(t *testing.T) {
	shared := ModHash{N: 4}
	local := 2
	all := Mix{Local: local, Shared: shared, KeepPermille: 1000}
	none := Mix{Local: local, Shared: shared, KeepPermille: 0}
	for v := ast.Value(0); v < 100; v++ {
		vals := []ast.Value{v}
		if all.Apply(vals) != local {
			t.Fatal("KeepPermille=1000 should always stay local")
		}
		if none.Apply(vals) != shared.Apply(vals) {
			t.Fatal("KeepPermille=0 should equal the shared function")
		}
	}
}

func TestMixMonotoneLocality(t *testing.T) {
	shared := ModHash{N: 4}
	countLocal := func(perMille int) int {
		m := Mix{Local: 0, Shared: shared, KeepPermille: perMille}
		n := 0
		for v := ast.Value(1); v <= 2000; v++ {
			// Use values whose shared hash is nonzero so "local" is
			// distinguishable.
			if shared.Apply([]ast.Value{v}) == 0 {
				continue
			}
			if m.Apply([]ast.Value{v}) == 0 {
				n++
			}
		}
		return n
	}
	lo, mid, hi := countLocal(100), countLocal(500), countLocal(900)
	if !(lo < mid && mid < hi) {
		t.Errorf("locality not monotone: %d %d %d", lo, mid, hi)
	}
}

func TestValidateSequence(t *testing.T) {
	prog := parser.MustParse(`anc(X, Y) :- par(X, Z), anc(Z, Y).
anc(X, Y) :- par(X, Y).`)
	rec := prog.Rules[0]
	if err := ValidateSequence(rec, []string{"Y"}); err != nil {
		t.Errorf("v(r)=<Y> rejected: %v", err)
	}
	if err := ValidateSequence(rec, []string{"X", "Z"}); err != nil {
		t.Errorf("v(r)=<X,Z> rejected: %v", err)
	}
	if err := ValidateSequence(rec, []string{"W"}); err == nil {
		t.Error("unknown variable accepted")
	}
	if err := ValidateSequence(rec, nil); err == nil {
		t.Error("empty sequence accepted")
	}
}

func TestValidateSubsetOf(t *testing.T) {
	if err := ValidateSubsetOf([]string{"Z"}, []string{"Z", "Y"}, "Ȳ"); err != nil {
		t.Errorf("subset rejected: %v", err)
	}
	if err := ValidateSubsetOf([]string{"X"}, []string{"Z", "Y"}, "Ȳ"); err == nil {
		t.Error("non-subset accepted")
	}
}

func TestSeqPositions(t *testing.T) {
	atom := ast.NewAtom("par", ast.V("X"), ast.V("Z"))
	pos, ok := SeqPositions(atom, []string{"Z"})
	if !ok || len(pos) != 1 || pos[0] != 1 {
		t.Errorf("SeqPositions = %v, %v", pos, ok)
	}
	if _, ok := SeqPositions(atom, []string{"Y"}); ok {
		t.Error("missing variable reported found")
	}
}

func TestFragmentAtomPartition(t *testing.T) {
	// par fragmented on Z (second column) — Example 3's access pattern.
	rel := relation.FromTuples(2, [][]ast.Value{{1, 2}, {3, 4}, {5, 6}, {7, 8}})
	atom := ast.NewAtom("par", ast.V("X"), ast.V("Z"))
	h := ModHash{N: 2}
	procs := RangeProcs(2)
	frags, partitioned := FragmentAtom(atom, []string{"Z"}, h, procs, rel)
	if !partitioned {
		t.Fatal("expected a partition")
	}
	total := 0
	for i, f := range frags {
		total += f.Len()
		for _, tuple := range f.Rows() {
			if h.Apply([]ast.Value{tuple[1]}) != procs.IDs()[i] {
				t.Errorf("tuple %v in wrong fragment %d", tuple, i)
			}
		}
	}
	if total != rel.Len() {
		t.Errorf("fragments cover %d of %d tuples", total, rel.Len())
	}
}

func TestFragmentAtomReplicates(t *testing.T) {
	// Example 1: v(r)=<Y> does not occur in par(X,Z) — full replication.
	rel := relation.FromTuples(2, [][]ast.Value{{1, 2}, {3, 4}})
	atom := ast.NewAtom("par", ast.V("X"), ast.V("Z"))
	frags, partitioned := FragmentAtom(atom, []string{"Y"}, ModHash{N: 2}, RangeProcs(2), rel)
	if partitioned {
		t.Fatal("expected replication")
	}
	for i, f := range frags {
		if f.Len() != rel.Len() {
			t.Errorf("fragment %d has %d tuples, want full copy %d", i, f.Len(), rel.Len())
		}
	}
}

func TestFragmentAtomDropsNonMatching(t *testing.T) {
	// Atom q(X, X) can only ever use tuples with equal columns.
	rel := relation.FromTuples(2, [][]ast.Value{{1, 1}, {1, 2}, {3, 3}})
	atom := ast.NewAtom("q", ast.V("X"), ast.V("X"))
	frags, partitioned := FragmentAtom(atom, []string{"X"}, ModHash{N: 2}, RangeProcs(2), rel)
	if !partitioned {
		t.Fatal("expected a partition")
	}
	total := 0
	for _, f := range frags {
		total += f.Len()
		if f.Contains(relation.Tuple{1, 2}) {
			t.Error("non-matching tuple not dropped")
		}
	}
	if total != 2 {
		t.Errorf("kept %d tuples, want 2", total)
	}
}

func TestPlacementReplicationFactor(t *testing.T) {
	p := Placement{Pred: "par", TuplesPerProc: []int{5, 5, 5, 5}}
	if got := p.ReplicationFactor(5); got != 4.0 {
		t.Errorf("replicated factor = %v, want 4", got)
	}
	q := Placement{Pred: "par", Partitioned: true, TuplesPerProc: []int{2, 3}}
	if got := q.ReplicationFactor(5); got != 1.0 {
		t.Errorf("partitioned factor = %v, want 1", got)
	}
	if (Placement{}).ReplicationFactor(0) != 0 {
		t.Error("empty relation factor should be 0")
	}
}

// Property: FragmentAtom with a plain variable atom partitions: every tuple
// appears in exactly one fragment.
func TestFragmentPartitionProperty(t *testing.T) {
	f := func(raw [][2]uint8, n uint8) bool {
		N := int(n%4) + 1
		rel := relation.New(2)
		for _, p := range raw {
			rel.Insert(relation.Tuple{ast.Value(p[0]), ast.Value(p[1])})
		}
		atom := ast.NewAtom("par", ast.V("X"), ast.V("Z"))
		frags, partitioned := FragmentAtom(atom, []string{"X", "Z"}, ModHash{N: N}, RangeProcs(N), rel)
		if !partitioned {
			return false
		}
		counts := map[string]int{}
		for _, f := range frags {
			for _, tup := range f.Rows() {
				counts[tup.Key()]++
			}
		}
		if len(counts) != rel.Len() {
			return false
		}
		for _, c := range counts {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: AsHashFunc agrees with the underlying Func.
func TestAsHashFuncAgreesProperty(t *testing.T) {
	h := ModHash{N: 7, Seed: 3}
	hf := AsHashFunc(h)
	f := func(a, b uint16) bool {
		vals := []ast.Value{ast.Value(a), ast.Value(b)}
		return hf.Fn(vals) == h.Apply(vals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: SymHash is invariant under permutations of its arguments — the
// guarantee Theorem 3's construction relies on.
func TestSymHashPermutationInvariantProperty(t *testing.T) {
	h := SymHash{N: 7, Seed: 5}
	f := func(a, b, c uint16) bool {
		x, y, z := ast.Value(a), ast.Value(b), ast.Value(c)
		base := h.Apply([]ast.Value{x, y, z})
		perms := [][]ast.Value{
			{x, z, y}, {y, x, z}, {y, z, x}, {z, x, y}, {z, y, x},
		}
		for _, p := range perms {
			if h.Apply(p) != base {
				return false
			}
		}
		return base >= 0 && base < 7
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSymHashDistribution(t *testing.T) {
	h := SymHash{N: 4}
	counts := make([]int, 4)
	for v := ast.Value(0); v < 400; v++ {
		counts[h.Apply([]ast.Value{v})]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Errorf("bucket %d empty over 400 values", i)
		}
	}
}

func TestBalancedTable(t *testing.T) {
	// One hub with weight 90 and nine values of weight 10 across 2 procs:
	// LPT puts the hub alone on one side and the rest on the other.
	weights := map[ast.Value]int{0: 90}
	for v := ast.Value(1); v <= 9; v++ {
		weights[v] = 10
	}
	procs := RangeProcs(2)
	h := BalancedTable(weights, procs, ModHash{N: 2})
	load := map[int]int{}
	for v, w := range weights {
		load[h.Apply([]ast.Value{v})] += w
	}
	if load[0] != 90 && load[1] != 90 {
		t.Errorf("hub not isolated: loads %v", load)
	}
	if load[0]+load[1] != 180 {
		t.Errorf("total load %d", load[0]+load[1])
	}
	// Unseen values use the fallback, deterministically.
	unseen := h.Apply([]ast.Value{1000})
	if unseen != (ModHash{N: 2}).Apply([]ast.Value{1000}) {
		t.Error("fallback not used for unseen value")
	}
	if h.Name() == "" {
		t.Error("empty name")
	}
}

func TestBalancedTableDeterministic(t *testing.T) {
	weights := map[ast.Value]int{1: 5, 2: 5, 3: 5, 4: 5, 5: 5}
	a := BalancedTable(weights, RangeProcs(3), Constant{Proc: 0})
	b := BalancedTable(weights, RangeProcs(3), Constant{Proc: 0})
	for v := ast.Value(1); v <= 5; v++ {
		if a.Apply([]ast.Value{v}) != b.Apply([]ast.Value{v}) {
			t.Fatal("not deterministic")
		}
	}
}

func TestFuncNames(t *testing.T) {
	for _, f := range []Func{
		ModHash{N: 4}, ModHash{N: 4, Seed: 9}, SymHash{N: 3},
		BitVector{G: GParity, K: 2}, Linear{G: GParity, Coefs: []int{1}},
		Constant{Proc: 2}, Mix{Local: 1, Shared: ModHash{N: 2}},
		&Fragmentation{Fallback: ModHash{N: 2}},
	} {
		if f.Name() == "" {
			t.Errorf("%T has empty name", f)
		}
	}
}
