package wire

import (
	"testing"

	"parlog/internal/relation"
)

// fuzz seeds: real encodings of the shapes the codec produces, so the
// mutator starts from structurally valid inputs rather than noise.
func seedBatches() [][]byte {
	rows := []relation.Tuple{{1, 2}, {3, 4}, {1 << 20, 7}}
	wide := []relation.Tuple{{1, 2, 3, 4, 5}}
	return [][]byte{
		nil,
		AppendBatch(nil, nil),
		AppendBatch(nil, rows),
		AppendBatch(nil, wide),
	}
}

func seedSnapshots() [][]byte {
	return [][]byte{
		nil,
		AppendSnapshot(nil, nil),
		AppendSnapshot(nil, map[string][]relation.Tuple{
			"anc": {{1, 2}, {2, 3}},
			"par": {{1, 2}},
		}),
		AppendSnapshot(nil, map[string][]relation.Tuple{"empty": nil}),
	}
}

// FuzzDecodeBatch: arbitrary bytes must either decode or error — never
// panic, never over-read, and never return rows inconsistent with the
// header the decoder accepted.
func FuzzDecodeBatch(f *testing.F) {
	for _, s := range seedBatches() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		rows, err := DecodeBatch(raw)
		if err != nil {
			if rows != nil {
				t.Fatalf("DecodeBatch returned rows alongside error %v", err)
			}
			return
		}
		if got := BatchCount(raw); got != len(rows) {
			t.Fatalf("BatchCount = %d, DecodeBatch returned %d rows", got, len(rows))
		}
		for i := 1; i < len(rows); i++ {
			if len(rows[i]) != len(rows[0]) {
				t.Fatalf("row %d arity %d != row 0 arity %d", i, len(rows[i]), len(rows[0]))
			}
		}
		// A successful decode must round-trip: re-encoding the rows and
		// decoding again yields the same tuples.
		if len(rows) > 0 {
			again, err := DecodeBatch(AppendBatch(nil, rows))
			if err != nil || len(again) != len(rows) {
				t.Fatalf("round-trip: %d rows, err %v", len(again), err)
			}
		}
	})
}

// FuzzDecodeSnapshot: arbitrary bytes must either stream cleanly or
// error — never panic — and SnapshotTuples must agree with what the
// decoder delivers. (Only the encoder guarantees ascending predicate
// order; arbitrary bytes may legally decode in any order.)
func FuzzDecodeSnapshot(f *testing.F) {
	for _, s := range seedSnapshots() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		tuples := 0
		err := DecodeSnapshot(raw, func(pred string, rows []relation.Tuple) error {
			tuples += len(rows)
			return nil
		})
		if err != nil {
			return
		}
		if got := SnapshotTuples(raw); got != tuples {
			t.Fatalf("SnapshotTuples = %d, decoder delivered %d", got, tuples)
		}
	})
}
