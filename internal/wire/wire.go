// Package wire is the compact binary codec for relation payloads on the
// distributed data plane. Values are interned constants (small non-negative
// integers in practice), so a batch of tuples encodes as a run of unsigned
// varints — typically one or two bytes per value against gob's per-message
// type dictionary and per-slice headers. The coordinator never needs to
// look inside a payload except to count tuples, so it stores and replays
// checkpoints as the same opaque byte blobs it verified, and both ends
// charge the credit ledgers from the one number they already agree on:
// the encoded length.
//
// Formats (all integers unsigned LEB128 varints):
//
//	batch    = count arity value×(count·arity)
//	snapshot = npreds (namelen name batch)×npreds    — names ascending
package wire

import (
	"encoding/binary"
	"fmt"
	"sort"

	"parlog/internal/ast"
	"parlog/internal/relation"
)

// Per-value and per-batch worst-case sizes, for callers that must bound a
// batch's encoded length before encoding it (credit-safe chunking): a
// uint32 varint is at most 5 bytes, and the batch header is two varints.
const (
	MaxValueBytes       = 5
	MaxBatchHeaderBytes = 10
)

// AppendBatch appends the batch encoding of rows to dst and returns the
// extended slice. All rows must share one arity; an empty batch encodes as
// count 0, arity 0.
func AppendBatch(dst []byte, rows []relation.Tuple) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(rows)))
	if len(rows) == 0 {
		return binary.AppendUvarint(dst, 0)
	}
	dst = binary.AppendUvarint(dst, uint64(len(rows[0])))
	for _, t := range rows {
		for _, v := range t {
			dst = binary.AppendUvarint(dst, uint64(uint32(v)))
		}
	}
	return dst
}

// DecodeBatch decodes one batch. All rows are slices into a single flat
// backing array — one allocation for the values, one for the row headers.
func DecodeBatch(raw []byte) ([]relation.Tuple, error) {
	count, arity, rest, err := batchHeader(raw)
	if err != nil {
		return nil, err
	}
	if count == 0 {
		return nil, nil
	}
	flat := make([]ast.Value, count*arity)
	for i := range flat {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, fmt.Errorf("wire: truncated batch at value %d/%d", i, len(flat))
		}
		flat[i] = ast.Value(uint32(v))
		rest = rest[n:]
	}
	rows := make([]relation.Tuple, count)
	for i := range rows {
		rows[i] = flat[i*arity : (i+1)*arity : (i+1)*arity]
	}
	return rows, nil
}

// BatchCount returns a batch's tuple count without decoding its values;
// malformed input counts as zero.
func BatchCount(raw []byte) int {
	count, _, _, err := batchHeader(raw)
	if err != nil {
		return 0
	}
	return count
}

func batchHeader(raw []byte) (count, arity int, rest []byte, err error) {
	if len(raw) == 0 {
		return 0, 0, nil, nil // nil payload: the empty batch
	}
	c, n := binary.Uvarint(raw)
	if n <= 0 {
		return 0, 0, nil, fmt.Errorf("wire: truncated batch count")
	}
	a, m := binary.Uvarint(raw[n:])
	if m <= 0 {
		return 0, 0, nil, fmt.Errorf("wire: truncated batch arity")
	}
	if c > 0 && (a == 0 || c*a/a != c || c*a > uint64(len(raw))) {
		return 0, 0, nil, fmt.Errorf("wire: batch header claims %d×%d values in %d bytes", c, a, len(raw))
	}
	return int(c), int(a), raw[n+m:], nil
}

// AppendSnapshot appends the snapshot encoding of snap — one batch per
// predicate, names in ascending order so equal snapshots encode to equal
// bytes (the checksum below then travels with the blob).
func AppendSnapshot(dst []byte, snap map[string][]relation.Tuple) []byte {
	preds := make([]string, 0, len(snap))
	for pred := range snap {
		preds = append(preds, pred)
	}
	sort.Strings(preds)
	dst = binary.AppendUvarint(dst, uint64(len(preds)))
	for _, pred := range preds {
		dst = binary.AppendUvarint(dst, uint64(len(pred)))
		dst = append(dst, pred...)
		dst = AppendBatch(dst, snap[pred])
	}
	return dst
}

// DecodeSnapshot streams a snapshot's per-predicate batches to fn, in the
// encoded (ascending-name) order. A nil or empty payload is the empty
// snapshot. Decoding stops at fn's first error.
func DecodeSnapshot(raw []byte, fn func(pred string, rows []relation.Tuple) error) error {
	if len(raw) == 0 {
		return nil
	}
	npreds, n := binary.Uvarint(raw)
	if n <= 0 {
		return fmt.Errorf("wire: truncated snapshot header")
	}
	raw = raw[n:]
	for i := uint64(0); i < npreds; i++ {
		nameLen, n := binary.Uvarint(raw)
		if n <= 0 || uint64(len(raw)-n) < nameLen {
			return fmt.Errorf("wire: truncated snapshot name")
		}
		pred := string(raw[n : n+int(nameLen)])
		raw = raw[n+int(nameLen):]
		body, err := batchLen(raw)
		if err != nil {
			return err
		}
		rows, err := DecodeBatch(raw[:body])
		if err != nil {
			return err
		}
		if err := fn(pred, rows); err != nil {
			return err
		}
		raw = raw[body:]
	}
	return nil
}

// SnapshotTuples returns a snapshot's total tuple count by walking the
// varint stream without materializing anything; malformed input counts as
// zero from the point of damage.
func SnapshotTuples(raw []byte) int {
	total := 0
	if len(raw) == 0 {
		return 0
	}
	npreds, n := binary.Uvarint(raw)
	if n <= 0 {
		return 0
	}
	raw = raw[n:]
	for i := uint64(0); i < npreds; i++ {
		nameLen, n := binary.Uvarint(raw)
		if n <= 0 || uint64(len(raw)-n) < nameLen {
			return total
		}
		raw = raw[n+int(nameLen):]
		count, _, _, err := batchHeader(raw)
		if err != nil {
			return total
		}
		total += count
		body, err := batchLen(raw)
		if err != nil {
			return total
		}
		raw = raw[body:]
	}
	return total
}

// batchLen returns the encoded length of the batch at the head of raw by
// skipping its varints.
func batchLen(raw []byte) (int, error) {
	count, arity, rest, err := batchHeader(raw)
	if err != nil {
		return 0, err
	}
	off := len(raw) - len(rest)
	for i := 0; i < count*arity; i++ {
		_, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, fmt.Errorf("wire: truncated batch body")
		}
		rest = rest[n:]
		off += n
	}
	return off, nil
}

// Checksum is the FNV-1a hash of an encoded payload. Both ends hash the
// same bytes they ship or received, so a snapshot corrupted in transit is
// detected without decoding it.
func Checksum(raw []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range raw {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}
