package wire

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"reflect"
	"testing"

	"parlog/internal/ast"
	"parlog/internal/relation"
)

func mkRows(seed, count, arity int) []relation.Tuple {
	rng := rand.New(rand.NewSource(int64(seed)))
	rows := make([]relation.Tuple, count)
	for i := range rows {
		t := make(relation.Tuple, arity)
		for j := range t {
			t[j] = ast.Value(rng.Intn(1 << 20))
		}
		rows[i] = t
	}
	return rows
}

func TestBatchRoundTrip(t *testing.T) {
	for _, tc := range []struct{ count, arity int }{
		{0, 0}, {1, 1}, {1, 3}, {7, 2}, {100, 4}, {1000, 1},
	} {
		rows := mkRows(tc.count+tc.arity, tc.count, tc.arity)
		raw := AppendBatch(nil, rows)
		got, err := DecodeBatch(raw)
		if err != nil {
			t.Fatalf("%d×%d: %v", tc.count, tc.arity, err)
		}
		if len(got) != len(rows) {
			t.Fatalf("%d×%d: decoded %d rows", tc.count, tc.arity, len(got))
		}
		for i := range rows {
			if !got[i].Equal(rows[i]) {
				t.Fatalf("%d×%d: row %d = %v, want %v", tc.count, tc.arity, i, got[i], rows[i])
			}
		}
		if bc := BatchCount(raw); bc != tc.count {
			t.Errorf("BatchCount = %d, want %d", bc, tc.count)
		}
	}
}

func TestBatchNilAndEmpty(t *testing.T) {
	if rows, err := DecodeBatch(nil); err != nil || rows != nil {
		t.Fatalf("DecodeBatch(nil) = %v, %v", rows, err)
	}
	raw := AppendBatch(nil, nil)
	if rows, err := DecodeBatch(raw); err != nil || len(rows) != 0 {
		t.Fatalf("empty batch decoded to %v, %v", rows, err)
	}
	if BatchCount(nil) != 0 || BatchCount(raw) != 0 {
		t.Error("empty batches must count zero tuples")
	}
}

func TestBatchTruncated(t *testing.T) {
	raw := AppendBatch(nil, mkRows(3, 10, 3))
	for cut := 1; cut < len(raw); cut++ {
		if _, err := DecodeBatch(raw[:cut]); err == nil {
			// A cut can still be a valid shorter stream only if the header
			// count matches; with 10×3 values every proper prefix is short.
			t.Fatalf("truncation at %d/%d not detected", cut, len(raw))
		}
	}
}

func TestBatchHeaderLiesRejected(t *testing.T) {
	raw := AppendBatch(nil, mkRows(1, 2, 2))
	// Forge a count far beyond the payload: must error, not allocate.
	forged := append([]byte{0xff, 0xff, 0xff, 0xff, 0x0f}, raw...)
	if _, err := DecodeBatch(forged); err == nil {
		t.Fatal("forged batch count accepted")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	snap := map[string][]relation.Tuple{
		"anc":  mkRows(1, 50, 2),
		"edge": mkRows(2, 20, 2),
		"p":    mkRows(3, 5, 4),
	}
	raw := AppendSnapshot(nil, snap)
	got := map[string][]relation.Tuple{}
	var order []string
	err := DecodeSnapshot(raw, func(pred string, rows []relation.Tuple) error {
		got[pred] = rows
		order = append(order, pred)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"anc", "edge", "p"}; !reflect.DeepEqual(order, want) {
		t.Fatalf("decode order %v, want sorted %v", order, want)
	}
	for pred, rows := range snap {
		if len(got[pred]) != len(rows) {
			t.Fatalf("%s: %d rows, want %d", pred, len(got[pred]), len(rows))
		}
		for i := range rows {
			if !got[pred][i].Equal(rows[i]) {
				t.Fatalf("%s row %d mismatch", pred, i)
			}
		}
	}
	if n := SnapshotTuples(raw); n != 75 {
		t.Errorf("SnapshotTuples = %d, want 75", n)
	}
	if SnapshotTuples(nil) != 0 {
		t.Error("nil snapshot must count zero")
	}
}

func TestSnapshotDeterministicEncoding(t *testing.T) {
	// Two maps with identical contents built in different insert orders
	// must encode identically — that is what lets the checksum travel with
	// the bytes instead of being recomputed over a canonical form.
	a := map[string][]relation.Tuple{"x": mkRows(4, 3, 2), "y": mkRows(5, 4, 1)}
	b := map[string][]relation.Tuple{"y": mkRows(5, 4, 1), "x": mkRows(4, 3, 2)}
	ra, rb := AppendSnapshot(nil, a), AppendSnapshot(nil, b)
	if !bytes.Equal(ra, rb) {
		t.Fatal("equal snapshots encoded differently")
	}
	if Checksum(ra) != Checksum(rb) {
		t.Fatal("equal encodings hashed differently")
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	raw := AppendSnapshot(nil, map[string][]relation.Tuple{"anc": mkRows(6, 30, 2)})
	sum := Checksum(raw)
	for i := 0; i < len(raw); i += 7 {
		bad := append([]byte(nil), raw...)
		bad[i] ^= 0x40
		if Checksum(bad) == sum {
			t.Fatalf("bit flip at byte %d not detected", i)
		}
	}
}

func TestWorstCaseBoundHolds(t *testing.T) {
	// The chunking bound the worker relies on: an encoded batch never
	// exceeds MaxBatchHeaderBytes + count·arity·MaxValueBytes.
	for _, tc := range []struct{ count, arity int }{{1, 1}, {50, 2}, {9, 6}} {
		rows := mkRows(7, tc.count, tc.arity)
		for i := range rows {
			for j := range rows[i] {
				rows[i][j] = ast.Value(-1) // worst case: encodes as max uint32
			}
		}
		raw := AppendBatch(nil, rows)
		if max := MaxBatchHeaderBytes + tc.count*tc.arity*MaxValueBytes; len(raw) > max {
			t.Fatalf("%d×%d: encoded %d bytes, bound %d", tc.count, tc.arity, len(raw), max)
		}
	}
}

// TestSmallerThanGob pins the point of the codec: a typical data batch is
// several times smaller than the gob encoding of the equivalent payload.
func TestSmallerThanGob(t *testing.T) {
	// Values are interner indexes: dense small integers, 1–2 varint bytes.
	rng := rand.New(rand.NewSource(8))
	rows := make([]relation.Tuple, 200)
	for i := range rows {
		rows[i] = relation.Tuple{ast.Value(rng.Intn(2000)), ast.Value(rng.Intn(2000))}
	}
	raw := AppendBatch(nil, rows)
	vals := make([][]ast.Value, len(rows))
	for i, r := range rows {
		vals[i] = r
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(vals); err != nil {
		t.Fatal(err)
	}
	if len(raw)*3 >= buf.Len()*2 {
		t.Fatalf("wire %d bytes vs gob %d: want at least 1.5× smaller", len(raw), buf.Len())
	}
}
