package wire

// Span identifiers travel in the distributed control envelope so sends,
// receives and replays can be stitched into causally-linked traces. An id
// packs the originating worker's dense index into the top 16 bits and a
// per-worker sequence number into the low 48 — allocation is a local
// counter increment, no coordination, and the origin survives replay
// verbatim (a replayed batch keeps the dead worker's id, which is exactly
// the causal link the trace wants). Id 0 is reserved as "no span".

const spanSeqBits = 48

// SpanID packs an origin worker index and a per-worker sequence number.
// Sequence numbers start at 1 so a zero id never collides with "no span".
func SpanID(origin int, seq uint64) uint64 {
	return uint64(origin)<<spanSeqBits | (seq & (1<<spanSeqBits - 1))
}

// SpanOrigin extracts the originating worker index.
func SpanOrigin(id uint64) int { return int(id >> spanSeqBits) }

// SpanSeq extracts the per-worker sequence number.
func SpanSeq(id uint64) uint64 { return id & (1<<spanSeqBits - 1) }
