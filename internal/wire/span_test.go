package wire

import "testing"

func TestSpanIDRoundTrip(t *testing.T) {
	cases := []struct {
		origin int
		seq    uint64
	}{
		{0, 1},
		{3, 42},
		{65535, 1<<48 - 1},
		{7, 0},
	}
	for _, c := range cases {
		id := SpanID(c.origin, c.seq)
		if got := SpanOrigin(id); got != c.origin {
			t.Errorf("SpanOrigin(SpanID(%d, %d)) = %d", c.origin, c.seq, got)
		}
		if got := SpanSeq(id); got != c.seq {
			t.Errorf("SpanSeq(SpanID(%d, %d)) = %d", c.origin, c.seq, got)
		}
	}
	if SpanID(0, 0) != 0 {
		t.Error("SpanID(0, 0) should be the reserved zero id")
	}
	// Distinct workers with the same sequence produce distinct ids.
	if SpanID(1, 5) == SpanID(2, 5) {
		t.Error("ids collide across origins")
	}
}
