// Package seminaive implements sequential bottom-up evaluation of Datalog
// programs: naive iteration and the semi-naive algorithm the paper assumes
// as its execution model (Section 2, [3,4,14]). It also exports the rule
// plan/enumeration machinery reused by the parallel runtime, and counts
// successful ground substitutions — the currency of the paper's
// non-redundancy results (Definition 1, Definition 4, Theorems 2 and 6).
package seminaive

import (
	"fmt"
	"sort"

	"parlog/internal/ast"
	"parlog/internal/relation"
)

// RangeKind selects which rows of a body atom's relation a rule variant may
// read during one semi-naive iteration.
type RangeKind int

const (
	// RangeFull reads every row present at the start of the iteration.
	RangeFull RangeKind = iota
	// RangePrev reads only rows that existed before the previous iteration's
	// delta (T_{k-1}).
	RangePrev
	// RangeDelta reads only the previous iteration's new rows (Δ_k).
	RangeDelta
)

// Watermarks gives, per predicate, the row counts delimiting the semi-naive
// ranges: Prev rows existed before the last delta, Cur rows exist now.
// Predicates absent from the maps are treated as fully readable.
type Watermarks struct {
	Prev map[string]int
	Cur  map[string]int
}

// bounds returns the half-open row interval for pred under kind. n is the
// relation's current physical length, used when pred has no watermark.
func (w *Watermarks) bounds(pred string, kind RangeKind, n int) (lo, hi int) {
	if w == nil {
		return 0, n
	}
	cur, ok := w.Cur[pred]
	if !ok {
		return 0, n
	}
	switch kind {
	case RangePrev:
		return 0, w.Prev[pred]
	case RangeDelta:
		return w.Prev[pred], cur
	default:
		return 0, cur
	}
}

// PlanMode selects the join-order planner.
type PlanMode int

const (
	// PlanBoundness is the legacy order: start at the first delta atom (or
	// atom 0) and greedily append the atom with the most bound argument
	// positions, lowest body index on ties. Cardinalities are ignored, so
	// plans depend only on the rule text — the mode golden and lockstep
	// traces are pinned against.
	PlanBoundness PlanMode = iota
	// PlanGreedy refines PlanBoundness with relation cardinalities: among
	// equally bound atoms the smaller relation joins first, and when no
	// delta atom dictates the start, the start atom is the one with the
	// most constant arguments and then the smallest relation. Statistics
	// free and deterministic: boundness desc, cardinality asc, body
	// position asc.
	PlanGreedy
	// PlanLeftToRight joins body atoms in strict textual order — the
	// ablation baseline the planner is measured against.
	PlanLeftToRight
)

// String names the mode for reports and explain output.
func (m PlanMode) String() string {
	switch m {
	case PlanGreedy:
		return "greedy"
	case PlanLeftToRight:
		return "left-to-right"
	default:
		return "boundness"
	}
}

// PlanConfig parameterizes plan compilation. The zero value reproduces the
// legacy planner exactly.
type PlanConfig struct {
	Mode PlanMode
	// Card reports a predicate's relation cardinality at compile time;
	// nil means unknown (PlanGreedy then degrades to PlanBoundness order).
	// Called only while compiling — plans never consult it at run time.
	Card func(pred string) int
}

// Plan is a compiled evaluation strategy for one rule variant: a join order
// over the body atoms, the range each atom reads, slot-compiled variable
// access (no maps on the hot path), and the earliest point at which each
// constraint can be checked.
type Plan struct {
	Rule ast.Rule
	// Order lists body-atom indexes in execution order.
	Order []int
	// Ranges[i] is the range kind for body atom i (indexed by body position,
	// not execution position).
	Ranges []RangeKind
	// Mode is the planner mode the plan was compiled under.
	Mode PlanMode

	slotOf map[string]int // variable name → dense slot
	atoms  []atomExec     // one per Order entry
	head   []slotOrConst
	// zeroChecks are constraints with no variables, evaluated once per
	// enumeration (they only arise in degenerate rewrites).
	zeroChecks []compiledConstraint
	// zeroNegs are ground negation probes of bodiless rules.
	zeroNegs []compiledNegation
	// constraintPos[k] is the execution position at which the k-th rule
	// constraint is checked; -1 for variable-free pre-join checks.
	constraintPos []int
	// planned[k] is the cardinality the planner saw for execution position
	// k's relation at compile time; -1 when compiled without statistics.
	planned []int64
	// prof holds runtime counters, armed by EnableProfile; nil (the
	// default) keeps the enumeration loops on the zero-overhead path.
	prof *planProfile
}

// slotOrConst addresses either a variable slot or an inline constant.
type slotOrConst struct {
	slot  int // ≥0: slot index; <0: constant
	value ast.Value
}

// compiledConstraint is a HashConstraint with its arguments resolved to
// slots.
type compiledConstraint struct {
	h     *ast.HashFunc
	slots []int
	proc  int
}

// atomExec is one body atom compiled against the boundness state of its
// execution position.
type atomExec struct {
	pred string
	kind RangeKind
	// bound columns feed the index lookup: value comes from a slot (≥0) or
	// an inline constant.
	boundCols []int
	boundSrc  []slotOrConst
	// free columns bind new slots in first-occurrence order.
	freeCols  []int
	freeSlots []int
	// check columns must equal a slot bound earlier within this same atom
	// (repeated fresh variable).
	checkCols  []int
	checkSlots []int
	// constraints become checkable after this atom binds its slots.
	constraints []compiledConstraint
	// negations become probeable after this atom binds their variables.
	negations []compiledNegation
}

// compiledNegation is a stratified-negation filter: the substitution
// survives only if the ground instance of the atom is absent from its
// (completed, lower-stratum) relation.
type compiledNegation struct {
	pred string
	src  []slotOrConst
}

// Compile builds a plan for rule with the given per-atom ranges (nil for an
// all-RangeFull plan) under the legacy PlanBoundness order: start from the
// first delta atom (or atom 0) and greedily append the atom with the most
// bound argument positions. Rules may carry *ast.HashConstraint conditions;
// other Constraint implementations are rejected.
func Compile(rule ast.Rule, ranges []RangeKind) *Plan {
	return CompileWith(rule, ranges, PlanConfig{})
}

// chooseOrder picks the execution order of the body atoms under cfg. All
// modes are deterministic functions of (rule, ranges, cardinalities), so
// repeated compiles — and lockstep replays — agree.
func chooseOrder(rule ast.Rule, ranges []RangeKind, cfg PlanConfig) []int {
	n := len(rule.Body)
	order := make([]int, 0, n)
	if cfg.Mode == PlanLeftToRight {
		for i := 0; i < n; i++ {
			order = append(order, i)
		}
		return order
	}
	card := func(i int) int {
		if cfg.Card == nil {
			return 1 << 30
		}
		return cfg.Card(rule.Body[i].Pred)
	}

	// Start atom: the delta atom when one exists (each delta variant has at
	// most one, and starting there keeps the enumeration proportional to the
	// delta). Otherwise atom 0, unless PlanGreedy finds a more selective
	// seed: most constant arguments, then smallest relation, then lowest
	// body index.
	first := -1
	for i, k := range ranges {
		if k == RangeDelta {
			first = i
			break
		}
	}
	if first < 0 {
		first = 0
		if cfg.Mode == PlanGreedy {
			bestConsts, bestCard := -1, 0
			for i := 0; i < n; i++ {
				consts := 0
				for _, t := range rule.Body[i].Args {
					if !t.IsVar() {
						consts++
					}
				}
				if consts > bestConsts || (consts == bestConsts && card(i) < bestCard) {
					first, bestConsts, bestCard = i, consts, card(i)
				}
			}
		}
	}

	used := make([]bool, n)
	bound := map[string]bool{}
	take := func(i int) {
		used[i] = true
		order = append(order, i)
		for _, t := range rule.Body[i].Args {
			if t.IsVar() {
				bound[t.VarName] = true
			}
		}
	}
	take(first)
	for len(order) < n {
		best, bestScore, bestCard := -1, -1, 0
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			score := 0
			for _, t := range rule.Body[i].Args {
				if !t.IsVar() || bound[t.VarName] {
					score++
				}
			}
			better := score > bestScore
			if !better && cfg.Mode == PlanGreedy && score == bestScore && card(i) < bestCard {
				better = true
			}
			if better {
				best, bestScore, bestCard = i, score, card(i)
			}
		}
		take(best)
	}
	return order
}

// CompileWith builds a plan for rule with the given per-atom ranges (nil for
// an all-RangeFull plan) under the planner configuration cfg. Constraints
// are pushed to the earliest execution position at which their variables
// are bound, whatever order the planner picked.
func CompileWith(rule ast.Rule, ranges []RangeKind, cfg PlanConfig) *Plan {
	n := len(rule.Body)
	if ranges == nil {
		ranges = make([]RangeKind, n)
	}
	p := &Plan{Rule: rule, Ranges: ranges, Mode: cfg.Mode, slotOf: make(map[string]int)}

	slot := func(name string) int {
		if s, ok := p.slotOf[name]; ok {
			return s
		}
		s := len(p.slotOf)
		p.slotOf[name] = s
		return s
	}

	if n > 0 {
		p.Order = chooseOrder(rule, ranges, cfg)
	}

	// Compile the atoms against the boundness state along the order.
	boundSlot := map[string]bool{}
	p.atoms = make([]atomExec, len(p.Order))
	p.planned = make([]int64, len(p.Order))
	for k, idx := range p.Order {
		atom := rule.Body[idx]
		if cfg.Card != nil {
			p.planned[k] = int64(cfg.Card(atom.Pred))
		} else {
			p.planned[k] = -1
		}
		ae := atomExec{pred: atom.Pred, kind: ranges[idx]}
		seenHere := map[string]int{} // var → slot bound earlier in this atom
		for ci, t := range atom.Args {
			switch {
			case !t.IsVar():
				ae.boundCols = append(ae.boundCols, ci)
				ae.boundSrc = append(ae.boundSrc, slotOrConst{slot: -1, value: t.Value})
			case boundSlot[t.VarName]:
				ae.boundCols = append(ae.boundCols, ci)
				ae.boundSrc = append(ae.boundSrc, slotOrConst{slot: slot(t.VarName)})
			case seenHere[t.VarName] != 0:
				ae.checkCols = append(ae.checkCols, ci)
				ae.checkSlots = append(ae.checkSlots, seenHere[t.VarName]-1)
			default:
				s := slot(t.VarName)
				seenHere[t.VarName] = s + 1
				ae.freeCols = append(ae.freeCols, ci)
				ae.freeSlots = append(ae.freeSlots, s)
			}
		}
		for v := range seenHere {
			boundSlot[v] = true
		}
		p.atoms[k] = ae
	}

	// Head access.
	p.head = make([]slotOrConst, len(rule.Head.Args))
	for i, t := range rule.Head.Args {
		if t.IsVar() {
			p.head[i] = slotOrConst{slot: slot(t.VarName)}
		} else {
			p.head[i] = slotOrConst{slot: -1, value: t.Value}
		}
	}

	// Attach each constraint to the earliest execution position where all of
	// its variables are bound.
	for _, c := range rule.Constraints {
		hc, ok := c.(*ast.HashConstraint)
		if !ok {
			panic(fmt.Sprintf("seminaive: cannot compile constraint type %T", c))
		}
		cc := compiledConstraint{h: hc.H, proc: hc.Proc}
		for _, v := range hc.Args {
			cc.slots = append(cc.slots, slot(v))
		}
		if len(hc.Args) == 0 || n == 0 {
			p.zeroChecks = append(p.zeroChecks, cc)
			p.constraintPos = append(p.constraintPos, -1)
			continue
		}
		pos := earliestCovered(rule, p.Order, hc.Args)
		p.atoms[pos].constraints = append(p.atoms[pos].constraints, cc)
		p.constraintPos = append(p.constraintPos, pos)
	}

	// Attach each negated atom likewise; safety guarantees its variables are
	// bound by the positive body.
	for _, a := range rule.Negated {
		cn := compiledNegation{pred: a.Pred, src: make([]slotOrConst, len(a.Args))}
		for i, t := range a.Args {
			if t.IsVar() {
				cn.src[i] = slotOrConst{slot: slot(t.VarName)}
			} else {
				cn.src[i] = slotOrConst{slot: -1, value: t.Value}
			}
		}
		vars := a.Vars(nil)
		if len(vars) == 0 || n == 0 {
			p.zeroNegs = append(p.zeroNegs, cn)
			continue
		}
		pos := earliestCovered(rule, p.Order, vars)
		p.atoms[pos].negations = append(p.atoms[pos].negations, cn)
	}
	return p
}

// Moved reports how many body atoms execute at a position different from
// their textual one — the planner's reordering footprint.
func (p *Plan) Moved() int {
	moved := 0
	for k, idx := range p.Order {
		if k != idx {
			moved++
		}
	}
	return moved
}

// ConstraintPositions reports, per rule constraint in declaration order, the
// execution position (index into Order) at which the plan checks it; -1
// marks variable-free constraints checked once before enumeration. A
// position before the last join level means the constraint was pushed down.
func (p *Plan) ConstraintPositions() []int { return p.constraintPos }

// Pushdowns counts constraints checked strictly before the final join
// level — the ones whose early placement prunes the enumeration.
func (p *Plan) Pushdowns() int {
	pushed := 0
	for _, pos := range p.constraintPos {
		if pos < len(p.Order)-1 {
			pushed++
		}
	}
	return pushed
}

// Slots reports the number of variable slots; Enumerate hands fn a value
// array of this length.
func (p *Plan) Slots() int { return len(p.slotOf) }

// SlotOf returns the slot of a variable, for callers that need to read
// specific bindings from the enumeration array.
func (p *Plan) SlotOf(name string) (int, bool) {
	s, ok := p.slotOf[name]
	return s, ok
}

// earliestCovered returns the execution position after which all vars are
// bound. Safety guarantees such a position exists.
func earliestCovered(rule ast.Rule, order []int, vars []string) int {
	need := make(map[string]bool, len(vars))
	for _, v := range vars {
		need[v] = true
	}
	for k, idx := range order {
		for _, t := range rule.Body[idx].Args {
			if t.IsVar() {
				delete(need, t.VarName)
			}
		}
		if len(need) == 0 {
			return k
		}
	}
	return len(order) - 1
}

// Enumerate calls fn with the slot-value array of every ground substitution
// that satisfies the body atoms (within their ranges) and all constraints.
// The array is reused between calls; fn must not retain it. fn returning
// false stops the enumeration. The number of successful substitutions is
// returned.
func (p *Plan) Enumerate(store relation.Store, w *Watermarks, fn func(vals []ast.Value) bool) int64 {
	vals := make([]ast.Value, len(p.slotOf))
	hargs := make([]ast.Value, 0, 8)
	negBuf := make(relation.Tuple, 0, 8)

	check := func(cc compiledConstraint) bool {
		hargs = hargs[:0]
		for _, s := range cc.slots {
			hargs = append(hargs, vals[s])
		}
		return cc.h.Fn(hargs) == cc.proc
	}
	// negAbsent reports whether the ground instance of the negated atom is
	// absent — a missing relation counts as empty.
	negAbsent := func(cn compiledNegation) bool {
		rel, ok := store[cn.pred]
		if !ok || rel.Len() == 0 {
			return true
		}
		negBuf = negBuf[:0]
		for _, s := range cn.src {
			if s.slot >= 0 {
				negBuf = append(negBuf, vals[s.slot])
			} else {
				negBuf = append(negBuf, s.value)
			}
		}
		return !rel.Contains(negBuf)
	}

	for _, cc := range p.zeroChecks {
		if len(cc.slots) > 0 {
			// Zero-position constraints with variables only occur for empty
			// bodies, where safety forbids variables; defensive.
			panic("seminaive: constraint on unbound variables")
		}
		if !check(cc) {
			return 0
		}
	}
	for _, cn := range p.zeroNegs {
		if !negAbsent(cn) {
			return 0
		}
	}
	if len(p.atoms) == 0 {
		// A bodiless rule (ground head, by safety) fires once.
		if !fn(vals) {
			return 1
		}
		return 1
	}

	var fired int64
	stopped := false
	lookupVals := make([]ast.Value, 0, 8)
	prof := p.prof

	var step func(k int)
	step = func(k int) {
		if stopped {
			return
		}
		if k == len(p.atoms) {
			fired++
			if !fn(vals) {
				stopped = true
			}
			return
		}
		ae := &p.atoms[k]
		rel, ok := store[ae.pred]
		if !ok || rel.Len() == 0 {
			return
		}
		lo, hi := w.bounds(ae.pred, ae.kind, rel.NumRows())
		if lo >= hi {
			return
		}
		lookupVals = lookupVals[:0]
		for _, src := range ae.boundSrc {
			if src.slot >= 0 {
				lookupVals = append(lookupVals, vals[src.slot])
			} else {
				lookupVals = append(lookupVals, src.value)
			}
		}
		var pa *AtomProfile
		if prof != nil {
			pa = &prof.atoms[k]
			pa.Probes++
		}
		ix := rel.IndexOn(ae.boundCols...)
		ix.Lookup(lookupVals, lo, hi, func(row int) bool {
			if !rel.Alive(row) {
				// Counted relations (view maintenance) keep dead rows in the
				// arena; joins see only the live extent.
				return true
			}
			if pa != nil {
				pa.Rows++
			}
			tuple := rel.Row(row)
			for ci, col := range ae.freeCols {
				vals[ae.freeSlots[ci]] = tuple[col]
			}
			// check columns repeat a variable first bound by an earlier
			// column of this same atom, so they compare after the binds.
			for ci, col := range ae.checkCols {
				if tuple[col] != vals[ae.checkSlots[ci]] {
					return true
				}
			}
			for _, cc := range ae.constraints {
				if !check(cc) {
					return true
				}
			}
			for _, cn := range ae.negations {
				if !negAbsent(cn) {
					return true
				}
			}
			if pa != nil {
				pa.Matches++
			}
			step(k + 1)
			return !stopped
		})
	}
	step(0)
	return fired
}

// HeadTuple instantiates the rule's head from the slot-value array that
// Enumerate produced.
func (p *Plan) HeadTuple(vals []ast.Value) relation.Tuple {
	return p.HeadTupleInto(make(relation.Tuple, len(p.head)), vals)
}

// HeadTupleInto writes the head tuple into dst (which must have the head's
// arity) and returns it — the allocation-free variant for hot loops that
// probe for duplicates before cloning.
func (p *Plan) HeadTupleInto(dst relation.Tuple, vals []ast.Value) relation.Tuple {
	for i, h := range p.head {
		if h.slot >= 0 {
			dst[i] = vals[h.slot]
		} else {
			dst[i] = h.value
		}
	}
	return dst
}

// HeadArity returns the rule head's arity.
func (p *Plan) HeadArity() int { return len(p.head) }

// DeltaVariants returns the exact semi-naive decomposition of rule for the
// recursive body-atom positions recAtoms (ascending): variant l reads Δ at
// recAtoms[l], T_{k-1} at recAtoms[<l], and the full current extent at
// recAtoms[>l]; non-recursive atoms always read the full extent. The union
// over variants enumerates every ground substitution involving at least one
// delta tuple exactly once.
func DeltaVariants(rule ast.Rule, recAtoms []int) []*Plan {
	return DeltaVariantsWith(rule, recAtoms, PlanConfig{})
}

// DeltaVariantsWith is DeltaVariants under an explicit planner
// configuration.
func DeltaVariantsWith(rule ast.Rule, recAtoms []int, cfg PlanConfig) []*Plan {
	if len(recAtoms) == 0 {
		return []*Plan{CompileWith(rule, nil, cfg)}
	}
	sorted := append([]int(nil), recAtoms...)
	sort.Ints(sorted)
	plans := make([]*Plan, 0, len(sorted))
	for l := range sorted {
		ranges := make([]RangeKind, len(rule.Body))
		for j, rj := range sorted {
			switch {
			case j < l:
				ranges[rj] = RangePrev
			case j == l:
				ranges[rj] = RangeDelta
			default:
				ranges[rj] = RangeFull
			}
		}
		plans = append(plans, CompileWith(rule, ranges, cfg))
	}
	return plans
}
